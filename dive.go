// Package dive is the public API of the DiVE reproduction: differential
// video encoding for online edge-assisted video analytics on mobile agents
// (ICDCS 2025).
//
// A DiVE Agent consumes raw camera frames and produces differentially
// encoded bitstreams: it reuses the motion vectors its video codec computes
// anyway to judge its own motion, remove the rotational flow component,
// segment ground / background / foreground, and then encodes the foreground
// sharp while crushing the background just enough for the stream to fit the
// estimated uplink bandwidth. During link outages it advances cached
// detections locally with the same motion vectors.
//
// Minimal use:
//
//	agent, err := dive.NewAgent(dive.Config{
//		Width: 320, Height: 192, FPS: 12, FocalPx: 250,
//	})
//	...
//	out, err := agent.Process(frame, now) // frame is a *dive.Frame
//	send(out.Bitstream)                   // ship to the edge
//	agent.AckUplink(start, end, len(out.Bitstream)*8)
//
// The internal packages contain the full system: the synthetic driving
// world, the macroblock codec, the geometry stages, the simulated edge
// detector, the network simulator, the baselines (O3, EAAR, DDS) and the
// experiment harness that regenerates every table and figure of the paper.
package dive

import (
	"fmt"
	"io"
	"net/http"

	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/obs"
)

// Frame is an 8-bit luma image. Pix is row-major, W*H bytes.
type Frame = imgx.Plane

// NewFrame allocates a zeroed frame.
func NewFrame(w, h int) *Frame { return imgx.NewPlane(w, h) }

// Detection is one detected (or locally tracked) object box.
type Detection = detect.Detection

// Config configures a DiVE agent. Zero fields take defaults.
type Config struct {
	// Width and Height are the frame dimensions (multiples of 16).
	Width, Height int
	// FPS is the capture rate.
	FPS float64
	// FocalPx is the camera focal length in pixels; a rough calibration
	// suffices.
	FocalPx float64
	// MEMethod selects the codec's motion estimation search ("dia",
	// "hex", "umh", "tesa", "esa"); empty selects "hex", the paper's
	// choice.
	MEMethod string
	// GoPSize is the I-frame interval (default 48).
	GoPSize int
	// EtaThreshold is the moving/static decision threshold on the
	// non-zero motion vector ratio (default 0.15).
	EtaThreshold float64
	// FixedDelta, when positive, disables the adaptive foreground /
	// background QP delta and uses this constant instead.
	FixedDelta int
	// BandwidthPriorBps seeds the uplink estimator before any feedback
	// (default 2 Mbps).
	BandwidthPriorBps float64
	// Seed drives all randomized components (RANSAC); same seed, same
	// behaviour.
	Seed int64
	// Telemetry enables the observability subsystem: per-stage timing
	// histograms, frame-lifecycle records and rate-control internals,
	// queryable via Snapshot, WriteFrameTrace and TelemetryHandler. Off it
	// costs nothing; on it costs a few clock reads per frame.
	Telemetry bool
	// TelemetryRingSize bounds the retained frame-lifecycle records
	// (default 1024).
	TelemetryRingSize int
	// Workers bounds the codec's intra-frame parallelism (wavefront motion
	// search, DCT sharding, speculative rate-control probes). 0 sizes the
	// pool to GOMAXPROCS, 1 forces serial execution. The emitted bitstream
	// is bit-exact identical at every width.
	Workers int
}

// Output is the result of processing one frame.
type Output struct {
	// Bitstream is the encoded frame to ship to the edge server.
	Bitstream []byte
	// Bits is the exact payload size in bits (Bitstream is padded to
	// bytes).
	Bits int
	// IsIFrame reports whether the frame was intra-coded.
	IsIFrame bool
	// BaseQP is the frame-level quantizer rate control selected.
	BaseQP int
	// Eta is the non-zero motion-vector ratio (the ego-motion signal).
	Eta float64
	// Moving is the agent's ego-motion judgement.
	Moving bool
	// ForegroundFraction is the share of macroblocks kept at full quality.
	ForegroundFraction float64
	// ForegroundRegions are the pixel bounding boxes of extracted
	// foreground objects.
	ForegroundRegions []Region
	// Delta is the background QP offset applied.
	Delta int
	// EstimatedBandwidthBps is the uplink estimate used for rate control.
	EstimatedBandwidthBps float64
	// RotationPitch and RotationYaw are the removed per-frame rotation
	// increments in radians (0 when not estimated).
	RotationPitch, RotationYaw float64
	// TraceID identifies the frame's end-to-end causal trace; the transport
	// should carry it (and SpanID as the remote parent) to the edge so
	// server-side spans stitch into the agent's trace. Zero without
	// Config.Telemetry.
	TraceID uint64
	// SpanID is the frame's root span, the parent for remote spans.
	SpanID uint64
}

// FrameTypeString returns "I" for intra frames and "P" otherwise.
func (o *Output) FrameTypeString() string {
	if o.IsIFrame {
		return "I"
	}
	return "P"
}

// Region is a pixel-space rectangle; Min is inclusive, Max exclusive.
type Region struct {
	MinX, MinY, MaxX, MaxY int
}

// Agent is a DiVE mobile agent.
type Agent struct {
	inner *core.Agent
	rec   *obs.Recorder // nil unless Config.Telemetry
}

// NewAgent validates cfg and creates an agent.
func NewAgent(cfg Config) (*Agent, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("dive: frame size must be positive")
	}
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("dive: FPS must be positive")
	}
	if cfg.FocalPx <= 0 {
		return nil, fmt.Errorf("dive: focal length must be positive")
	}
	ac := core.DefaultAgentConfig(cfg.Width, cfg.Height, cfg.FPS, cfg.FocalPx)
	if cfg.MEMethod != "" {
		m, ok := codec.ParseMEMethod(cfg.MEMethod)
		if !ok {
			return nil, fmt.Errorf("dive: unknown motion estimation method %q", cfg.MEMethod)
		}
		ac.Codec.Method = m
	}
	if cfg.GoPSize > 0 {
		ac.Codec.GoPSize = cfg.GoPSize
	}
	if cfg.EtaThreshold > 0 {
		ac.EtaThreshold = cfg.EtaThreshold
	}
	if cfg.FixedDelta > 0 {
		ac.AVE.Policy = core.DeltaFixed
		ac.AVE.FixedDelta = cfg.FixedDelta
	}
	if cfg.BandwidthPriorBps > 0 {
		ac.BandwidthPrior = cfg.BandwidthPriorBps
	}
	if cfg.Seed != 0 {
		ac.Seed = cfg.Seed
	}
	ac.Codec.Workers = cfg.Workers
	var rec *obs.Recorder
	if cfg.Telemetry {
		rec = obs.NewRecorder(cfg.TelemetryRingSize)
		ac.Obs = rec
	}
	inner, err := core.NewAgent(ac)
	if err != nil {
		return nil, err
	}
	return &Agent{inner: inner, rec: rec}, nil
}

// Process runs the DiVE pipeline on one captured frame. now is the capture
// time in seconds on any monotonic clock shared with AckUplink.
// It is Analyze followed immediately by Emit.
func (a *Agent) Process(frame *Frame, now float64) (*Output, error) {
	p, err := a.Analyze(frame, now)
	if err != nil {
		return nil, err
	}
	return a.Emit(p)
}

// Pending is a frame between Analyze and Emit: fully analyzed, rate
// controlled and quantized, but not yet entropy coded. Bits reports the
// exact bitstream size ahead of serialization, so transport scheduling can
// run before the bytes exist.
type Pending struct {
	inner *core.PendingFrame
}

// Bits returns the frame's exact encoded size in bits (known before Emit —
// entropy coding only serializes what quantization already decided).
func (p *Pending) Bits() int { return p.inner.Result().Encoded.NumBits }

// Analyze runs phase one of the pipeline on one captured frame: motion
// analysis, foreground extraction, rate control and quantization. The agent
// is immediately ready to analyze the next frame; the returned Pending must
// be passed to Emit — in order, exactly once — for the bitstream. Emit may
// run concurrently with later Analyze calls, which is what lets a frame
// pipeline overlap entropy coding with the next frame's analysis.
func (a *Agent) Analyze(frame *Frame, now float64) (*Pending, error) {
	p, err := a.inner.AnalyzeFrame(frame, now)
	if err != nil {
		return nil, err
	}
	return &Pending{inner: p}, nil
}

// Emit runs phase two: entropy coding. It consumes the Pending and returns
// the completed Output, byte-identical to what a direct Process call would
// have produced.
func (a *Agent) Emit(p *Pending) (*Output, error) {
	res, err := a.inner.EmitFrame(p.inner)
	if err != nil {
		return nil, err
	}
	return outputFromResult(res), nil
}

// ProcessStream runs frames [0, n) through the agent as a bounded-depth
// frame pipeline: frame N+1's capture (the source callback) and analysis
// overlap frame N's entropy coding and delivery, with at most depth frames
// in flight. Bitstreams are byte-identical to a serial Process loop at any
// depth, and hooks observe frames in order. The post hook runs right after
// a frame's analysis — before its bitstream exists (Bitstream is nil) but
// with Bits already exact — and is where AckUplink and ForceNextIFrame
// belong; the deliver hook receives the completed Output and is where
// CacheDetections belongs. depth <= 1 runs everything inline.
func (a *Agent) ProcessStream(n, depth int,
	source func(i int) (*Frame, float64),
	post func(i int, out *Output) error,
	deliver func(i int, out *Output) error,
) error {
	wrap := func(hook func(int, *Output) error) func(int, *core.FrameResult) error {
		if hook == nil {
			return nil
		}
		return func(i int, res *core.FrameResult) error {
			return hook(i, outputFromResult(res))
		}
	}
	_, err := a.inner.ProcessStream(n, depth, source, wrap(post), wrap(deliver))
	return err
}

// outputFromResult converts the internal frame result to the public Output.
func outputFromResult(res *core.FrameResult) *Output {
	out := &Output{
		Bitstream:             res.Encoded.Data,
		Bits:                  res.Encoded.NumBits,
		IsIFrame:              res.Encoded.Type == codec.IFrame,
		BaseQP:                res.Encoded.BaseQP,
		Eta:                   res.Eta,
		Moving:                res.Moving,
		Delta:                 res.Delta,
		EstimatedBandwidthBps: res.EstimatedBandwidth,
		TraceID:               res.Trace.TraceID,
		SpanID:                res.Trace.SpanID,
	}
	if res.Rotation.OK {
		out.RotationPitch = res.Rotation.PhiX
		out.RotationYaw = res.Rotation.PhiY
	}
	if res.Foreground != nil {
		out.ForegroundFraction = res.Foreground.Fraction()
		for _, obj := range res.Foreground.Objects {
			out.ForegroundRegions = append(out.ForegroundRegions, Region{
				MinX: obj.BBox.MinX, MinY: obj.BBox.MinY,
				MaxX: obj.BBox.MaxX, MaxY: obj.BBox.MaxY,
			})
		}
	}
	return out
}

// AckUplink reports transport feedback: bits were serialized onto the
// uplink during [start, end] seconds. The bandwidth estimator drives the
// next frames' rate control.
func (a *Agent) AckUplink(start, end float64, bits int) {
	a.inner.OnTransmitComplete(start, end, bits)
}

// CacheDetections stores the newest edge results for outage tracking.
func (a *Agent) CacheDetections(dets []Detection) { a.inner.OnDetections(dets) }

// ForceNextIFrame makes the next encoded frame intra-coded; call it after
// dropping frames so the remote decoder can resynchronize.
func (a *Agent) ForceNextIFrame() { a.inner.ForceNextIFrame() }

// Snapshot returns the agent's telemetry as JSON: counters (frames, bits,
// I-frames), gauges (η, foreground fraction, bandwidth estimate) and
// per-stage latency histograms with p50/p95/p99. It fails unless
// Config.Telemetry was set.
func (a *Agent) Snapshot() ([]byte, error) {
	if a.rec == nil {
		return nil, fmt.Errorf("dive: telemetry not enabled (set Config.Telemetry)")
	}
	return a.rec.SnapshotJSON()
}

// WriteFrameTrace writes the retained frame-lifecycle records as JSONL
// (one frame per line, oldest first) — the same schema divetrace -jsonl
// emits. It fails unless Config.Telemetry was set.
func (a *Agent) WriteFrameTrace(w io.Writer) error {
	if a.rec == nil {
		return fmt.Errorf("dive: telemetry not enabled (set Config.Telemetry)")
	}
	return a.rec.Frames().WriteJSONL(w)
}

// WriteJournal writes the retained decision-journal records as JSONL (one
// frame per line, oldest first) — the inputs and outputs of every pipeline
// decision, the format divedoctor ingests. It fails unless Config.Telemetry
// was set.
func (a *Agent) WriteJournal(w io.Writer) error {
	if a.rec == nil {
		return fmt.Errorf("dive: telemetry not enabled (set Config.Telemetry)")
	}
	return a.rec.Journal().WriteJSONL(w)
}

// WriteSpans writes the retained trace spans as JSONL (oldest first): the
// per-stage spans of each frame's end-to-end trace. It fails unless
// Config.Telemetry was set.
func (a *Agent) WriteSpans(w io.Writer) error {
	if a.rec == nil {
		return fmt.Errorf("dive: telemetry not enabled (set Config.Telemetry)")
	}
	return a.rec.Spans().WriteJSONL(w)
}

// TelemetryHandler returns the agent's live introspection HTTP handler
// (/metrics in Prometheus text format, /debug/vars, /debug/frames,
// /debug/journal, /debug/spans, /debug/pprof/). Without Config.Telemetry it
// returns a handler that answers 503 on every path.
func (a *Agent) TelemetryHandler() http.Handler { return a.rec.Handler() }

// Decoder reconstructs frames from Agent bitstreams — the edge-server side.
type Decoder struct {
	inner *codec.Decoder
}

// NewDecoder creates a decoder for w×h streams.
func NewDecoder(w, h int) (*Decoder, error) {
	d, err := codec.NewDecoder(codec.DefaultConfig(w, h))
	if err != nil {
		return nil, err
	}
	return &Decoder{inner: d}, nil
}

// Decode parses one frame bitstream and returns the reconstructed image.
func (d *Decoder) Decode(bitstream []byte) (*Frame, error) {
	df, err := d.inner.Decode(bitstream)
	if err != nil {
		return nil, err
	}
	return df.Image, nil
}

// Mbps converts megabits per second to bits per second, a convenience for
// Config.BandwidthPriorBps.
func Mbps(v float64) float64 { return netsim.Mbps(v) }
