package dive

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its result at smoke scale per iteration and
// reports the headline numbers as custom metrics, so `go test -bench=.`
// doubles as a quick reproduction run. cmd/divebench runs the same
// experiments at larger scales with full output.

import (
	"sync"
	"testing"

	"dive/internal/experiments"
	"dive/internal/world"
)

const benchSeed = experiments.BaseSeed

var (
	benchClipOnce   sync.Once
	benchClipCached *world.Clip
)

// benchClip renders one nuScenes-flavored clip, shared across benchmarks.
func benchClip(b *testing.B) *world.Clip {
	b.Helper()
	benchClipOnce.Do(func() {
		p := world.NuScenesLike()
		p.ClipDuration = 2
		benchClipCached = world.GenerateClip(p, benchSeed)
	})
	return benchClipCached
}

func BenchmarkTableIDatasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.TableI(experiments.ScaleSmoke, benchSeed)
		if len(rows) != 2 {
			b.Fatal("bad row count")
		}
	}
}

func BenchmarkFig6EgoMotion(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6EgoMotion(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Accuracy
	}
	b.ReportMetric(acc, "η-rule-accuracy")
}

func BenchmarkFig7RSampling(b *testing.B) {
	var meanErr float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7RSampling(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		meanErr = r.Configs[0].MeanY
	}
	b.ReportMetric(meanErr, "rsampling-ωy-err")
}

func BenchmarkFig9MotionEstimation(b *testing.B) {
	var hexMAP float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig9MotionEstimation(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Method == "hex" && r.Dataset == "nuScenes" {
				hexMAP = r.MAP
			}
		}
	}
	b.ReportMetric(hexMAP, "hex-mAP")
}

func BenchmarkFig10SampleCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10SampleCount(experiments.ScaleSmoke, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11QPAssignment(b *testing.B) {
	var adaptive float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11QPAssignment(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Delta == "adaptive" && r.Bandwidth == 3 {
				adaptive = r.MAP
			}
		}
	}
	b.ReportMetric(adaptive, "adaptive-mAP@3Mbps")
}

func BenchmarkFig12Foreground(b *testing.B) {
	var carAP20 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12Foreground(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.BackgroundQP == 20 && r.Dataset == "RobotCar" {
				carAP20 = r.CarAP
			}
		}
	}
	b.ReportMetric(carAP20, "carAP@bgQP20")
}

func BenchmarkFig13OfflineTracking(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13OfflineTracking(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		gain = 0
		for _, r := range rows {
			gain += r.MAPWith - r.MAPWithout
		}
		gain /= float64(len(rows))
	}
	b.ReportMetric(gain, "mean-MOT-gain")
}

func BenchmarkFig14MotionStates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14MotionStates(experiments.ScaleSmoke, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig16EndToEndRobotCar(b *testing.B) {
	var diveMAP float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig16EndToEndRobotCar(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "DiVE" && r.Bandwidth == 3 {
				diveMAP = r.MAP
			}
		}
	}
	b.ReportMetric(diveMAP, "DiVE-mAP@3Mbps")
}

func BenchmarkFig17EndToEndNuScenes(b *testing.B) {
	var diveMAP float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig17EndToEndNuScenes(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == "DiVE" && r.Bandwidth == 3 {
				diveMAP = r.MAP
			}
		}
	}
	b.ReportMetric(diveMAP, "DiVE-mAP@3Mbps")
}

// BenchmarkAblationRotation measures the value of rotational-component
// elimination for foreground extraction (DESIGN.md §5).
func BenchmarkAblationRotation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationRotation(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		var with, without, nw, nwo float64
		for _, r := range rows {
			if r.Variant == "with rotation elimination" {
				with += r.Recall * float64(r.Frames)
				nw += float64(r.Frames)
			} else {
				without += r.Recall * float64(r.Frames)
				nwo += float64(r.Frames)
			}
		}
		if nw > 0 && nwo > 0 {
			gain = with/nw - without/nwo
		}
	}
	b.ReportMetric(gain, "FG-recall-gain")
}

// BenchmarkAblationSubPel measures the rotation-accuracy value of half-pel
// motion vectors (DESIGN.md §5).
func BenchmarkAblationSubPel(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSubPel(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[1].MeanErrY - rows[0].MeanErrY
	}
	b.ReportMetric(gain, "ωy-err-reduction")
}

// BenchmarkNightStudy measures the day/night degradation of the MV signal
// (the phenomenon behind the paper's exclusion of night clips).
func BenchmarkNightStudy(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.NightStudy(experiments.ScaleSmoke, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		day := rows[0].FGRecall / (rows[0].MaskFraction + 1e-9)
		night := rows[1].FGRecall / (rows[1].MaskFraction + 1e-9)
		eff = night / day
	}
	b.ReportMetric(eff, "night/day-FG-efficiency")
}

// BenchmarkAgentProcessFrame measures the per-frame cost of the full DiVE
// agent pipeline (motion analysis + foreground extraction + encode) on a
// nuScenes-sized frame — the number behind the paper's "lightweight agent"
// claim.
func BenchmarkAgentProcessFrame(b *testing.B) {
	clip := benchClip(b)
	agent, err := NewAgent(Config{
		Width: clip.W, Height: clip.H, FPS: clip.FPS, FocalPx: clip.Focal,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		frame := clip.Frames[i%clip.NumFrames()]
		out, err := agent.Process(frame, float64(i)/clip.FPS)
		if err != nil {
			b.Fatal(err)
		}
		agent.AckUplink(float64(i)/clip.FPS, float64(i)/clip.FPS+0.02, out.Bits)
	}
}

// BenchmarkDecoder measures server-side decode throughput: each iteration
// decodes one whole encoded clip.
func BenchmarkDecoder(b *testing.B) {
	clip := benchClip(b)
	agent, err := NewAgent(Config{
		Width: clip.W, Height: clip.H, FPS: clip.FPS, FocalPx: clip.Focal,
	})
	if err != nil {
		b.Fatal(err)
	}
	var streams [][]byte
	for i, f := range clip.Frames {
		out, perr := agent.Process(f, float64(i)/clip.FPS)
		if perr != nil {
			b.Fatal(perr)
		}
		streams = append(streams, out.Bitstream)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, derr := NewDecoder(clip.W, clip.H)
		if derr != nil {
			b.Fatal(derr)
		}
		for _, s := range streams {
			if _, err := dec.Decode(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}
