#!/bin/sh
# fleet_smoke.sh — fleet-observability smoke: the end-to-end gate on the
# aggregation plane (per-session recorders → FleetAggregator → rollups →
# /debug/fleet → streaming fleet detectors). Three gates:
#
#   1. Determinism: two identical seeded model runs must print
#      byte-identical JSON reports — the property every fleet experiment
#      in EXPERIMENTS.md relies on.
#   2. Pathology: a served fleet run with one scripted slow link, tailed
#      live by divedoctor -follow, must stream a straggler-session finding
#      as JSONL while the run is still going.
#   3. Healthy: the same fleet spec without the slow link must exit 0 from
#      divefleet (no stragglers, burn within budget) and diagnose clean
#      offline via divedoctor -fleet.
#
# Usage: ci/fleet_smoke.sh [port]
set -u

PORT="${1:-7081}"
URL="http://127.0.0.1:${PORT}"
OUT="$(mktemp -d)"
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/divefleet" ./cmd/divefleet || exit 2
go build -o "$OUT/divedoctor" ./cmd/divedoctor || exit 2

# --- Gate 1: run-to-run determinism of the seeded model fleet.
FLAGS="-agents 50 -servers 2 -duration 30 -seed 7 -chaos outage-burst"
"$OUT/divefleet" $FLAGS -slow 3 -json -o "$OUT/run1.json" >/dev/null
"$OUT/divefleet" $FLAGS -slow 3 -json -o "$OUT/run2.json" >/dev/null
if ! cmp -s "$OUT/run1.json" "$OUT/run2.json"; then
    echo "fleet-smoke: identical seeded runs produced different reports" >&2
    exit 1
fi

# --- Gate 2: scripted straggler streams out of a live fleet. Serve the
# rollups paced in wall-clock time; agent 3's link runs at 5% bandwidth
# plus 300ms of server-side delay, so straggler-session must fire while
# divedoctor is following /debug/fleet.
"$OUT/divefleet" $FLAGS -slow 3 -serve "127.0.0.1:${PORT}" \
    -pace 100ms -linger 8s >"$OUT/serve.out" 2>"$OUT/serve.log" &
SERVE_PID=$!

up=0
for _ in $(seq 1 50); do
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$URL/debug/fleet" >/dev/null 2>&1 && { up=1; break; }
    else
        wget -qO /dev/null "$URL/debug/fleet" 2>/dev/null && { up=1; break; }
    fi
    sleep 0.2
done
if [ "$up" != 1 ]; then
    echo "fleet-smoke: /debug/fleet never came up" >&2
    cat "$OUT/serve.log" >&2
    exit 2
fi

# divedoctor exits 1 when findings fired — which is what we expect here.
"$OUT/divedoctor" -follow -url "$URL" -interval 250ms -for 30s \
    >"$OUT/findings.jsonl" 2>"$OUT/follow.log"
status=$?
if [ "$status" -eq 2 ]; then
    echo "fleet-smoke: divedoctor -follow errored" >&2
    cat "$OUT/follow.log" >&2
    exit 2
fi
if ! grep -q '"check":"straggler-session"' "$OUT/findings.jsonl"; then
    echo "fleet-smoke: no straggler-session finding streamed from the live fleet" >&2
    echo "--- findings" >&2
    cat "$OUT/findings.jsonl" >&2
    echo "--- follow log" >&2
    cat "$OUT/follow.log" >&2
    exit 1
fi
wait "$SERVE_PID"
SERVE_PID=""

# --- Gate 3: the healthy fleet (same spec, no slow link) must pass its own
# exit gate and diagnose clean offline.
if ! "$OUT/divefleet" $FLAGS -json -o "$OUT/healthy.json" >/dev/null; then
    echo "fleet-smoke: healthy fleet run failed its exit gate" >&2
    exit 1
fi
if ! "$OUT/divedoctor" -fleet "$OUT/healthy.json" >"$OUT/healthy.diag" 2>&1; then
    echo "fleet-smoke: healthy fleet run diagnosed unhealthy" >&2
    cat "$OUT/healthy.diag" >&2
    exit 1
fi

n=$(grep -c '"check"' "$OUT/findings.jsonl")
echo "fleet-smoke: OK — deterministic report, $n live finding(s) with straggler-session present, healthy run clean"
