#!/bin/sh
# cluster_smoke.sh — kill-a-server chaos gate: the end-to-end check on the
# cluster failure model (health-routed balancer → seeded member kill → forced
# session migration → bounded re-detection gap). One drill, three gates:
#
#   1. The drill itself: three sessions spread round-robin over a 3-member
#      cluster, the seed-chosen member killed once half the fleet's frames
#      have streamed. Every session must finish (no session errors) and the
#      report must show at least one forced migration.
#   2. The gap bound: divedoctor grades each exported session journal and
#      must find exactly one migration-gap finding fleet-wide, at warn
#      severity — the migration happened AND stayed inside the budget. A
#      fail-severity gap (blind longer than the bound) fails the gate.
#   3. No storm: zero failover-storm findings — the session settled on a
#      survivor instead of ping-ponging between members.
#
# Usage: ci/cluster_smoke.sh
set -u

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/divefleet" ./cmd/divefleet || exit 2
go build -o "$OUT/divedoctor" ./cmd/divedoctor || exit 2

# --- Gate 1: the drill. divefleet exit 1 (stragglers/burn inside the kill
# window) is tolerated; >= 2 is a usage/runtime error.
"$OUT/divefleet" -live -cluster 3 -agents 3 -duration 2 -seed 42 \
    -kill-frac 0.5 -journal-dir "$OUT/journals" \
    >"$OUT/report.txt" 2>"$OUT/run.log"
status=$?
if [ "$status" -ge 2 ]; then
    echo "cluster-smoke: divefleet errored (exit $status)" >&2
    cat "$OUT/run.log" >&2
    exit 2
fi
if grep -q 'session [0-9][0-9]*:' "$OUT/run.log"; then
    echo "cluster-smoke: a session did not survive the kill" >&2
    cat "$OUT/run.log" >&2
    exit 1
fi
forced=$(sed -n 's/^migrations: [0-9][0-9]* (\([0-9][0-9]*\) forced.*/\1/p' "$OUT/report.txt")
if [ -z "$forced" ] || [ "$forced" -lt 1 ]; then
    echo "cluster-smoke: kill produced no forced migration" >&2
    cat "$OUT/report.txt" >&2
    cat "$OUT/run.log" >&2
    exit 1
fi

# --- Gates 2+3: doctor grading of the exported journals. divedoctor exits 1
# on findings — expected here (the migration-gap warn is supposed to fire);
# only exit >= 2 is an error.
gaps=0
gap_fails=0
storms=0
for j in "$OUT/journals"/*.jsonl; do
    [ -f "$j" ] || { echo "cluster-smoke: no journals exported" >&2; exit 2; }
    "$OUT/divedoctor" -journal "$j" -json >"$OUT/findings.json" 2>>"$OUT/run.log"
    s=$?
    if [ "$s" -ge 2 ]; then
        echo "cluster-smoke: divedoctor errored on $j (exit $s)" >&2
        cat "$OUT/run.log" >&2
        exit 2
    fi
    g=$(grep -c '"check": "migration-gap"' "$OUT/findings.json") || true
    f=$(grep -A1 '"check": "migration-gap"' "$OUT/findings.json" | grep -c '"severity": "fail"') || true
    st=$(grep -c '"check": "failover-storm"' "$OUT/findings.json") || true
    gaps=$((gaps + g))
    gap_fails=$((gap_fails + f))
    storms=$((storms + st))
done

if [ "$gaps" -ne 1 ]; then
    echo "cluster-smoke: $gaps migration-gap finding(s) fleet-wide, want exactly 1" >&2
    cat "$OUT/run.log" >&2
    exit 1
fi
if [ "$gap_fails" -ne 0 ]; then
    echo "cluster-smoke: re-detection gap exceeded the budget" >&2
    exit 1
fi
if [ "$storms" -ne 0 ]; then
    echo "cluster-smoke: failover storm detected after a single kill" >&2
    exit 1
fi

echo "cluster-smoke: OK — $forced forced migration(s), 1 bounded migration gap, no failover storm"
