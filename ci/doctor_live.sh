#!/bin/sh
# doctor_live.sh — live-observability smoke: boot a paced chaos run serving
# telemetry over HTTP, tail it with divedoctor -follow, and assert at least
# one outage/recovery finding streams out as JSONL *while the run is live*.
# This is the end-to-end gate on the streaming-doctor path: journal ring →
# /debug/journal → follower → incremental detectors → JSONL.
#
# Usage: ci/doctor_live.sh [port]
set -u

PORT="${1:-7079}"
URL="http://127.0.0.1:${PORT}"
OUT="$(mktemp -d)"
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/divetrace" ./cmd/divetrace || exit 2
go build -o "$OUT/divedoctor" ./cmd/divedoctor || exit 2

# A short outage-burst scenario, paced so the journal grows in wall-clock
# time, lingering after the run so the follower can drain the tail.
"$OUT/divetrace" -serve "127.0.0.1:${PORT}" -chaos outage-burst \
    -duration 3 -pace 25ms -linger 8s 2>"$OUT/serve.log" &
SERVE_PID=$!

# Wait for the telemetry endpoint to come up (the run starts immediately).
up=0
for _ in $(seq 1 50); do
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$URL/metrics" >/dev/null 2>&1 && { up=1; break; }
    else
        wget -qO /dev/null "$URL/metrics" 2>/dev/null && { up=1; break; }
    fi
    sleep 0.2
done
if [ "$up" != 1 ]; then
    echo "doctor-live: telemetry endpoint never came up" >&2
    cat "$OUT/serve.log" >&2
    exit 2
fi

# Follow the live journal. The chaos outage windows are ~3 frames at this
# clip rate, so the outage-drift bar is lowered to match the scenario.
# divedoctor exits 1 when findings fired — which is exactly what we expect.
"$OUT/divedoctor" -follow -url "$URL" -interval 250ms -for 30s \
    -outage-run 3 >"$OUT/findings.jsonl" 2>"$OUT/follow.log"
status=$?
if [ "$status" -eq 2 ]; then
    echo "doctor-live: divedoctor -follow errored" >&2
    cat "$OUT/follow.log" >&2
    exit 2
fi

if ! grep -q '"check":"outage-drift"' "$OUT/findings.jsonl"; then
    echo "doctor-live: no outage finding streamed during the chaos run" >&2
    echo "--- findings" >&2
    cat "$OUT/findings.jsonl" >&2
    echo "--- follow log" >&2
    cat "$OUT/follow.log" >&2
    exit 1
fi

n=$(grep -c '"check"' "$OUT/findings.jsonl")
echo "doctor-live: OK — $n finding(s) streamed live, outage-drift present"
