package dive

import (
	"bytes"
	"fmt"
	"testing"

	"dive/internal/imgx"
	"dive/internal/world"
)

func TestNewAgentValidation(t *testing.T) {
	cases := []Config{
		{},
		{Width: 320, Height: 192},
		{Width: 320, Height: 192, FPS: 12},
		{Width: 320, Height: 192, FPS: 12, FocalPx: 250, MEMethod: "bogus"},
		{Width: 321, Height: 192, FPS: 12, FocalPx: 250},
	}
	for i, c := range cases {
		if _, err := NewAgent(c); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

func TestPublicPipelineRoundTrip(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 1.5
	clip := world.GenerateClip(p, 55)

	agent, err := NewAgent(Config{
		Width: clip.W, Height: clip.H, FPS: clip.FPS, FocalPx: clip.Focal,
		BandwidthPriorBps: Mbps(2), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(clip.W, clip.H)
	if err != nil {
		t.Fatal(err)
	}

	sawMoving, sawRegions := false, false
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		out, err := agent.Process(frame, now)
		if err != nil {
			t.Fatal(err)
		}
		if out.Bits <= 0 || len(out.Bitstream) == 0 {
			t.Fatal("empty bitstream")
		}
		if i == 0 && !out.IsIFrame {
			t.Error("first frame must be intra")
		}
		img, err := dec.Decode(out.Bitstream)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if img.W != clip.W || img.H != clip.H {
			t.Fatal("decoded size wrong")
		}
		// Decoded frame should resemble the original.
		if psnr := imgx.PSNR(imgx.MSE(frame, img)); psnr < 18 {
			t.Errorf("frame %d: decoded PSNR %v", i, psnr)
		}
		if out.Moving {
			sawMoving = true
		}
		if len(out.ForegroundRegions) > 0 {
			sawRegions = true
			if out.ForegroundFraction <= 0 || out.ForegroundFraction > 1 {
				t.Errorf("foreground fraction %v", out.ForegroundFraction)
			}
		}
		tx := float64(out.Bits) / Mbps(2)
		agent.AckUplink(now, now+tx, out.Bits)
	}
	if !sawMoving {
		t.Error("agent never reported motion")
	}
	if !sawRegions {
		t.Error("agent never reported foreground regions")
	}
}

// TestPublicStreamMatchesProcess pins the public pipelining surface: the
// Analyze/Emit split and ProcessStream at several depths must all produce
// bitstreams byte-identical to the serial Process loop, with in-order
// hooks and exact Bits available before emission.
func TestPublicStreamMatchesProcess(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 1.0
	clip := world.GenerateClip(p, 55)
	cfg := Config{
		Width: clip.W, Height: clip.H, FPS: clip.FPS, FocalPx: clip.Focal,
		BandwidthPriorBps: Mbps(2), Seed: 9,
	}

	run := func(process func(a *Agent) ([][]byte, error)) [][]byte {
		t.Helper()
		a, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		payloads, err := process(a)
		if err != nil {
			t.Fatal(err)
		}
		return payloads
	}

	serial := run(func(a *Agent) ([][]byte, error) {
		var out [][]byte
		for i, frame := range clip.Frames {
			now := float64(i) / clip.FPS
			o, err := a.Process(frame, now)
			if err != nil {
				return nil, err
			}
			out = append(out, o.Bitstream)
			a.AckUplink(now, now+float64(o.Bits)/Mbps(2), o.Bits)
		}
		return out, nil
	})

	// Two-phase: Analyze, then Emit — ack on analysis metadata, before the
	// bitstream exists.
	split := run(func(a *Agent) ([][]byte, error) {
		var out [][]byte
		for i, frame := range clip.Frames {
			now := float64(i) / clip.FPS
			pend, err := a.Analyze(frame, now)
			if err != nil {
				return nil, err
			}
			a.AckUplink(now, now+float64(pend.Bits())/Mbps(2), pend.Bits())
			o, err := a.Emit(pend)
			if err != nil {
				return nil, err
			}
			if o.Bits != pend.Bits() {
				return nil, fmt.Errorf("Pending.Bits %d != Output.Bits %d", pend.Bits(), o.Bits)
			}
			out = append(out, o.Bitstream)
		}
		return out, nil
	})
	for i := range serial {
		if !bytes.Equal(serial[i], split[i]) {
			t.Fatalf("Analyze/Emit frame %d differs from Process", i)
		}
	}

	for _, depth := range []int{1, 3} {
		streamed := run(func(a *Agent) ([][]byte, error) {
			out := make([][]byte, clip.NumFrames())
			err := a.ProcessStream(clip.NumFrames(), depth,
				func(i int) (*Frame, float64) {
					return clip.Frames[i], float64(i) / clip.FPS
				},
				func(i int, o *Output) error {
					if o.Bitstream != nil {
						t.Errorf("depth %d frame %d: post hook saw a bitstream", depth, i)
					}
					now := float64(i) / clip.FPS
					a.AckUplink(now, now+float64(o.Bits)/Mbps(2), o.Bits)
					return nil
				},
				func(i int, o *Output) error {
					out[i] = o.Bitstream
					return nil
				})
			return out, err
		})
		for i := range serial {
			if !bytes.Equal(serial[i], streamed[i]) {
				t.Fatalf("depth %d frame %d differs from serial Process", depth, i)
			}
		}
	}
}

func TestPublicConfigKnobs(t *testing.T) {
	a, err := NewAgent(Config{
		Width: 64, Height: 64, FPS: 10, FocalPx: 100,
		MEMethod: "umh", GoPSize: 2, FixedDelta: 20, EtaThreshold: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrame(64, 64)
	for i := range f.Pix {
		f.Pix[i] = uint8(i % 256)
	}
	o1, err := a.Process(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !o1.IsIFrame {
		t.Error("first frame not I")
	}
	if o1.Delta != 20 {
		t.Errorf("fixed delta = %d", o1.Delta)
	}
	// GoP 2: frames 0, 2 are I.
	o2, _ := a.Process(f, 0.1)
	o3, _ := a.Process(f, 0.2)
	if o2.IsIFrame || !o3.IsIFrame {
		t.Errorf("GoP pattern wrong: %v %v", o2.IsIFrame, o3.IsIFrame)
	}
	// ForceNextIFrame overrides.
	a.ProcessAndCheckForcedI(t)
}

// ProcessAndCheckForcedI is a test helper on Agent (same package).
func (a *Agent) ProcessAndCheckForcedI(t *testing.T) {
	t.Helper()
	a.ForceNextIFrame()
	f := NewFrame(64, 64)
	out, err := a.Process(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsIFrame {
		t.Error("ForceNextIFrame ignored")
	}
}

func TestCacheDetections(t *testing.T) {
	a, err := NewAgent(Config{Width: 64, Height: 64, FPS: 10, FocalPx: 100})
	if err != nil {
		t.Fatal(err)
	}
	a.CacheDetections([]Detection{{Score: 0.9}})
	// No crash, state stored; the tracked path is exercised in
	// internal/sim tests.
}

func TestOutputFrameTypeString(t *testing.T) {
	o := &Output{IsIFrame: true}
	if o.FrameTypeString() != "I" {
		t.Error("I-frame name wrong")
	}
	o.IsIFrame = false
	if o.FrameTypeString() != "P" {
		t.Error("P-frame name wrong")
	}
}

func TestDecoderErrors(t *testing.T) {
	if _, err := NewDecoder(100, 64); err == nil {
		t.Error("expected error for non-MB-aligned size")
	}
	dec, err := NewDecoder(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode([]byte{0xff, 0x00}); err == nil {
		t.Error("expected error for garbage bitstream")
	}
}
