// Command divefleet runs the deterministic fleet simulator: N synthetic
// agents streaming against M simulated edge servers, every session with its
// own telemetry recorder and SLO window, folded each virtual second into
// fleet rollups — aggregate throughput, merged latency quantiles,
// per-profile breakdowns, fleet error-budget burn and a straggler table.
//
// Usage:
//
//	divefleet [-agents 50] [-servers 1] [-duration 30] [-seed 1]
//	          [-chaos outage-burst] [-slow 3,17] [-rollup-every 1]
//	          [-cores 8] [-straggler-factor 3] [-json] [-o report.json]
//	divefleet -serve 127.0.0.1:7062 [-pace 100ms] [-linger 5s] [...]
//	divefleet -live [-agents 3] [-duration 1] [-seed 1] [-cut] [-json]
//	divefleet -live -cluster 3 [-kill-frac 0.5 | -kill-after 2s]
//	          [-journal-dir DIR] [...]
//
// The default (model) mode runs on a virtual clock with seeded link, frame
// and contention models: the same flags and seed produce a byte-identical
// report, so CI can diff fleet behaviour run against run. -slow scripts the
// listed agent indices onto crippled links (5% bandwidth, +300ms service) —
// the straggler pathology the rollup table must surface. -chaos runs every
// agent under a per-agent-seeded variant of the named standard chaos
// scenario.
//
// -serve paces the simulation to wall clock (-pace per rollup) while
// serving the rollup ring at /debug/fleet as JSONL — the live target for
// divedoctor -follow's fleet detectors (straggler-session, noisy-neighbor,
// fleet-burn). -linger keeps the endpoint up after the run so followers
// drain the tail.
//
// -live swaps the model for a small fleet of real edge.Client sessions over
// loopback TCP against real edge.Server instances (wall-clock,
// non-deterministic); -cut routes them through the chaos proxy and severs
// every connection mid-run, exercising the reconnect path fleet-wide.
//
// -cluster (with -live) replaces the bare servers with N members behind the
// health-routed balancer: sessions are placed round-robin with the remaining
// members as failover candidates, and the report gains per-server rollup rows
// plus a migration summary. -kill-frac kills a seed-chosen member once the
// fleet has streamed that fraction of its frames (-kill-after is the
// wall-clock variant); the affected sessions must fail over with a bounded
// re-detection gap. -journal-dir exports each session's decision journal as
// JSONL for divedoctor grading.
//
// Without -json a human summary is printed: the final rollup, per-profile
// table and straggler table. Exit status: 0 on a clean run, 1 when the
// final rollup has stragglers or the fleet burn rate exceeds 1
// (machine-gateable), 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"dive/internal/fleet"
	"dive/internal/obs"
)

func main() {
	rep, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divefleet:", err)
		os.Exit(2)
	}
	if len(rep.Final.Stragglers) > 0 || rep.Final.FleetBurn > 1 {
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (*fleet.Report, error) {
	fs := flag.NewFlagSet("divefleet", flag.ContinueOnError)
	agents := fs.Int("agents", 50, "fleet size")
	servers := fs.Int("servers", 1, "edge server instances (sessions assigned round-robin)")
	duration := fs.Float64("duration", 30, "run length in virtual seconds (wall-clock seconds with -live)")
	seed := fs.Int64("seed", 1, "master seed; same flags + same seed = byte-identical report")
	chaosName := fs.String("chaos", "", "standard chaos scenario every agent runs a seeded variant of (outage-burst, bandwidth-cliff, estimator-poison)")
	slow := fs.String("slow", "", "comma-separated agent indices scripted onto crippled links (straggler pathology)")
	rollupEvery := fs.Float64("rollup-every", 1, "aggregation period in virtual seconds")
	cores := fs.Float64("cores", 8, "per-server service capacity; overload inflates co-tenant latency")
	stragglerFactor := fs.Float64("straggler-factor", 0, "straggler threshold vs the fleet median (0 = default 3)")
	asJSON := fs.Bool("json", false, "print the full report as JSON")
	out := fs.String("o", "", "write the report to this file instead of stdout (implies -json)")
	serve := fs.String("serve", "", "pace the run to wall clock and serve /debug/fleet on this address")
	pace := fs.Duration("pace", 100*time.Millisecond, "wall-clock delay per rollup in -serve mode")
	linger := fs.Duration("linger", 5*time.Second, "keep the -serve endpoint up this long after the run")
	live := fs.Bool("live", false, "run real edge clients/servers over loopback instead of the model")
	cut := fs.Bool("cut", false, "with -live: route through the chaos proxy and sever all connections mid-run")
	clusterN := fs.Int("cluster", 0, "with -live: run this many members behind the health-routed balancer")
	killFrac := fs.Float64("kill-frac", 0, "with -cluster: kill a seeded member once this fraction of the fleet's frames streamed")
	killAfter := fs.Duration("kill-after", 0, "with -cluster: kill a seeded member after this wall-clock delay")
	journalDir := fs.String("journal-dir", "", "with -live: export per-session decision journals (JSONL) to this directory")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	slowIdx, err := parseIndexList(*slow)
	if err != nil {
		return nil, fmt.Errorf("-slow: %w", err)
	}

	var rep *fleet.Report
	switch {
	case *live:
		var errs []error
		rep, errs, err = fleet.RunLive(fleet.LiveSpec{
			Agents: *agents, Servers: *servers, Duration: *duration,
			Seed: *seed, Proxy: *cut, Cut: *cut,
			Cluster: *clusterN, KillAtFrac: *killFrac, KillAfter: *killAfter,
			JournalDir: *journalDir,
			Logf: func(format string, a ...interface{}) {
				fmt.Fprintf(os.Stderr, "divefleet: "+format+"\n", a...)
			},
		})
		if err != nil {
			return nil, err
		}
		for i, e := range errs {
			if e != nil {
				fmt.Fprintf(os.Stderr, "divefleet: session %d: %v\n", i, e)
			}
		}
	default:
		spec := fleet.Spec{
			Agents: *agents, Servers: *servers, Duration: *duration,
			Seed: *seed, Chaos: *chaosName, SlowAgents: slowIdx,
			RollupEverySec: *rollupEvery, ServerCores: *cores,
			StragglerFactor: *stragglerFactor,
		}
		if *serve != "" {
			rep, err = serveFleet(spec, *serve, *pace, *linger)
		} else {
			rep, err = fleet.Run(spec)
		}
		if err != nil {
			return nil, err
		}
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		w = f
	}
	if *asJSON || *out != "" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	printReport(w, rep)
	return rep, nil
}

// serveFleet paces the model run to wall clock while /debug/fleet serves
// the growing rollup ring.
func serveFleet(spec fleet.Spec, addr string, pace, linger time.Duration) (*fleet.Report, error) {
	agg := fleet.NewAggregator(spec)
	mux := http.NewServeMux()
	mux.Handle("/debug/fleet", agg.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	go http.Serve(ln, mux)
	fmt.Fprintf(os.Stderr, "divefleet: serving /debug/fleet on http://%s\n", ln.Addr())

	rep, err := fleet.RunStream(spec, agg, func(obs.FleetRollup) { time.Sleep(pace) })
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "divefleet: run complete (%d rollups), lingering %s\n",
		len(rep.Rollups), linger)
	time.Sleep(linger)
	return rep, nil
}

func printReport(w io.Writer, rep *fleet.Report) {
	f := rep.Final
	if rep.Spec.Cluster > 0 {
		fmt.Fprintf(w, "fleet: %d sessions on a %d-member cluster, %.0fs, seed %d",
			rep.Spec.Agents, rep.Spec.Cluster, rep.Spec.Duration, rep.Spec.Seed)
	} else {
		fmt.Fprintf(w, "fleet: %d sessions on %d server(s), %.0fs, seed %d",
			rep.Spec.Agents, rep.Spec.Servers, rep.Spec.Duration, rep.Spec.Seed)
	}
	if rep.Spec.Chaos != "" {
		fmt.Fprintf(w, ", chaos %s", rep.Spec.Chaos)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "throughput: %d frames (%.1f frames/s), %d bytes\n",
		f.FramesTotal, f.FramesPerSec, f.BytesTotal)
	fmt.Fprintf(w, "latency:    p50 %.0f ms, p95 %.0f ms, p99 %.0f ms (session median p99 %.0f ms)\n",
		f.LatencyP50Sec*1000, f.LatencyP95Sec*1000, f.LatencyP99Sec*1000, f.MedianP99Sec*1000)
	fmt.Fprintf(w, "slo:        fleet burn %.2fx, %d/%d sessions unhealthy, outage %.1f%%\n",
		f.FleetBurn, f.Unhealthy, f.Sessions, f.OutageFrac*100)
	if rep.Live != nil && (rep.Live.Migrations > 0 || rep.Spec.Cluster > 0) {
		fmt.Fprintf(w, "migrations: %d (%d forced, %d redirects), worst re-detection gap %.0f ms\n",
			rep.Live.Migrations, rep.Live.ForcedMigrations, rep.Live.Redirects,
			rep.Live.MaxMigrationGapSec*1000)
	}
	if len(f.PerServer) > 0 {
		fmt.Fprintln(w, "per-server:")
		for _, s := range f.PerServer {
			hb := "never"
			if s.LastHeartbeatAgeSec >= 0 {
				hb = fmt.Sprintf("%.0f ms ago", s.LastHeartbeatAgeSec*1000)
			}
			fmt.Fprintf(w, "  %-10s %-8s %3d sessions  mig in/out %d/%d  heartbeat %s\n",
				s.Server, s.State, s.Sessions, s.MigrationsIn, s.MigrationsOut, hb)
		}
	}
	if len(f.PerProfile) > 0 {
		fmt.Fprintln(w, "per-profile:")
		for _, p := range f.PerProfile {
			fmt.Fprintf(w, "  %-10s %3d sessions  %8d frames  p99 %6.0f ms  burn %.2fx  unhealthy %d\n",
				p.Profile, p.Sessions, p.FramesTotal, p.LatencyP99Sec*1000, p.MeanBurn, p.Unhealthy)
		}
	}
	if len(f.Stragglers) == 0 {
		fmt.Fprintln(w, "stragglers: none")
		return
	}
	fmt.Fprintf(w, "stragglers (> %.0fx the fleet median):\n", stragglerFactorOf(rep))
	for _, s := range f.Stragglers {
		fmt.Fprintf(w, "  %-16s %-10s %6.1fx  %-8s p99 %6.0f ms  burn %6.1fx  %d frames\n",
			s.Session, s.Profile, s.Factor, s.Reason, s.LatencyP99Sec*1000, s.BurnRate, s.Frames)
	}
}

func stragglerFactorOf(rep *fleet.Report) float64 {
	if rep.Spec.StragglerFactor > 0 {
		return rep.Spec.StragglerFactor
	}
	return 3
}

// parseIndexList parses "3,17" into []int{3, 17}.
func parseIndexList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad index %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
