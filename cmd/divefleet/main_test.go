package main

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dive/internal/fleet"
)

// TestRunDeterministicOutput: identical flags must print byte-identical
// JSON reports — the property CI diffs on.
func TestRunDeterministicOutput(t *testing.T) {
	args := []string{"-agents", "30", "-duration", "10", "-seed", "7", "-chaos", "outage-burst", "-json"}
	var out1, out2 bytes.Buffer
	if _, err := run(args, &out1); err != nil {
		t.Fatal(err)
	}
	if _, err := run(args, &out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatal("identical invocations printed different reports")
	}
	var rep fleet.Report
	if err := json.Unmarshal(out1.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if rep.Final.Sessions != 30 || rep.Final.FramesTotal == 0 {
		t.Fatalf("final rollup %+v, want 30 sessions with frames", rep.Final)
	}
}

// TestRunStragglerTable scripts a slow link and checks both the report and
// the human summary surface it.
func TestRunStragglerTable(t *testing.T) {
	var out bytes.Buffer
	rep, err := run([]string{"-agents", "20", "-duration", "10", "-seed", "3", "-slow", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Final.Stragglers) != 1 || rep.Final.Stragglers[0].Session != "RobotCar-004" {
		t.Fatalf("straggler table %+v, want exactly RobotCar-004", rep.Final.Stragglers)
	}
	text := out.String()
	for _, want := range []string{"stragglers", "RobotCar-004", "per-profile"} {
		if !strings.Contains(text, want) {
			t.Errorf("summary missing %q:\n%s", want, text)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if _, err := run([]string{"-slow", "nope"}, &out); err == nil {
		t.Error("bad -slow accepted")
	}
	if _, err := run([]string{"-agents", "5", "-slow", "9", "-duration", "1"}, &out); err == nil {
		t.Error("out-of-range slow index accepted")
	}
	if _, err := run([]string{"-chaos", "full-moon", "-duration", "1"}, &out); err == nil {
		t.Error("unknown chaos scenario accepted")
	}
}

func TestParseIndexList(t *testing.T) {
	got, err := parseIndexList("3, 17")
	if err != nil || !reflect.DeepEqual(got, []int{3, 17}) {
		t.Fatalf("parseIndexList = %v, %v", got, err)
	}
	if got, err := parseIndexList(""); err != nil || got != nil {
		t.Fatalf("empty list = %v, %v", got, err)
	}
}
