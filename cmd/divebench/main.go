// Command divebench regenerates the paper's tables and figures on the
// synthetic substrate and prints them as text tables.
//
// Usage:
//
//	divebench [-scale smoke|default|full] [-seed N] [-only t1,f6,...]
//	          [-json bench_results.json] [-telemetry] [-workers N]
//	          [-speedup=false] [-pipeline-depth N]
//	          [-throughput] [-throughput-secs S]
//	          [-streams N] [-streams-secs S] [-runtime-log runtime.jsonl]
//
// -workers bounds the experiment fan-out and encoder/renderer pool width
// (0 = GOMAXPROCS, 1 = serial). Every table is identical at any width; the
// parallel layer only changes wall-clock time. -speedup measures the
// serial-vs-parallel encoder throughput ratio and records it in -json,
// along with the frame-pipeline throughput ratio (capture ∥ analyze ∥ emit
// at -pipeline-depth frames in flight; 0 disables the measurement).
// -throughput runs the sustained streaming-encode mode: a serial encoder kept
// hot for -throughput-secs wall seconds, default allocation behavior vs the
// pooled steady-state path, reporting frames/sec/core and per-frame heap
// allocation rates in -json alongside the go_heap_live_bytes / GC-pause
// telemetry.
//
// -streams runs the multi-stream packing ladder: 1/4/16/64 (≤ N) concurrent
// pooled serial encoders, reporting aggregate frames/sec/core and GC
// co-tenancy per rung in -json; -runtime-log captures the highest-density
// rung's steady window as a runtime-stats JSONL series for divedoctor
// -runtime.
//
// Experiment ids: t1 (Table I), f6, f7, f9, f10, f11, f12, f13, f14,
// f16, f17, abl, abl2, night, parity. By default every experiment except
// parity runs at the default scale; parity (the fixed-point-vs-float
// transform gate, which doubles the end-to-end sweep) runs only when
// explicitly selected with -only parity.
//
// -json also writes a machine-readable results file: per-profile bitrate,
// AP and latency quantiles from the end-to-end experiments (f16/f17),
// per-experiment wall times, and — with -telemetry — a snapshot of the
// pipeline telemetry (stage-duration histograms, counters, gauges), so
// successive PRs can track a performance trajectory.
//
// -telemetry installs a process-wide recorder and prints a one-line
// pipeline summary to stderr every 10 seconds while experiments run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"dive/internal/experiments"
	"dive/internal/obs"
)

// logWriter converts an optional file into an io.Writer without the
// typed-nil interface trap (a nil *os.File is a non-nil io.Writer).
func logWriter(f *os.File) io.Writer {
	if f == nil {
		return nil
	}
	return f
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "divebench:", err)
		os.Exit(1)
	}
}

// collectRunMeta captures the execution environment for the -json output.
// The git commit is best effort: empty outside a checkout or without git.
func collectRunMeta(workers int, profile string) obs.RunMeta {
	meta := obs.CollectRunMeta(workers)
	meta.Profile = profile
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		meta.GitCommit = strings.TrimSpace(string(out))
	}
	return meta
}

func run(args []string) error {
	fs := flag.NewFlagSet("divebench", flag.ContinueOnError)
	scaleName := fs.String("scale", "default", "experiment scale: smoke, default or full")
	seed := fs.Int64("seed", experiments.BaseSeed, "base random seed")
	only := fs.String("only", "", "comma-separated experiment ids (t1,f6,f7,f9,f10,f11,f12,f13,f14,f16,f17,abl,abl2,night,parity)")
	jsonPath := fs.String("json", "bench_results.json", "write machine-readable results here (empty disables)")
	telemetry := fs.Bool("telemetry", false, "record pipeline telemetry and print periodic one-line summaries to stderr")
	workers := fs.Int("workers", 0, "experiment fan-out and encoder pool width (0 = GOMAXPROCS, 1 = serial); tables are identical at any width")
	speedup := fs.Bool("speedup", true, "measure serial-vs-parallel encoder speedup and record it in -json")
	pipelineDepth := fs.Int("pipeline-depth", 3, "frame-pipeline depth for the pipeline-speedup measurement (0 disables)")
	throughput := fs.Bool("throughput", false, "measure sustained streaming-encode throughput (fresh vs pooled) and record it in -json")
	throughputSecs := fs.Float64("throughput-secs", 3, "wall-clock seconds per sustained-throughput run")
	streams := fs.Int("streams", 0, "run the multi-stream packing ladder up to N concurrent encoders (0 disables; the 1/4/16/64 ladder is filtered to ≤ N)")
	streamsSecs := fs.Float64("streams-secs", 2, "wall-clock seconds per packing-ladder rung")
	runtimeLog := fs.String("runtime-log", "", "write periodic runtime snapshots (JSONL) during -streams for divedoctor -runtime")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.SetWorkers(*workers)
	var scale experiments.Scale
	switch *scaleName {
	case "smoke":
		scale = experiments.ScaleSmoke
	case "default":
		scale = experiments.ScaleDefault
	case "full":
		scale = experiments.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	selected := func(id string) bool { return len(want) == 0 || want[id] }

	var rec *obs.Recorder
	if *telemetry {
		rec = obs.NewRecorder(4096)
		obs.SetDefault(rec)
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(10 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					fmt.Fprintln(os.Stderr, "telemetry:", rec.Summary())
				case <-stop:
					return
				}
			}
		}()
	}

	// results accumulates the machine-readable output for -json.
	results := &benchResults{
		Scale: scale.String(), Seed: *seed,
		RunMeta:        collectRunMeta(*workers, scale.String()),
		ExperimentSecs: map[string]float64{},
	}

	type exp struct {
		id  string
		run func() (*experiments.Table, error)
	}
	exps := []exp{
		{"t1", func() (*experiments.Table, error) {
			return experiments.RenderTableI(experiments.TableI(scale, *seed)), nil
		}},
		{"f6", func() (*experiments.Table, error) {
			r, err := experiments.Fig6EgoMotion(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig6(r), nil
		}},
		{"f7", func() (*experiments.Table, error) {
			r, err := experiments.Fig7RSampling(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig7(r), nil
		}},
		{"f9", func() (*experiments.Table, error) {
			rows, err := experiments.Fig9MotionEstimation(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig9(rows), nil
		}},
		{"f10", func() (*experiments.Table, error) {
			rows, err := experiments.Fig10SampleCount(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig10(rows), nil
		}},
		{"f11", func() (*experiments.Table, error) {
			rows, err := experiments.Fig11QPAssignment(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig11(rows), nil
		}},
		{"f12", func() (*experiments.Table, error) {
			rows, err := experiments.Fig12Foreground(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig12(rows), nil
		}},
		{"f13", func() (*experiments.Table, error) {
			rows, err := experiments.Fig13OfflineTracking(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig13(rows), nil
		}},
		{"f14", func() (*experiments.Table, error) {
			rows, err := experiments.Fig14MotionStates(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderFig14(rows), nil
		}},
		{"f16", func() (*experiments.Table, error) {
			rows, err := experiments.Fig16EndToEndRobotCar(scale, *seed)
			if err != nil {
				return nil, err
			}
			results.EndToEnd = append(results.EndToEnd, rows...)
			return experiments.RenderEndToEnd("Fig 16: end-to-end comparison, RobotCar", rows), nil
		}},
		{"abl", func() (*experiments.Table, error) {
			rows, err := experiments.AblationRotation(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderAblation(rows), nil
		}},
		{"abl2", func() (*experiments.Table, error) {
			rows, err := experiments.AblationSubPel(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderSubPelAblation(rows), nil
		}},
		{"night", func() (*experiments.Table, error) {
			rows, err := experiments.NightStudy(scale, *seed)
			if err != nil {
				return nil, err
			}
			return experiments.RenderNight(rows), nil
		}},
		{"parity", func() (*experiments.Table, error) {
			r, err := experiments.TransformParity(scale, *seed)
			if err != nil {
				return nil, err
			}
			results.Parity = &r
			return experiments.RenderParity(r), nil
		}},
		{"f17", func() (*experiments.Table, error) {
			rows, err := experiments.Fig17EndToEndNuScenes(scale, *seed)
			if err != nil {
				return nil, err
			}
			results.EndToEnd = append(results.EndToEnd, rows...)
			return experiments.RenderEndToEnd("Fig 17: end-to-end comparison, nuScenes", rows), nil
		}},
	}

	fmt.Printf("divebench: scale=%s seed=%d\n\n", scale, *seed)
	for _, e := range exps {
		if !selected(e.id) {
			continue
		}
		// parity doubles the end-to-end sweep; it only runs when asked for.
		if e.id == "parity" && !want["parity"] {
			continue
		}
		t0 := time.Now()
		table, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		table.Fprint(os.Stdout)
		took := time.Since(t0).Seconds()
		results.ExperimentSecs[e.id] = took
		fmt.Printf("[%s took %.1fs]\n\n", e.id, took)
	}

	if *speedup && *jsonPath != "" {
		t0 := time.Now()
		sp, err := experiments.EncodeSpeedup(scale, *seed, *workers)
		if err != nil {
			return fmt.Errorf("speedup: %w", err)
		}
		results.Speedup = &sp
		results.ExperimentSecs["speedup"] = time.Since(t0).Seconds()
		fmt.Printf("encoder speedup: %.2fx (%.1f -> %.1f ms/frame, %d workers)\n\n",
			sp.Speedup, sp.SerialMs, sp.ParallelMs, sp.Workers)
	}

	if *speedup && *jsonPath != "" && *pipelineDepth >= 2 {
		t0 := time.Now()
		pp, err := experiments.PipelineSpeedup(scale, *seed, *workers, *pipelineDepth)
		if err != nil {
			return fmt.Errorf("pipeline speedup: %w", err)
		}
		results.Pipeline = &pp
		results.ExperimentSecs["pipeline_speedup"] = time.Since(t0).Seconds()
		fmt.Printf("pipeline speedup: %.2fx at depth %d (%.1f -> %.1f ms/frame, %.2f frames in flight mean, %d peak)\n\n",
			pp.Speedup, pp.Depth, pp.SerialMs, pp.PipelinedMs, pp.MeanInFlight, pp.MaxInFlight)
	}

	if *throughput {
		t0 := time.Now()
		tp, err := experiments.SustainedThroughput(scale, *seed, *throughputSecs)
		if err != nil {
			return fmt.Errorf("throughput: %w", err)
		}
		results.Throughput = &tp
		results.ExperimentSecs["throughput"] = time.Since(t0).Seconds()
		fmt.Printf("sustained throughput %dx%d: fresh %.1f fps (%.2f allocs/frame), pooled %.1f fps (%.2f allocs/frame), %.2fx\n\n",
			tp.Width, tp.Height, tp.Fresh.FPS, tp.Fresh.AllocsPerFrame,
			tp.Pooled.FPS, tp.Pooled.AllocsPerFrame, tp.PooledSpeedup)
	}

	if *streams > 0 {
		t0 := time.Now()
		var logW *os.File
		if *runtimeLog != "" {
			f, err := os.Create(*runtimeLog)
			if err != nil {
				return fmt.Errorf("streams runtime log: %w", err)
			}
			logW = f
		}
		ladder := experiments.DefaultStreamLadder(*streams)
		ms, err := experiments.MultiStreamPacking(scale, *seed, *streamsSecs, ladder, logWriter(logW))
		if logW != nil {
			logW.Close()
		}
		if err != nil {
			return fmt.Errorf("streams: %w", err)
		}
		results.MultiStream = &ms
		results.ExperimentSecs["streams"] = time.Since(t0).Seconds()
		experiments.RenderMultiStream(ms).Fprint(os.Stdout)
		fmt.Println()
	}

	if *jsonPath != "" {
		if rec != nil {
			results.Telemetry = rec.Snapshot()
		}
		// Runtime shape of the producing process (heap, GC pauses,
		// goroutines): with RunMeta it lets an analyzer tell a code
		// regression from memory pressure on the bench machine.
		rt := obs.CollectRuntimeStats()
		results.Runtime = &rt
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return nil
}

// benchResults is the schema of the -json output. EndToEnd holds the
// per-profile, per-scheme rows of the f16/f17 comparisons (bitrate, AP,
// p50/p95 latency); Telemetry is the recorder snapshot when -telemetry
// was set (stage-duration histograms with quantiles, counters, gauges).
type benchResults struct {
	Scale string `json:"scale"`
	Seed  int64  `json:"seed"`
	// RunMeta pins the environment that produced the numbers (Go version,
	// machine shape, -workers, git commit) so analyzers can tell a code
	// regression from a machine change.
	RunMeta        obs.RunMeta               `json:"run_meta"`
	ExperimentSecs map[string]float64        `json:"experiment_secs"`
	EndToEnd       []experiments.EndToEndRow `json:"end_to_end,omitempty"`
	// Speedup is the measured serial-vs-parallel encoder throughput ratio
	// on this machine (bit-exact identical bitstreams both ways).
	Speedup *experiments.SpeedupResult `json:"encode_speedup,omitempty"`
	// Pipeline is the frame-level pipeline throughput ratio (capture ∥
	// analyze ∥ emit, byte-exact identical bitstreams both ways) with the
	// achieved frames-in-flight occupancy.
	Pipeline *experiments.PipelineResult `json:"pipeline_speedup,omitempty"`
	// Throughput is the sustained streaming-encode measurement (-throughput):
	// frames/sec/core and per-frame heap allocation rates, fresh vs pooled.
	Throughput *experiments.ThroughputResult `json:"throughput,omitempty"`
	// MultiStream is the -streams packing ladder: aggregate frames/sec/core
	// and GC co-tenancy at 1/4/16/64 concurrent pooled encoders.
	MultiStream *experiments.MultiStreamResult `json:"multistream,omitempty"`
	// Parity is the fixed-point-vs-float64 transform gate (-only parity):
	// end-to-end AP and bitrate deltas between the production kernels and
	// Config.RefTransform.
	Parity    *experiments.ParityResult `json:"transform_parity,omitempty"`
	Telemetry *obs.Snapshot             `json:"telemetry,omitempty"`
	// Runtime captures the Go runtime at the end of the run — live heap,
	// GC pause p99, goroutine count — sampled via runtime/metrics.
	Runtime *obs.RuntimeStats `json:"runtime,omitempty"`
}
