// Command diveserver runs the edge analytics server of the live demo: it
// accepts DiVE sessions over TCP, decodes incoming bitstreams, runs the
// simulated DNN and streams detections back.
//
// Usage:
//
//	diveserver [-addr :7060] [-telemetry :7070] [-read-timeout 60s]
//	           [-write-timeout 10s] [-drain 5s]
//
// The wire protocol is CRC-framed: corrupt or malformed uplink messages are
// rejected with a NACK demanding a keyframe instead of killing the session,
// and sessions may resume mid-clip after a client reconnect. On SIGINT or
// SIGTERM the server drains gracefully: it stops accepting sessions, lets
// in-flight frames finish for up to -drain, then exits.
//
// -telemetry serves live introspection on the given address: /metrics
// (Prometheus text format: global and per-session frame/byte/NACK counters,
// decode and detect latency histograms, SLO burn-rate gauges, Go runtime
// gauges), /debug/slo (per-session SLO windows with error-budget burn),
// /debug/doctor (streaming diagnosis of the live decision journal),
// /debug/vars (JSON snapshot) and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dive/internal/doctor"
	"dive/internal/edge"
	"dive/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diveserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("diveserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7060", "listen address")
	telemetry := fs.String("telemetry", "", "serve telemetry (/metrics, pprof) on this address, e.g. :7070")
	readTimeout := fs.Duration("read-timeout", 60*time.Second, "per-message read deadline; an idle session past it is dropped")
	writeTimeout := fs.Duration("write-timeout", 10*time.Second, "per-result write deadline")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown grace for in-flight frames on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := edge.NewServer()
	srv.Logf = log.Printf
	srv.ReadTimeout = *readTimeout
	srv.WriteTimeout = *writeTimeout
	if *telemetry != "" {
		rec := obs.NewRecorder(0)
		srv.Obs = rec
		live := doctor.NewLive(doctor.Thresholds{}, -1, rec.Journal().Snapshot)
		rec.RegisterDebug("/debug/doctor", live.Handler())
		ln, err := net.Listen("tcp", *telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer ln.Close()
		log.Printf("telemetry on http://%s/ (/metrics, /debug/slo, /debug/doctor, /debug/vars, /debug/pprof/)", ln.Addr())
		go http.Serve(ln, rec.Handler())
		// Keep the Go runtime gauges on /metrics fresh without coupling
		// their collection to scrape handling.
		go func() {
			for range time.Tick(5 * time.Second) {
				rec.UpdateRuntimeGauges()
			}
		}()
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("edge server listening on %s", bound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("%s: draining sessions (up to %s)...", sig, *drain)
		srv.Shutdown(*drain)
	}()

	return srv.Serve()
}
