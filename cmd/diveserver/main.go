// Command diveserver runs the edge analytics server of the live demo: it
// accepts DiVE sessions over TCP, decodes incoming bitstreams, runs the
// simulated DNN and streams detections back.
//
// Usage:
//
//	diveserver [-addr :7060]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dive/internal/edge"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diveserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("diveserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7060", "listen address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := edge.NewServer()
	srv.Logf = log.Printf
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("edge server listening on %s", bound)
	return srv.Serve()
}
