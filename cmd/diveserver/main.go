// Command diveserver runs the edge analytics server of the live demo: it
// accepts DiVE sessions over TCP, decodes incoming bitstreams, runs the
// simulated DNN and streams detections back.
//
// Usage:
//
//	diveserver [-addr :7060] [-telemetry :7070]
//
// -telemetry serves live introspection on the given address: /metrics
// (Prometheus text format: session/frame/byte counters, decode and detect
// latency histograms), /debug/vars (JSON snapshot) and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"dive/internal/edge"
	"dive/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diveserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("diveserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7060", "listen address")
	telemetry := fs.String("telemetry", "", "serve telemetry (/metrics, pprof) on this address, e.g. :7070")
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv := edge.NewServer()
	srv.Logf = log.Printf
	if *telemetry != "" {
		rec := obs.NewRecorder(0)
		srv.Obs = rec
		ln, err := net.Listen("tcp", *telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer ln.Close()
		log.Printf("telemetry on http://%s/ (/metrics, /debug/vars, /debug/pprof/)", ln.Addr())
		go http.Serve(ln, rec.Handler())
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("edge server listening on %s", bound)
	return srv.Serve()
}
