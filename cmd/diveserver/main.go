// Command diveserver runs the edge analytics server of the live demo: it
// accepts DiVE sessions over TCP, decodes incoming bitstreams, runs the
// simulated DNN and streams detections back.
//
// Usage:
//
//	diveserver [-addr :7060] [-telemetry :7070] [-read-timeout 60s]
//	           [-write-timeout 10s] [-drain 5s]
//	diveserver -cluster 3 [-kill-after 30s] [-seed 1] [-telemetry :7070]
//
// -cluster runs N edge servers on loopback behind the health-routed balancer
// instead of one bare server: members are heartbeat-probed, their addresses
// are printed at startup (clients take the whole list as their failover
// candidates), and membership transitions are logged. -kill-after schedules
// the kill-a-server chaos drill: a seed-chosen member dies abruptly that long
// into the run, and its sessions must fail over to the survivors. With
// -telemetry, /debug/cluster serves the live membership table as JSON.
//
// The wire protocol is CRC-framed: corrupt or malformed uplink messages are
// rejected with a NACK demanding a keyframe instead of killing the session,
// and sessions may resume mid-clip after a client reconnect. On SIGINT or
// SIGTERM the server drains gracefully: it stops accepting sessions, lets
// in-flight frames finish for up to -drain, then exits.
//
// -telemetry serves live introspection on the given address: /metrics
// (Prometheus text format: global and per-session frame/byte/NACK counters,
// decode and detect latency histograms, SLO burn-rate gauges, Go runtime
// gauges), /debug/slo (per-session SLO windows with error-budget burn),
// /debug/doctor (streaming diagnosis of the live decision journal),
// /debug/vars (JSON snapshot) and /debug/pprof/.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dive/internal/chaos"
	"dive/internal/cluster"
	"dive/internal/doctor"
	"dive/internal/edge"
	"dive/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diveserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("diveserver", flag.ContinueOnError)
	addr := fs.String("addr", ":7060", "listen address")
	telemetry := fs.String("telemetry", "", "serve telemetry (/metrics, pprof) on this address, e.g. :7070")
	readTimeout := fs.Duration("read-timeout", 60*time.Second, "per-message read deadline; an idle session past it is dropped")
	writeTimeout := fs.Duration("write-timeout", 10*time.Second, "per-result write deadline")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown grace for in-flight frames on SIGINT/SIGTERM")
	members := fs.Int("cluster", 0, "run this many members behind the health-routed balancer instead of one server")
	killAfter := fs.Duration("kill-after", 0, "with -cluster: kill a seed-chosen member after this long (chaos drill)")
	seed := fs.Int64("seed", 1, "seed for the -kill-after victim choice")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *members > 0 {
		return runCluster(*members, *killAfter, *seed, *telemetry, *readTimeout, *writeTimeout)
	}
	srv := edge.NewServer()
	srv.Logf = log.Printf
	srv.ReadTimeout = *readTimeout
	srv.WriteTimeout = *writeTimeout
	if *telemetry != "" {
		rec := obs.NewRecorder(0)
		srv.Obs = rec
		live := doctor.NewLive(doctor.Thresholds{}, -1, rec.Journal().Snapshot)
		rec.RegisterDebug("/debug/doctor", live.Handler())
		ln, err := net.Listen("tcp", *telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer ln.Close()
		log.Printf("telemetry on http://%s/ (/metrics, /debug/slo, /debug/doctor, /debug/vars, /debug/pprof/)", ln.Addr())
		go http.Serve(ln, rec.Handler())
		// Keep the Go runtime gauges on /metrics fresh without coupling
		// their collection to scrape handling.
		go func() {
			for range time.Tick(5 * time.Second) {
				rec.UpdateRuntimeGauges()
			}
		}()
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("edge server listening on %s", bound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("%s: draining sessions (up to %s)...", sig, *drain)
		srv.Shutdown(*drain)
	}()

	return srv.Serve()
}

// runCluster runs N members behind the balancer until SIGINT/SIGTERM,
// optionally scheduling the seeded kill drill.
func runCluster(members int, killAfter time.Duration, seed int64, telemetry string, readTimeout, writeTimeout time.Duration) error {
	c, err := cluster.New(cluster.Config{
		Members: members,
		Configure: func(i int, srv *edge.Server) {
			srv.Logf = log.Printf
			srv.ReadTimeout = readTimeout
			srv.WriteTimeout = writeTimeout
			srv.Obs = obs.NewRecorder(0)
		},
		Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	for _, st := range c.Status() {
		log.Printf("cluster member %s listening on %s", st.Name, st.Addr)
	}

	if telemetry != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			type row struct {
				Name                string  `json:"name"`
				Addr                string  `json:"addr"`
				State               string  `json:"state"`
				Sessions            int     `json:"sessions"`
				Load                float64 `json:"load"`
				LastHeartbeatAgeSec float64 `json:"last_heartbeat_age_sec"`
			}
			rows := make([]row, 0, members)
			for _, st := range c.Status() {
				rows = append(rows, row{
					Name: st.Name, Addr: st.Addr, State: st.State.String(),
					Sessions: st.Sessions, Load: st.Load,
					LastHeartbeatAgeSec: st.LastHeartbeatAgeSec,
				})
			}
			json.NewEncoder(w).Encode(rows)
		})
		ln, err := net.Listen("tcp", telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer ln.Close()
		log.Printf("cluster telemetry on http://%s/debug/cluster", ln.Addr())
		go http.Serve(ln, mux)
	}

	var stopDrill func()
	if killAfter > 0 {
		sc := chaos.KillMember(seed, members, killAfter.Seconds(), 1, 0)
		log.Printf("chaos drill armed: member %d dies in %s", sc.Faults[0].Member, killAfter)
		stopDrill = sc.Apply(c)
		defer stopDrill()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	log.Printf("%s: stopping cluster", sig)
	return nil
}
