// Command divetrace runs the DiVE agent over a synthetic clip and dumps a
// per-frame CSV of everything the pipeline decided — η, ego-motion
// judgement, estimated rotation, FOE, foreground size, δ, base QP, bits and
// reconstruction PSNR — for plotting and debugging.
//
// Usage:
//
//	divetrace [-profile nuScenes] [-seed 1] [-duration 4] [-mbps 2] [-o out.csv]
//	          [-format csv|jsonl|journal|spans] [-pipeline-depth N]
//	divetrace -serve 127.0.0.1:7061 [-chaos outage-burst] [-pace 30ms]
//	          [-linger 5s] [-profile ...] [-seed ...] [-duration ...]
//
// -serve turns divetrace into a live telemetry source: the run is paced to
// wall-clock (-pace per frame) while a telemetry HTTP endpoint serves
// /metrics, /debug/journal, /debug/slo and a streaming /debug/doctor — a
// self-contained target for divedoctor -follow and for exercising the
// fleet observability stack without a real agent/server pair. -chaos picks
// a named scenario from the standard chaos suite (outage-burst,
// bandwidth-cliff, estimator-poison) as the link trace; without it the
// constant -mbps link is used. -linger keeps the endpoint up after the run
// finishes so followers can drain the journal tail.
//
// -format jsonl emits the telemetry subsystem's frame-lifecycle records
// (one JSON object per frame: stage durations in milliseconds,
// rate-control internals, uplink ack) instead of the analysis CSV — the
// same schema served live at /debug/frames by diveagent -telemetry.
// -format journal emits the per-frame decision journal and -format spans
// the per-frame trace spans (the /debug/journal and /debug/spans schemas),
// both directly consumable by cmd/divedoctor. Unknown formats are rejected
// with a non-zero exit.
//
// -pipeline-depth >= 2 runs the agent's frame-level pipeline (capture ∥
// analyze ∥ emit) for the telemetry formats, so the emitted spans show the
// real overlapped execution. Records and bitstreams are identical to the
// serial run at any depth; only the wall-clock span timings change. The
// CSV format reads the encoder reconstruction per frame and therefore
// always runs serially.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"dive/internal/chaos"
	"dive/internal/core"
	"dive/internal/doctor"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/sim"
	"dive/internal/world"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("divetrace", flag.ContinueOnError)
	profile := fs.String("profile", "nuScenes", "clip profile: nuScenes, nuScenes-night, RobotCar or KITTI")
	seed := fs.Int64("seed", 1, "clip seed")
	duration := fs.Float64("duration", 4, "clip duration in seconds")
	mbps := fs.Float64("mbps", 2, "simulated uplink bandwidth")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "csv", "output format: csv, jsonl (frame-lifecycle records), journal (decision journal) or spans (trace spans)")
	pipelineDepth := fs.Int("pipeline-depth", 1, "frame-pipeline depth for the telemetry formats (1 = serial; csv is always serial)")
	serve := fs.String("serve", "", "serve live telemetry on this address while running (e.g. 127.0.0.1:7061); disables file output")
	chaosName := fs.String("chaos", "", "run under a standard chaos scenario (outage-burst, bandwidth-cliff, estimator-poison) instead of a constant link")
	pace := fs.Duration("pace", 30*time.Millisecond, "wall-clock delay per frame in -serve mode, so followers see the journal grow")
	linger := fs.Duration("linger", 5*time.Second, "keep the -serve endpoint up this long after the run ends, so followers can drain the tail")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "csv", "jsonl", "journal", "spans":
	default:
		fs.Usage()
		return fmt.Errorf("unknown -format %q (supported: csv, jsonl, journal, spans)", *format)
	}

	var p world.Profile
	switch *profile {
	case "nuScenes":
		p = world.NuScenesLike()
	case "nuScenes-night":
		p = world.NuScenesNightLike()
	case "RobotCar":
		p = world.RobotCarLike()
	case "KITTI":
		p = world.KITTILike()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	p.ClipDuration = *duration

	if *serve != "" {
		return ServeLive(p, *seed, *mbps, *chaosName, *serve, *pace, *linger)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format != "csv" {
		return TraceTelemetry(p, *seed, netsim.Mbps(*mbps), *format, *pipelineDepth, w)
	}
	return Trace(p, *seed, netsim.Mbps(*mbps), w)
}

// Trace generates the clip, runs the agent, and writes the CSV to w.
func Trace(p world.Profile, seed int64, uplinkBps float64, w io.Writer) error {
	clip := world.GenerateClip(p, seed)
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = seed
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "frame,time_s,state,eta,moving,rot_ok,phi_x,phi_y,foe_x,foe_y,fg_frac,fg_objects,reused,delta,base_qp,frame_type,bits,target_bits,est_bw_mbps,psnr_db"); err != nil {
		return err
	}
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		fr, err := agent.ProcessFrame(frame, now)
		if err != nil {
			return err
		}
		tx := float64(fr.Encoded.NumBits) / uplinkBps
		agent.OnTransmitComplete(now, now+tx, fr.Encoded.NumBits)

		fgFrac, fgObjs := 0.0, 0
		if fr.Foreground != nil {
			fgFrac = fr.Foreground.Fraction()
			fgObjs = len(fr.Foreground.Objects)
		}
		// Reconstruction quality as the server will see it (the encoder's
		// recon is bit-exact with the decoder output).
		psnr := imgx.PSNR(imgx.MSE(frame, agentRecon(agent)))
		if _, err := fmt.Fprintf(w, "%d,%.4f,%s,%.4f,%t,%t,%.6f,%.6f,%.2f,%.2f,%.4f,%d,%t,%d,%d,%s,%d,%d,%.3f,%.2f\n",
			i, now, clip.Poses[i].State, fr.Eta, fr.Moving,
			fr.Rotation.OK, fr.Rotation.PhiX, fr.Rotation.PhiY,
			fr.FOE.X, fr.FOE.Y,
			fgFrac, fgObjs, fr.Reused,
			fr.Delta, fr.Encoded.BaseQP, fr.Encoded.Type,
			fr.Encoded.NumBits, fr.TargetBits,
			fr.EstimatedBandwidth/1e6, psnr,
		); err != nil {
			return err
		}
	}
	return nil
}

// agentRecon exposes the encoder reconstruction for PSNR reporting.
func agentRecon(a *core.Agent) *imgx.Plane { return a.Reconstructed() }

// TraceJSONL runs the agent with a telemetry recorder attached and writes
// the frame-lifecycle ring as JSONL.
func TraceJSONL(p world.Profile, seed int64, uplinkBps float64, w io.Writer) error {
	return TraceTelemetry(p, seed, uplinkBps, "jsonl", 1, w)
}

// TraceTelemetry runs the agent with a telemetry recorder attached and
// writes the selected telemetry stream as JSONL: "jsonl" emits the
// frame-lifecycle ring, "journal" the decision journal, "spans" the frame
// trace spans. depth >= 2 overlaps capture, analysis and entropy coding
// via the agent's frame pipeline; the records are identical at any depth
// (only wall-clock span timings change).
func TraceTelemetry(p world.Profile, seed int64, uplinkBps float64, format string, depth int, w io.Writer) error {
	clip := world.GenerateClip(p, seed)
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = seed
	rec := obs.NewRecorder(clip.NumFrames())
	cfg.Obs = rec
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return err
	}
	// The uplink ack is analysis-stage feedback: it must land before the
	// next frame's rate control runs, which the pipeline guarantees by
	// running the post hook on the analysis stage.
	_, err = agent.ProcessStream(clip.NumFrames(), depth,
		func(i int) (*imgx.Plane, float64) {
			return clip.Frames[i], float64(i) / clip.FPS
		},
		func(i int, fr *core.FrameResult) error {
			now := float64(i) / clip.FPS
			tx := float64(fr.Encoded.NumBits) / uplinkBps
			agent.OnTransmitComplete(now, now+tx, fr.Encoded.NumBits)
			return nil
		},
		nil)
	if err != nil {
		return err
	}
	switch format {
	case "journal":
		return rec.Journal().WriteJSONL(w)
	case "spans":
		return rec.Spans().WriteJSONL(w)
	default:
		return rec.Frames().WriteJSONL(w)
	}
}

// ServeLive runs the full DiVE scheme (agent + simulated link) paced to
// wall-clock while serving live telemetry over HTTP: the standard recorder
// endpoints plus a streaming /debug/doctor. It is the self-contained target
// for divedoctor -follow — `make doctor-live` points one at the other.
func ServeLive(p world.Profile, seed int64, mbps float64, chaosName, addr string, pace, linger time.Duration) error {
	clip := world.GenerateClip(p, seed)
	rec := obs.NewRecorder(clip.NumFrames())
	live := doctor.NewLive(doctor.Thresholds{}, -1, rec.Journal().Snapshot)
	rec.RegisterDebug("/debug/doctor", live.Handler())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, rec.Handler())
	fmt.Fprintf(os.Stderr, "divetrace: serving telemetry on http://%s\n", ln.Addr())

	trace := netsim.Trace(netsim.ConstantTrace(netsim.Mbps(mbps)))
	if chaosName != "" {
		sc, err := findScenario(chaosName, seed, p.ClipDuration)
		if err != nil {
			return err
		}
		trace = sc.Trace
	}
	link := netsim.NewLink(trace, 0.012)
	link.Obs = rec

	scheme := &sim.DiVE{
		ConfigFn:  func(cfg *core.AgentConfig) { cfg.Obs = rec },
		FrameHook: func(int) { time.Sleep(pace) },
	}
	if _, err := scheme.Run(clip, link, sim.NewEnv(seed)); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "divetrace: run complete (%d frames), lingering %s\n",
		clip.NumFrames(), linger)
	time.Sleep(linger)
	return nil
}

// findScenario resolves a chaos scenario by name from the standard suite.
func findScenario(name string, seed int64, duration float64) (chaos.Scenario, error) {
	all := chaos.StandardScenarios(seed, duration)
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
		if sc.Name == name {
			return sc, nil
		}
	}
	return chaos.Scenario{}, fmt.Errorf("unknown -chaos scenario %q (available: %v)", name, names)
}
