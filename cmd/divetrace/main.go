// Command divetrace runs the DiVE agent over a synthetic clip and dumps a
// per-frame CSV of everything the pipeline decided — η, ego-motion
// judgement, estimated rotation, FOE, foreground size, δ, base QP, bits and
// reconstruction PSNR — for plotting and debugging.
//
// Usage:
//
//	divetrace [-profile nuScenes] [-seed 1] [-duration 4] [-mbps 2] [-o out.csv]
//	          [-format csv|jsonl|journal|spans] [-pipeline-depth N]
//
// -format jsonl emits the telemetry subsystem's frame-lifecycle records
// (one JSON object per frame: stage durations in milliseconds,
// rate-control internals, uplink ack) instead of the analysis CSV — the
// same schema served live at /debug/frames by diveagent -telemetry.
// -format journal emits the per-frame decision journal and -format spans
// the per-frame trace spans (the /debug/journal and /debug/spans schemas),
// both directly consumable by cmd/divedoctor. Unknown formats are rejected
// with a non-zero exit.
//
// -pipeline-depth >= 2 runs the agent's frame-level pipeline (capture ∥
// analyze ∥ emit) for the telemetry formats, so the emitted spans show the
// real overlapped execution. Records and bitstreams are identical to the
// serial run at any depth; only the wall-clock span timings change. The
// CSV format reads the encoder reconstruction per frame and therefore
// always runs serially.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dive/internal/core"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "divetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("divetrace", flag.ContinueOnError)
	profile := fs.String("profile", "nuScenes", "clip profile: nuScenes, nuScenes-night, RobotCar or KITTI")
	seed := fs.Int64("seed", 1, "clip seed")
	duration := fs.Float64("duration", 4, "clip duration in seconds")
	mbps := fs.Float64("mbps", 2, "simulated uplink bandwidth")
	out := fs.String("o", "", "output file (default stdout)")
	format := fs.String("format", "csv", "output format: csv, jsonl (frame-lifecycle records), journal (decision journal) or spans (trace spans)")
	pipelineDepth := fs.Int("pipeline-depth", 1, "frame-pipeline depth for the telemetry formats (1 = serial; csv is always serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "csv", "jsonl", "journal", "spans":
	default:
		fs.Usage()
		return fmt.Errorf("unknown -format %q (supported: csv, jsonl, journal, spans)", *format)
	}

	var p world.Profile
	switch *profile {
	case "nuScenes":
		p = world.NuScenesLike()
	case "nuScenes-night":
		p = world.NuScenesNightLike()
	case "RobotCar":
		p = world.RobotCarLike()
	case "KITTI":
		p = world.KITTILike()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	p.ClipDuration = *duration

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format != "csv" {
		return TraceTelemetry(p, *seed, netsim.Mbps(*mbps), *format, *pipelineDepth, w)
	}
	return Trace(p, *seed, netsim.Mbps(*mbps), w)
}

// Trace generates the clip, runs the agent, and writes the CSV to w.
func Trace(p world.Profile, seed int64, uplinkBps float64, w io.Writer) error {
	clip := world.GenerateClip(p, seed)
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = seed
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "frame,time_s,state,eta,moving,rot_ok,phi_x,phi_y,foe_x,foe_y,fg_frac,fg_objects,reused,delta,base_qp,frame_type,bits,target_bits,est_bw_mbps,psnr_db"); err != nil {
		return err
	}
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		fr, err := agent.ProcessFrame(frame, now)
		if err != nil {
			return err
		}
		tx := float64(fr.Encoded.NumBits) / uplinkBps
		agent.OnTransmitComplete(now, now+tx, fr.Encoded.NumBits)

		fgFrac, fgObjs := 0.0, 0
		if fr.Foreground != nil {
			fgFrac = fr.Foreground.Fraction()
			fgObjs = len(fr.Foreground.Objects)
		}
		// Reconstruction quality as the server will see it (the encoder's
		// recon is bit-exact with the decoder output).
		psnr := imgx.PSNR(imgx.MSE(frame, agentRecon(agent)))
		if _, err := fmt.Fprintf(w, "%d,%.4f,%s,%.4f,%t,%t,%.6f,%.6f,%.2f,%.2f,%.4f,%d,%t,%d,%d,%s,%d,%d,%.3f,%.2f\n",
			i, now, clip.Poses[i].State, fr.Eta, fr.Moving,
			fr.Rotation.OK, fr.Rotation.PhiX, fr.Rotation.PhiY,
			fr.FOE.X, fr.FOE.Y,
			fgFrac, fgObjs, fr.Reused,
			fr.Delta, fr.Encoded.BaseQP, fr.Encoded.Type,
			fr.Encoded.NumBits, fr.TargetBits,
			fr.EstimatedBandwidth/1e6, psnr,
		); err != nil {
			return err
		}
	}
	return nil
}

// agentRecon exposes the encoder reconstruction for PSNR reporting.
func agentRecon(a *core.Agent) *imgx.Plane { return a.Reconstructed() }

// TraceJSONL runs the agent with a telemetry recorder attached and writes
// the frame-lifecycle ring as JSONL.
func TraceJSONL(p world.Profile, seed int64, uplinkBps float64, w io.Writer) error {
	return TraceTelemetry(p, seed, uplinkBps, "jsonl", 1, w)
}

// TraceTelemetry runs the agent with a telemetry recorder attached and
// writes the selected telemetry stream as JSONL: "jsonl" emits the
// frame-lifecycle ring, "journal" the decision journal, "spans" the frame
// trace spans. depth >= 2 overlaps capture, analysis and entropy coding
// via the agent's frame pipeline; the records are identical at any depth
// (only wall-clock span timings change).
func TraceTelemetry(p world.Profile, seed int64, uplinkBps float64, format string, depth int, w io.Writer) error {
	clip := world.GenerateClip(p, seed)
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = seed
	rec := obs.NewRecorder(clip.NumFrames())
	cfg.Obs = rec
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return err
	}
	// The uplink ack is analysis-stage feedback: it must land before the
	// next frame's rate control runs, which the pipeline guarantees by
	// running the post hook on the analysis stage.
	_, err = agent.ProcessStream(clip.NumFrames(), depth,
		func(i int) (*imgx.Plane, float64) {
			return clip.Frames[i], float64(i) / clip.FPS
		},
		func(i int, fr *core.FrameResult) error {
			now := float64(i) / clip.FPS
			tx := float64(fr.Encoded.NumBits) / uplinkBps
			agent.OnTransmitComplete(now, now+tx, fr.Encoded.NumBits)
			return nil
		},
		nil)
	if err != nil {
		return err
	}
	switch format {
	case "journal":
		return rec.Journal().WriteJSONL(w)
	case "spans":
		return rec.Spans().WriteJSONL(w)
	default:
		return rec.Frames().WriteJSONL(w)
	}
}
