package main

import (
	"strings"
	"testing"

	"dive/internal/netsim"
	"dive/internal/world"
)

func TestTraceCSVOutput(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	var sb strings.Builder
	if err := Trace(p, 3, netsim.Mbps(2), &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	wantRows := int(0.5*p.FPS) + 1 // header + frames
	if len(lines) != wantRows {
		t.Fatalf("lines = %d, want %d", len(lines), wantRows)
	}
	header := strings.Split(lines[0], ",")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(header) {
			t.Fatalf("row has %d fields, header has %d: %q", got, len(header), row)
		}
	}
	if !strings.Contains(lines[0], "eta") || !strings.Contains(lines[0], "psnr_db") {
		t.Errorf("header missing expected columns: %s", lines[0])
	}
	// First frame is intra.
	if !strings.Contains(lines[1], ",I,") {
		t.Errorf("first frame row should be intra: %s", lines[1])
	}
}

func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-profile", "bogus"}, &sb); err == nil {
		t.Error("expected error for unknown profile")
	}
}
