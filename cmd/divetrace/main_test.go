package main

import (
	"strings"
	"testing"

	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

func TestTraceCSVOutput(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	var sb strings.Builder
	if err := Trace(p, 3, netsim.Mbps(2), &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	wantRows := int(0.5*p.FPS) + 1 // header + frames
	if len(lines) != wantRows {
		t.Fatalf("lines = %d, want %d", len(lines), wantRows)
	}
	header := strings.Split(lines[0], ",")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(header) {
			t.Fatalf("row has %d fields, header has %d: %q", got, len(header), row)
		}
	}
	if !strings.Contains(lines[0], "eta") || !strings.Contains(lines[0], "psnr_db") {
		t.Errorf("header missing expected columns: %s", lines[0])
	}
	// First frame is intra.
	if !strings.Contains(lines[1], ",I,") {
		t.Errorf("first frame row should be intra: %s", lines[1])
	}
}

func TestRunFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-profile", "bogus"}, &sb); err == nil {
		t.Error("expected error for unknown profile")
	}
	err := run([]string{"-format", "xml"}, &sb)
	if err == nil {
		t.Fatal("expected error for unknown format")
	}
	for _, want := range []string{"xml", "csv", "jsonl", "journal", "spans"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("format error %q does not mention %q", err, want)
		}
	}
}

func TestJournalFormatFeedsDoctorDecoder(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	var sb strings.Builder
	if err := TraceTelemetry(p, 3, netsim.Mbps(2), "journal", 1, &sb); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadJournal(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("journal output does not round-trip: %v", err)
	}
	if len(recs) != int(0.5*p.FPS) {
		t.Fatalf("journal has %d records, want %d", len(recs), int(0.5*p.FPS))
	}
	for i, r := range recs {
		if r.Frame != i || r.TraceID == 0 || r.EtaThreshold <= 0 {
			t.Errorf("record %d malformed: %+v", i, r)
		}
	}

	// The journal carries no wall-clock timings, so a pipelined run must
	// reproduce it byte for byte.
	var pipelined strings.Builder
	if err := TraceTelemetry(p, 3, netsim.Mbps(2), "journal", 3, &pipelined); err != nil {
		t.Fatal(err)
	}
	if pipelined.String() != sb.String() {
		t.Error("journal output differs between depth 1 and depth 3")
	}
}

func TestSpansFormatRoundTrips(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	var sb strings.Builder
	if err := TraceTelemetry(p, 3, netsim.Mbps(2), "spans", 3, &sb); err != nil {
		t.Fatal(err)
	}
	spans, err := obs.ReadSpans(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("spans output does not round-trip: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	for _, s := range spans {
		if s.TraceID == 0 || s.Name == "" || s.Site == "" {
			t.Errorf("span malformed: %+v", s)
		}
	}
}
