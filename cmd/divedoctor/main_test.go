package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dive/internal/doctor"
	"dive/internal/obs"
)

func writeJournal(t *testing.T, recs []obs.JournalRecord) string {
	t.Helper()
	ring := obs.NewJournalRing(len(recs))
	for _, r := range recs {
		ring.Append(r)
	}
	var buf bytes.Buffer
	if err := ring.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.journal.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func oscillatingJournal() []obs.JournalRecord {
	var out []obs.JournalRecord
	for i, qp := range []int{24, 34, 22, 35, 23, 33, 21, 34} {
		out = append(out, obs.JournalRecord{Frame: i, BaseQP: qp, Type: "P"})
	}
	return out
}

func TestRunDiagnosesJournalFile(t *testing.T) {
	path := writeJournal(t, oscillatingJournal())
	var out bytes.Buffer
	rep, err := run([]string{"-journal", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatalf("oscillating journal diagnosed healthy: %s", out.String())
	}
	if !strings.Contains(out.String(), "qp-oscillation") {
		t.Errorf("report does not name the check:\n%s", out.String())
	}
}

func TestRunJSONReportIsMachineReadable(t *testing.T) {
	path := writeJournal(t, oscillatingJournal())
	var out bytes.Buffer
	rep, err := run([]string{"-journal", path, "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var decoded doctor.Report
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(decoded.Findings) != len(rep.Findings) {
		t.Errorf("decoded %d findings, ran %d", len(decoded.Findings), len(rep.Findings))
	}
	if decoded.Findings[0].Check != "qp-oscillation" {
		t.Errorf("finding check %q", decoded.Findings[0].Check)
	}
}

func TestRunFetchesLiveEndpoints(t *testing.T) {
	rec := obs.NewRecorder(16)
	for _, r := range oscillatingJournal() {
		rec.RecordJournal(r)
	}
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()
	var out bytes.Buffer
	rep, err := run([]string{"-url", srv.URL}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatalf("live oscillating journal diagnosed healthy: %s", out.String())
	}
}

func TestRunBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	meta := obs.CollectRunMeta(2)
	meta.Profile = "smoke"
	mkBench := func(encodeP95 float64) string {
		bf := benchFile{RunMeta: meta, Telemetry: &obs.Snapshot{
			Counters: map[string]int64{}, Gauges: map[string]float64{},
			Histograms: map[string]obs.HistogramSnapshot{
				obs.StageEncode: {Count: 50, P95: encodeP95},
				obs.StageMotion: {Count: 50, P95: 0.004},
			},
		}}
		data, err := json.Marshal(bf)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "bench.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	bench := mkBench(0.010)
	baseline := filepath.Join(dir, "baseline.json")
	var out bytes.Buffer
	if _, err := run([]string{"-bench", bench, "-write-baseline", baseline}, &out); err != nil {
		t.Fatal(err)
	}
	// Same numbers against the new baseline: healthy.
	rep, err := run([]string{"-bench", bench, "-baseline", baseline}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("identical run flagged: %+v", rep.Findings)
	}
	// Encode p95 regressed 3x on the same machine: flagged.
	out.Reset()
	rep, err = run([]string{"-bench", mkBench(0.030), "-baseline", baseline}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() || !strings.Contains(out.String(), "latency-regression") {
		t.Fatalf("3x encode regression not flagged:\n%s", out.String())
	}
}

func TestRunRejectsEmptyInvocation(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(nil, &out); err == nil {
		t.Fatal("no-input invocation did not error")
	}
}

// TestRunAllocGate drives the -alloc/-alloc-baseline path end to end: write
// a baseline from one bench output, then gate a regressed output against it.
func TestRunAllocGate(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.txt")
	bad := filepath.Join(dir, "bad.txt")
	baseline := filepath.Join(dir, "alloc_baseline.json")
	os.WriteFile(good, []byte(
		"BenchmarkEncodeSteadyState-8 100 6000000 ns/op 0 B/op 0 allocs/op\n"), 0o644)
	os.WriteFile(bad, []byte(
		"BenchmarkEncodeSteadyState-8 100 6000000 ns/op 4096 B/op 7 allocs/op\n"), 0o644)

	var out bytes.Buffer
	if _, err := run([]string{"-alloc", good, "-write-alloc-baseline", baseline}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	rep, err := run([]string{"-alloc", good, "-alloc-baseline", baseline}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("clean bench output flagged: %s", out.String())
	}
	out.Reset()
	rep, err = run([]string{"-alloc", bad, "-alloc-baseline", baseline}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() || !strings.Contains(out.String(), "alloc-regression") {
		t.Fatalf("regressed bench output diagnosed healthy:\n%s", out.String())
	}
}

// TestRunRuntimeFile diagnoses GC pressure from a runtime-snapshot JSONL.
func TestRunRuntimeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runtime.jsonl")
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		st := obs.RuntimeStats{HeapLiveBytes: uint64(10e6 + float64(i)*4e6), GCPauseP99Sec: 0.0003}
		data, _ := json.Marshal(st)
		buf.Write(append(data, '\n'))
	}
	os.WriteFile(path, buf.Bytes(), 0o644)
	var out bytes.Buffer
	rep, err := run([]string{"-runtime", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() || !strings.Contains(out.String(), "gc-heap-growth") {
		t.Fatalf("heap ramp diagnosed healthy:\n%s", out.String())
	}
}

// fleetRollupJSONL renders n rollups, straggling from tick `from`, as
// /debug/fleet-style JSONL.
func fleetRollupJSONL(t *testing.T, n, from int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		ru := obs.FleetRollup{Tick: i, Sessions: 10, FramesTotal: int64(100 * (i + 1))}
		if i >= from {
			ru.Stragglers = []obs.Straggler{{
				Session: "nuScenes-003", Profile: "nuScenes", Factor: 9,
				LatencyP99Sec: 0.6, BurnRate: 40, Reason: "latency",
			}}
		}
		data, err := json.Marshal(ru)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(append(data, '\n'))
	}
	return buf.Bytes()
}

// TestRunFleetFile drives -fleet offline over a rollup JSONL with a
// sustained straggler.
func TestRunFleetFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.jsonl")
	os.WriteFile(path, fleetRollupJSONL(t, 8, 2), 0o644)
	var out bytes.Buffer
	rep, err := run([]string{"-fleet", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() || !strings.Contains(out.String(), "straggler-session") {
		t.Fatalf("sustained straggler diagnosed healthy:\n%s", out.String())
	}
}

// TestFollowRetriesTransientScrapeFailures: the watch must survive a burst
// of failed scrapes mid-stream (a chaos blackout between doctor and target)
// and keep consuming the journal once the endpoint recovers, instead of
// aborting at the first error.
func TestFollowRetriesTransientScrapeFailures(t *testing.T) {
	journal := oscillatingJournal()
	var mu sync.Mutex
	polls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		polls++
		n := polls
		mu.Unlock()
		if n >= 3 && n <= 5 {
			// Transient outage: three consecutive scrapes fail.
			http.Error(w, "blackout", http.StatusBadGateway)
			return
		}
		recs := journal
		if n < 3 {
			recs = journal[:4] // only a prefix exists before the blip
		}
		for _, rec := range recs {
			data, _ := json.Marshal(rec)
			w.Write(append(data, '\n'))
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out bytes.Buffer
	rep, err := run([]string{"-follow", "-url", srv.URL, "-interval", "30ms", "-settle", "0", "-for", "3s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != len(journal) {
		t.Fatalf("watch consumed %d frames, want all %d (did the blip abort it?)", rep.Frames, len(journal))
	}
	if !strings.Contains(out.String(), "qp-oscillation") {
		t.Errorf("post-recovery pathology not diagnosed:\n%s", out.String())
	}
}

// TestFollowFleetOnlyEndpoint follows a target that serves /debug/fleet but
// no journal (a divefleet -serve process) and streams fleet findings.
func TestFollowFleetOnlyEndpoint(t *testing.T) {
	rollups := fleetRollupJSONL(t, 8, 2)
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Write(rollups)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var out bytes.Buffer
	rep, err := run([]string{"-follow", "-url", srv.URL, "-interval", "30ms", "-for", "500ms"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 0 {
		t.Errorf("journal-less target reported %d frames", rep.Frames)
	}
	if !strings.Contains(out.String(), "straggler-session") {
		t.Fatalf("fleet findings not streamed:\n%s", out.String())
	}
}
