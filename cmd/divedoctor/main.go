// Command divedoctor is the automated trace analyzer: it ingests the
// decision journal and trace spans a DiVE run exported (offline JSONL files
// or the live /debug/journal and /debug/spans endpoints) and prints a
// diagnosis report — QP oscillation, systematic bandwidth mis-estimation,
// foreground-segmentation collapse during turns, stale-MOT drift across
// outages, reconnect storms with collapsed backoff, slow post-outage
// recovery of the degradation ladder, and per-stage latency regressions
// against a committed baseline.
//
// Usage:
//
//	divedoctor [-journal run.journal.jsonl] [-spans run.spans.jsonl]
//	           [-url http://localhost:7061] [-bench bench_results.json]
//	           [-baseline ci/bench_baseline.json]
//	           [-write-baseline ci/bench_baseline.json]
//	           [-runtime runtime.jsonl] [-alloc bench_alloc.txt]
//	           [-alloc-baseline ci/alloc_baseline.json]
//	           [-write-alloc-baseline ci/alloc_baseline.json] [-json]
//	divedoctor -follow -url http://localhost:7061 [-interval 500ms]
//	           [-settle 8] [-for 15s]
//
// Input modes (combinable):
//
//   - -journal / -spans read exported JSONL files ("-" reads the journal
//     from stdin).
//   - -url fetches both live from a telemetry endpoint.
//   - -bench reads a divebench -json -telemetry results file; with
//     -baseline its stage histograms are checked for latency regressions,
//     with -write-baseline they become the new committed baseline.
//   - -runtime reads a JSONL series of /debug/runtime snapshots and
//     diagnoses GC pressure: sustained live-heap growth and GC pause p99
//     over the ceiling.
//   - -alloc reads `go test -bench -benchmem` text output; with
//     -alloc-baseline each benchmark's allocs/op and B/op are gated against
//     the committed reference (make bench-alloc), with -write-alloc-baseline
//     the measurements become the new committed baseline.
//
// Watch mode: -follow tails -url's /debug/journal while the run is still
// going, feeding new records through the streaming detectors and printing
// each finding as one JSON line the moment it becomes final. Each poll also
// samples /debug/runtime (when the endpoint serves it), and the final report
// includes the GC-pressure diagnosis over the collected series. -interval is
// the poll period; -settle holds back the newest N frames so late journal
// amendments (acks, outage verdicts) land before analysis; -for bounds the
// watch (0 follows until the endpoint disappears or the process is
// interrupted). The stream ends with a final flush over the tail and a
// summary on stderr; stdout carries only finding JSONL.
//
// Exit status: 0 when the run diagnoses clean, 1 when any finding fired
// (machine-gateable), 2 on usage or I/O errors. -json prints the full
// report as JSON for CI to parse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"dive/internal/doctor"
	"dive/internal/obs"
)

func main() {
	rep, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divedoctor:", err)
		os.Exit(2)
	}
	if rep != nil && !rep.Healthy() {
		os.Exit(1)
	}
}

// benchFile is the slice of divebench's -json schema divedoctor consumes.
type benchFile struct {
	RunMeta   obs.RunMeta   `json:"run_meta"`
	Telemetry *obs.Snapshot `json:"telemetry"`
}

func run(args []string, w io.Writer) (*doctor.Report, error) {
	fs := flag.NewFlagSet("divedoctor", flag.ContinueOnError)
	journalPath := fs.String("journal", "", "decision-journal JSONL file (- = stdin)")
	spansPath := fs.String("spans", "", "trace-span JSONL file")
	url := fs.String("url", "", "live telemetry base URL, e.g. http://localhost:7061; fetches /debug/journal and /debug/spans")
	benchPath := fs.String("bench", "", "divebench -json results file (needs -telemetry for stage histograms)")
	baselinePath := fs.String("baseline", "", "committed latency baseline to compare -bench against")
	writeBaseline := fs.String("write-baseline", "", "write the -bench stage histograms as a new baseline file and exit")
	asJSON := fs.Bool("json", false, "print the report as JSON")
	follow := fs.Bool("follow", false, "watch mode: tail -url's /debug/journal and stream findings as JSONL")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll period in -follow mode")
	settle := fs.Int("settle", doctor.DefaultSettleFrames, "journal frames held back from analysis in -follow mode (late amendments need time to land)")
	followFor := fs.Duration("for", 0, "stop following after this long (0 = until the endpoint disappears)")
	outageRun := fs.Int("outage-run", 0, "override the outage-drift run-length threshold (0 = default; scenarios with short outage windows need a lower bar)")
	runtimePath := fs.String("runtime", "", "runtime-stats JSONL file (series of /debug/runtime snapshots) for the GC-pressure checks (- = stdin)")
	allocPath := fs.String("alloc", "", "go test -bench -benchmem output for the allocation gate (- = stdin)")
	allocBaselinePath := fs.String("alloc-baseline", "", "committed allocation baseline to compare -alloc against")
	writeAllocBaseline := fs.String("write-alloc-baseline", "", "write the -alloc measurements as a new allocation baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	th := doctor.Thresholds{OutageRun: *outageRun}
	if *follow {
		if *url == "" {
			fs.Usage()
			return nil, fmt.Errorf("-follow needs -url")
		}
		return followLive(*url, *interval, *followFor, *settle, th, w)
	}
	if *journalPath == "" && *url == "" && *benchPath == "" && *runtimePath == "" && *allocPath == "" {
		fs.Usage()
		return nil, fmt.Errorf("nothing to analyze: pass -journal, -url, -bench, -runtime or -alloc")
	}

	var journal []obs.JournalRecord
	var spans []obs.SpanRecord
	var err error
	if *journalPath != "" {
		journal, err = readJournalFile(*journalPath)
		if err != nil {
			return nil, err
		}
	}
	if *spansPath != "" {
		spans, err = readSpansFile(*spansPath)
		if err != nil {
			return nil, err
		}
	}
	if *url != "" {
		j, s, err := fetchLive(*url)
		if err != nil {
			return nil, err
		}
		journal = append(journal, j...)
		spans = append(spans, s...)
	}

	rep := doctor.Analyze(journal, spans, th)

	if *runtimePath != "" {
		samples, err := readRuntimeFile(*runtimePath)
		if err != nil {
			return nil, err
		}
		rep.Checks = append(rep.Checks, "gc-pressure")
		rep.Findings = append(rep.Findings, doctor.AnalyzeRuntime(samples, th)...)
	}

	if *allocPath != "" {
		cur, err := readAllocFile(*allocPath)
		if err != nil {
			return nil, err
		}
		if *writeAllocBaseline != "" {
			b := doctor.NewAllocBaseline(cur, "")
			if len(b.Benchmarks) == 0 {
				return nil, fmt.Errorf("%s has no -benchmem benchmark lines", *allocPath)
			}
			f, err := os.Create(*writeAllocBaseline)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if err := b.WriteAllocBaseline(f); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "wrote alloc baseline %s (%d benchmarks)\n", *writeAllocBaseline, len(b.Benchmarks))
			return rep, nil
		}
		if *allocBaselinePath != "" {
			f, err := os.Open(*allocBaselinePath)
			if err != nil {
				return nil, err
			}
			base, err := doctor.ReadAllocBaseline(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			rep.Checks = append(rep.Checks, "alloc-regression")
			rep.Findings = append(rep.Findings, doctor.CompareAlloc(cur, base, th)...)
		}
	}

	if *benchPath != "" {
		bf, err := readBench(*benchPath)
		if err != nil {
			return nil, err
		}
		cur := doctor.NewBaseline(bf.RunMeta, bf.Telemetry)
		if *writeBaseline != "" {
			if len(cur.Stages) == 0 {
				return nil, fmt.Errorf("%s has no stage histograms (run divebench with -telemetry)", *benchPath)
			}
			f, err := os.Create(*writeBaseline)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if err := cur.WriteBaseline(f); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "wrote baseline %s (%d stages)\n", *writeBaseline, len(cur.Stages))
			return rep, nil
		}
		if *baselinePath != "" {
			f, err := os.Open(*baselinePath)
			if err != nil {
				return nil, err
			}
			base, err := doctor.ReadBaseline(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			rep.Checks = append(rep.Checks, "latency-regression")
			rep.Findings = append(rep.Findings, doctor.CompareLatency(cur, base, doctor.Thresholds{})...)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	printReport(w, rep)
	return rep, nil
}

func printReport(w io.Writer, rep *doctor.Report) {
	fmt.Fprintf(w, "divedoctor: %d journal frames, %d spans, checks: %v\n",
		rep.Frames, rep.Spans, rep.Checks)
	if rep.Healthy() {
		fmt.Fprintln(w, "diagnosis: healthy — no findings")
		return
	}
	fmt.Fprintf(w, "diagnosis: %d finding(s)\n", len(rep.Findings))
	for _, f := range rep.Findings {
		loc := ""
		if f.LastFrame > 0 || f.FirstFrame > 0 {
			loc = fmt.Sprintf(" [frames %d–%d]", f.FirstFrame, f.LastFrame)
		}
		fmt.Fprintf(w, "  %-4s %-20s%s %s\n", f.Severity, f.Check, loc, f.Message)
	}
}

func readJournalFile(path string) ([]obs.JournalRecord, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	recs, err := obs.ReadJournal(r)
	if err != nil {
		return nil, fmt.Errorf("parse journal %s: %w", path, err)
	}
	return recs, nil
}

func readSpansFile(path string) ([]obs.SpanRecord, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	recs, err := obs.ReadSpans(r)
	if err != nil {
		return nil, fmt.Errorf("parse spans %s: %w", path, err)
	}
	return recs, nil
}

func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func readRuntimeFile(path string) ([]obs.RuntimeStats, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	samples, err := doctor.ReadRuntimeSamples(r)
	if err != nil {
		return nil, fmt.Errorf("parse runtime samples %s: %w", path, err)
	}
	return samples, nil
}

func readAllocFile(path string) (map[string]doctor.BenchAlloc, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	cur, err := doctor.ParseBenchOutput(r)
	if err != nil {
		return nil, fmt.Errorf("parse bench output %s: %w", path, err)
	}
	return cur, nil
}

func readBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parse bench results %s: %w", path, err)
	}
	return &bf, nil
}

// followLive tails a live /debug/journal, streaming each finding to w as
// one JSON line the moment the incremental detectors finalize it. The loop
// ends when the deadline passes or the endpoint stops answering (the run's
// process exited); either way the held-back tail is flushed through the
// detectors so end-of-stream findings are not lost.
func followLive(base string, interval, dur time.Duration, settle int, th doctor.Thresholds, w io.Writer) (*doctor.Report, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	follower := doctor.NewFollower(th, settle)
	enc := json.NewEncoder(w)
	var findings []doctor.Finding
	emit := func(fs []doctor.Finding) error {
		for _, f := range fs {
			if err := enc.Encode(f); err != nil {
				return err
			}
		}
		findings = append(findings, fs...)
		return nil
	}

	var deadline time.Time
	if dur > 0 {
		deadline = time.Now().Add(dur)
	}
	var last []obs.JournalRecord
	var rtSamples []obs.RuntimeStats
	connected, failures := false, 0
	for {
		recs, err := fetchJournal(client, base)
		switch {
		case err == nil:
			connected, failures = true, 0
			last = recs
			if err := emit(follower.Ingest(recs)); err != nil {
				return nil, err
			}
			// Sample the runtime alongside the journal; older servers
			// without /debug/runtime just skip the GC-pressure series.
			if st, err := fetchRuntime(client, base); err == nil {
				rtSamples = append(rtSamples, st)
			}
		case connected:
			// The endpoint answered before and stopped: the run is over.
			failures++
			if failures >= 2 {
				goto done
			}
		default:
			// Never connected; give a just-starting server a grace window.
			failures++
			if failures >= 10 {
				return nil, fmt.Errorf("follow %s: %w", base, err)
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		time.Sleep(interval)
	}
done:
	if err := emit(follower.Close(last)); err != nil {
		return nil, err
	}
	checks := follower.Checks()
	if len(rtSamples) > 0 {
		checks = append(checks, "gc-pressure")
		if err := emit(doctor.AnalyzeRuntime(rtSamples, th)); err != nil {
			return nil, err
		}
	}
	rep := &doctor.Report{Frames: follower.Frames(), Checks: checks, Findings: findings}
	fmt.Fprintf(os.Stderr, "divedoctor: followed %d journal frames, %d finding(s)\n",
		rep.Frames, len(rep.Findings))
	return rep, nil
}

func fetchJournal(client *http.Client, base string) ([]obs.JournalRecord, error) {
	jr, err := fetch(client, base+"/debug/journal")
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	recs, err := obs.ReadJournal(jr)
	if err != nil {
		return nil, fmt.Errorf("parse %s/debug/journal: %w", base, err)
	}
	return recs, nil
}

func fetchRuntime(client *http.Client, base string) (obs.RuntimeStats, error) {
	rr, err := fetch(client, base+"/debug/runtime")
	if err != nil {
		return obs.RuntimeStats{}, err
	}
	defer rr.Close()
	var st obs.RuntimeStats
	if err := json.NewDecoder(rr).Decode(&st); err != nil {
		return obs.RuntimeStats{}, fmt.Errorf("parse %s/debug/runtime: %w", base, err)
	}
	return st, nil
}

// fetchLive pulls the journal and spans from a running agent's telemetry
// endpoint.
func fetchLive(base string) ([]obs.JournalRecord, []obs.SpanRecord, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	jr, err := fetch(client, base+"/debug/journal")
	if err != nil {
		return nil, nil, err
	}
	defer jr.Close()
	journal, err := obs.ReadJournal(jr)
	if err != nil {
		return nil, nil, fmt.Errorf("parse %s/debug/journal: %w", base, err)
	}
	sr, err := fetch(client, base+"/debug/spans")
	if err != nil {
		return nil, nil, err
	}
	defer sr.Close()
	spans, err := obs.ReadSpans(sr)
	if err != nil {
		return nil, nil, fmt.Errorf("parse %s/debug/spans: %w", base, err)
	}
	return journal, spans, nil
}

func fetch(client *http.Client, url string) (io.ReadCloser, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return resp.Body, nil
}
