// Command divedoctor is the automated trace analyzer: it ingests the
// decision journal and trace spans a DiVE run exported (offline JSONL files
// or the live /debug/journal and /debug/spans endpoints) and prints a
// diagnosis report — QP oscillation, systematic bandwidth mis-estimation,
// foreground-segmentation collapse during turns, stale-MOT drift across
// outages, reconnect storms with collapsed backoff, slow post-outage
// recovery of the degradation ladder, and per-stage latency regressions
// against a committed baseline.
//
// Usage:
//
//	divedoctor [-journal run.journal.jsonl] [-spans run.spans.jsonl]
//	           [-url http://localhost:7061] [-bench bench_results.json]
//	           [-baseline ci/bench_baseline.json]
//	           [-write-baseline ci/bench_baseline.json]
//	           [-fleet fleet.jsonl] [-runtime runtime.jsonl]
//	           [-alloc bench_alloc.txt]
//	           [-alloc-baseline ci/alloc_baseline.json]
//	           [-write-alloc-baseline ci/alloc_baseline.json] [-json]
//	divedoctor -follow -url http://localhost:7061 [-interval 500ms]
//	           [-settle 8] [-for 15s]
//
// Input modes (combinable):
//
//   - -journal / -spans read exported JSONL files ("-" reads the journal
//     from stdin).
//   - -url fetches both live from a telemetry endpoint.
//   - -bench reads a divebench -json -telemetry results file; with
//     -baseline its stage histograms are checked for latency regressions,
//     with -write-baseline they become the new committed baseline.
//   - -fleet reads a fleet rollup series (/debug/fleet JSONL or a divefleet
//     -json report) and runs the fleet detectors: straggler-session
//     (sustained straggler-table residency), noisy-neighbor (per-session
//     heap or GC pause growing superlinearly with fleet size) and
//     fleet-burn (aggregate SLO burn with no straggler standing out —
//     diffuse overload).
//   - -runtime reads a JSONL series of /debug/runtime snapshots and
//     diagnoses GC pressure: sustained live-heap growth and GC pause p99
//     over the ceiling.
//   - -alloc reads `go test -bench -benchmem` text output; with
//     -alloc-baseline each benchmark's allocs/op and B/op are gated against
//     the committed reference (make bench-alloc), with -write-alloc-baseline
//     the measurements become the new committed baseline.
//
// Watch mode: -follow tails -url's /debug/journal while the run is still
// going, feeding new records through the streaming detectors and printing
// each finding as one JSON line the moment it becomes final. Each poll also
// samples /debug/runtime and /debug/fleet when the endpoint serves them
// (404s disable the respective series): runtime snapshots feed the final
// GC-pressure diagnosis, fleet rollups stream through the fleet detectors
// live — following a divefleet -serve run surfaces straggler-session the
// moment a session's streak crosses the bar. Transient scrape failures are
// retried with capped exponential backoff (a chaos blackout between doctor
// and target must not abort the watch) and counted in the exit summary; the
// watch only ends once the endpoint stays unreachable for several
// consecutive polls. -interval is the poll period; -settle holds back the
// newest N frames so late journal amendments (acks, outage verdicts) land
// before analysis; -for bounds the watch (0 follows until the endpoint
// disappears or the process is interrupted). The stream ends with a final
// flush over the tail and a summary on stderr; stdout carries only finding
// JSONL.
//
// Exit status: 0 when the run diagnoses clean, 1 when any finding fired
// (machine-gateable), 2 on usage or I/O errors. -json prints the full
// report as JSON for CI to parse.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"dive/internal/doctor"
	"dive/internal/obs"
)

func main() {
	rep, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "divedoctor:", err)
		os.Exit(2)
	}
	if rep != nil && !rep.Healthy() {
		os.Exit(1)
	}
}

// benchFile is the slice of divebench's -json schema divedoctor consumes.
type benchFile struct {
	RunMeta   obs.RunMeta   `json:"run_meta"`
	Telemetry *obs.Snapshot `json:"telemetry"`
}

func run(args []string, w io.Writer) (*doctor.Report, error) {
	fs := flag.NewFlagSet("divedoctor", flag.ContinueOnError)
	journalPath := fs.String("journal", "", "decision-journal JSONL file (- = stdin)")
	spansPath := fs.String("spans", "", "trace-span JSONL file")
	url := fs.String("url", "", "live telemetry base URL, e.g. http://localhost:7061; fetches /debug/journal and /debug/spans")
	benchPath := fs.String("bench", "", "divebench -json results file (needs -telemetry for stage histograms)")
	baselinePath := fs.String("baseline", "", "committed latency baseline to compare -bench against")
	writeBaseline := fs.String("write-baseline", "", "write the -bench stage histograms as a new baseline file and exit")
	asJSON := fs.Bool("json", false, "print the report as JSON")
	follow := fs.Bool("follow", false, "watch mode: tail -url's /debug/journal and stream findings as JSONL")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll period in -follow mode")
	settle := fs.Int("settle", doctor.DefaultSettleFrames, "journal frames held back from analysis in -follow mode (late amendments need time to land)")
	followFor := fs.Duration("for", 0, "stop following after this long (0 = until the endpoint disappears)")
	outageRun := fs.Int("outage-run", 0, "override the outage-drift run-length threshold (0 = default; scenarios with short outage windows need a lower bar)")
	fleetPath := fs.String("fleet", "", "fleet rollup file for the fleet detectors: /debug/fleet JSONL or a divefleet -json report (- = stdin)")
	runtimePath := fs.String("runtime", "", "runtime-stats JSONL file (series of /debug/runtime snapshots) for the GC-pressure checks (- = stdin)")
	allocPath := fs.String("alloc", "", "go test -bench -benchmem output for the allocation gate (- = stdin)")
	allocBaselinePath := fs.String("alloc-baseline", "", "committed allocation baseline to compare -alloc against")
	writeAllocBaseline := fs.String("write-alloc-baseline", "", "write the -alloc measurements as a new allocation baseline file and exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	th := doctor.Thresholds{OutageRun: *outageRun}
	if *follow {
		if *url == "" {
			fs.Usage()
			return nil, fmt.Errorf("-follow needs -url")
		}
		return followLive(*url, *interval, *followFor, *settle, th, w)
	}
	if *journalPath == "" && *url == "" && *benchPath == "" && *runtimePath == "" && *allocPath == "" && *fleetPath == "" {
		fs.Usage()
		return nil, fmt.Errorf("nothing to analyze: pass -journal, -url, -bench, -fleet, -runtime or -alloc")
	}

	var journal []obs.JournalRecord
	var spans []obs.SpanRecord
	var err error
	if *journalPath != "" {
		journal, err = readJournalFile(*journalPath)
		if err != nil {
			return nil, err
		}
	}
	if *spansPath != "" {
		spans, err = readSpansFile(*spansPath)
		if err != nil {
			return nil, err
		}
	}
	if *url != "" {
		j, s, err := fetchLive(*url)
		if err != nil {
			return nil, err
		}
		journal = append(journal, j...)
		spans = append(spans, s...)
	}

	rep := doctor.Analyze(journal, spans, th)

	if *fleetPath != "" {
		rollups, err := readFleetFile(*fleetPath)
		if err != nil {
			return nil, err
		}
		frep := doctor.AnalyzeFleet(rollups, th)
		rep.Checks = append(rep.Checks, frep.Checks...)
		rep.Findings = append(rep.Findings, frep.Findings...)
	}

	if *runtimePath != "" {
		samples, err := readRuntimeFile(*runtimePath)
		if err != nil {
			return nil, err
		}
		rep.Checks = append(rep.Checks, "gc-pressure")
		rep.Findings = append(rep.Findings, doctor.AnalyzeRuntime(samples, th)...)
	}

	if *allocPath != "" {
		cur, err := readAllocFile(*allocPath)
		if err != nil {
			return nil, err
		}
		if *writeAllocBaseline != "" {
			b := doctor.NewAllocBaseline(cur, "")
			if len(b.Benchmarks) == 0 {
				return nil, fmt.Errorf("%s has no -benchmem benchmark lines", *allocPath)
			}
			f, err := os.Create(*writeAllocBaseline)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if err := b.WriteAllocBaseline(f); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "wrote alloc baseline %s (%d benchmarks)\n", *writeAllocBaseline, len(b.Benchmarks))
			return rep, nil
		}
		if *allocBaselinePath != "" {
			f, err := os.Open(*allocBaselinePath)
			if err != nil {
				return nil, err
			}
			base, err := doctor.ReadAllocBaseline(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			rep.Checks = append(rep.Checks, "alloc-regression")
			rep.Findings = append(rep.Findings, doctor.CompareAlloc(cur, base, th)...)
		}
	}

	if *benchPath != "" {
		bf, err := readBench(*benchPath)
		if err != nil {
			return nil, err
		}
		cur := doctor.NewBaseline(bf.RunMeta, bf.Telemetry)
		if *writeBaseline != "" {
			if len(cur.Stages) == 0 {
				return nil, fmt.Errorf("%s has no stage histograms (run divebench with -telemetry)", *benchPath)
			}
			f, err := os.Create(*writeBaseline)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			if err := cur.WriteBaseline(f); err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "wrote baseline %s (%d stages)\n", *writeBaseline, len(cur.Stages))
			return rep, nil
		}
		if *baselinePath != "" {
			f, err := os.Open(*baselinePath)
			if err != nil {
				return nil, err
			}
			base, err := doctor.ReadBaseline(f)
			f.Close()
			if err != nil {
				return nil, err
			}
			rep.Checks = append(rep.Checks, "latency-regression")
			rep.Findings = append(rep.Findings, doctor.CompareLatency(cur, base, doctor.Thresholds{})...)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	printReport(w, rep)
	return rep, nil
}

func printReport(w io.Writer, rep *doctor.Report) {
	fmt.Fprintf(w, "divedoctor: %d journal frames, %d spans, checks: %v\n",
		rep.Frames, rep.Spans, rep.Checks)
	if rep.Healthy() {
		fmt.Fprintln(w, "diagnosis: healthy — no findings")
		return
	}
	fmt.Fprintf(w, "diagnosis: %d finding(s)\n", len(rep.Findings))
	for _, f := range rep.Findings {
		loc := ""
		if f.LastFrame > 0 || f.FirstFrame > 0 {
			loc = fmt.Sprintf(" [frames %d–%d]", f.FirstFrame, f.LastFrame)
		}
		fmt.Fprintf(w, "  %-4s %-20s%s %s\n", f.Severity, f.Check, loc, f.Message)
	}
}

func readJournalFile(path string) ([]obs.JournalRecord, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	recs, err := obs.ReadJournal(r)
	if err != nil {
		return nil, fmt.Errorf("parse journal %s: %w", path, err)
	}
	return recs, nil
}

func readSpansFile(path string) ([]obs.SpanRecord, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	recs, err := obs.ReadSpans(r)
	if err != nil {
		return nil, fmt.Errorf("parse spans %s: %w", path, err)
	}
	return recs, nil
}

func openArg(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(path)
}

func readFleetFile(path string) ([]obs.FleetRollup, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	rollups, err := readRollups(r)
	if err != nil {
		return nil, fmt.Errorf("parse fleet rollups %s: %w", path, err)
	}
	return rollups, nil
}

func readRuntimeFile(path string) ([]obs.RuntimeStats, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	samples, err := doctor.ReadRuntimeSamples(r)
	if err != nil {
		return nil, fmt.Errorf("parse runtime samples %s: %w", path, err)
	}
	return samples, nil
}

func readAllocFile(path string) (map[string]doctor.BenchAlloc, error) {
	r, err := openArg(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	cur, err := doctor.ParseBenchOutput(r)
	if err != nil {
		return nil, fmt.Errorf("parse bench output %s: %w", path, err)
	}
	return cur, nil
}

func readBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("parse bench results %s: %w", path, err)
	}
	return &bf, nil
}

// followMaxConsecFails is how many consecutive failed scrapes of a
// previously healthy endpoint end the watch: a run shutting down stops
// answering for good, while chaos-induced blips (a proxy blackout, a
// saturated accept queue) recover within a few polls and must not abort the
// watch mid-stream.
const followMaxConsecFails = 6

// followLive tails a live /debug/journal (and /debug/fleet when the
// endpoint serves it), streaming each finding to w as one JSON line the
// moment the incremental detectors finalize it. Transient scrape failures
// are retried with capped exponential backoff and counted; the loop ends
// when the deadline passes or the endpoint stays unreachable for
// followMaxConsecFails polls. Either way the held-back tail is flushed
// through the detectors so end-of-stream findings are not lost.
func followLive(base string, interval, dur time.Duration, settle int, th doctor.Thresholds, w io.Writer) (*doctor.Report, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	follower := doctor.NewFollower(th, settle)
	fleetFollower := doctor.NewFleetFollower(th)
	enc := json.NewEncoder(w)
	var findings []doctor.Finding
	emit := func(fs []doctor.Finding) error {
		for _, f := range fs {
			if err := enc.Encode(f); err != nil {
				return err
			}
		}
		findings = append(findings, fs...)
		return nil
	}

	var deadline time.Time
	if dur > 0 {
		deadline = time.Now().Add(dur)
	}
	var last []obs.JournalRecord
	var rtSamples []obs.RuntimeStats
	// hasJournal/hasFleet track which endpoints this server serves; a 404
	// answers the question for good (the mux is static), while connection
	// errors leave it open.
	connected, failures, retries := false, 0, 0
	hasJournal, hasFleet := true, true
	fleetRollups := 0
	sleep := interval
	for {
		var scrapeErr error
		polled := false
		if hasJournal {
			recs, err := fetchJournal(client, base)
			switch {
			case err == nil:
				polled = true
				last = recs
				if err := emit(follower.Ingest(recs)); err != nil {
					return nil, err
				}
				// Sample the runtime alongside the journal; servers without
				// /debug/runtime just skip the GC-pressure series.
				if st, err := fetchRuntime(client, base); err == nil {
					rtSamples = append(rtSamples, st)
				}
			case errors.Is(err, errNotFound):
				hasJournal = false
			default:
				scrapeErr = err
			}
		}
		if hasFleet && scrapeErr == nil {
			rollups, err := fetchFleet(client, base)
			switch {
			case err == nil:
				polled = true
				if err := emit(fleetFollower.Ingest(rollups)); err != nil {
					return nil, err
				}
				fleetRollups = fleetFollower.Rollups()
			case errors.Is(err, errNotFound):
				hasFleet = false
			default:
				scrapeErr = err
			}
		}
		if !hasJournal && !hasFleet {
			return nil, fmt.Errorf("follow %s: serves neither /debug/journal nor /debug/fleet", base)
		}
		switch {
		case polled:
			connected, failures, sleep = true, 0, interval
		case connected:
			// The endpoint answered before and stopped. A shut-down run
			// stays down; a chaos blip recovers — retry with capped backoff
			// before declaring the stream over.
			failures++
			retries++
			if failures >= followMaxConsecFails {
				goto done
			}
			sleep *= 2
			if max := 4 * time.Second; sleep > max {
				sleep = max
			}
		default:
			// Never connected; give a just-starting server a grace window.
			failures++
			if failures >= 10 {
				return nil, fmt.Errorf("follow %s: %w", base, scrapeErr)
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		time.Sleep(sleep)
	}
done:
	if err := emit(follower.Close(last)); err != nil {
		return nil, err
	}
	if err := emit(fleetFollower.Close()); err != nil {
		return nil, err
	}
	var checks []string
	if hasJournal {
		checks = append(checks, follower.Checks()...)
	}
	if hasFleet {
		checks = append(checks, fleetFollower.Checks()...)
	}
	if len(rtSamples) > 0 {
		checks = append(checks, "gc-pressure")
		if err := emit(doctor.AnalyzeRuntime(rtSamples, th)); err != nil {
			return nil, err
		}
	}
	rep := &doctor.Report{Frames: follower.Frames(), Checks: checks, Findings: findings}
	fmt.Fprintf(os.Stderr, "divedoctor: followed %d journal frames, %d fleet rollup(s), %d finding(s), %d scrape retries\n",
		rep.Frames, fleetRollups, len(rep.Findings), retries)
	return rep, nil
}

func fetchJournal(client *http.Client, base string) ([]obs.JournalRecord, error) {
	jr, err := fetch(client, base+"/debug/journal")
	if err != nil {
		return nil, err
	}
	defer jr.Close()
	recs, err := obs.ReadJournal(jr)
	if err != nil {
		return nil, fmt.Errorf("parse %s/debug/journal: %w", base, err)
	}
	return recs, nil
}

func fetchRuntime(client *http.Client, base string) (obs.RuntimeStats, error) {
	rr, err := fetch(client, base+"/debug/runtime")
	if err != nil {
		return obs.RuntimeStats{}, err
	}
	defer rr.Close()
	var st obs.RuntimeStats
	if err := json.NewDecoder(rr).Decode(&st); err != nil {
		return obs.RuntimeStats{}, fmt.Errorf("parse %s/debug/runtime: %w", base, err)
	}
	return st, nil
}

// fetchLive pulls the journal and spans from a running agent's telemetry
// endpoint.
func fetchLive(base string) ([]obs.JournalRecord, []obs.SpanRecord, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	jr, err := fetch(client, base+"/debug/journal")
	if err != nil {
		return nil, nil, err
	}
	defer jr.Close()
	journal, err := obs.ReadJournal(jr)
	if err != nil {
		return nil, nil, fmt.Errorf("parse %s/debug/journal: %w", base, err)
	}
	sr, err := fetch(client, base+"/debug/spans")
	if err != nil {
		return nil, nil, err
	}
	defer sr.Close()
	spans, err := obs.ReadSpans(sr)
	if err != nil {
		return nil, nil, fmt.Errorf("parse %s/debug/spans: %w", base, err)
	}
	return journal, spans, nil
}

// errNotFound marks a 404: the server is alive but does not serve that
// endpoint, which is a permanent answer (the debug mux is static), unlike a
// connection error.
var errNotFound = errors.New("endpoint not found")

func fetch(client *http.Client, url string) (io.ReadCloser, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %w", url, errNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return resp.Body, nil
}

// fetchFleet pulls the fleet rollup ring (JSONL, oldest first) from
// /debug/fleet.
func fetchFleet(client *http.Client, base string) ([]obs.FleetRollup, error) {
	fr, err := fetch(client, base+"/debug/fleet")
	if err != nil {
		return nil, err
	}
	defer fr.Close()
	rollups, err := readRollups(fr)
	if err != nil {
		return nil, fmt.Errorf("parse %s/debug/fleet: %w", base, err)
	}
	return rollups, nil
}

// readRollups parses a fleet rollup stream: JSONL as /debug/fleet serves it,
// or a divefleet -json report (its "rollups" array) — the decoder accepts
// any concatenation of JSON values whose rollup-bearing shape it recognizes.
func readRollups(r io.Reader) ([]obs.FleetRollup, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var report struct {
		Rollups []obs.FleetRollup `json:"rollups"`
	}
	if err := json.Unmarshal(data, &report); err == nil && len(report.Rollups) > 0 {
		return report.Rollups, nil
	}
	var out []obs.FleetRollup
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var ru obs.FleetRollup
		if err := dec.Decode(&ru); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		out = append(out, ru)
	}
	return out, nil
}
