// Command diveagent runs a DiVE mobile agent against a live diveserver: it
// renders a synthetic drive, encodes it differentially, streams the
// bitstreams over TCP through the resilient edge client, and reports a final
// accuracy and robustness summary.
//
// Usage:
//
//	diveagent [-addr 127.0.0.1:7060] [-profile nuScenes] [-seed 1]
//	          [-duration 4] [-rate 2.0] [-telemetry :7061] [-workers N]
//	          [-pipeline-depth N] [-ack-timeout 1s] [-max-reconnects 8]
//
// -rate throttles the uplink to the given Mbps (0 = unthrottled), pacing
// writes so the bandwidth estimator sees realistic feedback.
//
// -pipeline-depth >= 2 lets up to that many frames be in flight to the
// server at once: frame N's server inference and downlink overlap frame
// N+1's encode instead of blocking it. Depth 1 (the default) is the classic
// lock-step loop.
//
// The session survives the link failing under it: a frame unacknowledged
// past -ack-timeout is declared outaged and covered by local MV tracking
// (the paper's MOT fallback), disconnects trigger reconnects with
// exponential backoff + jitter and a session-resume handshake, server NACKs
// force keyframes, and a link-health ladder degrades encode quality (QP
// floor, budget cut, frame skip, MOT-only) before the link collapses
// entirely. Every transition is journaled for divedoctor.
//
// The seed contract: the agent renders its clip from (-profile, -seed,
// -duration) and sends exactly those values in the Hello handshake; the
// server re-renders the identical clip from them. There is no separate
// server-side seed flag — agreement is automatic, which is what lets the
// server score detections against the pristine frames without any pixels
// crossing the wire.
//
// -telemetry serves live introspection on the given address: /metrics
// (Prometheus text format), /debug/vars (JSON snapshot), /debug/frames
// (per-frame lifecycle records as JSONL) and /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dive/internal/core"
	"dive/internal/edge"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/sim"
	"dive/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diveagent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("diveagent", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7060", "edge server address")
	profile := fs.String("profile", "nuScenes", "clip profile: nuScenes, RobotCar or KITTI")
	seed := fs.Int64("seed", 1, "clip seed; sent to the server in the handshake so both sides render the same clip")
	duration := fs.Float64("duration", 4, "clip duration in seconds")
	rate := fs.Float64("rate", 2.0, "uplink throttle in Mbps (0 = unthrottled)")
	telemetry := fs.String("telemetry", "", "serve telemetry (/metrics, /debug/frames, pprof) on this address, e.g. :7061")
	workers := fs.Int("workers", 0, "encoder pool width (0 = GOMAXPROCS, 1 = serial); the bitstream is identical at any width")
	pipelineDepth := fs.Int("pipeline-depth", 1, "max frames in flight to the server (1 = lock-step request/response)")
	ackTimeout := fs.Duration("ack-timeout", time.Second, "per-frame ack deadline before the MOT outage fallback covers it")
	maxReconnects := fs.Int("max-reconnects", 8, "consecutive failed reconnect attempts before giving up")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var wp world.Profile
	switch *profile {
	case "nuScenes":
		wp = world.NuScenesLike()
	case "RobotCar":
		wp = world.RobotCarLike()
	case "KITTI":
		wp = world.KITTILike()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	wp.ClipDuration = *duration
	fmt.Printf("rendering %s clip (%.0fs, seed %d)...\n", wp.Name, *duration, *seed)
	clip := world.GenerateClip(wp, *seed)

	rec := obs.NewRecorder(clip.NumFrames())
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = *seed
	cfg.Obs = rec
	// Same profile-seed identity the server labels this stream with, so
	// both ends' per-session series join on one label value.
	cfg.Session = fmt.Sprintf("%s-%d", wp.Name, *seed)
	cfg.Codec.Workers = *workers
	if *rate > 0.5 {
		cfg.BandwidthPrior = netsim.Mbps(*rate)
	}
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return err
	}
	if *telemetry != "" {
		ln, err := net.Listen("tcp", *telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer ln.Close()
		fmt.Printf("telemetry on http://%s/ (/metrics, /debug/vars, /debug/frames, /debug/pprof/)\n", ln.Addr())
		go http.Serve(ln, rec.Handler())
	}

	client := edge.NewClient(edge.ClientConfig{
		Addr: *addr, Profile: wp.Name, Seed: *seed, Duration: *duration,
		Window:     *pipelineDepth,
		AckTimeout: *ackTimeout,
		PaceBps:    netsim.Mbps(*rate),
		Backoff:    edge.BackoffConfig{MaxAttempts: *maxReconnects},
		Logf: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
		Obs: rec,
	}, agent)

	start := time.Now()
	dets, stats, runErr := client.Run(clip)
	wall := time.Since(start).Seconds()

	// Per-frame recap from the decision journal: encode decisions plus the
	// robustness events (outage, skip, reconnects, ladder level).
	for _, j := range rec.Journal().Snapshot() {
		note := ""
		if j.Outage {
			note += " OUTAGE"
		}
		if j.SkippedSend {
			note += " SKIP"
		}
		if j.NackKeyframe {
			note += " NACK"
		}
		if j.ReconnectAttempts > 0 {
			note += fmt.Sprintf(" reconnects=%d(%.2fs)", j.ReconnectAttempts, j.BackoffSec)
		}
		if j.DegradeLevel > 0 {
			note += fmt.Sprintf(" ladder=%s", core.LadderLevel(j.DegradeLevel))
		}
		fmt.Printf("frame %3d: %6.1f kbit qp=%2d fg=%4.1f%% η=%.2f%s\n",
			j.Frame, float64(j.Bits)/1000, j.BaseQP, j.FGFraction*100, j.Eta, note)
	}

	// Accuracy against the oracle (detections on raw frames). A run that
	// failed mid-stream still scores the frames it covered.
	env := sim.NewEnv(*seed)
	oracle := sim.OracleDetections(clip, env)
	mAP := metrics.MAP(dets, oracle, metrics.DefaultIoU)
	fmt.Printf("\nsummary: frames=%d uploaded=%d skipped=%d outages=%d reconnects=%d nacks=%d mAP=%.3f wall=%.1fs\n",
		stats.FramesProcessed, stats.FramesUploaded, stats.FramesSkipped,
		stats.OutageFrames, stats.Reconnects, stats.Nacks, mAP, wall)
	fmt.Printf("link: final health=%.2f ladder=%s\n", stats.FinalHealth, stats.FinalLevel)
	return runErr
}
