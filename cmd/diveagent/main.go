// Command diveagent runs a DiVE mobile agent against a live diveserver: it
// renders a synthetic drive, encodes it differentially with the public
// dive.Agent API, streams the bitstreams over TCP, and reports per-frame
// response times plus a final accuracy summary.
//
// Usage:
//
//	diveagent [-addr 127.0.0.1:7060] [-profile nuScenes] [-seed 1]
//	          [-duration 4] [-rate 2.0] [-telemetry :7061] [-workers N]
//	          [-pipeline-depth N]
//
// -rate throttles the uplink to the given Mbps (0 = unthrottled), pacing
// writes so the bandwidth estimator sees realistic feedback.
//
// -pipeline-depth >= 2 lets up to that many frames be in flight to the
// server at once: frame N's server inference and downlink overlap frame
// N+1's encode instead of blocking it. Results are read by a background
// goroutine in frame order; the encoded bitstreams are identical at any
// depth (the agent pipeline is deterministic), only wall-clock response
// times change. Depth 1 (the default) is the classic lock-step loop.
//
// The seed contract: the agent renders its clip from (-profile, -seed,
// -duration) and sends exactly those values in the Hello handshake; the
// server re-renders the identical clip from them. There is no separate
// server-side seed flag — agreement is automatic, which is what lets the
// server score detections against the pristine frames without any pixels
// crossing the wire.
//
// -telemetry serves live introspection on the given address: /metrics
// (Prometheus text format), /debug/vars (JSON snapshot), /debug/frames
// (per-frame lifecycle records as JSONL) and /debug/pprof/.
package main

import (
	"encoding/gob"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"dive"
	"dive/internal/detect"
	"dive/internal/edge"
	"dive/internal/metrics"
	"dive/internal/sim"
	"dive/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "diveagent:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("diveagent", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7060", "edge server address")
	profile := fs.String("profile", "nuScenes", "clip profile: nuScenes, RobotCar or KITTI")
	seed := fs.Int64("seed", 1, "clip seed; sent to the server in the handshake so both sides render the same clip")
	duration := fs.Float64("duration", 4, "clip duration in seconds")
	rate := fs.Float64("rate", 2.0, "uplink throttle in Mbps (0 = unthrottled)")
	telemetry := fs.String("telemetry", "", "serve telemetry (/metrics, /debug/frames, pprof) on this address, e.g. :7061")
	workers := fs.Int("workers", 0, "encoder pool width (0 = GOMAXPROCS, 1 = serial); the bitstream is identical at any width")
	pipelineDepth := fs.Int("pipeline-depth", 1, "max frames in flight to the server (1 = lock-step request/response)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	depth := *pipelineDepth
	if depth < 1 {
		depth = 1
	}

	var wp world.Profile
	switch *profile {
	case "nuScenes":
		wp = world.NuScenesLike()
	case "RobotCar":
		wp = world.RobotCarLike()
	case "KITTI":
		wp = world.KITTILike()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	wp.ClipDuration = *duration
	fmt.Printf("rendering %s clip (%.0fs, seed %d)...\n", wp.Name, *duration, *seed)
	clip := world.GenerateClip(wp, *seed)

	agent, err := dive.NewAgent(dive.Config{
		Width: clip.W, Height: clip.H, FPS: clip.FPS, FocalPx: clip.Focal,
		BandwidthPriorBps: dive.Mbps(maxf(*rate, 0.5)),
		Telemetry:         *telemetry != "",
		Workers:           *workers,
	})
	if err != nil {
		return err
	}
	if *telemetry != "" {
		ln, err := net.Listen("tcp", *telemetry)
		if err != nil {
			return fmt.Errorf("telemetry listen: %w", err)
		}
		defer ln.Close()
		fmt.Printf("telemetry on http://%s/ (/metrics, /debug/vars, /debug/frames, /debug/pprof/)\n", ln.Addr())
		go http.Serve(ln, agent.TelemetryHandler())
	}

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(edge.Hello{Profile: wp.Name, Seed: *seed, Duration: *duration}); err != nil {
		return err
	}

	start := time.Now()
	n := clip.NumFrames()
	dets := make([][]detect.Detection, n)
	var rts []float64
	totalBits := 0

	// The result reader runs concurrently so the server's inference and
	// downlink overlap the next frames' encode. sem bounds the in-flight
	// window to depth (acquired before a frame is processed, released after
	// its result is handled); metaCh hands each frame's display metadata to
	// the reader with a proper happens-before edge. The reader only touches
	// agent state disjoint from encoding (the cached-detections slot), so
	// it is safe alongside Process.
	type frameMeta struct {
		bits int
		qp   int
		fg   float64
		eta  float64
	}
	sem := make(chan struct{}, depth)
	metaCh := make(chan frameMeta, depth+1)
	readerDone := make(chan error, 1)
	go func() {
		readerDone <- func() error {
			for k := 0; k < n; k++ {
				var res edge.ResultMsg
				if err := dec.Decode(&res); err != nil {
					return err
				}
				m := <-metaCh
				if res.Err != "" {
					return fmt.Errorf("server: %s", res.Err)
				}
				rt := float64(time.Now().UnixNano()-res.SentNanos) / 1e9
				rts = append(rts, rt)
				dets[res.Index] = edge.FromWire(res.Detections)
				agent.CacheDetections(dets[res.Index])
				fmt.Printf("frame %3d: %5.1f kbit qp=%2d fg=%4.1f%% η=%.2f dets=%d rt=%5.1fms\n",
					res.Index, float64(m.bits)/1000, m.qp, m.fg*100,
					m.eta, len(dets[res.Index]), rt*1000)
				<-sem
			}
			return nil
		}()
	}()

	for i, frame := range clip.Frames {
		select {
		case sem <- struct{}{}:
		case err := <-readerDone:
			if err == nil {
				err = fmt.Errorf("result reader exited early")
			}
			return err
		}
		now := time.Since(start).Seconds()
		out, err := agent.Process(frame, now)
		if err != nil {
			return err
		}
		totalBits += out.Bits
		metaCh <- frameMeta{bits: out.Bits, qp: out.BaseQP, fg: out.ForegroundFraction, eta: out.Eta}

		sendStart := time.Since(start).Seconds()
		if err := enc.Encode(edge.FrameMsg{
			Index: i, Bitstream: out.Bitstream, SentNanos: time.Now().UnixNano(),
			TraceID: out.TraceID, SpanID: out.SpanID,
		}); err != nil {
			return err
		}
		if *rate > 0 {
			// Pace to the throttle so timing resembles a real uplink.
			time.Sleep(time.Duration(float64(out.Bits) / dive.Mbps(*rate) * float64(time.Second)))
		}
		agent.AckUplink(sendStart, time.Since(start).Seconds(), out.Bits)
	}
	if err := <-readerDone; err != nil {
		return err
	}

	// Accuracy against the oracle (detections on raw frames).
	env := sim.NewEnv(*seed)
	oracle := sim.OracleDetections(clip, env)
	mAP := metrics.MAP(dets, oracle, metrics.DefaultIoU)
	lat := metrics.SummarizeLatency(rts)
	dur := float64(clip.NumFrames()) / clip.FPS
	fmt.Printf("\nsummary: frames=%d bitrate=%.2f Mbps mAP=%.3f meanRT=%.1fms p95RT=%.1fms\n",
		clip.NumFrames(), float64(totalBits)/dur/1e6, mAP, lat.Mean*1000, lat.P95*1000)
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
