module dive

go 1.22
