package dive_test

import (
	"fmt"

	"dive"
)

// ExampleAgent_Process shows the minimal DiVE loop: create an agent, feed
// it frames, ship the bitstream, and report transport feedback.
func ExampleAgent_Process() {
	agent, err := dive.NewAgent(dive.Config{
		Width: 64, Height: 64, FPS: 10, FocalPx: 100,
		BandwidthPriorBps: dive.Mbps(2),
		Seed:              1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	decoder, err := dive.NewDecoder(64, 64)
	if err != nil {
		fmt.Println(err)
		return
	}

	frame := dive.NewFrame(64, 64)
	for i := range frame.Pix {
		frame.Pix[i] = uint8(i % 251)
	}

	out, err := agent.Process(frame, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Ship out.Bitstream to the edge server; it decodes with dive.Decoder.
	img, err := decoder.Decode(out.Bitstream)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Feed transport feedback so rate control tracks the uplink.
	agent.AckUplink(0, 0.01, out.Bits)

	fmt.Println("first frame intra:", out.IsIFrame)
	fmt.Println("bitstream non-empty:", out.Bits > 0)
	fmt.Println("decoded size:", img.W, "x", img.H)
	// Output:
	// first frame intra: true
	// bitstream non-empty: true
	// decoded size: 64 x 64
}

// ExampleNewAgent_validation shows that configuration errors surface at
// construction time.
func ExampleNewAgent_validation() {
	_, err := dive.NewAgent(dive.Config{Width: 100, Height: 64, FPS: 10, FocalPx: 100})
	fmt.Println(err != nil)
	// Output:
	// true
}
