// Package pool is the buffer-reuse layer behind the allocation-free
// steady-state encode path: bounded free lists for the per-frame buffers the
// hot loop would otherwise re-allocate every frame (reconstruction planes,
// rate-control trial scratch, frame jobs).
//
// Every free list is a buffered channel, not a sync.Pool, for two reasons.
// First, the channel send/receive pair is the happens-before edge the
// two-phase encoder needs: a buffer released on the pipeline's emit
// goroutine (stage C) must be fully visible to the analysis goroutine
// (stage B) that acquires it next. Second, sync.Pool drops its contents on
// every GC cycle, which re-introduces exactly the steady-state allocation
// churn this layer exists to remove; a channel free list keeps its capacity
// forever, so after warm-up the hot loop runs at zero allocations per frame.
//
// Ownership rules (see DESIGN.md "Buffer ownership in the pooled encoder"):
// a Get transfers exclusive ownership to the caller; Put transfers it back
// and the caller must not touch the buffer afterwards. A full free list
// drops the returned buffer on the floor (garbage collected) rather than
// blocking — the lists are sized for the steady-state working set, and
// overflow only happens during reconfiguration transients.
package pool

import "dive/internal/imgx"

// Freelist is a bounded, channel-backed free list of *T. The zero value is
// unusable; create with NewFreelist. All methods are safe for concurrent
// use, and a release on one goroutine happens-before the acquisition that
// receives the same item on another.
type Freelist[T any] struct {
	ch chan *T
}

// NewFreelist creates a free list retaining at most capacity items.
// capacity < 1 is raised to 1.
func NewFreelist[T any](capacity int) *Freelist[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Freelist[T]{ch: make(chan *T, capacity)}
}

// Get returns a recycled item, or nil when the list is empty (the caller
// allocates). It never blocks.
func (f *Freelist[T]) Get() *T {
	select {
	case v := <-f.ch:
		return v
	default:
		return nil
	}
}

// Put releases an item back to the list. A nil item is ignored; when the
// list is full the item is dropped for the garbage collector. It never
// blocks.
func (f *Freelist[T]) Put(v *T) {
	if v == nil {
		return
	}
	select {
	case f.ch <- v:
	default:
	}
}

// Len returns how many items are currently retained.
func (f *Freelist[T]) Len() int { return len(f.ch) }

// Planes is a free list of equally sized imgx.Planes. Planes of the wrong
// size are rejected at Put, so one pool serves exactly one frame geometry —
// the encoder's case. Recycled planes keep their previous pixel content;
// callers that need a defined initial state must Fill, and callers that
// reuse a plane as an analysis input must rely on the content generation
// counter (Get bumps it, so content-keyed caches can never confuse a
// recycled plane with the frame it used to hold).
type Planes struct {
	w, h int
	free *Freelist[imgx.Plane]
}

// NewPlanes creates a plane pool for w×h planes retaining at most capacity
// planes.
func NewPlanes(w, h, capacity int) *Planes {
	return &Planes{w: w, h: h, free: NewFreelist[imgx.Plane](capacity)}
}

// Get returns a w×h plane: recycled when one is available, freshly
// allocated otherwise. The pixel content is undefined (callers on the
// encode path overwrite every pixel); the content generation counter is
// bumped so stale cache keys die with the old content.
func (p *Planes) Get() *imgx.Plane {
	if pl := p.free.Get(); pl != nil {
		pl.Bump()
		return pl
	}
	return imgx.NewPlane(p.w, p.h)
}

// Put releases a plane for reuse. Nil planes and planes of a different
// geometry are ignored (dropped for the garbage collector).
func (p *Planes) Put(pl *imgx.Plane) {
	if pl == nil || pl.W != p.w || pl.H != p.h {
		return
	}
	p.free.Put(pl)
}

// Len returns how many planes are currently retained.
func (p *Planes) Len() int { return p.free.Len() }
