package pool

import (
	"sync"
	"testing"

	"dive/internal/imgx"
)

func TestFreelistRoundTrip(t *testing.T) {
	f := NewFreelist[int](2)
	if got := f.Get(); got != nil {
		t.Fatalf("empty list Get = %v, want nil", got)
	}
	a, b, c := new(int), new(int), new(int)
	*a, *b, *c = 1, 2, 3
	f.Put(a)
	f.Put(b)
	f.Put(c) // over capacity: dropped
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (capacity bound)", f.Len())
	}
	got1, got2 := f.Get(), f.Get()
	if got1 != a || got2 != b {
		t.Fatalf("FIFO recycle order violated: got %v,%v want %v,%v", got1, got2, a, b)
	}
	if f.Get() != nil {
		t.Fatal("drained list should return nil")
	}
	f.Put(nil) // must not panic or count
	if f.Len() != 0 {
		t.Fatalf("nil Put retained: Len = %d", f.Len())
	}
}

func TestFreelistMinimumCapacity(t *testing.T) {
	f := NewFreelist[int](0)
	v := new(int)
	f.Put(v)
	if got := f.Get(); got != v {
		t.Fatalf("capacity-0 list should clamp to 1: got %v", got)
	}
}

func TestPlanesRecycleAndBump(t *testing.T) {
	p := NewPlanes(32, 16, 2)
	a := p.Get()
	if a.W != 32 || a.H != 16 {
		t.Fatalf("Get plane size %dx%d, want 32x16", a.W, a.H)
	}
	a.Set(1, 1, 200)
	seq := a.Seq()
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("plane was not recycled")
	}
	if b.Seq() <= seq {
		t.Fatalf("recycled plane Seq = %d, want > %d (Get must bump)", b.Seq(), seq)
	}
}

func TestPlanesRejectsForeignGeometry(t *testing.T) {
	p := NewPlanes(32, 16, 2)
	p.Put(imgx.NewPlane(16, 16))
	p.Put(nil)
	if p.Len() != 0 {
		t.Fatalf("foreign/nil planes retained: Len = %d", p.Len())
	}
}

// TestFreelistConcurrent exercises the happens-before edge: values written
// before Put must be visible after Get on another goroutine. Run under
// -race this is a real synchronization test, not just a smoke test.
func TestFreelistConcurrent(t *testing.T) {
	f := NewFreelist[[16]int](8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				buf := f.Get()
				if buf == nil {
					buf = new([16]int)
				}
				for k := range buf {
					buf[k] = w
				}
				for k := range buf {
					if buf[k] != w {
						t.Errorf("torn buffer: got %d want %d", buf[k], w)
						return
					}
				}
				f.Put(buf)
			}
		}(w)
	}
	wg.Wait()
}
