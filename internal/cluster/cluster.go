// Package cluster runs N edge.Server members behind a health-routed
// balancer. It owns the three control-plane concerns one server never has:
//
//   - membership: every member is heartbeat-probed (a full
//     accept→handshake→ack round trip, so a partitioned or half-dead member
//     fails the probe even when its TCP port still accepts); consecutive
//     failures walk a member healthy→suspect→down with hysteresis on the way
//     back, so one dropped probe never flaps routing.
//   - routing: new sessions go to the healthiest, least-loaded member via an
//     EWMA-smoothed session-count score; CandidateAddrs exposes the same
//     ranking as an ordered dial list for edge.Client failover.
//   - migration: Drain redirects a member's live sessions to the best
//     surviving member over the Redirect wire message (planned migration);
//     Kill models the member dying mid-clip, after which clients fail over
//     through their candidate list (forced migration). Rebalance drains load
//     from the hottest member when the spread exceeds a bound.
//
// The cluster is in-process (members listen on 127.0.0.1:0), matching the
// repo's simulation-first approach: chaos scenarios and CI kill real
// listeners and real sessions deterministically, without containers.
package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dive/internal/chaos"
	"dive/internal/edge"
)

// State is a member's membership verdict.
type State int

const (
	// Healthy members take new sessions and migration targets.
	Healthy State = iota
	// Suspect members failed their last probe but not enough to be written
	// off; they keep their sessions and are routed to only when no healthy
	// member exists.
	Suspect
	// Down members failed ProbeConfig.FailThreshold consecutive probes (or
	// were killed); they are never routed to until they re-earn Healthy.
	Down
	// Draining members are being emptied on purpose; never routed to.
	Draining
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Draining:
		return "draining"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ProbeFunc checks one member's liveness within timeout.
type ProbeFunc func(addr string, timeout time.Duration) error

// HelloProbe is the default probe: dial, send a ProbeProfile handshake,
// require the ack. A member whose listener accepts but whose handler is
// wedged (or whose path is blacked out by a partition) fails it.
func HelloProbe(addr string, timeout time.Duration) error {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	conn.SetDeadline(deadline)
	if err := edge.WriteHello(conn, edge.Hello{Profile: edge.ProbeProfile}); err != nil {
		return err
	}
	mr := edge.NewMsgReader(conn)
	typ, _, err := mr.Next()
	if err != nil {
		return err
	}
	if typ != edge.MsgResult {
		return fmt.Errorf("cluster: probe got message type %d", typ)
	}
	return nil
}

// ProbeConfig shapes the health prober.
type ProbeConfig struct {
	// Interval between probes of one member (default 50ms).
	Interval time.Duration
	// Timeout bounds one probe round trip (default 500ms).
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that marks a member
	// down (default 3); the first failure already marks it suspect.
	FailThreshold int
	// RecoverThreshold is the consecutive-success count a suspect or down
	// member needs to re-earn healthy (default 2) — the hysteresis that
	// keeps a flapping member from oscillating in and out of rotation.
	RecoverThreshold int
	// Func replaces the probe implementation (tests); default HelloProbe.
	Func ProbeFunc
}

func (p ProbeConfig) withDefaults() ProbeConfig {
	if p.Interval <= 0 {
		p.Interval = 50 * time.Millisecond
	}
	if p.Timeout <= 0 {
		p.Timeout = 500 * time.Millisecond
	}
	if p.FailThreshold <= 0 {
		p.FailThreshold = 3
	}
	if p.RecoverThreshold <= 0 {
		p.RecoverThreshold = 2
	}
	if p.Func == nil {
		p.Func = HelloProbe
	}
	return p
}

// Config configures a cluster.
type Config struct {
	// Members is the cluster size (default 3).
	Members int
	Probe   ProbeConfig
	// EWMAAlpha smooths the per-member session-load score the picker ranks
	// by (default 0.4; 1 = raw instantaneous count).
	EWMAAlpha float64
	// Proxied fronts every member with a chaos.Proxy so Partition can black
	// out a member without killing its server process.
	Proxied bool
	// Configure, when set, is called with each member's server before it
	// listens — the hook for wiring telemetry recorders, timeouts and label
	// caps.
	Configure func(i int, srv *edge.Server)
	// Logf receives membership and migration events; nil silences.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Members <= 0 {
		c.Members = 3
	}
	c.Probe = c.Probe.withDefaults()
	if c.EWMAAlpha <= 0 || c.EWMAAlpha > 1 {
		c.EWMAAlpha = 0.4
	}
	return c
}

// MemberStatus is one member's point-in-time view.
type MemberStatus struct {
	Index    int
	Name     string // "edge-<index>"
	Addr     string // the address clients dial (the proxy when Proxied)
	State    State
	Sessions int
	// Load is the EWMA-smoothed session count the picker ranks by.
	Load float64
	// LastHeartbeatAgeSec is the age of the last successful probe (-1 before
	// the first success).
	LastHeartbeatAgeSec float64
}

// member is one edge server plus its membership bookkeeping.
type member struct {
	index int
	name  string
	addr  string
	srv   *edge.Server
	proxy *chaos.Proxy // nil unless Config.Proxied

	mu         sync.Mutex
	state      State
	consecFail int
	consecOK   int
	load       float64
	lastBeat   time.Time
	killed     bool
}

// Cluster is the control handle chaos cluster scenarios drive.
var _ chaos.ClusterControl = (*Cluster)(nil)

// Cluster is a running set of members plus the balancer state.
type Cluster struct {
	cfg     Config
	members []*member

	stopc     chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New starts cfg.Members edge servers on loopback and begins probing them.
// Close releases everything.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{cfg: cfg, stopc: make(chan struct{})}
	for i := 0; i < cfg.Members; i++ {
		srv := edge.NewServer()
		if cfg.Configure != nil {
			cfg.Configure(i, srv)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: member %d listen: %w", i, err)
		}
		m := &member{
			index: i, name: fmt.Sprintf("edge-%d", i),
			addr: addr.String(), srv: srv, state: Healthy,
		}
		if cfg.Proxied {
			p, err := chaos.NewProxy(addr.String(), chaos.ProxyConfig{})
			if err != nil {
				srv.Kill()
				c.Close()
				return nil, fmt.Errorf("cluster: member %d proxy: %w", i, err)
			}
			m.proxy = p
			m.addr = p.Addr()
		}
		c.members = append(c.members, m)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			srv.Serve()
		}()
	}
	for _, m := range c.members {
		c.wg.Add(1)
		go c.probeLoop(m)
	}
	return c, nil
}

func (c *Cluster) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// probeLoop drives one member's membership state machine.
func (c *Cluster) probeLoop(m *member) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Probe.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case <-t.C:
		}
		err := c.cfg.Probe.Func(m.addr, c.cfg.Probe.Timeout)
		c.observeProbe(m, err)
	}
}

// observeProbe folds one probe result into the member's state machine.
// Split out so tests can drive the machine without a ticker.
func (c *Cluster) observeProbe(m *member, err error) {
	sessions := m.srv.SessionCount()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.load = c.cfg.EWMAAlpha*float64(sessions) + (1-c.cfg.EWMAAlpha)*m.load
	if err == nil {
		m.lastBeat = time.Now()
		m.consecFail = 0
		m.consecOK++
		// Draining is an operator verdict, not a health one: a draining
		// member stays draining however well it probes.
		if (m.state == Suspect || m.state == Down) && m.consecOK >= c.cfg.Probe.RecoverThreshold {
			c.logf("member %s %s -> healthy (%d consecutive probe successes)", m.name, m.state, m.consecOK)
			m.state = Healthy
		}
		return
	}
	m.consecOK = 0
	m.consecFail++
	switch {
	case m.state == Healthy:
		c.logf("member %s healthy -> suspect: %v", m.name, err)
		m.state = Suspect
	case m.state == Suspect && m.consecFail >= c.cfg.Probe.FailThreshold:
		c.logf("member %s suspect -> down after %d consecutive probe failures", m.name, m.consecFail)
		m.state = Down
	}
}

// status snapshots one member.
func (m *member) status() MemberStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	hbAge := -1.0
	if !m.lastBeat.IsZero() {
		hbAge = time.Since(m.lastBeat).Seconds()
	}
	return MemberStatus{
		Index: m.index, Name: m.name, Addr: m.addr,
		State: m.state, Sessions: m.srv.SessionCount(),
		Load: m.load, LastHeartbeatAgeSec: hbAge,
	}
}

// Status returns every member's snapshot, index order.
func (c *Cluster) Status() []MemberStatus {
	out := make([]MemberStatus, 0, len(c.members))
	for _, m := range c.members {
		out = append(out, m.status())
	}
	return out
}

// Members returns the cluster size.
func (c *Cluster) Members() int { return len(c.members) }

// Addr returns member i's dial address.
func (c *Cluster) Addr(i int) string { return c.members[i].addr }

// Server returns member i's server (test and telemetry wiring).
func (c *Cluster) Server(i int) *edge.Server { return c.members[i].srv }

// stateRank orders states for routing: healthy first, suspect as a last
// resort, down and draining never preferred.
func stateRank(s State) int {
	switch s {
	case Healthy:
		return 0
	case Suspect:
		return 1
	case Draining:
		return 2
	default:
		return 3
	}
}

// rank orders member snapshots by desirability for a new session.
func rank(a, b MemberStatus) bool {
	if ra, rb := stateRank(a.State), stateRank(b.State); ra != rb {
		return ra < rb
	}
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	return a.Index < b.Index
}

// Pick returns the member a new session should dial: the lowest-loaded
// healthy member, or the best suspect when no member is healthy. Errors when
// every member is down or draining.
func (c *Cluster) Pick() (MemberStatus, error) {
	return c.pick(-1)
}

func (c *Cluster) pick(exclude int) (MemberStatus, error) {
	var best MemberStatus
	found := false
	for _, m := range c.members {
		if m.index == exclude {
			continue
		}
		st := m.status()
		if st.State == Down || st.State == Draining {
			continue
		}
		if !found || rank(st, best) {
			best, found = st, true
		}
	}
	if !found {
		return MemberStatus{}, fmt.Errorf("cluster: no routable member (all down or draining)")
	}
	return best, nil
}

// CandidateAddrs returns every member's address ordered by routing
// desirability — the ordered failover list for edge.ClientConfig.Addrs. Down
// and draining members are included last: a client that exhausts the healthy
// set should still try them, they may have recovered by then.
func (c *Cluster) CandidateAddrs() []string {
	sts := c.Status()
	// Insertion sort: member counts are single digits.
	for i := 1; i < len(sts); i++ {
		for j := i; j > 0 && rank(sts[j], sts[j-1]); j-- {
			sts[j], sts[j-1] = sts[j-1], sts[j]
		}
	}
	out := make([]string, len(sts))
	for i, st := range sts {
		out[i] = st.Addr
	}
	return out
}

// Drain starts a planned migration off member i: it is marked Draining
// (leaves the routing set) and its live sessions are redirected to the best
// surviving member. Returns the target address and how many sessions were
// redirected.
func (c *Cluster) Drain(i int) (target string, redirected int, err error) {
	if i < 0 || i >= len(c.members) {
		return "", 0, fmt.Errorf("cluster: no member %d", i)
	}
	m := c.members[i]
	m.mu.Lock()
	m.state = Draining
	m.mu.Unlock()
	t, err := c.pick(i)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: drain %s: %w", m.name, err)
	}
	n := m.srv.RedirectSessions(t.Addr, "drain")
	c.logf("drained %s: %d session(s) redirected to %s", m.name, n, t.Name)
	return t.Addr, n, nil
}

// Rebalance redirects the hottest member's sessions to the coldest when
// their load spread exceeds maxImbalance sessions — the planned-migration
// trigger that runs without an operator. Returns how many sessions moved.
func (c *Cluster) Rebalance(maxImbalance float64) int {
	var hot, cold *MemberStatus
	for _, m := range c.members {
		st := m.status()
		if st.State != Healthy {
			continue
		}
		s := st
		if hot == nil || s.Load > hot.Load {
			hot = &s
		}
		if cold == nil || rank(s, *cold) {
			cold = &s
		}
	}
	if hot == nil || cold == nil || hot.Index == cold.Index {
		return 0
	}
	if hot.Load-cold.Load <= maxImbalance {
		return 0
	}
	n := c.members[hot.Index].srv.RedirectSessions(cold.Addr, "rebalance")
	c.logf("rebalanced %s -> %s: %d session(s)", hot.Name, cold.Name, n)
	return n
}

// Kill stops member i abruptly — listener and live connections die with no
// drain, the chaos "server died mid-clip" primitive. The member is marked
// down immediately; the prober keeps it down until it actually recovers.
func (c *Cluster) Kill(i int) {
	if i < 0 || i >= len(c.members) {
		return
	}
	m := c.members[i]
	m.mu.Lock()
	m.state = Down
	m.killed = true
	m.consecOK = 0
	m.mu.Unlock()
	m.srv.Kill()
	c.logf("killed member %s", m.name)
}

// Partition blacks out member i's network path without touching its server —
// distinguishable from Kill only from the inside. Requires Config.Proxied.
func (c *Cluster) Partition(i int, on bool) error {
	if i < 0 || i >= len(c.members) {
		return fmt.Errorf("cluster: no member %d", i)
	}
	m := c.members[i]
	if m.proxy == nil {
		return fmt.Errorf("cluster: Partition requires Config.Proxied")
	}
	m.proxy.SetBlackout(on)
	c.logf("partition member %s: %v", m.name, on)
	return nil
}

// Close stops the prober and hard-stops every member.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() { close(c.stopc) })
	for _, m := range c.members {
		if m.proxy != nil {
			m.proxy.Close()
		}
		m.srv.Kill()
	}
	c.wg.Wait()
}
