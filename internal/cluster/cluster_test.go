package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/doctor"
	"dive/internal/edge"
	"dive/internal/obs"
	"dive/internal/world"
)

// inertProbe returns a probe config whose loop never fires during a test, so
// state-machine tests can drive observeProbe by hand without ticker races.
func inertProbe() ProbeConfig {
	return ProbeConfig{
		Interval: time.Hour,
		Func:     func(string, time.Duration) error { return nil },
	}
}

func fastBackoff() edge.BackoffConfig {
	return edge.BackoffConfig{
		Initial: 10 * time.Millisecond, Max: 50 * time.Millisecond,
		Factor: 2, Jitter: 0.25, MaxAttempts: 5,
	}
}

// TestProbeStateMachine walks one member through the full membership ladder:
// healthy → suspect on the first failure, → down at the fail threshold, back
// to healthy only after the recovery hysteresis, and draining immune to both.
func TestProbeStateMachine(t *testing.T) {
	c, err := New(Config{Members: 2, Probe: inertProbe()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m := c.members[0]
	refused := errors.New("probe refused")

	c.observeProbe(m, refused)
	if st := m.status().State; st != Suspect {
		t.Fatalf("after 1 failure state = %v, want suspect", st)
	}
	c.observeProbe(m, refused)
	if st := m.status().State; st != Suspect {
		t.Fatalf("after 2 failures state = %v, want suspect (threshold 3)", st)
	}
	c.observeProbe(m, refused)
	if st := m.status().State; st != Down {
		t.Fatalf("after 3 failures state = %v, want down", st)
	}
	c.observeProbe(m, nil)
	if st := m.status().State; st != Down {
		t.Fatalf("after 1 success state = %v, want down (recovery threshold 2)", st)
	}
	c.observeProbe(m, nil)
	if st := m.status().State; st != Healthy {
		t.Fatalf("after 2 successes state = %v, want healthy", st)
	}
	if age := m.status().LastHeartbeatAgeSec; age < 0 {
		t.Errorf("heartbeat age %v after successful probes, want >= 0", age)
	}

	// One dropped probe dents but does not evict; one good probe is not
	// enough to fully rehabilitate.
	c.observeProbe(m, refused)
	c.observeProbe(m, nil)
	if st := m.status().State; st != Suspect {
		t.Fatalf("one success after a failure = %v, want still suspect", st)
	}
	c.observeProbe(m, nil)
	if st := m.status().State; st != Healthy {
		t.Fatalf("second success = %v, want healthy", st)
	}

	// Draining is an operator verdict: perfect probes must not undo it.
	m.mu.Lock()
	m.state = Draining
	m.mu.Unlock()
	c.observeProbe(m, nil)
	c.observeProbe(m, nil)
	if st := m.status().State; st != Draining {
		t.Fatalf("probes overrode draining: state = %v", st)
	}
}

// TestPickerRouting checks the balancer's ranking: healthy beats suspect,
// lower load wins among equals, down and draining are never picked, and
// CandidateAddrs exposes the same order as a dial list.
func TestPickerRouting(t *testing.T) {
	c, err := New(Config{Members: 3, Probe: inertProbe()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	set := func(i int, s State, load float64) {
		m := c.members[i]
		m.mu.Lock()
		m.state, m.load = s, load
		m.mu.Unlock()
	}

	set(0, Healthy, 2.0)
	set(1, Healthy, 0.5)
	set(2, Suspect, 0)
	st, err := c.Pick()
	if err != nil || st.Index != 1 {
		t.Fatalf("Pick = %+v, %v; want lowest-loaded healthy member 1", st, err)
	}
	want := []string{c.Addr(1), c.Addr(0), c.Addr(2)}
	got := c.CandidateAddrs()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CandidateAddrs = %v, want %v", got, want)
		}
	}

	set(1, Down, 0)
	if st, _ := c.Pick(); st.Index != 0 {
		t.Fatalf("Pick with member 1 down = %d, want 0", st.Index)
	}
	if st, _ := c.pick(0); st.Index != 2 {
		t.Fatalf("pick excluding 0 = %d, want suspect member 2 over down member 1", st.Index)
	}
	// Down members still appear in the dial list, just last among these.
	got = c.CandidateAddrs()
	if got[len(got)-1] != c.Addr(1) {
		t.Fatalf("down member not last in CandidateAddrs: %v", got)
	}

	set(0, Down, 0)
	set(2, Draining, 0)
	if _, err := c.Pick(); err == nil {
		t.Fatal("Pick succeeded with every member down or draining")
	}
}

// runClusterClip streams one clip through a 3-member cluster with the given
// pipeline window, optionally disrupting the cluster once the journal shows
// the clip is half done. It returns the per-frame detections, client stats
// and the journal.
func runClusterClip(t *testing.T, window int, seed int64, disrupt func(c *Cluster, rec *obs.Recorder, half int)) ([][]detect.Detection, edge.ClientStats, []obs.JournalRecord) {
	t.Helper()
	c, err := New(Config{Members: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := world.NuScenesLike()
	p.ClipDuration = 2
	clip := world.GenerateClip(p, seed)
	rec := obs.NewRecorder(256)
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Obs = rec
	cfg.Seed = 5
	agent, err := core.NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client := edge.NewClient(edge.ClientConfig{
		Addrs: c.CandidateAddrs(), Profile: "nuScenes", Seed: seed,
		Duration: p.ClipDuration, Window: window,
		AckTimeout: 2 * time.Second, Backoff: fastBackoff(), Obs: rec,
	}, agent)

	done := make(chan struct{})
	if disrupt == nil {
		close(done)
	} else {
		go func() {
			defer close(done)
			disrupt(c, rec, clip.NumFrames()/2)
		}()
	}
	dets, stats, err := client.Run(clip)
	<-done
	if err != nil {
		t.Fatalf("run failed: %v (stats %+v)", err, stats)
	}
	if len(dets) != clip.NumFrames() {
		t.Fatalf("got %d detection slots for %d frames", len(dets), clip.NumFrames())
	}
	return dets, stats, rec.Journal().Snapshot()
}

// killServing waits until the clip is half streamed, finds the member holding
// the session and kills it — once.
func killServing(c *Cluster, rec *obs.Recorder, half int) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(rec.Journal().Snapshot()) >= half {
			for _, st := range c.Status() {
				if st.Sessions > 0 {
					c.Kill(st.Index)
					return
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func totalBoxes(dets [][]detect.Detection) int {
	n := 0
	for _, d := range dets {
		n += len(d)
	}
	return n
}

// TestKillMemberMidClip is the headline guarantee: kill the member serving a
// live session halfway through the clip, at pipeline windows 1–3, and the
// session must fail over to a survivor with (a) every frame still covered,
// (b) exactly one forced migration whose re-detection gap stays under the
// doctor's budget, (c) an intra frame opening the post-handoff bitstream, and
// (d) detections comparable to the no-failure run.
func TestKillMemberMidClip(t *testing.T) {
	gapBudget := doctor.DefaultThresholds().MigrationGapBudgetSec
	for w := 1; w <= 3; w++ {
		t.Run(fmt.Sprintf("window=%d", w), func(t *testing.T) {
			cleanDets, cleanStats, cleanJS := runClusterClip(t, w, 77, nil)
			if cleanStats.Migrations != 0 || cleanStats.Reconnects != 0 {
				t.Fatalf("clean cluster run migrated or reconnected: %+v", cleanStats)
			}
			if rep := doctor.Analyze(cleanJS, nil, doctor.Thresholds{}); hasCheck(rep, "migration-gap") {
				t.Fatalf("clean run produced migration findings: %+v", rep.Findings)
			}

			dets, stats, js := runClusterClip(t, w, 77, killServing)
			if stats.ForcedMigrations < 1 {
				t.Fatalf("kill produced no forced migration: %+v", stats)
			}
			for i, d := range dets {
				if d == nil {
					t.Errorf("frame %d left uncovered after the kill", i)
				}
			}
			if stats.MaxMigrationGapSec > gapBudget {
				t.Errorf("re-detection gap %.3fs exceeds the %.1fs budget", stats.MaxMigrationGapSec, gapBudget)
			}

			migrated := 0
			for _, j := range js {
				if !j.Migrated {
					continue
				}
				migrated++
				if !j.MigrationForced {
					t.Errorf("kill journaled a planned migration: %+v", j)
				}
				if j.MigrationGapSec <= 0 || j.MigrationGapSec > gapBudget {
					t.Errorf("frame %d migration gap %.3fs outside (0, %.1f]", j.Frame, j.MigrationGapSec, gapBudget)
				}
				if j.Type != "I" && !j.ForcedIFrame {
					t.Errorf("first post-handoff frame %d is %q, want an intra frame", j.Frame, j.Type)
				}
				if j.MigratedTo == "" {
					t.Errorf("frame %d migration has no target", j.Frame)
				}
			}
			if migrated != 1 {
				t.Fatalf("journal shows %d migrations for one kill, want 1", migrated)
			}

			// Recall vs the no-failure run: MOT covers the gap, so the kill
			// run must keep the bulk of the clean run's detections (epsilon-
			// based — live TCP timing makes strict equality meaningless).
			if tk, tc := totalBoxes(dets), totalBoxes(cleanDets); float64(tk) < 0.7*float64(tc) {
				t.Errorf("kill run kept %d boxes of the clean run's %d (< 70%%)", tk, tc)
			}

			// The doctor must grade this exactly as CI will: one bounded
			// migration-gap warn, no failover storm.
			rep := doctor.Analyze(js, nil, doctor.Thresholds{})
			gaps := 0
			for _, f := range rep.Findings {
				switch f.Check {
				case "migration-gap":
					gaps++
					if f.Severity != doctor.Warn {
						t.Errorf("bounded migration graded %v, want warn: %+v", f.Severity, f)
					}
				case "failover-storm":
					t.Errorf("single kill graded as a failover storm: %+v", f)
				}
			}
			if gaps != 1 {
				t.Errorf("doctor found %d migration-gap findings, want exactly 1", gaps)
			}
		})
	}
}

func hasCheck(rep *doctor.Report, check string) bool {
	for _, f := range rep.Findings {
		if f.Check == check {
			return true
		}
	}
	return false
}

// TestDrainPlannedMigration drains the serving member mid-clip: the session
// must follow the Redirect to a survivor (planned, not forced), resume with
// an intra frame, and finish covered.
func TestDrainPlannedMigration(t *testing.T) {
	drainServing := func(c *Cluster, rec *obs.Recorder, half int) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if len(rec.Journal().Snapshot()) >= half {
				for _, st := range c.Status() {
					if st.Sessions > 0 && st.State != Draining {
						if _, n, err := c.Drain(st.Index); err == nil && n > 0 {
							return
						}
					}
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	dets, stats, js := runClusterClip(t, 2, 78, drainServing)
	if stats.Redirects < 1 || stats.Migrations < 1 {
		t.Fatalf("drain produced no redirect-driven migration: %+v", stats)
	}
	if stats.ForcedMigrations != 0 {
		t.Errorf("planned drain counted as forced: %+v", stats)
	}
	for i, d := range dets {
		if d == nil {
			t.Errorf("frame %d left uncovered across the drain", i)
		}
	}
	found := false
	for _, j := range js {
		if !j.Migrated {
			continue
		}
		found = true
		if j.MigrationForced {
			t.Errorf("drain journaled a forced migration: %+v", j)
		}
		if j.Type != "I" && !j.ForcedIFrame {
			t.Errorf("first post-drain frame %d is %q, want an intra frame", j.Frame, j.Type)
		}
	}
	if !found {
		t.Fatal("no migration journaled for the drain")
	}
}

// TestPartitionMarksDownAndRecovers runs the real HelloProbe against a
// proxied cluster: blacking out a member's path must walk it to down even
// though its TCP port still accepts, and healing the path must walk it back.
func TestPartitionMarksDownAndRecovers(t *testing.T) {
	c, err := New(Config{
		Members: 2, Proxied: true,
		Probe: ProbeConfig{
			Interval: 10 * time.Millisecond, Timeout: 200 * time.Millisecond,
			FailThreshold: 2, RecoverThreshold: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitState := func(i int, want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.Status()[i].State == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("member %d never reached %v (now %v)", i, want, c.Status()[i].State)
	}

	waitState(0, Healthy)
	if err := c.Partition(0, true); err != nil {
		t.Fatal(err)
	}
	waitState(0, Down)
	if st, err := c.Pick(); err != nil || st.Index != 1 {
		t.Fatalf("Pick during partition = %+v, %v; want member 1", st, err)
	}
	if err := c.Partition(0, false); err != nil {
		t.Fatal(err)
	}
	waitState(0, Healthy)
}
