// Package imgx implements the 8-bit luma image representation shared by the
// renderer, the codec and the detector: planes, rectangular regions, block
// copies, and distortion metrics (MSE/PSNR, whole-frame and per-region).
//
// DiVE's analysis operates on luma only — motion estimation in practical
// codecs is luma-driven — so a frame is a single plane.
package imgx

import (
	"fmt"
	"math"
)

// Plane is an 8-bit single-channel image with row-major storage.
type Plane struct {
	W, H int
	Pix  []uint8
	// seq is a content generation counter: Set and Fill bump it, and
	// callers that rewrite Pix directly and reuse the buffer across frames
	// must call Bump so content-keyed caches (the encoder's motion-analysis
	// memo) notice the change. Pointer identity alone cannot.
	seq uint64
}

// NewPlane allocates a zeroed W×H plane. It panics on non-positive
// dimensions, which indicates a programming error.
func NewPlane(w, h int) *Plane {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("imgx: invalid plane size %dx%d", w, h))
	}
	return &Plane{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). Coordinates outside the plane are clamped
// to the border, matching the edge-extension behaviour video codecs use for
// motion compensation at frame boundaries.
func (p *Plane) At(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= p.W {
		x = p.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= p.H {
		y = p.H - 1
	}
	return p.Pix[y*p.W+x]
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (p *Plane) Set(x, y int, v uint8) {
	if x < 0 || y < 0 || x >= p.W || y >= p.H {
		return
	}
	p.Pix[y*p.W+x] = v
	p.seq++
}

// Bump advances the content generation counter. Call it after writing Pix
// directly on a buffer that is reused across frames.
func (p *Plane) Bump() { p.seq++ }

// Seq returns the content generation counter.
func (p *Plane) Seq() uint64 { return p.seq }

// Clone returns a deep copy of the plane.
func (p *Plane) Clone() *Plane {
	q := NewPlane(p.W, p.H)
	copy(q.Pix, p.Pix)
	return q
}

// Fill sets every pixel to v.
func (p *Plane) Fill(v uint8) {
	for i := range p.Pix {
		p.Pix[i] = v
	}
	p.seq++
}

// Row returns the pixels of row y as a shared slice (no copy).
func (p *Plane) Row(y int) []uint8 {
	return p.Pix[y*p.W : (y+1)*p.W]
}

// Rect is an axis-aligned rectangle. Min is inclusive, Max exclusive,
// mirroring the standard library's image.Rectangle convention.
type Rect struct {
	MinX, MinY, MaxX, MaxY int
}

// NewRect builds a rectangle from a corner and a size.
func NewRect(x, y, w, h int) Rect { return Rect{x, y, x + w, y + h} }

// W returns the rectangle width (0 if empty).
func (r Rect) W() int {
	if r.MaxX <= r.MinX {
		return 0
	}
	return r.MaxX - r.MinX
}

// H returns the rectangle height (0 if empty).
func (r Rect) H() int {
	if r.MaxY <= r.MinY {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the rectangle area in pixels.
func (r Rect) Area() int { return r.W() * r.H() }

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.W() == 0 || r.H() == 0 }

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: maxi(r.MinX, s.MinX),
		MinY: maxi(r.MinY, s.MinY),
		MaxX: mini(r.MaxX, s.MaxX),
		MaxY: mini(r.MaxY, s.MaxY),
	}
	if out.MaxX < out.MinX {
		out.MaxX = out.MinX
	}
	if out.MaxY < out.MinY {
		out.MaxY = out.MinY
	}
	return out
}

// Union returns the smallest rectangle covering both r and s. Empty
// rectangles are ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: mini(r.MinX, s.MinX),
		MinY: mini(r.MinY, s.MinY),
		MaxX: maxi(r.MaxX, s.MaxX),
		MaxY: maxi(r.MaxY, s.MaxY),
	}
}

// Contains reports whether point (x, y) lies in r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.MinX && x < r.MaxX && y >= r.MinY && y < r.MaxY
}

// ClipTo clamps r to the plane bounds [0,w)×[0,h).
func (r Rect) ClipTo(w, h int) Rect {
	return r.Intersect(Rect{0, 0, w, h})
}

// IoU returns the intersection-over-union of r and s, the matching measure
// used by the AP metric.
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	return float64(inter) / float64(union)
}

// MSE returns the mean squared error between two planes of identical size.
// It panics on size mismatch (a programming error in this codebase).
func MSE(a, b *Plane) float64 {
	if a.W != b.W || a.H != b.H {
		panic("imgx: MSE size mismatch")
	}
	var s uint64
	for i := range a.Pix {
		d := int(a.Pix[i]) - int(b.Pix[i])
		s += uint64(d * d)
	}
	return float64(s) / float64(len(a.Pix))
}

// RegionMSE returns the MSE restricted to rect (clipped to the planes). An
// empty region returns 0.
func RegionMSE(a, b *Plane, rect Rect) float64 {
	if a.W != b.W || a.H != b.H {
		panic("imgx: RegionMSE size mismatch")
	}
	r := rect.ClipTo(a.W, a.H)
	if r.Empty() {
		return 0
	}
	var s uint64
	for y := r.MinY; y < r.MaxY; y++ {
		ra := a.Pix[y*a.W+r.MinX : y*a.W+r.MaxX]
		rb := b.Pix[y*b.W+r.MinX : y*b.W+r.MaxX]
		for i := range ra {
			d := int(ra[i]) - int(rb[i])
			s += uint64(d * d)
		}
	}
	return float64(s) / float64(r.Area())
}

// PSNR converts an MSE into peak signal-to-noise ratio in dB for 8-bit
// content. A zero MSE returns +Inf.
func PSNR(mse float64) float64 {
	if mse <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func mini(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
