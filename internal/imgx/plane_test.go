package imgx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPlaneBasics(t *testing.T) {
	p := NewPlane(4, 3)
	p.Set(1, 2, 77)
	if p.At(1, 2) != 77 {
		t.Error("Set/At round trip failed")
	}
	// Border clamping.
	p.Set(0, 0, 5)
	if p.At(-3, -3) != 5 {
		t.Error("negative coords should clamp to (0,0)")
	}
	p.Set(3, 2, 9)
	if p.At(100, 100) != 9 {
		t.Error("large coords should clamp to bottom-right")
	}
	// Out-of-bounds writes are dropped.
	p.Set(-1, 0, 42)
	p.Set(4, 0, 42)
	if p.At(0, 0) != 5 {
		t.Error("out-of-bounds write corrupted plane")
	}
	q := p.Clone()
	q.Set(0, 0, 99)
	if p.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
	p.Fill(128)
	for _, v := range p.Pix {
		if v != 128 {
			t.Fatal("Fill incomplete")
		}
	}
	if len(p.Row(1)) != 4 {
		t.Error("Row length wrong")
	}
}

func TestPlanePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid size")
		}
	}()
	NewPlane(0, 5)
}

func TestRectOps(t *testing.T) {
	r := NewRect(2, 3, 4, 5) // [2,6)x[3,8)
	if r.W() != 4 || r.H() != 5 || r.Area() != 20 || r.Empty() {
		t.Errorf("basic geometry wrong: %+v", r)
	}
	s := Rect{4, 5, 10, 10}
	inter := r.Intersect(s)
	if inter != (Rect{4, 5, 6, 8}) {
		t.Errorf("Intersect = %+v", inter)
	}
	u := r.Union(s)
	if u != (Rect{2, 3, 10, 10}) {
		t.Errorf("Union = %+v", u)
	}
	if !r.Contains(2, 3) || r.Contains(6, 3) {
		t.Error("Contains boundary semantics wrong")
	}
	empty := Rect{5, 5, 5, 9}
	if !empty.Empty() || empty.Area() != 0 {
		t.Error("empty rect misreported")
	}
	if got := r.Union(empty); got != r {
		t.Errorf("Union with empty = %+v", got)
	}
	if got := empty.Union(r); got != r {
		t.Errorf("empty Union r = %+v", got)
	}
	clipped := Rect{-5, -5, 3, 4}.ClipTo(10, 10)
	if clipped != (Rect{0, 0, 3, 4}) {
		t.Errorf("ClipTo = %+v", clipped)
	}
	// Disjoint intersection is empty, not negative.
	d := Rect{0, 0, 2, 2}.Intersect(Rect{5, 5, 7, 7})
	if !d.Empty() {
		t.Errorf("disjoint Intersect = %+v", d)
	}
}

func TestIoU(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if v := a.IoU(a); v != 1 {
		t.Errorf("self IoU = %v", v)
	}
	b := Rect{5, 0, 15, 10}
	want := 50.0 / 150.0
	if v := a.IoU(b); math.Abs(v-want) > 1e-12 {
		t.Errorf("IoU = %v, want %v", v, want)
	}
	if v := a.IoU(Rect{20, 20, 30, 30}); v != 0 {
		t.Errorf("disjoint IoU = %v", v)
	}
}

func TestIoUSymmetricProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := NewRect(int(ax), int(ay), int(aw%32)+1, int(ah%32)+1)
		b := NewRect(int(bx), int(by), int(bw%32)+1, int(bh%32)+1)
		u := a.IoU(b)
		return u == b.IoU(a) && u >= 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMSEAndPSNR(t *testing.T) {
	a := NewPlane(8, 8)
	b := NewPlane(8, 8)
	if MSE(a, b) != 0 {
		t.Error("identical planes should have MSE 0")
	}
	if !math.IsInf(PSNR(0), 1) {
		t.Error("PSNR(0) should be +Inf")
	}
	b.Fill(10)
	if got := MSE(a, b); got != 100 {
		t.Errorf("MSE = %v, want 100", got)
	}
	want := 10 * math.Log10(255*255/100.0)
	if got := PSNR(100); math.Abs(got-want) > 1e-12 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestRegionMSE(t *testing.T) {
	a := NewPlane(16, 16)
	b := a.Clone()
	FillRect(b, Rect{0, 0, 8, 8}, 20) // distort top-left quadrant only
	if got := RegionMSE(a, b, Rect{0, 0, 8, 8}); got != 400 {
		t.Errorf("distorted region MSE = %v", got)
	}
	if got := RegionMSE(a, b, Rect{8, 8, 16, 16}); got != 0 {
		t.Errorf("clean region MSE = %v", got)
	}
	if got := RegionMSE(a, b, Rect{-10, -10, -5, -5}); got != 0 {
		t.Errorf("empty region MSE = %v", got)
	}
	// Region clipping: region extends past the frame.
	if got := RegionMSE(a, b, Rect{0, 0, 100, 100}); got != 100 {
		t.Errorf("clipped region MSE = %v (want whole-frame 100)", got)
	}
}

func TestMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MSE(NewPlane(2, 2), NewPlane(3, 3))
}

func TestCopyBlock(t *testing.T) {
	src := NewPlane(8, 8)
	for i := range src.Pix {
		src.Pix[i] = uint8(i)
	}
	dst := NewPlane(8, 8)
	CopyBlock(dst, 2, 2, src, 0, 0, 4, 4)
	if dst.At(2, 2) != src.At(0, 0) || dst.At(5, 5) != src.At(3, 3) {
		t.Error("CopyBlock content wrong")
	}
	// Source clamping: reading past the border replicates edge pixels.
	dst2 := NewPlane(4, 4)
	CopyBlock(dst2, 0, 0, src, 6, 6, 4, 4)
	if dst2.At(3, 3) != src.At(7, 7) {
		t.Error("CopyBlock should clamp source reads")
	}
	// Destination clipping: writes beyond dst are dropped without panic.
	CopyBlock(dst2, 2, 2, src, 0, 0, 4, 4)
}

func TestDrawRectOutline(t *testing.T) {
	p := NewPlane(10, 10)
	DrawRectOutline(p, Rect{2, 2, 6, 6}, 255)
	if p.At(2, 2) != 255 || p.At(5, 2) != 255 || p.At(2, 5) != 255 || p.At(5, 5) != 255 {
		t.Error("outline corners missing")
	}
	if p.At(3, 3) != 0 {
		t.Error("outline filled interior")
	}
	DrawRectOutline(p, Rect{20, 20, 30, 30}, 255) // fully clipped: no panic
}

func TestDownsample2x(t *testing.T) {
	p := NewPlane(4, 4)
	FillRect(p, Rect{0, 0, 2, 2}, 100)
	d := Downsample2x(p)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("size = %dx%d", d.W, d.H)
	}
	if d.At(0, 0) != 100 || d.At(1, 1) != 0 {
		t.Errorf("averaging wrong: %v %v", d.At(0, 0), d.At(1, 1))
	}
	tiny := NewPlane(1, 1)
	if got := Downsample2x(tiny); got.W != 1 || got.H != 1 {
		t.Error("degenerate downsample should clone")
	}
}

func TestSAD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewPlane(32, 32)
	for i := range a.Pix {
		a.Pix[i] = uint8(rng.Intn(256))
	}
	b := a.Clone()
	if got := SAD(a, 8, 8, b, 8, 8, 16, 16, math.MaxInt); got != 0 {
		t.Errorf("self SAD = %d", got)
	}
	// Shifted content: SAD against the shifted position should be 0.
	c := NewPlane(32, 32)
	CopyBlock(c, 0, 0, a, 2, 0, 32, 32)
	if got := SAD(a, 8, 8, c, 6, 8, 16, 16, math.MaxInt); got != 0 {
		t.Errorf("shifted SAD = %d", got)
	}
	// Early exit returns a value >= threshold when cost is high.
	d := NewPlane(32, 32)
	d.Fill(255)
	if got := SAD(a, 8, 8, d, 8, 8, 16, 16, 100); got < 100 {
		t.Errorf("early-exit SAD = %d, want >= 100", got)
	}
	// Border-clamped path must match manual computation.
	got := SAD(a, 0, 0, b, -4, -4, 16, 16, math.MaxInt)
	want := 0
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			df := int(a.At(x, y)) - int(b.At(x-4, y-4))
			if df < 0 {
				df = -df
			}
			want += df
		}
	}
	if got != want {
		t.Errorf("clamped SAD = %d, want %d", got, want)
	}
}

func TestPlaneSeqTracksContent(t *testing.T) {
	p := NewPlane(4, 3)
	if p.Seq() != 0 {
		t.Errorf("fresh plane Seq = %d", p.Seq())
	}
	p.Set(1, 1, 9)
	if p.Seq() == 0 {
		t.Error("Set did not bump Seq")
	}
	s := p.Seq()
	p.Set(-1, 0, 9) // out of bounds: no content change, no bump
	if p.Seq() != s {
		t.Error("out-of-bounds Set bumped Seq")
	}
	p.Fill(3)
	if p.Seq() <= s {
		t.Error("Fill did not bump Seq")
	}
	s = p.Seq()
	p.Pix[0] = 42 // direct write: caller's responsibility
	p.Bump()
	if p.Seq() != s+1 {
		t.Errorf("Bump moved Seq from %d to %d", s, p.Seq())
	}
}
