package imgx

import (
	"math/rand"
	"testing"
)

// sadNaive is the reference scalar implementation SAD must match bit-for-bit,
// including the row-granular early-exit contract: the partial sum is compared
// against earlyExit after each completed row, never mid-row.
func sadNaive(a *Plane, ax, ay int, b *Plane, bx, by, w, h, earlyExit int) int {
	sum := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			d := int(a.Pix[(ay+y)*a.W+ax+x]) - int(b.At(bx+x, by+y))
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum >= earlyExit {
			return sum
		}
	}
	return sum
}

func randomPlane(rng *rand.Rand, w, h int) *Plane {
	p := NewPlane(w, h)
	for i := range p.Pix {
		p.Pix[i] = uint8(rng.Intn(256))
	}
	return p
}

// TestSADMatchesNaive cross-checks the restructured SAD against the naive
// loop over randomized block sizes, positions (interior and border-clamped)
// and early-exit thresholds.
func TestSADMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randomPlane(rng, 64, 48)
	b := randomPlane(rng, 64, 48)
	sizes := [][2]int{{16, 16}, {8, 8}, {16, 8}, {8, 16}, {4, 4}, {5, 7}, {24, 16}, {1, 1}}
	for trial := 0; trial < 5000; trial++ {
		wh := sizes[rng.Intn(len(sizes))]
		w, h := wh[0], wh[1]
		ax := rng.Intn(a.W - w + 1)
		ay := rng.Intn(a.H - h + 1)
		// b positions range off-plane to exercise the clamped path.
		bx := rng.Intn(b.W+32) - 16
		by := rng.Intn(b.H+32) - 16
		var early int
		switch rng.Intn(3) {
		case 0:
			early = 1 << 30
		case 1:
			early = rng.Intn(w * h * 128)
		default:
			early = rng.Intn(256)
		}
		got := SAD(a, ax, ay, b, bx, by, w, h, early)
		want := sadNaive(a, ax, ay, b, bx, by, w, h, early)
		if got != want {
			t.Fatalf("trial %d: SAD(%d,%d vs %d,%d %dx%d early=%d) = %d, naive = %d",
				trial, ax, ay, bx, by, w, h, early, got, want)
		}
	}
}

// TestSADIdenticalBlocks pins the trivial invariants.
func TestSADIdenticalBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomPlane(rng, 32, 32)
	if got := SAD(a, 4, 4, a, 4, 4, 16, 16, 1<<30); got != 0 {
		t.Fatalf("SAD of block with itself = %d, want 0", got)
	}
}

func BenchmarkSAD(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pa := randomPlane(rng, 320, 192)
	pb := randomPlane(rng, 320, 192)
	b.Run("16x16", func(b *testing.B) {
		b.SetBytes(16 * 16)
		for i := 0; i < b.N; i++ {
			SAD(pa, 64, 64, pb, 67, 62, 16, 16, 1<<30)
		}
	})
	b.Run("16x16-clamped", func(b *testing.B) {
		b.SetBytes(16 * 16)
		for i := 0; i < b.N; i++ {
			SAD(pa, 0, 0, pb, -5, -3, 16, 16, 1<<30)
		}
	})
	b.Run("8x8", func(b *testing.B) {
		b.SetBytes(8 * 8)
		for i := 0; i < b.N; i++ {
			SAD(pa, 64, 64, pb, 67, 62, 8, 8, 1<<30)
		}
	})
}
