package imgx

// CopyBlock copies a w×h block from src at (sx, sy) into dst at (dx, dy).
// Source reads use border clamping (codec motion compensation semantics);
// destination writes outside dst are dropped.
func CopyBlock(dst *Plane, dx, dy int, src *Plane, sx, sy, w, h int) {
	for y := 0; y < h; y++ {
		ty := dy + y
		if ty < 0 || ty >= dst.H {
			continue
		}
		for x := 0; x < w; x++ {
			tx := dx + x
			if tx < 0 || tx >= dst.W {
				continue
			}
			dst.Pix[ty*dst.W+tx] = src.At(sx+x, sy+y)
		}
	}
}

// FillRect fills rect (clipped) with value v.
func FillRect(p *Plane, rect Rect, v uint8) {
	r := rect.ClipTo(p.W, p.H)
	for y := r.MinY; y < r.MaxY; y++ {
		row := p.Row(y)
		for x := r.MinX; x < r.MaxX; x++ {
			row[x] = v
		}
	}
}

// DrawRectOutline draws a 1-pixel rectangle outline (clipped) with value v;
// used by the example programs to visualize detections.
func DrawRectOutline(p *Plane, rect Rect, v uint8) {
	r := rect.ClipTo(p.W, p.H)
	if r.Empty() {
		return
	}
	for x := r.MinX; x < r.MaxX; x++ {
		p.Set(x, r.MinY, v)
		p.Set(x, r.MaxY-1, v)
	}
	for y := r.MinY; y < r.MaxY; y++ {
		p.Set(r.MinX, y, v)
		p.Set(r.MaxX-1, y, v)
	}
}

// Downsample2x returns a half-resolution plane by 2×2 box averaging. Odd
// trailing rows/columns are dropped.
func Downsample2x(p *Plane) *Plane {
	w, h := p.W/2, p.H/2
	if w == 0 || h == 0 {
		return p.Clone()
	}
	out := NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := int(p.Pix[(2*y)*p.W+2*x]) +
				int(p.Pix[(2*y)*p.W+2*x+1]) +
				int(p.Pix[(2*y+1)*p.W+2*x]) +
				int(p.Pix[(2*y+1)*p.W+2*x+1])
			out.Pix[y*w+x] = uint8((s + 2) / 4)
		}
	}
	return out
}

// SAD returns the sum of absolute differences between the w×h block at
// (ax, ay) in a and the block at (bx, by) in b, with border clamping on b
// only (a's block must be fully inside; the codec guarantees this). The
// earlyExit threshold aborts and returns a value >= earlyExit as soon as the
// partial sum crosses it, the standard motion-search optimization.
func SAD(a *Plane, ax, ay int, b *Plane, bx, by, w, h, earlyExit int) int {
	sum := 0
	fastB := bx >= 0 && by >= 0 && bx+w <= b.W && by+h <= b.H
	for y := 0; y < h; y++ {
		ra := a.Pix[(ay+y)*a.W+ax : (ay+y)*a.W+ax+w]
		if fastB {
			rb := b.Pix[(by+y)*b.W+bx : (by+y)*b.W+bx+w]
			for x := 0; x < w; x++ {
				d := int(ra[x]) - int(rb[x])
				if d < 0 {
					d = -d
				}
				sum += d
			}
		} else {
			for x := 0; x < w; x++ {
				d := int(ra[x]) - int(b.At(bx+x, by+y))
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		if sum >= earlyExit {
			return sum
		}
	}
	return sum
}
