package imgx

// CopyBlock copies a w×h block from src at (sx, sy) into dst at (dx, dy).
// Source reads use border clamping (codec motion compensation semantics);
// destination writes outside dst are dropped.
func CopyBlock(dst *Plane, dx, dy int, src *Plane, sx, sy, w, h int) {
	for y := 0; y < h; y++ {
		ty := dy + y
		if ty < 0 || ty >= dst.H {
			continue
		}
		for x := 0; x < w; x++ {
			tx := dx + x
			if tx < 0 || tx >= dst.W {
				continue
			}
			dst.Pix[ty*dst.W+tx] = src.At(sx+x, sy+y)
		}
	}
}

// FillRect fills rect (clipped) with value v.
func FillRect(p *Plane, rect Rect, v uint8) {
	r := rect.ClipTo(p.W, p.H)
	for y := r.MinY; y < r.MaxY; y++ {
		row := p.Row(y)
		for x := r.MinX; x < r.MaxX; x++ {
			row[x] = v
		}
	}
}

// DrawRectOutline draws a 1-pixel rectangle outline (clipped) with value v;
// used by the example programs to visualize detections.
func DrawRectOutline(p *Plane, rect Rect, v uint8) {
	r := rect.ClipTo(p.W, p.H)
	if r.Empty() {
		return
	}
	for x := r.MinX; x < r.MaxX; x++ {
		p.Set(x, r.MinY, v)
		p.Set(x, r.MaxY-1, v)
	}
	for y := r.MinY; y < r.MaxY; y++ {
		p.Set(r.MinX, y, v)
		p.Set(r.MaxX-1, y, v)
	}
}

// Downsample2x returns a half-resolution plane by 2×2 box averaging. Odd
// trailing rows/columns are dropped.
func Downsample2x(p *Plane) *Plane {
	w, h := p.W/2, p.H/2
	if w == 0 || h == 0 {
		return p.Clone()
	}
	out := NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := int(p.Pix[(2*y)*p.W+2*x]) +
				int(p.Pix[(2*y)*p.W+2*x+1]) +
				int(p.Pix[(2*y+1)*p.W+2*x]) +
				int(p.Pix[(2*y+1)*p.W+2*x+1])
			out.Pix[y*w+x] = uint8((s + 2) / 4)
		}
	}
	return out
}

// SAD returns the sum of absolute differences between the w×h block at
// (ax, ay) in a and the block at (bx, by) in b, with border clamping on b
// only (a's block must be fully inside; the codec guarantees this). The
// earlyExit threshold is checked after each completed row: the call aborts
// and returns a value >= earlyExit as soon as the row-granular partial sum
// crosses it, the standard motion-search optimization.
//
// Interior rows run through sadRow16/sadRow8: fixed-width groups of
// branchless uint16 lane accumulation over array pointers, which eliminates
// bounds checks and per-pixel compare/branch pairs — the hot shape of every
// motion search (16-wide macroblock rows) stays in one straight-line kernel.
func SAD(a *Plane, ax, ay int, b *Plane, bx, by, w, h, earlyExit int) int {
	sum := 0
	fastB := bx >= 0 && by >= 0 && bx+w <= b.W && by+h <= b.H
	if fastB && w == 16 {
		for y := 0; y < h; y++ {
			oa := (ay+y)*a.W + ax
			ob := (by+y)*b.W + bx
			sum += int(sadRow16((*[16]uint8)(a.Pix[oa:oa+16]), (*[16]uint8)(b.Pix[ob:ob+16])))
			if sum >= earlyExit {
				return sum
			}
		}
		return sum
	}
	if fastB && w == 8 {
		for y := 0; y < h; y++ {
			oa := (ay+y)*a.W + ax
			ob := (by+y)*b.W + bx
			sum += int(sadRow8((*[8]uint8)(a.Pix[oa:oa+8]), (*[8]uint8)(b.Pix[ob:ob+8])))
			if sum >= earlyExit {
				return sum
			}
		}
		return sum
	}
	for y := 0; y < h; y++ {
		ra := a.Pix[(ay+y)*a.W+ax : (ay+y)*a.W+ax+w]
		if fastB {
			rb := b.Pix[(by+y)*b.W+bx : (by+y)*b.W+bx+w]
			x := 0
			for ; x+8 <= w; x += 8 {
				sum += int(sadRow8((*[8]uint8)(ra[x:x+8]), (*[8]uint8)(rb[x:x+8])))
			}
			for ; x < w; x++ {
				d := int16(ra[x]) - int16(rb[x])
				m := d >> 15
				sum += int((d + m) ^ m)
			}
		} else {
			for x := 0; x < w; x++ {
				d := int(ra[x]) - int(b.At(bx+x, by+y))
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		if sum >= earlyExit {
			return sum
		}
	}
	return sum
}

// sadRow16 sums |a[i]-b[i]| over a 16-pixel row as two 8-wide lane groups.
// The worst case (16 × 255 = 4080) fits a uint16 accumulator with room to
// spare, so the whole row stays in narrow arithmetic.
func sadRow16(a, b *[16]uint8) uint16 {
	return sadRow8((*[8]uint8)(a[0:8]), (*[8]uint8)(b[0:8])) +
		sadRow8((*[8]uint8)(a[8:16]), (*[8]uint8)(b[8:16]))
}

// sadRow8 sums |a[i]-b[i]| over 8 pixels: both rows are loaded as one
// little-endian word each and reduced with branch-free SWAR arithmetic
// (swarSAD8). Array-pointer parameters make the 8-byte loads provably in
// bounds, so the kernel compiles to two loads plus straight-line ALU ops.
func sadRow8(a, b *[8]uint8) uint16 {
	x := uint64(a[0]) | uint64(a[1])<<8 | uint64(a[2])<<16 | uint64(a[3])<<24 |
		uint64(a[4])<<32 | uint64(a[5])<<40 | uint64(a[6])<<48 | uint64(a[7])<<56
	y := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	return swarSAD8(x, y)
}

// hi8 masks the high bit of each byte lane in a uint64.
const hi8 = 0x8080808080808080

// swarSAD8 computes the sum of absolute per-byte differences of two packed
// 8-byte words without branches or lane splits (a scalar psadbw):
//
//  1. d is the per-byte (x-y) mod 256 via the carry-isolating subtraction
//     identity d = ((x|H) - (y&^H)) ^ ((x^^y)&H) — forcing the high bit of
//     every x byte keeps borrows from crossing lane boundaries, and the
//     final xor repairs the true high bits.
//  2. m extracts the per-byte borrow-out (1 where x < y) from the standard
//     subtraction borrow predicate (^x&y) | ((^x|y)&d).
//  3. abs negates exactly the borrowed lanes: xor with the 0xFF mask is a
//     per-byte complement, and adding m (+1 in those lanes) completes the
//     two's-complement negation. ~d+1 never overflows a lane because d is
//     nonzero wherever m is set.
//  4. The horizontal add first widens to four uint16 lanes (each ≤ 510,
//     exact), then a multiply by the ones vector accumulates all lanes into
//     the top uint16 (≤ 2040, no overflow).
func swarSAD8(x, y uint64) uint16 {
	d := ((x | hi8) - (y &^ hi8)) ^ ((x ^ ^y) & hi8)
	m := (((^x & y) | ((^x | y) & d)) & hi8) >> 7
	abs := (d ^ (m * 0xFF)) + m
	const lo16 = 0x00FF00FF00FF00FF
	s := (abs & lo16) + ((abs >> 8) & lo16)
	return uint16((s * 0x0001000100010001) >> 48)
}
