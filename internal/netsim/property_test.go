package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: link deliveries are FIFO-ordered, never precede their enqueue
// time plus propagation, and conserve bytes (delivery time consistent with
// integrated bandwidth).
func TestPropertyLinkFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		trace := &FadingTrace{
			Base:   Mbps(0.5 + rng.Float64()*4),
			Swing:  rng.Float64() * 0.5,
			Period: 3 + rng.Float64()*10,
			Jitter: rng.Float64() * 0.3,
			Seed:   seed,
		}
		link := NewLink(trace, 0.01)
		tNow := 0.0
		prevDelivery := 0.0
		for i := 0; i < 30; i++ {
			tNow += rng.Float64() * 0.2
			bits := 1000 + rng.Intn(500_000)
			start, _, delivery := link.Send(tNow, bits)
			if start < tNow {
				return false // cannot start before enqueue
			}
			if delivery < start+0.01 {
				return false // cannot beat propagation
			}
			if delivery < prevDelivery {
				return false // FIFO violated
			}
			prevDelivery = delivery
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: drain time over a constant trace matches the closed form.
func TestPropertyConstantLinkExact(t *testing.T) {
	f := func(rateRaw, bitsRaw uint32) bool {
		rate := float64(rateRaw%9000+1000) * 1e3 // 1..10 Mbps
		bits := int(bitsRaw%2_000_000) + 1
		link := NewLink(ConstantTrace(rate), 0)
		_, _, delivery := link.Send(0, bits)
		want := float64(bits) / rate
		return math.Abs(delivery-want) < 2e-3+want*0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the estimator never returns negative bandwidth and returns the
// prior when the window holds no samples.
func TestPropertyEstimatorSane(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEstimator(0.2+rng.Float64(), Mbps(1))
		tNow := 0.0
		for i := 0; i < 50; i++ {
			tNow += rng.Float64() * 0.3
			dur := 0.001 + rng.Float64()*0.2
			e.Record(tNow, tNow+dur, rng.Intn(1_000_000))
			if e.EstimateAt(tNow+dur) < 0 {
				return false
			}
		}
		// Far future: prior.
		return e.EstimateAt(tNow+1000) == Mbps(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every trace type reports non-negative bandwidth at all times.
func TestPropertyTracesNonNegative(t *testing.T) {
	traces := []Trace{
		ConstantTrace(Mbps(2)),
		&StepTrace{Times: []float64{0, 5}, Rates: []float64{Mbps(1), Mbps(3)}},
		&FadingTrace{Base: Mbps(2), Swing: 0.9, Period: 7, Jitter: 0.9, Seed: 3},
		&OutageTrace{Inner: ConstantTrace(Mbps(2)), Start: 1, Interval: 4, Duration: 1},
		&RandomWalkTrace{Base: Mbps(2), Min: Mbps(0.2), Max: Mbps(8), Epoch: 1, Seed: 5},
	}
	for ti, tr := range traces {
		for x := 0.0; x < 60; x += 0.37 {
			if bw := tr.BandwidthAt(x); bw < 0 {
				t.Fatalf("trace %d: negative bandwidth %v at t=%v", ti, bw, x)
			}
		}
	}
}
