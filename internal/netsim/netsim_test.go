package netsim

import (
	"math"
	"testing"
)

func TestConstantTraceAndLink(t *testing.T) {
	link := NewLink(ConstantTrace(Mbps(2)), 0.01)
	// 1 Mbit over 2 Mbps = 0.5 s + 10 ms propagation.
	start, _, done := link.Send(0, 1_000_000)
	if start != 0 {
		t.Errorf("start = %v", start)
	}
	if math.Abs(done-0.51) > 0.005 {
		t.Errorf("delivery = %v, want ≈ 0.51", done)
	}
	// FIFO: the next message queues behind the first.
	start2, _, done2 := link.Send(0.1, 1_000_000)
	if start2 < 0.49 {
		t.Errorf("second start = %v, want after first drains", start2)
	}
	if done2 < done+0.49 {
		t.Errorf("second delivery = %v", done2)
	}
	if link.QueueDelay(0.2) <= 0 {
		t.Error("queue delay should be positive while busy")
	}
	link.Reset()
	if link.BusyUntil() != 0 {
		t.Error("reset failed")
	}
}

func TestZeroBitsSend(t *testing.T) {
	link := NewLink(ConstantTrace(Mbps(1)), 0.005)
	start, _, done := link.Send(1.0, 0)
	if start != 1.0 || math.Abs(done-1.005) > 1e-9 {
		t.Errorf("zero-bit send = (%v, %v)", start, done)
	}
}

func TestStepTrace(t *testing.T) {
	tr := &StepTrace{Times: []float64{0, 10, 20}, Rates: []float64{Mbps(1), Mbps(5), Mbps(2)}}
	if tr.BandwidthAt(5) != Mbps(1) || tr.BandwidthAt(15) != Mbps(5) || tr.BandwidthAt(25) != Mbps(2) {
		t.Error("step trace lookup wrong")
	}
	if tr.BandwidthAt(-1) != 0 {
		t.Error("pre-start bandwidth should be 0")
	}
	// Link crossing a step boundary: 3 Mbit starting at t=8 drains 2 Mbit
	// in 2 s at 1 Mbps, then 1 Mbit in 0.2 s at 5 Mbps.
	link := NewLink(tr, 0)
	_, _, done := link.Send(8, 3_000_000)
	if math.Abs(done-10.2) > 0.01 {
		t.Errorf("cross-step delivery = %v, want ≈ 10.2", done)
	}
}

func TestOutageTrace(t *testing.T) {
	tr := &OutageTrace{Inner: ConstantTrace(Mbps(2)), Start: 5, Interval: 10, Duration: 1}
	if tr.BandwidthAt(4.9) == 0 {
		t.Error("bandwidth before first outage should be non-zero")
	}
	if tr.BandwidthAt(5.5) != 0 || !tr.InOutage(5.5) {
		t.Error("outage not applied")
	}
	if tr.BandwidthAt(6.5) == 0 || tr.InOutage(6.5) {
		t.Error("bandwidth after outage should recover")
	}
	if tr.BandwidthAt(15.5) != 0 {
		t.Error("periodic outage missing")
	}
	// Transmission through an outage stalls and resumes.
	link := NewLink(tr, 0)
	_, _, done := link.Send(4.8, 1_000_000) // 0.5 s of air time, outage at 5
	if done < 6.0 {
		t.Errorf("delivery = %v, should stall through the outage", done)
	}
}

func TestFadingTraceProperties(t *testing.T) {
	tr := &FadingTrace{Base: Mbps(3), Swing: 0.3, Period: 20, Jitter: 0.2, Seed: 42}
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := tr.BandwidthAt(float64(i) * 0.05)
		if v <= 0 {
			t.Fatal("fading trace went non-positive")
		}
		sum += v
	}
	mean := sum / n
	if mean < Mbps(2.2) || mean > Mbps(3.8) {
		t.Errorf("mean = %v, want near base", mean)
	}
	// Deterministic.
	if tr.BandwidthAt(7.77) != tr.BandwidthAt(7.77) {
		t.Error("fading trace not deterministic")
	}
}

func TestRandomWalkTrace(t *testing.T) {
	tr := &RandomWalkTrace{Base: Mbps(2), Min: Mbps(0.5), Max: Mbps(6), Epoch: 1, Seed: 7}
	for i := 0; i < 100; i++ {
		v := tr.BandwidthAt(float64(i))
		if v < Mbps(0.5)-1 || v > Mbps(6)+1 {
			t.Fatalf("walk escaped bounds: %v", v)
		}
	}
	if tr.BandwidthAt(33.3) != tr.BandwidthAt(33.7) {
		t.Error("rate should be constant within an epoch")
	}
	if tr.BandwidthAt(-5) != Mbps(2) {
		t.Error("negative time should clamp to epoch 0")
	}
}

func TestLinkDeadTraceGivesUp(t *testing.T) {
	link := NewLink(ConstantTrace(0), 0)
	_, _, done := link.Send(0, 1000)
	if !math.IsInf(done, 1) {
		t.Errorf("delivery over dead link = %v, want +Inf", done)
	}
}

func TestEstimator(t *testing.T) {
	e := NewEstimator(1.0, Mbps(1))
	if e.EstimateAt(0) != Mbps(1) {
		t.Error("prior not returned")
	}
	// Two transmissions at 2 Mbps (1 Mbit in 0.5 s each).
	e.Record(0.0, 0.5, 1_000_000)
	e.Record(0.5, 1.0, 1_000_000)
	got := e.EstimateAt(1.0)
	if math.Abs(got-Mbps(2)) > 1 {
		t.Errorf("estimate = %v, want 2 Mbps", got)
	}
	// Crucially: a link that is mostly idle still estimates CAPACITY, not
	// wall-clock goodput — 0.1 Mbit in 0.05 s inside a 1 s window is still
	// 2 Mbps.
	e2 := NewEstimator(1.0, Mbps(1))
	e2.Record(0.40, 0.45, 100_000)
	got = e2.EstimateAt(1.0)
	if math.Abs(got-Mbps(2)) > 1 {
		t.Errorf("idle-link estimate = %v, want 2 Mbps", got)
	}
	// Old samples age out of the window.
	if got := e.EstimateAt(5.0); got != Mbps(1) {
		t.Errorf("estimate after window = %v, want prior", got)
	}
	// Partial overlap prorates.
	e3 := NewEstimator(1.0, Mbps(1))
	e3.Record(-0.5, 0.5, 1_000_000) // half inside the [−1+1, 1] window at t=1... window is [0,1]
	got = e3.EstimateAt(1.0)
	if math.Abs(got-Mbps(1)) > 1 {
		t.Errorf("partial-overlap estimate = %v, want 1 Mbps", got)
	}
	// Memory trimming keeps recent samples intact.
	for i := 0; i < 1000; i++ {
		start := float64(i)*0.01 + 3
		e.Record(start, start+0.005, 10_000)
	}
	if e.EstimateAt(13.0) <= 0 {
		t.Error("estimate lost after trimming")
	}
	if len(e.samples) > 600 {
		t.Errorf("sample buffer grew to %d", len(e.samples))
	}
	// Reversed start/end arguments are tolerated.
	e4 := NewEstimator(1.0, Mbps(1))
	e4.Record(0.5, 0.25, 500_000)
	if got := e4.EstimateAt(0.6); math.Abs(got-Mbps(2)) > 1 {
		t.Errorf("reversed-args estimate = %v", got)
	}
}
