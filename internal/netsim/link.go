package netsim

import (
	"math"

	"dive/internal/obs"
)

// Link is a FIFO uplink driven by a bandwidth Trace. Transmissions are
// serialized: a message starts when both it has been enqueued and every
// earlier message has drained. Completion times come from integrating the
// instantaneous trace rate.
type Link struct {
	Trace Trace
	// PropDelay is the one-way propagation delay in seconds, added on top
	// of serialization.
	PropDelay float64
	// Obs receives link telemetry: the actual trace bandwidth at each
	// send, queue delays and outage sends. Nil disables instrumentation.
	Obs *obs.Recorder
	// busyUntil is when the link finishes draining everything enqueued.
	busyUntil float64
	// integrationStep bounds the numeric integration error (seconds).
	integrationStep float64
}

// NewLink creates a link over the trace with the given propagation delay.
// The process-wide default recorder (obs.SetDefault) is picked up here.
func NewLink(trace Trace, propDelay float64) *Link {
	return &Link{Trace: trace, PropDelay: propDelay, Obs: obs.Default(), integrationStep: 1e-3}
}

// Send enqueues bits at time t and returns (startTime, serializedTime,
// deliveryTime): when serialization began, when the last bit left the
// sender (the interval to feed bandwidth estimators — it excludes
// propagation), and when the last bit arrives at the receiver. Calls must
// be made with non-decreasing enqueue times.
func (l *Link) Send(t float64, bits int) (start, serialized, delivery float64) {
	start = t
	if l.busyUntil > start {
		start = l.busyUntil
	}
	end := l.drainTime(start, float64(bits))
	l.busyUntil = end
	if l.Obs != nil {
		actual := l.Trace.BandwidthAt(start)
		l.Obs.Gauge(obs.GaugeBWActual).Set(actual)
		l.Obs.Histogram(obs.StageQueueDelay).Observe(start - t)
		if actual <= 0 {
			l.Obs.Counter(obs.MetricOutageTx).Inc()
		}
	}
	return start, end, end + l.PropDelay
}

// SendTraced is Send plus trace carriage: the serialization interval is
// recorded as a "send" span of the frame's trace (on the simulated clock,
// at the agent's radio), so agent-side encode spans and edge-side decode
// spans stitch across the link. An invalid context or nil recorder records
// nothing; the link behaves identically either way.
func (l *Link) SendTraced(ctx obs.TraceContext, t float64, bits int) (start, serialized, delivery float64) {
	start, serialized, delivery = l.Send(t, bits)
	l.Obs.RecordSpan(ctx, "send", "agent", start, serialized-start)
	return start, serialized, delivery
}

// QueueDelay returns how long a message enqueued at t would wait before its
// first bit is sent.
func (l *Link) QueueDelay(t float64) float64 {
	if l.busyUntil > t {
		return l.busyUntil - t
	}
	return 0
}

// BusyUntil returns the time the link finishes its current queue.
func (l *Link) BusyUntil() float64 { return l.busyUntil }

// Reset clears queued state (used between independent experiment runs).
func (l *Link) Reset() { l.busyUntil = 0 }

// drainTime integrates the trace from start until bits have been sent.
func (l *Link) drainTime(start, bits float64) float64 {
	if bits <= 0 {
		return start
	}
	t := start
	remaining := bits
	step := l.integrationStep
	// Hard cap so a permanently-dead trace cannot spin forever: give up
	// after an hour of simulated time and report +Inf-like delivery.
	limit := start + 3600
	for t < limit {
		bw := l.Trace.BandwidthAt(t)
		if bw <= 0 {
			// Fast-forward through dead air in larger steps.
			t += step * 10
			continue
		}
		sent := bw * step
		if sent >= remaining {
			return t + remaining/bw
		}
		remaining -= sent
		t += step
	}
	return math.Inf(1)
}

// Estimator is the agent-side sliding-window uplink estimator (Section
// III-D1): it records acknowledged transmissions and reports the average
// throughput over the link's recent *active* time. Dividing by active
// transmission time rather than the wall-clock window keeps the estimate at
// link capacity even when the sender is not saturating the uplink — the
// wall-clock version death-spirals (smaller estimate → smaller frames →
// even smaller estimate).
type Estimator struct {
	// Window is the sliding horizon in seconds.
	Window float64
	// Prior is returned before any samples arrive (bits/s).
	Prior float64
	// Obs receives estimator telemetry: acked bits, serialization times
	// and the live bandwidth estimate. Nil disables instrumentation.
	Obs *obs.Recorder
	// MinEstimate floors EstimateAt (bits/s). Outage-poisoned windows —
	// acked intervals carrying zero or near-zero bits — would otherwise
	// drive the estimate to zero and deadlock rate control at a zero bit
	// budget. Zero selects DefaultMinEstimate.
	MinEstimate float64
	samples     []ackSample
}

// DefaultMinEstimate is the estimate floor when MinEstimate is unset:
// 8 kbit/s, far below any usable video rate but enough to keep rate
// control's budget strictly positive so probe frames keep flowing.
const DefaultMinEstimate = 8_000.0

func (e *Estimator) floor() float64 {
	if e.MinEstimate > 0 {
		return e.MinEstimate
	}
	return DefaultMinEstimate
}

type ackSample struct {
	start, end float64
	bits       float64
}

// NewEstimator creates an estimator with the given window and prior. The
// process-wide default recorder (obs.SetDefault) is picked up here.
func NewEstimator(window, prior float64) *Estimator {
	return &Estimator{Window: window, Prior: prior, Obs: obs.Default()}
}

// Record notes that bits were serialized onto the link during [start, end].
func (e *Estimator) Record(start, end float64, bits int) {
	if end < start {
		start, end = end, start
	}
	if e.Obs != nil {
		e.Obs.Counter(obs.MetricAckedBits).Add(int64(bits))
		e.Obs.Histogram(obs.StageAck).Observe(end - start)
	}
	e.samples = append(e.samples, ackSample{start: start, end: end, bits: float64(bits)})
	// Trim anything far older than the window to bound memory.
	cutoff := end - 4*e.Window
	i := 0
	for i < len(e.samples) && e.samples[i].end < cutoff {
		i++
	}
	if i > 0 {
		e.samples = append(e.samples[:0], e.samples[i:]...)
	}
}

// EstimateAt returns the estimated uplink bandwidth (bits/s) at time t:
// acknowledged bits within the window divided by the active transmission
// time that carried them.
func (e *Estimator) EstimateAt(t float64) float64 {
	lo := t - e.Window
	var bits, active float64
	for _, s := range e.samples {
		if s.end <= lo || s.start >= t {
			continue
		}
		// Clip the transmission to the window and prorate its bits.
		clipStart := s.start
		if clipStart < lo {
			clipStart = lo
		}
		clipEnd := s.end
		if clipEnd > t {
			clipEnd = t
		}
		dur := s.end - s.start
		frac := 1.0
		if dur > 0 {
			frac = (clipEnd - clipStart) / dur
		}
		bits += s.bits * frac
		active += clipEnd - clipStart
	}
	if active <= 1e-9 {
		est := e.Prior
		if est < e.floor() {
			est = e.floor()
		}
		e.Obs.Gauge(obs.GaugeBWEstimate).Set(est)
		return est
	}
	est := bits / active
	if est < e.floor() {
		est = e.floor()
	}
	e.Obs.Gauge(obs.GaugeBWEstimate).Set(est)
	return est
}
