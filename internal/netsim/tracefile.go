package netsim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseTraceCSV reads a bandwidth trace from CSV text and returns it as a
// StepTrace. Each non-empty, non-comment line holds two fields:
//
//	<time_seconds>,<bandwidth_mbps>
//
// Fields may also be separated by whitespace or semicolons; lines starting
// with '#' are comments. Times must be non-negative and strictly ascending;
// bandwidths must be non-negative. This is the common interchange format of
// published cellular traces (e.g. the Mahimahi-style LTE logs many video
// systems papers replay), letting users run the experiments over recorded
// links instead of the synthetic ones.
func ParseTraceCSV(r io.Reader) (*StepTrace, error) {
	sc := bufio.NewScanner(r)
	trace := &StepTrace{}
	lineNo := 0
	lastT := -1.0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ';' || r == ' ' || r == '\t'
		})
		// FieldsFunc may produce empty strings between adjacent separators.
		var parts []string
		for _, f := range fields {
			if f != "" {
				parts = append(parts, f)
			}
		}
		if len(parts) != 2 {
			return nil, fmt.Errorf("netsim: trace line %d: want 2 fields, got %d", lineNo, len(parts))
		}
		t, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("netsim: trace line %d: bad time %q", lineNo, parts[0])
		}
		mbps, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("netsim: trace line %d: bad bandwidth %q", lineNo, parts[1])
		}
		if t < 0 || mbps < 0 {
			return nil, fmt.Errorf("netsim: trace line %d: negative value", lineNo)
		}
		if t <= lastT {
			return nil, fmt.Errorf("netsim: trace line %d: times must be strictly ascending", lineNo)
		}
		lastT = t
		trace.Times = append(trace.Times, t)
		trace.Rates = append(trace.Rates, Mbps(mbps))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(trace.Times) == 0 {
		return nil, fmt.Errorf("netsim: empty trace")
	}
	if trace.Times[0] != 0 {
		// Hold the first rate from t=0 so the link is defined everywhere.
		trace.Times = append([]float64{0}, trace.Times...)
		trace.Rates = append([]float64{trace.Rates[0]}, trace.Rates...)
	}
	return trace, nil
}

// WriteTraceCSV writes a StepTrace in the format ParseTraceCSV reads.
func WriteTraceCSV(w io.Writer, trace *StepTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# time_s,bandwidth_mbps"); err != nil {
		return err
	}
	for i := range trace.Times {
		if _, err := fmt.Fprintf(bw, "%g,%g\n", trace.Times[i], trace.Rates[i]/1e6); err != nil {
			return err
		}
	}
	return bw.Flush()
}
