package netsim

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the bandwidth estimator under outage-heavy ack
// histories: whatever the sample pattern, the estimate must stay strictly
// positive (rate control divides budgets out of it), and poisoned samples —
// acks that realized ~zero throughput because they straddled dead air —
// must age out of the estimate within the sliding window.

func TestEstimatorNeverNonPositive(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		est := NewEstimator(0.25, Mbps(2))
		est.Obs = nil
		now := 0.0
		for i := 0; i < 300; i++ {
			dur := rng.Float64() * 0.2
			var bits int
			switch rng.Intn(4) {
			case 0: // outage-poisoned ack: an interval that carried nothing
				bits = 0
			case 1: // near-zero trickle
				bits = rng.Intn(8)
			default:
				bits = rng.Intn(200_000)
			}
			est.Record(now, now+dur, bits)
			now += dur + rng.Float64()*0.1
			if got := est.EstimateAt(now); got <= 0 || math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("seed %d step %d: EstimateAt = %v", seed, i, got)
			}
			// Probing at arbitrary times (including before all samples)
			// must also stay positive.
			if got := est.EstimateAt(rng.Float64() * now); got <= 0 {
				t.Fatalf("seed %d step %d: historic EstimateAt = %v", seed, i, got)
			}
		}
	}
}

func TestEstimatorFloorConfigurable(t *testing.T) {
	est := NewEstimator(0.25, Mbps(2))
	est.Obs = nil
	est.MinEstimate = 50_000
	est.Record(0, 1, 0) // pure poison
	if got := est.EstimateAt(1); got != 50_000 {
		t.Errorf("floored estimate = %v, want 50000", got)
	}
	// Zero prior with no samples still floors.
	empty := NewEstimator(0.25, 0)
	empty.Obs = nil
	if got := empty.EstimateAt(5); got != DefaultMinEstimate {
		t.Errorf("empty estimator = %v, want default floor", got)
	}
}

// TestEstimatorPoisonDecays records a healthy regime, injects poisoned acks,
// then resumes healthy traffic: once the poisoned samples slide out of the
// window the estimate must return to the true rate.
func TestEstimatorPoisonDecays(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const window = 0.25
		const rate = 2_000_000.0 // true link rate, bits/s
		est := NewEstimator(window, Mbps(2))
		est.Obs = nil

		now := 0.0
		record := func(bits float64, dur float64) {
			est.Record(now, now+dur, int(bits))
			now += dur + 0.01
		}
		// Healthy regime.
		for i := 0; i < 20; i++ {
			d := 0.02 + rng.Float64()*0.03
			record(rate*d, d)
		}
		// Poison: acked intervals that carried nothing (outage straddles).
		for i := 0; i < 10; i++ {
			record(0, 0.05+rng.Float64()*0.1)
		}
		poisoned := est.EstimateAt(now)
		if poisoned <= 0 {
			t.Fatalf("seed %d: poisoned estimate %v non-positive", seed, poisoned)
		}
		if poisoned > rate/2 {
			t.Fatalf("seed %d: poison did not depress the estimate (%v)", seed, poisoned)
		}
		// Healthy again. After more than a full window of clean samples,
		// every poisoned sample is outside [t-window, t] and the estimate
		// must be back within 20%% of the true rate.
		for now0 := now; now < now0+2*window+0.2; {
			d := 0.02 + rng.Float64()*0.02
			record(rate*d, d)
		}
		got := est.EstimateAt(now)
		if math.Abs(got-rate)/rate > 0.2 {
			t.Errorf("seed %d: estimate %v after poison cleared, want ~%v", seed, got, rate)
		}
	}
}

// TestEstimatorWindowExcludesOldSamples pins the sliding-window semantics
// the decay property relies on: a sample entirely older than t-Window
// contributes nothing.
func TestEstimatorWindowExcludesOldSamples(t *testing.T) {
	est := NewEstimator(0.25, Mbps(2))
	est.Obs = nil
	est.Record(0, 0.1, 1_000_000)
	// Inside the window the sample dominates.
	if got := est.EstimateAt(0.2); math.Abs(got-10_000_000) > 1 {
		t.Errorf("in-window estimate %v, want 1e7", got)
	}
	// Far past the window the prior returns.
	if got := est.EstimateAt(10); got != Mbps(2) {
		t.Errorf("post-window estimate %v, want prior", got)
	}
}
