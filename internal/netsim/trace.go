// Package netsim simulates the mobile uplink between agent and edge server:
// time-varying bandwidth traces, deterministic outage injection, a FIFO
// transmission link with propagation delay, and the sliding-window
// bandwidth estimator the agent's adaptive encoder consumes. All times are
// simulated seconds on a shared logical clock, so experiments are exact and
// reproducible.
package netsim

import (
	"math"
	"math/rand"
)

// Trace models uplink bandwidth over time in bits per second.
type Trace interface {
	// BandwidthAt returns the instantaneous bandwidth at time t (bits/s).
	BandwidthAt(t float64) float64
}

// ConstantTrace is a fixed-rate link.
type ConstantTrace float64

// BandwidthAt implements Trace.
func (c ConstantTrace) BandwidthAt(float64) float64 { return float64(c) }

// Mbps converts megabits per second to bits per second.
func Mbps(v float64) float64 { return v * 1e6 }

// StepTrace is piecewise-constant bandwidth: Times[i] is when Rates[i]
// begins. Times must be ascending and start at 0.
type StepTrace struct {
	Times []float64
	Rates []float64
}

// BandwidthAt implements Trace.
func (s *StepTrace) BandwidthAt(t float64) float64 {
	rate := 0.0
	for i, start := range s.Times {
		if t >= start {
			rate = s.Rates[i]
		} else {
			break
		}
	}
	return rate
}

// FadingTrace models a mobile link: a base rate modulated by slow sinusoidal
// fading plus fast pseudo-random variation. The variation is a deterministic
// function of (Seed, t), so the trace is reproducible and random access.
type FadingTrace struct {
	Base   float64 // bits/s
	Swing  float64 // fraction of Base for the slow component (0..1)
	Period float64 // seconds of the slow fade cycle
	Jitter float64 // fraction of Base for the fast component (0..1)
	Seed   int64
}

// BandwidthAt implements Trace.
func (f *FadingTrace) BandwidthAt(t float64) float64 {
	slow := math.Sin(2 * math.Pi * t / f.Period)
	// Fast component: hash 100 ms buckets and interpolate.
	bucket := math.Floor(t * 10)
	frac := t*10 - bucket
	j0 := hashUnit(int64(bucket), f.Seed)
	j1 := hashUnit(int64(bucket)+1, f.Seed)
	fast := (j0*(1-frac) + j1*frac) * 2 // in [0, 2)
	bw := f.Base * (1 + f.Swing*slow + f.Jitter*(fast-1))
	if bw < 0.02*f.Base {
		bw = 0.02 * f.Base
	}
	return bw
}

// hashUnit maps (n, seed) deterministically onto [0, 1).
func hashUnit(n, seed int64) float64 {
	h := uint64(n)*0x9E3779B97F4A7C15 ^ uint64(seed)*0xC2B2AE3D27D4EB4F
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// OutageTrace wraps another trace, forcing bandwidth to zero for Duration
// seconds every Interval seconds (first outage starts at Start). Figure 13
// uses it to model hard handovers and deep fades.
type OutageTrace struct {
	Inner    Trace
	Start    float64
	Interval float64
	Duration float64
}

// BandwidthAt implements Trace.
func (o *OutageTrace) BandwidthAt(t float64) float64 {
	if o.Interval > 0 && t >= o.Start {
		phase := math.Mod(t-o.Start, o.Interval)
		if phase < o.Duration {
			return 0
		}
	}
	return o.Inner.BandwidthAt(t)
}

// InOutage reports whether t falls inside an injected outage.
func (o *OutageTrace) InOutage(t float64) bool {
	if o.Interval <= 0 || t < o.Start {
		return false
	}
	return math.Mod(t-o.Start, o.Interval) < o.Duration
}

// RandomWalkTrace is a Markov-modulated rate: every Epoch seconds the rate
// multiplies by a random factor, clamped to [Min, Max]. Deterministic in
// Seed with random access by time.
type RandomWalkTrace struct {
	Base     float64
	Min, Max float64
	Epoch    float64
	Seed     int64
}

// BandwidthAt implements Trace.
func (r *RandomWalkTrace) BandwidthAt(t float64) float64 {
	if t < 0 {
		t = 0
	}
	n := int(t / r.Epoch)
	// Replay the walk up to epoch n. Epoch counts in experiments are
	// small (hundreds), so the O(n) replay is negligible and keeps the
	// trace random-access without storing state.
	rng := rand.New(rand.NewSource(r.Seed))
	rate := r.Base
	for i := 0; i < n; i++ {
		factor := 0.75 + 0.5*rng.Float64()
		rate *= factor
		if rate < r.Min {
			rate = r.Min
		}
		if rate > r.Max {
			rate = r.Max
		}
	}
	return rate
}
