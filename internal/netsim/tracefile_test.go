package netsim

import (
	"strings"
	"testing"
)

func TestParseTraceCSV(t *testing.T) {
	in := `# a comment

0, 2.0
1.5, 0.5
3;4.0
5	1.0
`
	tr, err := ParseTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.BandwidthAt(0.5) != Mbps(2) {
		t.Errorf("t=0.5: %v", tr.BandwidthAt(0.5))
	}
	if tr.BandwidthAt(2) != Mbps(0.5) {
		t.Errorf("t=2: %v", tr.BandwidthAt(2))
	}
	if tr.BandwidthAt(4) != Mbps(4) {
		t.Errorf("t=4: %v", tr.BandwidthAt(4))
	}
	if tr.BandwidthAt(100) != Mbps(1) {
		t.Errorf("t=100: %v", tr.BandwidthAt(100))
	}
}

func TestParseTraceCSVHoldsFirstRate(t *testing.T) {
	tr, err := ParseTraceCSV(strings.NewReader("2,3.5\n4,1.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.BandwidthAt(0.1) != Mbps(3.5) {
		t.Errorf("pre-start rate = %v, want first rate held", tr.BandwidthAt(0.1))
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"0,1,2\n",      // wrong field count
		"x,1\n",        // bad time
		"0,y\n",        // bad rate
		"-1,1\n",       // negative time
		"0,-2\n",       // negative rate
		"0,1\n0,2\n",   // non-ascending
		"1,1\n0.5,2\n", // descending
	}
	for i, c := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func TestTraceCSVRoundTrip(t *testing.T) {
	orig := &StepTrace{
		Times: []float64{0, 2.5, 7},
		Rates: []float64{Mbps(1.5), Mbps(3), Mbps(0.25)},
	}
	var sb strings.Builder
	if err := WriteTraceCSV(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTraceCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []float64{0.1, 3, 10} {
		if back.BandwidthAt(probe) != orig.BandwidthAt(probe) {
			t.Errorf("t=%v: %v vs %v", probe, back.BandwidthAt(probe), orig.BandwidthAt(probe))
		}
	}
}
