package edge

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Wire format. Every message is an envelope
//
//	magic(2: "Dv") | type(1) | length(4, BE) | payload(length) | crc32(4, BE)
//
// with the CRC (IEEE) computed over type|length|payload. The explicit frame
// makes corruption detectable (the CRC), bounded (length caps reject
// nonsense before allocation) and survivable (a reader that hits garbage
// scans forward to the next magic marker instead of desynchronizing
// forever). Payload encodings are hand-rolled fixed-width big-endian — no
// reflection, no unbounded recursion, fuzzable as pure functions.

const (
	wireMagic0 = 'D'
	wireMagic1 = 'v'

	// MsgHello opens a session, MsgFrame carries one encoded frame uplink,
	// MsgResult carries detections (or a NACK) downlink, MsgRedirect tells
	// the agent to move its session to another cluster member.
	MsgHello    byte = 1
	MsgFrame    byte = 2
	MsgResult   byte = 3
	MsgRedirect byte = 4

	// MaxPayload caps any message payload; larger lengths are treated as
	// corruption. Far above any real frame at these resolutions.
	MaxPayload = 8 << 20
	// maxStringLen caps embedded strings (profile names, error text).
	maxStringLen = 1 << 10
	// maxDetections caps the detection list in one result.
	maxDetections = 1 << 14
	// maxFrameIndex caps plausible frame indices.
	maxFrameIndex = 1 << 28

	wireHeaderLen  = 2 + 1 + 4
	wireTrailerLen = 4
)

// Typed wire errors. ErrChecksum and ErrMalformed mark recoverable,
// message-local damage: the stream is still aligned (or realignable) and the
// reader may continue. Anything else is a transport error.
var (
	ErrChecksum  = errors.New("edge: message checksum mismatch")
	ErrMalformed = errors.New("edge: malformed message")
	ErrTooLarge  = errors.New("edge: message exceeds size cap")
)

// IsRecoverable reports whether a wire error damages only one message:
// the connection can keep going after a NACK.
func IsRecoverable(err error) bool {
	return errors.Is(err, ErrChecksum) || errors.Is(err, ErrMalformed) || errors.Is(err, ErrTooLarge)
}

// WriteMsg frames and writes one message. The payload is not retained.
func WriteMsg(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	buf := make([]byte, 0, wireHeaderLen+len(payload)+wireTrailerLen)
	buf = append(buf, wireMagic0, wireMagic1, typ)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[2 : wireHeaderLen+len(payload)])
	buf = binary.BigEndian.AppendUint32(buf, crc)
	_, err := w.Write(buf)
	return err
}

// MsgReader reads framed messages, scanning forward to the next magic marker
// after corruption so one damaged message never desynchronizes the session.
type MsgReader struct {
	br *bufio.Reader
}

// NewMsgReader wraps r for framed reads.
func NewMsgReader(r io.Reader) *MsgReader {
	return &MsgReader{br: bufio.NewReaderSize(r, 64*1024)}
}

// Next returns the next message. On ErrChecksum the damaged message was
// consumed whole (the stream is aligned); on ErrMalformed/ErrTooLarge the
// header was implausible and the next call rescans for the magic marker.
// Other errors are transport failures.
func (mr *MsgReader) Next() (typ byte, payload []byte, err error) {
	// Scan to the magic marker. On a clean stream this consumes exactly
	// two bytes.
	for {
		b0, err := mr.br.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		if b0 != wireMagic0 {
			continue
		}
		b1, err := mr.br.ReadByte()
		if err != nil {
			return 0, nil, err
		}
		if b1 == wireMagic1 {
			break
		}
		// "D" followed by something else — could itself start "Dv";
		// unread so the scan re-examines it.
		if b1 == wireMagic0 {
			mr.br.UnreadByte()
		}
	}
	var hdr [5]byte // type + length
	if _, err := io.ReadFull(mr.br, hdr[:]); err != nil {
		return 0, nil, noteEOF(err)
	}
	typ = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if typ < MsgHello || typ > MsgRedirect {
		return 0, nil, fmt.Errorf("%w: unknown type %d", ErrMalformed, typ)
	}
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: claimed %d bytes", ErrTooLarge, n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(mr.br, payload); err != nil {
		return 0, nil, noteEOF(err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(mr.br, crcBuf[:]); err != nil {
		return 0, nil, noteEOF(err)
	}
	crc := crc32.NewIEEE()
	crc.Write(hdr[:])
	crc.Write(payload)
	if crc.Sum32() != binary.BigEndian.Uint32(crcBuf[:]) {
		return typ, nil, ErrChecksum
	}
	return typ, payload, nil
}

// noteEOF maps a mid-message EOF onto ErrUnexpectedEOF so callers can
// distinguish a clean session end (io.EOF between messages) from a
// truncated message.
func noteEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// --- payload codecs -------------------------------------------------------

// rbuf is a bounds-checked big-endian reader over one payload.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrMalformed, what, r.off)
	}
}

func (r *rbuf) u8(what string) byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u16(what string) uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *rbuf) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i32(what string) int32 { return int32(r.u32(what)) }
func (r *rbuf) i64(what string) int64 { return int64(r.u64(what)) }

func (r *rbuf) f64(what string) float64 {
	v := math.Float64frombits(r.u64(what))
	if r.err == nil && (math.IsInf(v, 0) || math.IsNaN(v)) {
		r.err = fmt.Errorf("%w: non-finite %s", ErrMalformed, what)
	}
	return v
}

func (r *rbuf) str(what string) string {
	n := int(r.u16(what))
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("%w: %s length %d exceeds cap", ErrMalformed, what, n)
		return ""
	}
	if r.off+n > len(r.b) {
		r.fail(what)
		return ""
	}
	v := string(r.b[r.off : r.off+n])
	r.off += n
	return v
}

func (r *rbuf) bytes(what string) []byte {
	n := int(r.u32(what))
	if r.err != nil {
		return nil
	}
	if n > MaxPayload || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}

// done rejects trailing garbage: a well-formed payload is consumed exactly.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.b)-r.off)
	}
	return nil
}

func appendString(b []byte, s string) []byte {
	if len(s) > maxStringLen {
		s = s[:maxStringLen]
	}
	b = binary.BigEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// helloFlagResume marks a session-resume handshake: the agent reconnected
// mid-clip and will continue from Hello.FirstFrame with a keyframe.
const helloFlagResume = 1 << 0

// EncodeHello serializes a Hello payload.
func EncodeHello(h Hello) []byte {
	b := make([]byte, 0, 32+len(h.Profile))
	b = append(b, 1) // version
	var flags byte
	if h.Resume {
		flags |= helloFlagResume
	}
	b = append(b, flags)
	b = appendString(b, h.Profile)
	b = binary.BigEndian.AppendUint64(b, uint64(h.Seed))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(h.Duration))
	b = binary.BigEndian.AppendUint32(b, uint32(h.FirstFrame))
	return b
}

// DecodeHello parses a Hello payload, rejecting malformed input with a
// typed error (never panics, never over-allocates).
func DecodeHello(p []byte) (Hello, error) {
	r := &rbuf{b: p}
	v := r.u8("version")
	if r.err == nil && v != 1 {
		return Hello{}, fmt.Errorf("%w: unsupported hello version %d", ErrMalformed, v)
	}
	flags := r.u8("flags")
	h := Hello{
		Resume:     flags&helloFlagResume != 0,
		Profile:    r.str("profile"),
		Seed:       r.i64("seed"),
		Duration:   r.f64("duration"),
		FirstFrame: int(r.u32("first_frame")),
	}
	if r.err == nil && (h.Duration < 0 || h.Duration > 3600) {
		return Hello{}, fmt.Errorf("%w: duration %v out of range", ErrMalformed, h.Duration)
	}
	if r.err == nil && h.FirstFrame > maxFrameIndex {
		return Hello{}, fmt.Errorf("%w: first frame %d out of range", ErrMalformed, h.FirstFrame)
	}
	if err := r.done(); err != nil {
		return Hello{}, err
	}
	return h, nil
}

// EncodeFrameMsg serializes a FrameMsg payload. The envelope CRC covers the
// bitstream, so corruption anywhere in the frame is caught before decode.
func EncodeFrameMsg(m *FrameMsg) []byte {
	b := make([]byte, 0, 32+len(m.Bitstream))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Index))
	b = binary.BigEndian.AppendUint64(b, uint64(m.SentNanos))
	b = binary.BigEndian.AppendUint64(b, m.TraceID)
	b = binary.BigEndian.AppendUint64(b, m.SpanID)
	b = binary.BigEndian.AppendUint32(b, uint32(len(m.Bitstream)))
	return append(b, m.Bitstream...)
}

// DecodeFrameMsg parses a FrameMsg payload.
func DecodeFrameMsg(p []byte) (FrameMsg, error) {
	r := &rbuf{b: p}
	m := FrameMsg{
		Index:     int(r.u32("index")),
		SentNanos: r.i64("sent_nanos"),
		TraceID:   r.u64("trace_id"),
		SpanID:    r.u64("span_id"),
		Bitstream: r.bytes("bitstream"),
	}
	if r.err == nil && m.Index > maxFrameIndex {
		return FrameMsg{}, fmt.Errorf("%w: frame index %d out of range", ErrMalformed, m.Index)
	}
	if err := r.done(); err != nil {
		return FrameMsg{}, err
	}
	return m, nil
}

// resultFlagNeedKeyframe asks the agent to intra-code its next frame: the
// server decoder lost sync (corrupt frame, dropped frame, fresh resume).
const resultFlagNeedKeyframe = 1 << 0

// EncodeResultMsg serializes a ResultMsg payload.
func EncodeResultMsg(m *ResultMsg) []byte {
	b := make([]byte, 0, 48+len(m.Err)+34*len(m.Detections))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(m.Index)))
	var flags byte
	if m.NeedKeyframe {
		flags |= resultFlagNeedKeyframe
	}
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(m.SentNanos))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(m.ServerMs))
	b = binary.BigEndian.AppendUint64(b, m.TraceID)
	b = appendString(b, m.Err)
	n := len(m.Detections)
	if n > maxDetections {
		n = maxDetections
	}
	b = binary.BigEndian.AppendUint16(b, uint16(n))
	for _, d := range m.Detections[:n] {
		b = binary.BigEndian.AppendUint32(b, uint32(int32(d.Class)))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(d.MinX)))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(d.MinY)))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(d.MaxX)))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(d.MaxY)))
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(d.Score))
	}
	return b
}

// DecodeResultMsg parses a ResultMsg payload.
func DecodeResultMsg(p []byte) (ResultMsg, error) {
	r := &rbuf{b: p}
	m := ResultMsg{Index: int(int32(r.u32("index")))}
	flags := r.u8("flags")
	m.NeedKeyframe = flags&resultFlagNeedKeyframe != 0
	m.SentNanos = r.i64("sent_nanos")
	m.ServerMs = r.f64("server_ms")
	m.TraceID = r.u64("trace_id")
	m.Err = r.str("err")
	n := int(r.u16("det_count"))
	if r.err == nil && n > maxDetections {
		return ResultMsg{}, fmt.Errorf("%w: %d detections exceeds cap", ErrMalformed, n)
	}
	if r.err == nil && n > 0 {
		m.Detections = make([]WireDetection, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			m.Detections = append(m.Detections, WireDetection{
				Class: int(int32(r.u32("class"))),
				MinX:  int(int32(r.u32("minx"))),
				MinY:  int(int32(r.u32("miny"))),
				MaxX:  int(int32(r.u32("maxx"))),
				MaxY:  int(int32(r.u32("maxy"))),
				Score: r.f64("score"),
			})
		}
	}
	if err := r.done(); err != nil {
		return ResultMsg{}, err
	}
	if m.Index < -1 || m.Index > maxFrameIndex {
		return ResultMsg{}, fmt.Errorf("%w: result index %d out of range", ErrMalformed, m.Index)
	}
	return m, nil
}

// Redirect tells the agent to move its live session to another cluster
// member: the balancer sends it when draining a server (planned migration)
// or when rebalancing load. Addr is the dial target ("host:port"); Reason
// is a short human-readable tag ("drain", "rebalance") surfaced in the
// decision journal. The client validates Addr before dialing — an empty or
// self-referential target is message-local damage, not a command.
type Redirect struct {
	Addr   string
	Reason string
}

// EncodeRedirect serializes a Redirect payload.
func EncodeRedirect(rd Redirect) []byte {
	b := make([]byte, 0, 8+len(rd.Addr)+len(rd.Reason))
	b = append(b, 1) // version
	b = appendString(b, rd.Addr)
	b = appendString(b, rd.Reason)
	return b
}

// DecodeRedirect parses a Redirect payload. An empty address is malformed:
// there is nothing safe to do with a redirect to nowhere.
func DecodeRedirect(p []byte) (Redirect, error) {
	r := &rbuf{b: p}
	v := r.u8("version")
	if r.err == nil && v != 1 {
		return Redirect{}, fmt.Errorf("%w: unsupported redirect version %d", ErrMalformed, v)
	}
	rd := Redirect{
		Addr:   r.str("addr"),
		Reason: r.str("reason"),
	}
	if r.err == nil && rd.Addr == "" {
		return Redirect{}, fmt.Errorf("%w: redirect with empty address", ErrMalformed)
	}
	if err := r.done(); err != nil {
		return Redirect{}, err
	}
	return rd, nil
}

// WriteHello frames and writes a Hello.
func WriteHello(w io.Writer, h Hello) error { return WriteMsg(w, MsgHello, EncodeHello(h)) }

// WriteFrame frames and writes a FrameMsg.
func WriteFrame(w io.Writer, m *FrameMsg) error { return WriteMsg(w, MsgFrame, EncodeFrameMsg(m)) }

// WriteResult frames and writes a ResultMsg.
func WriteResult(w io.Writer, m *ResultMsg) error { return WriteMsg(w, MsgResult, EncodeResultMsg(m)) }

// WriteRedirect frames and writes a Redirect.
func WriteRedirect(w io.Writer, rd Redirect) error {
	return WriteMsg(w, MsgRedirect, EncodeRedirect(rd))
}
