package edge

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/obs"
	"dive/internal/world"
)

// BackoffConfig shapes the client's reconnect schedule: exponential growth
// from Initial to Max with seeded multiplicative jitter, giving up after
// MaxAttempts consecutive failures.
type BackoffConfig struct {
	Initial time.Duration // first retry delay (default 100ms)
	Max     time.Duration // delay ceiling (default 3s)
	Factor  float64       // growth per attempt (default 2)
	// Jitter spreads each delay uniformly over [1-j, 1+j] times the base —
	// reconnect storms from co-located agents must not synchronize.
	Jitter float64 // default 0.25
	// MaxAttempts bounds consecutive failed dials before Run gives up
	// (default 8).
	MaxAttempts int
}

func (b BackoffConfig) withDefaults() BackoffConfig {
	if b.Initial <= 0 {
		b.Initial = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 3 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter <= 0 {
		b.Jitter = 0.25
	}
	if b.MaxAttempts <= 0 {
		b.MaxAttempts = 8
	}
	return b
}

// delay returns the jittered backoff for the given 0-based attempt.
func (b BackoffConfig) delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.Initial)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	d *= 1 - b.Jitter + 2*b.Jitter*rng.Float64()
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// ClientConfig configures a resilient live session.
type ClientConfig struct {
	Addr string
	// Addrs is the ordered failover candidate list (cluster members). When
	// set it supersedes Addr; when empty the client dials Addr only. Each
	// candidate carries a dial-failure penalty so reconnects prefer servers
	// that have not recently refused us — failover works even when no
	// explicit Redirect ever arrives.
	Addrs []string
	// Profile/Seed/Duration are the clip identity sent in the handshake.
	Profile  string
	Seed     int64
	Duration float64
	// Window is the maximum number of frames in flight to the server
	// (default 1 = lock-step).
	Window int
	// AckTimeout is the per-frame acknowledgement deadline: a frame unacked
	// past it is declared outaged, local MOT covers it, and the next upload
	// is intra-coded (default 1s).
	AckTimeout time.Duration
	// PaceBps throttles uplink writes to the given rate (0 = unpaced),
	// which also provides the bandwidth estimator's feedback signal.
	PaceBps float64
	Backoff BackoffConfig
	Health  core.HealthConfig
	// Logf receives progress lines; nil silences the client.
	Logf func(format string, args ...interface{})
	Obs  *obs.Recorder
	// OnMigrate is invoked after each completed handoff with the old and new
	// addresses and whether the move was forced (old member died) — the hook
	// fleet aggregation uses to attribute migrations to members. Called from
	// the session goroutine; keep it fast. Nil disables.
	OnMigrate func(from, to string, forced bool)
}

// ClientStats summarizes a session's robustness events.
type ClientStats struct {
	FramesProcessed int
	FramesUploaded  int
	// FramesSkipped counts uploads suppressed by the degradation ladder.
	FramesSkipped int
	// OutageFrames counts ack-deadline expiries (MOT covered those frames).
	OutageFrames int
	Reconnects   int
	// Nacks counts server keyframe demands (corruption or desync).
	Nacks int
	// CorruptAcks counts downlink messages the client discarded on CRC or
	// framing damage.
	CorruptAcks int
	// Migrations counts completed session handoffs to a different server;
	// ForcedMigrations is the subset where the old member died (no Redirect).
	Migrations       int
	ForcedMigrations int
	// Redirects counts Redirect messages received; BadRedirects the subset
	// rejected without dialing (malformed, empty or self-referential).
	Redirects    int
	BadRedirects int
	// MigrationGapsSec holds each handoff's measured re-detection gap (last
	// server ack on the old member → first server ack on the new one);
	// MaxMigrationGapSec is their maximum.
	MigrationGapsSec   []float64
	MaxMigrationGapSec float64
	// FinalLevel and FinalHealth are the ladder state at session end.
	FinalLevel  core.LadderLevel
	FinalHealth float64
}

// Client streams a DiVE agent's encoded frames to an edge server over TCP
// and survives the link failing under it: per-ack deadlines trigger the MOT
// outage fallback, disconnects trigger jittered-backoff reconnects with a
// session-resume handshake, server NACKs force keyframes, and a link-health
// ladder degrades encode quality before the link collapses entirely.
type Client struct {
	cfg     ClientConfig
	agent   *core.Agent
	health  *core.LinkHealth
	rng     *rand.Rand
	stats   ClientStats
	session string

	conn net.Conn
	acks chan ackEvent

	// addrs is the resolved candidate list; curAddr the member currently
	// serving the session; penalty the per-address dial-failure score that
	// ranks candidates (reset to zero on a successful handshake, so a
	// completed redirect never inherits the previous server's penalty).
	addrs   []string
	curAddr string
	penalty map[string]int

	// inflight holds sent-but-unacked frames in send order.
	inflight []inflightFrame
	// pendingReconnects/pendingBackoff accumulate reconnect accounting to
	// journal on the next processed frame.
	pendingReconnects int
	pendingBackoff    float64
	// skippedSinceSend marks that uploads were suppressed, so the next
	// sent frame must be intra-coded (the server's reference is stale).
	skippedSinceSend bool

	// pendingRedirect is a validated Redirect awaiting the dial; migration
	// tracks a completed handoff until the new member's first ack closes the
	// re-detection gap. lastServerAck/sessionStart anchor the gap measure.
	pendingRedirect *Redirect
	migration       *migrationInfo
	lastServerAck   time.Time
	sessionStart    time.Time
}

// migrationInfo is one in-progress handoff: where the session moved, why,
// and when the old member last produced a detection (the gap clock's start).
type migrationInfo struct {
	from   string
	to     string
	reason string
	forced bool
	lostAt time.Time
}

// errFollowRedirect signals the session loop that a validated Redirect
// arrived: tear down and re-dial at the target (no ladder penalty).
var errFollowRedirect = errors.New("edge: following redirect")

type inflightFrame struct {
	idx    int
	sentAt time.Time
	fr     *core.FrameResult
}

type ackEvent struct {
	res ResultMsg
	err error // transport-fatal error; res is invalid
	// corrupt marks a discarded damaged downlink message (non-fatal).
	corrupt bool
	// redirect is a well-formed Redirect; badRedirect marks one that failed
	// decode (empty addr, oversized strings) — counted, never dialed.
	redirect    *Redirect
	badRedirect bool
}

// NewClient builds a client around an existing agent. The agent's encoder
// state is owned by the client for the duration of Run.
func NewClient(cfg ClientConfig, agent *core.Agent) *Client {
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = time.Second
	}
	cfg.Backoff = cfg.Backoff.withDefaults()
	addrs := cfg.Addrs
	if len(addrs) == 0 {
		addrs = []string{cfg.Addr}
	} else if cfg.Addr == "" {
		cfg.Addr = addrs[0]
	}
	return &Client{
		cfg:     cfg,
		agent:   agent,
		health:  core.NewLinkHealth(cfg.Health),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		addrs:   addrs,
		penalty: make(map[string]int, len(addrs)),
		// The same profile-seed identity the server labels this stream
		// with, so both ends' series and SLO windows join on it.
		session: fmt.Sprintf("%s-%d", cfg.Profile, cfg.Seed),
	}
}

// pickAddr returns the best dial candidate: lowest dial-failure penalty,
// list order breaking ties — so a healthy primary is always preferred and a
// dead one is demoted only as long as its failures are fresher.
func (c *Client) pickAddr() string {
	best := c.addrs[0]
	for _, a := range c.addrs[1:] {
		if c.penalty[a] < c.penalty[best] {
			best = a
		}
	}
	return best
}

func (c *Client) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// connectTo dials one address and completes the handshake (plain or
// resume), installing the connection and a fresh ack reader. firstFrame is
// the index the stream will continue at. A failed dial or handshake raises
// the address's penalty; success clears it, so a server that comes back (or
// one we were redirected onto) starts with a clean score.
func (c *Client) connectTo(addr string, resume bool, firstFrame int) error {
	if err := c.dialHandshake(addr, resume, firstFrame); err != nil {
		c.penalty[addr]++
		return err
	}
	c.curAddr = addr
	c.penalty[addr] = 0
	return nil
}

func (c *Client) dialHandshake(addr string, resume bool, firstFrame int) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	hello := Hello{
		Profile: c.cfg.Profile, Seed: c.cfg.Seed, Duration: c.cfg.Duration,
		Resume: resume, FirstFrame: firstFrame,
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if err := WriteHello(conn, hello); err != nil {
		conn.Close()
		return err
	}
	// The server acks the handshake before any frame flows; a rejection
	// (unknown profile, bad resume point) arrives as res.Err.
	mr := NewMsgReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := mr.Next()
	if err != nil {
		conn.Close()
		return fmt.Errorf("handshake ack: %w", err)
	}
	if typ != MsgResult {
		conn.Close()
		return fmt.Errorf("handshake ack: unexpected message type %d", typ)
	}
	res, err := DecodeResultMsg(payload)
	if err != nil {
		conn.Close()
		return fmt.Errorf("handshake ack: %w", err)
	}
	if res.Err != "" {
		conn.Close()
		return fmt.Errorf("server rejected session: %s", res.Err)
	}
	c.conn = conn
	c.acks = make(chan ackEvent, c.cfg.Window+4)
	go readAcks(conn, mr, c.acks)
	return nil
}

// readAcks pumps downlink results into the ack channel until the transport
// fails. Recoverable wire damage (CRC, malformed) is reported as a corrupt
// event and reading continues.
func readAcks(conn net.Conn, mr *MsgReader, out chan<- ackEvent) {
	defer close(out)
	for {
		conn.SetReadDeadline(time.Now().Add(120 * time.Second))
		typ, payload, err := mr.Next()
		if err != nil {
			if IsRecoverable(err) {
				out <- ackEvent{corrupt: true}
				continue
			}
			out <- ackEvent{err: err}
			return
		}
		if typ == MsgRedirect {
			rd, derr := DecodeRedirect(payload)
			if derr != nil {
				out <- ackEvent{badRedirect: true}
				continue
			}
			out <- ackEvent{redirect: &rd}
			continue
		}
		if typ != MsgResult {
			out <- ackEvent{corrupt: true}
			continue
		}
		res, derr := DecodeResultMsg(payload)
		if derr != nil {
			out <- ackEvent{corrupt: true}
			continue
		}
		out <- ackEvent{res: res}
	}
}

// recover re-establishes the session after the transport failed or a
// Redirect arrived. A pending redirect is tried first as a planned
// migration — a direct dial at the target with no backoff sleep and no
// ladder penalty, because a drain handoff is an orderly control-plane event,
// not link failure. If the target refuses (or there was no redirect), the
// ranked candidate scan with full backoff takes over.
func (c *Client) recover(nextFrame int, dets [][]detect.Detection) error {
	if rd := c.pendingRedirect; rd != nil {
		c.pendingRedirect = nil
		if err := c.migrate(rd, nextFrame, dets); err == nil {
			return nil
		} else {
			c.logf("redirect target %s refused: %v; falling back to candidate scan", rd.Addr, err)
		}
	}
	return c.reconnect(nextFrame, dets)
}

// migrate performs a planned handoff to the redirect target.
func (c *Client) migrate(rd *Redirect, nextFrame int, dets [][]detect.Detection) error {
	from := c.curAddr
	lostAt := c.gapStart()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.drainInflight(dets)
	if err := c.connectTo(rd.Addr, true, nextFrame); err != nil {
		return err
	}
	c.noteMigration(&migrationInfo{from: from, to: rd.Addr, reason: rd.Reason, lostAt: lostAt}, nextFrame)
	return nil
}

// noteMigration records a completed handoff; the re-detection gap closes at
// the new member's first successful ack.
func (c *Client) noteMigration(m *migrationInfo, nextFrame int) {
	c.migration = m
	c.stats.Migrations++
	if m.forced {
		c.stats.ForcedMigrations++
	}
	c.cfg.Obs.Counter(obs.MetricClientMigrations).Inc()
	// The new member's decoder has no reference: first upload must be intra.
	c.agent.ForceNextIFrame()
	c.skippedSinceSend = false
	kind := "planned"
	if m.forced {
		kind = "forced"
	}
	c.logf("migrated to %s (%s, reason %q, resume at frame %d)", m.to, kind, m.reason, nextFrame)
	if c.cfg.OnMigrate != nil {
		c.cfg.OnMigrate(m.from, m.to, m.forced)
	}
}

// gapStart is the re-detection gap's opening edge: the last server ack, or
// session start when the old member never acked anything.
func (c *Client) gapStart() time.Time {
	if !c.lastServerAck.IsZero() {
		return c.lastServerAck
	}
	if !c.sessionStart.IsZero() {
		return c.sessionStart
	}
	return time.Now()
}

// reconnect tears down the failed connection, journals every in-flight
// frame as outage-tracked (their acks are gone), and re-dials with
// exponential backoff and jitter until the handshake completes or attempts
// run out, each attempt aimed at the best-ranked candidate. nextFrame is
// where the stream resumes. Landing on a different member than the one that
// failed is a forced migration.
func (c *Client) reconnect(nextFrame int, dets [][]detect.Detection) error {
	from := c.curAddr
	lostAt := c.gapStart()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	c.drainInflight(dets)
	c.health.ObserveReconnect()
	var totalBackoff float64
	for attempt := 0; attempt < c.cfg.Backoff.MaxAttempts; attempt++ {
		d := c.cfg.Backoff.delay(attempt, c.rng)
		time.Sleep(d)
		totalBackoff += d.Seconds()
		c.stats.Reconnects++
		c.cfg.Obs.Counter(obs.MetricClientReconnects).Inc()
		addr := c.pickAddr()
		err := c.connectTo(addr, true, nextFrame)
		if err == nil {
			c.pendingReconnects += attempt + 1
			c.pendingBackoff += totalBackoff
			if addr != from && from != "" {
				// The session moved because the old member went away.
				c.noteMigration(&migrationInfo{from: from, to: addr, reason: "failover", forced: true, lostAt: lostAt}, nextFrame)
			} else {
				// The server's decoder is fresh: the next upload must be intra.
				c.agent.ForceNextIFrame()
				c.skippedSinceSend = false
			}
			c.logf("reconnected to %s (attempt %d, resume at frame %d)", addr, attempt+1, nextFrame)
			return nil
		}
		// Every failed dial is further link evidence: a long blackout digs
		// the score deeper, so the ladder is already engaged when the
		// session comes back instead of resuming at full quality.
		c.health.ObserveReconnect()
		c.logf("reconnect attempt %d to %s failed: %v", attempt+1, addr, err)
	}
	c.pendingReconnects += c.cfg.Backoff.MaxAttempts
	c.pendingBackoff += totalBackoff
	return fmt.Errorf("edge: reconnect failed after %d attempts (candidates %v)", c.cfg.Backoff.MaxAttempts, c.addrs)
}

// drainInflight converts every unacked frame into an outage: journal it,
// advance local MOT over its flow field, and record its tracked detections.
// Called when the connection is known dead.
func (c *Client) drainInflight(dets [][]detect.Detection) {
	for _, inf := range c.inflight {
		c.noteFrameOutage(inf, dets)
	}
	c.inflight = c.inflight[:0]
}

// noteFrameOutage performs the MOT fallback for one lost frame.
func (c *Client) noteFrameOutage(inf inflightFrame, dets [][]detect.Detection) {
	c.stats.OutageFrames++
	c.cfg.Obs.Counter(obs.MetricClientAckTimeout).Inc()
	tracked := c.agent.TrackLocally(inf.fr.RawField)
	if inf.idx < len(dets) {
		dets[inf.idx] = tracked
	}
	c.agent.NoteOutageAt(inf.idx, time.Since(inf.sentAt).Seconds(), len(tracked))
	c.agent.ForceNextIFrame()
	c.cfg.Obs.ObserveSLO(c.session, obs.SLOSample{
		LatencySec: time.Since(inf.sentAt).Seconds(), FGShare: frameFGShare(inf.fr), Outage: true,
	})
}

// frameFGShare is the SLO accuracy proxy for one frame: the foreground
// fraction the encoder protected (0 when none was ever extracted).
func frameFGShare(fr *core.FrameResult) float64 {
	if fr == nil || fr.Foreground == nil {
		return 0
	}
	return fr.Foreground.Fraction()
}

// popInflight removes and returns the in-flight entry with the given index.
func (c *Client) popInflight(idx int) (inflightFrame, bool) {
	for k, inf := range c.inflight {
		if inf.idx == idx {
			c.inflight = append(c.inflight[:k], c.inflight[k+1:]...)
			return inf, true
		}
	}
	return inflightFrame{}, false
}

// handleAck folds one downlink event into session state. Returns a non-nil
// error only on transport failure (the caller reconnects).
func (c *Client) handleAck(ev ackEvent, dets [][]detect.Detection) error {
	switch {
	case ev.err != nil:
		return ev.err
	case ev.corrupt:
		c.stats.CorruptAcks++
		c.health.ObserveNack()
		return nil
	case ev.badRedirect:
		// Malformed redirect (empty addr, oversized strings): message-local
		// damage. Never dialed, session continues on the current member.
		c.stats.BadRedirects++
		c.cfg.Obs.Counter(obs.MetricClientBadRedirects).Inc()
		return nil
	case ev.redirect != nil:
		rd := ev.redirect
		c.stats.Redirects++
		c.cfg.Obs.Counter(obs.MetricClientRedirects).Inc()
		if rd.Addr == c.curAddr {
			// Self-redirect: well-formed but nonsensical — following it
			// would churn the session for nothing. Reject without dialing.
			c.stats.BadRedirects++
			c.cfg.Obs.Counter(obs.MetricClientBadRedirects).Inc()
			c.logf("ignoring self-redirect to %s", rd.Addr)
			return nil
		}
		c.pendingRedirect = rd
		return errFollowRedirect
	}
	res := ev.res
	if res.NeedKeyframe {
		c.stats.Nacks++
		c.health.ObserveNack()
		c.agent.ForceNextIFrame()
	}
	if res.Index < 0 {
		// Session-level NACK: some uplink message was damaged. The affected
		// frame (if any) will hit its ack deadline; nothing else to do.
		return nil
	}
	inf, ok := c.popInflight(res.Index)
	if !ok {
		// Stale ack for a frame already written off as outaged.
		return nil
	}
	if res.NeedKeyframe {
		c.cfg.Obs.AmendJournalFrame(res.Index, func(j *obs.JournalRecord) { j.NackKeyframe = true })
	}
	if res.Err != "" {
		// The server processed the message but not the frame (desync,
		// decode failure): MOT covers it.
		c.noteFrameOutage(inf, dets)
		return nil
	}
	if !res.NeedKeyframe {
		c.health.ObserveAck()
	}
	// First successful ack on the new member closes the re-detection gap:
	// the edge is producing detections for this session again.
	if m := c.migration; m != nil {
		gap := time.Since(m.lostAt).Seconds()
		c.stats.MigrationGapsSec = append(c.stats.MigrationGapsSec, gap)
		if gap > c.stats.MaxMigrationGapSec {
			c.stats.MaxMigrationGapSec = gap
		}
		forced := m.forced
		to := m.to
		c.cfg.Obs.AmendJournalFrame(res.Index, func(j *obs.JournalRecord) {
			j.Migrated = true
			j.MigrationGapSec = gap
			j.MigratedTo = to
			j.MigrationForced = forced
		})
		c.logf("re-detection gap closed: %.3fs (migrated to %s)", gap, to)
		c.migration = nil
	}
	c.lastServerAck = time.Now()
	// End-to-end response latency (send → ack) feeds both the SLO window
	// and the e2e histogram the fleet aggregator merges across sessions.
	rtt := time.Since(inf.sentAt).Seconds()
	c.cfg.Obs.Histogram(obs.StageResponse).Observe(rtt)
	c.cfg.Obs.ObserveSLO(c.session, obs.SLOSample{
		LatencySec: rtt, FGShare: frameFGShare(inf.fr),
	})
	got := FromWire(res.Detections)
	c.agent.OnDetections(got)
	if res.Index < len(dets) {
		dets[res.Index] = got
	}
	return nil
}

// awaitAck blocks until one downlink event arrives or the oldest in-flight
// frame's deadline expires (which declares that frame outaged). Returns a
// transport error when the connection died.
func (c *Client) awaitAck(dets [][]detect.Detection) error {
	if len(c.inflight) == 0 {
		select {
		case ev, ok := <-c.acks:
			if !ok {
				return io.EOF
			}
			return c.handleAck(ev, dets)
		default:
			return nil
		}
	}
	oldest := c.inflight[0]
	wait := time.Until(oldest.sentAt.Add(c.cfg.AckTimeout))
	if wait < 0 {
		wait = 0
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case ev, ok := <-c.acks:
		if !ok {
			return io.EOF
		}
		return c.handleAck(ev, dets)
	case <-timer.C:
		// Ack deadline: the oldest frame is written off, MOT covers it,
		// the link is penalized. The connection stays up — a late ack for
		// it will be ignored as stale.
		c.health.ObserveTimeout()
		if inf, ok := c.popInflight(oldest.idx); ok {
			c.noteFrameOutage(inf, dets)
		}
		return nil
	}
}

// Run streams the clip through the agent to the server and returns
// per-frame detections (edge results where the link held, MOT-tracked
// detections across outages and skips). Run returns an error only when the
// session cannot be established or re-established; link failures inside a
// session degrade, they do not abort.
func (c *Client) Run(clip *world.Clip) ([][]detect.Detection, ClientStats, error) {
	n := clip.NumFrames()
	dets := make([][]detect.Detection, n)
	// The initial connect gets the same backoff schedule as reconnects: an
	// agent booting during a link brownout should not abort on the first
	// refused dial.
	var cerr error
	for attempt := 0; attempt < c.cfg.Backoff.MaxAttempts; attempt++ {
		if cerr = c.connectTo(c.pickAddr(), false, 0); cerr == nil {
			break
		}
		c.logf("connect attempt %d failed: %v", attempt+1, cerr)
		time.Sleep(c.cfg.Backoff.delay(attempt, c.rng))
	}
	if cerr != nil {
		return nil, c.stats, fmt.Errorf("edge: connect to %v: %w", c.addrs, cerr)
	}
	defer func() {
		if c.conn != nil {
			c.conn.Close()
		}
	}()
	start := time.Now()
	c.sessionStart = start

	for i := 0; i < n; i++ {
		// Ladder first: the frame is encoded under the degradation the
		// link's recent behavior earned.
		deg := c.health.Tick()
		c.agent.SetDegradation(deg, c.health.Score())

		// Drain any already-arrived acks without blocking progress.
		for drained := false; !drained; {
			select {
			case ev, ok := <-c.acks:
				var err error
				if !ok {
					err = io.EOF
				} else {
					err = c.handleAck(ev, dets)
				}
				if err != nil {
					if rerr := c.recover(i, dets); rerr != nil {
						return dets, c.stats, rerr
					}
				}
			default:
				drained = true
			}
		}

		skip := deg.SkipModulo > 1 && i%deg.SkipModulo != 0
		if skip && !c.skippedSinceSend {
			// First skip after a send: nothing forces the next upload intra
			// yet, so arm it now.
			c.skippedSinceSend = true
		}
		if !skip && c.skippedSinceSend {
			c.agent.ForceNextIFrame()
			c.skippedSinceSend = false
		}

		now := time.Since(start).Seconds()
		fr, err := c.agent.ProcessFrame(clip.Frames[i], now)
		if err != nil {
			return dets, c.stats, err
		}
		c.stats.FramesProcessed++
		if c.pendingReconnects > 0 {
			rc, bo := c.pendingReconnects, c.pendingBackoff
			c.pendingReconnects, c.pendingBackoff = 0, 0
			c.cfg.Obs.AmendJournalFrame(fr.Encoded.Index, func(j *obs.JournalRecord) {
				j.ReconnectAttempts = rc
				j.BackoffSec = bo
			})
		}

		if skip {
			c.stats.FramesSkipped++
			c.cfg.Obs.Counter(obs.MetricClientSkips).Inc()
			c.cfg.Obs.AmendJournalFrame(fr.Encoded.Index, func(j *obs.JournalRecord) { j.SkippedSend = true })
			tracked := c.agent.TrackLocally(fr.RawField)
			dets[i] = tracked
			continue
		}

		// Upload with pacing; a write failure means the connection is dead.
		msg := &FrameMsg{
			Index: fr.Encoded.Index, Bitstream: fr.Encoded.Data,
			SentNanos: time.Now().UnixNano(),
			TraceID:   fr.Trace.TraceID, SpanID: fr.Trace.SpanID,
		}
		sendStart := time.Since(start).Seconds()
		c.conn.SetWriteDeadline(time.Now().Add(2 * c.cfg.AckTimeout))
		werr := WriteFrame(c.conn, msg)
		if werr == nil && c.cfg.PaceBps > 0 {
			time.Sleep(time.Duration(float64(fr.Encoded.NumBits) / c.cfg.PaceBps * float64(time.Second)))
		}
		if werr != nil {
			c.logf("uplink write failed at frame %d: %v", i, werr)
			// This frame never made it: treat it as in flight so the drain
			// journals it, then reconnect and continue with the next frame.
			c.inflight = append(c.inflight, inflightFrame{idx: fr.Encoded.Index, sentAt: time.Now(), fr: fr})
			if rerr := c.recover(i+1, dets); rerr != nil {
				return dets, c.stats, rerr
			}
			continue
		}
		c.stats.FramesUploaded++
		c.agent.OnTransmitComplete(sendStart, time.Since(start).Seconds(), fr.Encoded.NumBits)
		c.inflight = append(c.inflight, inflightFrame{idx: fr.Encoded.Index, sentAt: time.Now(), fr: fr})

		// Respect the in-flight window (Window=1 is lock-step).
		for len(c.inflight) >= c.cfg.Window {
			if err := c.awaitAck(dets); err != nil {
				if rerr := c.recover(i+1, dets); rerr != nil {
					return dets, c.stats, rerr
				}
				break
			}
		}
	}

	// Drain the tail: wait for every outstanding ack (or its deadline).
	for len(c.inflight) > 0 {
		if err := c.awaitAck(dets); err != nil {
			// The server went away with frames outstanding (mid-stream
			// close): journal them as outage-tracked and exit cleanly —
			// there is nothing left to resume for.
			c.drainInflight(dets)
			break
		}
	}
	// Backfill any frame that never got a result (MOT kept lastDets warm).
	for i := range dets {
		if dets[i] == nil {
			dets[i] = c.agent.LastDetections()
		}
	}
	c.stats.FinalLevel = c.health.Level()
	c.stats.FinalHealth = c.health.Score()
	return dets, c.stats, nil
}
