package edge

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	cases := []Hello{
		{Profile: "nuScenes", Seed: 42, Duration: 8},
		{Profile: "KITTI", Seed: -7, Duration: 0.5, Resume: true, FirstFrame: 93},
		{Profile: "", Seed: 0, Duration: 0},
	}
	for _, h := range cases {
		got, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Errorf("round trip: got %+v want %+v", got, h)
		}
	}
}

func TestFrameMsgRoundTrip(t *testing.T) {
	m := FrameMsg{
		Index:     17,
		Bitstream: []byte{0x01, 0x02, 0xDD, 0xEE, 0xFF},
		SentNanos: 123456789,
		TraceID:   0xdeadbeef,
		SpanID:    0xfeed,
	}
	got, err := DecodeFrameMsg(EncodeFrameMsg(&m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != m.Index || got.SentNanos != m.SentNanos ||
		got.TraceID != m.TraceID || got.SpanID != m.SpanID ||
		!bytes.Equal(got.Bitstream, m.Bitstream) {
		t.Errorf("round trip: got %+v want %+v", got, m)
	}
}

func TestResultMsgRoundTrip(t *testing.T) {
	cases := []ResultMsg{
		{Index: 3, Detections: []WireDetection{
			{Class: 1, MinX: 10, MinY: 20, MaxX: 30, MaxY: 40, Score: 0.92},
			{Class: 2, MinX: -1, MinY: 0, MaxX: 5, MaxY: 6, Score: 0.11},
		}, SentNanos: 99, ServerMs: 1.25, TraceID: 7},
		{Index: -1, Err: "corrupt message", NeedKeyframe: true},
		{Index: 0},
	}
	for _, m := range cases {
		got, err := DecodeResultMsg(EncodeResultMsg(&m))
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if got.Index != m.Index || got.Err != m.Err || got.NeedKeyframe != m.NeedKeyframe ||
			got.ServerMs != m.ServerMs || len(got.Detections) != len(m.Detections) {
			t.Errorf("round trip: got %+v want %+v", got, m)
		}
		for i := range m.Detections {
			if got.Detections[i] != m.Detections[i] {
				t.Errorf("detection %d: got %+v want %+v", i, got.Detections[i], m.Detections[i])
			}
		}
	}
}

func TestMsgReaderSequence(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHello(&buf, Hello{Profile: "nuScenes", Seed: 1, Duration: 2}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, &FrameMsg{Index: 0, Bitstream: []byte{9, 9}}); err != nil {
		t.Fatal(err)
	}
	if err := WriteResult(&buf, &ResultMsg{Index: 0}); err != nil {
		t.Fatal(err)
	}
	mr := NewMsgReader(&buf)
	for i, want := range []byte{MsgHello, MsgFrame, MsgResult} {
		typ, _, err := mr.Next()
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if typ != want {
			t.Fatalf("msg %d: type %d want %d", i, typ, want)
		}
	}
	if _, _, err := mr.Next(); err != io.EOF {
		t.Fatalf("after stream: %v, want io.EOF", err)
	}
}

// TestMsgReaderSurvivesCorruption flips a payload byte mid-stream: the
// damaged message must surface as ErrChecksum and the following message must
// still parse.
func TestMsgReaderSurvivesCorruption(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, &FrameMsg{Index: 1, Bitstream: bytes.Repeat([]byte{0x55}, 64)})
	raw := append([]byte(nil), buf.Bytes()...)
	raw[wireHeaderLen+10] ^= 0xFF // inside the first payload
	WriteMsg(bytes.NewBuffer(nil), MsgFrame, nil)
	var stream bytes.Buffer
	stream.Write(raw)
	WriteFrame(&stream, &FrameMsg{Index: 2, Bitstream: []byte{7}})

	mr := NewMsgReader(&stream)
	_, _, err := mr.Next()
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("first message: %v, want ErrChecksum", err)
	}
	if !IsRecoverable(err) {
		t.Fatal("checksum error not recoverable")
	}
	typ, payload, err := mr.Next()
	if err != nil {
		t.Fatalf("second message after corruption: %v", err)
	}
	if typ != MsgFrame {
		t.Fatalf("type %d", typ)
	}
	fm, err := DecodeFrameMsg(payload)
	if err != nil || fm.Index != 2 {
		t.Fatalf("decoded %+v, %v", fm, err)
	}
}

// TestMsgReaderResyncsAfterGarbage injects raw junk between messages: the
// reader must scan past it to the next magic marker.
func TestMsgReaderResyncsAfterGarbage(t *testing.T) {
	var stream bytes.Buffer
	stream.Write([]byte{0x00, 0xDE, 0xAD, 'D', 'D', 0x01}) // junk incl. lone 'D's
	WriteFrame(&stream, &FrameMsg{Index: 5, Bitstream: []byte{1, 2, 3}})
	mr := NewMsgReader(&stream)
	typ, payload, err := mr.Next()
	if err != nil {
		t.Fatalf("after garbage: %v", err)
	}
	if typ != MsgFrame {
		t.Fatalf("type %d", typ)
	}
	if fm, err := DecodeFrameMsg(payload); err != nil || fm.Index != 5 {
		t.Fatalf("decoded %+v, %v", fm, err)
	}
}

func TestMsgReaderRejectsOversized(t *testing.T) {
	var stream bytes.Buffer
	stream.Write([]byte{'D', 'v', MsgFrame, 0xFF, 0xFF, 0xFF, 0xFF})
	mr := NewMsgReader(&stream)
	_, _, err := mr.Next()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized length: %v, want ErrTooLarge", err)
	}
	if !IsRecoverable(err) {
		t.Fatal("size-cap error not recoverable")
	}
}

func TestMsgReaderTruncatedMessage(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, &FrameMsg{Index: 1, Bitstream: bytes.Repeat([]byte{3}, 32)})
	raw := buf.Bytes()[:buf.Len()-8] // cut mid-payload
	mr := NewMsgReader(bytes.NewReader(raw))
	_, _, err := mr.Next()
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated message: %v, want ErrUnexpectedEOF", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	if _, err := DecodeHello([]byte{9}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short hello: %v", err)
	}
	if _, err := DecodeHello(nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("empty hello: %v", err)
	}
	// Trailing garbage after a valid hello.
	p := append(EncodeHello(Hello{Profile: "x"}), 0xAB)
	if _, err := DecodeHello(p); !errors.Is(err, ErrMalformed) {
		t.Errorf("trailing bytes: %v", err)
	}
	// Unsupported version.
	p = EncodeHello(Hello{Profile: "x"})
	p[0] = 99
	if _, err := DecodeHello(p); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad version: %v", err)
	}
	if _, err := DecodeFrameMsg([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short frame: %v", err)
	}
	if _, err := DecodeResultMsg([]byte{0}); !errors.Is(err, ErrMalformed) {
		t.Errorf("short result: %v", err)
	}
	// Claimed bitstream length far beyond the actual payload.
	fm := EncodeFrameMsg(&FrameMsg{Index: 1, Bitstream: []byte{1}})
	fm[28] = 0xFF // bitstream length field high byte
	if _, err := DecodeFrameMsg(fm); !errors.Is(err, ErrMalformed) {
		t.Errorf("length overclaim: %v", err)
	}
}

func TestEncodeStringTruncation(t *testing.T) {
	long := strings.Repeat("e", 4*maxStringLen)
	m := ResultMsg{Index: 1, Err: long}
	got, err := DecodeResultMsg(EncodeResultMsg(&m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Err) != maxStringLen {
		t.Errorf("error string len %d, want capped at %d", len(got.Err), maxStringLen)
	}
}
