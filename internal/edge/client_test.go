package edge

import (
	"testing"
	"time"

	"dive/internal/chaos"
	"dive/internal/core"
	"dive/internal/obs"
	"dive/internal/world"
)

// newTestAgent builds a core agent for a clip with its own recorder (so
// journals from concurrent tests don't interleave).
func newTestAgent(t *testing.T, clip *world.Clip, rec *obs.Recorder) *core.Agent {
	t.Helper()
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Obs = rec
	cfg.Seed = 5
	agent, err := core.NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return agent
}

func testClip(t *testing.T, seed int64, duration float64) *world.Clip {
	t.Helper()
	p := world.NuScenesLike()
	p.ClipDuration = duration
	return world.GenerateClip(p, seed)
}

func fastBackoff() BackoffConfig {
	return BackoffConfig{
		Initial: 10 * time.Millisecond, Max: 50 * time.Millisecond,
		Factor: 2, Jitter: 0.25, MaxAttempts: 5,
	}
}

// TestClientHealthyBaseline streams a clip over a clean loopback link: every
// frame must come back with edge detections, no reconnects, no outages, and
// the ladder must stay on the healthy rung throughout.
func TestClientHealthyBaseline(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	clip := testClip(t, 42, 1)
	rec := obs.NewRecorder(256)
	agent := newTestAgent(t, clip, rec)
	client := NewClient(ClientConfig{
		Addr: addr, Profile: "nuScenes", Seed: 42, Duration: 1,
		AckTimeout: 5 * time.Second, Backoff: fastBackoff(), Obs: rec,
	}, agent)

	dets, stats, err := client.Run(clip)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reconnects != 0 || stats.OutageFrames != 0 || stats.FramesSkipped != 0 {
		t.Errorf("healthy run saw failures: %+v", stats)
	}
	if stats.FinalLevel != core.LadderHealthy {
		t.Errorf("ladder ended at %v on a clean link", stats.FinalLevel)
	}
	if stats.FramesUploaded != clip.NumFrames() {
		t.Errorf("uploaded %d of %d frames", stats.FramesUploaded, clip.NumFrames())
	}
	for i, d := range dets {
		if d == nil {
			t.Errorf("frame %d has no detections", i)
		}
	}
	// The journal must carry the ladder fields for doctor grading.
	js := rec.Journal().Snapshot()
	if len(js) != clip.NumFrames() {
		t.Fatalf("journal has %d records, want %d", len(js), clip.NumFrames())
	}
	for _, j := range js {
		if j.DegradeLevel != 0 || j.SkippedSend || j.ReconnectAttempts != 0 {
			t.Errorf("frame %d journaled degradation on a healthy link: %+v", j.Frame, j)
		}
	}
}

// TestClientSurvivesDisconnect cuts the TCP session mid-stream through the
// chaos proxy: the client must reconnect with the resume handshake, cover
// the gap with MOT, and finish with detections for every frame.
func TestClientSurvivesDisconnect(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()
	proxy, err := chaos.NewProxy(addr, chaos.ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	clip := testClip(t, 43, 1)
	rec := obs.NewRecorder(256)
	agent := newTestAgent(t, clip, rec)
	client := NewClient(ClientConfig{
		Addr: proxy.Addr(), Profile: "nuScenes", Seed: 43, Duration: 1,
		AckTimeout: 2 * time.Second, Backoff: fastBackoff(), Obs: rec,
	}, agent)

	// Cut the live session once the stream is past the handshake and
	// frames are flowing.
	cutDone := make(chan struct{})
	go func() {
		defer close(cutDone)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if proxy.UpBytes.Load() > 16*1024 && proxy.CutConnections() > 0 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	dets, stats, err := client.Run(clip)
	<-cutDone
	if err != nil {
		t.Fatalf("run did not survive the cut: %v (stats %+v)", err, stats)
	}
	if stats.Reconnects == 0 {
		t.Error("no reconnect recorded despite the cut")
	}
	for i, d := range dets {
		if d == nil {
			t.Errorf("frame %d left uncovered", i)
		}
	}
	// Reconnect accounting must be journaled on some frame.
	found := false
	for _, j := range rec.Journal().Snapshot() {
		if j.ReconnectAttempts > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no frame journaled the reconnect")
	}
}

// TestClientSurvivesCorruption corrupts one uplink byte: the server NACKs,
// the client forces a keyframe, and the stream completes.
func TestClientSurvivesCorruption(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()
	proxy, err := chaos.NewProxy(addr, chaos.ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	clip := testClip(t, 44, 1)
	rec := obs.NewRecorder(256)
	agent := newTestAgent(t, clip, rec)
	client := NewClient(ClientConfig{
		Addr: proxy.Addr(), Profile: "nuScenes", Seed: 44, Duration: 1,
		AckTimeout: 2 * time.Second, Backoff: fastBackoff(), Obs: rec,
	}, agent)

	// Corrupt a byte a few KiB into the uplink stream — inside an early
	// frame message, past the handshake.
	go func() {
		time.Sleep(50 * time.Millisecond)
		proxy.CorruptNextUplink(4096)
	}()

	dets, stats, err := client.Run(clip)
	if err != nil {
		t.Fatalf("run did not survive corruption: %v", err)
	}
	if stats.Nacks == 0 && stats.OutageFrames == 0 {
		t.Errorf("corruption left no trace in stats: %+v", stats)
	}
	for i, d := range dets {
		if d == nil {
			t.Errorf("frame %d left uncovered", i)
		}
	}
}

// TestClientMidStreamServerClose shuts the server down while frames are in
// flight: the client must journal the lost frames as outage-tracked, fail
// its reconnect attempts (nothing is listening), and exit with an error
// while preserving the detections it has.
func TestClientMidStreamServerClose(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	clip := testClip(t, 45, 1)
	rec := obs.NewRecorder(256)
	agent := newTestAgent(t, clip, rec)
	client := NewClient(ClientConfig{
		Addr: addr.String(), Profile: "nuScenes", Seed: 45, Duration: 1,
		AckTimeout: 500 * time.Millisecond,
		Backoff: BackoffConfig{
			Initial: 5 * time.Millisecond, Max: 20 * time.Millisecond,
			Factor: 2, Jitter: 0.25, MaxAttempts: 3,
		},
		Obs: rec,
	}, agent)

	go func() {
		time.Sleep(300 * time.Millisecond)
		srv.Shutdown(100 * time.Millisecond)
	}()

	dets, stats, err := client.Run(clip)
	if err == nil {
		// The stream may have finished before the shutdown landed — only a
		// failed run exercises this path, so demand failure evidence
		// otherwise.
		if stats.Reconnects == 0 && stats.FramesUploaded == clip.NumFrames() {
			t.Skip("stream outran the shutdown; nothing to assert")
		}
	} else {
		// Clean failure: the error is the reconnect exhaustion, not a panic
		// or a hang, and no frame before the close was lost.
		if stats.Reconnects == 0 {
			t.Errorf("no reconnect attempts before giving up: %+v", stats)
		}
	}
	got := 0
	for _, d := range dets {
		if d != nil {
			got++
		}
	}
	if got == 0 {
		t.Error("no detections preserved from before the close")
	}
	// Outage-tracked frames must be journaled.
	outaged := 0
	for _, j := range rec.Journal().Snapshot() {
		if j.Outage {
			outaged++
		}
	}
	if err != nil && stats.OutageFrames > 0 && outaged == 0 {
		t.Error("outage frames in stats but none journaled")
	}
}

// TestClientLadderEngagesUnderBlackout throttles and blacks out the link so
// ack deadlines fire repeatedly: the ladder must leave the healthy rung, and
// after the blackout lifts it must recover within the clip.
func TestClientLadderEngagesUnderBlackout(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()
	proxy, err := chaos.NewProxy(addr, chaos.ProxyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	clip := testClip(t, 46, 2)
	rec := obs.NewRecorder(512)
	agent := newTestAgent(t, clip, rec)
	hc := core.DefaultHealthConfig()
	hc.DwellFrames = 2
	client := NewClient(ClientConfig{
		Addr: proxy.Addr(), Profile: "nuScenes", Seed: 46, Duration: 2,
		AckTimeout: 150 * time.Millisecond,
		// Backoff must outlast the 400ms blackout below.
		Backoff: BackoffConfig{
			Initial: 50 * time.Millisecond, Max: 200 * time.Millisecond,
			Factor: 2, Jitter: 0.25, MaxAttempts: 12,
		},
		Health: hc, Obs: rec,
	}, agent)

	// Black out the proxy briefly mid-stream: acks stop, deadlines fire.
	go func() {
		time.Sleep(250 * time.Millisecond)
		proxy.SetBlackout(true)
		proxy.CutConnections()
		time.Sleep(400 * time.Millisecond)
		proxy.SetBlackout(false)
	}()

	dets, stats, err := client.Run(clip)
	if err != nil {
		t.Fatalf("run did not survive the blackout: %v (stats %+v)", err, stats)
	}
	for i, d := range dets {
		if d == nil {
			t.Errorf("frame %d left uncovered", i)
		}
	}
	// The journal must show the ladder engaging (some frame encoded under
	// a degraded level) — and the final frames healthy again.
	js := rec.Journal().Snapshot()
	engaged := false
	for _, j := range js {
		if j.DegradeLevel > 0 {
			engaged = true
			break
		}
	}
	if !engaged && stats.OutageFrames > 0 {
		t.Error("outages occurred but the ladder never engaged")
	}
}
