package edge

import (
	"encoding/gob"
	"fmt"
	"net"
	"testing"
	"time"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/world"
)

func TestWireConversionRoundTrip(t *testing.T) {
	dets := []detect.Detection{
		{Class: world.ClassCar, Box: imgx.NewRect(10, 20, 30, 40), Score: 0.9},
		{Class: world.ClassPedestrian, Box: imgx.NewRect(1, 2, 3, 4), Score: 0.5},
	}
	back := FromWire(ToWire(dets))
	if len(back) != 2 {
		t.Fatal("count mismatch")
	}
	for i := range dets {
		if back[i].Class != dets[i].Class || back[i].Box != dets[i].Box || back[i].Score != dets[i].Score {
			t.Errorf("detection %d mismatch: %+v vs %+v", i, back[i], dets[i])
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"nuScenes", "RobotCar", "KITTI"} {
		p, err := profileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("profile %s: %v", name, err)
		}
	}
	if _, err := profileByName("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

// TestServerSession runs a full live session over loopback TCP: encode a
// tiny clip with the codec, stream it, check detections come back.
func TestServerSession(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	defer func() {
		srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}()

	const seed = 99
	const duration = 1.0
	p := world.NuScenesLike()
	p.ClipDuration = duration
	clip := world.GenerateClip(p, seed)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	genc := gob.NewEncoder(conn)
	gdec := gob.NewDecoder(conn)
	if err := genc.Encode(Hello{Profile: "nuScenes", Seed: seed, Duration: duration}); err != nil {
		t.Fatal(err)
	}

	sawDets := false
	for i, frame := range clip.Frames {
		ef, err := enc.Encode(frame, codec.EncodeOptions{BaseQP: 14})
		if err != nil {
			t.Fatal(err)
		}
		if err := genc.Encode(FrameMsg{Index: i, Bitstream: ef.Data, SentNanos: time.Now().UnixNano()}); err != nil {
			t.Fatal(err)
		}
		var res ResultMsg
		if err := gdec.Decode(&res); err != nil {
			t.Fatal(err)
		}
		if res.Err != "" {
			t.Fatalf("frame %d: server error %s", i, res.Err)
		}
		if res.Index != i {
			t.Fatalf("result index %d, want %d", res.Index, i)
		}
		if len(res.Detections) > 0 {
			sawDets = true
		}
	}
	if !sawDets {
		t.Error("server returned no detections for a high-quality stream")
	}

	// Out-of-range index reports an error without killing the session.
	if err := genc.Encode(FrameMsg{Index: 10000}); err != nil {
		t.Fatal(err)
	}
	var res ResultMsg
	if err := gdec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Err == "" {
		t.Error("expected error for out-of-range index")
	}
}

func TestServerRejectsBadProfile(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	genc := gob.NewEncoder(conn)
	gdec := gob.NewDecoder(conn)
	if err := genc.Encode(Hello{Profile: "nope", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var res ResultMsg
	if err := gdec.Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Err == "" {
		t.Error("expected handshake error")
	}
}

func TestServeBeforeListen(t *testing.T) {
	srv := NewServer()
	if err := srv.Serve(); err == nil {
		t.Error("Serve before Listen should fail")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close on unbound server: %v", err)
	}
}

// TestConcurrentSessions exercises the server's goroutine-per-connection
// path: several agents stream different clips simultaneously.
func TestConcurrentSessions(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	const sessions = 3
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		seed := int64(200 + s)
		go func(seed int64) {
			errs <- runSession(addr.String(), seed)
		}(seed)
	}
	for s := 0; s < sessions; s++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("session timed out")
		}
	}
}

// runSession streams a short clip and validates every reply.
func runSession(addr string, seed int64) error {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	clip := world.GenerateClip(p, seed)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	genc := gob.NewEncoder(conn)
	gdec := gob.NewDecoder(conn)
	if err := genc.Encode(Hello{Profile: "nuScenes", Seed: seed, Duration: 0.5}); err != nil {
		return err
	}
	for i, frame := range clip.Frames {
		ef, err := enc.Encode(frame, codec.EncodeOptions{BaseQP: 16})
		if err != nil {
			return err
		}
		if err := genc.Encode(FrameMsg{Index: i, Bitstream: ef.Data}); err != nil {
			return err
		}
		var res ResultMsg
		if err := gdec.Decode(&res); err != nil {
			return err
		}
		if res.Err != "" {
			return fmt.Errorf("frame %d: %s", i, res.Err)
		}
		if res.Index != i {
			return fmt.Errorf("frame %d: got index %d", i, res.Index)
		}
	}
	return nil
}

func TestLogfAndClosedDetection(t *testing.T) {
	srv := NewServer()
	var lines []string
	srv.Logf = func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	srv.logf("hello %d", 7)
	if len(lines) != 1 || lines[0] != "hello 7" {
		t.Errorf("logf lines = %v", lines)
	}
	// Closing the listener makes Serve return nil (clean shutdown), which
	// exercises the closed-connection error classification.
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	// Open and drop a connection with a garbage handshake; the session
	// handler must log, not crash.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xde, 0xad})
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestAsOpError(t *testing.T) {
	if ok := asOpError(nil, new(*net.OpError)); ok {
		t.Error("nil error classified as OpError")
	}
	if ok := asOpError(fmt.Errorf("plain"), new(*net.OpError)); ok {
		t.Error("plain error classified as OpError")
	}
	op := &net.OpError{Op: "read", Err: fmt.Errorf("boom")}
	wrapped := fmt.Errorf("outer: %w", op)
	var out *net.OpError
	if ok := asOpError(wrapped, &out); !ok || out != op {
		t.Error("wrapped OpError not found")
	}
	if isClosed(wrapped) {
		t.Error("non-closed OpError reported closed")
	}
}
