package edge

import (
	"fmt"
	"net"
	"testing"
	"time"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/world"
)

func TestWireConversionRoundTrip(t *testing.T) {
	dets := []detect.Detection{
		{Class: world.ClassCar, Box: imgx.NewRect(10, 20, 30, 40), Score: 0.9},
		{Class: world.ClassPedestrian, Box: imgx.NewRect(1, 2, 3, 4), Score: 0.5},
	}
	back := FromWire(ToWire(dets))
	if len(back) != 2 {
		t.Fatal("count mismatch")
	}
	for i := range dets {
		if back[i].Class != dets[i].Class || back[i].Box != dets[i].Box || back[i].Score != dets[i].Score {
			t.Errorf("detection %d mismatch: %+v vs %+v", i, back[i], dets[i])
		}
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"nuScenes", "RobotCar", "KITTI"} {
		p, err := profileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("profile %s: %v", name, err)
		}
	}
	if _, err := profileByName("bogus"); err == nil {
		t.Error("bogus profile accepted")
	}
}

// startServer boots a server on loopback and returns its address plus a
// shutdown func that asserts Serve exits cleanly.
func startServer(t *testing.T, srv *Server) (string, func()) {
	t.Helper()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	return addr.String(), func() {
		srv.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("Serve returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

// testSession dials, handshakes (consuming the server's handshake ack) and
// returns the conn plus a MsgReader.
func testSession(t *testing.T, addr string, hello Hello) (net.Conn, *MsgReader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteHello(conn, hello); err != nil {
		t.Fatal(err)
	}
	mr := NewMsgReader(conn)
	res := readResult(t, conn, mr)
	if res.Err != "" {
		t.Fatalf("handshake rejected: %s", res.Err)
	}
	if res.Index != -1 || !res.NeedKeyframe {
		t.Fatalf("handshake ack = %+v, want Index=-1 NeedKeyframe", res)
	}
	return conn, mr
}

func readResult(t *testing.T, conn net.Conn, mr *MsgReader) ResultMsg {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(20 * time.Second))
	typ, payload, err := mr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgResult {
		t.Fatalf("got message type %d, want result", typ)
	}
	res, err := DecodeResultMsg(payload)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestServerSession runs a full live session over loopback TCP: encode a
// tiny clip with the codec, stream it, check detections come back.
func TestServerSession(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	const seed = 99
	const duration = 1.0
	p := world.NuScenesLike()
	p.ClipDuration = duration
	clip := world.GenerateClip(p, seed)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		t.Fatal(err)
	}

	conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: seed, Duration: duration})
	defer conn.Close()

	sawDets := false
	for i, frame := range clip.Frames {
		ef, err := enc.Encode(frame, codec.EncodeOptions{BaseQP: 14})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(conn, &FrameMsg{Index: i, Bitstream: ef.Data, SentNanos: time.Now().UnixNano()}); err != nil {
			t.Fatal(err)
		}
		res := readResult(t, conn, mr)
		if res.Err != "" {
			t.Fatalf("frame %d: server error %s", i, res.Err)
		}
		if res.Index != i {
			t.Fatalf("result index %d, want %d", res.Index, i)
		}
		if len(res.Detections) > 0 {
			sawDets = true
		}
	}
	if !sawDets {
		t.Error("server returned no detections for a high-quality stream")
	}

	// Out-of-range index reports an error without killing the session.
	if err := WriteFrame(conn, &FrameMsg{Index: 10000, Bitstream: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if res := readResult(t, conn, mr); res.Err == "" {
		t.Error("expected error for out-of-range index")
	}
}

// TestServerNacksCorruptFrame flips bytes inside a frame message: the server
// must answer with a keyframe NACK and recover once an intra frame arrives.
func TestServerNacksCorruptFrame(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	p := world.NuScenesLike()
	p.ClipDuration = 1
	clip := world.GenerateClip(p, 7)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		t.Fatal(err)
	}
	conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: 7, Duration: 1})
	defer conn.Close()

	// Frame 0 clean.
	ef, _ := enc.Encode(clip.Frames[0], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn, &FrameMsg{Index: 0, Bitstream: ef.Data})
	if res := readResult(t, conn, mr); res.Err != "" {
		t.Fatalf("clean frame rejected: %s", res.Err)
	}

	// Frame 1 corrupted on the wire: envelope CRC must catch it.
	ef, _ = enc.Encode(clip.Frames[1], codec.EncodeOptions{BaseQP: 16})
	var raw []byte
	{
		buf := &collector{}
		WriteFrame(buf, &FrameMsg{Index: 1, Bitstream: ef.Data})
		raw = buf.b
	}
	raw[len(raw)/2] ^= 0x5A
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	res := readResult(t, conn, mr)
	if !res.NeedKeyframe {
		t.Fatalf("corrupt frame answered without NeedKeyframe: %+v", res)
	}

	// A P-frame now gets NACKed — the decoder is marked desynced.
	ef, _ = enc.Encode(clip.Frames[2], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn, &FrameMsg{Index: 2, Bitstream: ef.Data})
	res = readResult(t, conn, mr)
	if !res.NeedKeyframe || res.Err == "" {
		t.Fatalf("P-frame after desync accepted: %+v", res)
	}

	// An intra frame restores the session.
	ef, _ = enc.Encode(clip.Frames[3], codec.EncodeOptions{BaseQP: 16, ForceIFrame: true})
	WriteFrame(conn, &FrameMsg{Index: 3, Bitstream: ef.Data})
	res = readResult(t, conn, mr)
	if res.Err != "" || res.NeedKeyframe {
		t.Fatalf("keyframe did not resync: %+v", res)
	}
}

// collector is a minimal io.Writer for capturing framed bytes.
type collector struct{ b []byte }

func (c *collector) Write(p []byte) (int, error) {
	c.b = append(c.b, p...)
	return len(p), nil
}

// TestServerDetectsFrameGap skips an index: the decoder reference is stale,
// so the server must NACK P-frames until a keyframe lands.
func TestServerDetectsFrameGap(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	p := world.NuScenesLike()
	p.ClipDuration = 1
	clip := world.GenerateClip(p, 11)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		t.Fatal(err)
	}
	conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: 11, Duration: 1})
	defer conn.Close()

	ef, _ := enc.Encode(clip.Frames[0], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn, &FrameMsg{Index: 0, Bitstream: ef.Data})
	readResult(t, conn, mr)

	// Encode 1 and 2 but only send 2 (simulating a dropped frame): P-frame
	// at an unexpected index must be refused.
	enc.Encode(clip.Frames[1], codec.EncodeOptions{BaseQP: 16})
	ef, _ = enc.Encode(clip.Frames[2], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn, &FrameMsg{Index: 2, Bitstream: ef.Data})
	res := readResult(t, conn, mr)
	if !res.NeedKeyframe {
		t.Fatalf("gap P-frame accepted: %+v", res)
	}

	// Keyframe at the gap index is accepted and resyncs.
	ef, _ = enc.Encode(clip.Frames[3], codec.EncodeOptions{BaseQP: 16, ForceIFrame: true})
	WriteFrame(conn, &FrameMsg{Index: 3, Bitstream: ef.Data})
	res = readResult(t, conn, mr)
	if res.Err != "" || res.NeedKeyframe {
		t.Fatalf("keyframe after gap rejected: %+v", res)
	}
}

// TestServerResume reconnects mid-clip with Hello.Resume: the second session
// must start at FirstFrame and demand an intra frame.
func TestServerResume(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	p := world.NuScenesLike()
	p.ClipDuration = 1
	clip := world.GenerateClip(p, 21)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		t.Fatal(err)
	}
	conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: 21, Duration: 1})
	ef, _ := enc.Encode(clip.Frames[0], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn, &FrameMsg{Index: 0, Bitstream: ef.Data})
	readResult(t, conn, mr)
	conn.Close() // mid-stream disconnect

	// Reconnect, resuming at frame 4. P-frame first: refused. Keyframe: OK.
	conn2, mr2 := testSession(t, addr, Hello{Profile: "nuScenes", Seed: 21, Duration: 1, Resume: true, FirstFrame: 4})
	defer conn2.Close()
	for i := 1; i <= 3; i++ {
		enc.Encode(clip.Frames[i], codec.EncodeOptions{BaseQP: 16})
	}
	ef, _ = enc.Encode(clip.Frames[4], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn2, &FrameMsg{Index: 4, Bitstream: ef.Data})
	if res := readResult(t, conn2, mr2); !res.NeedKeyframe {
		t.Fatalf("resumed session accepted P-frame: %+v", res)
	}
	ef, _ = enc.Encode(clip.Frames[5], codec.EncodeOptions{BaseQP: 16, ForceIFrame: true})
	WriteFrame(conn2, &FrameMsg{Index: 5, Bitstream: ef.Data})
	if res := readResult(t, conn2, mr2); res.Err != "" || res.NeedKeyframe {
		t.Fatalf("resume keyframe rejected: %+v", res)
	}

	// Resume beyond the clip end is refused at handshake.
	conn3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	WriteHello(conn3, Hello{Profile: "nuScenes", Seed: 21, Duration: 1, Resume: true, FirstFrame: 100000})
	mr3 := NewMsgReader(conn3)
	if res := readResult(t, conn3, mr3); res.Err == "" {
		t.Error("resume beyond clip end accepted")
	}
}

func TestServerRejectsBadProfile(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteHello(conn, Hello{Profile: "nope", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	mr := NewMsgReader(conn)
	if res := readResult(t, conn, mr); res.Err == "" {
		t.Error("expected handshake error")
	}
}

// TestServerSurvivesMalformedHandshake sends garbage first: the session dies
// but the server keeps serving new connections.
func TestServerSurvivesMalformedHandshake(t *testing.T) {
	srv := NewServer()
	srv.ReadTimeout = 2 * time.Second
	addr, stop := startServer(t, srv)
	defer stop()

	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	bad.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	bad.Close()

	// A well-formed session still works.
	conn, _ := testSession(t, addr, Hello{Profile: "nuScenes", Seed: 5, Duration: 0.5})
	conn.Close()
}

func TestServeBeforeListen(t *testing.T) {
	srv := NewServer()
	if err := srv.Serve(); err == nil {
		t.Error("Serve before Listen should fail")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close on unbound server: %v", err)
	}
}

// TestGracefulShutdown verifies Shutdown lets an in-flight session finish
// its current frame and then stops accepting.
func TestGracefulShutdown(t *testing.T) {
	srv := NewServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	conn, mr := testSession(t, addr.String(), Hello{Profile: "nuScenes", Seed: 31, Duration: 0.5})
	defer conn.Close()

	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	clip := world.GenerateClip(p, 31)
	enc, _ := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	ef, _ := enc.Encode(clip.Frames[0], codec.EncodeOptions{BaseQP: 16})
	WriteFrame(conn, &FrameMsg{Index: 0, Bitstream: ef.Data})
	if res := readResult(t, conn, mr); res.Err != "" {
		t.Fatalf("pre-shutdown frame failed: %s", res.Err)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(3 * time.Second) }()

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// New dials are refused or immediately closed.
	if c2, err := net.Dial("tcp", addr.String()); err == nil {
		c2.SetReadDeadline(time.Now().Add(2 * time.Second))
		one := make([]byte, 1)
		if _, rerr := c2.Read(one); rerr == nil {
			t.Error("server accepted a session after Shutdown")
		}
		c2.Close()
	}
}

// TestConcurrentSessions exercises the server's goroutine-per-connection
// path: several agents stream different clips simultaneously.
func TestConcurrentSessions(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	const sessions = 3
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		seed := int64(200 + s)
		go func(seed int64) {
			errs <- runSession(addr, seed)
		}(seed)
	}
	for s := 0; s < sessions; s++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("session timed out")
		}
	}
}

// TestClipCacheReuse opens two sessions with identical parameters and
// checks the reference clip is rendered once.
func TestClipCacheReuse(t *testing.T) {
	srv := NewServer()
	addr, stop := startServer(t, srv)
	defer stop()

	for i := 0; i < 2; i++ {
		if err := runSession(addr, 777); err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	srv.clipMu.Lock()
	n := len(srv.clips)
	srv.clipMu.Unlock()
	if n != 1 {
		t.Errorf("clip cache holds %d entries after identical sessions, want 1", n)
	}
}

// runSession streams a short clip and validates every reply.
func runSession(addr string, seed int64) error {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	clip := world.GenerateClip(p, seed)
	enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := WriteHello(conn, Hello{Profile: "nuScenes", Seed: seed, Duration: 0.5}); err != nil {
		return err
	}
	mr := NewMsgReader(conn)
	readRes := func() (ResultMsg, error) {
		conn.SetReadDeadline(time.Now().Add(20 * time.Second))
		typ, payload, err := mr.Next()
		if err != nil {
			return ResultMsg{}, err
		}
		if typ != MsgResult {
			return ResultMsg{}, fmt.Errorf("message type %d", typ)
		}
		return DecodeResultMsg(payload)
	}
	ack, err := readRes()
	if err != nil {
		return err
	}
	if ack.Err != "" {
		return fmt.Errorf("handshake: %s", ack.Err)
	}
	for i, frame := range clip.Frames {
		ef, err := enc.Encode(frame, codec.EncodeOptions{BaseQP: 16})
		if err != nil {
			return err
		}
		if err := WriteFrame(conn, &FrameMsg{Index: i, Bitstream: ef.Data}); err != nil {
			return err
		}
		res, err := readRes()
		if err != nil {
			return err
		}
		if res.Err != "" {
			return fmt.Errorf("frame %d: %s", i, res.Err)
		}
		if res.Index != i {
			return fmt.Errorf("frame %d: got index %d", i, res.Index)
		}
	}
	return nil
}

func TestLogfAndClosedDetection(t *testing.T) {
	srv := NewServer()
	var lines []string
	srv.Logf = func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	srv.logf("hello %d", 7)
	if len(lines) != 1 || lines[0] != "hello 7" {
		t.Errorf("logf lines = %v", lines)
	}
	// Closing the listener makes Serve return nil (clean shutdown), which
	// exercises the closed-connection error classification.
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	// Open and drop a connection with a garbage handshake; the session
	// handler must log, not crash.
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0xde, 0xad})
	conn.Close()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return")
	}
}

func TestAsOpError(t *testing.T) {
	if ok := asOpError(nil, new(*net.OpError)); ok {
		t.Error("nil error classified as OpError")
	}
	if ok := asOpError(fmt.Errorf("plain"), new(*net.OpError)); ok {
		t.Error("plain error classified as OpError")
	}
	op := &net.OpError{Op: "read", Err: fmt.Errorf("boom")}
	wrapped := fmt.Errorf("outer: %w", op)
	var out *net.OpError
	if ok := asOpError(wrapped, &out); !ok || out != op {
		t.Error("wrapped OpError not found")
	}
	if isClosed(wrapped) {
		t.Error("non-closed OpError reported closed")
	}
}
