package edge

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dive/internal/codec"
	"dive/internal/obs"
	"dive/internal/world"
)

// TestServerPerSessionMetrics serves three concurrent-profile sessions and
// asserts the telemetry recorder exposes per-session labeled series on
// /metrics and per-session SLO windows on /debug/slo — the fleet view a
// multi-agent deployment scrapes.
func TestServerPerSessionMetrics(t *testing.T) {
	rec := obs.NewRecorder(256)
	srv := NewServer()
	srv.Obs = rec
	addr, stop := startServer(t, srv)
	defer stop()

	const duration = 1.0
	seeds := []int64{101, 102, 103}
	const framesPerSession = 3
	for _, seed := range seeds {
		p := world.NuScenesLike()
		p.ClipDuration = duration
		clip := world.GenerateClip(p, seed)
		enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
		if err != nil {
			t.Fatal(err)
		}
		conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: seed, Duration: duration})
		for i := 0; i < framesPerSession; i++ {
			ef, err := enc.Encode(clip.Frames[i], codec.EncodeOptions{BaseQP: 14})
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteFrame(conn, &FrameMsg{Index: i, Bitstream: ef.Data, SentNanos: time.Now().UnixNano()}); err != nil {
				t.Fatal(err)
			}
			if res := readResult(t, conn, mr); res.Err != "" {
				t.Fatalf("seed %d frame %d: %s", seed, i, res.Err)
			}
		}
		conn.Close()
	}

	ts := httptest.NewServer(rec.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, seed := range seeds {
		session := fmt.Sprintf("nuScenes-%d", seed)
		for _, series := range []string{
			fmt.Sprintf("edge_session_frames_total{session=%q} %d", session, framesPerSession),
			fmt.Sprintf("edge_session_bytes_total{session=%q}", session),
			fmt.Sprintf("edge_session_decode_seconds_count{session=%q} %d", session, framesPerSession),
			fmt.Sprintf("edge_session_detect_seconds_count{session=%q} %d", session, framesPerSession),
			fmt.Sprintf("slo_burn_rate{session=%q}", session),
		} {
			if !strings.Contains(metrics, series) {
				t.Errorf("/metrics missing %s", series)
			}
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", metrics)
	}

	sresp, err := ts.Client().Get(ts.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var doc struct {
		Sessions []obs.SLOStatus `json:"sessions"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Sessions) != len(seeds) {
		t.Fatalf("/debug/slo tracks %d sessions, want %d: %+v", len(doc.Sessions), len(seeds), doc.Sessions)
	}
	for _, st := range doc.Sessions {
		if st.Frames != framesPerSession {
			t.Errorf("session %s window has %d frames, want %d", st.Session, st.Frames, framesPerSession)
		}
	}
}

// TestServerSessionNackCounter corrupts one frame and asserts the NACK is
// attributed to the offending session's labeled counter.
func TestServerSessionNackCounter(t *testing.T) {
	rec := obs.NewRecorder(64)
	srv := NewServer()
	srv.Obs = rec
	addr, stop := startServer(t, srv)
	defer stop()

	conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: 7, Duration: 1.0})
	defer conn.Close()
	if err := WriteFrame(conn, &FrameMsg{Index: 0, Bitstream: []byte{0xde, 0xad}}); err != nil {
		t.Fatal(err)
	}
	res := readResult(t, conn, mr)
	if !res.NeedKeyframe {
		t.Fatalf("garbage bitstream not NACKed: %+v", res)
	}
	got := rec.LabeledCounter(obs.MetricEdgeSessionNacks, obs.SessionLabel).With("nuScenes-7").Value()
	if got != 1 {
		t.Fatalf("session NACK counter = %d, want 1", got)
	}
}

// TestServerSessionLabelCap opens more sessions than SessionLabelCap allows
// and asserts the overflow sessions fold by profile (keeping per-profile
// attribution instead of one _overflow bucket) while every fold is counted
// on obs_label_overflow_total. Returning sessions keep their original label.
func TestServerSessionLabelCap(t *testing.T) {
	rec := obs.NewRecorder(64)
	srv := NewServer()
	srv.Obs = rec
	srv.SessionLabelCap = 2
	addr, stop := startServer(t, srv)
	defer stop()

	const duration = 1.0
	sendOne := func(seed int64) {
		t.Helper()
		p := world.NuScenesLike()
		p.ClipDuration = duration
		clip := world.GenerateClip(p, seed)
		enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
		if err != nil {
			t.Fatal(err)
		}
		conn, mr := testSession(t, addr, Hello{Profile: "nuScenes", Seed: seed, Duration: duration})
		defer conn.Close()
		ef, err := enc.Encode(clip.Frames[0], codec.EncodeOptions{BaseQP: 14})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(conn, &FrameMsg{Index: 0, Bitstream: ef.Data, SentNanos: time.Now().UnixNano()}); err != nil {
			t.Fatal(err)
		}
		if res := readResult(t, conn, mr); res.Err != "" {
			t.Fatalf("seed %d: %s", seed, res.Err)
		}
	}

	for _, seed := range []int64{1, 2, 3} {
		sendOne(seed)
	}
	fam := rec.LabeledCounter(obs.MetricEdgeSessionFrames, obs.SessionLabel)
	for label, want := range map[string]int64{"nuScenes-1": 1, "nuScenes-2": 1, "nuScenes": 1} {
		if got := fam.With(label).Value(); got != want {
			t.Errorf("frames{session=%q} = %d, want %d", label, got, want)
		}
	}
	if got := rec.Counter(obs.MetricLabelOverflow).Value(); got != 1 {
		t.Fatalf("overflow counter = %d after 1 folded session, want 1", got)
	}

	// A returning session keeps its full label without another fold.
	sendOne(1)
	if got := fam.With("nuScenes-1").Value(); got != 2 {
		t.Errorf("returning session frames = %d, want 2", got)
	}
	if got := rec.Counter(obs.MetricLabelOverflow).Value(); got != 1 {
		t.Fatalf("overflow counter = %d after returning session, want still 1", got)
	}

	// Another fresh session folds into the profile label again.
	sendOne(4)
	if got := fam.With("nuScenes").Value(); got != 2 {
		t.Errorf("profile-folded frames = %d, want 2", got)
	}
	if got := rec.Counter(obs.MetricLabelOverflow).Value(); got != 2 {
		t.Fatalf("overflow counter = %d after second fold, want 2", got)
	}
}
