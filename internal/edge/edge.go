// Package edge implements the edge-server side of the live demo: a TCP
// protocol (gob-framed) over which an agent streams DiVE bitstreams and the
// server returns detections, plus the server loop itself.
//
// The demo's "DNN" is the same simulated detector the experiments use. It
// needs the pristine frame to measure compression damage, so agent and
// server share the deterministic benchmark world: the handshake carries the
// generation seed and profile, the server renders the identical clip
// locally, and only the encoded bitstream crosses the wire — exactly the
// bytes a real deployment would ship.
package edge

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/obs"
	"dive/internal/world"
)

// Hello opens a session: it tells the server which synthetic clip the agent
// is streaming so the server can reconstruct ground truth locally.
type Hello struct {
	Profile  string // "nuScenes", "RobotCar" or "KITTI"
	Seed     int64
	Duration float64 // seconds
}

// FrameMsg carries one encoded frame. TraceID/SpanID propagate the
// agent-minted trace context across the wire so server-side decode/detect
// spans stitch into the same end-to-end trace as the agent's encode spans
// (zero when the agent runs without telemetry).
type FrameMsg struct {
	Index     int
	Bitstream []byte
	SentNanos int64 // agent clock, echoed back for RTT measurement
	TraceID   uint64
	SpanID    uint64 // the agent-side parent span of the server's work
}

// WireDetection is a transport-friendly detection.
type WireDetection struct {
	Class                  int
	MinX, MinY, MaxX, MaxY int
	Score                  float64
}

// ResultMsg returns the detections for one frame. TraceID echoes the
// FrameMsg trace so the agent can attribute the ack to its frame trace.
type ResultMsg struct {
	Index      int
	Detections []WireDetection
	SentNanos  int64 // echoed from FrameMsg
	ServerMs   float64
	Err        string
	TraceID    uint64
}

// ToWire converts detections for transport.
func ToWire(dets []detect.Detection) []WireDetection {
	out := make([]WireDetection, 0, len(dets))
	for _, d := range dets {
		out = append(out, WireDetection{
			Class: int(d.Class),
			MinX:  d.Box.MinX, MinY: d.Box.MinY,
			MaxX: d.Box.MaxX, MaxY: d.Box.MaxY,
			Score: d.Score,
		})
	}
	return out
}

// FromWire converts transported detections back.
func FromWire(ws []WireDetection) []detect.Detection {
	out := make([]detect.Detection, 0, len(ws))
	for _, w := range ws {
		out = append(out, detect.Detection{
			Class: world.Class(w.Class),
			Box: imgx.Rect{
				MinX: w.MinX, MinY: w.MinY,
				MaxX: w.MaxX, MaxY: w.MaxY,
			},
			Score: w.Score,
		})
	}
	return out
}

// profileByName resolves a Hello profile.
func profileByName(name string) (world.Profile, error) {
	switch name {
	case "nuScenes":
		return world.NuScenesLike(), nil
	case "RobotCar":
		return world.RobotCarLike(), nil
	case "KITTI":
		return world.KITTILike(), nil
	default:
		return world.Profile{}, fmt.Errorf("edge: unknown profile %q", name)
	}
}

// Server serves DiVE analytics sessions over TCP.
type Server struct {
	Detector *detect.Detector
	// Logf receives progress lines; nil silences the server.
	Logf func(format string, args ...interface{})
	// Obs receives server telemetry: session/frame/byte counters and
	// decode + detect latency histograms. Nil disables instrumentation.
	Obs *obs.Recorder

	mu sync.Mutex
	ln net.Listener
}

// NewServer builds a server with the default detector calibration.
func NewServer() *Server {
	return &Server{Detector: detect.New(detect.DefaultConfig())}
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Listen binds the address and returns the bound address (useful with
// ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts sessions until Close. Each connection is handled on its own
// goroutine; Serve returns after the listener closes and all handlers exit.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("edge: Serve before Listen")
	}
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if isClosed(err) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.handle(conn); err != nil && err != io.EOF {
				s.logf("session error: %v", err)
			}
		}()
	}
}

// Close stops the listener.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.ln = nil
	return err
}

func isClosed(err error) bool {
	var opErr *net.OpError
	if ok := asOpError(err, &opErr); ok {
		return opErr.Err.Error() == "use of closed network connection"
	}
	return false
}

func asOpError(err error, target **net.OpError) bool {
	for err != nil {
		if op, ok := err.(*net.OpError); ok {
			*target = op
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// handle runs one session.
func (s *Server) handle(conn net.Conn) error {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	var hello Hello
	if err := dec.Decode(&hello); err != nil {
		return fmt.Errorf("edge: handshake: %w", err)
	}
	s.Obs.Counter(obs.MetricEdgeSessions).Inc()
	profile, err := profileByName(hello.Profile)
	if err != nil {
		enc.Encode(ResultMsg{Index: -1, Err: err.Error()})
		return err
	}
	if hello.Duration > 0 {
		profile.ClipDuration = hello.Duration
	}
	s.logf("session: profile=%s seed=%d dur=%.1fs — rendering reference clip",
		hello.Profile, hello.Seed, profile.ClipDuration)
	clip := world.GenerateClip(profile, hello.Seed)
	vdec, err := codec.NewDecoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		return err
	}

	for {
		var fm FrameMsg
		if err := dec.Decode(&fm); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("edge: read frame: %w", err)
		}
		t0 := time.Now()
		res := ResultMsg{Index: fm.Index, SentNanos: fm.SentNanos, TraceID: fm.TraceID}
		// Rehydrate the agent-minted trace context: decode/detect spans
		// recorded under it stitch into the agent's frame trace by ID.
		ctx := obs.TraceContext{TraceID: fm.TraceID, Frame: fm.Index, SpanID: fm.SpanID}
		s.Obs.Counter(obs.MetricEdgeFrames).Inc()
		s.Obs.Counter(obs.MetricEdgeBytes).Add(int64(len(fm.Bitstream)))
		if fm.Index < 0 || fm.Index >= clip.NumFrames() {
			res.Err = fmt.Sprintf("frame index %d out of range", fm.Index)
		} else {
			decodeSpan := s.Obs.StartStageSpan(ctx, "decode", "edge", obs.StageEdgeDecode)
			df, derr := vdec.Decode(fm.Bitstream)
			decodeSpan.End()
			if derr != nil {
				res.Err = derr.Error()
			} else {
				detectSpan := s.Obs.StartStageSpan(ctx, "detect", "edge", obs.StageEdgeDetect)
				dets := s.Detector.Detect(df.Image, clip.Frames[fm.Index], clip.GT[fm.Index], hello.Seed^int64(fm.Index*7919))
				detectSpan.End()
				res.Detections = ToWire(dets)
			}
		}
		res.ServerMs = time.Since(t0).Seconds() * 1000
		ackSpan := s.Obs.StartSpan(ctx, "ack", "edge")
		err := enc.Encode(res)
		ackSpan.End()
		if err != nil {
			return fmt.Errorf("edge: write result: %w", err)
		}
	}
}
