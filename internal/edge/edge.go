// Package edge implements the edge-server side of the live demo: a CRC-framed
// binary protocol over TCP through which an agent streams DiVE bitstreams and
// the server returns detections, the hardened server loop itself, and the
// resilient agent-side client (client.go).
//
// The demo's "DNN" is the same simulated detector the experiments use. It
// needs the pristine frame to measure compression damage, so agent and
// server share the deterministic benchmark world: the handshake carries the
// generation seed and profile, the server renders the identical clip
// locally, and only the encoded bitstream crosses the wire — exactly the
// bytes a real deployment would ship.
//
// Failure is a first-class input here (see wire.go): every message is CRC
// framed, reads and writes carry deadlines, a corrupt or malformed frame is
// NACKed with a keyframe request instead of killing the session, frame-index
// gaps force decoder resync, and a reconnecting agent resumes mid-clip with
// the Resume handshake.
package edge

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/obs"
	"dive/internal/world"
)

// Hello opens a session: it tells the server which synthetic clip the agent
// is streaming so the server can reconstruct ground truth locally. A
// reconnecting agent sets Resume and FirstFrame; the server then expects the
// stream to restart at that frame with an intra frame (its decoder is
// fresh).
type Hello struct {
	Profile  string // "nuScenes", "RobotCar" or "KITTI"
	Seed     int64
	Duration float64 // seconds
	// Resume marks a mid-clip reconnect after a link failure.
	Resume bool
	// FirstFrame is the index the resumed stream starts at.
	FirstFrame int
}

// FrameMsg carries one encoded frame. TraceID/SpanID propagate the
// agent-minted trace context across the wire so server-side decode/detect
// spans stitch into the same end-to-end trace as the agent's encode spans
// (zero when the agent runs without telemetry). Integrity comes from the
// envelope CRC (wire.go), which covers the whole payload including the
// bitstream.
type FrameMsg struct {
	Index     int
	Bitstream []byte
	SentNanos int64 // agent clock, echoed back for RTT measurement
	TraceID   uint64
	SpanID    uint64 // the agent-side parent span of the server's work
}

// WireDetection is a transport-friendly detection.
type WireDetection struct {
	Class                  int
	MinX, MinY, MaxX, MaxY int
	Score                  float64
}

// ResultMsg returns the detections for one frame, or a NACK. TraceID echoes
// the FrameMsg trace so the agent can attribute the ack to its frame trace.
// NeedKeyframe asks the agent to intra-code its next frame: the server
// decoder lost sync (corrupt message, frame gap, failed decode or a fresh
// resume). Index is -1 on session-level messages (handshake ack, corrupt
// NACKs whose frame index is unknown).
type ResultMsg struct {
	Index        int
	Detections   []WireDetection
	SentNanos    int64 // echoed from FrameMsg
	ServerMs     float64
	Err          string
	TraceID      uint64
	NeedKeyframe bool
}

// ToWire converts detections for transport.
func ToWire(dets []detect.Detection) []WireDetection {
	out := make([]WireDetection, 0, len(dets))
	for _, d := range dets {
		out = append(out, WireDetection{
			Class: int(d.Class),
			MinX:  d.Box.MinX, MinY: d.Box.MinY,
			MaxX: d.Box.MaxX, MaxY: d.Box.MaxY,
			Score: d.Score,
		})
	}
	return out
}

// FromWire converts transported detections back.
func FromWire(ws []WireDetection) []detect.Detection {
	out := make([]detect.Detection, 0, len(ws))
	for _, w := range ws {
		out = append(out, detect.Detection{
			Class: world.Class(w.Class),
			Box: imgx.Rect{
				MinX: w.MinX, MinY: w.MinY,
				MaxX: w.MaxX, MaxY: w.MaxY,
			},
			Score: w.Score,
		})
	}
	return out
}

// ProbeProfile is the reserved Hello profile of cluster health probes: the
// server acks the handshake and closes without creating session state.
const ProbeProfile = "probe"

// profileByName resolves a Hello profile.
func profileByName(name string) (world.Profile, error) {
	switch name {
	case "nuScenes":
		return world.NuScenesLike(), nil
	case "RobotCar":
		return world.RobotCarLike(), nil
	case "KITTI":
		return world.KITTILike(), nil
	default:
		return world.Profile{}, fmt.Errorf("edge: unknown profile %q", name)
	}
}

// clipKey identifies a rendered reference clip.
type clipKey struct {
	profile  string
	seed     int64
	duration float64
}

// clipCacheCap bounds the session clip cache; reconnect storms re-use the
// clip instead of re-rendering it per attempt.
const clipCacheCap = 8

// Server serves DiVE analytics sessions over TCP.
type Server struct {
	Detector *detect.Detector
	// Logf receives progress lines; nil silences the server.
	Logf func(format string, args ...interface{})
	// Obs receives server telemetry: session/frame/byte counters and
	// decode + detect latency histograms. Nil disables instrumentation.
	Obs *obs.Recorder
	// ReadTimeout bounds the silence between messages on a session; a
	// client that goes quiet longer is dropped (default 60s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each result write (default 10s).
	WriteTimeout time.Duration
	// SessionLabelCap bounds the distinct per-session label values this
	// server mints (0 selects obs.DefaultMaxLabelValues). Sessions beyond
	// the cap have their series folded by profile (not profile-seed), so a
	// fleet of hundreds of agents keeps per-profile attribution instead of
	// collapsing into one _overflow series; every folded session increments
	// obs.MetricLabelOverflow. When raising this above the default, raise
	// the registry's per-family bound too (Registry.SetMaxLabelValues)
	// before the first session, or the families fold at their own cap.
	SessionLabelCap int

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]*connState
	draining bool
	wg       sync.WaitGroup

	labelMu       sync.Mutex
	sessionLabels map[string]struct{}

	clipMu    sync.Mutex
	clips     map[clipKey]*world.Clip
	clipOrder []clipKey
}

// connState is the per-connection state shared between the handler
// goroutine and control-plane writers (RedirectSessions): the write mutex
// keeps a Redirect from interleaving bytes with an in-flight result frame.
type connState struct {
	wmu sync.Mutex
}

// NewServer builds a server with the default detector calibration.
func NewServer() *Server {
	return &Server{Detector: detect.New(detect.DefaultConfig())}
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) readTimeout() time.Duration {
	if s.ReadTimeout > 0 {
		return s.ReadTimeout
	}
	return 60 * time.Second
}

func (s *Server) writeTimeout() time.Duration {
	if s.WriteTimeout > 0 {
		return s.WriteTimeout
	}
	return 10 * time.Second
}

// clipFor renders (or returns the cached) reference clip for a session.
func (s *Server) clipFor(profile world.Profile, name string, seed int64) *world.Clip {
	key := clipKey{profile: name, seed: seed, duration: profile.ClipDuration}
	s.clipMu.Lock()
	if s.clips == nil {
		s.clips = make(map[clipKey]*world.Clip)
	}
	if clip, ok := s.clips[key]; ok {
		s.clipMu.Unlock()
		return clip
	}
	s.clipMu.Unlock()
	clip := world.GenerateClip(profile, seed)
	s.clipMu.Lock()
	defer s.clipMu.Unlock()
	if cached, ok := s.clips[key]; ok {
		return cached
	}
	if len(s.clipOrder) >= clipCacheCap {
		oldest := s.clipOrder[0]
		s.clipOrder = s.clipOrder[1:]
		delete(s.clips, oldest)
	}
	s.clips[key] = clip
	s.clipOrder = append(s.clipOrder, key)
	return clip
}

// Listen binds the address and returns the bound address (useful with
// ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.draining = false
	if s.conns == nil {
		s.conns = make(map[net.Conn]*connState)
	}
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts sessions until Close or Shutdown. Each connection is handled
// on its own goroutine; Serve returns after the listener closes and all
// handlers exit.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("edge: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			if isClosed(err) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				s.wg.Done()
			}()
			if err := s.handle(conn, st); err != nil && err != io.EOF {
				s.logf("session error: %v", err)
			}
		}()
	}
}

// Close stops the listener immediately; active sessions are left to finish
// on their own. Use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	err := s.ln.Close()
	s.ln = nil
	return err
}

// Shutdown drains the server: it stops accepting sessions, lets active
// handlers finish their in-flight frame and exit cleanly within grace, then
// force-closes whatever remains. Always returns after at most ~grace.
func (s *Server) Shutdown(grace time.Duration) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.ln = nil
	// Wake blocked readers: their next read fails after the deadline, and
	// the handler exits cleanly because draining is set.
	deadline := time.Now().Add(grace)
	for conn := range s.conns {
		conn.SetReadDeadline(deadline)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace + 500*time.Millisecond):
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// SessionCount returns the number of active connections.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// RedirectSessions asks every active session to move to target — the
// planned-migration drain hook a balancer calls before taking a member out
// of rotation. Each connection gets one Redirect frame (serialized with the
// handler's result writes by the per-connection write mutex); the client
// closes the connection itself once it has re-established at the target.
// Returns the number of redirects written.
func (s *Server) RedirectSessions(target, reason string) int {
	s.mu.Lock()
	conns := make(map[net.Conn]*connState, len(s.conns))
	for conn, st := range s.conns {
		conns[conn] = st
	}
	s.mu.Unlock()
	n := 0
	for conn, st := range conns {
		st.wmu.Lock()
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		err := WriteRedirect(conn, Redirect{Addr: target, Reason: reason})
		st.wmu.Unlock()
		if err != nil {
			s.logf("redirect write failed: %v", err)
			continue
		}
		n++
		s.Obs.Counter(obs.MetricEdgeRedirectsSent).Inc()
	}
	if n > 0 {
		s.logf("redirected %d session(s) to %s (%s)", n, target, reason)
	}
	return n
}

// Kill stops the server abruptly: the listener and every active connection
// are closed with no drain and no redirect — the chaos "member died"
// primitive. Safe to call more than once.
func (s *Server) Kill() {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	s.draining = true
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, conn := range conns {
		conn.Close()
	}
	s.wg.Wait()
}

func isClosed(err error) bool {
	var opErr *net.OpError
	if ok := asOpError(err, &opErr); ok {
		return opErr.Err.Error() == "use of closed network connection"
	}
	return false
}

func asOpError(err error, target **net.OpError) bool {
	for err != nil {
		if op, ok := err.(*net.OpError); ok {
			*target = op
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// sessionLabelFor returns the metric label for a session: profile-seed
// while the server has label budget, the bare profile once SessionLabelCap
// distinct sessions exist (folded profile labels live outside the budget,
// so cardinality stays at cap + number of profiles). A session that already
// holds a label keeps it across reconnects. Folds are counted on
// obs.MetricLabelOverflow so the collapse is visible on /metrics.
func (s *Server) sessionLabelFor(profile string, seed int64) string {
	full := fmt.Sprintf("%s-%d", profile, seed)
	limit := s.SessionLabelCap
	if limit <= 0 {
		limit = obs.DefaultMaxLabelValues
	}
	s.labelMu.Lock()
	defer s.labelMu.Unlock()
	if s.sessionLabels == nil {
		s.sessionLabels = make(map[string]struct{})
	}
	if _, ok := s.sessionLabels[full]; ok {
		return full
	}
	if len(s.sessionLabels) < limit {
		s.sessionLabels[full] = struct{}{}
		return full
	}
	s.Obs.Counter(obs.MetricLabelOverflow).Inc()
	return profile
}

// handle runs one session.
func (s *Server) handle(conn net.Conn, st *connState) error {
	defer conn.Close()
	mr := NewMsgReader(conn)

	writeResult := func(res *ResultMsg) error {
		st.wmu.Lock()
		defer st.wmu.Unlock()
		conn.SetWriteDeadline(time.Now().Add(s.writeTimeout()))
		return WriteResult(conn, res)
	}

	conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
	typ, payload, err := mr.Next()
	if err != nil {
		return fmt.Errorf("edge: handshake: %w", err)
	}
	if typ != MsgHello {
		writeResult(&ResultMsg{Index: -1, Err: "expected hello"})
		return fmt.Errorf("edge: handshake: got message type %d", typ)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		writeResult(&ResultMsg{Index: -1, Err: err.Error()})
		return fmt.Errorf("edge: handshake: %w", err)
	}
	if hello.Profile == ProbeProfile {
		// Health probe: a full accept→handshake→write round trip proves the
		// member is alive end to end, without touching session metrics or
		// rendering a clip. Answer and hang up.
		writeResult(&ResultMsg{Index: -1})
		return nil
	}
	s.Obs.Counter(obs.MetricEdgeSessions).Inc()
	// Per-session labeled series on top of the process-wide globals. The
	// session identity is profile-seed — the same clip identity the agent
	// uses — so a resumed session continues its own series and the agent's
	// and server's views of one stream join on the label. Beyond
	// SessionLabelCap distinct sessions the label folds to the profile name
	// (see sessionLabelFor). All handles are nil (hence no-op) when
	// telemetry is disabled.
	session := s.sessionLabelFor(hello.Profile, hello.Seed)
	sessFrames := s.Obs.LabeledCounter(obs.MetricEdgeSessionFrames, obs.SessionLabel).With(session)
	sessBytes := s.Obs.LabeledCounter(obs.MetricEdgeSessionBytes, obs.SessionLabel).With(session)
	sessNacks := s.Obs.LabeledCounter(obs.MetricEdgeSessionNacks, obs.SessionLabel).With(session)
	sessDecode := s.Obs.LabeledHistogram(obs.StageEdgeSessionDecode, obs.SessionLabel).With(session)
	sessDetect := s.Obs.LabeledHistogram(obs.StageEdgeSessionDetect, obs.SessionLabel).With(session)
	profile, err := profileByName(hello.Profile)
	if err != nil {
		writeResult(&ResultMsg{Index: -1, Err: err.Error()})
		return err
	}
	if hello.Duration > 0 {
		profile.ClipDuration = hello.Duration
	}
	if hello.Resume {
		s.Obs.Counter(obs.MetricEdgeResumes).Inc()
		s.logf("session resume: profile=%s seed=%d from frame %d",
			hello.Profile, hello.Seed, hello.FirstFrame)
	} else {
		s.logf("session: profile=%s seed=%d dur=%.1fs — rendering reference clip",
			hello.Profile, hello.Seed, profile.ClipDuration)
	}
	clip := s.clipFor(profile, hello.Profile, hello.Seed)
	if hello.FirstFrame >= clip.NumFrames() {
		msg := fmt.Sprintf("resume frame %d beyond clip end %d", hello.FirstFrame, clip.NumFrames())
		writeResult(&ResultMsg{Index: -1, Err: msg})
		return fmt.Errorf("edge: %s", msg)
	}
	vdec, err := codec.NewDecoder(codec.DefaultConfig(clip.W, clip.H))
	if err != nil {
		return err
	}
	// Acknowledge the handshake so the client knows the session (and a
	// resume in particular) was accepted before it starts streaming.
	if err := writeResult(&ResultMsg{Index: -1, NeedKeyframe: true}); err != nil {
		return fmt.Errorf("edge: handshake ack: %w", err)
	}

	// needKey tracks decoder sync: set after a resume, a corrupt or
	// malformed message, a frame-index gap or a decode failure; cleared
	// when an intra frame lands. While set, P-frames are NACKed without
	// touching the decoder.
	needKey := true
	expect := hello.FirstFrame

	for {
		conn.SetReadDeadline(time.Now().Add(s.readTimeout()))
		typ, payload, err := mr.Next()
		if err != nil {
			switch {
			case err == io.EOF:
				return nil
			case IsRecoverable(err):
				// One damaged message: NACK with a keyframe request —
				// a frame may have been lost inside the garbage.
				s.Obs.Counter(obs.MetricEdgeCorrupt).Inc()
				s.Obs.Counter(obs.MetricEdgeNacks).Inc()
				sessNacks.Inc()
				needKey = true
				if werr := writeResult(&ResultMsg{Index: -1, Err: "corrupt message: " + err.Error(), NeedKeyframe: true}); werr != nil {
					return fmt.Errorf("edge: write nack: %w", werr)
				}
				continue
			case isTimeout(err):
				if s.Draining() {
					return nil
				}
				return fmt.Errorf("edge: session idle past %v: %w", s.readTimeout(), err)
			default:
				return fmt.Errorf("edge: read frame: %w", err)
			}
		}
		if typ != MsgFrame {
			s.Obs.Counter(obs.MetricEdgeNacks).Inc()
			sessNacks.Inc()
			if werr := writeResult(&ResultMsg{Index: -1, Err: fmt.Sprintf("unexpected message type %d", typ)}); werr != nil {
				return fmt.Errorf("edge: write nack: %w", werr)
			}
			continue
		}
		fm, err := DecodeFrameMsg(payload)
		if err != nil {
			s.Obs.Counter(obs.MetricEdgeCorrupt).Inc()
			s.Obs.Counter(obs.MetricEdgeNacks).Inc()
			sessNacks.Inc()
			needKey = true
			if werr := writeResult(&ResultMsg{Index: -1, Err: "malformed frame: " + err.Error(), NeedKeyframe: true}); werr != nil {
				return fmt.Errorf("edge: write nack: %w", werr)
			}
			continue
		}

		t0 := time.Now()
		res := ResultMsg{Index: fm.Index, SentNanos: fm.SentNanos, TraceID: fm.TraceID}
		// Rehydrate the agent-minted trace context: decode/detect spans
		// recorded under it stitch into the agent's frame trace by ID.
		ctx := obs.TraceContext{TraceID: fm.TraceID, Frame: fm.Index, SpanID: fm.SpanID}
		s.Obs.Counter(obs.MetricEdgeFrames).Inc()
		s.Obs.Counter(obs.MetricEdgeBytes).Add(int64(len(fm.Bitstream)))
		sessFrames.Inc()
		sessBytes.Add(int64(len(fm.Bitstream)))
		switch {
		case fm.Index < 0 || fm.Index >= clip.NumFrames():
			res.Err = fmt.Sprintf("frame index %d out of range", fm.Index)
		case fm.Index != expect:
			// The agent skipped frames (outage, frame-skip degradation).
			// The decoder reference is stale; require an intra frame.
			needKey = true
			fallthrough
		default:
			ftype, serr := codec.SniffFrameType(fm.Bitstream)
			switch {
			case serr != nil:
				res.Err = "unreadable bitstream: " + serr.Error()
				res.NeedKeyframe = true
				needKey = true
				s.Obs.Counter(obs.MetricEdgeNacks).Inc()
				sessNacks.Inc()
			case needKey && ftype != codec.IFrame:
				// Desynced and the frame is predicted: decoding it against
				// the stale reference would silently corrupt every frame
				// until the next GoP. NACK instead.
				res.Err = "decoder desynchronized"
				res.NeedKeyframe = true
				s.Obs.Counter(obs.MetricEdgeNacks).Inc()
				sessNacks.Inc()
			default:
				decodeSpan := s.Obs.StartStageSpan(ctx, "decode", "edge", obs.StageEdgeDecode)
				decT0 := time.Now()
				df, derr := vdec.Decode(fm.Bitstream)
				sessDecode.Observe(time.Since(decT0).Seconds())
				decodeSpan.End()
				if derr != nil {
					res.Err = derr.Error()
					res.NeedKeyframe = true
					needKey = true
					s.Obs.Counter(obs.MetricEdgeNacks).Inc()
					sessNacks.Inc()
				} else {
					needKey = false
					expect = fm.Index + 1
					detectSpan := s.Obs.StartStageSpan(ctx, "detect", "edge", obs.StageEdgeDetect)
					detT0 := time.Now()
					dets := s.Detector.Detect(df.Image, clip.Frames[fm.Index], clip.GT[fm.Index], hello.Seed^int64(fm.Index*7919))
					sessDetect.Observe(time.Since(detT0).Seconds())
					detectSpan.End()
					res.Detections = ToWire(dets)
				}
			}
		}
		res.ServerMs = time.Since(t0).Seconds() * 1000
		// Server-side SLO view of this session: per-frame processing time
		// (decode + detect + framing); foreground share is agent-side only.
		s.Obs.ObserveSLO(session, obs.SLOSample{LatencySec: time.Since(t0).Seconds(), FGShare: -1})
		ackSpan := s.Obs.StartSpan(ctx, "ack", "edge")
		err = writeResult(&res)
		ackSpan.End()
		if err != nil {
			return fmt.Errorf("edge: write result: %w", err)
		}
	}
}
