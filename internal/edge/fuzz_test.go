package edge

import (
	"bytes"
	"io"
	"testing"
)

// The decoders are the trust boundary of the live link: every byte arriving
// from the network flows through DecodeHello / DecodeFrameMsg /
// DecodeResultMsg and the MsgReader framing loop. The fuzz targets assert
// the robustness contract: arbitrary input may be rejected with a typed
// error but must never panic, hang, or over-allocate — and anything that
// decodes cleanly must re-encode to a semantically identical message.

func FuzzHello(f *testing.F) {
	f.Add(EncodeHello(Hello{Profile: "nuScenes", Seed: 42, Duration: 8}))
	f.Add(EncodeHello(Hello{Profile: "KITTI", Seed: -1, Duration: 0.25, Resume: true, FirstFrame: 7}))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHello(data)
		if err != nil {
			if !IsRecoverable(err) {
				t.Fatalf("decode error is not a typed wire error: %v", err)
			}
			return
		}
		// Decoded OK: the struct must satisfy the documented invariants and
		// re-encode losslessly.
		if h.Duration < 0 || h.Duration > 3600 || h.FirstFrame < 0 || h.FirstFrame > maxFrameIndex {
			t.Fatalf("decoded hello violates invariants: %+v", h)
		}
		h2, err := DecodeHello(EncodeHello(h))
		if err != nil {
			t.Fatalf("re-decode of re-encoded hello failed: %v", err)
		}
		if h2 != h {
			t.Fatalf("hello not stable under re-encode: %+v vs %+v", h, h2)
		}
	})
}

func FuzzFrameMsg(f *testing.F) {
	f.Add(EncodeFrameMsg(&FrameMsg{Index: 0, Bitstream: []byte{1, 2, 3}}))
	f.Add(EncodeFrameMsg(&FrameMsg{Index: 9, SentNanos: 1, TraceID: 2, SpanID: 3}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeFrameMsg(data)
		if err != nil {
			if !IsRecoverable(err) {
				t.Fatalf("decode error is not a typed wire error: %v", err)
			}
			return
		}
		if m.Index < 0 || m.Index > maxFrameIndex {
			t.Fatalf("decoded frame index out of range: %d", m.Index)
		}
		m2, err := DecodeFrameMsg(EncodeFrameMsg(&m))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Index != m.Index || m2.SentNanos != m.SentNanos ||
			m2.TraceID != m.TraceID || m2.SpanID != m.SpanID ||
			!bytes.Equal(m2.Bitstream, m.Bitstream) {
			t.Fatalf("frame not stable under re-encode")
		}
	})
}

func FuzzResultMsg(f *testing.F) {
	f.Add(EncodeResultMsg(&ResultMsg{Index: 1, Detections: []WireDetection{{Class: 1, Score: 0.5}}}))
	f.Add(EncodeResultMsg(&ResultMsg{Index: -1, Err: "nack", NeedKeyframe: true}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeResultMsg(data)
		if err != nil {
			if !IsRecoverable(err) {
				t.Fatalf("decode error is not a typed wire error: %v", err)
			}
			return
		}
		if m.Index < -1 || m.Index > maxFrameIndex || len(m.Detections) > maxDetections {
			t.Fatalf("decoded result violates invariants: %+v", m)
		}
	})
}

func FuzzRedirectMsg(f *testing.F) {
	f.Add(EncodeRedirect(Redirect{Addr: "127.0.0.1:7061", Reason: "drain"}))
	f.Add(EncodeRedirect(Redirect{Addr: "edge-2:9000", Reason: ""}))
	// Malformed shapes the client must reject, never dial: empty addr,
	// truncated strings, oversized length claims, wrong version.
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0, 0}) // version + empty addr
	f.Add([]byte{1, 0xFF, 0xFF, 'x'})
	f.Add([]byte{2, 0, 1, 'a', 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := DecodeRedirect(data)
		if err != nil {
			if !IsRecoverable(err) {
				t.Fatalf("decode error is not a typed wire error: %v", err)
			}
			return
		}
		// Decoded OK: the documented invariants hold and the message is
		// stable under re-encode.
		if rd.Addr == "" {
			t.Fatalf("decoder accepted a redirect with empty address")
		}
		if len(rd.Addr) > maxStringLen || len(rd.Reason) > maxStringLen {
			t.Fatalf("decoded redirect exceeds string cap: %+v", rd)
		}
		rd2, err := DecodeRedirect(EncodeRedirect(rd))
		if err != nil {
			t.Fatalf("re-decode of re-encoded redirect failed: %v", err)
		}
		if rd2 != rd {
			t.Fatalf("redirect not stable under re-encode: %+v vs %+v", rd, rd2)
		}
	})
}

// FuzzMsgReader feeds arbitrary byte streams through the framing loop the
// server runs on every connection: it must terminate (EOF or error) without
// panicking, and any payload it yields must be safe to hand to the decoders.
func FuzzMsgReader(f *testing.F) {
	var seed bytes.Buffer
	WriteHello(&seed, Hello{Profile: "nuScenes", Seed: 1, Duration: 1})
	WriteFrame(&seed, &FrameMsg{Index: 0, Bitstream: []byte{5, 6}})
	WriteRedirect(&seed, Redirect{Addr: "127.0.0.1:1", Reason: "drain"})
	f.Add(seed.Bytes())
	f.Add([]byte("Dv"))
	f.Add([]byte{'D', 'v', MsgFrame, 0, 0, 0, 2, 1, 2, 0, 0, 0, 0})
	f.Add([]byte{'D', 'D', 'v', 'D'})
	f.Fuzz(func(t *testing.T, data []byte) {
		mr := NewMsgReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ { // bounded: each Next consumes ≥1 byte or errors
			typ, payload, err := mr.Next()
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return
			}
			if err != nil {
				if !IsRecoverable(err) {
					t.Fatalf("unexpected error class: %v", err)
				}
				continue
			}
			switch typ {
			case MsgHello:
				DecodeHello(payload)
			case MsgFrame:
				DecodeFrameMsg(payload)
			case MsgResult:
				DecodeResultMsg(payload)
			case MsgRedirect:
				DecodeRedirect(payload)
			default:
				t.Fatalf("reader yielded unknown type %d", typ)
			}
		}
	})
}
