package doctor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"dive/internal/obs"
)

// GC-pressure diagnosis: a long-running agent whose encode path leaks (or
// merely churns) heap shows up as a live-heap ramp and a fattening GC pause
// tail long before it OOMs or misses frame deadlines. The detector consumes
// a time-ordered series of obs.RuntimeStats snapshots — sampled from
// /debug/runtime by divedoctor, or exported as JSONL by a soak harness — and
// fires on two pathologies:
//
//   - gc-heap-growth: the live heap grew by more than HeapGrowthRatio over
//     the window AND the growth is sustained (at least HeapGrowthFrac of
//     the steps increase), which separates a leak/churn ramp from a single
//     benign allocation burst that the next GC returns.
//   - gc-pause-p99: the GC stop-the-world pause p99 exceeded
//     GCPauseP99CeilSec in any snapshot. On a 30 fps agent the frame budget
//     is 33 ms; a pause tail in the tens of milliseconds is a co-tenant the
//     rate controller cannot see.

// ReadRuntimeSamples decodes a JSONL stream of RuntimeStats snapshots.
func ReadRuntimeSamples(r io.Reader) ([]obs.RuntimeStats, error) {
	var out []obs.RuntimeStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var st obs.RuntimeStats
		if err := json.Unmarshal(line, &st); err != nil {
			return nil, fmt.Errorf("doctor: parse runtime sample %d: %w", len(out), err)
		}
		out = append(out, st)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AnalyzeRuntime diagnoses GC pressure from a time-ordered series of runtime
// snapshots. Fewer than HeapGrowthMinSamples snapshots skips the heap-growth
// check (the pause check needs only one).
func AnalyzeRuntime(samples []obs.RuntimeStats, th Thresholds) []Finding {
	th = th.withDefaults()
	var out []Finding
	if f := heapGrowthFinding(samples, th); f != nil {
		out = append(out, *f)
	}
	if f := gcPauseFinding(samples, th); f != nil {
		out = append(out, *f)
	}
	return out
}

func heapGrowthFinding(samples []obs.RuntimeStats, th Thresholds) *Finding {
	if len(samples) < th.HeapGrowthMinSamples {
		return nil
	}
	first, last := samples[0].HeapLiveBytes, samples[len(samples)-1].HeapLiveBytes
	if first == 0 {
		return nil
	}
	ratio := float64(last) / float64(first)
	if ratio <= th.HeapGrowthRatio {
		return nil
	}
	// Sustained means the ramp is made of many small increases, not one
	// spike: count the fraction of steps that grow.
	up := 0
	for i := 1; i < len(samples); i++ {
		if samples[i].HeapLiveBytes > samples[i-1].HeapLiveBytes {
			up++
		}
	}
	frac := float64(up) / float64(len(samples)-1)
	if frac < th.HeapGrowthFrac {
		return nil
	}
	return &Finding{
		Check: "gc-heap-growth", Severity: Fail,
		Value: ratio, Threshold: th.HeapGrowthRatio,
		Message: fmt.Sprintf(
			"live heap grew %.2fx over %d samples (%.1f MB → %.1f MB, %.0f%% of steps increasing) — allocation churn or a leak on the steady-state path",
			ratio, len(samples), float64(first)/1e6, float64(last)/1e6, frac*100),
	}
}

func gcPauseFinding(samples []obs.RuntimeStats, th Thresholds) *Finding {
	worst, at := 0.0, -1
	for i, s := range samples {
		if s.GCPauseP99Sec > worst {
			worst, at = s.GCPauseP99Sec, i
		}
	}
	if at < 0 || worst <= th.GCPauseP99CeilSec {
		return nil
	}
	return &Finding{
		Check: "gc-pause-p99", Severity: Fail,
		Value: worst, Threshold: th.GCPauseP99CeilSec,
		Message: fmt.Sprintf(
			"GC pause p99 reached %.1f ms (sample %d of %d), over the %.1f ms ceiling — the collector is stealing frame budget",
			worst*1000, at, len(samples), th.GCPauseP99CeilSec*1000),
	}
}
