package doctor

import (
	"testing"

	"dive/internal/core"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/sim"
	"dive/internal/world"
)

// runDiVE runs the real pipeline over the given link trace with telemetry on
// and returns the recorder holding journal + spans.
func runDiVE(t *testing.T, trace netsim.Trace, dur float64) *obs.Recorder {
	t.Helper()
	profile := world.NuScenesLike()
	profile.ClipDuration = dur
	clip := world.GenerateClip(profile, 31)
	rec := obs.NewRecorder(clip.NumFrames())
	link := netsim.NewLink(trace, 0.012)
	link.Obs = rec
	scheme := &sim.DiVE{ConfigFn: func(cfg *core.AgentConfig) { cfg.Obs = rec }}
	if _, err := scheme.Run(clip, link, sim.NewEnv(9)); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestHealthyRunZeroFindings is the false-positive guard: the default
// pipeline over a steady, adequate link must diagnose clean.
func TestHealthyRunZeroFindings(t *testing.T) {
	rec := runDiVE(t, netsim.ConstantTrace(netsim.Mbps(3)), 2.5)
	rep := Analyze(rec.Journal().Snapshot(), rec.Spans().Snapshot(), Thresholds{})
	if !rep.Healthy() {
		t.Fatalf("healthy run produced findings: %+v", rep.Findings)
	}
	if len(rep.Checks) < 4 {
		t.Errorf("only %d checks ran: %v", len(rep.Checks), rep.Checks)
	}
	if rep.Frames == 0 {
		t.Error("report saw no journal frames")
	}
}

// TestSeededOutageDriftDetected injects a long hard outage through the real
// simulator: the head-of-queue timer fires frame after frame, local MOT
// carries the boxes, and the doctor must call the drift out.
func TestSeededOutageDriftDetected(t *testing.T) {
	rec := runDiVE(t, &netsim.OutageTrace{
		Inner: netsim.ConstantTrace(netsim.Mbps(2)),
		Start: 0.8, Interval: 10, Duration: 1.5,
	}, 3)
	journal := rec.Journal().Snapshot()
	rep := Analyze(journal, rec.Spans().Snapshot(), Thresholds{})
	if !hasCheck(rep, "outage-drift") {
		t.Fatalf("outage drift not flagged; findings: %+v", rep.Findings)
	}
	// The journal must actually show the outage mechanics the finding is
	// built on.
	outages := 0
	for _, j := range journal {
		if j.Outage {
			outages++
			if j.QueueDelaySec <= 0 {
				t.Errorf("frame %d journaled outage without a queue delay", j.Frame)
			}
		}
	}
	if outages < DefaultThresholds().OutageRun {
		t.Fatalf("only %d outage frames journaled", outages)
	}
}

// TestSeededQPOscillationDetected seeds the journal of a rate controller
// caught in an estimate/response feedback loop: the base QP swings hard in
// alternating directions every frame.
func TestSeededQPOscillationDetected(t *testing.T) {
	var journal []obs.JournalRecord
	qps := []int{24, 34, 22, 35, 23, 33, 21, 34, 24}
	for i, qp := range qps {
		journal = append(journal, obs.JournalRecord{Frame: i, BaseQP: qp, Type: "P"})
	}
	rep := Analyze(journal, nil, Thresholds{})
	f, ok := findCheck(rep, "qp-oscillation")
	if !ok {
		t.Fatalf("oscillation not flagged; findings: %+v", rep.Findings)
	}
	if f.FirstFrame != 0 || f.LastFrame != len(qps)-1 {
		t.Errorf("finding anchored at %d–%d, want 0–%d", f.FirstFrame, f.LastFrame, len(qps)-1)
	}

	// A monotone ramp with the same step sizes is adaptation, not
	// oscillation — must stay clean.
	var ramp []obs.JournalRecord
	for i := 0; i < 9; i++ {
		ramp = append(ramp, obs.JournalRecord{Frame: i, BaseQP: 10 + 4*i, Type: "P"})
	}
	if rep := Analyze(ramp, nil, Thresholds{}); hasCheck(rep, "qp-oscillation") {
		t.Errorf("monotone QP ramp misdiagnosed as oscillation")
	}
}

// TestSeededBandwidthBiasDetected seeds a journal whose estimator
// consistently promised twice what the link delivered.
func TestSeededBandwidthBiasDetected(t *testing.T) {
	var journal []obs.JournalRecord
	for i := 0; i < 24; i++ {
		journal = append(journal, obs.JournalRecord{
			Frame: i, BaseQP: 28, Type: "P",
			EstBWBps: 2e6, RealizedBWBps: 1e6,
		})
	}
	rep := Analyze(journal, nil, Thresholds{})
	f, ok := findCheck(rep, "bandwidth-bias")
	if !ok {
		t.Fatalf("bandwidth over-estimation not flagged; findings: %+v", rep.Findings)
	}
	if f.Value < 1.9 || f.Value > 2.1 {
		t.Errorf("measured bias ratio %.2f, want ~2.0", f.Value)
	}

	// An unbiased estimator with the same sample count stays clean.
	for i := range journal {
		journal[i].RealizedBWBps = journal[i].EstBWBps * 1.05
	}
	if rep := Analyze(journal, nil, Thresholds{}); hasCheck(rep, "bandwidth-bias") {
		t.Errorf("unbiased estimator misdiagnosed")
	}

	// Too few acked frames must not trigger: outage-heavy runs would
	// otherwise produce noise findings.
	if rep := Analyze(journal[:4], nil, Thresholds{}); hasCheck(rep, "bandwidth-bias") {
		t.Errorf("bias flagged on %d samples, below the minimum", 4)
	}
}

// TestSeededFGCollapseDetected seeds the turn-collapse signature: moving,
// rotation removal succeeding, yet frame after frame falls back to a stale
// foreground mask.
func TestSeededFGCollapseDetected(t *testing.T) {
	var journal []obs.JournalRecord
	for i := 0; i < 8; i++ {
		journal = append(journal, obs.JournalRecord{
			Frame: i, Type: "P",
			Moving: true, RotOK: true, PhiY: 0.01,
			FGReused: true, FGMBs: 0,
		})
	}
	rep := Analyze(journal, nil, Thresholds{})
	if !hasCheck(rep, "fg-collapse") {
		t.Fatalf("foreground collapse not flagged; findings: %+v", rep.Findings)
	}

	// Stopped frames legitimately reuse the mask — no finding.
	for i := range journal {
		journal[i].Moving = false
		journal[i].RotOK = false
	}
	if rep := Analyze(journal, nil, Thresholds{}); hasCheck(rep, "fg-collapse") {
		t.Errorf("stationary mask reuse misdiagnosed as collapse")
	}
}

func TestLatencyRegressionComparable(t *testing.T) {
	meta := obs.CollectRunMeta(4)
	meta.Profile = "smoke"
	base := &Baseline{Meta: meta, Stages: map[string]obs.HistogramSnapshot{
		obs.StageEncode: {Count: 100, P95: 0.010},
		obs.StageMotion: {Count: 100, P95: 0.004},
	}}
	cur := &Baseline{Meta: meta, Stages: map[string]obs.HistogramSnapshot{
		obs.StageEncode: {Count: 100, P95: 0.025}, // 2.5x
		obs.StageMotion: {Count: 100, P95: 0.004},
	}}
	fs := CompareLatency(cur, base, Thresholds{})
	if len(fs) != 1 || fs[0].Check != "latency-regression" || fs[0].Severity != Fail {
		t.Fatalf("findings = %+v, want one comparable-environment regression", fs)
	}
	if fs[0].Value < 2.4 || fs[0].Value > 2.6 {
		t.Errorf("ratio %.2f, want 2.5", fs[0].Value)
	}
	// Identical run: clean.
	if fs := CompareLatency(base, base, Thresholds{}); len(fs) != 0 {
		t.Errorf("identical run flagged: %+v", fs)
	}
}

func TestLatencyRegressionDifferentMachines(t *testing.T) {
	baseMeta := obs.CollectRunMeta(4)
	baseMeta.Profile = "smoke"
	curMeta := baseMeta
	curMeta.GOMAXPROCS = baseMeta.GOMAXPROCS + 2 // different machine shape
	base := &Baseline{Meta: baseMeta, Stages: map[string]obs.HistogramSnapshot{
		obs.StageEncode:     {Count: 100, P95: 0.010},
		obs.StageMotion:     {Count: 100, P95: 0.005},
		obs.StageForeground: {Count: 100, P95: 0.005},
	}}
	// Uniformly 3x slower (a slower machine, same proportions): clean.
	slower := &Baseline{Meta: curMeta, Stages: map[string]obs.HistogramSnapshot{
		obs.StageEncode:     {Count: 100, P95: 0.030},
		obs.StageMotion:     {Count: 100, P95: 0.015},
		obs.StageForeground: {Count: 100, P95: 0.015},
	}}
	if fs := CompareLatency(slower, base, Thresholds{}); len(fs) != 0 {
		t.Fatalf("uniformly slower machine flagged: %+v", fs)
	}
	// One stage ballooned relative to the rest: flagged as Warn.
	skewed := &Baseline{Meta: curMeta, Stages: map[string]obs.HistogramSnapshot{
		obs.StageEncode:     {Count: 100, P95: 0.090},
		obs.StageMotion:     {Count: 100, P95: 0.005},
		obs.StageForeground: {Count: 100, P95: 0.005},
	}}
	fs := CompareLatency(skewed, base, Thresholds{})
	if len(fs) != 1 || fs[0].Severity != Warn {
		t.Fatalf("findings = %+v, want one share-based warning", fs)
	}
}

func hasCheck(rep *Report, check string) bool {
	_, ok := findCheck(rep, check)
	return ok
}

func findCheck(rep *Report, check string) (Finding, bool) {
	for _, f := range rep.Findings {
		if f.Check == check {
			return f, true
		}
	}
	return Finding{}, false
}
