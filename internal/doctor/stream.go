package doctor

import (
	"fmt"
	"math"

	"dive/internal/obs"
)

// Streaming detectors: every journal pathology check as an incremental
// state machine consuming one JournalRecord at a time. Batch Analyze is a
// thin wrapper that feeds a whole journal through these, so live mode
// (divedoctor -follow, /debug/doctor) and offline mode share one
// implementation and produce identical findings for identical input.
//
// Findings that depend only on a bounded suffix of the stream (runs,
// alternations, windows) are emitted as soon as the run provably ended;
// whole-stream aggregates (bandwidth bias) are emitted at Flush.

// Detector is one incremental pathology check. Observe folds in the next
// journal record (records must arrive in journal order) and returns any
// findings that became final; Flush ends the stream, returning findings
// whose runs were still open. After Flush the detector is reset and may be
// reused for a new stream.
type Detector interface {
	// Name is the check name findings carry (e.g. "qp-oscillation").
	Name() string
	Observe(rec obs.JournalRecord) []Finding
	Flush() []Finding
}

// NewDetectors builds the full journal detector suite in canonical order.
func NewDetectors(th Thresholds) []Detector {
	th = th.withDefaults()
	return []Detector{
		&qpOscillationDetector{th: th},
		&bandwidthBiasDetector{th: th, first: -1, last: -1},
		&fgCollapseDetector{th: th, runStartFrame: -1},
		&outageDriftDetector{th: th, runStartFrame: -1},
		&reconnectStormDetector{th: th},
		&slowRecoveryDetector{th: th, lastFailFrame: -1},
		&migrationGapDetector{th: th},
		&failoverStormDetector{th: th},
	}
}

// qpOscillationDetector finds runs of sign-alternating base-QP swings — the
// signature of a rate controller fighting its own bandwidth feedback (each
// over-sized frame depresses the next estimate, which shrinks the next
// frame, which inflates the estimate again).
type qpOscillationDetector struct {
	th      Thresholds
	started bool
	prev    obs.JournalRecord

	runStartFrame int // first frame of the alternation run, -1 when none
	alternations  int
	lastSign      int
}

func (d *qpOscillationDetector) Name() string { return "qp-oscillation" }

// flushAt closes the current alternation run at endFrame.
func (d *qpOscillationDetector) flushAt(endFrame int) []Finding {
	var out []Finding
	if d.runStartFrame >= 0 && d.alternations >= d.th.QPAlternations {
		out = append(out, Finding{
			Check: d.Name(), Severity: Fail,
			FirstFrame: d.runStartFrame, LastFrame: endFrame,
			Value: float64(d.alternations), Threshold: float64(d.th.QPAlternations),
			Message: fmt.Sprintf(
				"base QP oscillated %d times (swing ≥ %d) between frames %d and %d: rate control is fighting its bandwidth feedback",
				d.alternations, d.th.QPSwing, d.runStartFrame, endFrame),
		})
	}
	d.runStartFrame, d.alternations, d.lastSign = -1, 0, 0
	return out
}

func (d *qpOscillationDetector) Observe(rec obs.JournalRecord) []Finding {
	if !d.started {
		d.started, d.prev = true, rec
		d.runStartFrame = -1
		return nil
	}
	diff := rec.BaseQP - d.prev.BaseQP
	sign := 0
	if diff >= d.th.QPSwing {
		sign = 1
	} else if diff <= -d.th.QPSwing {
		sign = -1
	}
	var out []Finding
	switch {
	case sign == 0:
		out = d.flushAt(d.prev.Frame)
	case d.lastSign == 0 || sign == d.lastSign:
		// First swing of a potential run, or same direction (a trend, not
		// an oscillation) — restart counting from the previous frame.
		if d.lastSign == sign {
			out = d.flushAt(d.prev.Frame)
		}
		d.runStartFrame, d.alternations, d.lastSign = d.prev.Frame, 1, sign
	default:
		// Direction flipped: one more alternation.
		d.alternations++
		d.lastSign = sign
	}
	d.prev = rec
	return out
}

func (d *qpOscillationDetector) Flush() []Finding {
	if !d.started {
		return nil
	}
	out := d.flushAt(d.prev.Frame)
	d.started = false
	return out
}

// bandwidthBiasDetector compares the estimate rate control consumed against
// the bandwidth the link realized for the same frames. A systematic ratio
// away from 1 means the estimator is mis-calibrated — over-estimation shows
// up as queue build-ups and outages, under-estimation as wasted uplink. The
// statistic is a whole-stream geometric mean, so the finding only lands at
// Flush.
type bandwidthBiasDetector struct {
	th     Thresholds
	logSum float64
	n      int
	first  int
	last   int
}

func (d *bandwidthBiasDetector) Name() string { return "bandwidth-bias" }

func (d *bandwidthBiasDetector) Observe(rec obs.JournalRecord) []Finding {
	if rec.EstBWBps <= 0 || rec.RealizedBWBps <= 0 {
		return nil
	}
	d.logSum += math.Log(rec.EstBWBps / rec.RealizedBWBps)
	d.n++
	if d.first < 0 {
		d.first = rec.Frame
	}
	d.last = rec.Frame
	return nil
}

func (d *bandwidthBiasDetector) Flush() []Finding {
	defer func() { d.logSum, d.n, d.first, d.last = 0, 0, -1, -1 }()
	if d.n < d.th.BWMinAcked {
		return nil
	}
	ratio := math.Exp(d.logSum / float64(d.n))
	if ratio > d.th.BWBiasRatio {
		return []Finding{{
			Check: d.Name(), Severity: Fail,
			FirstFrame: d.first, LastFrame: d.last,
			Value: ratio, Threshold: d.th.BWBiasRatio,
			Message: fmt.Sprintf(
				"bandwidth estimator systematically over-estimates: estimate/realized geometric mean %.2f over %d acked frames (limit %.2f)",
				ratio, d.n, d.th.BWBiasRatio),
		}}
	}
	if ratio < 1/d.th.BWBiasRatio {
		return []Finding{{
			Check: d.Name(), Severity: Fail,
			FirstFrame: d.first, LastFrame: d.last,
			Value: ratio, Threshold: 1 / d.th.BWBiasRatio,
			Message: fmt.Sprintf(
				"bandwidth estimator systematically under-estimates: estimate/realized geometric mean %.2f over %d acked frames (limit %.2f)",
				ratio, d.n, 1/d.th.BWBiasRatio),
		}}
	}
	return nil
}

// fgCollapseDetector finds stretches where the agent is moving (and rotation
// removal succeeded, so the flow field was usable) yet foreground extraction
// kept coming back empty and the encoder fell back to a stale mask — the
// failure mode of §III-C when the ground prior or cluster growing collapses
// during sustained turns.
type fgCollapseDetector struct {
	th            Thresholds
	started       bool
	prevFrame     int
	runStartFrame int
	runLen        int
}

func (d *fgCollapseDetector) Name() string { return "fg-collapse" }

func (d *fgCollapseDetector) flushAt(endFrame int) []Finding {
	var out []Finding
	if d.runLen >= d.th.FGCollapseRun {
		out = append(out, Finding{
			Check: d.Name(), Severity: Fail,
			FirstFrame: d.runStartFrame, LastFrame: endFrame,
			Value: float64(d.runLen), Threshold: float64(d.th.FGCollapseRun),
			Message: fmt.Sprintf(
				"foreground segmentation produced nothing fresh for %d consecutive moving frames (%d–%d): encoder is protecting a stale mask",
				d.runLen, d.runStartFrame, endFrame),
		})
	}
	d.runStartFrame, d.runLen = -1, 0
	return out
}

func (d *fgCollapseDetector) Observe(rec obs.JournalRecord) []Finding {
	var out []Finding
	collapsed := rec.Moving && rec.RotOK && (rec.FGReused || rec.FGMBs == 0)
	if collapsed {
		if d.runStartFrame < 0 {
			d.runStartFrame = rec.Frame
		}
		d.runLen++
	} else if d.started {
		out = d.flushAt(d.prevFrame)
	}
	d.started, d.prevFrame = true, rec.Frame
	return out
}

func (d *fgCollapseDetector) Flush() []Finding {
	if !d.started {
		return nil
	}
	out := d.flushAt(d.prevFrame)
	d.started = false
	return out
}

// outageDriftDetector finds long consecutive outage stretches during which
// detections were only advanced by local motion-vector tracking. MV tracking
// is accurate over a handful of frames but drifts beyond that (the paper's
// Figure 13), so a long run means the agent served stale boxes.
type outageDriftDetector struct {
	th            Thresholds
	started       bool
	prevFrame     int
	runStartFrame int
	runLen        int
	boxes         int
}

func (d *outageDriftDetector) Name() string { return "outage-drift" }

func (d *outageDriftDetector) flushAt(endFrame int) []Finding {
	var out []Finding
	if d.runLen >= d.th.OutageRun {
		out = append(out, Finding{
			Check: d.Name(), Severity: Fail,
			FirstFrame: d.runStartFrame, LastFrame: endFrame,
			Value: float64(d.runLen), Threshold: float64(d.th.OutageRun),
			Message: fmt.Sprintf(
				"link outage spanned %d consecutive frames (%d–%d); %d locally tracked boxes had no server correction and have likely drifted",
				d.runLen, d.runStartFrame, endFrame, d.boxes),
		})
	}
	d.runStartFrame, d.runLen, d.boxes = -1, 0, 0
	return out
}

func (d *outageDriftDetector) Observe(rec obs.JournalRecord) []Finding {
	var out []Finding
	if rec.Outage {
		if d.runStartFrame < 0 {
			d.runStartFrame = rec.Frame
		}
		d.runLen++
		d.boxes = rec.TrackedBoxes
	} else if d.started {
		out = d.flushAt(d.prevFrame)
	}
	d.started, d.prevFrame = true, rec.Frame
	return out
}

func (d *outageDriftDetector) Flush() []Finding {
	if !d.started {
		return nil
	}
	out := d.flushAt(d.prevFrame)
	d.started = false
	return out
}

// stormEvent is one pending reconnect-bearing journal record.
type stormEvent struct {
	frame    int
	attempts int
	backoff  float64
}

// reconnectStormDetector finds windows where the client hammered the server
// with reconnect attempts. A storm with healthy per-attempt backoff is Warn
// (a long blackout legitimately accumulates attempts); a storm whose mean
// backoff collapsed below MinMeanBackoffSec is Fail — the backoff schedule
// is not damping the retry rate and the client is DoSing its own edge.
//
// The incremental form keeps the reconnect-bearing records whose window is
// not yet provably complete; a window headed at frame f is decided once a
// record at frame ≥ f+StormWindowFrames arrives (frames are journaled in
// increasing order, so no later record can still fall inside it).
type reconnectStormDetector struct {
	th       Thresholds
	pending  []stormEvent
	maxFrame int
	started  bool
}

func (d *reconnectStormDetector) Name() string { return "reconnect-storm" }

// decideHead evaluates the window headed by pending[0] against the events
// currently known to fall inside it. final marks end-of-stream, where a
// window is decided even though later frames could still have extended it.
func (d *reconnectStormDetector) decideHead(final bool) (Finding, bool, bool) {
	head := d.pending[0]
	if !final && d.maxFrame-head.frame < d.th.StormWindowFrames {
		return Finding{}, false, false // window still open
	}
	attempts, backoff, end := 0, 0.0, head
	for _, ev := range d.pending {
		if ev.frame-head.frame >= d.th.StormWindowFrames {
			break
		}
		attempts += ev.attempts
		backoff += ev.backoff
		end = ev
	}
	if attempts < d.th.StormAttempts {
		// Not a storm from this head; slide to the next candidate.
		d.pending = d.pending[1:]
		return Finding{}, false, true
	}
	mean := backoff / float64(attempts)
	sev := Warn
	msg := fmt.Sprintf(
		"reconnect storm: %d reconnect attempts within %d frames (%d–%d)",
		attempts, d.th.StormWindowFrames, head.frame, end.frame)
	if mean < d.th.MinMeanBackoffSec {
		sev = Fail
		msg += fmt.Sprintf(
			"; mean backoff %.0f ms/attempt (floor %.0f ms) — the backoff schedule is not damping the retry rate",
			mean*1000, d.th.MinMeanBackoffSec*1000)
	}
	f := Finding{
		Check: d.Name(), Severity: sev,
		FirstFrame: head.frame, LastFrame: end.frame,
		Value: float64(attempts), Threshold: float64(d.th.StormAttempts),
		Message: msg,
	}
	// Everything up to the storm's end is consumed so overlapping windows
	// don't re-report the same storm.
	keep := d.pending[:0]
	for _, ev := range d.pending {
		if ev.frame > end.frame {
			keep = append(keep, ev)
		}
	}
	d.pending = keep
	return f, true, true
}

func (d *reconnectStormDetector) Observe(rec obs.JournalRecord) []Finding {
	if !d.started || rec.Frame > d.maxFrame {
		d.maxFrame = rec.Frame
	}
	d.started = true
	if rec.ReconnectAttempts > 0 {
		d.pending = append(d.pending, stormEvent{rec.Frame, rec.ReconnectAttempts, rec.BackoffSec})
	}
	var out []Finding
	for len(d.pending) > 0 {
		f, emitted, decided := d.decideHead(false)
		if !decided {
			break
		}
		if emitted {
			out = append(out, f)
		}
	}
	return out
}

func (d *reconnectStormDetector) Flush() []Finding {
	var out []Finding
	for len(d.pending) > 0 {
		f, emitted, _ := d.decideHead(true)
		if emitted {
			out = append(out, f)
		}
	}
	d.pending, d.maxFrame, d.started = nil, 0, false
	return out
}

// migrationGapDetector grades every session migration the client journaled
// against the re-detection gap budget. A migration always yields a finding —
// the gap is the headline guarantee of the cluster failure model, so CI wants
// it measured and visible even when healthy: Warn when the gap stayed within
// MigrationGapBudgetSec, Fail when the session was blind longer than the
// bound promises.
type migrationGapDetector struct {
	th Thresholds
}

func (d *migrationGapDetector) Name() string { return "migration-gap" }

func (d *migrationGapDetector) Observe(rec obs.JournalRecord) []Finding {
	if !rec.Migrated {
		return nil
	}
	kind := "planned"
	if rec.MigrationForced {
		kind = "forced"
	}
	sev := Warn
	msg := fmt.Sprintf(
		"%s migration to %s re-detected at frame %d after a %.0f ms gap (budget %.0f ms)",
		kind, rec.MigratedTo, rec.Frame, rec.MigrationGapSec*1000, d.th.MigrationGapBudgetSec*1000)
	if rec.MigrationGapSec > d.th.MigrationGapBudgetSec {
		sev = Fail
		msg += " — the session was blind longer than the failure model promises"
	}
	return []Finding{{
		Check: d.Name(), Severity: sev,
		FirstFrame: rec.Frame, LastFrame: rec.Frame,
		Value: rec.MigrationGapSec, Threshold: d.th.MigrationGapBudgetSec,
		Message: msg,
	}}
}

func (d *migrationGapDetector) Flush() []Finding { return nil }

// failoverStormDetector finds sessions ping-ponging between members: a kill
// or drain legitimately migrates a session once, but several migrations
// within a short frame window mean the balancer and the prober disagree about
// who is healthy and the session is paying the re-detection gap over and
// over. Emitted as soon as the count is reached (a window that crossed the
// bar cannot un-cross it); the contributing migrations are consumed so an
// ongoing storm reports once per burst, not once per extra migration.
type failoverStormDetector struct {
	th      Thresholds
	pending []int // frames of recent migrations, increasing
}

func (d *failoverStormDetector) Name() string { return "failover-storm" }

func (d *failoverStormDetector) Observe(rec obs.JournalRecord) []Finding {
	if !rec.Migrated {
		return nil
	}
	d.pending = append(d.pending, rec.Frame)
	for len(d.pending) > 0 && rec.Frame-d.pending[0] >= d.th.FailoverWindowFrames {
		d.pending = d.pending[1:]
	}
	if len(d.pending) < d.th.FailoverMigrations {
		return nil
	}
	f := Finding{
		Check: d.Name(), Severity: Fail,
		FirstFrame: d.pending[0], LastFrame: rec.Frame,
		Value: float64(len(d.pending)), Threshold: float64(d.th.FailoverMigrations),
		Message: fmt.Sprintf(
			"failover storm: session migrated %d times within %d frames (%d–%d) — members are trading the session instead of one of them keeping it",
			len(d.pending), d.th.FailoverWindowFrames, d.pending[0], rec.Frame),
	}
	d.pending = d.pending[:0]
	return []Finding{f}
}

func (d *failoverStormDetector) Flush() []Finding {
	d.pending = nil
	return nil
}

// slowRecoveryDetector grades time-to-recover: once the last failure event
// of an episode (outage, reconnect, NACK) has passed, the degradation ladder
// must climb back to the healthy rung within LadderRecoverFrames frames.
// Staying degraded longer means the hysteresis/dwell tuning is too sticky —
// the agent keeps paying the quality penalty on a link that has healed.
type slowRecoveryDetector struct {
	th            Thresholds
	lastFailFrame int
	reported      bool
}

func (d *slowRecoveryDetector) Name() string { return "slow-recovery" }

func (d *slowRecoveryDetector) Observe(rec obs.JournalRecord) []Finding {
	if rec.Outage || rec.ReconnectAttempts > 0 || rec.NackKeyframe {
		d.lastFailFrame = rec.Frame
		d.reported = false
		return nil
	}
	if d.lastFailFrame < 0 || d.reported {
		return nil
	}
	tail := rec.Frame - d.lastFailFrame
	if rec.DegradeLevel == 0 {
		var out []Finding
		if tail > d.th.LadderRecoverFrames {
			out = append(out, Finding{
				Check: d.Name(), Severity: Fail,
				FirstFrame: d.lastFailFrame, LastFrame: rec.Frame,
				Value: float64(tail), Threshold: float64(d.th.LadderRecoverFrames),
				Message: fmt.Sprintf(
					"degradation ladder took %d frames after the last failure event (frame %d) to return to healthy (limit %d)",
					tail, d.lastFailFrame, d.th.LadderRecoverFrames),
			})
		}
		d.lastFailFrame = -1
		return out
	}
	if tail > d.th.LadderRecoverFrames {
		d.reported = true
		return []Finding{{
			Check: d.Name(), Severity: Fail,
			FirstFrame: d.lastFailFrame, LastFrame: rec.Frame,
			Value: float64(tail), Threshold: float64(d.th.LadderRecoverFrames),
			Message: fmt.Sprintf(
				"degradation ladder stuck at level %d for %d frames after the last failure event (frame %d, limit %d)",
				rec.DegradeLevel, tail, d.lastFailFrame, d.th.LadderRecoverFrames),
		}}
	}
	return nil
}

func (d *slowRecoveryDetector) Flush() []Finding {
	d.lastFailFrame, d.reported = -1, false
	return nil
}
