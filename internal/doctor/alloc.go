package doctor

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Allocation regression gate: `make bench-alloc` runs the steady-state
// encoder benchmarks with -benchmem, and divedoctor compares the measured
// B/op and allocs/op against the committed ci/alloc_baseline.json. The
// pooled encode path is pinned at 0 allocs/op by tests; this gate covers
// the benchmarks' broader view (full rate-controlled GoPs at bench
// resolution) and fails CI when a change reintroduces steady-state churn.

// BenchAlloc is one benchmark's allocation measurement.
type BenchAlloc struct {
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// AllocBaseline is the committed allocation reference: benchmark name
// (GOMAXPROCS suffix stripped) to its known-good measurement.
type AllocBaseline struct {
	Benchmarks map[string]BenchAlloc `json:"benchmarks"`
}

// ReadAllocBaseline decodes a committed alloc baseline file.
func ReadAllocBaseline(r io.Reader) (*AllocBaseline, error) {
	var b AllocBaseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("doctor: parse alloc baseline: %w", err)
	}
	return &b, nil
}

// WriteAllocBaseline encodes the baseline as indented JSON.
func (b *AllocBaseline) WriteAllocBaseline(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseBenchOutput extracts per-benchmark allocation numbers from `go test
// -bench -benchmem` text output. Lines look like
//
//	BenchmarkEncodeSteadyState-8   190   6298294 ns/op   0 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so baselines compare across machine
// shapes; lines without both B/op and allocs/op columns are skipped.
func ParseBenchOutput(r io.Reader) (map[string]BenchAlloc, error) {
	out := map[string]BenchAlloc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var ba BenchAlloc
		haveB, haveA := false, false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				ba.BytesPerOp, haveB = v, true
			case "allocs/op":
				ba.AllocsPerOp, haveA = v, true
			}
		}
		if haveB && haveA {
			out[name] = ba
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CompareAlloc diagnoses allocation regressions of measured benchmarks
// against the committed baseline. allocs/op is compared exactly — it is
// deterministic after warm-up, so any increase over the baseline fails.
// B/op gets AllocBytesSlack multiplicative headroom (plus a small absolute
// floor so a 0-byte baseline is not failed by rounding noise). A baseline
// benchmark missing from the output warns: the gate silently weakening is
// itself a finding.
func CompareAlloc(cur map[string]BenchAlloc, base *AllocBaseline, th Thresholds) []Finding {
	th = th.withDefaults()
	if base == nil || len(base.Benchmarks) == 0 {
		return nil
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		bl := base.Benchmarks[name]
		got, ok := cur[name]
		if !ok {
			out = append(out, Finding{
				Check: "alloc-regression", Severity: Warn,
				Message: fmt.Sprintf("baseline benchmark %s missing from bench output — the alloc gate did not cover it", name),
			})
			continue
		}
		if got.AllocsPerOp > bl.AllocsPerOp {
			out = append(out, Finding{
				Check: "alloc-regression", Severity: Fail,
				Value: got.AllocsPerOp, Threshold: bl.AllocsPerOp,
				Message: fmt.Sprintf("%s allocates %.0f allocs/op, baseline %.0f — steady-state churn reintroduced",
					name, got.AllocsPerOp, bl.AllocsPerOp),
			})
		}
		ceil := bl.BytesPerOp*th.AllocBytesSlack + 64
		if got.BytesPerOp > ceil {
			out = append(out, Finding{
				Check: "alloc-regression", Severity: Fail,
				Value: got.BytesPerOp, Threshold: ceil,
				Message: fmt.Sprintf("%s allocates %.0f B/op, over the %.0f B/op ceiling (baseline %.0f × %.2f slack)",
					name, got.BytesPerOp, ceil, bl.BytesPerOp, th.AllocBytesSlack),
			})
		}
	}
	return out
}

// NewAllocBaseline builds a baseline from measured benchmarks, keeping only
// names matching the given prefix ("" keeps all).
func NewAllocBaseline(cur map[string]BenchAlloc, prefix string) *AllocBaseline {
	b := &AllocBaseline{Benchmarks: map[string]BenchAlloc{}}
	for name, ba := range cur {
		if prefix == "" || strings.HasPrefix(name, prefix) {
			b.Benchmarks[name] = ba
		}
	}
	return b
}
