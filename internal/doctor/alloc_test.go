package doctor

import (
	"bytes"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: dive/internal/codec
cpu: AMD EPYC 7B13
BenchmarkEncodeSteadyState-8        	     190	   6298294 ns/op	       0 B/op	       0 allocs/op
BenchmarkEncodeSteadyStateFresh-8   	     178	   6701122 ns/op	   10355 B/op	       3 allocs/op
BenchmarkEncode/w320-8              	      50	  22123456 ns/op
PASS
ok  	dive/internal/codec	5.012s
`

// TestParseBenchOutput pins the -benchmem text format: names lose the
// GOMAXPROCS suffix, B/op and allocs/op are extracted, and lines without
// -benchmem columns are skipped.
func TestParseBenchOutput(t *testing.T) {
	got, err := ParseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(got), got)
	}
	if ba := got["BenchmarkEncodeSteadyState"]; ba.AllocsPerOp != 0 || ba.BytesPerOp != 0 {
		t.Errorf("steady-state = %+v, want 0/0", ba)
	}
	if ba := got["BenchmarkEncodeSteadyStateFresh"]; ba.AllocsPerOp != 3 || ba.BytesPerOp != 10355 {
		t.Errorf("fresh = %+v, want 3 allocs / 10355 B", ba)
	}
}

// TestCompareAllocCleanAndRegressed drives the gate both ways against a
// baseline pinning the pooled benchmark at zero.
func TestCompareAllocCleanAndRegressed(t *testing.T) {
	base := &AllocBaseline{Benchmarks: map[string]BenchAlloc{
		"BenchmarkEncodeSteadyState":      {BytesPerOp: 0, AllocsPerOp: 0},
		"BenchmarkEncodeSteadyStateFresh": {BytesPerOp: 10355, AllocsPerOp: 3},
	}}
	cur, err := ParseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if fs := CompareAlloc(cur, base, Thresholds{}); len(fs) != 0 {
		t.Fatalf("clean run flagged: %+v", fs)
	}

	// One alloc/op on the pooled path regresses the 0 baseline.
	cur["BenchmarkEncodeSteadyState"] = BenchAlloc{BytesPerOp: 384, AllocsPerOp: 1}
	fs := CompareAlloc(cur, base, Thresholds{})
	var allocFail, bytesFail bool
	for _, f := range fs {
		if f.Check != "alloc-regression" || f.Severity != Fail {
			t.Errorf("unexpected finding %+v", f)
		}
		if strings.Contains(f.Message, "allocs/op") {
			allocFail = true
		}
		if strings.Contains(f.Message, "B/op") {
			bytesFail = true
		}
	}
	if !allocFail || !bytesFail {
		t.Fatalf("findings = %+v, want allocs/op and B/op failures", fs)
	}
}

// TestCompareAllocSlackAndMissing: B/op inside the slack window passes, a
// baseline benchmark absent from the output warns.
func TestCompareAllocSlackAndMissing(t *testing.T) {
	base := &AllocBaseline{Benchmarks: map[string]BenchAlloc{
		"BenchmarkEncodeSteadyStateFresh": {BytesPerOp: 10000, AllocsPerOp: 3},
		"BenchmarkGone":                   {BytesPerOp: 1, AllocsPerOp: 1},
	}}
	cur := map[string]BenchAlloc{
		// +20% B/op: inside the default 1.25x slack.
		"BenchmarkEncodeSteadyStateFresh": {BytesPerOp: 12000, AllocsPerOp: 3},
	}
	fs := CompareAlloc(cur, base, Thresholds{})
	if len(fs) != 1 || fs[0].Severity != Warn || !strings.Contains(fs[0].Message, "BenchmarkGone") {
		t.Fatalf("findings = %+v, want one Warn about BenchmarkGone", fs)
	}
}

// TestAllocBaselineRoundTrip writes and re-reads a baseline built from
// parsed output, filtered to the steady-state benchmarks.
func TestAllocBaselineRoundTrip(t *testing.T) {
	cur, err := ParseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := NewAllocBaseline(cur, "BenchmarkEncodeSteadyState")
	if len(b.Benchmarks) != 2 {
		t.Fatalf("baseline kept %d benchmarks, want 2", len(b.Benchmarks))
	}
	var buf bytes.Buffer
	if err := b.WriteAllocBaseline(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllocBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Benchmarks["BenchmarkEncodeSteadyStateFresh"].BytesPerOp != 10355 {
		t.Fatalf("round trip mangled: %+v", got.Benchmarks)
	}
}
