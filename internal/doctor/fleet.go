package doctor

import (
	"fmt"
	"sort"

	"dive/internal/obs"
)

// Fleet detectors: streaming pathology checks over obs.FleetRollup series —
// the aggregation plane's view of a whole fleet, as divefleet emits it and
// /debug/fleet serves it. They mirror the journal Detector shape (Observe
// per rollup, Flush at end of stream) so offline analysis (AnalyzeFleet)
// and live following (divedoctor polling /debug/fleet) share one
// implementation. Fleet findings anchor FirstFrame/LastFrame to rollup
// ticks, not journal frames.

// FleetDetector is one incremental fleet pathology check. Rollups must
// arrive in tick order; Flush ends the stream and resets the detector.
type FleetDetector interface {
	Name() string
	Observe(ru obs.FleetRollup) []Finding
	Flush() []Finding
}

// NewFleetDetectors builds the fleet detector suite in canonical order.
func NewFleetDetectors(th Thresholds) []FleetDetector {
	th = th.withDefaults()
	return []FleetDetector{
		newStragglerSessionDetector(th),
		&noisyNeighborDetector{th: th},
		&fleetBurnDetector{th: th},
	}
}

// AnalyzeFleet diagnoses a recorded rollup series offline (divedoctor
// -fleet). Report.Frames carries the rollup count.
func AnalyzeFleet(rollups []obs.FleetRollup, th Thresholds) *Report {
	rep := &Report{Frames: len(rollups)}
	for _, d := range NewFleetDetectors(th) {
		rep.Checks = append(rep.Checks, d.Name())
		for _, ru := range rollups {
			rep.Findings = append(rep.Findings, d.Observe(ru)...)
		}
		rep.Findings = append(rep.Findings, d.Flush()...)
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].FirstFrame < rep.Findings[j].FirstFrame
	})
	return rep
}

// stragglerSessionDetector promotes a straggler-table entry to a finding
// once the same session has stayed in the table for StragglerTicks
// consecutive rollups — one bad tick is noise (a GC pause, one outage
// window), a sustained streak is a session-level pathology. One finding per
// streak; a session that recovers and regresses starts a new streak.
type stragglerSessionDetector struct {
	th      Thresholds
	streaks map[string]*stragglerStreak
}

type stragglerStreak struct {
	firstTick int
	count     int
	reported  bool
	last      obs.Straggler
}

func newStragglerSessionDetector(th Thresholds) *stragglerSessionDetector {
	return &stragglerSessionDetector{th: th, streaks: make(map[string]*stragglerStreak)}
}

func (d *stragglerSessionDetector) Name() string { return "straggler-session" }

func (d *stragglerSessionDetector) Observe(ru obs.FleetRollup) []Finding {
	var out []Finding
	cur := make(map[string]bool, len(ru.Stragglers))
	for _, s := range ru.Stragglers {
		cur[s.Session] = true
		st := d.streaks[s.Session]
		if st == nil {
			st = &stragglerStreak{firstTick: ru.Tick}
			d.streaks[s.Session] = st
		}
		st.count++
		st.last = s
		if st.count >= d.th.StragglerTicks && !st.reported {
			st.reported = true
			out = append(out, Finding{
				Check: d.Name(), Severity: Fail,
				FirstFrame: st.firstTick, LastFrame: ru.Tick,
				Value: float64(st.count), Threshold: float64(d.th.StragglerTicks),
				Message: fmt.Sprintf(
					"session %s (profile %s) straggled for %d consecutive rollups: %s, %.1f× the fleet (p99 %.0f ms, burn %.1f×)",
					s.Session, s.Profile, st.count, s.Reason, s.Factor,
					s.LatencyP99Sec*1000, s.BurnRate),
			})
		}
	}
	// A tick out of the table ends the streak.
	for session := range d.streaks {
		if !cur[session] {
			delete(d.streaks, session)
		}
	}
	// Deterministic finding order within one rollup.
	sort.Slice(out, func(i, j int) bool { return out[i].Message < out[j].Message })
	return out
}

func (d *stragglerSessionDetector) Flush() []Finding {
	d.streaks = make(map[string]*stragglerStreak)
	return nil
}

// noisyNeighborDetector watches per-session resource cost as the fleet
// grows: live heap per session and GC pause p99 should stay roughly flat
// when sessions scale. Against the first runtime-bearing rollup as
// baseline, once the session count has grown by NoisySessionGrowth×, heap
// per session or GC pause p99 exceeding NoisyGrowthRatio× the baseline
// means co-tenants are amplifying each other's cost — superlinear pressure,
// the noisy-neighbor signature. Runtime-less rollup series (deterministic
// model runs) never fire this check.
type noisyNeighborDetector struct {
	th Thresholds

	baseSessions int
	baseHeapPer  float64
	baseGCPause  float64
	heapReported bool
	gcReported   bool
}

func (d *noisyNeighborDetector) Name() string { return "noisy-neighbor" }

func (d *noisyNeighborDetector) Observe(ru obs.FleetRollup) []Finding {
	if ru.Runtime == nil || ru.Sessions == 0 {
		return nil
	}
	heapPer := float64(ru.Runtime.HeapLiveBytes) / float64(ru.Sessions)
	if d.baseSessions == 0 {
		d.baseSessions = ru.Sessions
		d.baseHeapPer = heapPer
		d.baseGCPause = ru.Runtime.GCPauseP99Sec
		return nil
	}
	growth := float64(ru.Sessions) / float64(d.baseSessions)
	if growth < d.th.NoisySessionGrowth {
		return nil
	}
	var out []Finding
	if !d.heapReported && d.baseHeapPer > 0 {
		if ratio := heapPer / d.baseHeapPer; ratio > d.th.NoisyGrowthRatio {
			d.heapReported = true
			out = append(out, Finding{
				Check: d.Name(), Severity: Warn,
				FirstFrame: 0, LastFrame: ru.Tick,
				Value: ratio, Threshold: d.th.NoisyGrowthRatio,
				Message: fmt.Sprintf(
					"live heap per session grew %.1f× while the fleet grew %d→%d sessions: per-session memory cost is superlinear in fleet size",
					ratio, d.baseSessions, ru.Sessions),
			})
		}
	}
	if !d.gcReported && d.baseGCPause > 0 {
		if ratio := ru.Runtime.GCPauseP99Sec / d.baseGCPause; ratio > d.th.NoisyGrowthRatio {
			d.gcReported = true
			out = append(out, Finding{
				Check: d.Name(), Severity: Warn,
				FirstFrame: 0, LastFrame: ru.Tick,
				Value: ratio, Threshold: d.th.NoisyGrowthRatio,
				Message: fmt.Sprintf(
					"GC pause p99 grew %.1f× (to %.1f ms) while the fleet grew %d→%d sessions: collection pressure is superlinear in fleet size",
					ratio, ru.Runtime.GCPauseP99Sec*1000, d.baseSessions, ru.Sessions),
			})
		}
	}
	return out
}

func (d *noisyNeighborDetector) Flush() []Finding {
	*d = noisyNeighborDetector{th: d.th}
	return nil
}

// fleetBurnDetector fires when the aggregate error budget burns past
// FleetBurnRate for FleetBurnTicks consecutive rollups with an empty
// straggler table — no single session stands out against the fleet median,
// yet the fleet as a whole is violating its SLO. That is diffuse overload
// (an under-provisioned edge, a fleet-wide link event), invisible to any
// per-session view; burn attributable to stragglers is left to
// straggler-session, and burn between 1 and the rate bar is treated as a
// transient budget blip, not overload.
type fleetBurnDetector struct {
	th        Thresholds
	firstTick int
	count     int
	reported  bool
}

func (d *fleetBurnDetector) Name() string { return "fleet-burn" }

func (d *fleetBurnDetector) Observe(ru obs.FleetRollup) []Finding {
	if ru.FleetBurn <= d.th.FleetBurnRate || len(ru.Stragglers) > 0 {
		d.count, d.reported = 0, false
		return nil
	}
	if d.count == 0 {
		d.firstTick = ru.Tick
	}
	d.count++
	if d.count < d.th.FleetBurnTicks || d.reported {
		return nil
	}
	d.reported = true
	return []Finding{{
		Check: d.Name(), Severity: Fail,
		FirstFrame: d.firstTick, LastFrame: ru.Tick,
		Value: ru.FleetBurn, Threshold: d.th.FleetBurnRate,
		Message: fmt.Sprintf(
			"fleet error budget burning at %.1f× for %d consecutive rollups with no straggler standing out (%d/%d sessions unhealthy): diffuse overload, not a per-session fault",
			ru.FleetBurn, d.count, ru.Unhealthy, ru.Sessions),
	}}
}

func (d *fleetBurnDetector) Flush() []Finding {
	d.firstTick, d.count, d.reported = 0, 0, false
	return nil
}

// FleetFollower incrementally diagnoses a live rollup stream, as served by
// /debug/fleet. Feed it overlapping snapshots (oldest-first, ticks
// increasing) via Ingest; the tick cursor consumes each rollup exactly
// once. Rollups are immutable once emitted, so unlike the journal Follower
// there is no settle margin.
type FleetFollower struct {
	dets []FleetDetector

	started  bool
	nextTick int
	rollups  int
}

// NewFleetFollower builds a follower with the given thresholds.
func NewFleetFollower(th Thresholds) *FleetFollower {
	return &FleetFollower{dets: NewFleetDetectors(th)}
}

// Checks returns the fleet detector names in canonical order.
func (f *FleetFollower) Checks() []string {
	out := make([]string, len(f.dets))
	for i, d := range f.dets {
		out[i] = d.Name()
	}
	return out
}

// Rollups returns how many rollups have been consumed.
func (f *FleetFollower) Rollups() int { return f.rollups }

// Ingest consumes the not-yet-seen suffix of a rollup snapshot and returns
// the findings that became final.
func (f *FleetFollower) Ingest(snapshot []obs.FleetRollup) []Finding {
	var out []Finding
	for _, ru := range snapshot {
		if f.started && ru.Tick < f.nextTick {
			continue
		}
		f.started = true
		f.nextTick = ru.Tick + 1
		f.rollups++
		for _, d := range f.dets {
			out = append(out, d.Observe(ru)...)
		}
	}
	return out
}

// Close flushes every detector, returning the remaining findings. The
// follower must not be used afterwards.
func (f *FleetFollower) Close() []Finding {
	var out []Finding
	for _, d := range f.dets {
		out = append(out, d.Flush()...)
	}
	return out
}
