package doctor

import (
	"encoding/json"
	"net/http"
	"sync"

	"dive/internal/obs"
)

// Live following: incremental diagnosis of a journal that is still being
// written. A Follower consumes successive snapshots of the journal ring
// (from /debug/journal polls or the in-process ring itself), feeds the new
// records through the streaming detectors, and surfaces findings as they
// become final — while the run is still going, not after it.

// DefaultSettleFrames is how many of the newest journal frames a follower
// holds back before analysis. Journal records are amended after they are
// appended — transport feedback (acks, realized bandwidth) and outage/MOT
// verdicts land one to a few frames later — so analyzing a record the
// moment it appears would see zeroed amendment fields and mis-diagnose.
const DefaultSettleFrames = 8

// Follower incrementally diagnoses a live journal stream. Feed it journal
// snapshots (oldest-first, frames increasing, as /debug/journal serves
// them) via Ingest; it consumes each frame exactly once, holding back the
// newest settle frames until they have had time to be amended. Not
// goroutine-safe; wrap in Live for a shared HTTP-facing instance.
type Follower struct {
	dets   []Detector
	settle int

	started   bool
	nextFrame int // first frame not yet consumed
	frames    int // frames consumed so far
}

// NewFollower builds a follower with the given thresholds and settle
// margin (negative settle selects DefaultSettleFrames; 0 is valid and
// analyzes every snapshot to its newest frame).
func NewFollower(th Thresholds, settle int) *Follower {
	if settle < 0 {
		settle = DefaultSettleFrames
	}
	return &Follower{dets: NewDetectors(th), settle: settle}
}

// Checks returns the detector names, in canonical order.
func (f *Follower) Checks() []string {
	out := make([]string, len(f.dets))
	for i, d := range f.dets {
		out[i] = d.Name()
	}
	return out
}

// Frames returns how many journal records have been consumed.
func (f *Follower) Frames() int { return f.frames }

// Ingest consumes the not-yet-seen, settled prefix of a journal snapshot
// and returns the findings that became final. Records already consumed
// (frame < the follower's cursor) are skipped, so overlapping snapshots
// are fine; records within the settle margin of the snapshot's newest
// frame are deferred to a later Ingest or Close.
func (f *Follower) Ingest(snapshot []obs.JournalRecord) []Finding {
	if len(snapshot) == 0 {
		return nil
	}
	limit := snapshot[len(snapshot)-1].Frame - f.settle
	var out []Finding
	for _, rec := range snapshot {
		if f.started && rec.Frame < f.nextFrame {
			continue
		}
		if rec.Frame > limit {
			break
		}
		out = append(out, f.observe(rec)...)
	}
	return out
}

func (f *Follower) observe(rec obs.JournalRecord) []Finding {
	f.started = true
	f.nextFrame = rec.Frame + 1
	f.frames++
	var out []Finding
	for _, d := range f.dets {
		out = append(out, d.Observe(rec)...)
	}
	return out
}

// Close consumes the held-back tail of the final snapshot (ignoring the
// settle margin — the stream is over, nothing will amend further) and
// flushes every detector, returning the remaining findings. The follower
// must not be used afterwards.
func (f *Follower) Close(finalSnapshot []obs.JournalRecord) []Finding {
	var out []Finding
	for _, rec := range finalSnapshot {
		if f.started && rec.Frame < f.nextFrame {
			continue
		}
		out = append(out, f.observe(rec)...)
	}
	for _, d := range f.dets {
		out = append(out, d.Flush()...)
	}
	return out
}

// LiveReport is the /debug/doctor document: the live diagnosis so far.
type LiveReport struct {
	Frames   int       `json:"frames"`
	Checks   []string  `json:"checks_run"`
	Findings []Finding `json:"findings"`
}

// maxLiveFindings bounds the findings a Live instance retains (oldest
// dropped first), so a pathological run cannot grow the process.
const maxLiveFindings = 256

// Live is a goroutine-safe follower bound to an in-process journal source,
// serving the current diagnosis at /debug/doctor. Each Poll (or HTTP
// request) ingests whatever the journal has accumulated since the last
// one, so no background goroutine is needed.
type Live struct {
	source func() []obs.JournalRecord

	mu       sync.Mutex
	follower *Follower
	findings []Finding
}

// NewLive builds a live doctor over a journal source (typically
// recorder.Journal().Snapshot). th zero value takes defaults; settle < 0
// selects DefaultSettleFrames.
func NewLive(th Thresholds, settle int, source func() []obs.JournalRecord) *Live {
	return &Live{source: source, follower: NewFollower(th, settle)}
}

// Poll ingests the journal's current snapshot and returns any findings
// that became final on this poll.
func (l *Live) Poll() []Finding {
	if l == nil || l.source == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fresh := l.follower.Ingest(l.source())
	l.findings = append(l.findings, fresh...)
	if n := len(l.findings); n > maxLiveFindings {
		l.findings = append(l.findings[:0:0], l.findings[n-maxLiveFindings:]...)
	}
	return fresh
}

// Report polls and returns the full live diagnosis.
func (l *Live) Report() LiveReport {
	l.Poll()
	l.mu.Lock()
	defer l.mu.Unlock()
	return LiveReport{
		Frames:   l.follower.Frames(),
		Checks:   l.follower.Checks(),
		Findings: append([]Finding(nil), l.findings...),
	}
}

// Handler serves the live diagnosis as JSON — the /debug/doctor endpoint.
func (l *Live) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if l == nil {
			http.Error(w, "live doctor disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(l.Report())
	})
}
