package doctor

import (
	"strings"
	"testing"

	"dive/internal/obs"
)

// rampSamples builds a runtime-snapshot series whose live heap follows the
// given byte values, with a fixed benign pause tail.
func rampSamples(heaps ...uint64) []obs.RuntimeStats {
	out := make([]obs.RuntimeStats, len(heaps))
	for i, h := range heaps {
		out[i] = obs.RuntimeStats{HeapLiveBytes: h, GCPauseP99Sec: 0.0002}
	}
	return out
}

// TestAnalyzeRuntimeHeapGrowth seeds the leak pathology — a live heap that
// ramps 4x across ten samples with every step increasing — and requires the
// gc-heap-growth finding.
func TestAnalyzeRuntimeHeapGrowth(t *testing.T) {
	samples := rampSamples(10e6, 13e6, 16e6, 19e6, 22e6, 25e6, 28e6, 31e6, 34e6, 40e6)
	fs := AnalyzeRuntime(samples, Thresholds{})
	if len(fs) != 1 || fs[0].Check != "gc-heap-growth" {
		t.Fatalf("findings = %+v, want one gc-heap-growth", fs)
	}
	if fs[0].Severity != Fail || fs[0].Value < 3.9 || fs[0].Value > 4.1 {
		t.Errorf("finding = %+v, want Fail with ratio ~4", fs[0])
	}
}

// TestAnalyzeRuntimeSpikeNotSustained pins the sustained requirement: the
// same 4x end-to-end growth delivered as one spike among flat/shrinking
// steps is a burst the next GC returns, not a ramp, and must not fire.
func TestAnalyzeRuntimeSpikeNotSustained(t *testing.T) {
	samples := rampSamples(10e6, 9e6, 10e6, 9e6, 10e6, 9e6, 10e6, 9e6, 10e6, 40e6)
	if fs := AnalyzeRuntime(samples, Thresholds{}); len(fs) != 0 {
		t.Fatalf("spike diagnosed as sustained growth: %+v", fs)
	}
}

// TestAnalyzeRuntimeHealthy: a flat heap and sub-millisecond pauses diagnose
// clean.
func TestAnalyzeRuntimeHealthy(t *testing.T) {
	samples := rampSamples(12e6, 12.5e6, 12e6, 13e6, 12e6, 12.4e6, 12e6, 12.2e6)
	if fs := AnalyzeRuntime(samples, Thresholds{}); len(fs) != 0 {
		t.Fatalf("healthy run diagnosed: %+v", fs)
	}
}

// TestAnalyzeRuntimeShortSeriesSkipsGrowth: fewer samples than
// HeapGrowthMinSamples cannot establish a ramp.
func TestAnalyzeRuntimeShortSeriesSkipsGrowth(t *testing.T) {
	samples := rampSamples(10e6, 25e6, 45e6)
	if fs := AnalyzeRuntime(samples, Thresholds{}); len(fs) != 0 {
		t.Fatalf("3-sample series fired: %+v", fs)
	}
}

// TestAnalyzeRuntimeGCPause seeds the pause pathology: one snapshot with a
// 80 ms pause p99 over the 50 ms ceiling.
func TestAnalyzeRuntimeGCPause(t *testing.T) {
	samples := rampSamples(12e6, 12e6, 12e6)
	samples[1].GCPauseP99Sec = 0.08
	fs := AnalyzeRuntime(samples, Thresholds{})
	if len(fs) != 1 || fs[0].Check != "gc-pause-p99" {
		t.Fatalf("findings = %+v, want one gc-pause-p99", fs)
	}
	if fs[0].Value != 0.08 {
		t.Errorf("value = %v, want 0.08", fs[0].Value)
	}
	// A custom ceiling above the observed pause silences it.
	if fs := AnalyzeRuntime(samples, Thresholds{GCPauseP99CeilSec: 0.1}); len(fs) != 0 {
		t.Errorf("custom ceiling ignored: %+v", fs)
	}
}

// TestReadRuntimeSamples round-trips a JSONL stream, skipping blank lines.
func TestReadRuntimeSamples(t *testing.T) {
	in := `{"heap_live_bytes":1000,"gc_pause_p99_sec":0.001,"goroutines":2,"num_gc":1,"gomaxprocs":4,"total_alloc_bytes":5000,"mallocs":42}

{"heap_live_bytes":2000,"gc_pause_p99_sec":0.002,"goroutines":2,"num_gc":2,"gomaxprocs":4,"total_alloc_bytes":9000,"mallocs":77}
`
	got, err := ReadRuntimeSamples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].HeapLiveBytes != 1000 || got[1].Mallocs != 77 {
		t.Fatalf("decoded %+v", got)
	}
	if _, err := ReadRuntimeSamples(strings.NewReader("{broken")); err == nil {
		t.Error("malformed line decoded without error")
	}
}
