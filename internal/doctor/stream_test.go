package doctor

import (
	"math/rand"
	"reflect"
	"testing"

	"dive/internal/obs"
)

// randomJournal synthesizes a journal that exercises every detector:
// QP swings, bandwidth bias stretches, FG collapse runs, outages,
// reconnect bursts and degradation-ladder excursions.
func randomJournal(rng *rand.Rand, frames int) []obs.JournalRecord {
	recs := make([]obs.JournalRecord, frames)
	qp := 30
	degrade := 0
	for i := range recs {
		qp += rng.Intn(17) - 8
		if qp < 10 {
			qp = 10
		}
		if qp > 50 {
			qp = 50
		}
		rec := obs.JournalRecord{
			Frame:  i,
			BaseQP: qp,
			Moving: rng.Intn(4) != 0,
			RotOK:  rng.Intn(5) != 0,
		}
		if rng.Intn(3) == 0 {
			rec.FGReused = true
		} else {
			rec.FGMBs = rng.Intn(40)
		}
		if rng.Intn(6) == 0 {
			rec.Outage = true
			rec.TrackedBoxes = rng.Intn(5)
		}
		if rng.Intn(2) == 0 {
			rec.EstBWBps = 1e6 * (0.3 + 2.5*rng.Float64())
			rec.RealizedBWBps = 1e6 * (0.5 + rng.Float64())
		}
		if rng.Intn(8) == 0 {
			rec.ReconnectAttempts = 1 + rng.Intn(4)
			rec.BackoffSec = rng.Float64() * 0.1
		}
		if rng.Intn(10) == 0 {
			degrade = rng.Intn(4)
		} else if degrade > 0 && rng.Intn(3) == 0 {
			degrade--
		}
		rec.DegradeLevel = degrade
		recs[i] = rec
	}
	return recs
}

// TestStreamingMatchesBatch feeds randomized journals through Analyze
// (which drives the streaming detectors frame-by-frame) and through an
// all-at-once Observe loop split at arbitrary points, asserting the split
// position cannot change the diagnosis — the property that makes live
// following (divedoctor -follow) trustworthy.
func TestStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		journal := randomJournal(rng, 60+rng.Intn(120))
		want := Analyze(journal, nil, Thresholds{})

		f := NewFollower(Thresholds{}, 0)
		var got []Finding
		// Replay as a growing sequence of overlapping snapshots, as a live
		// poller would see the journal ring.
		pos := 0
		for pos < len(journal) {
			pos += 1 + rng.Intn(17)
			if pos > len(journal) {
				pos = len(journal)
			}
			got = append(got, f.Ingest(journal[:pos])...)
		}
		got = append(got, f.Close(journal)...)

		if f.Frames() != len(journal) {
			t.Fatalf("trial %d: follower consumed %d of %d frames", trial, f.Frames(), len(journal))
		}
		if len(got) != len(want.Findings) {
			t.Fatalf("trial %d: streaming found %d findings, batch %d\nstream: %+v\nbatch: %+v",
				trial, len(got), len(want.Findings), got, want.Findings)
		}
		// Batch order is stable-sorted by FirstFrame across detectors; the
		// stream interleaves by arrival. Compare as multisets.
		matched := make([]bool, len(want.Findings))
		for _, g := range got {
			found := false
			for j, w := range want.Findings {
				if !matched[j] && reflect.DeepEqual(g, w) {
					matched[j], found = true, true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: streaming finding not in batch report: %+v", trial, g)
			}
		}
	}
}

func TestFollowerSettleMargin(t *testing.T) {
	// An outage run inside the settle margin must not be diagnosed until
	// the journal grows past it (or Close is called): those records may
	// still be amended.
	var journal []obs.JournalRecord
	for f := 0; f < 20; f++ {
		journal = append(journal, obs.JournalRecord{Frame: f, Outage: f >= 10, TrackedBoxes: 2, BaseQP: 30})
	}
	f := NewFollower(Thresholds{}, 8)
	if got := f.Ingest(journal); len(got) != 0 {
		t.Fatalf("settled ingest diagnosed held-back frames: %+v", got)
	}
	if f.Frames() != 12 { // frames 0..11: newest(19) - settle(8)
		t.Fatalf("consumed %d frames, want 12", f.Frames())
	}
	// Re-ingesting the same snapshot consumes nothing new.
	if f.Ingest(journal); f.Frames() != 12 {
		t.Fatalf("re-ingest advanced the cursor to %d", f.Frames())
	}
	got := f.Close(journal)
	if len(got) != 1 || got[0].Check != "outage-drift" {
		t.Fatalf("close findings = %+v, want one outage-drift", got)
	}
	if f.Frames() != 20 {
		t.Fatalf("close consumed %d frames, want 20", f.Frames())
	}
}

func TestLivePollAndReport(t *testing.T) {
	var journal []obs.JournalRecord
	source := func() []obs.JournalRecord { return journal }
	l := NewLive(Thresholds{}, 0, source)

	if got := l.Poll(); len(got) != 0 {
		t.Fatalf("empty journal produced findings: %+v", got)
	}
	// Grow the journal past an outage run and poll again.
	for f := 0; f < 10; f++ {
		journal = append(journal, obs.JournalRecord{Frame: f, Outage: true, TrackedBoxes: 1, BaseQP: 30})
	}
	for f := 10; f < 14; f++ {
		journal = append(journal, obs.JournalRecord{Frame: f, BaseQP: 30})
	}
	fresh := l.Poll()
	if len(fresh) != 1 || fresh[0].Check != "outage-drift" {
		t.Fatalf("poll findings = %+v, want one outage-drift", fresh)
	}
	// The finding is retained; re-polling does not duplicate it.
	rep := l.Report()
	if len(rep.Findings) != 1 || rep.Frames != 14 {
		t.Fatalf("report = %+v, want 1 finding over 14 frames", rep)
	}
	if len(rep.Checks) == 0 {
		t.Fatal("report lists no checks")
	}
}

func TestLiveNilSafety(t *testing.T) {
	var l *Live
	if l.Poll() != nil {
		t.Fatal("nil Live polled findings")
	}
	// The handler of a nil Live answers 503 rather than panicking; covered
	// via the exported Handler contract.
}
