package doctor

import (
	"testing"

	"dive/internal/obs"
)

// The cluster detectors grade session migrations from the journal: every
// migration must surface with its measured re-detection gap, graded against
// the budget, and repeated migrations within a short window must be called
// out as a failover storm.

func migratedAt(js []obs.JournalRecord, frame int, gapSec float64, forced bool) {
	js[frame].Migrated = true
	js[frame].MigrationGapSec = gapSec
	js[frame].MigratedTo = "127.0.0.1:9999"
	js[frame].MigrationForced = forced
}

func TestMigrationGapWithinBudgetWarns(t *testing.T) {
	js := flatJournal(60)
	migratedAt(js, 30, 0.8, true)
	rep := Analyze(js, nil, Thresholds{MigrationGapBudgetSec: 2.0})
	found := false
	for _, f := range rep.Findings {
		if f.Check != "migration-gap" {
			continue
		}
		found = true
		if f.Severity != Warn {
			t.Errorf("bounded gap graded %v, want warn", f.Severity)
		}
		if f.Value != 0.8 || f.Threshold != 2.0 {
			t.Errorf("finding carries value %.2f / threshold %.2f, want 0.8 / 2.0", f.Value, f.Threshold)
		}
		if f.FirstFrame != 30 || f.LastFrame != 30 {
			t.Errorf("finding anchored to %d–%d, want 30–30", f.FirstFrame, f.LastFrame)
		}
	}
	if !found {
		t.Fatalf("migration not surfaced; findings: %+v", rep.Findings)
	}
	if hasCheck(rep, "failover-storm") {
		t.Fatalf("single migration flagged as a storm: %+v", rep.Findings)
	}
}

func TestMigrationGapOverBudgetFails(t *testing.T) {
	js := flatJournal(60)
	migratedAt(js, 30, 3.5, true)
	rep := Analyze(js, nil, Thresholds{MigrationGapBudgetSec: 2.0})
	for _, f := range rep.Findings {
		if f.Check == "migration-gap" {
			if f.Severity != Fail {
				t.Errorf("over-budget gap graded %v, want fail", f.Severity)
			}
			return
		}
	}
	t.Fatalf("over-budget migration not flagged; findings: %+v", rep.Findings)
}

func TestMigrationGapCleanJournalSilent(t *testing.T) {
	rep := Analyze(flatJournal(60), nil, Thresholds{})
	if hasCheck(rep, "migration-gap") || hasCheck(rep, "failover-storm") {
		t.Fatalf("clean journal produced cluster findings: %+v", rep.Findings)
	}
}

func TestFailoverStormDetected(t *testing.T) {
	js := flatJournal(200)
	// Three migrations within 40 frames: the session is ping-ponging.
	for _, fr := range []int{50, 70, 90} {
		migratedAt(js, fr, 0.5, true)
	}
	rep := Analyze(js, nil, Thresholds{FailoverMigrations: 3, FailoverWindowFrames: 150})
	found := false
	for _, f := range rep.Findings {
		if f.Check != "failover-storm" {
			continue
		}
		found = true
		if f.Severity != Fail {
			t.Errorf("storm graded %v, want fail", f.Severity)
		}
		if f.FirstFrame != 50 || f.LastFrame != 90 {
			t.Errorf("storm anchored to %d–%d, want 50–90", f.FirstFrame, f.LastFrame)
		}
	}
	if !found {
		t.Fatalf("storm not flagged; findings: %+v", rep.Findings)
	}
}

func TestFailoverStormWideSpacingClean(t *testing.T) {
	js := flatJournal(800)
	// Three migrations but each pair further apart than the window.
	for _, fr := range []int{50, 300, 600} {
		migratedAt(js, fr, 0.5, false)
	}
	rep := Analyze(js, nil, Thresholds{FailoverMigrations: 3, FailoverWindowFrames: 150})
	if hasCheck(rep, "failover-storm") {
		t.Fatalf("well-spaced migrations flagged as a storm: %+v", rep.Findings)
	}
}

func TestFailoverStormReportsOncePerBurst(t *testing.T) {
	js := flatJournal(200)
	for _, fr := range []int{50, 60, 70, 80, 90} {
		migratedAt(js, fr, 0.5, true)
	}
	rep := Analyze(js, nil, Thresholds{FailoverMigrations: 3, FailoverWindowFrames: 150})
	storms := 0
	for _, f := range rep.Findings {
		if f.Check == "failover-storm" {
			storms++
		}
	}
	if storms != 1 {
		t.Fatalf("burst of 5 migrations reported %d storms, want 1: %+v", storms, rep.Findings)
	}
}
