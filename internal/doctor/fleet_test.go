package doctor

import (
	"testing"

	"dive/internal/obs"
)

// rollupSeries builds a synthetic tick sequence from a shaping callback.
func rollupSeries(n int, shape func(tick int, ru *obs.FleetRollup)) []obs.FleetRollup {
	out := make([]obs.FleetRollup, n)
	for i := range out {
		out[i] = obs.FleetRollup{Tick: i, Sessions: 10, FleetBurn: 0.1}
		shape(i, &out[i])
	}
	return out
}

// TestStragglerSessionDetector requires a sustained streak: two ticks in the
// table is noise, three is a finding, and the finding fires once per streak.
func TestStragglerSessionDetector(t *testing.T) {
	lag := obs.Straggler{
		Session: "nuScenes-003", Profile: "nuScenes", Factor: 8.2,
		LatencyP99Sec: 0.61, BurnRate: 44, Reason: "latency",
	}
	series := rollupSeries(10, func(tick int, ru *obs.FleetRollup) {
		// In the table ticks 1-2 (short blip), then 4-9 (sustained).
		if tick == 1 || tick == 2 || tick >= 4 {
			ru.Stragglers = []obs.Straggler{lag}
		}
	})
	rep := AnalyzeFleet(series, Thresholds{})
	if len(rep.Findings) != 1 {
		t.Fatalf("findings = %+v, want exactly 1", rep.Findings)
	}
	f := rep.Findings[0]
	if f.Check != "straggler-session" || f.Severity != Fail {
		t.Fatalf("finding = %+v", f)
	}
	if f.FirstFrame != 4 || f.LastFrame != 6 {
		t.Errorf("streak anchored to ticks %d-%d, want 4-6", f.FirstFrame, f.LastFrame)
	}
}

// TestStragglerSessionRecoveringSession: a session that leaves the table
// before the streak threshold must not be diagnosed.
func TestStragglerSessionRecoveringSession(t *testing.T) {
	series := rollupSeries(8, func(tick int, ru *obs.FleetRollup) {
		if tick < 2 { // recovers before the 3-tick bar
			ru.Stragglers = []obs.Straggler{{Session: "KITTI-017", Factor: 5}}
		}
	})
	if rep := AnalyzeFleet(series, Thresholds{}); !rep.Healthy() {
		t.Fatalf("recovered session still diagnosed: %+v", rep.Findings)
	}
}

// TestFleetBurnDetector: diffuse overload (burn > 1, empty straggler table)
// must fire after FleetBurnTicks; burn attributable to a straggler must not.
func TestFleetBurnDetector(t *testing.T) {
	diffuse := rollupSeries(6, func(tick int, ru *obs.FleetRollup) {
		if tick >= 1 {
			ru.FleetBurn = 3.5
			ru.Unhealthy = 1
		}
	})
	rep := AnalyzeFleet(diffuse, Thresholds{})
	var burn []Finding
	for _, f := range rep.Findings {
		if f.Check == "fleet-burn" {
			burn = append(burn, f)
		}
	}
	if len(burn) != 1 {
		t.Fatalf("fleet-burn findings = %+v, want exactly 1", burn)
	}
	if burn[0].FirstFrame != 1 || burn[0].Value != 3.5 {
		t.Errorf("finding = %+v, want streak from tick 1 at burn 3.5", burn[0])
	}

	attributed := rollupSeries(6, func(tick int, ru *obs.FleetRollup) {
		ru.FleetBurn = 3.5
		ru.Stragglers = []obs.Straggler{{Session: "nuScenes-003", Factor: 9}}
	})
	for _, f := range AnalyzeFleet(attributed, Thresholds{}).Findings {
		if f.Check == "fleet-burn" {
			t.Fatalf("fleet-burn fired on straggler-attributable burn: %+v", f)
		}
	}
}

// TestNoisyNeighborDetector grows the fleet 10→30 sessions with per-session
// heap tripling — superlinear — and checks linear growth stays quiet.
func TestNoisyNeighborDetector(t *testing.T) {
	super := rollupSeries(6, func(tick int, ru *obs.FleetRollup) {
		ru.Sessions = 10 * (tick + 1)
		// Heap per session grows with fleet size: 1MB/session at baseline,
		// tick k costs (k+1)MB/session.
		ru.Runtime = &obs.RuntimeRollup{
			HeapLiveBytes: uint64(ru.Sessions) * uint64(tick+1) << 20,
			GCPauseP99Sec: 0.001,
		}
	})
	rep := AnalyzeFleet(super, Thresholds{})
	var heap []Finding
	for _, f := range rep.Findings {
		if f.Check == "noisy-neighbor" {
			heap = append(heap, f)
		}
	}
	if len(heap) != 1 {
		t.Fatalf("noisy-neighbor findings = %+v, want exactly 1 (heap only)", heap)
	}
	if heap[0].Severity != Warn || heap[0].Value <= 2 {
		t.Errorf("finding = %+v, want Warn with ratio > 2", heap[0])
	}

	linear := rollupSeries(6, func(tick int, ru *obs.FleetRollup) {
		ru.Sessions = 10 * (tick + 1)
		ru.Runtime = &obs.RuntimeRollup{
			HeapLiveBytes: uint64(ru.Sessions) << 20, // flat 1MB/session
			GCPauseP99Sec: 0.001,
		}
	})
	if rep := AnalyzeFleet(linear, Thresholds{}); !rep.Healthy() {
		t.Fatalf("linear growth diagnosed noisy: %+v", rep.Findings)
	}
}

// TestFleetFollowerCursor feeds overlapping snapshots (as /debug/fleet polls
// produce) and checks each rollup is consumed once and findings match the
// batch analysis.
func TestFleetFollowerCursor(t *testing.T) {
	series := rollupSeries(10, func(tick int, ru *obs.FleetRollup) {
		if tick >= 2 {
			ru.Stragglers = []obs.Straggler{{Session: "RobotCar-004", Profile: "RobotCar", Factor: 6, Reason: "latency"}}
		}
	})
	follower := NewFleetFollower(Thresholds{})
	var live []Finding
	// Overlapping windows: [0..4), [2..7), [5..10).
	live = append(live, follower.Ingest(series[0:4])...)
	live = append(live, follower.Ingest(series[2:7])...)
	live = append(live, follower.Ingest(series[5:10])...)
	live = append(live, follower.Close()...)
	if follower.Rollups() != 10 {
		t.Fatalf("follower consumed %d rollups, want 10", follower.Rollups())
	}
	batch := AnalyzeFleet(series, Thresholds{})
	if len(live) != len(batch.Findings) {
		t.Fatalf("live findings %+v != batch findings %+v", live, batch.Findings)
	}
	for i := range live {
		if live[i] != batch.Findings[i] {
			t.Errorf("finding %d: live %+v != batch %+v", i, live[i], batch.Findings[i])
		}
	}
}
