package doctor

import (
	"testing"

	"dive/internal/obs"
)

// The robustness detectors grade the client's failure handling from the
// journal alone, so they are tested on seeded pathological journals: a
// reconnect loop whose backoff collapsed, and a degradation ladder that
// stays down long after the link healed.

// flatJournal builds n healthy records with consecutive frame numbers.
func flatJournal(n int) []obs.JournalRecord {
	js := make([]obs.JournalRecord, n)
	for i := range js {
		js[i] = obs.JournalRecord{Frame: i, BaseQP: 30}
	}
	return js
}

func TestReconnectStormBackoffCollapseFails(t *testing.T) {
	js := flatJournal(40)
	// Frames 10–15: two attempts each with ~1ms of backoff per attempt —
	// the retry loop is spinning, not backing off.
	for i := 10; i <= 15; i++ {
		js[i].ReconnectAttempts = 2
		js[i].BackoffSec = 0.002
	}
	rep := Analyze(js, nil, Thresholds{})
	if !hasCheck(rep, "reconnect-storm") {
		t.Fatalf("storm not flagged; findings: %+v", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Check != "reconnect-storm" {
			continue
		}
		if f.Severity != Fail {
			t.Errorf("collapsed backoff graded %v, want fail", f.Severity)
		}
		if f.FirstFrame != 10 || f.LastFrame != 15 {
			t.Errorf("storm anchored to %d–%d, want 10–15", f.FirstFrame, f.LastFrame)
		}
	}
}

func TestReconnectStormHealthyBackoffWarns(t *testing.T) {
	js := flatJournal(40)
	// Same attempt count, but each attempt waited ~200ms: a long blackout
	// being retried responsibly. Still worth surfacing, but only as a warn.
	for i := 10; i <= 15; i++ {
		js[i].ReconnectAttempts = 2
		js[i].BackoffSec = 0.4
	}
	rep := Analyze(js, nil, Thresholds{})
	found := false
	for _, f := range rep.Findings {
		if f.Check == "reconnect-storm" {
			found = true
			if f.Severity != Warn {
				t.Errorf("damped storm graded %v, want warn", f.Severity)
			}
		}
	}
	if !found {
		t.Fatalf("storm not flagged; findings: %+v", rep.Findings)
	}
}

func TestReconnectStormBelowThresholdClean(t *testing.T) {
	js := flatJournal(40)
	// A couple of isolated reconnects with real backoff is normal operation.
	js[8].ReconnectAttempts = 1
	js[8].BackoffSec = 0.2
	js[30].ReconnectAttempts = 2
	js[30].BackoffSec = 0.5
	rep := Analyze(js, nil, Thresholds{})
	if hasCheck(rep, "reconnect-storm") {
		t.Fatalf("sparse reconnects flagged as a storm: %+v", rep.Findings)
	}
}

func TestSlowRecoveryStuckLadderDetected(t *testing.T) {
	js := flatJournal(80)
	// Outage burst ends at frame 10; the ladder never climbs back.
	for i := 5; i <= 10; i++ {
		js[i].Outage = true
		js[i].DegradeLevel = 3
	}
	for i := 11; i < 80; i++ {
		js[i].DegradeLevel = 2
	}
	rep := Analyze(js, nil, Thresholds{})
	found := 0
	for _, f := range rep.Findings {
		if f.Check == "slow-recovery" {
			found++
			if f.FirstFrame != 10 {
				t.Errorf("recovery window anchored at %d, want 10", f.FirstFrame)
			}
		}
	}
	if found == 0 {
		t.Fatalf("stuck ladder not flagged; findings: %+v", rep.Findings)
	}
	if found > 1 {
		t.Errorf("stuck ladder reported %d times, want once", found)
	}
}

func TestSlowRecoveryLateReturnDetected(t *testing.T) {
	js := flatJournal(80)
	js[10].Outage = true
	js[10].DegradeLevel = 2
	// Degraded until frame 50: a 40-frame tail against a 24-frame limit.
	for i := 11; i < 50; i++ {
		js[i].DegradeLevel = 1
	}
	rep := Analyze(js, nil, Thresholds{})
	if !hasCheck(rep, "slow-recovery") {
		t.Fatalf("late recovery not flagged; findings: %+v", rep.Findings)
	}
}

func TestSlowRecoveryPromptReturnClean(t *testing.T) {
	js := flatJournal(80)
	js[10].Outage = true
	js[10].DegradeLevel = 2
	// Back to healthy within the allowance.
	for i := 11; i < 20; i++ {
		js[i].DegradeLevel = 1
	}
	rep := Analyze(js, nil, Thresholds{})
	if hasCheck(rep, "slow-recovery") {
		t.Fatalf("prompt recovery flagged: %+v", rep.Findings)
	}
}

func TestSlowRecoveryResetByNewFailure(t *testing.T) {
	js := flatJournal(120)
	// A sustained blackout: every frame in 10–60 is a failure event. The
	// recovery clock must run from the episode's END, so a degraded tail of
	// 15 frames after frame 60 is within the 24-frame allowance even though
	// the total degraded stretch is far longer.
	for i := 10; i <= 60; i++ {
		js[i].Outage = true
		js[i].DegradeLevel = 4
	}
	for i := 61; i < 75; i++ {
		js[i].DegradeLevel = 1
	}
	rep := Analyze(js, nil, Thresholds{})
	if hasCheck(rep, "slow-recovery") {
		t.Fatalf("recovery clock did not reset on new failure events: %+v", rep.Findings)
	}
}
