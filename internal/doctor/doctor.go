// Package doctor is the automated trace analyzer behind cmd/divedoctor: it
// ingests the decision journal and trace spans the obs layer exports and
// diagnoses known DiVE pathologies — rate-control oscillation, systematic
// bandwidth mis-estimation, foreground-segmentation collapse during turns,
// stale-MOT drift across long outages, reconnect storms whose backoff
// collapsed, degradation ladders that stay down after the link healed, and
// per-stage latency regressions against a committed baseline. Findings are
// machine-readable so CI can gate on them.
package doctor

import (
	"sort"

	"dive/internal/obs"
)

// Severity ranks a finding. CI gates treat both as failures; Warn marks
// diagnoses that may be environmental (e.g. latency on a loaded machine).
type Severity string

const (
	Warn Severity = "warn"
	Fail Severity = "fail"
)

// Finding is one diagnosed pathology, anchored to the frame range that
// exhibits it.
type Finding struct {
	// Check names the detector that fired (e.g. "qp-oscillation").
	Check      string   `json:"check"`
	Severity   Severity `json:"severity"`
	FirstFrame int      `json:"first_frame"`
	LastFrame  int      `json:"last_frame"`
	// Value is the measured statistic, Threshold the limit it violated.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// Report is the full diagnosis of one run.
type Report struct {
	Frames   int       `json:"frames"`
	Spans    int       `json:"spans"`
	Checks   []string  `json:"checks_run"`
	Findings []Finding `json:"findings"`
}

// Healthy reports whether the diagnosis found nothing.
func (r *Report) Healthy() bool { return len(r.Findings) == 0 }

// Thresholds tunes the detectors. The zero value is replaced by
// DefaultThresholds field-wise, so callers can override selectively.
type Thresholds struct {
	// QPSwing is the minimum |ΔBaseQP| between consecutive frames that
	// counts as a swing; QPAlternations is how many sign-alternating swings
	// in a row constitute oscillation.
	QPSwing        int
	QPAlternations int
	// BWBiasRatio flags the estimator when the geometric mean of
	// estimate/realized bandwidth over at least BWMinAcked acknowledged
	// frames exceeds it (over-estimation) or falls below its reciprocal
	// (under-estimation).
	BWBiasRatio float64
	BWMinAcked  int
	// FGCollapseRun is the run length of moving, rotation-corrected frames
	// with no fresh foreground that constitutes segmentation collapse.
	FGCollapseRun int
	// OutageRun is the run length of consecutive outage frames after which
	// locally tracked boxes are considered drifted stale.
	OutageRun int
	// LatencyP95Ratio flags a pipeline stage whose p95 grew by this factor
	// over a baseline from a comparable environment; StageShareGrowth is
	// the fallback factor on the stage's share of total pipeline time when
	// the environments are not comparable (different machine or worker
	// count), where absolute times mean nothing.
	LatencyP95Ratio  float64
	StageShareGrowth float64
	// StormAttempts is the number of reconnect attempts within any
	// StormWindowFrames-frame window that constitutes a reconnect storm;
	// MinMeanBackoffSec flags a storm whose mean per-attempt backoff is
	// below it (the backoff schedule is not actually backing off).
	StormAttempts     int
	StormWindowFrames int
	MinMeanBackoffSec float64
	// LadderRecoverFrames is how many frames after the last failure event
	// the degradation ladder may take to return to the healthy rung before
	// recovery is diagnosed as slow (or stuck).
	LadderRecoverFrames int
	// HeapGrowthRatio flags GC pressure when the live heap grew by more than
	// this factor across a runtime-snapshot series of at least
	// HeapGrowthMinSamples samples with at least HeapGrowthFrac of the steps
	// increasing (sustained ramp, not a single burst).
	HeapGrowthRatio      float64
	HeapGrowthMinSamples int
	HeapGrowthFrac       float64
	// GCPauseP99CeilSec flags any runtime snapshot whose GC pause p99
	// exceeds it.
	GCPauseP99CeilSec float64
	// AllocBytesSlack is the multiplicative headroom CompareAlloc grants
	// B/op over the committed baseline before failing (allocs/op gets none:
	// it is deterministic after warm-up).
	AllocBytesSlack float64
	// StragglerTicks is how many consecutive fleet rollups a session must
	// spend in the straggler table before straggler-session fires (one bad
	// tick is noise; a streak is a pathology).
	StragglerTicks int
	// FleetBurnTicks is how many consecutive rollups the aggregate burn rate
	// must exceed FleetBurnRate — with no straggler standing out — before
	// fleet-burn diagnoses diffuse overload. The rate bar sits above 1 so a
	// transient budget blip (one chaos outage window clustering across the
	// fleet) doesn't read as overload.
	FleetBurnTicks int
	FleetBurnRate  float64
	// MigrationGapBudgetSec bounds the re-detection gap a session migration
	// may leave (last detection served by the old member to the first served
	// by the new one). Every migration yields a migration-gap finding so the
	// gap is always measured and visible: Warn within the budget, Fail
	// beyond it. The default 2.0 covers one keyframe interval at the live
	// cadence plus the reconnect backoff budget of the default schedule's
	// early attempts.
	MigrationGapBudgetSec float64
	// FailoverMigrations is how many migrations within any
	// FailoverWindowFrames-frame window constitute a failover storm — a
	// session ping-ponging between members instead of settling, usually a
	// balancer disagreement or a flapping prober.
	FailoverMigrations   int
	FailoverWindowFrames int
	// NoisySessionGrowth is the session-count growth factor over the baseline
	// rollup after which noisy-neighbor starts judging; NoisyGrowthRatio is
	// the per-session heap (or GC pause p99) growth factor that then counts
	// as superlinear pressure.
	NoisySessionGrowth float64
	NoisyGrowthRatio   float64
}

// DefaultThresholds returns the tuned defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		QPSwing:               6,
		QPAlternations:        4,
		BWBiasRatio:           1.5,
		BWMinAcked:            16,
		FGCollapseRun:         5,
		OutageRun:             6,
		LatencyP95Ratio:       1.5,
		StageShareGrowth:      1.6,
		StormAttempts:         6,
		StormWindowFrames:     12,
		MinMeanBackoffSec:     0.02,
		LadderRecoverFrames:   24,
		HeapGrowthRatio:       2.0,
		HeapGrowthMinSamples:  6,
		HeapGrowthFrac:        0.7,
		GCPauseP99CeilSec:     0.05,
		AllocBytesSlack:       1.25,
		StragglerTicks:        3,
		MigrationGapBudgetSec: 2.0,
		FailoverMigrations:    3,
		FailoverWindowFrames:  150,
		FleetBurnTicks:        3,
		FleetBurnRate:         2.0,
		NoisySessionGrowth:    1.5,
		NoisyGrowthRatio:      2.0,
	}
}

func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.QPSwing <= 0 {
		t.QPSwing = d.QPSwing
	}
	if t.QPAlternations <= 0 {
		t.QPAlternations = d.QPAlternations
	}
	if t.BWBiasRatio <= 0 {
		t.BWBiasRatio = d.BWBiasRatio
	}
	if t.BWMinAcked <= 0 {
		t.BWMinAcked = d.BWMinAcked
	}
	if t.FGCollapseRun <= 0 {
		t.FGCollapseRun = d.FGCollapseRun
	}
	if t.OutageRun <= 0 {
		t.OutageRun = d.OutageRun
	}
	if t.LatencyP95Ratio <= 0 {
		t.LatencyP95Ratio = d.LatencyP95Ratio
	}
	if t.StageShareGrowth <= 0 {
		t.StageShareGrowth = d.StageShareGrowth
	}
	if t.StormAttempts <= 0 {
		t.StormAttempts = d.StormAttempts
	}
	if t.StormWindowFrames <= 0 {
		t.StormWindowFrames = d.StormWindowFrames
	}
	if t.MinMeanBackoffSec <= 0 {
		t.MinMeanBackoffSec = d.MinMeanBackoffSec
	}
	if t.LadderRecoverFrames <= 0 {
		t.LadderRecoverFrames = d.LadderRecoverFrames
	}
	if t.HeapGrowthRatio <= 0 {
		t.HeapGrowthRatio = d.HeapGrowthRatio
	}
	if t.HeapGrowthMinSamples <= 0 {
		t.HeapGrowthMinSamples = d.HeapGrowthMinSamples
	}
	if t.HeapGrowthFrac <= 0 {
		t.HeapGrowthFrac = d.HeapGrowthFrac
	}
	if t.GCPauseP99CeilSec <= 0 {
		t.GCPauseP99CeilSec = d.GCPauseP99CeilSec
	}
	if t.AllocBytesSlack <= 0 {
		t.AllocBytesSlack = d.AllocBytesSlack
	}
	if t.StragglerTicks <= 0 {
		t.StragglerTicks = d.StragglerTicks
	}
	if t.MigrationGapBudgetSec <= 0 {
		t.MigrationGapBudgetSec = d.MigrationGapBudgetSec
	}
	if t.FailoverMigrations <= 0 {
		t.FailoverMigrations = d.FailoverMigrations
	}
	if t.FailoverWindowFrames <= 0 {
		t.FailoverWindowFrames = d.FailoverWindowFrames
	}
	if t.FleetBurnTicks <= 0 {
		t.FleetBurnTicks = d.FleetBurnTicks
	}
	if t.FleetBurnRate <= 0 {
		t.FleetBurnRate = d.FleetBurnRate
	}
	if t.NoisySessionGrowth <= 0 {
		t.NoisySessionGrowth = d.NoisySessionGrowth
	}
	if t.NoisyGrowthRatio <= 0 {
		t.NoisyGrowthRatio = d.NoisyGrowthRatio
	}
	return t
}

// Analyze diagnoses a run from its decision journal and trace spans (spans
// may be nil; the span-based checks are then skipped). It is a thin batch
// wrapper over the streaming detectors in stream.go: the whole journal is
// fed through each detector's Observe/Flush, so offline analysis and live
// following (divedoctor -follow, /debug/doctor) share one implementation.
func Analyze(journal []obs.JournalRecord, spans []obs.SpanRecord, th Thresholds) *Report {
	rep := &Report{Frames: len(journal), Spans: len(spans)}
	dets := NewDetectors(th)
	perDet := make([][]Finding, len(dets))
	for i, d := range dets {
		rep.Checks = append(rep.Checks, d.Name())
		for _, rec := range journal {
			perDet[i] = append(perDet[i], d.Observe(rec)...)
		}
		perDet[i] = append(perDet[i], d.Flush()...)
	}
	for _, fs := range perDet {
		rep.Findings = append(rep.Findings, fs...)
	}
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].FirstFrame < rep.Findings[j].FirstFrame
	})
	return rep
}
