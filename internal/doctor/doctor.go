// Package doctor is the automated trace analyzer behind cmd/divedoctor: it
// ingests the decision journal and trace spans the obs layer exports and
// diagnoses known DiVE pathologies — rate-control oscillation, systematic
// bandwidth mis-estimation, foreground-segmentation collapse during turns,
// stale-MOT drift across long outages, reconnect storms whose backoff
// collapsed, degradation ladders that stay down after the link healed, and
// per-stage latency regressions against a committed baseline. Findings are
// machine-readable so CI can gate on them.
package doctor

import (
	"fmt"
	"math"
	"sort"

	"dive/internal/obs"
)

// Severity ranks a finding. CI gates treat both as failures; Warn marks
// diagnoses that may be environmental (e.g. latency on a loaded machine).
type Severity string

const (
	Warn Severity = "warn"
	Fail Severity = "fail"
)

// Finding is one diagnosed pathology, anchored to the frame range that
// exhibits it.
type Finding struct {
	// Check names the detector that fired (e.g. "qp-oscillation").
	Check      string   `json:"check"`
	Severity   Severity `json:"severity"`
	FirstFrame int      `json:"first_frame"`
	LastFrame  int      `json:"last_frame"`
	// Value is the measured statistic, Threshold the limit it violated.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Message   string  `json:"message"`
}

// Report is the full diagnosis of one run.
type Report struct {
	Frames   int       `json:"frames"`
	Spans    int       `json:"spans"`
	Checks   []string  `json:"checks_run"`
	Findings []Finding `json:"findings"`
}

// Healthy reports whether the diagnosis found nothing.
func (r *Report) Healthy() bool { return len(r.Findings) == 0 }

// Thresholds tunes the detectors. The zero value is replaced by
// DefaultThresholds field-wise, so callers can override selectively.
type Thresholds struct {
	// QPSwing is the minimum |ΔBaseQP| between consecutive frames that
	// counts as a swing; QPAlternations is how many sign-alternating swings
	// in a row constitute oscillation.
	QPSwing        int
	QPAlternations int
	// BWBiasRatio flags the estimator when the geometric mean of
	// estimate/realized bandwidth over at least BWMinAcked acknowledged
	// frames exceeds it (over-estimation) or falls below its reciprocal
	// (under-estimation).
	BWBiasRatio float64
	BWMinAcked  int
	// FGCollapseRun is the run length of moving, rotation-corrected frames
	// with no fresh foreground that constitutes segmentation collapse.
	FGCollapseRun int
	// OutageRun is the run length of consecutive outage frames after which
	// locally tracked boxes are considered drifted stale.
	OutageRun int
	// LatencyP95Ratio flags a pipeline stage whose p95 grew by this factor
	// over a baseline from a comparable environment; StageShareGrowth is
	// the fallback factor on the stage's share of total pipeline time when
	// the environments are not comparable (different machine or worker
	// count), where absolute times mean nothing.
	LatencyP95Ratio  float64
	StageShareGrowth float64
	// StormAttempts is the number of reconnect attempts within any
	// StormWindowFrames-frame window that constitutes a reconnect storm;
	// MinMeanBackoffSec flags a storm whose mean per-attempt backoff is
	// below it (the backoff schedule is not actually backing off).
	StormAttempts     int
	StormWindowFrames int
	MinMeanBackoffSec float64
	// LadderRecoverFrames is how many frames after the last failure event
	// the degradation ladder may take to return to the healthy rung before
	// recovery is diagnosed as slow (or stuck).
	LadderRecoverFrames int
}

// DefaultThresholds returns the tuned defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		QPSwing:          6,
		QPAlternations:   4,
		BWBiasRatio:      1.5,
		BWMinAcked:       16,
		FGCollapseRun:    5,
		OutageRun:        6,
		LatencyP95Ratio:     1.5,
		StageShareGrowth:    1.6,
		StormAttempts:       6,
		StormWindowFrames:   12,
		MinMeanBackoffSec:   0.02,
		LadderRecoverFrames: 24,
	}
}

func (t Thresholds) withDefaults() Thresholds {
	d := DefaultThresholds()
	if t.QPSwing <= 0 {
		t.QPSwing = d.QPSwing
	}
	if t.QPAlternations <= 0 {
		t.QPAlternations = d.QPAlternations
	}
	if t.BWBiasRatio <= 0 {
		t.BWBiasRatio = d.BWBiasRatio
	}
	if t.BWMinAcked <= 0 {
		t.BWMinAcked = d.BWMinAcked
	}
	if t.FGCollapseRun <= 0 {
		t.FGCollapseRun = d.FGCollapseRun
	}
	if t.OutageRun <= 0 {
		t.OutageRun = d.OutageRun
	}
	if t.LatencyP95Ratio <= 0 {
		t.LatencyP95Ratio = d.LatencyP95Ratio
	}
	if t.StageShareGrowth <= 0 {
		t.StageShareGrowth = d.StageShareGrowth
	}
	if t.StormAttempts <= 0 {
		t.StormAttempts = d.StormAttempts
	}
	if t.StormWindowFrames <= 0 {
		t.StormWindowFrames = d.StormWindowFrames
	}
	if t.MinMeanBackoffSec <= 0 {
		t.MinMeanBackoffSec = d.MinMeanBackoffSec
	}
	if t.LadderRecoverFrames <= 0 {
		t.LadderRecoverFrames = d.LadderRecoverFrames
	}
	return t
}

// Analyze diagnoses a run from its decision journal and trace spans (spans
// may be nil; the span-based checks are then skipped).
func Analyze(journal []obs.JournalRecord, spans []obs.SpanRecord, th Thresholds) *Report {
	th = th.withDefaults()
	rep := &Report{Frames: len(journal), Spans: len(spans)}
	rep.run("qp-oscillation", func() []Finding { return detectQPOscillation(journal, th) })
	rep.run("bandwidth-bias", func() []Finding { return detectBandwidthBias(journal, th) })
	rep.run("fg-collapse", func() []Finding { return detectFGCollapse(journal, th) })
	rep.run("outage-drift", func() []Finding { return detectOutageDrift(journal, th) })
	rep.run("reconnect-storm", func() []Finding { return detectReconnectStorm(journal, th) })
	rep.run("slow-recovery", func() []Finding { return detectSlowRecovery(journal, th) })
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].FirstFrame < rep.Findings[j].FirstFrame
	})
	return rep
}

func (r *Report) run(check string, fn func() []Finding) {
	r.Checks = append(r.Checks, check)
	r.Findings = append(r.Findings, fn()...)
}

// detectQPOscillation finds runs of sign-alternating base-QP swings — the
// signature of a rate controller fighting its own bandwidth feedback (each
// over-sized frame depresses the next estimate, which shrinks the next
// frame, which inflates the estimate again).
func detectQPOscillation(journal []obs.JournalRecord, th Thresholds) []Finding {
	var out []Finding
	altStart, alternations, lastSign := -1, 0, 0
	flush := func(endIdx int) {
		if alternations >= th.QPAlternations {
			out = append(out, Finding{
				Check: "qp-oscillation", Severity: Fail,
				FirstFrame: journal[altStart].Frame, LastFrame: journal[endIdx].Frame,
				Value: float64(alternations), Threshold: float64(th.QPAlternations),
				Message: fmt.Sprintf(
					"base QP oscillated %d times (swing ≥ %d) between frames %d and %d: rate control is fighting its bandwidth feedback",
					alternations, th.QPSwing, journal[altStart].Frame, journal[endIdx].Frame),
			})
		}
		altStart, alternations, lastSign = -1, 0, 0
	}
	for i := 1; i < len(journal); i++ {
		d := journal[i].BaseQP - journal[i-1].BaseQP
		sign := 0
		if d >= th.QPSwing {
			sign = 1
		} else if d <= -th.QPSwing {
			sign = -1
		}
		switch {
		case sign == 0:
			flush(i - 1)
		case lastSign == 0 || sign == lastSign:
			// First swing of a potential run, or same direction (a trend,
			// not an oscillation) — restart counting from here.
			if lastSign == sign {
				flush(i - 1)
			}
			altStart, alternations, lastSign = i-1, 1, sign
		default:
			// Direction flipped: one more alternation.
			alternations++
			lastSign = sign
		}
	}
	if len(journal) > 0 {
		flush(len(journal) - 1)
	}
	return out
}

// detectBandwidthBias compares the estimate rate control consumed against
// the bandwidth the link realized for the same frames. A systematic ratio
// away from 1 means the estimator is mis-calibrated — over-estimation shows
// up as queue build-ups and outages, under-estimation as wasted uplink.
func detectBandwidthBias(journal []obs.JournalRecord, th Thresholds) []Finding {
	var logSum float64
	n, first, last := 0, -1, -1
	for _, j := range journal {
		if j.EstBWBps <= 0 || j.RealizedBWBps <= 0 {
			continue
		}
		logSum += math.Log(j.EstBWBps / j.RealizedBWBps)
		n++
		if first < 0 {
			first = j.Frame
		}
		last = j.Frame
	}
	if n < th.BWMinAcked {
		return nil
	}
	ratio := math.Exp(logSum / float64(n))
	if ratio > th.BWBiasRatio {
		return []Finding{{
			Check: "bandwidth-bias", Severity: Fail,
			FirstFrame: first, LastFrame: last,
			Value: ratio, Threshold: th.BWBiasRatio,
			Message: fmt.Sprintf(
				"bandwidth estimator systematically over-estimates: estimate/realized geometric mean %.2f over %d acked frames (limit %.2f)",
				ratio, n, th.BWBiasRatio),
		}}
	}
	if ratio < 1/th.BWBiasRatio {
		return []Finding{{
			Check: "bandwidth-bias", Severity: Fail,
			FirstFrame: first, LastFrame: last,
			Value: ratio, Threshold: 1 / th.BWBiasRatio,
			Message: fmt.Sprintf(
				"bandwidth estimator systematically under-estimates: estimate/realized geometric mean %.2f over %d acked frames (limit %.2f)",
				ratio, n, 1/th.BWBiasRatio),
		}}
	}
	return nil
}

// detectFGCollapse finds stretches where the agent is moving (and rotation
// removal succeeded, so the flow field was usable) yet foreground
// extraction kept coming back empty and the encoder fell back to a stale
// mask — the failure mode of §III-C when the ground prior or cluster
// growing collapses during sustained turns.
func detectFGCollapse(journal []obs.JournalRecord, th Thresholds) []Finding {
	var out []Finding
	runStart, runLen := -1, 0
	flush := func(endIdx int) {
		if runLen >= th.FGCollapseRun {
			out = append(out, Finding{
				Check: "fg-collapse", Severity: Fail,
				FirstFrame: journal[runStart].Frame, LastFrame: journal[endIdx].Frame,
				Value: float64(runLen), Threshold: float64(th.FGCollapseRun),
				Message: fmt.Sprintf(
					"foreground segmentation produced nothing fresh for %d consecutive moving frames (%d–%d): encoder is protecting a stale mask",
					runLen, journal[runStart].Frame, journal[endIdx].Frame),
			})
		}
		runStart, runLen = -1, 0
	}
	for i, j := range journal {
		collapsed := j.Moving && j.RotOK && (j.FGReused || j.FGMBs == 0)
		if collapsed {
			if runStart < 0 {
				runStart = i
			}
			runLen++
			continue
		}
		flush(i - 1)
	}
	if len(journal) > 0 {
		flush(len(journal) - 1)
	}
	return out
}

// detectOutageDrift finds long consecutive outage stretches during which
// detections were only advanced by local motion-vector tracking. MV
// tracking is accurate over a handful of frames but drifts beyond that
// (the paper's Figure 13), so a long run means the agent served stale
// boxes.
func detectOutageDrift(journal []obs.JournalRecord, th Thresholds) []Finding {
	var out []Finding
	runStart, runLen, boxes := -1, 0, 0
	flush := func(endIdx int) {
		if runLen >= th.OutageRun {
			out = append(out, Finding{
				Check: "outage-drift", Severity: Fail,
				FirstFrame: journal[runStart].Frame, LastFrame: journal[endIdx].Frame,
				Value: float64(runLen), Threshold: float64(th.OutageRun),
				Message: fmt.Sprintf(
					"link outage spanned %d consecutive frames (%d–%d); %d locally tracked boxes had no server correction and have likely drifted",
					runLen, journal[runStart].Frame, journal[endIdx].Frame, boxes),
			})
		}
		runStart, runLen, boxes = -1, 0, 0
	}
	for i, j := range journal {
		if j.Outage {
			if runStart < 0 {
				runStart = i
			}
			runLen++
			boxes = j.TrackedBoxes
			continue
		}
		flush(i - 1)
	}
	if len(journal) > 0 {
		flush(len(journal) - 1)
	}
	return out
}

// detectReconnectStorm finds windows where the client hammered the server
// with reconnect attempts. A storm with healthy per-attempt backoff is Warn
// (a long blackout legitimately accumulates attempts); a storm whose mean
// backoff collapsed below MinMeanBackoffSec is Fail — the backoff schedule
// is not damping the retry rate and the client is DoSing its own edge.
func detectReconnectStorm(journal []obs.JournalRecord, th Thresholds) []Finding {
	var out []Finding
	n := len(journal)
	for i := 0; i < n; {
		if journal[i].ReconnectAttempts == 0 {
			i++
			continue
		}
		// Burst starts here: total attempts and backoff over the next
		// StormWindowFrames frames.
		attempts, backoff, end := 0, 0.0, i
		for j := i; j < n && journal[j].Frame-journal[i].Frame < th.StormWindowFrames; j++ {
			if journal[j].ReconnectAttempts > 0 {
				attempts += journal[j].ReconnectAttempts
				backoff += journal[j].BackoffSec
				end = j
			}
		}
		if attempts < th.StormAttempts {
			i++
			continue
		}
		mean := backoff / float64(attempts)
		sev := Warn
		msg := fmt.Sprintf(
			"reconnect storm: %d reconnect attempts within %d frames (%d–%d)",
			attempts, th.StormWindowFrames, journal[i].Frame, journal[end].Frame)
		if mean < th.MinMeanBackoffSec {
			sev = Fail
			msg += fmt.Sprintf(
				"; mean backoff %.0f ms/attempt (floor %.0f ms) — the backoff schedule is not damping the retry rate",
				mean*1000, th.MinMeanBackoffSec*1000)
		}
		out = append(out, Finding{
			Check: "reconnect-storm", Severity: sev,
			FirstFrame: journal[i].Frame, LastFrame: journal[end].Frame,
			Value: float64(attempts), Threshold: float64(th.StormAttempts),
			Message: msg,
		})
		// Skip past this window so overlapping windows don't re-report the
		// same storm.
		i = end + 1
	}
	return out
}

// detectSlowRecovery grades time-to-recover: once the last failure event of
// an episode (outage, reconnect, NACK) has passed, the degradation ladder
// must climb back to the healthy rung within LadderRecoverFrames frames.
// Staying degraded longer means the hysteresis/dwell tuning is too sticky —
// the agent keeps paying the quality penalty on a link that has healed.
func detectSlowRecovery(journal []obs.JournalRecord, th Thresholds) []Finding {
	var out []Finding
	isFailure := func(j obs.JournalRecord) bool {
		return j.Outage || j.ReconnectAttempts > 0 || j.NackKeyframe
	}
	lastFail := -1 // index of the most recent failure-event frame
	reported := false
	for i, j := range journal {
		if isFailure(j) {
			lastFail = i
			reported = false
			continue
		}
		if lastFail < 0 || reported {
			continue
		}
		tail := j.Frame - journal[lastFail].Frame
		if j.DegradeLevel == 0 {
			if tail > th.LadderRecoverFrames {
				out = append(out, Finding{
					Check: "slow-recovery", Severity: Fail,
					FirstFrame: journal[lastFail].Frame, LastFrame: j.Frame,
					Value: float64(tail), Threshold: float64(th.LadderRecoverFrames),
					Message: fmt.Sprintf(
						"degradation ladder took %d frames after the last failure event (frame %d) to return to healthy (limit %d)",
						tail, journal[lastFail].Frame, th.LadderRecoverFrames),
				})
			}
			lastFail = -1
			continue
		}
		if tail > th.LadderRecoverFrames {
			out = append(out, Finding{
				Check: "slow-recovery", Severity: Fail,
				FirstFrame: journal[lastFail].Frame, LastFrame: j.Frame,
				Value: float64(tail), Threshold: float64(th.LadderRecoverFrames),
				Message: fmt.Sprintf(
					"degradation ladder stuck at level %d for %d frames after the last failure event (frame %d, limit %d)",
					j.DegradeLevel, tail, journal[lastFail].Frame, th.LadderRecoverFrames),
			})
			reported = true
		}
	}
	return out
}
