package doctor

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dive/internal/obs"
)

// Baseline is the committed latency reference a run is compared against:
// the per-stage duration histograms of a known-good run plus the
// environment that produced them. CI regenerates it with
// divedoctor -write-baseline.
type Baseline struct {
	Meta   obs.RunMeta                      `json:"run_meta"`
	Stages map[string]obs.HistogramSnapshot `json:"stages"`
}

// stageNames are the pipeline histograms the latency check covers — the
// per-frame agent stages and the edge stages, the spans of the end-to-end
// trace.
var stageNames = []string{
	obs.StageFrame,
	obs.StageMotion,
	obs.StageRotation,
	obs.StageForeground,
	obs.StageEncode,
	obs.StageEdgeDecode,
	obs.StageEdgeDetect,
}

// NewBaseline extracts the latency baseline from a telemetry snapshot.
func NewBaseline(meta obs.RunMeta, snap *obs.Snapshot) *Baseline {
	b := &Baseline{Meta: meta, Stages: map[string]obs.HistogramSnapshot{}}
	if snap == nil {
		return b
	}
	for _, name := range stageNames {
		if h, ok := snap.Histograms[name]; ok && h.Count > 0 {
			b.Stages[name] = h
		}
	}
	return b
}

// ReadBaseline decodes a committed baseline file.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("doctor: parse baseline: %w", err)
	}
	return &b, nil
}

// WriteBaseline encodes the baseline as indented JSON.
func (b *Baseline) WriteBaseline(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// CompareLatency diagnoses per-stage latency regressions of the current run
// against the baseline. When the two environments are comparable (same Go
// version, machine shape and worker count) absolute p95s are compared
// directly; otherwise absolute times mean nothing across machines, so the
// check falls back to each stage's share of total pipeline time, which is
// machine-invariant to first order. Findings are Warn severity when only
// the share-based fallback fired on a non-comparable environment.
func CompareLatency(cur *Baseline, base *Baseline, th Thresholds) []Finding {
	th = th.withDefaults()
	if base == nil || cur == nil || len(base.Stages) == 0 {
		return nil
	}
	comparable := cur.Meta.Comparable(base.Meta)
	var out []Finding
	if comparable {
		for _, name := range orderedStages(base.Stages) {
			bh := base.Stages[name]
			ch, ok := cur.Stages[name]
			if !ok || ch.Count == 0 || bh.P95 <= 0 {
				continue
			}
			ratio := ch.P95 / bh.P95
			if ratio > th.LatencyP95Ratio {
				out = append(out, Finding{
					Check: "latency-regression", Severity: Fail,
					Value: ratio, Threshold: th.LatencyP95Ratio,
					Message: fmt.Sprintf(
						"stage %s p95 regressed %.2fx vs baseline (%.2fms → %.2fms) on a comparable environment",
						name, ratio, bh.P95*1000, ch.P95*1000),
				})
			}
		}
		return out
	}
	// Non-comparable environments: compare each stage's share of the summed
	// stage time instead of absolute durations.
	baseShares, baseTotal := stageShares(base.Stages)
	curShares, curTotal := stageShares(cur.Stages)
	if baseTotal <= 0 || curTotal <= 0 {
		return nil
	}
	for _, name := range orderedStages(base.Stages) {
		bs, cs := baseShares[name], curShares[name]
		// Ignore stages too small for their share to be meaningful.
		if bs < 0.02 || cs <= 0 {
			continue
		}
		if ratio := cs / bs; ratio > th.StageShareGrowth {
			out = append(out, Finding{
				Check: "latency-regression", Severity: Warn,
				Value: ratio, Threshold: th.StageShareGrowth,
				Message: fmt.Sprintf(
					"stage %s grew from %.0f%% to %.0f%% of pipeline time (%.2fx); environments differ, so absolute times were not compared",
					name, bs*100, cs*100, ratio),
			})
		}
	}
	return out
}

// stageShares maps each stage (excluding the whole-frame envelope, which
// contains the others) to its fraction of the summed per-stage p95s.
func stageShares(stages map[string]obs.HistogramSnapshot) (map[string]float64, float64) {
	total := 0.0
	for name, h := range stages {
		if name == obs.StageFrame {
			continue
		}
		total += h.P95
	}
	shares := map[string]float64{}
	if total <= 0 {
		return shares, 0
	}
	for name, h := range stages {
		if name == obs.StageFrame {
			continue
		}
		shares[name] = h.P95 / total
	}
	return shares, total
}

func orderedStages(m map[string]obs.HistogramSnapshot) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
