package obs

import "testing"

// BenchmarkSpanDisabled measures the instrumentation cost when no recorder
// is installed — the path every library user pays. The acceptance bar is
// <5 ns/op: a nil check on each side and no clock reads.
func BenchmarkSpanDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := r.StartStage(StageEncode)
		_ = t.Stop()
	}
}

// BenchmarkCounterDisabled is the nil-counter fast path.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter(MetricFrames).Inc()
	}
}

// BenchmarkTraceDisabled measures the full disabled frame-trace path —
// mint a context, run a stage span, record a sim span — which must stay
// allocation-free and within a few nanoseconds, like the plain span path.
func BenchmarkTraceDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := r.StartTrace(i)
		s := r.StartStageSpan(ctx, "motion", "agent", StageMotion)
		_ = s.End()
		r.RecordSpan(ctx, "send", "agent", 0, 1)
	}
}

// BenchmarkSpanEnabled is the live cost: two clock reads plus one
// histogram observation.
func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRecorder(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := r.StartStage(StageEncode)
		_ = t.Stop()
	}
}

// BenchmarkHistogramObserve is the raw observation cost (no clock reads).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultDurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
