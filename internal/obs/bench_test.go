package obs

import "testing"

// BenchmarkSpanDisabled measures the instrumentation cost when no recorder
// is installed — the path every library user pays. The acceptance bar is
// <5 ns/op: a nil check on each side and no clock reads.
func BenchmarkSpanDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := r.StartStage(StageEncode)
		_ = t.Stop()
	}
}

// BenchmarkCounterDisabled is the nil-counter fast path.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter(MetricFrames).Inc()
	}
}

// BenchmarkTraceDisabled measures the full disabled frame-trace path —
// mint a context, run a stage span, record a sim span — which must stay
// allocation-free and within a few nanoseconds, like the plain span path.
func BenchmarkTraceDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx := r.StartTrace(i)
		s := r.StartStageSpan(ctx, "motion", "agent", StageMotion)
		_ = s.End()
		r.RecordSpan(ctx, "send", "agent", 0, 1)
	}
}

// BenchmarkLabeledCounterDisabled is the nil fast path through a labeled
// family — the per-session instrumentation sites in internal/edge and
// internal/core run this when telemetry is off, so it must stay within a
// few nanoseconds and allocation-free like the unlabeled path.
func BenchmarkLabeledCounterDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.LabeledCounter(MetricEdgeSessionFrames, SessionLabel).With("s").Inc()
	}
}

// BenchmarkLabeledHistogramDisabled is the nil labeled-histogram path.
func BenchmarkLabeledHistogramDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.LabeledHistogram(StageEdgeSessionDecode, SessionLabel).With("s").Observe(0.003)
	}
}

// BenchmarkSLODisabled is the nil SLO-observation path.
func BenchmarkSLODisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.ObserveSLO("s", SLOSample{LatencySec: 0.01, FGShare: 0.1})
	}
}

// BenchmarkLabeledCounterHeld is the recommended hot path when telemetry is
// on: resolve the child once, observe many times — identical to the
// unlabeled counter after the one-time lookup.
func BenchmarkLabeledCounterHeld(b *testing.B) {
	r := NewRecorder(1)
	c := r.LabeledCounter(MetricEdgeSessionFrames, SessionLabel).With("s")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkLabeledCounterWith includes the per-observation map lookup, for
// sites that cannot hold the child.
func BenchmarkLabeledCounterWith(b *testing.B) {
	r := NewRecorder(1)
	fam := r.LabeledCounter(MetricEdgeSessionFrames, SessionLabel)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fam.With("s").Inc()
	}
}

// BenchmarkSpanEnabled is the live cost: two clock reads plus one
// histogram observation.
func BenchmarkSpanEnabled(b *testing.B) {
	r := NewRecorder(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := r.StartStage(StageEncode)
		_ = t.Stop()
	}
}

// BenchmarkHistogramObserve is the raw observation cost (no clock reads).
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultDurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
