package obs

import (
	"strings"
	"testing"
)

func TestLabeledCounterBasics(t *testing.T) {
	reg := NewRegistry()
	fam := reg.LabeledCounter("rpc_total", "session")
	if fam.Key() != "session" {
		t.Fatalf("Key = %q, want session", fam.Key())
	}
	fam.With("a").Add(3)
	fam.Inc("b")
	fam.Inc("b")
	if got := fam.With("a").Value(); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	// With returns the same child for the same value.
	if fam.With("a") != fam.With("a") {
		t.Fatal("With(a) returned distinct children")
	}
	// The same name returns the same family.
	if reg.LabeledCounter("rpc_total", "ignored") != fam {
		t.Fatal("second LabeledCounter call returned a new family")
	}
	var order []string
	fam.Each(func(v string, n int64) { order = append(order, v) })
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("Each order = %v, want [a b]", order)
	}
}

func TestLabeledNilSafety(t *testing.T) {
	// Every path on a nil family, nil child, and nil recorder must be a
	// no-op — the contract that lets instrumentation sites skip guards.
	var c *LabeledCounter
	var g *LabeledGauge
	var h *LabeledHistogram
	c.With("x").Add(1)
	c.Inc("x")
	c.Each(func(string, int64) { t.Fatal("Each on nil family invoked fn") })
	if c.Key() != "" {
		t.Fatal("nil family Key != \"\"")
	}
	g.With("x").Set(2)
	g.Set("x", 2)
	g.Each(func(string, float64) { t.Fatal("Each on nil family invoked fn") })
	h.With("x").Observe(0.5)
	h.Observe("x", 0.5)
	h.Each(func(string, *Histogram) { t.Fatal("Each on nil family invoked fn") })

	var rec *Recorder
	rec.LabeledCounter("a", "k").With("x").Inc()
	rec.LabeledGauge("b", "k").With("x").Set(1)
	rec.LabeledHistogram("c", "k").With("x").Observe(1)
	rec.ObserveSLO("s", SLOSample{LatencySec: 0.1})
}

func TestLabeledOverflowFold(t *testing.T) {
	reg := NewRegistry()
	reg.SetMaxLabelValues(2)
	fam := reg.LabeledCounter("sess_total", "session")
	fam.Inc("a")
	fam.Inc("b")
	fam.Inc("c") // over the bound: folds into _overflow
	fam.Inc("d")
	if got := fam.With("a").Value(); got != 1 {
		t.Fatalf("a = %d, want 1", got)
	}
	if got := fam.With(OverflowLabel).Value(); got != 2 {
		t.Fatalf("overflow = %d, want 2 (c and d folded)", got)
	}
	// Established values keep their own children after the fold.
	fam.Inc("b")
	if got := fam.With("b").Value(); got != 2 {
		t.Fatalf("b = %d, want 2", got)
	}
	var values []string
	fam.Each(func(v string, _ int64) { values = append(values, v) })
	if len(values) != 3 {
		t.Fatalf("families = %v, want exactly a, b, %s", values, OverflowLabel)
	}
}

func TestLabeledPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.LabeledCounter("edge_session_frames_total", "session").Add("nuScenes-1", 7)
	reg.LabeledGauge("slo_burn_rate", "session").Set("nuScenes-1", 1.5)
	reg.LabeledHistogram("edge_session_decode_seconds", "session", []float64{0.01, 0.1}).
		Observe("nuScenes-1", 0.05)
	// An empty family must not emit even a TYPE line.
	reg.LabeledCounter("never_used_total", "session")

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE edge_session_frames_total counter",
		`edge_session_frames_total{session="nuScenes-1"} 7`,
		`slo_burn_rate{session="nuScenes-1"} 1.5`,
		`edge_session_decode_seconds_bucket{session="nuScenes-1",le="0.1"} 1`,
		`edge_session_decode_seconds_count{session="nuScenes-1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "never_used_total") {
		t.Errorf("empty family leaked into exposition:\n%s", out)
	}
}

func TestSnapshotIncludesLabeledFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.LabeledCounter("sess_frames", "session").Add("a", 4)
	reg.LabeledGauge("sess_burn", "session").Set("a", 0.5)
	reg.LabeledHistogram("sess_lat", "session", DefaultDurationBuckets).Observe("a", 0.2)
	reg.LabeledCounter("empty", "session")

	s := reg.Snapshot()
	if got := s.LabeledCounters["sess_frames"]["a"]; got != 4 {
		t.Fatalf("snapshot counter = %d, want 4", got)
	}
	if got := s.LabeledGauges["sess_burn"]["a"]; got != 0.5 {
		t.Fatalf("snapshot gauge = %g, want 0.5", got)
	}
	if got := s.LabeledHistograms["sess_lat"]["a"].Count; got != 1 {
		t.Fatalf("snapshot histogram count = %d, want 1", got)
	}
	if _, ok := s.LabeledCounters["empty"]; ok {
		t.Fatal("empty family appeared in snapshot")
	}
}
