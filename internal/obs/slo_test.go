package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestSLOHealthyWithinBudget(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{WindowFrames: 100}, nil)
	for i := 0; i < 100; i++ {
		tr.Observe("s", SLOSample{LatencySec: 0.05, FGShare: 0.10})
	}
	st, ok := tr.SessionStatus("s")
	if !ok {
		t.Fatal("session not tracked")
	}
	if !st.Healthy || st.BurnRate != 0 {
		t.Fatalf("healthy window reported burn %g healthy=%t", st.BurnRate, st.Healthy)
	}
	if st.Frames != 100 {
		t.Fatalf("frames = %d, want 100", st.Frames)
	}
	if st.LatencyP99Sec != 0.05 {
		t.Fatalf("p99 = %g, want 0.05", st.LatencyP99Sec)
	}
}

func TestSLOBurnDuringFaultAndRecovery(t *testing.T) {
	// A fault window pushes outage-tracked frames well over the 5% budget;
	// burn must exceed 1 during the fault and fall back under once enough
	// healthy frames slide the window past it.
	cfg := SLOConfig{WindowFrames: 50}
	tr := NewSLOTracker(cfg, nil)
	for i := 0; i < 40; i++ {
		tr.Observe("s", SLOSample{LatencySec: 0.05, FGShare: 0.10})
	}
	for i := 0; i < 10; i++ { // outage burst: 20% of the window
		tr.Observe("s", SLOSample{LatencySec: 0.40, FGShare: 0.10, Outage: true})
	}
	st, _ := tr.SessionStatus("s")
	if st.Healthy {
		t.Fatalf("fault window reported healthy: %+v", st)
	}
	if st.OutageFrac != 0.2 {
		t.Fatalf("outage frac = %g, want 0.2", st.OutageFrac)
	}
	if want := 0.2 / 0.05; st.OutageBurn != want {
		t.Fatalf("outage burn = %g, want %g", st.OutageBurn, want)
	}
	if st.BurnRate < st.OutageBurn {
		t.Fatalf("burn rate %g below worst objective %g", st.BurnRate, st.OutageBurn)
	}

	// Recovery: a full window of healthy frames displaces the fault.
	for i := 0; i < 50; i++ {
		tr.Observe("s", SLOSample{LatencySec: 0.05, FGShare: 0.10})
	}
	st, _ = tr.SessionStatus("s")
	if !st.Healthy || st.OutageFrac != 0 {
		t.Fatalf("post-recovery window still unhealthy: %+v", st)
	}
}

func TestSLOUnobservedDimensions(t *testing.T) {
	// Server-side samples carry no FG share (negative); agent-side outage
	// samples may carry no latency. Unobserved dimensions must not count as
	// violations.
	tr := NewSLOTracker(SLOConfig{WindowFrames: 10}, nil)
	for i := 0; i < 10; i++ {
		tr.Observe("s", SLOSample{LatencySec: 0.05, FGShare: -1})
	}
	st, _ := tr.SessionStatus("s")
	if st.FGShareBurn != 0 || st.FGShareMean != 0 {
		t.Fatalf("unobserved FG dimension burned: %+v", st)
	}
	if !st.Healthy {
		t.Fatalf("latency-only window unhealthy: %+v", st)
	}
}

func TestSLOSessionOverflowFold(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{WindowFrames: 10, MaxSessions: 2}, nil)
	tr.Observe("a", SLOSample{LatencySec: 0.05, FGShare: 0.1})
	tr.Observe("b", SLOSample{LatencySec: 0.05, FGShare: 0.1})
	tr.Observe("c", SLOSample{LatencySec: 0.05, FGShare: 0.1})
	tr.Observe("d", SLOSample{LatencySec: 0.05, FGShare: 0.1})
	sts := tr.Status()
	if len(sts) != 3 {
		t.Fatalf("tracked %d sessions, want a, b and %s", len(sts), OverflowLabel)
	}
	ov, ok := tr.SessionStatus(OverflowLabel)
	if !ok || ov.Frames != 2 {
		t.Fatalf("overflow window = %+v ok=%t, want 2 folded frames", ov, ok)
	}
}

func TestSLOStatusPublishesLabeledGauges(t *testing.T) {
	reg := NewRegistry()
	tr := NewSLOTracker(SLOConfig{WindowFrames: 10}, reg)
	for i := 0; i < 10; i++ {
		tr.Observe("sess-1", SLOSample{LatencySec: 0.40, FGShare: 0.1, Outage: true})
	}
	tr.Status()
	if got := reg.LabeledGauge(GaugeSLOBurnRate, SessionLabel).With("sess-1").Value(); got <= 1 {
		t.Fatalf("burn gauge = %g, want > 1 for an all-outage window", got)
	}
	if got := reg.LabeledGauge(GaugeSLOLatencyP99, SessionLabel).With("sess-1").Value(); got != 0.40 {
		t.Fatalf("p99 gauge = %g, want 0.40", got)
	}
	if got := reg.LabeledGauge(GaugeSLOOutageFrac, SessionLabel).With("sess-1").Value(); got != 1 {
		t.Fatalf("outage gauge = %g, want 1", got)
	}
}

func TestSLODebugEndpoint(t *testing.T) {
	rec := NewRecorder(16)
	rec.ConfigureSLO(SLOConfig{WindowFrames: 20})
	for i := 0; i < 20; i++ {
		rec.ObserveSLO("sess-1", SLOSample{LatencySec: 0.30, FGShare: 0.1})
	}
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Config   SLOConfig   `json:"config"`
		Sessions []SLOStatus `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Config.WindowFrames != 20 {
		t.Fatalf("config window = %d, want 20", doc.Config.WindowFrames)
	}
	if len(doc.Sessions) != 1 || doc.Sessions[0].Session != "sess-1" {
		t.Fatalf("sessions = %+v, want one sess-1 row", doc.Sessions)
	}
	if doc.Sessions[0].Healthy {
		t.Fatal("all frames over latency target reported healthy")
	}

	// The burn also lands on /metrics as a labeled gauge.
	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `slo_burn_rate{session="sess-1"}`) {
		t.Fatalf("/metrics missing slo_burn_rate series:\n%s", sb.String())
	}
}

func TestSLONilSafety(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("s", SLOSample{})
	if tr.Status() != nil {
		t.Fatal("nil tracker Status != nil")
	}
	if _, ok := tr.SessionStatus("s"); ok {
		t.Fatal("nil tracker claims a session")
	}
	var rec *Recorder
	if rec.SLO() != nil {
		t.Fatal("nil recorder SLO() != nil")
	}
	rec.ConfigureSLO(SLOConfig{})
	rec.ObserveSLO("s", SLOSample{})
}
