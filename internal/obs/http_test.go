package obs

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestNilRecorderHandlerReturns503 pins the disabled-telemetry contract:
// the handler can be mounted unconditionally and answers 503 everywhere
// instead of panicking or falling through to another mux.
func TestNilRecorderHandlerReturns503(t *testing.T) {
	var r *Recorder
	h := r.Handler()
	if h == nil {
		t.Fatal("nil recorder Handler() is nil")
	}
	for _, path := range []string{"/", "/metrics", "/debug/vars", "/debug/frames", "/debug/journal", "/debug/spans"} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != 503 {
			t.Errorf("%s: status %d, want 503", path, w.Code)
		}
	}
}

// TestMetricsEndpointPrometheusWellFormed drives real pipeline-ish metrics
// through /metrics and parses the exposition: every sample line must be
// "name value" or "name{le=...} value" with a numeric value, every metric
// must carry a preceding # TYPE line, and histograms must expose
// cumulative, monotonically non-decreasing buckets ending in +Inf plus
// _sum/_count.
func TestMetricsEndpointPrometheusWellFormed(t *testing.T) {
	rec := NewRecorder(8)
	rec.Counter(MetricFrames).Add(12)
	rec.Gauge(GaugeBWEstimate).Set(2e6)
	for i := 0; i < 40; i++ {
		rec.Histogram(StageEncode).Observe(0.004)
	}

	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	typed := map[string]string{}
	var lastBucket int64
	var infSeen, sumSeen, countSeen bool
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[fields[2]] = fields[3]
			lastBucket = -1
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "\"}") {
				t.Fatalf("malformed label set: %q", line)
			}
			base = base[:i]
		}
		base = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE for %q", line, base)
		}
		if typed[base] == "histogram" {
			switch {
			case strings.Contains(name, "_bucket"):
				n, _ := strconv.ParseInt(val, 10, 64)
				if n < lastBucket {
					t.Fatalf("histogram buckets not cumulative at %q (%d < %d)", line, n, lastBucket)
				}
				lastBucket = n
				if strings.Contains(name, `le="+Inf"`) {
					infSeen = true
				}
			case strings.HasSuffix(name, "_sum"):
				sumSeen = true
			case strings.HasSuffix(name, "_count"):
				countSeen = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(typed) != 3 {
		t.Errorf("exposed %d metrics, want 3 (counter, gauge, histogram): %v", len(typed), typed)
	}
	if !infSeen || !sumSeen || !countSeen {
		t.Errorf("histogram exposition incomplete: +Inf=%v sum=%v count=%v", infSeen, sumSeen, countSeen)
	}
}

// TestDebugFramesRoundTripsThroughDecoder serves /debug/frames and decodes
// the body with the journal-side FrameRecord decoder — the exact path
// divedoctor takes when pointed at a live agent.
func TestDebugFramesRoundTripsThroughDecoder(t *testing.T) {
	rec := NewRecorder(8)
	want := []FrameRecord{
		{Frame: 0, Type: "I", BaseQP: 30, Bits: 50000, EstBWBps: 2e6, TotalMs: 12},
		{Frame: 1, Type: "P", BaseQP: 26, Bits: 20000, EstBWBps: 2.1e6, TotalMs: 9, AckBits: 20000, AckEndSec: 0.1},
	}
	for _, fr := range want {
		rec.RecordFrame(fr)
	}
	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/frames", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	got, err := ReadFrameRecords(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestDebugJournalEndpoint serves /debug/journal and round-trips it through
// ReadJournal.
func TestDebugJournalEndpoint(t *testing.T) {
	rec := NewRecorder(8)
	rec.RecordJournal(JournalRecord{TraceID: 1, Frame: 0, BaseQP: 28, RCTrials: []QPTrial{{QP: 25, Bits: 40000}}})
	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/journal", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	got, err := ReadJournal(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TraceID != 1 || len(got[0].RCTrials) != 1 {
		t.Fatalf("journal round-trip mangled: %+v", got)
	}
}

// TestDebugRuntimeEndpoint serves /debug/runtime and decodes the body as a
// RuntimeStats snapshot — the path divedoctor's gc-pressure follower polls.
func TestDebugRuntimeEndpoint(t *testing.T) {
	rec := NewRecorder(8)
	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/runtime", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var st RuntimeStats
	if err := json.NewDecoder(w.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.HeapLiveBytes == 0 || st.Goroutines == 0 || st.GOMAXPROCS == 0 {
		t.Errorf("implausible runtime snapshot: %+v", st)
	}
	if st.TotalAllocBytes == 0 || st.Mallocs == 0 {
		t.Errorf("cumulative allocation counters missing: %+v", st)
	}
	// Serving the endpoint also refreshes the runtime gauges.
	if g := rec.Gauge(GaugeGoHeapLiveBytes).Value(); g <= 0 {
		t.Errorf("heap gauge not refreshed: %v", g)
	}
}
