package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
)

// Fleet aggregation: the layer that turns N per-session telemetry streams
// into one fleet picture. Each session (one agent↔server stream) owns a
// Recorder; the FleetAggregator periodically folds every registered
// recorder's registry and SLO window into a FleetRollup — aggregate
// frames/sec, exactly-merged latency quantiles (Histogram.Merge over
// identical bounds), per-profile breakdowns, fleet error-budget burn, and a
// straggler table of sessions whose p99 or burn rate stands k× above the
// fleet median. Rollups are kept in a bounded ring served as JSONL at
// /debug/fleet, the stream the fleet doctor detectors (straggler-session,
// noisy-neighbor, fleet-burn) follow.

// FleetConfig tunes the aggregator. The zero value is usable: every field
// falls back to the documented default.
type FleetConfig struct {
	// FramesMetric/BytesMetric name the per-session counters folded into the
	// fleet totals (defaults MetricFrames/MetricBytes).
	FramesMetric string
	BytesMetric  string
	// LatencyMetric names the per-session end-to-end latency histogram
	// merged into the fleet distribution (default StageResponse).
	LatencyMetric string
	// RollupCap bounds the retained rollup ring (default 512).
	RollupCap int
	// StragglerFactor is k: a session is a straggler when its p99 exceeds
	// k× the fleet median p99, or its burn rate exceeds k× max(median burn,
	// 1). Default 3.
	StragglerFactor float64
	// MinSessionFrames excludes sessions with fewer SLO window samples from
	// both the medians and the straggler table (warm-up noise). Default 16.
	MinSessionFrames int
	// MaxStragglers caps the straggler table per rollup (default 16; the
	// worst offenders by factor are kept).
	MaxStragglers int
	// Registry, when set, receives the fleet gauges (GaugeFleet*) on every
	// rollup.
	Registry *Registry
	// CollectRuntime attaches process runtime stats (heap, GC pause,
	// goroutines) to each rollup — wall-clock-dependent, so deterministic
	// report modes leave it off.
	CollectRuntime bool
	// MaxServers bounds the distinct per-server rollup rows (default
	// DefaultMaxLabelValues); further members fold into one OverflowLabel
	// row, mirroring the labeled-metric cardinality cap.
	MaxServers int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.FramesMetric == "" {
		c.FramesMetric = MetricFrames
	}
	if c.BytesMetric == "" {
		c.BytesMetric = MetricBytes
	}
	if c.LatencyMetric == "" {
		c.LatencyMetric = StageResponse
	}
	if c.RollupCap <= 0 {
		c.RollupCap = 512
	}
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 3
	}
	if c.MinSessionFrames <= 0 {
		c.MinSessionFrames = 16
	}
	if c.MaxStragglers <= 0 {
		c.MaxStragglers = 16
	}
	if c.MaxServers <= 0 {
		c.MaxServers = DefaultMaxLabelValues
	}
	return c
}

// Straggler is one row of the rollup's straggler table: a session whose
// latency tail or burn rate stands out against the fleet median.
type Straggler struct {
	Session string `json:"session"`
	Profile string `json:"profile,omitempty"`
	// Server is the cluster member currently serving the session (set via
	// SetSessionServer), so a straggler is attributable to a member.
	Server string `json:"server,omitempty"`
	Frames int    `json:"frames"`
	// LatencyP99Sec/BurnRate are the session's own window values.
	LatencyP99Sec float64 `json:"latency_p99_sec"`
	BurnRate      float64 `json:"burn_rate"`
	// Factor is how many multiples of the fleet median the worst dimension
	// sits at; Reason names that dimension ("latency-p99" or "burn-rate").
	Factor float64 `json:"factor"`
	Reason string  `json:"reason"`
}

// ProfileRollup is the fleet picture restricted to one world profile.
type ProfileRollup struct {
	Profile       string  `json:"profile"`
	Sessions      int     `json:"sessions"`
	FramesTotal   int64   `json:"frames_total"`
	BytesTotal    int64   `json:"bytes_total"`
	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP95Sec float64 `json:"latency_p95_sec"`
	LatencyP99Sec float64 `json:"latency_p99_sec"`
	MeanBurn      float64 `json:"mean_burn"`
	Unhealthy     int     `json:"unhealthy"`
}

// RuntimeRollup is the process runtime slice attached to rollups when
// FleetConfig.CollectRuntime is set (wall-clock-dependent; omitted from
// deterministic reports).
type RuntimeRollup struct {
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	GCPauseP99Sec float64 `json:"gc_pause_p99_sec"`
	Goroutines    int     `json:"goroutines"`
}

// FleetRollup is one periodic fold of every session's telemetry into the
// fleet picture — the /debug/fleet JSONL record and the input of the fleet
// doctor detectors.
type FleetRollup struct {
	// Tick is the rollup sequence number (0-based); SimTimeSec is the
	// caller-supplied clock (virtual time in the simulator, seconds since
	// start on a live server).
	Tick       int     `json:"tick"`
	SimTimeSec float64 `json:"sim_time_sec"`

	Sessions    int   `json:"sessions"`
	FramesTotal int64 `json:"frames_total"`
	BytesTotal  int64 `json:"bytes_total"`
	// FramesPerSec is the fleet throughput over the interval since the
	// previous rollup (whole-run average on the first).
	FramesPerSec float64 `json:"frames_per_sec"`

	// Latency quantiles of the exactly-merged per-session distributions.
	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP95Sec float64 `json:"latency_p95_sec"`
	LatencyP99Sec float64 `json:"latency_p99_sec"`

	// FleetBurn is the frame-weighted aggregate burn rate: for each SLO
	// objective, the fleet-wide violation fraction over its budget, worst
	// objective kept. Unhealthy counts sessions whose own burn exceeds 1;
	// OutageFrac is the frame-weighted outage-tracked fraction.
	FleetBurn  float64 `json:"fleet_burn"`
	Unhealthy  int     `json:"unhealthy_sessions"`
	OutageFrac float64 `json:"outage_frac"`

	// MedianP99Sec/MedianBurn are the per-session medians the straggler
	// factors are measured against.
	MedianP99Sec float64 `json:"median_p99_sec"`
	MedianBurn   float64 `json:"median_burn"`

	PerProfile []ProfileRollup `json:"per_profile,omitempty"`
	PerServer  []ServerRollup  `json:"per_server,omitempty"`
	Stragglers []Straggler     `json:"stragglers,omitempty"`

	Runtime *RuntimeRollup `json:"runtime,omitempty"`
}

// ServerRollup is one cluster member's row in a rollup: how many sessions it
// carries, the migration flow through it, and how stale its last heartbeat
// is. Fed by ObserveServer/NoteMigration; row count is capped at
// FleetConfig.MaxServers with the overflow folded into one OverflowLabel
// row.
type ServerRollup struct {
	Server string `json:"server"`
	// State is the balancer's membership verdict ("healthy", "suspect",
	// "down", "draining") when a cluster feeds it; empty otherwise.
	State    string `json:"state,omitempty"`
	Sessions int    `json:"sessions"`
	// MigrationsIn/Out count completed session handoffs onto/off this member
	// since aggregator start.
	MigrationsIn  int64 `json:"migrations_in"`
	MigrationsOut int64 `json:"migrations_out"`
	// LastHeartbeatAgeSec is the age of the member's last successful health
	// probe at rollup time (-1 when never probed).
	LastHeartbeatAgeSec float64 `json:"last_heartbeat_age_sec"`
}

// sessionSource is one registered per-session telemetry stream.
type sessionSource struct {
	name    string
	profile string
	server  string
	rec     *Recorder
}

// FleetAggregator folds per-session recorders into FleetRollups. All methods
// are safe for concurrent use; Register/Unregister may race with Rollup (a
// rollup sees a point-in-time membership). A nil aggregator is a no-op.
type FleetAggregator struct {
	cfg FleetConfig

	mu       sync.Mutex
	sessions map[string]*sessionSource
	ring     []FleetRollup // bounded rollup history
	ringPos  int           // next write index once the ring is full
	tick     int
	lastT    float64
	lastN    int64

	// Per-server dimension (cluster mode): member status snapshots and
	// migration counters, bounded at cfg.MaxServers distinct names.
	serverMu sync.Mutex
	servers  map[string]*serverStat
}

// serverStat accumulates one member's row between rollups.
type serverStat struct {
	state    string
	sessions int
	hbAge    float64
	migIn    int64
	migOut   int64
	observed bool // ObserveServer ever called (vs. migration-only rows)
}

// NewFleetAggregator builds an aggregator with cfg (zero value for
// defaults).
func NewFleetAggregator(cfg FleetConfig) *FleetAggregator {
	return &FleetAggregator{
		cfg:      cfg.withDefaults(),
		sessions: make(map[string]*sessionSource),
	}
}

// Register adds (or replaces) a session's telemetry source. profile groups
// the session in per-profile rollups; rec must outlive the registration.
func (a *FleetAggregator) Register(name, profile string, rec *Recorder) {
	if a == nil || rec == nil {
		return
	}
	a.mu.Lock()
	a.sessions[name] = &sessionSource{name: name, profile: profile, rec: rec}
	a.mu.Unlock()
}

// Unregister removes a session's source; its history stays in past rollups.
func (a *FleetAggregator) Unregister(name string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	delete(a.sessions, name)
	a.mu.Unlock()
}

// SetSessionServer labels a registered session with the cluster member
// currently serving it, so straggler rows carry member attribution. Safe to
// call on every migration; unknown sessions are ignored.
func (a *FleetAggregator) SetSessionServer(session, server string) {
	if a == nil {
		return
	}
	a.mu.Lock()
	if src := a.sessions[session]; src != nil {
		src.server = server
	}
	a.mu.Unlock()
}

// serverStatFor returns (creating) the row for name. Past MaxServers
// distinct names the row folds into OverflowLabel — the same cardinality
// discipline as labeled metric families — counting each fold on
// MetricLabelOverflow when a registry is attached. Callers hold serverMu.
func (a *FleetAggregator) serverStatFor(name string) *serverStat {
	if a.servers == nil {
		a.servers = make(map[string]*serverStat)
	}
	if st, ok := a.servers[name]; ok {
		return st
	}
	if len(a.servers) >= a.cfg.MaxServers && name != OverflowLabel {
		if reg := a.cfg.Registry; reg != nil {
			reg.Counter(MetricLabelOverflow).Inc()
		}
		return a.serverStatFor(OverflowLabel)
	}
	st := &serverStat{hbAge: -1}
	a.servers[name] = st
	return st
}

// ObserveServer upserts one cluster member's status snapshot: its membership
// state, current session count and the age of its last successful heartbeat.
// Call once per member per rollup period.
func (a *FleetAggregator) ObserveServer(name, state string, sessions int, hbAgeSec float64) {
	if a == nil || name == "" {
		return
	}
	a.serverMu.Lock()
	st := a.serverStatFor(name)
	st.state, st.sessions, st.hbAge = state, sessions, hbAgeSec
	a.serverMu.Unlock()
}

// NoteMigration attributes one completed session handoff: out of from, into
// to. Either side may be empty (unknown member).
func (a *FleetAggregator) NoteMigration(from, to string) {
	if a == nil {
		return
	}
	a.serverMu.Lock()
	if from != "" {
		a.serverStatFor(from).migOut++
	}
	if to != "" {
		a.serverStatFor(to).migIn++
	}
	a.serverMu.Unlock()
}

// serverRollups snapshots the per-server rows, name-sorted with the
// overflow row last.
func (a *FleetAggregator) serverRollups() []ServerRollup {
	a.serverMu.Lock()
	defer a.serverMu.Unlock()
	if len(a.servers) == 0 {
		return nil
	}
	out := make([]ServerRollup, 0, len(a.servers))
	for name, st := range a.servers {
		out = append(out, ServerRollup{
			Server: name, State: st.state, Sessions: st.sessions,
			MigrationsIn: st.migIn, MigrationsOut: st.migOut,
			LastHeartbeatAgeSec: st.hbAge,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Server == OverflowLabel) != (out[j].Server == OverflowLabel) {
			return out[j].Server == OverflowLabel
		}
		return out[i].Server < out[j].Server
	})
	return out
}

// SessionCount returns the number of registered sources.
func (a *FleetAggregator) SessionCount() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.sessions)
}

// Rollup folds every registered session into one FleetRollup stamped with
// the caller's clock, appends it to the ring, and publishes the fleet
// gauges.
func (a *FleetAggregator) Rollup(simTimeSec float64) FleetRollup {
	if a == nil {
		return FleetRollup{}
	}
	a.mu.Lock()
	sources := make([]*sessionSource, 0, len(a.sessions))
	sessServer := make(map[string]string, len(a.sessions))
	for _, s := range a.sessions {
		sources = append(sources, s)
		if s.server != "" {
			sessServer[s.name] = s.server
		}
	}
	tick := a.tick
	a.tick++
	lastT, lastN := a.lastT, a.lastN
	a.mu.Unlock()
	sort.Slice(sources, func(i, j int) bool { return sources[i].name < sources[j].name })

	ru := a.fold(tick, simTimeSec, lastT, lastN, sources, sessServer)
	ru.PerServer = a.serverRollups()

	a.mu.Lock()
	a.lastT, a.lastN = simTimeSec, ru.FramesTotal
	if len(a.ring) < a.cfg.RollupCap {
		a.ring = append(a.ring, ru)
	} else {
		a.ring[a.ringPos] = ru
		a.ringPos = (a.ringPos + 1) % a.cfg.RollupCap
	}
	a.mu.Unlock()

	if reg := a.cfg.Registry; reg != nil {
		reg.Gauge(GaugeFleetSessions).Set(float64(ru.Sessions))
		reg.Gauge(GaugeFleetFPS).Set(ru.FramesPerSec)
		reg.Gauge(GaugeFleetLatencyP99).Set(ru.LatencyP99Sec)
		reg.Gauge(GaugeFleetBurnRate).Set(ru.FleetBurn)
		reg.Gauge(GaugeFleetStragglers).Set(float64(len(ru.Stragglers)))
		reg.Counter(MetricFleetRollups).Inc()
	}
	return ru
}

// profileAcc accumulates one profile's slice of the fold.
type profileAcc struct {
	sessions  int
	frames    int64
	bytes     int64
	lat       *Histogram
	burnSum   float64
	burnN     int
	unhealthy int
}

// fold computes the rollup over a fixed source list (no aggregator locks
// held — sources' own registries do their internal locking).
func (a *FleetAggregator) fold(tick int, simTime, lastT float64, lastN int64, sources []*sessionSource, sessServer map[string]string) FleetRollup {
	ru := FleetRollup{Tick: tick, SimTimeSec: simTime, Sessions: len(sources)}
	fleetLat := NewHistogram(DefaultDurationBuckets)
	profiles := make(map[string]*profileAcc)
	sloCfg := DefaultSLOConfig()
	if len(sources) > 0 {
		if t := sources[0].rec.SLO(); t != nil {
			sloCfg = t.Config()
		}
	}

	type sessionStat struct {
		src *sessionSource
		st  SLOStatus
	}
	var stats []sessionStat
	var wFrames, wLatOver, wFGUnder, wOutage float64

	for _, src := range sources {
		reg := src.rec.Registry()
		frames := reg.Counter(a.cfg.FramesMetric).Value()
		bytes := reg.Counter(a.cfg.BytesMetric).Value()
		lat := reg.Histogram(a.cfg.LatencyMetric, DefaultDurationBuckets)
		ru.FramesTotal += frames
		ru.BytesTotal += bytes
		_ = fleetLat.Merge(lat)

		pa := profiles[src.profile]
		if pa == nil {
			pa = &profileAcc{lat: NewHistogram(DefaultDurationBuckets)}
			profiles[src.profile] = pa
		}
		pa.sessions++
		pa.frames += frames
		pa.bytes += bytes
		_ = pa.lat.Merge(lat)

		st, ok := src.rec.SLO().SessionStatus(src.name)
		if !ok {
			st, ok = src.rec.SLO().SessionStatus("")
		}
		if !ok || st.Frames == 0 {
			continue
		}
		stats = append(stats, sessionStat{src: src, st: st})
		pa.burnSum += st.BurnRate
		pa.burnN++
		if !st.Healthy {
			pa.unhealthy++
			ru.Unhealthy++
		}
		w := float64(st.Frames)
		wFrames += w
		wLatOver += w * st.LatencyOverFrac
		wFGUnder += w * st.FGUnderFrac
		wOutage += w * st.OutageFrac
	}

	ru.LatencyP50Sec = fleetLat.Quantile(0.50)
	ru.LatencyP95Sec = fleetLat.Quantile(0.95)
	ru.LatencyP99Sec = fleetLat.Quantile(0.99)
	if dt := simTime - lastT; dt > 0 && tick > 0 {
		ru.FramesPerSec = float64(ru.FramesTotal-lastN) / dt
	} else if simTime > 0 {
		ru.FramesPerSec = float64(ru.FramesTotal) / simTime
	}
	if wFrames > 0 {
		ru.OutageFrac = wOutage / wFrames
		latBurn := (wLatOver / wFrames) / sloCfg.LatencyBudget
		fgBurn := (wFGUnder / wFrames) / sloCfg.FGShareBudget
		outBurn := (wOutage / wFrames) / sloCfg.MaxOutageFraction
		ru.FleetBurn = math.Max(latBurn, math.Max(fgBurn, outBurn))
	}

	// Per-session medians over warm sessions, then the straggler table.
	var p99s, burns []float64
	for _, s := range stats {
		if s.st.Frames < a.cfg.MinSessionFrames {
			continue
		}
		p99s = append(p99s, s.st.LatencyP99Sec)
		burns = append(burns, s.st.BurnRate)
	}
	ru.MedianP99Sec = median(p99s)
	ru.MedianBurn = median(burns)
	for _, s := range stats {
		if s.st.Frames < a.cfg.MinSessionFrames {
			continue
		}
		factor, reason := 0.0, ""
		if ru.MedianP99Sec > 0 {
			if f := s.st.LatencyP99Sec / ru.MedianP99Sec; f > factor {
				factor, reason = f, "latency-p99"
			}
		}
		// Burn factors are measured against max(median, 1): a fleet burning
		// near zero should not mark a session at burn 0.1 a straggler.
		if f := s.st.BurnRate / math.Max(ru.MedianBurn, 1); f > factor {
			factor, reason = f, "burn-rate"
		}
		if factor > a.cfg.StragglerFactor {
			ru.Stragglers = append(ru.Stragglers, Straggler{
				Session:       s.src.name,
				Profile:       s.src.profile,
				Server:        sessServer[s.src.name],
				Frames:        s.st.Frames,
				LatencyP99Sec: s.st.LatencyP99Sec,
				BurnRate:      s.st.BurnRate,
				Factor:        factor,
				Reason:        reason,
			})
		}
	}
	sort.Slice(ru.Stragglers, func(i, j int) bool {
		if ru.Stragglers[i].Factor != ru.Stragglers[j].Factor {
			return ru.Stragglers[i].Factor > ru.Stragglers[j].Factor
		}
		return ru.Stragglers[i].Session < ru.Stragglers[j].Session
	})
	if len(ru.Stragglers) > a.cfg.MaxStragglers {
		ru.Stragglers = ru.Stragglers[:a.cfg.MaxStragglers]
	}

	for _, name := range sortedKeys(profiles) {
		pa := profiles[name]
		pr := ProfileRollup{
			Profile:       name,
			Sessions:      pa.sessions,
			FramesTotal:   pa.frames,
			BytesTotal:    pa.bytes,
			LatencyP50Sec: pa.lat.Quantile(0.50),
			LatencyP95Sec: pa.lat.Quantile(0.95),
			LatencyP99Sec: pa.lat.Quantile(0.99),
			Unhealthy:     pa.unhealthy,
		}
		if pa.burnN > 0 {
			pr.MeanBurn = pa.burnSum / float64(pa.burnN)
		}
		ru.PerProfile = append(ru.PerProfile, pr)
	}

	if a.cfg.CollectRuntime {
		st := CollectRuntimeStats()
		ru.Runtime = &RuntimeRollup{
			HeapLiveBytes: st.HeapLiveBytes,
			GCPauseP99Sec: st.GCPauseP99Sec,
			Goroutines:    st.Goroutines,
		}
	}
	return ru
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Recent returns up to n rollups, oldest first (all when n <= 0).
func (a *FleetAggregator) Recent(n int) []FleetRollup {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]FleetRollup, 0, len(a.ring))
	if len(a.ring) < a.cfg.RollupCap {
		out = append(out, a.ring...)
	} else {
		out = append(out, a.ring[a.ringPos:]...)
		out = append(out, a.ring[:a.ringPos]...)
	}
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Last returns the most recent rollup (ok false before the first).
func (a *FleetAggregator) Last() (FleetRollup, bool) {
	r := a.Recent(1)
	if len(r) == 0 {
		return FleetRollup{}, false
	}
	return r[0], true
}

// Handler serves the rollup ring as JSONL, oldest first — the /debug/fleet
// endpoint the fleet doctor follows (cursor on the tick field).
func (a *FleetAggregator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if a == nil {
			http.Error(w, "fleet aggregation disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ru := range a.Recent(0) {
			if err := enc.Encode(ru); err != nil {
				return
			}
		}
	})
}
