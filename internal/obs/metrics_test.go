package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Get-or-create races on the same names deliberately.
			c := reg.Counter("c")
			g := reg.Gauge("g")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(id))
			}
		}(w)
	}
	wg.Wait()
	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if v := reg.Gauge("g").Value(); v < 0 || v >= workers {
		t.Errorf("gauge = %v, want one of the worker ids", v)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4, 5})
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%6) + 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	// Each worker observed 0.5+1.5+...+5.5 repeated perWorker/6 times...
	// simpler: the sum of one worker's observations.
	oneWorker := 0.0
	for i := 0; i < perWorker; i++ {
		oneWorker += float64(i%6) + 0.5
	}
	want := oneWorker * workers
	if got := h.Sum(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	// 20 linear buckets over [0, 1); a uniform sample's quantiles must be
	// recovered to within one bucket width.
	bounds := make([]float64, 20)
	for i := range bounds {
		bounds[i] = float64(i+1) / 20
	}
	h := NewHistogram(bounds)
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(float64(i) / n)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.50}, {0.95, 0.95}, {0.99, 0.99}, {0.10, 0.10},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 0.05 {
			t.Errorf("Quantile(%v) = %v, want %v ± 0.05", tc.q, got, tc.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(10) // overflow bucket
	if got := h.Quantile(0.5); got != 2 {
		t.Errorf("overflow-only quantile = %v, want highest bound 2", got)
	}
}

func TestPrometheusExposition(t *testing.T) {
	rec := NewRecorder(4)
	rec.Counter(MetricFrames).Add(7)
	rec.Gauge(GaugeBWEstimate).Set(2e6)
	rec.Histogram(StageFrame).Observe(0.003)
	var sb strings.Builder
	if err := rec.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE dive_frames_total counter",
		"dive_frames_total 7",
		"# TYPE netsim_bw_estimate_bps gauge",
		"netsim_bw_estimate_bps 2e+06",
		"# TYPE dive_frame_seconds histogram",
		`dive_frame_seconds_bucket{le="+Inf"} 1`,
		"dive_frame_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if d := r.StartStage("x").Stop(); d != 0 {
		t.Errorf("nil recorder stage duration = %v, want 0", d)
	}
	r.RecordFrame(FrameRecord{})
	r.AmendLastFrame(func(*FrameRecord) { t.Error("amend ran on nil recorder") })
	if r.Frames().Total() != 0 {
		t.Error("nil ring total != 0")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil recorder snapshot not empty")
	}
	if r.Handler() == nil {
		t.Error("nil recorder handler is nil, want a 503-serving handler")
	}
	if got := r.Summary(); got != "telemetry off" {
		t.Errorf("nil summary = %q", got)
	}
}

func TestRegistryIdentity(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Error("same-name counters are distinct")
	}
	h1 := reg.Histogram("h", []float64{1, 2})
	h2 := reg.Histogram("h", []float64{5, 6, 7})
	if h1 != h2 {
		t.Error("same-name histograms are distinct")
	}
}

func TestSnapshotQuantiles(t *testing.T) {
	rec := NewRecorder(4)
	h := rec.Histogram(StageEncode)
	for i := 0; i < 1000; i++ {
		h.Observe(0.004) // within the 2.5–5 ms bucket
	}
	s := rec.Snapshot()
	hs, ok := s.Histograms[StageEncode]
	if !ok {
		t.Fatal("snapshot missing encode histogram")
	}
	if hs.Count != 1000 {
		t.Errorf("count = %d", hs.Count)
	}
	if hs.P50 < 0.0025 || hs.P50 > 0.005 {
		t.Errorf("p50 = %v, want within the 2.5–5 ms bucket", hs.P50)
	}
}
