package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
)

// SLO tracking: per-session service-level objectives evaluated over sliding
// frame windows, with error-budget burn rates.
//
// The three objectives proxy the paper's evaluation axes on a live stream:
//
//   - latency: the fraction of frames whose end-to-end response time exceeds
//     TargetLatencySec must stay within LatencyBudget (so the configured
//     target behaves as the window's p(1-LatencyBudget), p99 by default) —
//     the response-time axis of the paper's Table I / Fig 16;
//   - foreground-bit share: the fraction of frames whose foreground share
//     falls below MinFGShare must stay within FGShareBudget — the accuracy
//     proxy, since foreground AP tracks the bits DiVE protects;
//   - outage: the fraction of frames covered only by local MOT tracking must
//     stay below MaxOutageFraction — the staleness axis of Fig 13.
//
// A burn rate is the observed violation fraction divided by the budget: 1.0
// means the session is consuming its error budget exactly as fast as the SLO
// allows, >1 means it will exhaust the budget before the window turns over.
// Fleet controllers (admission, shedding, migration) key off burn rates
// rather than raw violation counts because they are comparable across
// objectives and sessions.

// SLOConfig tunes the tracker. The zero value is replaced field-wise by
// DefaultSLOConfig.
type SLOConfig struct {
	// TargetLatencySec is the per-frame end-to-end latency objective.
	TargetLatencySec float64
	// LatencyBudget is the allowed fraction of frames over the target
	// (0.01 makes TargetLatencySec the window's p99 objective).
	LatencyBudget float64
	// MinFGShare is the foreground-share floor (the accuracy proxy).
	MinFGShare float64
	// FGShareBudget is the allowed fraction of frames under the floor.
	FGShareBudget float64
	// MaxOutageFraction is the allowed fraction of outage-tracked frames.
	MaxOutageFraction float64
	// WindowFrames is the sliding-window length in samples.
	WindowFrames int
	// MaxSessions bounds tracked-session cardinality; further sessions fold
	// into OverflowLabel.
	MaxSessions int
}

// DefaultSLOConfig returns the standard tuning.
func DefaultSLOConfig() SLOConfig {
	return SLOConfig{
		TargetLatencySec:  0.25,
		LatencyBudget:     0.01,
		MinFGShare:        0.02,
		FGShareBudget:     0.10,
		MaxOutageFraction: 0.05,
		WindowFrames:      240,
		MaxSessions:       DefaultMaxLabelValues,
	}
}

func (c SLOConfig) withDefaults() SLOConfig {
	d := DefaultSLOConfig()
	if c.TargetLatencySec <= 0 {
		c.TargetLatencySec = d.TargetLatencySec
	}
	if c.LatencyBudget <= 0 {
		c.LatencyBudget = d.LatencyBudget
	}
	if c.MinFGShare <= 0 {
		c.MinFGShare = d.MinFGShare
	}
	if c.FGShareBudget <= 0 {
		c.FGShareBudget = d.FGShareBudget
	}
	if c.MaxOutageFraction <= 0 {
		c.MaxOutageFraction = d.MaxOutageFraction
	}
	if c.WindowFrames <= 0 {
		c.WindowFrames = d.WindowFrames
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = d.MaxSessions
	}
	return c
}

// SLOSample is one frame's SLO-relevant outcome. Negative LatencySec or
// FGShare marks the dimension unobserved for this frame (a server-side
// sample has no foreground share; an agent-side sample journaled before the
// ack has no latency yet).
type SLOSample struct {
	LatencySec float64
	FGShare    float64
	Outage     bool
}

// SLOStatus is the evaluated state of one session's objectives over the
// current window — the /debug/slo row.
type SLOStatus struct {
	Session string `json:"session"`
	// Frames is the number of samples in the window.
	Frames int `json:"frames"`

	LatencyP99Sec   float64 `json:"latency_p99_sec"`
	LatencyOverFrac float64 `json:"latency_over_frac"`
	LatencyBurn     float64 `json:"latency_burn"`

	FGShareMean float64 `json:"fg_share_mean"`
	FGUnderFrac float64 `json:"fg_under_frac"`
	FGShareBurn float64 `json:"fg_share_burn"`
	OutageFrac  float64 `json:"outage_frac"`
	OutageBurn  float64 `json:"outage_burn"`

	// BurnRate is the worst objective's burn rate; Healthy means every
	// objective is burning within budget (BurnRate <= 1).
	BurnRate float64 `json:"burn_rate"`
	Healthy  bool    `json:"healthy"`
}

// sloWindow is one session's sliding sample window (a bounded ring).
type sloWindow struct {
	buf   []SLOSample
	total int
}

func (w *sloWindow) push(s SLOSample, capacity int) {
	if len(w.buf) < capacity {
		w.buf = append(w.buf, s)
	} else {
		w.buf[w.total%capacity] = s
	}
	w.total++
}

// SLOTracker evaluates per-session objectives over sliding windows. A nil
// tracker is a valid no-op. When constructed with a registry, evaluation
// also publishes per-session burn-rate and p99 gauges as labeled metrics.
type SLOTracker struct {
	cfg SLOConfig
	reg *Registry

	mu       sync.Mutex
	sessions map[string]*sloWindow
}

// NewSLOTracker builds a tracker. reg may be nil (no gauge export).
func NewSLOTracker(cfg SLOConfig, reg *Registry) *SLOTracker {
	return &SLOTracker{cfg: cfg.withDefaults(), reg: reg, sessions: make(map[string]*sloWindow)}
}

// Config returns the effective configuration.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}
	}
	return t.cfg
}

// Observe folds one frame outcome into the session's window.
func (t *SLOTracker) Observe(session string, s SLOSample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	w := t.sessions[session]
	if w == nil {
		if len(t.sessions) >= t.cfg.MaxSessions {
			session = OverflowLabel
			w = t.sessions[session]
		}
		if w == nil {
			w = &sloWindow{}
			t.sessions[session] = w
		}
	}
	w.push(s, t.cfg.WindowFrames)
	t.mu.Unlock()
}

// Status evaluates every session's objectives over its current window,
// sorted by session name, and refreshes the exported gauges.
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SLOStatus, 0, len(t.sessions))
	for name, w := range t.sessions {
		out = append(out, t.evaluate(name, w))
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	if t.reg != nil && len(out) > 0 {
		burn := t.reg.LabeledGauge(GaugeSLOBurnRate, SessionLabel)
		p99 := t.reg.LabeledGauge(GaugeSLOLatencyP99, SessionLabel)
		outage := t.reg.LabeledGauge(GaugeSLOOutageFrac, SessionLabel)
		for _, s := range out {
			burn.Set(s.Session, s.BurnRate)
			p99.Set(s.Session, s.LatencyP99Sec)
			outage.Set(s.Session, s.OutageFrac)
		}
	}
	return out
}

// SessionStatus evaluates a single session ("" selects the only session if
// exactly one is tracked). ok is false when the session is unknown.
func (t *SLOTracker) SessionStatus(session string) (SLOStatus, bool) {
	if t == nil {
		return SLOStatus{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if session == "" && len(t.sessions) == 1 {
		for name, w := range t.sessions {
			return t.evaluate(name, w), true
		}
	}
	w := t.sessions[session]
	if w == nil {
		return SLOStatus{}, false
	}
	return t.evaluate(session, w), true
}

// evaluate computes one window's status. Caller holds t.mu.
func (t *SLOTracker) evaluate(name string, w *sloWindow) SLOStatus {
	st := SLOStatus{Session: name, Frames: len(w.buf)}
	var lats []float64
	latOver, fgN, fgUnder, fgSum, outages := 0, 0, 0, 0.0, 0
	for _, s := range w.buf {
		if s.LatencySec > 0 {
			lats = append(lats, s.LatencySec)
			if s.LatencySec > t.cfg.TargetLatencySec {
				latOver++
			}
		}
		if s.FGShare >= 0 {
			fgN++
			fgSum += s.FGShare
			if s.FGShare < t.cfg.MinFGShare {
				fgUnder++
			}
		}
		if s.Outage {
			outages++
		}
	}
	if len(lats) > 0 {
		sort.Float64s(lats)
		st.LatencyP99Sec = lats[int(math.Ceil(0.99*float64(len(lats))))-1]
		st.LatencyOverFrac = float64(latOver) / float64(len(lats))
		st.LatencyBurn = st.LatencyOverFrac / t.cfg.LatencyBudget
	}
	if fgN > 0 {
		st.FGShareMean = fgSum / float64(fgN)
		st.FGUnderFrac = float64(fgUnder) / float64(fgN)
		st.FGShareBurn = st.FGUnderFrac / t.cfg.FGShareBudget
	}
	if len(w.buf) > 0 {
		st.OutageFrac = float64(outages) / float64(len(w.buf))
		st.OutageBurn = st.OutageFrac / t.cfg.MaxOutageFraction
	}
	st.BurnRate = math.Max(st.LatencyBurn, math.Max(st.FGShareBurn, st.OutageBurn))
	st.Healthy = st.BurnRate <= 1
	return st
}

// sloReport is the /debug/slo JSON document.
type sloReport struct {
	Config   SLOConfig   `json:"config"`
	Sessions []SLOStatus `json:"sessions"`
}

// Handler serves the tracker state as JSON — the /debug/slo endpoint.
func (t *SLOTracker) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "slo tracking disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sloReport{Config: t.cfg, Sessions: t.Status()})
	})
}

// SLO returns the recorder's SLO tracker (nil for a nil recorder).
func (r *Recorder) SLO() *SLOTracker {
	if r == nil {
		return nil
	}
	return r.slo
}

// ConfigureSLO replaces the recorder's SLO tracker with one using cfg.
// Existing windows are discarded; call before observations begin.
func (r *Recorder) ConfigureSLO(cfg SLOConfig) {
	if r == nil {
		return
	}
	r.slo = NewSLOTracker(cfg, r.reg)
}

// ObserveSLO folds one frame outcome into the session's SLO window.
func (r *Recorder) ObserveSLO(session string, s SLOSample) {
	if r == nil {
		return
	}
	r.slo.Observe(session, s)
}
