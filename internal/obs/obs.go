package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical metric names. Keeping them in one place documents the schema
// and lets the README reference a single source of truth.
const (
	// Agent pipeline (internal/core).
	MetricFrames        = "dive_frames_total"
	MetricBits          = "dive_bits_total"
	MetricBytes         = "dive_bytes_total"
	MetricIFrames       = "dive_iframes_total"
	MetricForcedIFrames = "dive_forced_iframes_total"
	GaugeEta            = "dive_eta"
	GaugeFGFraction     = "dive_fg_fraction"
	StageFrame          = "dive_frame_seconds"
	StageMotion         = "dive_stage_motion_seconds"
	StageRotation       = "dive_stage_rotation_seconds"
	StageForeground     = "dive_stage_foreground_seconds"
	StageEncode         = "dive_stage_encode_seconds"

	// Codec internals (internal/codec). StageCodecEntropy covers rate
	// control and quantization (bit-accounting); StageCodecEmit is the
	// deferred bitstream serialization of the two-phase encoder.
	StageCodecMotion  = "codec_motion_search_seconds"
	StageCodecDCT     = "codec_dct_seconds"
	StageCodecEntropy = "codec_entropy_seconds"
	StageCodecEmit    = "codec_emit_seconds"
	MetricRCTrials    = "codec_rc_trials_total"

	// Network simulator (internal/netsim).
	GaugeBWEstimate = "netsim_bw_estimate_bps"
	GaugeBWActual   = "netsim_bw_actual_bps"
	MetricAckedBits = "netsim_acked_bits_total"
	StageAck        = "netsim_ack_seconds"
	StageQueueDelay = "netsim_queue_delay_seconds"
	MetricOutageTx  = "netsim_outage_sends_total"

	// Edge server (internal/edge).
	MetricEdgeSessions = "edge_sessions_total"
	MetricEdgeFrames   = "edge_frames_total"
	MetricEdgeBytes    = "edge_bytes_total"
	StageEdgeDecode    = "edge_decode_seconds"
	StageEdgeDetect    = "edge_detect_seconds"
	// Robustness counters: resumed sessions, corrupt/malformed messages
	// survived, and keyframe NACKs issued by the server.
	MetricEdgeResumes = "edge_session_resumes_total"
	MetricEdgeCorrupt = "edge_corrupt_msgs_total"
	MetricEdgeNacks   = "edge_nacks_total"
	// Client-side robustness: reconnect attempts, ACK-deadline outage
	// activations, and sends suppressed by the degradation ladder.
	MetricClientReconnects = "edge_client_reconnects_total"
	MetricClientAckTimeout = "edge_client_ack_timeouts_total"
	MetricClientSkips      = "edge_client_skipped_sends_total"
	// Cluster migration counters: completed session handoffs (planned +
	// forced), Redirect messages received, and redirects rejected as
	// malformed or self-referential (never dialed).
	MetricClientMigrations   = "edge_client_migrations_total"
	MetricClientRedirects    = "edge_client_redirects_total"
	MetricClientBadRedirects = "edge_client_bad_redirects_total"
	// Server-side drain: sessions redirected away by RedirectSessions.
	MetricEdgeRedirectsSent = "edge_redirects_sent_total"

	// Baseline result queues (internal/baselines).
	GaugeResultQueueDepth = "baseline_result_queue_depth"
	MetricResults         = "baseline_results_total"
	MetricResultsDropped  = "baseline_results_dropped_total"

	// Experiment harness end-to-end response times.
	StageResponse = "e2e_response_seconds"

	// Parallel execution layer (internal/parallel): pool width, regions in
	// flight, cumulative regions and tasks dispatched.
	GaugeParallelWorkers  = "parallel_pool_workers"
	GaugeParallelActive   = "parallel_active_regions"
	MetricParallelRegions = "parallel_regions_total"
	MetricParallelTasks   = "parallel_tasks_total"

	// Frame-level pipeline (internal/parallel.Pipeline): configured depth
	// and the live number of frames concurrently in flight across stages.
	GaugePipelineDepth    = "pipeline_depth"
	GaugePipelineInFlight = "pipeline_frames_in_flight"

	// Per-session edge serving (internal/edge.Server), labeled by session on
	// top of the global MetricEdge* counters: frame/byte/NACK counts and
	// decode/detect latency per stream, the inputs of fleet-level routing
	// and shedding decisions.
	MetricEdgeSessionFrames = "edge_session_frames_total"
	MetricEdgeSessionBytes  = "edge_session_bytes_total"
	MetricEdgeSessionNacks  = "edge_session_nacks_total"
	StageEdgeSessionDecode  = "edge_session_decode_seconds"
	StageEdgeSessionDetect  = "edge_session_detect_seconds"

	// Agent-side per-session series (internal/core.Agent with a configured
	// Session): encoded frames and bits per stream, matching the edge
	// labels so both ends of one stream join on the session value.
	MetricAgentSessionFrames = "dive_session_frames_total"
	MetricAgentSessionBits   = "dive_session_bits_total"

	// SessionLabel is the label key of every per-session family.
	SessionLabel = "session"

	// SLO tracker gauges (slo.go), labeled by session: worst-objective burn
	// rate, window latency p99 and outage-tracked fraction.
	GaugeSLOBurnRate   = "slo_burn_rate"
	GaugeSLOLatencyP99 = "slo_latency_p99_seconds"
	GaugeSLOOutageFrac = "slo_outage_fraction"

	// Go runtime gauges (runtime.go): live heap bytes, GC pause p99 and
	// goroutine count, refreshed by UpdateRuntimeGauges.
	GaugeGoHeapLiveBytes = "go_heap_live_bytes"
	GaugeGoGCPauseP99    = "go_gc_pause_p99_seconds"
	GaugeGoGoroutines    = "go_goroutines"

	// MetricLabelOverflow counts lookups folded into OverflowLabel because a
	// labeled family hit its cardinality bound — the signal that per-session
	// series are silently collapsing and the cap needs raising (labeled.go).
	MetricLabelOverflow = "obs_label_overflow_total"

	// Fleet aggregation plane (fleet.go): fleet-wide gauges published by the
	// FleetAggregator each rollup tick.
	GaugeFleetSessions   = "fleet_sessions"
	GaugeFleetFPS        = "fleet_frames_per_sec"
	GaugeFleetLatencyP99 = "fleet_latency_p99_seconds"
	GaugeFleetBurnRate   = "fleet_burn_rate"
	GaugeFleetStragglers = "fleet_stragglers"
	MetricFleetRollups   = "fleet_rollups_total"
)

// Recorder bundles a metrics registry, a frame-lifecycle ring, a decision
// journal and a span ring for causal frame traces. A nil *Recorder is a
// valid, zero-cost no-op recorder; every method tolerates it, so
// instrumented code never guards.
type Recorder struct {
	reg     *Registry
	ring    *FrameRing
	journal *JournalRing
	spans   *SpanRing
	slo     *SLOTracker
	start   time.Time

	traceSeq atomic.Uint64 // trace IDs minted by StartTrace
	spanSeq  atomic.Uint64 // span IDs minted by StartSpan/RecordSpan

	// debugMu guards extra /debug handlers registered before Handler().
	debugMu    sync.Mutex
	debugExtra map[string]http.Handler
}

// NewRecorder creates a recorder whose frame ring and decision journal keep
// the last ringCap records (<= 0 selects 1024). The span ring keeps several
// spans per frame, so it is sized to a small multiple of ringCap.
func NewRecorder(ringCap int) *Recorder {
	if ringCap <= 0 {
		ringCap = 1024
	}
	reg := NewRegistry()
	return &Recorder{
		reg:     reg,
		ring:    NewFrameRing(ringCap),
		journal: NewJournalRing(ringCap),
		spans:   NewSpanRing(ringCap * spansPerFrame),
		slo:     NewSLOTracker(SLOConfig{}, reg),
		start:   time.Now(),
	}
}

// spansPerFrame sizes the span ring relative to the frame rings: a frame
// trace holds roughly one span per pipeline stage on each side of the link.
const spansPerFrame = 10

// Registry returns the underlying registry (nil for a nil recorder).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Frames returns the frame-lifecycle ring (nil for a nil recorder).
func (r *Recorder) Frames() *FrameRing {
	if r == nil {
		return nil
	}
	return r.ring
}

// Counter returns the named counter (nil, hence no-op, on a nil recorder).
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.reg.Counter(name)
}

// Gauge returns the named gauge (nil on a nil recorder).
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.reg.Gauge(name)
}

// Histogram returns the named duration histogram (nil on a nil recorder).
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.reg.Histogram(name, DefaultDurationBuckets)
}

// LabeledCounter returns the named counter family keyed by the label key
// (nil, hence no-op, on a nil recorder).
func (r *Recorder) LabeledCounter(name, key string) *LabeledCounter {
	if r == nil {
		return nil
	}
	return r.reg.LabeledCounter(name, key)
}

// LabeledGauge returns the named gauge family (nil on a nil recorder).
func (r *Recorder) LabeledGauge(name, key string) *LabeledGauge {
	if r == nil {
		return nil
	}
	return r.reg.LabeledGauge(name, key)
}

// LabeledHistogram returns the named duration-histogram family (nil on a
// nil recorder).
func (r *Recorder) LabeledHistogram(name, key string) *LabeledHistogram {
	if r == nil {
		return nil
	}
	return r.reg.LabeledHistogram(name, key, DefaultDurationBuckets)
}

// StageTimer times one pipeline stage. The zero value (returned by a nil
// recorder) is a no-op; no clock is read on either side.
type StageTimer struct {
	h     *Histogram
	start time.Time
}

// StartStage begins timing the named stage.
func (r *Recorder) StartStage(name string) StageTimer {
	if r == nil {
		return StageTimer{}
	}
	return StageTimer{h: r.Histogram(name), start: time.Now()}
}

// Stop records the elapsed time into the stage histogram and returns it
// (0 for the no-op timer).
func (t StageTimer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// RecordFrame appends one lifecycle record to the ring.
func (r *Recorder) RecordFrame(rec FrameRecord) {
	if r == nil {
		return
	}
	r.ring.Append(rec)
}

// AmendLastFrame applies fn to the most recently appended record (no-op
// when nil or empty) — used to attach uplink-ack data that arrives after
// the frame was recorded.
func (r *Recorder) AmendLastFrame(fn func(*FrameRecord)) {
	if r == nil {
		return
	}
	r.ring.AmendLast(fn)
}

// AmendFrameRecord applies fn to the lifecycle record of a specific frame —
// the pipelined counterpart of AmendLastFrame, for completions (deferred
// bitstream emit) that land after later frames were already recorded.
func (r *Recorder) AmendFrameRecord(frame int, fn func(*FrameRecord)) {
	if r == nil {
		return
	}
	r.ring.AmendFrame(frame, fn)
}

// Snapshot returns a point-in-time copy of every metric plus uptime.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	s := r.reg.Snapshot()
	s.UptimeSec = time.Since(r.start).Seconds()
	return s
}

// SnapshotJSON marshals Snapshot as indented JSON.
func (r *Recorder) SnapshotJSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}

// Summary renders a one-line human summary for periodic stderr progress:
// frame counts, encode-path latency quantiles and the live bandwidth
// estimate.
func (r *Recorder) Summary() string {
	if r == nil {
		return "telemetry off"
	}
	frames := r.Counter(MetricFrames).Value()
	bits := r.Counter(MetricBits).Value()
	h := r.Histogram(StageFrame)
	return fmt.Sprintf("frames=%d bits=%d frame p50=%.1fms p95=%.1fms est_bw=%.2fMbps uptime=%.0fs",
		frames, bits,
		h.Quantile(0.50)*1000, h.Quantile(0.95)*1000,
		r.Gauge(GaugeBWEstimate).Value()/1e6,
		time.Since(r.start).Seconds())
}

// defaultRec is the process-wide recorder used by components that are not
// explicitly wired (the experiment harness, baselines). Nil until a caller
// opts in via SetDefault, so library users pay nothing.
var defaultRec atomic.Pointer[Recorder]

// SetDefault installs r as the process-wide default recorder. Components
// constructed afterwards pick it up; pass nil to turn telemetry back off
// for new components.
func SetDefault(r *Recorder) {
	defaultRec.Store(r)
}

// Default returns the process-wide recorder, or nil (no-op) when none was
// installed.
func Default() *Recorder {
	return defaultRec.Load()
}
