package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
)

// Go runtime visibility: a small, stable slice of runtime/metrics surfaced
// as registry gauges and as a machine-readable block in divebench -json.
// At fleet scale the GC is a co-tenant of the encode path; these three
// numbers (live heap, GC pause tail, goroutine count) are the ones the
// ROADMAP's allocation-free steady-state work is graded against.

// runtimeSamples are the runtime/metrics keys we read. The GC pause
// histogram moved from /gc/pauses:seconds to /sched/pauses/total/gc:seconds
// in Go 1.22; we ask for both and use whichever the runtime serves.
var runtimeSamples = []string{
	"/memory/classes/heap/objects:bytes",
	"/sched/goroutines:goroutines",
	"/sched/pauses/total/gc:seconds",
	"/gc/pauses:seconds",
	"/gc/heap/allocs:bytes",
	"/gc/heap/allocs:objects",
}

// RuntimeStats is a point-in-time snapshot of the Go runtime health signals.
type RuntimeStats struct {
	// HeapLiveBytes is the size of live (not yet collected) heap objects.
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// GCPauseP99Sec is the p99 of the cumulative GC stop-the-world pause
	// distribution.
	GCPauseP99Sec float64 `json:"gc_pause_p99_sec"`
	Goroutines    int     `json:"goroutines"`
	NumGC         uint32  `json:"num_gc"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	// TotalAllocBytes/Mallocs are the cumulative heap allocation totals
	// since process start; deltas between two snapshots give the allocation
	// rate of the interval — what the throughput benchmark and the doctor's
	// gc-pressure detector reason about.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
}

// CollectRuntimeStats reads the runtime counters.
func CollectRuntimeStats() RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)
	st := RuntimeStats{GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			switch s.Name {
			case "/memory/classes/heap/objects:bytes":
				st.HeapLiveBytes = s.Value.Uint64()
			case "/sched/goroutines:goroutines":
				st.Goroutines = int(s.Value.Uint64())
			case "/gc/heap/allocs:bytes":
				st.TotalAllocBytes = s.Value.Uint64()
			case "/gc/heap/allocs:objects":
				st.Mallocs = s.Value.Uint64()
			}
		case metrics.KindFloat64Histogram:
			if st.GCPauseP99Sec == 0 {
				st.GCPauseP99Sec = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st.NumGC = ms.NumGC
	return st
}

// histQuantile estimates a quantile of a runtime/metrics histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank {
			// Buckets[i+1] is the bucket's upper bound; the first and last
			// bounds may be ±Inf.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, +1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// UpdateRuntimeGauges publishes the runtime stats as registry gauges
// (GaugeGoHeapLiveBytes, GaugeGoGCPauseP99, GaugeGoGoroutines). Call it
// periodically or before scraping; it is a no-op on a nil recorder.
func (r *Recorder) UpdateRuntimeGauges() RuntimeStats {
	st := CollectRuntimeStats()
	if r == nil {
		return st
	}
	r.Gauge(GaugeGoHeapLiveBytes).Set(float64(st.HeapLiveBytes))
	r.Gauge(GaugeGoGCPauseP99).Set(st.GCPauseP99Sec)
	r.Gauge(GaugeGoGoroutines).Set(float64(st.Goroutines))
	return st
}
