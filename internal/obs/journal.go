package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// QPTrial is one consulted probe of the rate-control QP bisection: the base
// QP tried and the exact bit count the trial pass produced. Speculative
// marks probes whose bit count came from the parallel prefetcher's memo
// rather than a pass executed inside the bisection loop.
type QPTrial struct {
	QP          int  `json:"qp"`
	Bits        int  `json:"bits"`
	Speculative bool `json:"speculative,omitempty"`
}

// JournalRecord is the decision journal of one frame: the inputs and
// outputs of every decision point the DiVE pipeline takes, from the
// motion-state judgement through rate control to outage handling. It is the
// causal companion of FrameRecord (which records how long stages took):
// the journal records what was decided and why, so an accuracy or bitrate
// anomaly can be attributed to a specific decision. Exported as JSONL at
// /debug/journal and consumed by cmd/divedoctor.
type JournalRecord struct {
	TraceID uint64  `json:"trace_id"`
	Frame   int     `json:"frame"`
	TimeSec float64 `json:"time_sec"`
	Type    string  `json:"type"` // "I" or "P"

	// Motion-state judgement (paper §III-B2): the non-zero MV ratio, the
	// configured threshold, the verdict and its margin. MeanSAD is the mean
	// matching cost of the motion vectors — a cheap confidence signal (high
	// SAD = unreliable vectors, low-texture or night scenes).
	Eta          float64 `json:"eta"`
	EtaThreshold float64 `json:"eta_threshold"`
	Moving       bool    `json:"moving"`
	MeanSAD      float64 `json:"mean_sad"`

	// Rotational-component elimination (§III-B3). RotResidual is the mean
	// flow magnitude after rotation removal divided by the mean magnitude
	// before it (1 = nothing removed; small = rotation dominated the flow).
	RotOK       bool    `json:"rot_ok"`
	PhiX        float64 `json:"phi_x"`
	PhiY        float64 `json:"phi_y"`
	RotResidual float64 `json:"rot_residual"`

	// Focus of expansion used for foreground extraction (§III-B3), in
	// centered image coordinates.
	FOEX float64 `json:"foe_x"`
	FOEY float64 `json:"foe_y"`

	// Foreground extraction (§III-C): per-class macroblock counts from the
	// ground / background / foreground segmentation, the object count, and
	// whether a stale extraction was reused.
	GroundMBs  int     `json:"ground_mbs"`
	FGMBs      int     `json:"fg_mbs"`
	BGMBs      int     `json:"bg_mbs"`
	FGObjects  int     `json:"fg_objects"`
	FGFraction float64 `json:"fg_fraction"`
	FGReused   bool    `json:"fg_reused"`

	// Adaptive video encoding (§III-D): the background QP offset, the
	// bandwidth-derived bit budget, the bisection path that chose the base
	// QP (every consulted probe with its trial bit count), and the final
	// outcome.
	Delta      int       `json:"delta"`
	TargetBits int       `json:"target_bits"`
	BaseQP     int       `json:"base_qp"`
	Bits       int       `json:"bits"`
	RCTrials   []QPTrial `json:"rc_trials,omitempty"`

	// Bandwidth estimation (§III-D1): the estimate rate control consumed,
	// and — amended when transport feedback arrives — the acknowledged
	// serialization interval and the bandwidth the link actually realized
	// over it. Estimate vs. realized is the estimator-bias signal.
	EstBWBps      float64 `json:"est_bw_bps"`
	AckBits       int     `json:"ack_bits,omitempty"`
	AckStartSec   float64 `json:"ack_start_sec,omitempty"`
	AckEndSec     float64 `json:"ack_end_sec,omitempty"`
	RealizedBWBps float64 `json:"realized_bw_bps,omitempty"`

	// Outage handling (§III-E), amended by the transport loop: whether this
	// frame's upload was abandoned on the head-of-queue timer, the queue
	// delay that triggered it, how many cached detections local MOT carried
	// forward, and whether the drop forced the next frame intra.
	Outage        bool    `json:"outage,omitempty"`
	QueueDelaySec float64 `json:"queue_delay_sec,omitempty"`
	TrackedBoxes  int     `json:"tracked_boxes,omitempty"`
	ForcedIFrame  bool    `json:"forced_iframe,omitempty"`

	// Graceful degradation (link-health ladder), recorded at encode time
	// and amended by the transport: the ladder level and health score the
	// frame was encoded under, the QP floor it imposed, whether the ladder
	// suppressed the upload entirely, and — on the live link — reconnect
	// accounting and server keyframe NACKs. divedoctor grades
	// time-to-recover and reconnect storms from these.
	DegradeLevel      int     `json:"degrade_level,omitempty"`
	LinkHealth        float64 `json:"link_health,omitempty"`
	QPFloor           int     `json:"qp_floor,omitempty"`
	SkippedSend       bool    `json:"skipped_send,omitempty"`
	ReconnectAttempts int     `json:"reconnect_attempts,omitempty"`
	BackoffSec        float64 `json:"backoff_sec,omitempty"`
	NackKeyframe      bool    `json:"nack_keyframe,omitempty"`

	// Session migration (edge cluster): amended onto the first frame the new
	// member acknowledged after a handoff. MigrationGapSec is the measured
	// re-detection gap — last server detection on the old member to this ack.
	// MigrationForced distinguishes a failover (member died) from a planned
	// redirect (drain/rebalance). divedoctor's migration-gap and
	// failover-storm detectors grade these.
	Migrated        bool    `json:"migrated,omitempty"`
	MigrationGapSec float64 `json:"migration_gap_sec,omitempty"`
	MigratedTo      string  `json:"migrated_to,omitempty"`
	MigrationForced bool    `json:"migration_forced,omitempty"`
}

// JournalRing is a bounded ring buffer of JournalRecords. A nil ring is a
// valid no-op.
type JournalRing struct {
	mu    sync.Mutex
	buf   []JournalRecord
	total int
}

// NewJournalRing creates a ring keeping the last capacity records.
func NewJournalRing(capacity int) *JournalRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &JournalRing{buf: make([]JournalRecord, 0, capacity)}
}

// Append adds one record, evicting the oldest when full.
func (r *JournalRing) Append(rec JournalRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.total%cap(r.buf)] = rec
	}
	r.total++
}

// AmendLast applies fn to the most recently appended record; no-op when
// empty.
func (r *JournalRing) AmendLast(fn func(*JournalRecord)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return
	}
	fn(&r.buf[(r.total-1)%cap(r.buf)])
}

// AmendFrame applies fn to the most recent retained record whose Frame
// field matches; no-op when the frame was never journaled or has been
// evicted. Pipelined runs use this instead of AmendLast: by the time a
// frame's transport/outage verdict lands, later frames may already have
// been journaled.
func (r *JournalRing) AmendFrame(frame int, fn func(*JournalRecord)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return
	}
	// Frames are journaled in increasing order, one record per frame, so
	// frame f normally sits exactly (newestFrame - f) slots behind the
	// newest record — an O(1) index instead of a back-scan, which matters on
	// the pipelined path where every frame's transport feedback amends.
	newest := &r.buf[(r.total-1)%cap(r.buf)]
	if delta := newest.Frame - frame; delta >= 0 && delta < len(r.buf) {
		k := r.total - 1 - delta
		if rec := &r.buf[k%cap(r.buf)]; rec.Frame == frame {
			fn(rec)
			return
		}
	}
	// Sparse journal (frames skipped or out of order): fall back to the
	// linear back-scan over the retained records.
	for k := r.total - 1; k >= 0 && k >= r.total-len(r.buf); k-- {
		rec := &r.buf[k%cap(r.buf)]
		if rec.Frame == frame {
			fn(rec)
			return
		}
	}
}

// Total returns how many records were ever appended.
func (r *JournalRing) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the retained records, oldest first.
func (r *JournalRing) Snapshot() []JournalRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JournalRecord, 0, len(r.buf))
	if r.total <= cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	head := r.total % cap(r.buf)
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// WriteJSONL writes the retained records as one JSON object per line,
// oldest first — the /debug/journal format.
func (r *JournalRing) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJournal decodes journal JSONL (the /debug/journal format), skipping
// blank lines.
func ReadJournal(r io.Reader) ([]JournalRecord, error) {
	var out []JournalRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ReadFrameRecords decodes frame-lifecycle JSONL (the /debug/frames and
// divetrace -format jsonl format), skipping blank lines.
func ReadFrameRecords(r io.Reader) ([]FrameRecord, error) {
	var out []FrameRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec FrameRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// Journal returns the decision-journal ring (nil for a nil recorder).
func (r *Recorder) Journal() *JournalRing {
	if r == nil {
		return nil
	}
	return r.journal
}

// RecordJournal appends one decision record to the journal ring.
func (r *Recorder) RecordJournal(rec JournalRecord) {
	if r == nil {
		return
	}
	r.journal.Append(rec)
}

// AmendLastJournal applies fn to the most recently journaled frame — used
// to attach transport feedback (ack, realized bandwidth) and outage/MOT
// handoffs that happen after the frame was encoded.
func (r *Recorder) AmendLastJournal(fn func(*JournalRecord)) {
	if r == nil {
		return
	}
	r.journal.AmendLast(fn)
}

// AmendJournalFrame applies fn to the journal record of a specific frame —
// the pipelined counterpart of AmendLastJournal, for feedback that arrives
// after later frames have already been journaled.
func (r *Recorder) AmendJournalFrame(frame int, fn func(*JournalRecord)) {
	if r == nil {
		return
	}
	r.journal.AmendFrame(frame, fn)
}
