package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Labeled metrics: families of counters/gauges/histograms sharing one metric
// name and exactly one label key (e.g. session or stage). They exist for the
// fleet dimension — a multi-session edge server needs per-stream series on
// top of the process-wide globals — while keeping the registry's two core
// contracts:
//
//   - nil safety: every method on a nil family or a nil child is a no-op, so
//     instrumentation sites never guard;
//   - bounded cardinality: each family admits at most its maxValues distinct
//     label values (default DefaultMaxLabelValues); further values share one
//     child under the OverflowLabel value, so a misbehaving client cannot
//     grow the registry without bound.
//
// A child is an ordinary *Counter/*Gauge/*Histogram, so the per-label hot
// path is exactly the unlabeled hot path after a single map lookup, and
// callers that observe repeatedly should hold the child (With is the lookup).

// OverflowLabel is the label value that absorbs observations once a family's
// cardinality bound is reached.
const OverflowLabel = "_overflow"

// DefaultMaxLabelValues bounds the distinct label values per family.
const DefaultMaxLabelValues = 64

// LabeledCounter is a counter family keyed by one label.
type LabeledCounter struct {
	labeled[*Counter]
}

// LabeledGauge is a gauge family keyed by one label.
type LabeledGauge struct {
	labeled[*Gauge]
}

// LabeledHistogram is a histogram family keyed by one label. All children
// share the family's bucket bounds.
type LabeledHistogram struct {
	labeled[*Histogram]
}

// labeled is the shared family machinery: a bounded label→child map. reg
// points back at the owning registry so cardinality folds can surface on the
// MetricLabelOverflow counter; the increment happens strictly after l.mu is
// released, because registry readers (Snapshot, WritePrometheus) take r.mu
// before l.mu and the reverse order would deadlock.
type labeled[T any] struct {
	key       string
	maxValues int
	newChild  func() T
	reg       *Registry

	mu       sync.RWMutex
	children map[string]T
}

func newLabeled[T any](reg *Registry, key string, maxValues int, newChild func() T) labeled[T] {
	if maxValues <= 0 {
		maxValues = DefaultMaxLabelValues
	}
	return labeled[T]{
		key:       key,
		maxValues: maxValues,
		newChild:  newChild,
		reg:       reg,
		children:  make(map[string]T),
	}
}

// with returns the child for value, creating it on first use and folding
// into OverflowLabel once the cardinality bound is hit. Every folded lookup
// increments obs_label_overflow_total, so silent cardinality loss is visible
// on /metrics.
func (l *labeled[T]) with(value string) T {
	l.mu.RLock()
	c, ok := l.children[value]
	l.mu.RUnlock()
	if ok {
		return c
	}
	c, folded := l.resolve(value)
	if folded && l.reg != nil {
		l.reg.Counter(MetricLabelOverflow).Inc()
	}
	return c
}

// resolve is the slow path of with: create-or-fold under the write lock,
// reporting whether the lookup was folded into OverflowLabel.
func (l *labeled[T]) resolve(value string) (T, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if c, ok := l.children[value]; ok {
		return c, false
	}
	folded := false
	if len(l.children) >= l.maxValues && value != OverflowLabel {
		folded = true
		if c, ok := l.children[OverflowLabel]; ok {
			return c, true
		}
		value = OverflowLabel
	}
	c := l.newChild()
	l.children[value] = c
	return c, folded
}

// snapshot returns the children under a sorted copy of their label values.
func (l *labeled[T]) snapshot() (values []string, children map[string]T) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	children = make(map[string]T, len(l.children))
	for v, c := range l.children {
		children[v] = c
	}
	return sortedKeys(children), children
}

// Key returns the family's label key ("" for a nil family).
func (c *LabeledCounter) Key() string {
	if c == nil {
		return ""
	}
	return c.key
}

// With returns the counter for the given label value (nil, hence no-op, on a
// nil family).
func (c *LabeledCounter) With(value string) *Counter {
	if c == nil {
		return nil
	}
	return c.with(value)
}

// Add increments the labeled counter by n.
func (c *LabeledCounter) Add(value string, n int64) { c.With(value).Add(n) }

// Inc increments the labeled counter by one.
func (c *LabeledCounter) Inc(value string) { c.With(value).Add(1) }

// Each calls fn for every label value in sorted order.
func (c *LabeledCounter) Each(fn func(value string, v int64)) {
	if c == nil {
		return
	}
	values, children := c.snapshot()
	for _, v := range values {
		fn(v, children[v].Value())
	}
}

// Total returns the sum across every label value — the family rolled up to
// one number, as a fleet aggregate would report it.
func (c *LabeledCounter) Total() int64 {
	var t int64
	c.Each(func(_ string, v int64) { t += v })
	return t
}

// Key returns the family's label key ("" for a nil family).
func (g *LabeledGauge) Key() string {
	if g == nil {
		return ""
	}
	return g.key
}

// With returns the gauge for the given label value (nil on a nil family).
func (g *LabeledGauge) With(value string) *Gauge {
	if g == nil {
		return nil
	}
	return g.with(value)
}

// Set stores v under the label value.
func (g *LabeledGauge) Set(value string, v float64) { g.With(value).Set(v) }

// Each calls fn for every label value in sorted order.
func (g *LabeledGauge) Each(fn func(value string, v float64)) {
	if g == nil {
		return
	}
	values, children := g.snapshot()
	for _, v := range values {
		fn(v, children[v].Value())
	}
}

// Key returns the family's label key ("" for a nil family).
func (h *LabeledHistogram) Key() string {
	if h == nil {
		return ""
	}
	return h.key
}

// With returns the histogram for the given label value (nil on a nil
// family).
func (h *LabeledHistogram) With(value string) *Histogram {
	if h == nil {
		return nil
	}
	return h.with(value)
}

// Observe records one sample under the label value.
func (h *LabeledHistogram) Observe(value string, v float64) { h.With(value).Observe(v) }

// Each calls fn for every label value in sorted order.
func (h *LabeledHistogram) Each(fn func(value string, h *Histogram)) {
	if h == nil {
		return
	}
	values, children := h.snapshot()
	for _, v := range values {
		fn(v, children[v])
	}
}

// Fold merges every child into one histogram over the family's shared
// bounds — the family rolled up to a single distribution. Returns nil when
// the family is nil or empty. Children observed concurrently contribute a
// point-in-time prefix; the merge itself is exact (children of one family
// always share bounds).
func (h *LabeledHistogram) Fold() *Histogram {
	if h == nil {
		return nil
	}
	values, children := h.snapshot()
	if len(values) == 0 {
		return nil
	}
	out := NewHistogram(children[values[0]].bounds)
	for _, v := range values {
		_ = out.Merge(children[v])
	}
	return out
}

// LabeledCounter returns the named counter family with the given label key,
// creating it on first use (later calls ignore the key).
func (r *Registry) LabeledCounter(name, key string) *LabeledCounter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.labeledCounters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.labeledCounters[name]; c != nil {
		return c
	}
	c = &LabeledCounter{newLabeled(r, key, r.maxLabelValues, func() *Counter { return &Counter{} })}
	r.labeledCounters[name] = c
	return c
}

// LabeledGauge returns the named gauge family with the given label key,
// creating it on first use (later calls ignore the key).
func (r *Registry) LabeledGauge(name, key string) *LabeledGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.labeledGauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.labeledGauges[name]; g != nil {
		return g
	}
	g = &LabeledGauge{newLabeled(r, key, r.maxLabelValues, func() *Gauge { return &Gauge{} })}
	r.labeledGauges[name] = g
	return g
}

// LabeledHistogram returns the named histogram family with the given label
// key and bucket bounds, creating it on first use (later calls ignore key
// and bounds).
func (r *Registry) LabeledHistogram(name, key string, bounds []float64) *LabeledHistogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.labeledHists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.labeledHists[name]; h != nil {
		return h
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h = &LabeledHistogram{newLabeled(r, key, r.maxLabelValues, func() *Histogram { return NewHistogram(b) })}
	r.labeledHists[name] = h
	return h
}

// writeLabeledPrometheus appends the labeled families to the exposition.
func (r *Registry) writeLabeledPrometheus(w io.Writer,
	counters map[string]*LabeledCounter, gauges map[string]*LabeledGauge, hists map[string]*LabeledHistogram) error {
	for _, name := range sortedKeys(counters) {
		fam := counters[name]
		values, children := fam.snapshot()
		if len(values) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
			return err
		}
		for _, v := range values {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %d\n", name, fam.key, v, children[v].Value()); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(gauges) {
		fam := gauges[name]
		values, children := fam.snapshot()
		if len(values) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
			return err
		}
		for _, v := range values {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %g\n", name, fam.key, v, children[v].Value()); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(hists) {
		fam := hists[name]
		values, children := fam.snapshot()
		if len(values) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for _, v := range values {
			h := children[v]
			cum := h.cumulative()
			for i, bound := range h.bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"%g\"} %d\n", name, fam.key, v, bound, cum[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=\"+Inf\"} %d\n%s_sum{%s=%q} %g\n%s_count{%s=%q} %d\n",
				name, fam.key, v, cum[len(cum)-1],
				name, fam.key, v, h.Sum(),
				name, fam.key, v, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}
