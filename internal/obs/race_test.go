package obs

import (
	"io"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

// Concurrency coverage for the read paths that run while writers are hot:
// a live scrape (/metrics, /debug/spans) races observation on every frame.
// These tests are meaningful under -race (the `race` Make target).

func TestHistogramObserveConcurrentWithReads(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", DefaultDurationBuckets)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.Observe(float64(seed*i%100) / 1000)
				}
			}
		}(w + 1)
	}
	for i := 0; i < 200; i++ {
		_ = h.Quantile(0.99)
		_ = h.Count()
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestLabeledFamilyConcurrentCreateAndIterate(t *testing.T) {
	reg := NewRegistry()
	fam := reg.LabeledCounter("sess_total", "session")
	hfam := reg.LabeledHistogram("sess_lat", "session", DefaultDurationBuckets)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v := "s" + strconv.Itoa((w*500+i)%80) // crosses the overflow bound
				fam.With(v).Inc()
				hfam.Observe(v, 0.01)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		fam.Each(func(string, int64) {})
		hfam.Each(func(string, *Histogram) {})
		if err := reg.WritePrometheus(io.Discard); err != nil {
			t.Error(err)
			break
		}
		_ = reg.Snapshot()
	}
	wg.Wait()
	total := int64(0)
	fam.Each(func(_ string, v int64) { total += v })
	if total != 2000 {
		t.Fatalf("counted %d increments, want 2000", total)
	}
}

func TestSpansEndpointConcurrentWithRecording(t *testing.T) {
	rec := NewRecorder(64)
	srv := httptest.NewServer(rec.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				ctx := rec.StartTrace(i)
				rec.RecordSpan(ctx, "encode", "agent", float64(i)*0.01, 0.005)
				rec.RecordJournal(JournalRecord{Frame: i})
			}
		}
	}()
	for i := 0; i < 50; i++ {
		resp, err := srv.Client().Get(srv.URL + "/debug/spans")
		if err != nil {
			t.Fatal(err)
		}
		spans, err := ReadSpans(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		for _, s := range spans {
			if s.Name != "encode" || s.Site != "agent" {
				t.Fatalf("scrape %d: corrupt span %+v", i, s)
			}
		}
	}
	close(stop)
	wg.Wait()
}
