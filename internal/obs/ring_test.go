package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewFrameRing(8)
	for i := 0; i < 20; i++ {
		r.Append(FrameRecord{Frame: i})
	}
	if got := r.Total(); got != 20 {
		t.Errorf("total = %d, want 20", got)
	}
	snap := r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len = %d, want 8", len(snap))
	}
	for i, rec := range snap {
		if want := 12 + i; rec.Frame != want {
			t.Errorf("snap[%d].Frame = %d, want %d (oldest-first)", i, rec.Frame, want)
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewFrameRing(8)
	for i := 0; i < 3; i++ {
		r.Append(FrameRecord{Frame: i})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(snap))
	}
	for i, rec := range snap {
		if rec.Frame != i {
			t.Errorf("snap[%d].Frame = %d, want %d", i, rec.Frame, i)
		}
	}
}

func TestRingAmendLast(t *testing.T) {
	r := NewFrameRing(2)
	r.AmendLast(func(*FrameRecord) { t.Error("amend ran on empty ring") })
	for i := 0; i < 5; i++ {
		r.Append(FrameRecord{Frame: i})
	}
	r.AmendLast(func(fr *FrameRecord) {
		if fr.Frame != 4 {
			t.Errorf("amended frame %d, want the last (4)", fr.Frame)
		}
		fr.AckBits = 99
	})
	snap := r.Snapshot()
	if snap[len(snap)-1].AckBits != 99 {
		t.Error("amendment not visible in snapshot")
	}
}

func TestRingWriteJSONL(t *testing.T) {
	r := NewFrameRing(4)
	for i := 0; i < 4; i++ {
		r.Append(FrameRecord{Frame: i, Type: "P", Bits: 1000 * i})
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var rec FrameRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if rec.Frame != n || rec.Bits != 1000*n {
			t.Errorf("line %d decoded as frame=%d bits=%d", n, rec.Frame, rec.Bits)
		}
		n++
	}
	if n != 4 {
		t.Errorf("wrote %d lines, want 4", n)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewFrameRing(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Append(FrameRecord{Frame: i})
				r.AmendLast(func(fr *FrameRecord) { fr.AckBits++ })
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 4000 {
		t.Errorf("total = %d, want 4000", got)
	}
}
