package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// RegisterDebug mounts an additional handler on the telemetry surface at
// path (e.g. "/debug/doctor"). Handlers registered after Handler() was
// called still take effect: the mux resolves extras per request. A nil
// recorder ignores the registration.
func (r *Recorder) RegisterDebug(path string, h http.Handler) {
	if r == nil || path == "" || h == nil {
		return
	}
	r.debugMu.Lock()
	if r.debugExtra == nil {
		r.debugExtra = make(map[string]http.Handler)
	}
	r.debugExtra[path] = h
	r.debugMu.Unlock()
}

// debugHandler returns the extra handler registered at path, if any.
func (r *Recorder) debugHandler(path string) http.Handler {
	r.debugMu.Lock()
	defer r.debugMu.Unlock()
	return r.debugExtra[path]
}

// Handler returns the telemetry HTTP surface:
//
//	/metrics       Prometheus text exposition of every metric (including
//	               per-session labeled series)
//	/debug/vars    JSON snapshot (counters, gauges, histogram quantiles)
//	/debug/frames  recent frame-lifecycle records as JSONL
//	/debug/journal recent per-frame decision-journal records as JSONL
//	/debug/spans   recent frame-trace spans as JSONL
//	/debug/slo     per-session SLO status with error-budget burn rates
//	/debug/runtime point-in-time RuntimeStats JSON (live heap, GC pause p99,
//	               cumulative allocation counters) — what divedoctor's
//	               gc-pressure follower polls
//	/debug/pprof/  the standard Go profiler endpoints
//
// plus anything mounted via RegisterDebug (diveserver and divetrace mount
// the streaming doctor at /debug/doctor).
//
// A nil recorder returns a handler that answers every request with 503
// Service Unavailable, so callers can mount the surface unconditionally
// without panicking when telemetry is disabled.
func (r *Recorder) Handler() http.Handler {
	if r == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			http.Error(w, "telemetry disabled: no recorder installed", http.StatusServiceUnavailable)
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			if h := r.debugHandler(req.URL.Path); h != nil {
				h.ServeHTTP(w, req)
				return
			}
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("DiVE telemetry\n\n/metrics\n/debug/vars\n/debug/frames\n/debug/journal\n/debug/spans\n/debug/slo\n/debug/runtime\n/debug/doctor\n/debug/pprof/\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		// Refresh SLO gauges so scraped burn rates reflect the window at
		// scrape time, not the last /debug/slo hit.
		r.slo.Status()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		data, err := r.SnapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/debug/frames", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.ring.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.journal.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.spans.WriteJSONL(w)
	})
	mux.Handle("/debug/slo", r.slo.Handler())
	mux.HandleFunc("/debug/runtime", func(w http.ResponseWriter, req *http.Request) {
		st := r.UpdateRuntimeGauges()
		data, err := json.Marshal(st)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
