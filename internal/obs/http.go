package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns the telemetry HTTP surface:
//
//	/metrics       Prometheus text exposition of every metric
//	/debug/vars    JSON snapshot (counters, gauges, histogram quantiles)
//	/debug/frames  recent frame-lifecycle records as JSONL
//	/debug/journal recent per-frame decision-journal records as JSONL
//	/debug/spans   recent frame-trace spans as JSONL
//	/debug/pprof/  the standard Go profiler endpoints
//
// A nil recorder returns a handler that answers every request with 503
// Service Unavailable, so callers can mount the surface unconditionally
// without panicking when telemetry is disabled.
func (r *Recorder) Handler() http.Handler {
	if r == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			http.Error(w, "telemetry disabled: no recorder installed", http.StatusServiceUnavailable)
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("DiVE telemetry\n\n/metrics\n/debug/vars\n/debug/frames\n/debug/journal\n/debug/spans\n/debug/pprof/\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		data, err := r.SnapshotJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("/debug/frames", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.ring.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/journal", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.journal.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		r.spans.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
