package obs

import "testing"

func TestJournalAmendFrameFastPath(t *testing.T) {
	r := NewJournalRing(8)
	for f := 0; f < 6; f++ {
		r.Append(JournalRecord{Frame: f})
	}
	// Amend a frame several slots behind the newest (the pipelined case).
	r.AmendFrame(2, func(rec *JournalRecord) { rec.Outage = true })
	r.AmendFrame(5, func(rec *JournalRecord) { rec.ReconnectAttempts = 3 })
	snap := r.Snapshot()
	if !snap[2].Outage {
		t.Fatal("frame 2 not amended")
	}
	if snap[5].ReconnectAttempts != 3 {
		t.Fatal("newest frame not amended")
	}
	for _, rec := range snap {
		if rec.Frame != 2 && rec.Outage {
			t.Fatalf("amendment leaked onto frame %d", rec.Frame)
		}
	}
}

func TestJournalAmendFrameAfterWraparound(t *testing.T) {
	r := NewJournalRing(4)
	for f := 0; f < 10; f++ {
		r.Append(JournalRecord{Frame: f})
	}
	// Retained: frames 6..9. An evicted frame must be a no-op.
	r.AmendFrame(3, func(rec *JournalRecord) { t.Fatalf("amended evicted frame %d", rec.Frame) })
	r.AmendFrame(7, func(rec *JournalRecord) { rec.DegradeLevel = 2 })
	for _, rec := range r.Snapshot() {
		if (rec.Frame == 7) != (rec.DegradeLevel == 2) {
			t.Fatalf("frame %d degrade=%d", rec.Frame, rec.DegradeLevel)
		}
	}
}

func TestJournalAmendFrameSparseFallback(t *testing.T) {
	// Skipped frames break the dense newest-minus-delta indexing; the
	// linear fallback must still find the record.
	r := NewJournalRing(8)
	for _, f := range []int{0, 2, 5, 9} {
		r.Append(JournalRecord{Frame: f})
	}
	r.AmendFrame(2, func(rec *JournalRecord) { rec.NackKeyframe = true })
	r.AmendFrame(4, func(rec *JournalRecord) { t.Fatalf("amended never-journaled frame %d", rec.Frame) })
	snap := r.Snapshot()
	if !snap[1].NackKeyframe {
		t.Fatal("sparse frame 2 not amended")
	}
}

func BenchmarkJournalAmendFrameDense(b *testing.B) {
	r := NewJournalRing(1024)
	for f := 0; f < 1024; f++ {
		r.Append(JournalRecord{Frame: f})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Amend a few frames behind the newest, as the pipelined transport
		// feedback does — O(1) regardless of ring size.
		r.AmendFrame(1023-(i%8), func(rec *JournalRecord) { rec.Outage = false })
	}
}
