package obs

import "testing"

func TestCollectRuntimeStats(t *testing.T) {
	st := CollectRuntimeStats()
	if st.HeapLiveBytes == 0 {
		t.Fatal("heap live bytes = 0")
	}
	if st.Goroutines < 1 {
		t.Fatalf("goroutines = %d", st.Goroutines)
	}
	if st.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs = %d", st.GOMAXPROCS)
	}
}

func TestUpdateRuntimeGauges(t *testing.T) {
	rec := NewRecorder(8)
	st := rec.UpdateRuntimeGauges()
	if got := rec.Gauge(GaugeGoHeapLiveBytes).Value(); got != float64(st.HeapLiveBytes) {
		t.Fatalf("heap gauge = %g, stats = %d", got, st.HeapLiveBytes)
	}
	if got := rec.Gauge(GaugeGoGoroutines).Value(); got != float64(st.Goroutines) {
		t.Fatalf("goroutine gauge = %g, stats = %d", got, st.Goroutines)
	}
	// Nil recorder: still collects, publishes nowhere.
	var nilRec *Recorder
	if st := nilRec.UpdateRuntimeGauges(); st.Goroutines < 1 {
		t.Fatal("nil recorder collection failed")
	}
}
