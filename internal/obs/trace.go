package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceContext identifies one frame's end-to-end causal trace. A context is
// minted agent-side at capture (Recorder.StartTrace) and carried alongside
// the encoded bitstream — as side information over the in-process sim link,
// as explicit FrameMsg fields over TCP — so agent-side encode spans and
// server-side decode/detect spans stitch into a single trace per frame.
// The zero value is an invalid (disabled) context; every span API treats it
// as a no-op destination.
type TraceContext struct {
	TraceID uint64 `json:"trace_id"`
	Frame   int    `json:"frame"`
	// SpanID is the parent span for spans started under this context
	// (0 = root).
	SpanID uint64 `json:"span_id,omitempty"`
}

// Valid reports whether the context belongs to a live trace.
func (c TraceContext) Valid() bool { return c.TraceID != 0 }

// SpanRecord is one completed span of a frame trace. Agent- and edge-side
// pipeline stages record wall-clock spans; the simulated uplink records
// spans on the simulated clock. StartSec is relative to the recorder start
// (wall spans) or to the simulation epoch (sim spans); DurSec is always a
// duration, which is what latency analysis consumes.
type SpanRecord struct {
	TraceID  uint64  `json:"trace_id"`
	SpanID   uint64  `json:"span_id"`
	ParentID uint64  `json:"parent_span_id,omitempty"`
	Frame    int     `json:"frame"`
	Name     string  `json:"name"`
	Site     string  `json:"site"` // "agent", "link" or "edge"
	StartSec float64 `json:"start_sec"`
	DurSec   float64 `json:"dur_sec"`
}

// SpanRing is a bounded ring buffer of SpanRecords. A nil ring is a valid
// no-op.
type SpanRing struct {
	mu    sync.Mutex
	buf   []SpanRecord
	total int
}

// NewSpanRing creates a ring keeping the last capacity spans.
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &SpanRing{buf: make([]SpanRecord, 0, capacity)}
}

// Append adds one span, evicting the oldest when full.
func (r *SpanRing) Append(rec SpanRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.total%cap(r.buf)] = rec
	}
	r.total++
}

// Total returns how many spans were ever appended.
func (r *SpanRing) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the retained spans, oldest first.
func (r *SpanRing) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	if r.total <= cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	head := r.total % cap(r.buf)
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// WriteJSONL writes the retained spans as one JSON object per line, oldest
// first.
func (r *SpanRing) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans decodes span JSONL (the /debug/spans format), skipping blank
// lines.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// StartTrace mints a fresh trace context for the frame captured now. A nil
// recorder returns the invalid zero context at zero cost.
func (r *Recorder) StartTrace(frame int) TraceContext {
	if r == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: r.traceSeq.Add(1), Frame: frame}
}

// Spans returns the span ring (nil for a nil recorder).
func (r *Recorder) Spans() *SpanRing {
	if r == nil {
		return nil
	}
	return r.spans
}

// Span is one in-flight wall-clock span. The zero value (returned under a
// nil recorder or an invalid context) is a no-op on both sides; no clock is
// read and nothing allocates.
type Span struct {
	r     *Recorder
	ctx   TraceContext
	h     *Histogram
	name  string
	site  string
	id    uint64
	start time.Time
}

// StartSpan begins a wall-clock span under ctx at the given site.
func (r *Recorder) StartSpan(ctx TraceContext, name, site string) Span {
	return r.StartStageSpan(ctx, name, site, "")
}

// StartStageSpan begins a wall-clock span that, on End, also observes its
// duration into the named stage histogram ("" skips the histogram). This is
// the one-clock-read-per-side primitive pipeline stages use: the span feeds
// the causal trace, the histogram feeds the aggregate metrics. With an
// invalid context (e.g. the peer ran without telemetry) the histogram is
// still fed, only the trace record is skipped.
func (r *Recorder) StartStageSpan(ctx TraceContext, name, site, histName string) Span {
	if r == nil {
		return Span{}
	}
	var h *Histogram
	if histName != "" {
		h = r.Histogram(histName)
	}
	if !ctx.Valid() && h == nil {
		return Span{}
	}
	var id uint64
	if ctx.Valid() {
		id = r.spanSeq.Add(1)
	}
	return Span{
		r: r, ctx: ctx, h: h, name: name, site: site,
		id:    id,
		start: time.Now(),
	}
}

// Context returns ctx rebased onto this span, so spans started under it
// become children. The no-op span returns its (invalid) context unchanged.
func (s Span) Context() TraceContext {
	ctx := s.ctx
	if s.r != nil {
		ctx.SpanID = s.id
	}
	return ctx
}

// End completes the span, appends its record to the span ring (when the
// context was valid) and returns the elapsed duration (0 for the no-op
// span).
func (s Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	s.h.Observe(d.Seconds())
	if s.ctx.Valid() {
		s.r.spans.Append(SpanRecord{
			TraceID: s.ctx.TraceID, SpanID: s.id, ParentID: s.ctx.SpanID,
			Frame: s.ctx.Frame, Name: s.name, Site: s.site,
			StartSec: s.start.Sub(s.r.start).Seconds(),
			DurSec:   d.Seconds(),
		})
	}
	return d
}

// RecordSpan appends a completed span with explicit times — the entry point
// for components on the simulated clock (the netsim uplink, the simulated
// edge server latencies), where start and duration are simulated seconds.
// Returns the span ID (0 under a nil recorder or invalid context).
func (r *Recorder) RecordSpan(ctx TraceContext, name, site string, startSec, durSec float64) uint64 {
	if r == nil || !ctx.Valid() {
		return 0
	}
	id := r.spanSeq.Add(1)
	r.spans.Append(SpanRecord{
		TraceID: ctx.TraceID, SpanID: id, ParentID: ctx.SpanID,
		Frame: ctx.Frame, Name: name, Site: site,
		StartSec: startSec, DurSec: durSec,
	})
	return id
}
