package obs

import (
	"bytes"
	"testing"
)

func TestStartTraceMintsDistinctIDs(t *testing.T) {
	rec := NewRecorder(8)
	a := rec.StartTrace(0)
	b := rec.StartTrace(1)
	if !a.Valid() || !b.Valid() {
		t.Fatal("minted contexts should be valid")
	}
	if a.TraceID == b.TraceID {
		t.Fatalf("trace IDs collide: %d", a.TraceID)
	}
	if a.Frame != 0 || b.Frame != 1 {
		t.Errorf("frames = %d, %d", a.Frame, b.Frame)
	}
}

func TestSpanParentChildLinkage(t *testing.T) {
	rec := NewRecorder(8)
	ctx := rec.StartTrace(3)
	root := rec.StartStageSpan(ctx, "frame", "agent", StageFrame)
	child := rec.StartSpan(root.Context(), "motion", "agent")
	child.End()
	root.End()

	spans := rec.Spans().Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Rings hold completion order: child ends first.
	c, r := spans[0], spans[1]
	if c.Name != "motion" || r.Name != "frame" {
		t.Fatalf("span order: %s, %s", c.Name, r.Name)
	}
	if c.TraceID != ctx.TraceID || r.TraceID != ctx.TraceID {
		t.Error("spans not under the minted trace ID")
	}
	if c.ParentID != r.SpanID {
		t.Errorf("child parent = %d, want root span %d", c.ParentID, r.SpanID)
	}
	if r.ParentID != 0 {
		t.Errorf("root parent = %d, want 0", r.ParentID)
	}
	if c.Frame != 3 || r.Frame != 3 {
		t.Error("spans lost the frame number")
	}
	if c.DurSec < 0 || r.DurSec < c.DurSec {
		t.Errorf("durations: child %v, root %v", c.DurSec, r.DurSec)
	}
	// The stage span also fed the histogram.
	if got := rec.Histogram(StageFrame).Count(); got != 1 {
		t.Errorf("stage histogram count = %d, want 1", got)
	}
}

func TestRecordSpanSimClock(t *testing.T) {
	rec := NewRecorder(8)
	ctx := rec.StartTrace(5)
	id := rec.RecordSpan(ctx, "send", "link", 1.5, 0.25)
	if id == 0 {
		t.Fatal("RecordSpan returned 0 under a live recorder")
	}
	spans := rec.Spans().Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.StartSec != 1.5 || s.DurSec != 0.25 || s.Site != "link" {
		t.Errorf("sim span = %+v", s)
	}
	// Invalid context is a no-op.
	if got := rec.RecordSpan(TraceContext{}, "x", "link", 0, 0); got != 0 {
		t.Errorf("invalid-context RecordSpan returned %d", got)
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder(8)
	ctx := rec.StartTrace(1)
	rec.RecordSpan(ctx, "send", "agent", 0.1, 0.2)
	rec.RecordSpan(ctx, "decode", "edge", 0.3, 0.05)
	var buf bytes.Buffer
	if err := rec.Spans().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := rec.Spans().Snapshot()
	if len(got) != len(want) {
		t.Fatalf("round-trip lost spans: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("span %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestJournalJSONLRoundTrip(t *testing.T) {
	rec := NewRecorder(8)
	rec.RecordJournal(JournalRecord{
		TraceID: 7, Frame: 0, Type: "I",
		Eta: 0.4, EtaThreshold: 0.15, Moving: true,
		BaseQP: 24, Bits: 12345, TargetBits: 20000, EstBWBps: 2e6,
		RCTrials:  []QPTrial{{QP: 25, Bits: 30000}, {QP: 12, Bits: 90000, Speculative: true}},
		GroundMBs: 10, FGMBs: 5, BGMBs: 225,
	})
	rec.AmendLastJournal(func(j *JournalRecord) {
		j.AckBits = 12345
		j.AckStartSec = 0.0
		j.AckEndSec = 0.006
		j.RealizedBWBps = 12345 / 0.006
	})
	var buf bytes.Buffer
	if err := rec.Journal().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("round-trip produced %d records", len(got))
	}
	j := got[0]
	if j.TraceID != 7 || j.BaseQP != 24 || len(j.RCTrials) != 2 {
		t.Errorf("round-trip mangled record: %+v", j)
	}
	if !j.RCTrials[1].Speculative || j.RCTrials[1].QP != 12 {
		t.Errorf("RC trials mangled: %+v", j.RCTrials)
	}
	if j.RealizedBWBps == 0 || j.AckBits != 12345 {
		t.Errorf("amendment lost: %+v", j)
	}
}

func TestJournalRingWraparound(t *testing.T) {
	ring := NewJournalRing(4)
	for i := 0; i < 10; i++ {
		ring.Append(JournalRecord{Frame: i})
	}
	snap := ring.Snapshot()
	if len(snap) != 4 || ring.Total() != 10 {
		t.Fatalf("len=%d total=%d", len(snap), ring.Total())
	}
	for i, rec := range snap {
		if rec.Frame != 6+i {
			t.Errorf("slot %d holds frame %d, want %d", i, rec.Frame, 6+i)
		}
	}
}

// TestDisabledTracePathAllocFree is the acceptance bar for the hot path:
// with no recorder installed, minting a trace, running a span and touching
// the journal must not allocate at all.
func TestDisabledTracePathAllocFree(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		ctx := r.StartTrace(1)
		sp := r.StartStageSpan(ctx, "motion", "agent", StageMotion)
		sp.Context()
		sp.End()
		r.RecordSpan(ctx, "send", "agent", 0, 1)
		r.AmendLastJournal(func(*JournalRecord) {})
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %.1f objects per frame, want 0", allocs)
	}
}

// TestEnabledSpansSkipInvalidContexts: a live recorder fed an invalid
// context (e.g. a frame traced before telemetry was enabled) records
// nothing.
func TestEnabledSpansSkipInvalidContexts(t *testing.T) {
	rec := NewRecorder(8)
	sp := rec.StartSpan(TraceContext{}, "motion", "agent")
	sp.End()
	if got := rec.Spans().Total(); got != 0 {
		t.Errorf("invalid-context span recorded (%d spans)", got)
	}
}
