// Package obs is the pipeline telemetry subsystem: a zero-dependency
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// with quantile estimates), a stage-timing span API that degrades to a
// no-op when no recorder is installed, a bounded ring buffer of per-frame
// lifecycle records exportable as JSONL, a causal tracing layer (per-frame
// TraceContext, agent/link/edge spans, a per-frame decision journal), and
// HTTP surfacing (/metrics in Prometheus text format, /debug/frames,
// /debug/journal, /debug/spans, pprof).
//
// Everything is safe for concurrent use. Instrumented packages hold a
// *Recorder that may be nil; every method on Recorder, Counter, Gauge,
// Histogram and FrameRing tolerates a nil receiver, so instrumentation
// sites need no guards and cost a few nanoseconds when telemetry is off.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds[i] is the inclusive upper
// bound of bucket i, with an implicit +Inf overflow bucket. Observations
// and reads are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Uint64  // float64 bits, updated by CAS
	count  atomic.Int64
}

// NewHistogram creates a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the bucket containing the target rank. Samples in the overflow
// bucket report the highest finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return quantileFromBuckets(h.bounds, h.bucketCounts(), q)
}

// quantileFromBuckets is the quantile estimator over raw (non-cumulative)
// bucket counts — shared by live histograms and merged snapshots so both
// report identical quantiles for identical bucket contents.
func quantileFromBuckets(bounds []float64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range counts {
		n := float64(counts[i])
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i == len(bounds) {
			// Overflow bucket: no finite upper bound to interpolate to.
			return lo
		}
		hi := bounds[i]
		frac := (rank - cum) / n
		return lo + frac*(hi-lo)
	}
	if len(bounds) > 0 {
		return bounds[len(bounds)-1]
	}
	return 0
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// bucketCounts returns the raw (non-cumulative) per-bucket counts.
func (h *Histogram) bucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Merge folds every observation recorded in src into h. Both histograms
// must share identical bucket bounds; bucket counts then add exactly, so
// the merged quantiles equal those of a single histogram that had observed
// both streams — the property the fleet aggregator depends on when it
// collapses per-session latency histograms into one fleet distribution.
// Merging from a histogram that is being observed concurrently is safe;
// the merge sees some point-in-time prefix of its observations.
func (h *Histogram) Merge(src *Histogram) error {
	if h == nil || src == nil {
		return nil
	}
	if len(h.bounds) != len(src.bounds) {
		return fmt.Errorf("obs: merge histogram with %d bounds into %d", len(src.bounds), len(h.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != src.bounds[i] {
			return fmt.Errorf("obs: merge histograms with different bounds (index %d: %g vs %g)", i, h.bounds[i], src.bounds[i])
		}
	}
	for i := range src.counts {
		if n := src.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(src.count.Load())
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + src.Sum())
		if h.sum.CompareAndSwap(old, nv) {
			return nil
		}
	}
}

// cumulative returns a snapshot of cumulative counts per bound (for the
// Prometheus exposition, which is cumulative).
func (h *Histogram) cumulative() []int64 {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// DefaultDurationBuckets spans 25µs to 10s exponentially — wide enough for
// sub-millisecond geometry stages and multi-second full-frame encodes.
var DefaultDurationBuckets = []float64{
	25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Labeled families (labeled.go): one label key per family, bounded
	// cardinality. maxLabelValues applies to families created after it is
	// set (0 selects DefaultMaxLabelValues).
	labeledCounters map[string]*LabeledCounter
	labeledGauges   map[string]*LabeledGauge
	labeledHists    map[string]*LabeledHistogram
	maxLabelValues  int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:        make(map[string]*Counter),
		gauges:          make(map[string]*Gauge),
		hists:           make(map[string]*Histogram),
		labeledCounters: make(map[string]*LabeledCounter),
		labeledGauges:   make(map[string]*LabeledGauge),
		labeledHists:    make(map[string]*LabeledHistogram),
	}
}

// SetMaxLabelValues bounds the distinct label values of labeled families
// created after the call (0 restores DefaultMaxLabelValues). Existing
// families keep their bound.
func (r *Registry) SetMaxLabelValues(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.maxLabelValues = n
	r.mu.Unlock()
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format, names sorted for stable output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	lcounters := make(map[string]*LabeledCounter, len(r.labeledCounters))
	for k, v := range r.labeledCounters {
		lcounters[k] = v
	}
	lgauges := make(map[string]*LabeledGauge, len(r.labeledGauges))
	for k, v := range r.labeledGauges {
		lgauges[k] = v
	}
	lhists := make(map[string]*LabeledHistogram, len(r.labeledHists))
	for k, v := range r.labeledHists {
		lhists[k] = v
	}
	r.mu.RUnlock()

	for _, name := range sortedKeys(counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := h.cumulative()
		for i, bound := range h.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, bound, cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			name, cum[len(cum)-1], name, h.Sum(), name, h.Count()); err != nil {
			return err
		}
	}
	return r.writeLabeledPrometheus(w, lcounters, lgauges, lhists)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HistogramSnapshot is the point-in-time summary of one histogram. Bounds
// and Buckets carry the raw (non-cumulative) bucket detail so snapshots
// from different sessions can be merged without losing quantile accuracy;
// both are omitted from JSON when absent (hand-built summaries).
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	P50     float64   `json:"p50"`
	P95     float64   `json:"p95"`
	P99     float64   `json:"p99"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// snapshotHistogram summarizes h including its bucket detail. The quantiles
// are computed from the same bucket copy that is exported, so a merged
// snapshot re-deriving quantiles from Buckets reproduces them exactly.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	buckets := h.bucketCounts()
	var count int64
	for _, c := range buckets {
		count += c
	}
	return HistogramSnapshot{
		Count: count, Sum: h.Sum(),
		P50:     quantileFromBuckets(h.bounds, buckets, 0.50),
		P95:     quantileFromBuckets(h.bounds, buckets, 0.95),
		P99:     quantileFromBuckets(h.bounds, buckets, 0.99),
		Bounds:  h.Bounds(),
		Buckets: buckets,
	}
}

// mergeHistogramSnapshots folds b into a. When both carry identical bucket
// detail the merge is exact: buckets add and quantiles are re-derived from
// the merged buckets. Without matching detail it falls back to count-weighted
// quantile interpolation — approximate, but monotone and bounded by the
// inputs.
func mergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 && a.Sum == 0 && len(a.Buckets) == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	if len(a.Bounds) > 0 && len(a.Bounds) == len(b.Bounds) &&
		len(a.Buckets) == len(b.Buckets) && boundsEqual(a.Bounds, b.Bounds) {
		buckets := make([]int64, len(a.Buckets))
		for i := range buckets {
			buckets[i] = a.Buckets[i] + b.Buckets[i]
		}
		return HistogramSnapshot{
			Count: a.Count + b.Count, Sum: a.Sum + b.Sum,
			P50:     quantileFromBuckets(a.Bounds, buckets, 0.50),
			P95:     quantileFromBuckets(a.Bounds, buckets, 0.95),
			P99:     quantileFromBuckets(a.Bounds, buckets, 0.99),
			Bounds:  a.Bounds,
			Buckets: buckets,
		}
	}
	wa, wb := float64(a.Count), float64(b.Count)
	tot := wa + wb
	return HistogramSnapshot{
		Count: a.Count + b.Count, Sum: a.Sum + b.Sum,
		P50: (a.P50*wa + b.P50*wb) / tot,
		P95: (a.P95*wa + b.P95*wb) / tot,
		P99: (a.P99*wa + b.P99*wb) / tot,
	}
}

func boundsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Snapshot is a point-in-time copy of every metric in a registry. The
// labeled maps are keyed metric name → label value; they are omitted when no
// labeled family exists, so pre-labeled consumers of the schema are
// unaffected.
type Snapshot struct {
	UptimeSec         float64                                 `json:"uptime_sec"`
	Counters          map[string]int64                        `json:"counters"`
	Gauges            map[string]float64                      `json:"gauges"`
	Histograms        map[string]HistogramSnapshot            `json:"histograms"`
	LabeledCounters   map[string]map[string]int64             `json:"labeled_counters,omitempty"`
	LabeledGauges     map[string]map[string]float64           `json:"labeled_gauges,omitempty"`
	LabeledHistograms map[string]map[string]HistogramSnapshot `json:"labeled_histograms,omitempty"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	for name, fam := range r.labeledCounters {
		m := make(map[string]int64)
		fam.Each(func(value string, v int64) { m[value] = v })
		if len(m) > 0 {
			if s.LabeledCounters == nil {
				s.LabeledCounters = make(map[string]map[string]int64)
			}
			s.LabeledCounters[name] = m
		}
	}
	for name, fam := range r.labeledGauges {
		m := make(map[string]float64)
		fam.Each(func(value string, v float64) { m[value] = v })
		if len(m) > 0 {
			if s.LabeledGauges == nil {
				s.LabeledGauges = make(map[string]map[string]float64)
			}
			s.LabeledGauges[name] = m
		}
	}
	for name, fam := range r.labeledHists {
		m := make(map[string]HistogramSnapshot)
		fam.Each(func(value string, h *Histogram) {
			m[value] = snapshotHistogram(h)
		})
		if len(m) > 0 {
			if s.LabeledHistograms == nil {
				s.LabeledHistograms = make(map[string]map[string]HistogramSnapshot)
			}
			s.LabeledHistograms[name] = m
		}
	}
	return s
}

// Merge folds src into s: counters and gauges add, histograms merge exactly
// when both sides carry matching bucket detail (count-weighted quantile
// blend otherwise), and labeled families merge per label value. Gauges add
// rather than overwrite because fleet consumers want totals (frames in
// flight, burn contributions); callers needing a different gauge fold should
// post-process. UptimeSec keeps the maximum — the fleet has been up as long
// as its oldest member.
func (s *Snapshot) Merge(src *Snapshot) {
	if s == nil || src == nil {
		return
	}
	if src.UptimeSec > s.UptimeSec {
		s.UptimeSec = src.UptimeSec
	}
	if s.Counters == nil {
		s.Counters = make(map[string]int64)
	}
	for k, v := range src.Counters {
		s.Counters[k] += v
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64)
	}
	for k, v := range src.Gauges {
		s.Gauges[k] += v
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot)
	}
	for k, v := range src.Histograms {
		s.Histograms[k] = mergeHistogramSnapshots(s.Histograms[k], v)
	}
	for name, vals := range src.LabeledCounters {
		if s.LabeledCounters == nil {
			s.LabeledCounters = make(map[string]map[string]int64)
		}
		m := s.LabeledCounters[name]
		if m == nil {
			m = make(map[string]int64)
			s.LabeledCounters[name] = m
		}
		for value, v := range vals {
			m[value] += v
		}
	}
	for name, vals := range src.LabeledGauges {
		if s.LabeledGauges == nil {
			s.LabeledGauges = make(map[string]map[string]float64)
		}
		m := s.LabeledGauges[name]
		if m == nil {
			m = make(map[string]float64)
			s.LabeledGauges[name] = m
		}
		for value, v := range vals {
			m[value] += v
		}
	}
	for name, vals := range src.LabeledHistograms {
		if s.LabeledHistograms == nil {
			s.LabeledHistograms = make(map[string]map[string]HistogramSnapshot)
		}
		m := s.LabeledHistograms[name]
		if m == nil {
			m = make(map[string]HistogramSnapshot)
			s.LabeledHistograms[name] = m
		}
		for value, v := range vals {
			m[value] = mergeHistogramSnapshots(m[value], v)
		}
	}
}
