package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// FrameRecord is the lifecycle of one frame through the DiVE pipeline:
// capture → motion estimation → rotation removal → foreground extraction →
// AVE/rate control + entropy encode → uplink ack. Durations are
// milliseconds; zero means the stage did not run for this frame.
type FrameRecord struct {
	Frame   int     `json:"frame"`
	TimeSec float64 `json:"time_sec"` // capture time on the pipeline clock
	Type    string  `json:"type"`     // "I" or "P"

	// Analysis byproducts.
	Eta        float64 `json:"eta"`
	Moving     bool    `json:"moving"`
	ReusedFG   bool    `json:"reused_fg"`
	FGFraction float64 `json:"fg_fraction"`
	Delta      int     `json:"delta"`

	// Rate control.
	BaseQP     int     `json:"base_qp"`
	Bits       int     `json:"bits"`
	TargetBits int     `json:"target_bits"`
	EstBWBps   float64 `json:"est_bw_bps"`

	// Stage durations (wall clock, milliseconds).
	MotionMs     float64 `json:"motion_ms"`
	RotationMs   float64 `json:"rotation_ms"`
	ForegroundMs float64 `json:"foreground_ms"`
	EncodeMs     float64 `json:"encode_ms"`
	// EmitMs is the deferred bitstream-serialization time, amended when the
	// frame's EmitBitstream completes (possibly on a later pipeline stage).
	EmitMs  float64 `json:"emit_ms,omitempty"`
	TotalMs float64 `json:"total_ms"`

	// Uplink ack, attached when transport feedback arrives (zero until
	// then): acked payload size and the serialization end time.
	AckBits   int     `json:"ack_bits,omitempty"`
	AckEndSec float64 `json:"ack_end_sec,omitempty"`
}

// FrameRing is a bounded ring buffer of FrameRecords. A nil ring is a
// valid no-op.
type FrameRing struct {
	mu    sync.Mutex
	buf   []FrameRecord
	total int // records ever appended
}

// NewFrameRing creates a ring keeping the last capacity records.
func NewFrameRing(capacity int) *FrameRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &FrameRing{buf: make([]FrameRecord, 0, capacity)}
}

// Append adds one record, evicting the oldest when full.
func (r *FrameRing) Append(rec FrameRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.total%cap(r.buf)] = rec
	}
	r.total++
}

// AmendLast applies fn to the most recently appended record; no-op when
// empty.
func (r *FrameRing) AmendLast(fn func(*FrameRecord)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return
	}
	fn(&r.buf[(r.total-1)%cap(r.buf)])
}

// AmendFrame applies fn to the most recent retained record whose Frame
// field matches; no-op when that frame was never recorded or has been
// evicted. Pipelined runs use this instead of AmendLast: a frame's emit
// completion can land after later frames were already recorded.
func (r *FrameRing) AmendFrame(frame int, fn func(*FrameRecord)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total == 0 {
		return
	}
	// Frames are recorded in increasing order, one record per frame, so
	// frame f normally sits exactly (newestFrame - f) slots behind the
	// newest record — an O(1) index instead of a back-scan, which matters on
	// the pipelined path where every frame's emit completion amends.
	newest := &r.buf[(r.total-1)%cap(r.buf)]
	if delta := newest.Frame - frame; delta >= 0 && delta < len(r.buf) {
		k := r.total - 1 - delta
		if rec := &r.buf[k%cap(r.buf)]; rec.Frame == frame {
			fn(rec)
			return
		}
	}
	// Sparse ring (frames skipped or out of order): fall back to the linear
	// back-scan over the retained records.
	for k := r.total - 1; k >= 0 && k >= r.total-len(r.buf); k-- {
		rec := &r.buf[k%cap(r.buf)]
		if rec.Frame == frame {
			fn(rec)
			return
		}
	}
}

// Total returns how many records were ever appended (≥ len(Snapshot())).
func (r *FrameRing) Total() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the retained records, oldest first.
func (r *FrameRing) Snapshot() []FrameRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FrameRecord, 0, len(r.buf))
	if r.total <= cap(r.buf) {
		out = append(out, r.buf...)
		return out
	}
	head := r.total % cap(r.buf) // index of the oldest record
	out = append(out, r.buf[head:]...)
	out = append(out, r.buf[:head]...)
	return out
}

// WriteJSONL writes the retained records as one JSON object per line,
// oldest first — the divetrace-style replay format.
func (r *FrameRing) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range r.Snapshot() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
