package obs

import "runtime"

// RunMeta records the execution environment of a benchmark or telemetry
// capture, so analyzers (cmd/divedoctor) can refuse or relax comparisons
// that are not like-for-like: a p95 from a 2-core CI runner says nothing
// about a regression against a 16-core workstation baseline.
type RunMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Workers is the -workers flag the run used (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// Profile names the workload that produced the numbers (an experiment
	// scale such as "smoke", or a clip profile name).
	Profile string `json:"profile,omitempty"`
	// GitCommit is the source revision, when the producer could determine
	// it (best effort; empty outside a git checkout).
	GitCommit string `json:"git_commit,omitempty"`
}

// CollectRunMeta captures the runtime environment. The caller fills
// Profile and GitCommit, which obs cannot know.
func CollectRunMeta(workers int) RunMeta {
	return RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
	}
}

// Comparable reports whether two runs are like-for-like for absolute
// latency comparison: same Go toolchain, same architecture, same effective
// parallelism and same workload. Mismatched runs can still be compared on
// relative stage shares.
func (m RunMeta) Comparable(other RunMeta) bool {
	return m.GoVersion == other.GoVersion &&
		m.GOOS == other.GOOS && m.GOARCH == other.GOARCH &&
		m.GOMAXPROCS == other.GOMAXPROCS &&
		m.Workers == other.Workers &&
		m.Profile == other.Profile
}
