package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHistogramMergeQuantileProperty is the merged-quantile accuracy
// property: splitting one observation stream across k histograms at random
// and merging them back must reproduce the unsplit histogram's p50/p95/p99
// exactly (bucket counts add, so the estimator sees identical input).
func TestHistogramMergeQuantileProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		k := 2 + rng.Intn(6)
		n := 100 + rng.Intn(4000)

		whole := NewHistogram(DefaultDurationBuckets)
		parts := make([]*Histogram, k)
		for i := range parts {
			parts[i] = NewHistogram(DefaultDurationBuckets)
		}
		for i := 0; i < n; i++ {
			// Spread samples over the full bucket range, including overflow.
			v := math_exp(rng)
			whole.Observe(v)
			parts[rng.Intn(k)].Observe(v)
		}

		merged := NewHistogram(DefaultDurationBuckets)
		for _, p := range parts {
			if err := merged.Merge(p); err != nil {
				t.Fatalf("trial %d: merge: %v", trial, err)
			}
		}
		if merged.Count() != whole.Count() {
			t.Fatalf("trial %d: merged count %d != %d", trial, merged.Count(), whole.Count())
		}
		for _, q := range []float64{0.50, 0.95, 0.99} {
			if got, want := merged.Quantile(q), whole.Quantile(q); got != want {
				t.Fatalf("trial %d: p%g merged %v != unsplit %v", trial, q*100, got, want)
			}
		}
	}
}

// math_exp draws a duration-like sample spanning the default buckets,
// including the overflow bucket.
func math_exp(rng *rand.Rand) float64 {
	return 25e-6 * math.Pow(10, rng.Float64()*6) // 25µs .. 25s
}

func TestHistogramMergeBoundsMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge with different bounds should fail")
	}
	c := NewHistogram([]float64{1, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge with different bound count should fail")
	}
}

// TestSnapshotMerge checks the snapshot-level fold: counters add, gauges
// sum, histograms with bucket detail merge exactly, labeled families merge
// per value.
func TestSnapshotMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	whole := NewRegistry()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 3000; i++ {
		v := math_exp(rng)
		whole.Histogram("lat", DefaultDurationBuckets).Observe(v)
		if rng.Intn(2) == 0 {
			r1.Histogram("lat", DefaultDurationBuckets).Observe(v)
		} else {
			r2.Histogram("lat", DefaultDurationBuckets).Observe(v)
		}
	}
	r1.Counter("frames").Add(10)
	r2.Counter("frames").Add(32)
	r1.Gauge("inflight").Set(3)
	r2.Gauge("inflight").Set(4)
	r1.LabeledCounter("by_session", "session").Add("a", 5)
	r2.LabeledCounter("by_session", "session").Add("a", 7)
	r2.LabeledCounter("by_session", "session").Add("b", 1)

	s := r1.Snapshot()
	s.Merge(r2.Snapshot())

	if got := s.Counters["frames"]; got != 42 {
		t.Fatalf("merged counter = %d, want 42", got)
	}
	if got := s.Gauges["inflight"]; got != 7 {
		t.Fatalf("merged gauge = %v, want 7", got)
	}
	ws := whole.Snapshot().Histograms["lat"]
	ms := s.Histograms["lat"]
	if ms.Count != ws.Count || ms.P50 != ws.P50 || ms.P95 != ws.P95 || ms.P99 != ws.P99 {
		t.Fatalf("merged hist %+v != unsplit %+v", ms, ws)
	}
	if got := s.LabeledCounters["by_session"]["a"]; got != 12 {
		t.Fatalf("merged labeled counter a = %d, want 12", got)
	}
	if got := s.LabeledCounters["by_session"]["b"]; got != 1 {
		t.Fatalf("merged labeled counter b = %d, want 1", got)
	}
}

// TestLabeledFold checks LabeledHistogram.Fold and LabeledCounter.Total
// roll a family up to one series.
func TestLabeledFold(t *testing.T) {
	r := NewRegistry()
	lc := r.LabeledCounter("frames", "session")
	lc.Add("a", 3)
	lc.Add("b", 4)
	if got := lc.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	lh := r.LabeledHistogram("lat", "session", []float64{1, 2, 3})
	lh.Observe("a", 0.5)
	lh.Observe("b", 2.5)
	lh.Observe("b", 2.5)
	f := lh.Fold()
	if f.Count() != 3 {
		t.Fatalf("folded count = %d, want 3", f.Count())
	}
	var nilH *LabeledHistogram
	if nilH.Fold() != nil {
		t.Fatal("nil family Fold should be nil")
	}
	var nilC *LabeledCounter
	if nilC.Total() != 0 {
		t.Fatal("nil family Total should be 0")
	}
}

// TestLabelOverflowCounter checks that folding into OverflowLabel is
// surfaced on obs_label_overflow_total instead of happening silently.
func TestLabelOverflowCounter(t *testing.T) {
	r := NewRegistry()
	r.SetMaxLabelValues(4)
	lc := r.LabeledCounter("frames", "session")
	for i := 0; i < 4; i++ {
		lc.Inc(fmt.Sprintf("s%d", i))
	}
	if got := r.Counter(MetricLabelOverflow).Value(); got != 0 {
		t.Fatalf("overflow counter = %d before cap hit, want 0", got)
	}
	lc.Inc("s4")
	lc.Inc("s5")
	if got := r.Counter(MetricLabelOverflow).Value(); got != 2 {
		t.Fatalf("overflow counter = %d after 2 folds, want 2", got)
	}
	// Cached overflow child lookups still count: each With on a folded value
	// re-resolves, so repeated folded traffic stays visible.
	lc.Inc("s4")
	if got := r.Counter(MetricLabelOverflow).Value(); got != 3 {
		t.Fatalf("overflow counter = %d after repeat fold, want 3", got)
	}
}

// fleetFixture registers n sessions on an aggregator, each with its own
// recorder, frames counter, latency histogram and SLO window.
func fleetFixture(t *testing.T, agg *FleetAggregator, n int, slow map[int]bool) []*Recorder {
	t.Helper()
	recs := make([]*Recorder, n)
	profiles := []string{"nuScenes", "robotcar", "kitti"}
	for i := 0; i < n; i++ {
		rec := NewRecorder(64)
		recs[i] = rec
		name := fmt.Sprintf("agent-%03d", i)
		profile := profiles[i%len(profiles)]
		lat := 0.05
		if slow[i] {
			lat = 0.8
		}
		for f := 0; f < 60; f++ {
			rec.Counter(MetricFrames).Inc()
			rec.Counter(MetricBytes).Add(1000)
			rec.Registry().Histogram(StageResponse, DefaultDurationBuckets).Observe(lat)
			rec.ObserveSLO(name, SLOSample{LatencySec: lat, FGShare: 0.2})
		}
		agg.Register(name, profile, rec)
	}
	return recs
}

// TestFleetAggregatorRollup checks totals, per-profile breakdowns and the
// straggler table against a fleet with two scripted slow sessions.
func TestFleetAggregatorRollup(t *testing.T) {
	reg := NewRegistry()
	agg := NewFleetAggregator(FleetConfig{Registry: reg})
	fleetFixture(t, agg, 12, map[int]bool{3: true, 7: true})

	ru := agg.Rollup(5.0)
	if ru.Sessions != 12 {
		t.Fatalf("sessions = %d, want 12", ru.Sessions)
	}
	if ru.FramesTotal != 12*60 {
		t.Fatalf("frames = %d, want %d", ru.FramesTotal, 12*60)
	}
	if ru.FramesPerSec != float64(12*60)/5.0 {
		t.Fatalf("fps = %v, want %v", ru.FramesPerSec, float64(12*60)/5.0)
	}
	if len(ru.PerProfile) != 3 {
		t.Fatalf("profiles = %d, want 3", len(ru.PerProfile))
	}
	var profFrames int64
	for _, p := range ru.PerProfile {
		profFrames += p.FramesTotal
	}
	if profFrames != ru.FramesTotal {
		t.Fatalf("per-profile frames %d != fleet %d", profFrames, ru.FramesTotal)
	}
	if len(ru.Stragglers) != 2 {
		t.Fatalf("stragglers = %+v, want agent-003 and agent-007", ru.Stragglers)
	}
	got := map[string]bool{}
	for _, s := range ru.Stragglers {
		got[s.Session] = true
		if s.Factor <= 3 {
			t.Fatalf("straggler factor %v should exceed 3", s.Factor)
		}
	}
	if !got["agent-003"] || !got["agent-007"] {
		t.Fatalf("stragglers = %+v", ru.Stragglers)
	}
	// The slow sessions' 0.8s latency blows the 0.25s/1% objective, so the
	// fleet-level aggregate burn must be visible too.
	if ru.FleetBurn <= 1 {
		t.Fatalf("fleet burn = %v, want > 1 with 2/12 sessions at 0.8s", ru.FleetBurn)
	}
	if ru.Unhealthy != 2 {
		t.Fatalf("unhealthy = %d, want 2", ru.Unhealthy)
	}
	if reg.Gauge(GaugeFleetSessions).Value() != 12 {
		t.Fatalf("fleet sessions gauge = %v", reg.Gauge(GaugeFleetSessions).Value())
	}
	if reg.Gauge(GaugeFleetStragglers).Value() != 2 {
		t.Fatalf("fleet stragglers gauge = %v", reg.Gauge(GaugeFleetStragglers).Value())
	}

	// Second rollup: interval throughput, not whole-run average.
	ru2 := agg.Rollup(6.0)
	if ru2.Tick != 1 {
		t.Fatalf("tick = %d, want 1", ru2.Tick)
	}
	if ru2.FramesPerSec != 0 {
		t.Fatalf("interval fps = %v, want 0 (no new frames)", ru2.FramesPerSec)
	}
}

// TestFleetPerServerRollup checks the per-server dimension: ObserveServer
// rows surface in rollups with membership state and heartbeat age,
// NoteMigration balances in/out across members, stragglers are attributed to
// their member, and names past MaxServers fold into the overflow row with
// the cardinality counter ticking — same discipline as labeled metrics.
func TestFleetPerServerRollup(t *testing.T) {
	reg := NewRegistry()
	agg := NewFleetAggregator(FleetConfig{Registry: reg, MaxServers: 2})
	fleetFixture(t, agg, 8, map[int]bool{3: true})
	agg.SetSessionServer("agent-003", "edge-1")

	agg.ObserveServer("edge-0", "healthy", 2, 0.05)
	agg.ObserveServer("edge-1", "down", 0, 1.5)
	agg.NoteMigration("edge-0", "edge-1")
	agg.NoteMigration("edge-0", "edge-1")

	ru := agg.Rollup(5.0)
	if len(ru.PerServer) != 2 {
		t.Fatalf("per-server rows = %+v, want 2", ru.PerServer)
	}
	rows := map[string]ServerRollup{}
	for _, r := range ru.PerServer {
		rows[r.Server] = r
	}
	e0, e1 := rows["edge-0"], rows["edge-1"]
	if e0.State != "healthy" || e0.Sessions != 2 || e0.LastHeartbeatAgeSec != 0.05 {
		t.Fatalf("edge-0 row = %+v", e0)
	}
	if e0.MigrationsOut != 2 || e0.MigrationsIn != 0 {
		t.Fatalf("edge-0 migrations = in %d out %d, want 0/2", e0.MigrationsIn, e0.MigrationsOut)
	}
	if e1.State != "down" || e1.MigrationsIn != 2 || e1.MigrationsOut != 0 {
		t.Fatalf("edge-1 row = %+v", e1)
	}
	// The scripted straggler must carry its member.
	if len(ru.Stragglers) != 1 || ru.Stragglers[0].Server != "edge-1" {
		t.Fatalf("straggler attribution = %+v, want agent-003 on edge-1", ru.Stragglers)
	}

	// A third member exceeds MaxServers: its rows fold into the overflow
	// label and the cardinality counter ticks.
	before := reg.Counter(MetricLabelOverflow).Value()
	agg.ObserveServer("edge-2", "healthy", 4, 0.01)
	agg.NoteMigration("edge-2", "edge-0")
	ru2 := agg.Rollup(6.0)
	if len(ru2.PerServer) != 3 {
		t.Fatalf("per-server rows after overflow = %+v, want 3", ru2.PerServer)
	}
	last := ru2.PerServer[len(ru2.PerServer)-1]
	if last.Server != OverflowLabel {
		t.Fatalf("overflow row not last: %+v", ru2.PerServer)
	}
	if last.Sessions != 4 || last.MigrationsOut != 1 {
		t.Fatalf("overflow row = %+v, want edge-2's sessions and migration", last)
	}
	if rows2 := func() ServerRollup {
		for _, r := range ru2.PerServer {
			if r.Server == "edge-0" {
				return r
			}
		}
		return ServerRollup{}
	}(); rows2.MigrationsIn != 1 {
		t.Fatalf("edge-0 after overflow migration = %+v, want 1 in", rows2)
	}
	if after := reg.Counter(MetricLabelOverflow).Value(); after <= before {
		t.Fatalf("label-overflow counter did not tick: %v -> %v", before, after)
	}
}

// TestFleetHandlerJSONL checks /debug/fleet serves the rollup ring as
// JSONL, oldest first, with parseable records.
func TestFleetHandlerJSONL(t *testing.T) {
	agg := NewFleetAggregator(FleetConfig{RollupCap: 4})
	fleetFixture(t, agg, 3, nil)
	for i := 0; i < 6; i++ {
		agg.Rollup(float64(i + 1))
	}
	rr := httptest.NewRecorder()
	agg.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/fleet", nil))
	lines := strings.Split(strings.TrimSpace(rr.Body.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want ring cap 4", len(lines))
	}
	prev := -1
	for _, line := range lines {
		var ru FleetRollup
		if err := json.Unmarshal([]byte(line), &ru); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if ru.Tick <= prev {
			t.Fatalf("ticks not ascending: %d after %d", ru.Tick, prev)
		}
		prev = ru.Tick
	}
	if prev != 5 {
		t.Fatalf("last tick = %d, want 5", prev)
	}
}

// TestFleetAggregatorConcurrent is the registration-vs-aggregation race
// test: sessions register, observe and unregister from four goroutines while
// the test goroutine folds rollups the whole time, under -race.
func TestFleetAggregatorConcurrent(t *testing.T) {
	agg := NewFleetAggregator(FleetConfig{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				rec := NewRecorder(16)
				name := fmt.Sprintf("g%d-s%d", g, i)
				agg.Register(name, "nuScenes", rec)
				for f := 0; f < 20; f++ {
					rec.Counter(MetricFrames).Inc()
					rec.Registry().Histogram(StageResponse, DefaultDurationBuckets).Observe(0.05)
					rec.ObserveSLO(name, SLOSample{LatencySec: 0.05, FGShare: 0.2})
				}
				if i%3 == 0 {
					agg.Unregister(name)
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { writers.Wait(); close(done) }()

	tick := 0
	for {
		tick++
		agg.Rollup(float64(tick))
		select {
		case <-done:
			ru := agg.Rollup(float64(tick + 1))
			if ru.Sessions == 0 {
				t.Fatal("expected surviving sessions after concurrent churn")
			}
			return
		default:
		}
	}
}
