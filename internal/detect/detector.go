// Package detect implements the simulated edge DNN detector.
//
// The paper measures AP of detections on degraded (compressed) video
// against detections on raw video. What a real detector contributes to that
// ratio is "an object survives iff its pixels survive compression", so the
// simulation computes, per ground-truth object, the actual local distortion
// the codec introduced (decoded vs pristine frame) and converts local PSNR
// and apparent size into detection probability, confidence and box jitter
// through a calibrated psychometric curve. Heavily distorted frames also
// produce occasional low-confidence false positives.
//
// All randomness is derived deterministically from the frame seed, so a
// given (clip, encoding) pair always yields identical detections.
package detect

import (
	"math"
	"math/rand"

	"dive/internal/imgx"
	"dive/internal/world"
)

// Detection is one detector output (or tracker output) box.
type Detection struct {
	Class   world.Class
	Box     imgx.Rect
	Score   float64
	Tracked bool // produced by local MV tracking rather than the edge DNN
}

// Config calibrates the quality-sensitivity of the simulated DNN.
type Config struct {
	// MinArea is the smallest detectable box area in pixels.
	MinArea int
	// BasePSNR is the local PSNR at which a 256-px² object is detected
	// with probability 0.5.
	BasePSNR float64
	// SizeSlopeDB lowers the required PSNR by this many dB per doubling of
	// object area (big objects survive compression better).
	SizeSlopeDB float64
	// WidthDB is the logistic width of the detection curve in dB.
	WidthDB float64
	// MaxPSNR caps local PSNR (lossless regions would otherwise be +Inf).
	MaxPSNR float64
	// JitterFrac scales box jitter: fraction of box size per (MaxPSNR -
	// psnr) dB of degradation.
	JitterFrac float64
	// FPRate is the expected number of false positives in a frame whose
	// average quality has degraded to BasePSNR.
	FPRate float64
	// InferLatency is the simulated DNN service time per frame in seconds.
	InferLatency float64
}

// DefaultConfig returns the calibration used across the experiments.
func DefaultConfig() Config {
	return Config{
		MinArea:      48,
		BasePSNR:     30,
		SizeSlopeDB:  2.8,
		WidthDB:      2.0,
		MaxPSNR:      50,
		JitterFrac:   0.004,
		FPRate:       0.8,
		InferLatency: 0.022,
	}
}

// Detector is the simulated edge DNN.
type Detector struct {
	cfg Config
}

// New creates a detector.
func New(cfg Config) *Detector { return &Detector{cfg: cfg} }

// Config returns the detector calibration.
func (d *Detector) Config() Config { return d.cfg }

// Detect runs the simulated DNN on decoded, using pristine (the raw render)
// and its ground truth to evaluate what compression destroyed. frameSeed
// makes the stochastic decisions reproducible.
func (d *Detector) Detect(decoded, pristine *imgx.Plane, gt []world.GTBox, frameSeed int64) []Detection {
	rng := rand.New(rand.NewSource(frameSeed ^ 0x5EED))
	var out []Detection
	for _, obj := range gt {
		area := obj.Box.Area()
		if area < d.cfg.MinArea {
			continue
		}
		psnr := d.localPSNR(decoded, pristine, obj.Box)
		p := d.detectionProbability(psnr, area, obj.Visible)
		if rng.Float64() > p {
			continue
		}
		degrade := d.cfg.MaxPSNR - psnr
		jit := d.cfg.JitterFrac * degrade
		box := jitterBox(obj.Box, jit, rng)
		score := 0.55 + 0.45*p - 0.08*rng.Float64()
		out = append(out, Detection{
			Class: obj.Class,
			Box:   box.ClipTo(decoded.W, decoded.H),
			Score: clamp01(score),
		})
	}
	out = append(out, d.falsePositives(decoded, pristine, rng)...)
	return out
}

// Proposals returns low-confidence candidate regions, modeling the region
// proposals a two-stage DNN produces below its final detection threshold.
// Server-driven schemes (DDS) feed these back to the agent as the regions
// worth re-uploading in high quality: an object too degraded to *detect*
// still usually leaves enough evidence to *propose*.
func (d *Detector) Proposals(decoded, pristine *imgx.Plane, gt []world.GTBox, frameSeed int64) []Detection {
	rng := rand.New(rand.NewSource(frameSeed ^ 0x9305))
	var out []Detection
	for _, obj := range gt {
		area := obj.Box.Area()
		if area < d.cfg.MinArea/2 {
			continue
		}
		psnr := d.localPSNR(decoded, pristine, obj.Box)
		p := d.detectionProbability(psnr, area, obj.Visible)
		// Proposals extend somewhat below the detection threshold but an
		// object whose pixels compression destroyed proposes nothing —
		// that blind spot is DDS's fundamental weakness at low bitrate.
		propP := clamp01(p * 1.8)
		if rng.Float64() > propP {
			continue
		}
		degrade := d.cfg.MaxPSNR - psnr
		box := jitterBox(obj.Box, d.cfg.JitterFrac*degrade*2, rng)
		out = append(out, Detection{
			Class: obj.Class,
			Box:   box.ClipTo(decoded.W, decoded.H),
			Score: 0.15 + 0.25*rng.Float64(),
		})
	}
	return out
}

// localPSNR measures the compression damage inside one box.
func (d *Detector) localPSNR(decoded, pristine *imgx.Plane, box imgx.Rect) float64 {
	mse := imgx.RegionMSE(decoded, pristine, box)
	psnr := imgx.PSNR(mse)
	if psnr > d.cfg.MaxPSNR {
		psnr = d.cfg.MaxPSNR
	}
	return psnr
}

// detectionProbability is the psychometric curve: probability that the DNN
// fires on an object of the given pixel area seen at the given local PSNR.
func (d *Detector) detectionProbability(psnr float64, area int, visible float64) float64 {
	need := d.cfg.BasePSNR - d.cfg.SizeSlopeDB*math.Log2(float64(area)/256)
	p := 1 / (1 + math.Exp(-(psnr-need)/d.cfg.WidthDB))
	// Partially occluded objects are harder at any quality.
	if visible < 1 {
		p *= 0.5 + 0.5*visible
	}
	return p
}

// falsePositives emits spurious low-score detections in badly degraded
// frames (compression artifacts that look like objects).
func (d *Detector) falsePositives(decoded, pristine *imgx.Plane, rng *rand.Rand) []Detection {
	full := imgx.Rect{MinX: 0, MinY: 0, MaxX: decoded.W, MaxY: decoded.H}
	psnr := d.localPSNR(decoded, pristine, full)
	if psnr >= d.cfg.BasePSNR+6 {
		return nil
	}
	sev := (d.cfg.BasePSNR + 6 - psnr) / 12
	lambda := d.cfg.FPRate * clamp01(sev)
	n := poisson(lambda, rng)
	out := make([]Detection, 0, n)
	for i := 0; i < n; i++ {
		w := 12 + rng.Intn(40)
		h := 12 + rng.Intn(40)
		x := rng.Intn(maxInt(decoded.W-w, 1))
		y := rng.Intn(maxInt(decoded.H-h, 1))
		class := world.ClassCar
		if rng.Intn(2) == 0 {
			class = world.ClassPedestrian
		}
		out = append(out, Detection{
			Class: class,
			Box:   imgx.NewRect(x, y, w, h),
			Score: 0.3 + 0.25*rng.Float64(),
		})
	}
	return out
}

// jitterBox perturbs a box's position and size by jit (fraction of its own
// dimensions per axis).
func jitterBox(box imgx.Rect, jit float64, rng *rand.Rand) imgx.Rect {
	w := float64(box.W())
	h := float64(box.H())
	dx := rng.NormFloat64() * jit * w
	dy := rng.NormFloat64() * jit * h
	dw := rng.NormFloat64() * jit * w
	dh := rng.NormFloat64() * jit * h
	return imgx.Rect{
		MinX: box.MinX + int(dx),
		MinY: box.MinY + int(dy),
		MaxX: box.MaxX + int(dx+dw),
		MaxY: box.MaxY + int(dy+dh),
	}
}

// poisson draws from a Poisson distribution via Knuth's method (small λ).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
