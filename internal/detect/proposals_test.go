package detect

import (
	"testing"

	"dive/internal/imgx"
	"dive/internal/world"
)

func TestProposalsOnCleanFrames(t *testing.T) {
	d := New(DefaultConfig())
	p := testFrame(31)
	gt := gtAt(imgx.NewRect(100, 80, 60, 40), world.ClassCar)
	hits := 0
	for s := int64(0); s < 40; s++ {
		for _, pr := range d.Proposals(p, p, gt, s) {
			if pr.Box.IoU(gt[0].Box) > 0.2 {
				hits++
				break
			}
		}
	}
	if hits < 35 {
		t.Errorf("proposal rate %d/40 for a clean large object", hits)
	}
	// Proposal scores are low — they are candidates, not detections.
	for _, pr := range d.Proposals(p, p, gt, 1) {
		if pr.Score > 0.5 {
			t.Errorf("proposal score %v too high", pr.Score)
		}
	}
}

func TestProposalsVanishWhenDestroyed(t *testing.T) {
	// An object whose pixels compression obliterated must propose (almost)
	// nothing — the DDS blind spot.
	d := New(DefaultConfig())
	p := testFrame(32)
	box := imgx.NewRect(100, 80, 24, 16) // small object
	gt := gtAt(box, world.ClassPedestrian)
	bad := degrade(p, box, 70, 33)
	hits := 0
	for s := int64(0); s < 40; s++ {
		for _, pr := range d.Proposals(bad, p, gt, s) {
			if pr.Box.IoU(box) > 0.2 {
				hits++
				break
			}
		}
	}
	if hits > 10 {
		t.Errorf("destroyed object still proposed %d/40 times", hits)
	}
}

func TestProposalsMoreForgivingThanDetections(t *testing.T) {
	// At a marginal quality level, proposals must fire more often than
	// final detections — that is their purpose.
	d := New(DefaultConfig())
	p := testFrame(34)
	box := imgx.NewRect(100, 80, 40, 28)
	gt := gtAt(box, world.ClassCar)
	bad := degrade(p, box, 26, 35)
	dets, props := 0, 0
	for s := int64(0); s < 80; s++ {
		for _, dt := range d.Detect(bad, p, gt, s) {
			if dt.Box.IoU(box) > 0.2 {
				dets++
				break
			}
		}
		for _, pr := range d.Proposals(bad, p, gt, s) {
			if pr.Box.IoU(box) > 0.2 {
				props++
				break
			}
		}
	}
	if props <= dets {
		t.Errorf("proposals (%d) should outnumber detections (%d) at marginal quality", props, dets)
	}
}
