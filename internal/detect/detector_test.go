package detect

import (
	"math/rand"
	"testing"

	"dive/internal/imgx"
	"dive/internal/world"
)

// degrade returns a copy of p with uniform noise of the given amplitude
// inside rect (simulating local compression damage).
func degrade(p *imgx.Plane, rect imgx.Rect, amp int, seed int64) *imgx.Plane {
	rng := rand.New(rand.NewSource(seed))
	q := p.Clone()
	r := rect.ClipTo(p.W, p.H)
	for y := r.MinY; y < r.MaxY; y++ {
		for x := r.MinX; x < r.MaxX; x++ {
			v := int(q.At(x, y)) + rng.Intn(2*amp+1) - amp
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			q.Set(x, y, uint8(v))
		}
	}
	return q
}

func testFrame(seed int64) *imgx.Plane {
	rng := rand.New(rand.NewSource(seed))
	p := imgx.NewPlane(320, 192)
	for i := range p.Pix {
		p.Pix[i] = uint8(100 + rng.Intn(80))
	}
	return p
}

func gtAt(box imgx.Rect, class world.Class) []world.GTBox {
	return []world.GTBox{{ObjectID: 1, Class: class, Box: box, Depth: 20, Visible: 1, Moving: true}}
}

func TestPerfectQualityDetectsLargeObjects(t *testing.T) {
	d := New(DefaultConfig())
	p := testFrame(1)
	gt := gtAt(imgx.NewRect(100, 80, 60, 40), world.ClassCar)
	hits := 0
	for s := int64(0); s < 50; s++ {
		dets := d.Detect(p, p, gt, s)
		for _, det := range dets {
			if det.Class == world.ClassCar && det.Box.IoU(gt[0].Box) > 0.5 {
				hits++
				break
			}
		}
	}
	if hits < 48 {
		t.Errorf("pristine detection rate %d/50, want ≈ all", hits)
	}
}

func TestHeavyLocalDistortionKillsDetection(t *testing.T) {
	d := New(DefaultConfig())
	p := testFrame(2)
	box := imgx.NewRect(100, 80, 30, 20) // small-ish object
	gt := gtAt(box, world.ClassPedestrian)
	bad := degrade(p, box, 60, 3)
	hits := 0
	for s := int64(0); s < 50; s++ {
		for _, det := range d.Detect(bad, p, gt, s) {
			if det.Class == world.ClassPedestrian && det.Box.IoU(box) > 0.3 && !det.Tracked {
				hits++
				break
			}
		}
	}
	if hits > 15 {
		t.Errorf("detection rate %d/50 under heavy distortion, want low", hits)
	}
}

func TestBackgroundDistortionDoesNotAffectObject(t *testing.T) {
	// The DiVE premise: crushing the background while keeping the object
	// region clean must preserve detection.
	d := New(DefaultConfig())
	p := testFrame(3)
	box := imgx.NewRect(100, 80, 60, 40)
	gt := gtAt(box, world.ClassCar)
	// Degrade everything except the object.
	bad := degrade(p, imgx.NewRect(0, 0, 320, 70), 50, 4)
	bad = degrade(bad, imgx.NewRect(0, 130, 320, 62), 50, 5)
	hits := 0
	for s := int64(0); s < 50; s++ {
		for _, det := range d.Detect(bad, p, gt, s) {
			if det.Class == world.ClassCar && det.Box.IoU(box) > 0.5 {
				hits++
				break
			}
		}
	}
	if hits < 45 {
		t.Errorf("detection rate %d/50 with clean foreground, want ≈ all", hits)
	}
}

func TestLargerObjectsSurviveMoreDistortion(t *testing.T) {
	d := New(DefaultConfig())
	pBig := d.detectionProbability(28, 4000, 1)
	pSmall := d.detectionProbability(28, 150, 1)
	if pBig <= pSmall {
		t.Errorf("big %v <= small %v at equal PSNR", pBig, pSmall)
	}
	// Monotone in PSNR.
	if d.detectionProbability(40, 500, 1) <= d.detectionProbability(20, 500, 1) {
		t.Error("probability not monotone in PSNR")
	}
	// Occlusion reduces probability.
	if d.detectionProbability(40, 500, 0.4) >= d.detectionProbability(40, 500, 1) {
		t.Error("occlusion should reduce probability")
	}
}

func TestTinyObjectsIgnored(t *testing.T) {
	d := New(DefaultConfig())
	p := testFrame(6)
	gt := gtAt(imgx.NewRect(10, 10, 5, 5), world.ClassPedestrian)
	for s := int64(0); s < 20; s++ {
		for _, det := range d.Detect(p, p, gt, s) {
			if det.Box.IoU(gt[0].Box) > 0.3 {
				t.Fatal("sub-threshold object detected")
			}
		}
	}
}

func TestFalsePositivesOnlyWhenDegraded(t *testing.T) {
	d := New(DefaultConfig())
	p := testFrame(7)
	cleanFP, badFP := 0, 0
	bad := degrade(p, imgx.NewRect(0, 0, 320, 192), 45, 8)
	for s := int64(0); s < 60; s++ {
		cleanFP += len(d.Detect(p, p, nil, s))
		badFP += len(d.Detect(bad, p, nil, s))
	}
	if cleanFP != 0 {
		t.Errorf("false positives on pristine frames: %d", cleanFP)
	}
	if badFP == 0 {
		t.Error("no false positives on heavily degraded frames")
	}
}

func TestDetectDeterminism(t *testing.T) {
	d := New(DefaultConfig())
	p := testFrame(9)
	box := imgx.NewRect(60, 60, 50, 30)
	bad := degrade(p, box, 20, 10)
	gt := gtAt(box, world.ClassCar)
	a := d.Detect(bad, p, gt, 1234)
	b := d.Detect(bad, p, gt, 1234)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic detection")
		}
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poisson(0, rng) != 0 {
		t.Error("poisson(0) should be 0")
	}
	sum := 0
	const n = 2000
	for i := 0; i < n; i++ {
		sum += poisson(1.5, rng)
	}
	mean := float64(sum) / n
	if mean < 1.2 || mean > 1.8 {
		t.Errorf("poisson mean = %v, want ≈ 1.5", mean)
	}
}
