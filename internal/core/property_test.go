package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dive/internal/detect"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/world"
)

// Property: foreground extraction invariants hold for arbitrary noisy
// driving-like fields — foreground and ground masks are disjoint, seeds lie
// inside the ground hull, every cluster member carries a usable vector, and
// extraction is deterministic.
func TestPropertyForegroundInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const focal = 250.0
		nObj := rng.Intn(3)
		type obj struct{ x0, y0, x1, y1 int }
		objs := make([]obj, nObj)
		for i := range objs {
			x := 2 + rng.Intn(12)
			y := 3 + rng.Intn(4)
			objs[i] = obj{x, y, x + 2 + rng.Intn(3), y + 2 + rng.Intn(3)}
		}
		field := buildField(20, 12, focal, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
			for _, o := range objs {
				if bx >= o.x0 && bx < o.x1 && by >= o.y0 && by < o.y1 {
					return geom.Vec2{X: 4 + rng.Float64()*4, Y: rng.Float64() * 2}, true
				}
			}
			if pos.Y > 8 {
				z := focal * 1.4 / pos.Y
				v := pos.Scale(0.9 / z)
				v.X += rng.NormFloat64() * 0.3
				v.Y += rng.NormFloat64() * 0.3
				return v, true
			}
			if rng.Float64() < 0.3 {
				// Plain-texture noise vector.
				return geom.Vec2{X: rng.Float64()*6 - 3, Y: rng.Float64()*6 - 3}, true
			}
			return geom.Vec2{}, false
		})
		cfg := DefaultForegroundConfig()
		fg := ExtractForeground(field, geom.Vec2{}, cfg)
		if fg == nil {
			return true // legitimate when ground can't be estimated
		}
		// Disjoint masks.
		for i := range fg.Mask {
			if fg.Mask[i] && fg.GroundMask[i] {
				// Dilation may brush ground blocks; only the undilated
				// cluster members must stay off the ground.
				continue
			}
		}
		for _, o := range fg.Objects {
			for _, m := range o.Members {
				if fg.GroundMask[m] {
					return false
				}
				if !field.Vectors[m].Valid || field.Vectors[m].Zero {
					return false
				}
			}
			if len(o.Hull) == 0 || o.BBox.Empty() {
				return false
			}
		}
		for _, s := range fg.Seeds {
			if !geom.PointInHull(mbCenter(s, field.MBW), fg.GroundHull) {
				return false
			}
		}
		// Determinism.
		fg2 := ExtractForeground(field, geom.Vec2{}, cfg)
		if fg2 == nil || len(fg2.Objects) != len(fg.Objects) || fg2.Fraction() != fg.Fraction() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the adaptive delta is monotone in the foreground fraction and
// always within its clamp range.
func TestPropertyAdaptiveDeltaMonotone(t *testing.T) {
	cfg := DefaultAVEConfig()
	f := func(a, b float64) bool {
		fa := geom.Clamp(abs64(a), 0, 1)
		fb := geom.Clamp(abs64(b), 0, 1)
		if fa > fb {
			fa, fb = fb, fa
		}
		da := cfg.Delta(fa)
		db := cfg.Delta(fb)
		return da <= db && da >= cfg.MinDelta && db <= cfg.MaxDelta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs64(x float64) float64 {
	if x != x || x > 1e18 || x < -1e18 { // NaN/huge quick inputs
		return 0
	}
	if x < 0 {
		return -x
	}
	return x
}

// Property: tracking never produces boxes outside the frame and never
// raises scores.
func TestPropertyTrackingBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		field := buildField(20, 12, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
			return geom.Vec2{X: rng.Float64()*20 - 10, Y: rng.Float64()*20 - 10}, rng.Intn(4) != 0
		})
		dets := randomDetections(rng, 320, 192, 5)
		out := TrackDetections(dets, field, 160, 96, 320, 192, DefaultTrackConfig())
		for _, d := range out {
			if d.Box.MinX < 0 || d.Box.MinY < 0 || d.Box.MaxX > 320 || d.Box.MaxY > 192 {
				return false
			}
			if !d.Tracked {
				return false
			}
			if d.Score > 1 {
				return false
			}
		}
		return len(out) <= len(dets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomDetections builds n random boxes inside a w×h frame.
func randomDetections(rng *rand.Rand, w, h, n int) []detect.Detection {
	out := make([]detect.Detection, 0, n)
	for i := 0; i < n; i++ {
		bw := 8 + rng.Intn(60)
		bh := 8 + rng.Intn(60)
		x := rng.Intn(w - bw)
		y := rng.Intn(h - bh)
		class := world.ClassCar
		if rng.Intn(2) == 0 {
			class = world.ClassPedestrian
		}
		out = append(out, detect.Detection{
			Class: class,
			Box:   imgx.NewRect(x, y, bw, bh),
			Score: 0.3 + rng.Float64()*0.7,
		})
	}
	return out
}
