package core

import (
	"math"
	"testing"

	"dive/internal/codec"
	"dive/internal/geom"
	"dive/internal/mvfield"
)

// buildField constructs a flow field for a mbw×mbh grid. gen receives grid
// coordinates and returns flow in centered pixel coordinates plus validity.
func buildField(mbw, mbh int, focal float64, gen func(bx, by int, pos geom.Vec2) (geom.Vec2, bool)) *mvfield.Field {
	f := &mvfield.Field{MBW: mbw, MBH: mbh, Focal: focal, Vectors: make([]mvfield.Vector, mbw*mbh)}
	cx := float64(mbw*codec.MBSize) / 2
	cy := float64(mbh*codec.MBSize) / 2
	for by := 0; by < mbh; by++ {
		for bx := 0; bx < mbw; bx++ {
			pos := geom.Vec2{
				X: float64(bx*codec.MBSize) + codec.MBSize/2 - cx,
				Y: float64(by*codec.MBSize) + codec.MBSize/2 - cy,
			}
			flow, valid := gen(bx, by, pos)
			f.Vectors[by*mbw+bx] = mvfield.Vector{
				Pos: pos, Flow: flow, Valid: valid, Zero: flow.IsZero(),
			}
		}
	}
	return f
}

// drivingSceneField builds the canonical test scene: static background
// whose flow follows forward translation (ground at the bottom, walls at
// the sides), plus a moving object at the given MB rectangle with distinct
// coherent flow.
func drivingSceneField(mbw, mbh int, objMinX, objMinY, objMaxX, objMaxY int) *mvfield.Field {
	const focal = 250.0
	const h = 1.4
	dz := 0.9
	return buildField(mbw, mbh, focal, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		// The moving object overrides everything it covers.
		if bx >= objMinX && bx < objMaxX && by >= objMinY && by < objMaxY {
			return geom.Vec2{X: 6, Y: 1.5}, true
		}
		if pos.Y > 8 {
			// Ground plane.
			z := focal * h / pos.Y
			return pos.Scale(dz / z), true
		}
		if pos.Y > -40 {
			// Distant static structure near the horizon.
			z := 45.0
			return pos.Scale(dz / z), true
		}
		// Sky: unusable vectors.
		return geom.Vec2{}, false
	})
}

func TestExtractForegroundFindsObject(t *testing.T) {
	// Object MBs [6,10)x[5,8) sit above the ground rows; its bottom rows
	// fall inside the ground convex hull, seeding the growth.
	f := drivingSceneField(20, 12, 6, 5, 10, 8)
	fg := ExtractForeground(f, geom.Vec2{}, DefaultForegroundConfig())
	if fg == nil {
		t.Fatal("no foreground result")
	}
	if fg.Empty() {
		t.Fatal("no objects extracted")
	}
	// The object block must be covered by the mask.
	covered := 0
	for by := 5; by < 8; by++ {
		for bx := 6; bx < 10; bx++ {
			if fg.Mask[by*20+bx] {
				covered++
			}
		}
	}
	if covered < 9 {
		t.Errorf("only %d/12 object MBs covered", covered)
	}
	// The mask must not cover everything (differential encoding would be
	// pointless).
	if frac := fg.Fraction(); frac > 0.6 {
		t.Errorf("foreground fraction %v too large", frac)
	}
	// Ground rows are classified as ground, not foreground.
	groundRow := (12 - 1) * 20
	groundCount := 0
	for bx := 0; bx < 20; bx++ {
		if fg.GroundMask[groundRow+bx] {
			groundCount++
		}
	}
	if groundCount < 10 {
		t.Errorf("bottom row ground MBs = %d, want most", groundCount)
	}
}

func TestExtractForegroundNoGround(t *testing.T) {
	// All vectors invalid: ground estimation must fail gracefully.
	f := buildField(10, 6, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{}, false
	})
	if fg := ExtractForeground(f, geom.Vec2{}, DefaultForegroundConfig()); fg != nil {
		t.Error("expected nil result without usable vectors")
	}
}

func TestExtractForegroundPureGround(t *testing.T) {
	// Only ground flow, no objects: result exists but has no objects.
	const focal = 250.0
	f := buildField(20, 12, focal, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		if pos.Y <= 8 {
			return geom.Vec2{}, false
		}
		z := focal * 1.4 / pos.Y
		return pos.Scale(0.9 / z), true
	})
	fg := ExtractForeground(f, geom.Vec2{}, DefaultForegroundConfig())
	if fg == nil {
		t.Fatal("ground-only scene should still estimate ground")
	}
	if len(fg.Objects) != 0 {
		t.Errorf("found %d objects in an empty road", len(fg.Objects))
	}
	if fg.Fraction() != 0 {
		t.Errorf("foreground fraction = %v, want 0", fg.Fraction())
	}
}

func TestRegionGrowingRespectsClusterMeanGuard(t *testing.T) {
	// Two adjacent objects with very different flows must not fuse into
	// one cluster via chained similarity.
	const focal = 250.0
	f := buildField(20, 12, focal, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		if by >= 5 && by < 8 && bx >= 4 && bx < 8 {
			return geom.Vec2{X: 8, Y: 0}, true
		}
		if by >= 5 && by < 8 && bx >= 8 && bx < 12 {
			return geom.Vec2{X: -8, Y: 0}, true
		}
		if pos.Y > 8 {
			z := focal * 1.4 / pos.Y
			return pos.Scale(0.9 / z), true
		}
		return geom.Vec2{}, false
	})
	fg := ExtractForeground(f, geom.Vec2{}, DefaultForegroundConfig())
	if fg == nil || len(fg.Objects) < 2 {
		n := 0
		if fg != nil {
			n = len(fg.Objects)
		}
		t.Fatalf("opposed-flow objects merged: %d objects", n)
	}
}

func TestMergeClustersFillsSplitObject(t *testing.T) {
	// One object split by a hole of invalid vectors: the two halves share
	// flow direction and must merge into one region covering the hole.
	const focal = 250.0
	f := buildField(20, 12, focal, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		if by >= 5 && by < 8 && (bx >= 4 && bx < 6 || bx >= 7 && bx < 9) {
			return geom.Vec2{X: 7, Y: 1}, true
		}
		if by >= 5 && by < 8 && bx == 6 {
			return geom.Vec2{}, false // the hole
		}
		if pos.Y > 8 {
			z := focal * 1.4 / pos.Y
			return pos.Scale(0.9 / z), true
		}
		return geom.Vec2{}, false
	})
	fg := ExtractForeground(f, geom.Vec2{}, DefaultForegroundConfig())
	if fg == nil || fg.Empty() {
		t.Fatal("no foreground")
	}
	if len(fg.Objects) != 1 {
		t.Fatalf("split object produced %d clusters, want 1 after merging", len(fg.Objects))
	}
	// The hole must be inside the convex contour.
	if !fg.Mask[6*20+6] {
		t.Error("hole MB not covered by the merged hull")
	}
}

func TestForegroundMaskDilation(t *testing.T) {
	f := drivingSceneField(20, 12, 6, 5, 10, 8)
	cfg := DefaultForegroundConfig()
	cfg.DilateMBs = 0
	noDilate := ExtractForeground(f, geom.Vec2{}, cfg)
	cfg.DilateMBs = 2
	dilated := ExtractForeground(f, geom.Vec2{}, cfg)
	if noDilate == nil || dilated == nil {
		t.Fatal("extraction failed")
	}
	if dilated.Fraction() <= noDilate.Fraction() {
		t.Errorf("dilation did not grow the mask: %v vs %v", dilated.Fraction(), noDilate.Fraction())
	}
}

func TestHelpersGeometry(t *testing.T) {
	// rectGap.
	a := gridBBox([]int{0, 1}, 10)      // (0,0)-(2,1)
	b := gridBBox([]int{5, 15}, 10)     // (5,0)-(6,2)
	if got := rectGap(a, b); got != 3 { // gap of 3 columns
		t.Errorf("rectGap = %d", got)
	}
	if got := rectGap(a, a); got != 0 {
		t.Errorf("self gap = %d", got)
	}
	// segmentDist.
	d := segmentDist(geom.Vec2{X: 0, Y: 1}, geom.Vec2{X: -1, Y: 0}, geom.Vec2{X: 1, Y: 0})
	if math.Abs(d-1) > 1e-12 {
		t.Errorf("segmentDist = %v", d)
	}
	d = segmentDist(geom.Vec2{X: 5, Y: 0}, geom.Vec2{X: -1, Y: 0}, geom.Vec2{X: 1, Y: 0})
	if math.Abs(d-4) > 1e-12 {
		t.Errorf("beyond-end segmentDist = %v", d)
	}
	d = segmentDist(geom.Vec2{X: 3, Y: 4}, geom.Vec2{X: 0, Y: 0}, geom.Vec2{X: 0, Y: 0})
	if math.Abs(d-5) > 1e-12 {
		t.Errorf("degenerate segmentDist = %v", d)
	}
}

func TestFractionEmptyResult(t *testing.T) {
	var r *ForegroundResult
	if !r.Empty() {
		t.Error("nil result should be empty")
	}
	r2 := &ForegroundResult{}
	if r2.Fraction() != 0 {
		t.Error("zero-length mask fraction")
	}
}
