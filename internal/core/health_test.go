package core

import (
	"testing"

	"dive/internal/imgx"
)

// testFrame builds a textured plane so rate control has something to bisect.
func testFrame(w, h int, seed int) *imgx.Plane {
	f := imgx.NewPlane(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			f.Pix[y*w+x] = uint8((x*7 + y*13 + seed*31) % 251)
		}
	}
	return f
}

func TestLadderLevelTable(t *testing.T) {
	prevQP := -1
	for lvl := LadderHealthy; lvl <= LadderMOTOnly; lvl++ {
		d := lvl.Degradation()
		if d.Level != lvl {
			t.Errorf("%v: table entry carries level %v", lvl, d.Level)
		}
		if d.QPFloor < prevQP {
			t.Errorf("%v: QP floor %d below previous rung's %d — ladder must be monotone", lvl, d.QPFloor, prevQP)
		}
		prevQP = d.QPFloor
		if d.BudgetScale <= 0 || d.BudgetScale > 1 {
			t.Errorf("%v: budget scale %v out of (0,1]", lvl, d.BudgetScale)
		}
		if lvl.String() == "unknown" {
			t.Errorf("level %d unnamed", lvl)
		}
	}
	if LadderMOTOnly.Degradation().SkipModulo <= LadderFrameSkip.Degradation().SkipModulo {
		t.Error("mot-only must skip more aggressively than frame-skip")
	}
}

func TestLinkHealthStaysHealthyOnAcks(t *testing.T) {
	h := NewLinkHealth(HealthConfig{})
	for i := 0; i < 100; i++ {
		h.ObserveAck()
		if d := h.Tick(); d.Level != LadderHealthy {
			t.Fatalf("frame %d: degraded to %v on a clean link", i, d.Level)
		}
	}
	if h.Score() < 0.99 {
		t.Errorf("score %v after 100 clean acks", h.Score())
	}
}

func TestLinkHealthDescendsUnderFailures(t *testing.T) {
	h := NewLinkHealth(HealthConfig{})
	var deepest LadderLevel
	for i := 0; i < 60; i++ {
		h.ObserveTimeout()
		d := h.Tick()
		if d.Level > deepest {
			deepest = d.Level
		}
		if d.Level > deepest {
			t.Fatalf("ladder jumped more than one rung")
		}
	}
	if deepest != LadderMOTOnly {
		t.Fatalf("60 consecutive timeouts reached only %v", deepest)
	}
	if h.Level().Degradation().QPFloor == 0 {
		t.Error("deep rung imposes no QP floor")
	}
}

func TestLinkHealthOneRungPerDwell(t *testing.T) {
	cfg := DefaultHealthConfig()
	h := NewLinkHealth(cfg)
	// Crash the score instantly, then count frames between rung moves.
	for i := 0; i < 50; i++ {
		h.ObserveTimeout()
	}
	last := h.Level()
	sinceMove := 0
	for i := 0; i < 40 && h.Level() < LadderMOTOnly; i++ {
		h.Tick()
		sinceMove++
		if h.Level() != last {
			if h.Level() != last+1 {
				t.Fatalf("ladder moved %v -> %v in one tick", last, h.Level())
			}
			last = h.Level()
			sinceMove = 0
		}
	}
	if last != LadderMOTOnly {
		t.Fatalf("ladder stalled at %v", last)
	}
}

func TestLinkHealthRecoversWithHysteresis(t *testing.T) {
	h := NewLinkHealth(HealthConfig{})
	for i := 0; i < 60; i++ {
		h.ObserveTimeout()
		h.Tick()
	}
	if h.Level() != LadderMOTOnly {
		t.Fatalf("setup: level %v", h.Level())
	}
	// Clean acks: the ladder must climb all the way back, one rung at a
	// time, within a bounded number of frames.
	frames := 0
	for h.Level() != LadderHealthy {
		h.ObserveAck()
		h.Tick()
		frames++
		if frames > 400 {
			t.Fatalf("ladder stuck at %v after %d clean frames (score %v)", h.Level(), frames, h.Score())
		}
	}
	if frames < DefaultHealthConfig().DwellFrames*3 {
		t.Errorf("ladder recovered in %d frames — hysteresis/dwell not damping", frames)
	}
}

// TestLinkHealthNoOscillation feeds an alternating good/bad pattern whose
// mean sits near a threshold: the ladder must not flap every tick.
func TestLinkHealthNoOscillation(t *testing.T) {
	h := NewLinkHealth(HealthConfig{})
	transitions := 0
	last := h.Level()
	for i := 0; i < 400; i++ {
		if i%2 == 0 {
			h.Observe(1)
		} else {
			h.Observe(0.45)
		}
		h.Tick()
		if h.Level() != last {
			transitions++
			last = h.Level()
		}
	}
	if transitions > 8 {
		t.Errorf("%d ladder transitions over 400 frames of borderline input — oscillating", transitions)
	}
}

func TestObserveClamping(t *testing.T) {
	h := NewLinkHealth(HealthConfig{})
	h.Observe(42)
	if h.Score() > 1 {
		t.Errorf("score %v above 1", h.Score())
	}
	for i := 0; i < 100; i++ {
		h.Observe(-5)
	}
	if h.Score() < 0 {
		t.Errorf("score %v below 0", h.Score())
	}
	h.ObserveSlowAck(0.5)
	h.ObserveNack()
	h.ObserveReconnect()
	if s := h.Score(); s < 0 || s > 1 {
		t.Errorf("score %v out of range after mixed events", s)
	}
}

// TestAgentAppliesDegradation checks the encode path honours the QP floor
// and budget cut.
func TestAgentAppliesDegradation(t *testing.T) {
	cfg := DefaultAgentConfig(64, 64, 10, 100)
	cfg.Obs = nil
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := testFrame(64, 64, 1)
	fr, err := agent.ProcessFrame(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline := fr.Encoded.BaseQP

	d := LadderMOTOnly.Degradation()
	agent.SetDegradation(d, 0.1)
	fr2, err := agent.ProcessFrame(frame, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if fr2.Encoded.BaseQP < d.QPFloor {
		t.Errorf("degraded frame QP %d below floor %d (baseline %d)", fr2.Encoded.BaseQP, d.QPFloor, baseline)
	}
	if agent.Degradation().Level != LadderMOTOnly {
		t.Errorf("Degradation() = %v", agent.Degradation().Level)
	}

	// Back to healthy: the floor lifts.
	agent.SetDegradation(LadderHealthy.Degradation(), 1)
	fr3, err := agent.ProcessFrame(frame, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if fr3.Encoded.BaseQP >= d.QPFloor && baseline < d.QPFloor {
		t.Errorf("QP %d still at degraded floor after recovery", fr3.Encoded.BaseQP)
	}
}
