package core

import (
	"fmt"
	"math/rand"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/mvfield"
	"dive/internal/netsim"
	"dive/internal/obs"
)

// AgentConfig assembles the whole DiVE agent.
type AgentConfig struct {
	Width, Height int
	FPS           float64
	// Focal is the camera focal length in pixels (needed by the geometric
	// stages; a rough calibration suffices in practice).
	Focal float64
	Codec codec.Config
	// EtaThreshold is the non-zero MV ratio above which the agent is
	// judged to be moving (the paper uses 0.15).
	EtaThreshold float64
	Rotation     mvfield.RotationEstimator
	Foreground   ForegroundConfig
	AVE          AVEConfig
	Track        TrackConfig
	// BandwidthWindow is the sliding estimation window in seconds.
	BandwidthWindow float64
	// BandwidthPrior seeds the estimator before any feedback (bits/s).
	BandwidthPrior float64
	// OutageTimeout is the head-of-queue timer (seconds): if the oldest
	// queued frame has not started transmitting within this time, the
	// agent declares a link outage and switches to local tracking.
	OutageTimeout float64
	// CRF, when true, disables bandwidth-driven rate control and encodes
	// every frame at the constant base quantizer CRFQP (foreground
	// macroblocks then sit exactly at CRFQP and background at CRFQP+δ).
	// The Figure 12 experiment uses CRFQP 0 with a fixed δ sweep.
	CRF   bool
	CRFQP int
	// DisableRotation skips rotational-component elimination — the
	// ablation of the preprocessing stage. Foreground extraction then
	// consumes raw (rotation-contaminated) vectors.
	DisableRotation bool
	Seed            int64
	// Obs receives pipeline telemetry (per-stage timings, frame lifecycle
	// records, rate-control internals). Nil disables instrumentation at a
	// cost of a few nanoseconds per frame.
	Obs *obs.Recorder
	// Session names this stream for per-session observability: when set,
	// the agent's frame/bit counters are additionally exported as labeled
	// series under this value (matching the edge server's profile-seed
	// labels), so a process hosting several agents keeps per-stream
	// attribution. Empty disables the labeled series.
	Session string
}

// DefaultAgentConfig returns a full DiVE configuration for a frame size and
// frame rate.
func DefaultAgentConfig(w, h int, fps, focal float64) AgentConfig {
	cc := codec.DefaultConfig(w, h)
	cc.GoPSize = 96 // long GoP: intra refresh is expensive on a thin uplink
	return AgentConfig{
		Width: w, Height: h, FPS: fps, Focal: focal,
		Codec:           cc,
		EtaThreshold:    0.15,
		Rotation:        *mvfield.NewRotationEstimator(),
		Foreground:      DefaultForegroundConfig(),
		AVE:             DefaultAVEConfig(),
		Track:           DefaultTrackConfig(),
		BandwidthWindow: 0.25,
		BandwidthPrior:  netsim.Mbps(2),
		OutageTimeout:   0.35,
		Seed:            1,
		Obs:             obs.Default(),
	}
}

// RotationEstimate is the preprocessing output for one frame.
type RotationEstimate struct {
	PhiX, PhiY float64 // per-frame pitch and yaw increments, radians
	OK         bool
}

// FrameResult is everything the agent produced for one frame.
type FrameResult struct {
	Encoded *codec.EncodedFrame
	// Eta is the non-zero motion vector ratio.
	Eta float64
	// Moving is the ego-motion judgement.
	Moving bool
	// Rotation is the estimated (and removed) rotation.
	Rotation RotationEstimate
	// FOE is the per-frame focus of expansion in centered coordinates
	// (only meaningful when Moving).
	FOE geom.Vec2
	// Foreground is the extraction used for this frame (possibly reused
	// from an earlier frame, as the paper prescribes when stopped).
	Foreground *ForegroundResult
	// Reused reports whether Foreground was carried over.
	Reused bool
	// Delta is the background QP offset applied.
	Delta int
	// TargetBits is the rate-control budget derived from the bandwidth
	// estimate.
	TargetBits int
	// EstimatedBandwidth is the uplink estimate (bits/s) at encode time.
	EstimatedBandwidth float64
	// Field is the rotation-corrected flow field (nil on the first
	// frame), the input to foreground extraction.
	Field *mvfield.Field
	// RawField is the uncorrected flow field. Local tracking must use it:
	// boxes follow the actual image motion, rotation included.
	RawField *mvfield.Field
	// Trace is the frame's causal trace context, minted at capture. The
	// transport carries it to the edge (FrameMsg fields over TCP,
	// Link.SendTraced in the simulator) so server-side spans stitch into
	// the same trace. Invalid (zero) when telemetry is disabled.
	Trace obs.TraceContext
}

// Agent is a DiVE mobile agent: it turns raw frames into differentially
// encoded bitstreams sized to the estimated uplink, and tracks cached
// detections locally during outages.
type Agent struct {
	cfg       AgentConfig
	enc       *codec.Encoder
	estimator *netsim.Estimator
	foeCal    *mvfield.FOECalibrator
	rng       *rand.Rand
	lastFG    *ForegroundResult
	lastDets  []detect.Detection
	frameNum  int
	forceI    bool
	// degrade is the active graceful-degradation response (set by the
	// transport's link-health ladder) and health the score it journaled
	// under; both are read at encode time on the analysis stage.
	degrade Degradation
	health  float64
	// qpOffsets is the recycled per-frame QP offset map handed to the
	// encoder. Owned by the analysis stage; the codec never retains it past
	// AnalyzeAndQuantize, so one buffer serves every frame.
	qpOffsets []int

	// Per-session labeled counter children, resolved once at construction
	// (nil — hence no-op — without a recorder or a configured Session).
	sessFrames *obs.Counter
	sessBits   *obs.Counter
}

// NewAgent validates the configuration and builds an agent.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.FPS <= 0 {
		return nil, fmt.Errorf("core: FPS must be positive")
	}
	if cfg.Focal <= 0 {
		return nil, fmt.Errorf("core: focal length must be positive")
	}
	if cfg.Codec.Width != cfg.Width || cfg.Codec.Height != cfg.Height {
		return nil, fmt.Errorf("core: codec size %dx%d does not match agent size %dx%d",
			cfg.Codec.Width, cfg.Codec.Height, cfg.Width, cfg.Height)
	}
	if cfg.Codec.Obs == nil {
		cfg.Codec.Obs = cfg.Obs
	}
	enc, err := codec.NewEncoder(cfg.Codec)
	if err != nil {
		return nil, err
	}
	estimator := netsim.NewEstimator(cfg.BandwidthWindow, cfg.BandwidthPrior)
	estimator.Obs = cfg.Obs
	a := &Agent{
		cfg:       cfg,
		enc:       enc,
		estimator: estimator,
		foeCal:    mvfield.NewFOECalibrator(),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Session != "" {
		a.sessFrames = cfg.Obs.LabeledCounter(obs.MetricAgentSessionFrames, obs.SessionLabel).With(cfg.Session)
		a.sessBits = cfg.Obs.LabeledCounter(obs.MetricAgentSessionBits, obs.SessionLabel).With(cfg.Session)
	}
	return a, nil
}

// Config returns the agent configuration.
func (a *Agent) Config() AgentConfig { return a.cfg }

// cx and cy are the principal point coordinates.
func (a *Agent) cx() float64 { return float64(a.cfg.Width) / 2 }
func (a *Agent) cy() float64 { return float64(a.cfg.Height) / 2 }

// ProcessFrame runs the full DiVE pipeline on one captured frame at
// simulated time now and returns the encoded frame plus all analysis
// byproducts. It is the serial composition of the two pipeline phases:
// AnalyzeFrame (motion, foreground, rate control, quantization) immediately
// followed by EmitFrame (bitstream serialization). Streaming callers use
// ProcessStream to overlap the phases across consecutive frames.
func (a *Agent) ProcessFrame(frame *imgx.Plane, now float64) (*FrameResult, error) {
	p, err := a.AnalyzeFrame(frame, now)
	if err != nil {
		return nil, err
	}
	return a.EmitFrame(p)
}

// journalRecord assembles the frame's decision-journal entry: the inputs
// and outputs of every decision point ProcessFrame took. Only called with
// telemetry enabled, so the extra field scans here cost nothing on the
// disabled hot path.
func (a *Agent) journalRecord(ctx obs.TraceContext, res *FrameResult, ef *codec.EncodedFrame, now, frac float64) obs.JournalRecord {
	j := obs.JournalRecord{
		TraceID: ctx.TraceID, Frame: ef.Index, TimeSec: now, Type: ef.Type.String(),
		Eta: res.Eta, EtaThreshold: a.cfg.EtaThreshold, Moving: res.Moving,
		RotOK: res.Rotation.OK, PhiX: res.Rotation.PhiX, PhiY: res.Rotation.PhiY,
		RotResidual: 1,
		FOEX:        res.FOE.X, FOEY: res.FOE.Y,
		FGFraction: frac, FGReused: res.Reused,
		Delta: res.Delta, TargetBits: res.TargetBits,
		BaseQP: ef.BaseQP, Bits: ef.NumBits, RCTrials: ef.RCTrials,
		EstBWBps:     res.EstimatedBandwidth,
		DegradeLevel: int(a.degrade.Level), LinkHealth: a.health,
		QPFloor: a.degrade.QPFloor,
	}
	if mo := ef.Motion; mo != nil && len(mo.SADs) > 0 {
		sum := 0
		for _, s := range mo.SADs {
			sum += s
		}
		j.MeanSAD = float64(sum) / float64(len(mo.SADs))
	}
	if res.Rotation.OK {
		// How much flow the estimated rotation explained: the mean flow
		// magnitude that survives removal, relative to the raw field.
		raw, corr := meanFlowMagnitude(res.RawField), meanFlowMagnitude(res.Field)
		if raw > 0 {
			j.RotResidual = corr / raw
		}
	}
	if fg := res.Foreground; fg != nil {
		j.FGObjects = len(fg.Objects)
		j.GroundMBs = countMask(fg.GroundMask)
		j.FGMBs = countMask(fg.Mask)
		j.BGMBs = len(fg.Mask) - j.FGMBs - j.GroundMBs
		if j.BGMBs < 0 {
			j.BGMBs = 0
		}
	}
	return j
}

// meanFlowMagnitude averages |flow| over the valid vectors of a field
// (0 for nil or all-invalid fields).
func meanFlowMagnitude(f *mvfield.Field) float64 {
	if f == nil {
		return 0
	}
	sum, n := 0.0, 0
	for _, v := range f.Vectors {
		if !v.Valid {
			continue
		}
		sum += v.Flow.Norm()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// countMask counts set entries.
func countMask(mask []bool) int {
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return n
}

// OnTransmitComplete feeds uplink feedback into the bandwidth estimator:
// bits were serialized onto the link during [start, end].
func (a *Agent) OnTransmitComplete(start, end float64, bits int) {
	a.estimator.Record(start, end, bits)
	a.cfg.Obs.AmendLastFrame(func(fr *obs.FrameRecord) {
		fr.AckBits += bits
		fr.AckEndSec = end
	})
	a.cfg.Obs.AmendLastJournal(func(j *obs.JournalRecord) {
		j.AckBits += bits
		j.AckStartSec = start
		j.AckEndSec = end
		if end > start {
			j.RealizedBWBps = float64(bits) / (end - start)
		}
	})
}

// NoteOutage journals that the frame just processed could not be uploaded:
// the head-of-queue timer fired at queueDelay seconds and the agent fell
// back to local tracking over trackedBoxes cached detections. The simulator
// (or a live transport) calls this right after declaring the outage.
func (a *Agent) NoteOutage(queueDelay float64, trackedBoxes int) {
	a.cfg.Obs.AmendLastJournal(func(j *obs.JournalRecord) {
		j.Outage = true
		j.QueueDelaySec = queueDelay
		j.TrackedBoxes = trackedBoxes
	})
}

// NoteOutageAt is NoteOutage addressed to a specific frame — the pipelined
// and live-transport variant, for outage verdicts that land after later
// frames have already been journaled.
func (a *Agent) NoteOutageAt(frame int, queueDelay float64, trackedBoxes int) {
	a.cfg.Obs.AmendJournalFrame(frame, func(j *obs.JournalRecord) {
		j.Outage = true
		j.QueueDelaySec = queueDelay
		j.TrackedBoxes = trackedBoxes
	})
}

// SetDegradation installs the transport's graceful-degradation response and
// the link-health score it was derived from: subsequent frames are encoded
// under the rung's QP floor and budget scale, and journaled with both. Call
// from the same goroutine (or pipeline stage) as AnalyzeFrame.
func (a *Agent) SetDegradation(d Degradation, health float64) {
	a.degrade = d
	a.health = health
}

// Degradation returns the active degradation response.
func (a *Agent) Degradation() Degradation { return a.degrade }

// OnDetections caches the newest edge results for outage tracking.
func (a *Agent) OnDetections(dets []detect.Detection) {
	a.lastDets = dets
}

// LastDetections returns the most recent cached detections (possibly
// tracked ones).
func (a *Agent) LastDetections() []detect.Detection { return a.lastDets }

// TrackLocally advances the cached detections with the given flow field
// (typically FrameResult.Field of the frame that could not be uploaded) and
// re-caches the result — DiVE's offline tracking during outages.
func (a *Agent) TrackLocally(field *mvfield.Field) []detect.Detection {
	a.lastDets = TrackDetections(a.lastDets, field, a.cx(), a.cy(), a.cfg.Width, a.cfg.Height, a.cfg.Track)
	return a.lastDets
}

// OutageTimeout returns the configured head-of-queue timer.
func (a *Agent) OutageTimeout() float64 { return a.cfg.OutageTimeout }

// ForceNextIFrame makes the next encoded frame an I-frame. The transport
// calls this when frames were dropped (link outage) so the edge decoder can
// resynchronize on the next delivered frame.
func (a *Agent) ForceNextIFrame() {
	a.forceI = true
	a.cfg.Obs.Counter(obs.MetricForcedIFrames).Inc()
	a.cfg.Obs.AmendLastJournal(func(j *obs.JournalRecord) { j.ForcedIFrame = true })
}

// Reconstructed returns the encoder's reconstruction of the last processed
// frame — bit-exact with what the edge decoder produces, so callers can
// report the quality the server will see.
func (a *Agent) Reconstructed() *imgx.Plane { return a.enc.Reconstructed() }
