package core

// Link-health scoring and the graceful-degradation ladder.
//
// The transport (live client or simulator) feeds link events — acks,
// ack-deadline expiries, server NACKs, reconnects — into a LinkHealth
// tracker. The tracker maintains an EWMA health score in [0,1] and maps it
// onto a five-rung ladder of increasingly drastic responses:
//
//	0 healthy    — nothing changes
//	1 qp-floor   — raise the encoder's minimum QP (cheaper frames)
//	2 budget-cut — also shrink the rate-control bit budget
//	3 frame-skip — also upload only every 2nd frame, MOT covers the rest
//	4 mot-only   — upload only every 8th frame as a link probe; local
//	               tracking carries the analytics
//
// Transitions are damped two ways: a move needs the score to cross the
// rung's threshold (with hysteresis on the way back up), and at most one
// rung may be taken every DwellFrames frames. The damping is what makes the
// ladder an instrument rather than an oscillator — divedoctor's
// ladder-stuck and reconnect-storm detectors grade its journal trail.

// LadderLevel is a rung of the graceful-degradation ladder.
type LadderLevel int

const (
	LadderHealthy LadderLevel = iota
	LadderQPFloor
	LadderBudgetCut
	LadderFrameSkip
	LadderMOTOnly
)

// String names the rung for journals and logs.
func (l LadderLevel) String() string {
	switch l {
	case LadderHealthy:
		return "healthy"
	case LadderQPFloor:
		return "qp-floor"
	case LadderBudgetCut:
		return "budget-cut"
	case LadderFrameSkip:
		return "frame-skip"
	case LadderMOTOnly:
		return "mot-only"
	default:
		return "unknown"
	}
}

// Degradation is the concrete response a ladder rung imposes on the encode
// and transport path.
type Degradation struct {
	Level LadderLevel
	// QPFloor is the minimum base QP the encoder may use (0 = no floor).
	QPFloor int
	// BudgetScale multiplies the rate-control bit budget (1 = untouched).
	BudgetScale float64
	// SkipModulo uploads only every Nth frame (0 or 1 = upload all).
	// Skipped frames are MOT-tracked locally; the periodic upload doubles
	// as a link probe so the score can observe recovery.
	SkipModulo int
}

// Degradation returns the response table entry for the rung.
func (l LadderLevel) Degradation() Degradation {
	switch l {
	case LadderQPFloor:
		return Degradation{Level: l, QPFloor: 30, BudgetScale: 1}
	case LadderBudgetCut:
		return Degradation{Level: l, QPFloor: 34, BudgetScale: 0.6}
	case LadderFrameSkip:
		return Degradation{Level: l, QPFloor: 38, BudgetScale: 0.5, SkipModulo: 2}
	case LadderMOTOnly:
		return Degradation{Level: l, QPFloor: 42, BudgetScale: 0.4, SkipModulo: 8}
	default:
		return Degradation{Level: LadderHealthy, BudgetScale: 1}
	}
}

// HealthConfig tunes the link-health tracker.
type HealthConfig struct {
	// Alpha is the EWMA weight of each new observation (default 0.2).
	Alpha float64
	// DegradeAt are the score thresholds below which rungs 1..4 engage,
	// strictly descending (default 0.75, 0.5, 0.3, 0.15).
	DegradeAt [4]float64
	// Hysteresis is the extra score margin required to climb back up a
	// rung (default 0.1).
	Hysteresis float64
	// DwellFrames is the minimum number of Tick calls between ladder
	// moves (default 6).
	DwellFrames int
}

// DefaultHealthConfig returns the standard tuning.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		Alpha:       0.2,
		DegradeAt:   [4]float64{0.75, 0.5, 0.3, 0.15},
		Hysteresis:  0.1,
		DwellFrames: 6,
	}
}

func (c HealthConfig) withDefaults() HealthConfig {
	d := DefaultHealthConfig()
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = d.Alpha
	}
	if c.DegradeAt == ([4]float64{}) {
		c.DegradeAt = d.DegradeAt
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.DwellFrames <= 0 {
		c.DwellFrames = d.DwellFrames
	}
	return c
}

// LinkHealth tracks an EWMA health score from transport events and drives
// the degradation ladder with hysteresis and dwell. Not safe for concurrent
// use; transports own one instance on their feedback goroutine.
type LinkHealth struct {
	cfg    HealthConfig
	score  float64
	level  LadderLevel
	dwell  int // Ticks since the last ladder move
	primed bool
}

// NewLinkHealth builds a tracker starting healthy (score 1).
func NewLinkHealth(cfg HealthConfig) *LinkHealth {
	return &LinkHealth{cfg: cfg.withDefaults(), score: 1}
}

// Observe folds one transport outcome in [0,1] into the score (1 = the link
// behaved, 0 = it failed hard).
func (h *LinkHealth) Observe(outcome float64) {
	if outcome < 0 {
		outcome = 0
	} else if outcome > 1 {
		outcome = 1
	}
	h.score = (1-h.cfg.Alpha)*h.score + h.cfg.Alpha*outcome
	h.primed = true
}

// ObserveAck records a clean, in-deadline acknowledgement.
func (h *LinkHealth) ObserveAck() { h.Observe(1) }

// ObserveSlowAck records an ack that arrived but late relative to the
// deadline: lateness in [0,1] where 1 means at the deadline.
func (h *LinkHealth) ObserveSlowAck(lateness float64) { h.Observe(1 - 0.5*lateness) }

// ObserveTimeout records an ack deadline expiry (the outage path fired).
func (h *LinkHealth) ObserveTimeout() { h.Observe(0) }

// ObserveNack records a server NACK (corrupt frame or decoder desync):
// damaging, but the link itself still round-tripped a message.
func (h *LinkHealth) ObserveNack() { h.Observe(0.4) }

// ObserveReconnect records a connection loss.
func (h *LinkHealth) ObserveReconnect() { h.Observe(0) }

// Score returns the current health score in [0,1].
func (h *LinkHealth) Score() float64 { return h.score }

// Level returns the current ladder rung.
func (h *LinkHealth) Level() LadderLevel { return h.level }

// target returns the rung the raw score asks for, with hysteresis applied
// against the current rung on the way up.
func (h *LinkHealth) target() LadderLevel {
	t := LadderHealthy
	for i, th := range h.cfg.DegradeAt {
		if h.score < th {
			t = LadderLevel(i + 1)
		}
	}
	if t < h.level {
		// Climbing back up: require the score to clear the threshold of
		// the rung being left by the hysteresis margin.
		for lvl := h.level; lvl > t; lvl-- {
			if h.score < h.cfg.DegradeAt[lvl-1]+h.cfg.Hysteresis {
				return lvl
			}
		}
	}
	return t
}

// Tick advances the ladder by at most one rung (respecting dwell) and
// returns the degradation the next frame must be encoded under. Call once
// per frame.
func (h *LinkHealth) Tick() Degradation {
	h.dwell++
	if h.primed && h.dwell >= h.cfg.DwellFrames {
		t := h.target()
		if t > h.level {
			h.level++
			h.dwell = 0
		} else if t < h.level {
			h.level--
			h.dwell = 0
		}
	}
	return h.level.Degradation()
}
