package core

import (
	"fmt"
	"time"

	"dive/internal/codec"
	"dive/internal/imgx"
	"dive/internal/mvfield"
	"dive/internal/obs"
	"dive/internal/parallel"
)

// PendingFrame is one frame's work carried between AnalyzeFrame and
// EmitFrame: the analysis byproducts, the quantized encode job, and the
// still-open root trace span. The frame's bitstream does not exist yet —
// Result().Encoded carries every field except Data until EmitFrame fills it.
//
// Hazard analysis for pipelined use: AnalyzeFrame advances every piece of
// mutable agent and encoder state the NEXT frame's analysis reads (encoder
// reference and QP map, foreground cache, FOE calibrator, RNG, frame
// counter), while EmitFrame reads only the job's own quantized coefficients
// and immutable encoder config. Frame N+1 may therefore be analyzed while
// frame N's bitstream is still being emitted, with no synchronization beyond
// the pipeline's stage ordering.
type PendingFrame struct {
	res *FrameResult
	job *codec.FrameJob
	// ctx is the root trace context (journal identity); actx is ctx rebased
	// onto the root "frame" span so stage spans — including the emit span
	// recorded on another goroutine — become its children.
	ctx  obs.TraceContext
	actx obs.TraceContext
	span obs.Span // open root "frame" span, ended when EmitFrame completes
	now  float64
	frac float64

	motionDur, rotationDur, foregroundDur, encodeDur time.Duration
}

// Result returns the frame's analysis result. Before EmitFrame completes,
// Result().Encoded carries the frame metadata (type, QPs, NumBits, motion)
// with a nil Data payload.
func (p *PendingFrame) Result() *FrameResult { return p.res }

// beginFrameTrace mints the causal trace and opens the root "frame" span
// for the frame with the given index. In pipelined runs this happens at
// capture (stage A), so the root span covers capture wait as well and every
// later stage span — recorded on other goroutines — parents onto it.
func (a *Agent) beginFrameTrace(frameIdx int) (obs.TraceContext, obs.Span) {
	r := a.cfg.Obs
	ctx := r.StartTrace(frameIdx)
	return ctx, r.StartStageSpan(ctx, "frame", "agent", obs.StageFrame)
}

// AnalyzeFrame runs phase one of the frame pipeline on one captured frame:
// motion analysis, the moving/stopped judgement, rotation removal,
// foreground extraction, adaptive QP selection, rate control and
// quantization (codec.AnalyzeAndQuantize). On return the agent is ready to
// analyze the next frame; the returned PendingFrame must be passed to
// EmitFrame — in production order, exactly once — to obtain the bitstream.
func (a *Agent) AnalyzeFrame(frame *imgx.Plane, now float64) (*PendingFrame, error) {
	ctx, span := a.beginFrameTrace(a.frameNum)
	return a.analyzeFrame(frame, now, ctx, span)
}

// analyzeFrame is AnalyzeFrame with the trace pre-minted (possibly on an
// earlier pipeline stage). It owns all mutable agent state; callers must
// serialize invocations in frame order.
func (a *Agent) analyzeFrame(frame *imgx.Plane, now float64, ctx obs.TraceContext, frameSpan obs.Span) (*PendingFrame, error) {
	res := &FrameResult{}
	r := a.cfg.Obs
	actx := frameSpan.Context()
	// Carry the root-span context outward: transport and edge spans become
	// children of the frame span, exactly like the local stage spans.
	res.Trace = actx
	p := &PendingFrame{res: res, ctx: ctx, actx: actx, span: frameSpan, now: now}

	// Preprocessing: motion vectors come free from the encoder.
	motionSpan := r.StartStageSpan(actx, "motion", "agent", obs.StageMotion)
	mf := a.enc.AnalyzeMotion(frame)
	p.motionDur = motionSpan.End()
	if mf != nil {
		field := mvfield.FromMotion(mf, a.cfg.Focal, a.cx(), a.cy(), 0)
		res.RawField = field
		res.Eta = field.Eta()
		res.Moving = res.Eta > a.cfg.EtaThreshold

		if res.Moving {
			// Rotational component elimination (Section III-B3).
			if !a.cfg.DisableRotation {
				rotSpan := r.StartStageSpan(actx, "rotation", "agent", obs.StageRotation)
				phiX, phiY, err := a.cfg.Rotation.Estimate(field, a.foeCal.FOE(), a.rng)
				if err == nil {
					res.Rotation = RotationEstimate{PhiX: phiX, PhiY: phiY, OK: true}
					field = field.RemoveRotation(phiX, phiY)
				}
				p.rotationDur = rotSpan.End()
			}
			// FOE calibration on the corrected field.
			if foe, err := mvfield.EstimateFOE(field, a.rng); err == nil {
				a.foeCal.Update(foe)
				res.FOE = foe
			} else {
				res.FOE = a.foeCal.FOE()
			}
			res.Field = field

			// Foreground extraction (Section III-C).
			fgSpan := r.StartStageSpan(actx, "foreground", "agent", obs.StageForeground)
			fg := ExtractForeground(field, a.foeCal.FOE(), a.cfg.Foreground)
			p.foregroundDur = fgSpan.End()
			if fg != nil && !fg.Empty() {
				a.lastFG = fg
			} else {
				res.Reused = true
			}
		} else {
			// Stopped: no usable ground flow; reuse the latest foreground.
			res.Field = field
			res.Reused = true
		}
	} else {
		res.Reused = a.lastFG != nil
	}
	res.Foreground = a.lastFG

	// Adaptive video encoding (Section III-D).
	frac := 0.0
	var mask []bool
	if a.lastFG != nil {
		frac = a.lastFG.Fraction()
		mask = a.lastFG.Mask
	}
	p.frac = frac
	res.Delta = a.cfg.AVE.Delta(frac)
	mbw, mbh := a.enc.MBDims()
	a.qpOffsets = BuildQPOffsetsInto(a.qpOffsets, mask, mbw*mbh, res.Delta)
	offsets := a.qpOffsets

	opts := codec.EncodeOptions{QPOffsets: offsets, ForceIFrame: a.forceI, MinQP: a.degrade.QPFloor}
	if a.cfg.CRF {
		opts.BaseQP = a.cfg.CRFQP
	} else {
		res.EstimatedBandwidth = a.estimator.EstimateAt(now)
		res.TargetBits = a.cfg.AVE.TargetBits(res.EstimatedBandwidth, a.cfg.FPS)
		// The degradation ladder shrinks the budget before the bisection
		// sees it: a struggling link gets cheaper frames, not hopeful ones.
		if a.degrade.BudgetScale > 0 && a.degrade.BudgetScale < 1 {
			res.TargetBits = int(float64(res.TargetBits) * a.degrade.BudgetScale)
		}
		opts.TargetBits = res.TargetBits
		opts.IFrameBudgetScale = a.cfg.AVE.IFrameBudgetScale
	}
	encSpan := r.StartStageSpan(actx, "encode", "agent", obs.StageEncode)
	job, err := a.enc.AnalyzeAndQuantize(frame, opts)
	p.encodeDur = encSpan.End()
	a.forceI = false
	if err != nil {
		return nil, err
	}
	p.job = job
	ef := job.Frame
	res.Encoded = ef
	a.frameNum++

	if r != nil {
		r.Counter(obs.MetricFrames).Inc()
		r.Counter(obs.MetricBits).Add(int64(ef.NumBits))
		a.sessFrames.Inc()
		a.sessBits.Add(int64(ef.NumBits))
		// The bitstream does not exist yet; the writer pads to a byte
		// boundary, so its length is fully determined by the bit count.
		r.Counter(obs.MetricBytes).Add(int64((ef.NumBits + 7) / 8))
		if ef.Type == codec.IFrame {
			r.Counter(obs.MetricIFrames).Inc()
		}
		r.Gauge(obs.GaugeEta).Set(res.Eta)
		r.Gauge(obs.GaugeFGFraction).Set(frac)
		// Record the lifecycle and journal entries now, before any
		// transport feedback for this frame can arrive: AmendLast* from
		// OnTransmitComplete/ForceNextIFrame must land on this frame.
		// TotalMs and EmitMs are amended when EmitFrame completes.
		r.RecordFrame(obs.FrameRecord{
			Frame: ef.Index, TimeSec: now, Type: ef.Type.String(),
			Eta: res.Eta, Moving: res.Moving, ReusedFG: res.Reused,
			FGFraction: frac, Delta: res.Delta,
			BaseQP: ef.BaseQP, Bits: ef.NumBits, TargetBits: res.TargetBits,
			EstBWBps:     res.EstimatedBandwidth,
			MotionMs:     p.motionDur.Seconds() * 1000,
			RotationMs:   p.rotationDur.Seconds() * 1000,
			ForegroundMs: p.foregroundDur.Seconds() * 1000,
			EncodeMs:     p.encodeDur.Seconds() * 1000,
		})
		r.RecordJournal(a.journalRecord(ctx, res, ef, now, frac))
	}
	return p, nil
}

// EmitFrame runs phase two: it serializes the pending frame's bitstream
// (codec.EmitBitstream), closes the frame's root span and amends the
// lifecycle record with the emit and total durations. It touches no mutable
// agent analysis state, so it may run concurrently with AnalyzeFrame calls
// for later frames; pending frames must be emitted in production order,
// exactly once.
func (a *Agent) EmitFrame(p *PendingFrame) (*FrameResult, error) {
	if p == nil || p.job == nil {
		return nil, fmt.Errorf("core: EmitFrame on a consumed or nil pending frame")
	}
	r := a.cfg.Obs
	emitSpan := r.StartSpan(p.actx, "emit", "agent")
	ef, err := a.enc.EmitBitstream(p.job)
	emitDur := emitSpan.End()
	p.job = nil
	if err != nil {
		return nil, err
	}
	p.res.Encoded = ef
	total := p.span.End()
	if r != nil {
		r.AmendFrameRecord(ef.Index, func(fr *obs.FrameRecord) {
			fr.EmitMs = emitDur.Seconds() * 1000
			fr.TotalMs = total.Seconds() * 1000
		})
	}
	return p.res, nil
}

// ProcessStream runs frames [0, n) through the agent as a bounded-depth
// software pipeline with three stages per frame:
//
//	A: capture — source(i) produces the frame and its capture time
//	   (rendering, file reads), and the frame's trace is minted;
//	B: analysis — motion, foreground, rate control and quantization
//	   (AnalyzeFrame), then the post hook (transport send, outage
//	   decisions, bandwidth feedback);
//	C: emission — entropy coding (EmitFrame), then the deliver hook
//	   (decode, detection, result handling).
//
// Up to depth frames are in flight at once, so frame N+1's capture and
// analysis overlap frame N's entropy coding and delivery. The execution
// order is parallel.Pipeline's contract: per-frame stage order, per-stage
// frame order (each stage is a single goroutine), at most depth frames
// between capture and delivery. Consequently bitstreams are byte-identical
// to the serial ProcessFrame loop at every depth, and hooks observe frames
// in order. With depth <= 1 or a single-worker codec configuration the
// stages run inline — exactly the serial loop.
//
// Hook confinement: post runs on the analysis stage and may use the
// stage-B agent surface (OnTransmitComplete, ForceNextIFrame); deliver runs
// on the emission stage and may use the stage-C surface (TrackLocally,
// OnDetections, LastDetections). Neither may call ProcessFrame/AnalyzeFrame
// reentrantly. post observes the frame before its bitstream exists:
// Result().Encoded.Data is nil until stage C.
func (a *Agent) ProcessStream(n, depth int,
	source func(i int) (*imgx.Plane, float64),
	post func(i int, fr *FrameResult) error,
	deliver func(i int, fr *FrameResult) error,
) (parallel.PipelineStats, error) {
	if source == nil {
		return parallel.PipelineStats{}, fmt.Errorf("core: ProcessStream requires a frame source")
	}
	if depth < 1 {
		depth = 1
	}
	type slot struct {
		frame *imgx.Plane
		now   float64
		ctx   obs.TraceContext
		span  obs.Span
		pf    *PendingFrame
	}
	// Slot i%depth is reused by frame i+depth only after frame i left the
	// last stage — guaranteed by the pipeline's in-flight bound.
	slots := make([]slot, depth)
	base := a.frameNum
	pool := parallel.New(a.cfg.Codec.Workers)

	return pool.Pipeline(n, depth,
		func(i int) error { // A: capture
			s := &slots[i%depth]
			s.frame, s.now = source(i)
			if s.frame == nil {
				return fmt.Errorf("core: ProcessStream source returned a nil frame at %d", i)
			}
			s.ctx, s.span = a.beginFrameTrace(base + i)
			return nil
		},
		func(i int) error { // B: analysis + quantization
			s := &slots[i%depth]
			pf, err := a.analyzeFrame(s.frame, s.now, s.ctx, s.span)
			if err != nil {
				return err
			}
			s.pf = pf
			if post != nil {
				return post(i, pf.res)
			}
			return nil
		},
		func(i int) error { // C: bitstream emission + delivery
			s := &slots[i%depth]
			fr, err := a.EmitFrame(s.pf)
			s.pf, s.frame = nil, nil
			if err != nil {
				return err
			}
			if deliver != nil {
				return deliver(i, fr)
			}
			return nil
		},
	)
}
