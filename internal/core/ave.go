package core

import "math"

// DeltaPolicy selects how the foreground/background QP delta is chosen
// (Section III-D2; Figure 11 compares the options).
type DeltaPolicy int

// Delta policies.
const (
	// DeltaFixed always uses AVEConfig.FixedDelta.
	DeltaFixed DeltaPolicy = iota + 1
	// DeltaAdaptive scales the delta with the extracted foreground size:
	// larger extracted foregrounds are likelier to cover the real
	// foreground, so the background can be crushed harder.
	DeltaAdaptive
)

// String names the policy.
func (p DeltaPolicy) String() string {
	switch p {
	case DeltaFixed:
		return "fixed"
	case DeltaAdaptive:
		return "adaptive"
	default:
		return "unknown"
	}
}

// AVEConfig configures adaptive video encoding.
type AVEConfig struct {
	Policy     DeltaPolicy
	FixedDelta int
	// AdaptiveCoeff is the constant the foreground fraction is multiplied
	// by to obtain δ (the paper: "δ equals current foreground size
	// multiplying a constant coefficient").
	AdaptiveCoeff float64
	// MinDelta and MaxDelta clamp the adaptive δ.
	MinDelta, MaxDelta int
	// BitrateSafety is the fraction of the estimated bandwidth the encoder
	// targets, leaving headroom for estimation error.
	BitrateSafety float64
	// IFrameBudgetScale lets intra frames spend this multiple of the
	// per-frame budget; the transmit queue absorbs the burst over the
	// following frames instead of the I-frame collapsing to mush.
	IFrameBudgetScale float64
}

// DefaultAVEConfig returns DiVE's adaptive policy.
func DefaultAVEConfig() AVEConfig {
	return AVEConfig{
		Policy:            DeltaAdaptive,
		FixedDelta:        15,
		AdaptiveCoeff:     45,
		MinDelta:          4,
		MaxDelta:          22,
		BitrateSafety:     0.90,
		IFrameBudgetScale: 3,
	}
}

// Delta returns the QP offset for background macroblocks given the current
// foreground fraction of the frame.
func (c AVEConfig) Delta(foregroundFrac float64) int {
	if c.Policy == DeltaFixed {
		return c.FixedDelta
	}
	d := int(math.Round(c.AdaptiveCoeff * foregroundFrac))
	if d < c.MinDelta {
		d = c.MinDelta
	}
	if d > c.MaxDelta {
		d = c.MaxDelta
	}
	return d
}

// BuildQPOffsets converts a foreground mask into the per-macroblock QP
// offset map: 0 on foreground, delta on background. A nil mask returns a
// flat map of delta/2 (no foreground knowledge: encode uniformly but do
// not spend foreground-grade bits everywhere).
func BuildQPOffsets(mask []bool, numMBs, delta int) []int {
	return BuildQPOffsetsInto(nil, mask, numMBs, delta)
}

// BuildQPOffsetsInto is BuildQPOffsets writing into a caller-recycled slice:
// dst's backing array is reused when large enough, so the agent's per-frame
// encode prep allocates nothing in steady state. Safe because the codec
// never retains the offsets map past AnalyzeAndQuantize. Returns the map.
func BuildQPOffsetsInto(dst []int, mask []bool, numMBs, delta int) []int {
	offsets := dst
	if cap(offsets) < numMBs {
		offsets = make([]int, numMBs)
	}
	offsets = offsets[:numMBs]
	if mask == nil {
		for i := range offsets {
			offsets[i] = delta / 2
		}
		return offsets
	}
	for i := range offsets {
		if !mask[i] {
			offsets[i] = delta
		} else {
			offsets[i] = 0
		}
	}
	return offsets
}

// TargetBits returns the per-frame bit budget for the estimated uplink
// bandwidth (bits/s) at the given frame rate.
func (c AVEConfig) TargetBits(bandwidthBps, fps float64) int {
	if fps <= 0 || bandwidthBps <= 0 {
		return 0
	}
	return int(bandwidthBps * c.BitrateSafety / fps)
}
