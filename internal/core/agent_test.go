package core

import (
	"testing"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/world"
)

func TestAVEDeltaPolicies(t *testing.T) {
	cfg := DefaultAVEConfig()
	cfg.Policy = DeltaFixed
	cfg.FixedDelta = 15
	if d := cfg.Delta(0.5); d != 15 {
		t.Errorf("fixed delta = %d", d)
	}
	cfg.Policy = DeltaAdaptive
	small := cfg.Delta(0.05)
	large := cfg.Delta(0.40)
	if small >= large {
		t.Errorf("adaptive delta not increasing: %d vs %d", small, large)
	}
	if small < cfg.MinDelta || large > cfg.MaxDelta {
		t.Errorf("delta out of clamp range: %d, %d", small, large)
	}
	// Extremes clamp.
	if cfg.Delta(0) != cfg.MinDelta {
		t.Error("zero foreground should clamp to MinDelta")
	}
	if cfg.Delta(1) != cfg.MaxDelta {
		t.Error("full foreground should clamp to MaxDelta")
	}
}

func TestDeltaPolicyString(t *testing.T) {
	if DeltaFixed.String() != "fixed" || DeltaAdaptive.String() != "adaptive" || DeltaPolicy(9).String() != "unknown" {
		t.Error("policy names wrong")
	}
}

func TestBuildQPOffsets(t *testing.T) {
	mask := []bool{true, false, false, true}
	off := BuildQPOffsets(mask, 4, 20)
	want := []int{0, 20, 20, 0}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("offsets = %v", off)
		}
	}
	// Nil mask: uniform moderate compression.
	flat := BuildQPOffsets(nil, 4, 20)
	for _, v := range flat {
		if v != 10 {
			t.Fatalf("flat offsets = %v", flat)
		}
	}
}

func TestTargetBits(t *testing.T) {
	cfg := DefaultAVEConfig()
	got := cfg.TargetBits(netsim.Mbps(2), 10)
	want := int(2e6 * cfg.BitrateSafety / 10)
	if got != want {
		t.Errorf("TargetBits = %d, want %d", got, want)
	}
	if cfg.TargetBits(0, 10) != 0 || cfg.TargetBits(1e6, 0) != 0 {
		t.Error("degenerate TargetBits should be 0")
	}
}

func TestTrackDetectionsShiftsBoxes(t *testing.T) {
	// Uniform flow of (+4, +2) everywhere.
	f := buildField(20, 12, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{X: 4, Y: 2}, true
	})
	dets := []detect.Detection{{
		Class: world.ClassCar,
		Box:   imgx.NewRect(100, 80, 48, 32),
		Score: 0.9,
	}}
	out := TrackDetections(dets, f, 160, 96, 320, 192, DefaultTrackConfig())
	if len(out) != 1 {
		t.Fatalf("tracked %d boxes", len(out))
	}
	if out[0].Box.MinX != 104 || out[0].Box.MinY != 82 {
		t.Errorf("tracked box = %+v", out[0].Box)
	}
	if !out[0].Tracked {
		t.Error("tracked flag not set")
	}
	if out[0].Score >= 0.9 {
		t.Error("score should decay")
	}
}

func TestTrackDetectionsDropsDepartedAndDecayed(t *testing.T) {
	f := buildField(20, 12, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{X: -300, Y: 0}, true
	})
	dets := []detect.Detection{
		{Class: world.ClassCar, Box: imgx.NewRect(5, 80, 40, 32), Score: 0.9},
	}
	out := TrackDetections(dets, f, 160, 96, 320, 192, DefaultTrackConfig())
	if len(out) != 0 {
		t.Errorf("box that left the frame survived: %+v", out)
	}
	// Score decay threshold.
	cfg := DefaultTrackConfig()
	cfg.MinScore = 0.5
	dets[0].Score = 0.5
	dets[0].Box = imgx.NewRect(100, 80, 40, 32)
	still := buildField(20, 12, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{}, true
	})
	out = TrackDetections(dets, still, 160, 96, 320, 192, cfg)
	if len(out) != 0 {
		t.Error("decayed detection survived below MinScore")
	}
}

func TestTrackDetectionsNilField(t *testing.T) {
	dets := []detect.Detection{{Class: world.ClassCar, Box: imgx.NewRect(10, 10, 20, 20), Score: 0.8}}
	out := TrackDetections(dets, nil, 160, 96, 320, 192, DefaultTrackConfig())
	if len(out) != 1 || out[0].Box != dets[0].Box {
		t.Error("nil field should keep boxes in place")
	}
}

func TestNewAgentValidation(t *testing.T) {
	cfg := DefaultAgentConfig(320, 192, 12, 250)
	cfg.FPS = 0
	if _, err := NewAgent(cfg); err == nil {
		t.Error("expected FPS error")
	}
	cfg = DefaultAgentConfig(320, 192, 12, 250)
	cfg.Focal = 0
	if _, err := NewAgent(cfg); err == nil {
		t.Error("expected focal error")
	}
	cfg = DefaultAgentConfig(320, 192, 12, 250)
	cfg.Codec.Width = 640
	if _, err := NewAgent(cfg); err == nil {
		t.Error("expected size mismatch error")
	}
}

// TestAgentEndToEndOnClip runs the whole DiVE agent over a rendered clip
// and checks the pipeline-level invariants the paper describes.
func TestAgentEndToEndOnClip(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 2.5
	clip := world.GenerateClip(p, 77)

	cfg := DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Pretend a steady 2 Mbps uplink acked everything instantly.
	bw := netsim.Mbps(2)
	now := 0.0
	sawForeground := false
	sawMoving := false
	for i, frame := range clip.Frames {
		res, err := agent.ProcessFrame(frame, now)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if res.Encoded == nil || res.Encoded.NumBits <= 0 {
			t.Fatalf("frame %d: no bitstream", i)
		}
		// Rate control respects the bandwidth-derived budget (except at
		// QP 51 saturation); intra frames may spend the configured
		// multiple of it.
		budget := res.TargetBits
		if res.Encoded.Type == codec.IFrame {
			budget = int(float64(budget) * cfg.AVE.IFrameBudgetScale)
		}
		if res.TargetBits > 0 && res.Encoded.NumBits > budget && res.Encoded.BaseQP < 51 {
			t.Errorf("frame %d: %d bits exceeds budget %d at QP %d",
				i, res.Encoded.NumBits, budget, res.Encoded.BaseQP)
		}
		if res.Moving {
			sawMoving = true
		}
		if res.Foreground != nil && !res.Foreground.Empty() {
			sawForeground = true
		}
		// Feed back transmission at the trace rate.
		txTime := float64(res.Encoded.NumBits) / bw
		agent.OnTransmitComplete(now, now+txTime, res.Encoded.NumBits)
		now = float64(i+1) / clip.FPS
	}
	if !sawMoving {
		t.Error("agent never judged itself moving on a driving clip")
	}
	if !sawForeground {
		t.Error("agent never extracted any foreground")
	}
	// After feedback, the estimate should be near the real bandwidth.
	est := agent.estimator.EstimateAt(now)
	if est < bw*0.2 || est > bw*3 {
		t.Errorf("bandwidth estimate %v far from actual %v", est, bw)
	}
}

func TestAgentReusesForegroundWhenStopped(t *testing.T) {
	// Drive the agent through a moving clip, then feed identical static
	// frames: η collapses and the last foreground must be reused.
	clipP := world.NuScenesLike()
	clipP.ClipDuration = 1.5
	clip := world.GenerateClip(clipP, 31)
	cfg := DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastFG *ForegroundResult
	for i, frame := range clip.Frames {
		res, err := agent.ProcessFrame(frame, float64(i)/clip.FPS)
		if err != nil {
			t.Fatal(err)
		}
		lastFG = res.Foreground
		start := float64(i) / clip.FPS
		agent.OnTransmitComplete(start, start+float64(res.Encoded.NumBits)/netsim.Mbps(2), res.Encoded.NumBits)
	}
	if lastFG == nil {
		t.Skip("clip produced no foreground; nothing to reuse")
	}
	// Now feed the very same frame repeatedly. The very first still frame
	// may sit at the η boundary (its reference carries heavy background
	// quantization noise from the moving phase), so allow one borderline
	// misjudgement — the paper's rule is 98%, not 100%, accurate — but
	// the foreground must always be carried over, and η must settle to
	// "stopped" afterwards.
	still := clip.Frames[len(clip.Frames)-1]
	misjudged := 0
	for i := 0; i < 4; i++ {
		res, err := agent.ProcessFrame(still, 2+float64(i)*0.1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Moving {
			misjudged++
			if i > 0 {
				t.Errorf("iteration %d: agent still thinks identical frames are motion (η=%v)", i, res.Eta)
			}
			lastFG = res.Foreground // a misjudged frame may legitimately re-extract
			continue
		}
		if res.Foreground != lastFG {
			t.Error("stopped agent should reuse the last foreground")
		}
		if !res.Reused {
			t.Error("Reused flag not set")
		}
	}
	if misjudged > 1 {
		t.Errorf("%d/4 still frames misjudged as motion", misjudged)
	}
}

func TestAgentDetectionCacheAndTracking(t *testing.T) {
	cfg := DefaultAgentConfig(320, 192, 12, 250)
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dets := []detect.Detection{{Class: world.ClassCar, Box: imgx.NewRect(100, 80, 40, 30), Score: 0.9}}
	agent.OnDetections(dets)
	if got := agent.LastDetections(); len(got) != 1 {
		t.Fatal("cache miss")
	}
	f := buildField(20, 12, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{X: 3, Y: 0}, true
	})
	tracked := agent.TrackLocally(f)
	if len(tracked) != 1 || tracked[0].Box.MinX != 103 {
		t.Errorf("tracked = %+v", tracked)
	}
	// Tracking twice compounds.
	tracked = agent.TrackLocally(f)
	if tracked[0].Box.MinX != 106 {
		t.Errorf("second tracking = %+v", tracked[0].Box)
	}
	if agent.OutageTimeout() != cfg.OutageTimeout {
		t.Error("OutageTimeout accessor wrong")
	}
}

func TestAgentAccessors(t *testing.T) {
	cfg := DefaultAgentConfig(64, 64, 10, 100)
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := agent.Config(); got.FPS != 10 || got.Width != 64 {
		t.Errorf("Config = %+v", got)
	}
	if agent.Reconstructed() != nil {
		t.Error("reconstruction before any frame should be nil")
	}
	f := imgx.NewPlane(64, 64)
	if _, err := agent.ProcessFrame(f, 0); err != nil {
		t.Fatal(err)
	}
	if agent.Reconstructed() == nil {
		t.Error("reconstruction missing after a frame")
	}
	// ForceNextIFrame makes frame 2 intra despite the long GoP.
	agent.ForceNextIFrame()
	res, err := agent.ProcessFrame(f, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Encoded.Type != codec.IFrame {
		t.Error("ForceNextIFrame ignored")
	}
}
