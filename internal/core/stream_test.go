package core

import (
	"bytes"
	"testing"

	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/world"
)

// streamClip renders a short moving clip shared by the stream tests.
func streamClip(t *testing.T) *world.Clip {
	t.Helper()
	p := world.NuScenesLike()
	p.ClipDuration = 1.25
	return world.GenerateClip(p, 77)
}

// runSerialReference drives the classic ProcessFrame loop with transport
// feedback and returns the per-frame bitstreams.
func runSerialReference(t *testing.T, clip *world.Clip) [][]byte {
	t.Helper()
	cfg := DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bw := netsim.Mbps(2)
	var payloads [][]byte
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		res, err := agent.ProcessFrame(frame, now)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		agent.OnTransmitComplete(now, now+float64(res.Encoded.NumBits)/bw, res.Encoded.NumBits)
		payloads = append(payloads, res.Encoded.Data)
	}
	return payloads
}

// TestProcessStreamMatchesProcessFrame is the pipelining output contract at
// the agent level: for every depth, the streamed path must produce
// byte-identical bitstreams to the serial ProcessFrame loop, delivered in
// frame order, with the same transport feedback applied at the same points.
func TestProcessStreamMatchesProcessFrame(t *testing.T) {
	clip := streamClip(t)
	want := runSerialReference(t, clip)
	bw := netsim.Mbps(2)

	for _, depth := range []int{1, 2, 3} {
		cfg := DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
		agent, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]byte, clip.NumFrames())
		delivered := 0
		stats, err := agent.ProcessStream(clip.NumFrames(), depth,
			func(i int) (*imgx.Plane, float64) {
				return clip.Frames[i], float64(i) / clip.FPS
			},
			func(i int, fr *FrameResult) error {
				if fr.Encoded == nil || fr.Encoded.NumBits <= 0 {
					t.Errorf("depth %d frame %d: post hook saw no frame metadata", depth, i)
				}
				now := float64(i) / clip.FPS
				agent.OnTransmitComplete(now, now+float64(fr.Encoded.NumBits)/bw, fr.Encoded.NumBits)
				return nil
			},
			func(i int, fr *FrameResult) error {
				if i != delivered {
					t.Errorf("depth %d: frame %d delivered out of order (want %d)", depth, i, delivered)
				}
				delivered++
				got[i] = fr.Encoded.Data
				return nil
			})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if delivered != clip.NumFrames() {
			t.Fatalf("depth %d: delivered %d of %d frames", depth, delivered, clip.NumFrames())
		}
		if stats.Items != clip.NumFrames() {
			t.Errorf("depth %d: stats.Items = %d, want %d", depth, stats.Items, clip.NumFrames())
		}
		if stats.MaxInFlight > depth {
			t.Errorf("depth %d: %d frames in flight", depth, stats.MaxInFlight)
		}
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("depth %d frame %d: bitstream differs from serial (%d vs %d bytes)",
					depth, i, len(got[i]), len(want[i]))
			}
		}
	}
}

// TestAnalyzeEmitSplitMatchesProcessFrame checks the two-phase agent API
// directly: deferring EmitFrame behind later AnalyzeFrame calls must not
// change a byte.
func TestAnalyzeEmitSplitMatchesProcessFrame(t *testing.T) {
	clip := streamClip(t)
	want := runSerialReference(t, clip)

	cfg := DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	agent, err := NewAgent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bw := netsim.Mbps(2)
	const lag = 2
	var pending []*PendingFrame
	var got [][]byte
	emit := func() {
		p := pending[0]
		pending = pending[1:]
		fr, err := agent.EmitFrame(p)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, fr.Encoded.Data)
	}
	for i, frame := range clip.Frames {
		now := float64(i) / clip.FPS
		p, err := agent.AnalyzeFrame(frame, now)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p.Result().Encoded.Data != nil {
			t.Fatalf("frame %d: pending frame already has a bitstream", i)
		}
		agent.OnTransmitComplete(now, now+float64(p.Result().Encoded.NumBits)/bw, p.Result().Encoded.NumBits)
		pending = append(pending, p)
		if len(pending) > lag {
			emit()
		}
	}
	for len(pending) > 0 {
		emit()
	}
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Fatalf("frame %d: deferred-emit bitstream differs", i)
		}
	}
	// Misuse: a consumed pending frame must not emit twice.
	p, err := agent.AnalyzeFrame(clip.Frames[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agent.EmitFrame(p); err != nil {
		t.Fatal(err)
	}
	if _, err := agent.EmitFrame(p); err == nil {
		t.Error("double EmitFrame should fail")
	}
}
