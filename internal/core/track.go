package core

import (
	"math"

	"dive/internal/detect"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/mvfield"
)

// TrackConfig tunes motion-vector-based offline tracking (Section III-E).
type TrackConfig struct {
	// ScoreDecay multiplies a detection's confidence per tracked frame;
	// prolonged tracking degrades accuracy and this models that loss.
	ScoreDecay float64
	// MinScore drops tracked boxes whose decayed confidence falls below it.
	MinScore float64
}

// DefaultTrackConfig returns the tracker defaults.
func DefaultTrackConfig() TrackConfig {
	return TrackConfig{ScoreDecay: 0.97, MinScore: 0.2}
}

// TrackDetections advances cached detections by one frame using the motion
// vector field, as DiVE does while the uplink is down: each box follows the
// motion vectors inside it — a translation-plus-scale model fitted by least
// squares when enough vectors cover the box (the flow field's divergence
// carries the looming/receding signal), falling back to the mean vector
// otherwise. cx, cy locate the principal point (to convert the field's
// centered coordinates to pixels); w, h are the frame dimensions for
// clipping. Boxes that leave the frame or decay away are dropped.
func TrackDetections(dets []detect.Detection, field *mvfield.Field, cx, cy float64, w, h int, cfg TrackConfig) []detect.Detection {
	out := make([]detect.Detection, 0, len(dets))
	for _, d := range dets {
		shift, scale := boxMotion(field, d.Box, cx, cy)
		ccx := (float64(d.Box.MinX+d.Box.MaxX))/2 + shift.X
		ccy := (float64(d.Box.MinY+d.Box.MaxY))/2 + shift.Y
		halfW := float64(d.Box.W()) / 2 * scale
		halfH := float64(d.Box.H()) / 2 * scale
		nb := imgx.Rect{
			MinX: int(math.Round(ccx - halfW)), MinY: int(math.Round(ccy - halfH)),
			MaxX: int(math.Round(ccx + halfW)), MaxY: int(math.Round(ccy + halfH)),
		}
		clipped := nb.ClipTo(w, h)
		if nb.Area() == 0 || clipped.Area() < nb.Area()/3 || clipped.Empty() {
			continue // mostly out of frame
		}
		score := d.Score * cfg.ScoreDecay
		if score < cfg.MinScore {
			continue
		}
		out = append(out, detect.Detection{
			Class:   d.Class,
			Box:     clipped,
			Score:   score,
			Tracked: true,
		})
	}
	return out
}

// boxMotion estimates the similarity motion (translation + scale) of the
// content of box from the flow vectors inside it. With fewer than four
// usable vectors it degrades to the mean-translation model of Section
// III-E; with none it returns identity.
func boxMotion(field *mvfield.Field, box imgx.Rect, cx, cy float64) (geom.Vec2, float64) {
	if field == nil {
		return geom.Vec2{}, 1
	}
	bcx := float64(box.MinX+box.MaxX)/2 - cx // box center, centered coords
	bcy := float64(box.MinY+box.MaxY)/2 - cy
	var rows [][]float64
	var rhs []float64
	var sum geom.Vec2
	n := 0
	for _, v := range field.Vectors {
		px := v.Pos.X + cx
		py := v.Pos.Y + cy
		if px < float64(box.MinX) || px >= float64(box.MaxX) ||
			py < float64(box.MinY) || py >= float64(box.MaxY) || !v.Valid {
			continue
		}
		rows = append(rows,
			[]float64{1, 0, v.Pos.X - bcx},
			[]float64{0, 1, v.Pos.Y - bcy})
		rhs = append(rhs, v.Flow.X, v.Flow.Y)
		sum = sum.Add(v.Flow)
		n++
	}
	if n == 0 {
		return geom.Vec2{}, 1
	}
	mean := sum.Scale(1 / float64(n))
	if n < 4 {
		return mean, 1
	}
	u, err := geom.LeastSquares(rows, rhs)
	if err != nil {
		return mean, 1
	}
	// Per-frame scale rate clamped: codec vectors are too coarse to
	// support extreme divergence estimates.
	s := 1 + geom.Clamp(u[2], -0.12, 0.12)
	return geom.Vec2{X: u[0], Y: u[1]}, s
}
