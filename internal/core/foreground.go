// Package core implements DiVE itself (Section III of the paper): the
// preprocessing stage (ego-motion judgement and rotational-component
// elimination), motion-vector-based foreground extraction (ground
// estimation, region-growing clustering, cluster merging, convex contours),
// adaptive video encoding (bandwidth-targeted rate control with an adaptive
// foreground/background QP delta), and motion-vector-based offline tracking
// for link outages. The substrates live in sibling packages; this package
// is the paper's algorithmic contribution.
package core

import (
	"math"

	"dive/internal/codec"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/mvfield"
)

// ForegroundConfig tunes foreground extraction (Section III-C).
type ForegroundConfig struct {
	// HistBins is the resolution of the normalized-magnitude histogram fed
	// to the triangle threshold.
	HistBins int
	// ThresholdScale relaxes the triangle threshold (ground values spread
	// a little because codec vectors are integral).
	ThresholdScale float64
	// MinGroundSamples is the minimum number of usable normalized
	// magnitudes required to attempt ground estimation at all.
	MinGroundSamples int
	// SimAbs and SimRel define motion-vector similarity for region
	// growing: |a-b| ≤ SimAbs + SimRel·max(|a|,|b|).
	SimAbs, SimRel float64
	// MinClusterSize drops clusters smaller than this many macroblocks.
	MinClusterSize int
	// MergeAngle is the maximum direction difference (radians) between
	// cluster mean vectors for merging.
	MergeAngle float64
	// MergeGapMBs is the maximum spatial gap (in macroblocks) between
	// cluster bounding boxes for merging.
	MergeGapMBs int
	// DilateMBs grows the final foreground mask by this many macroblocks
	// so convex contours fully cover object borders.
	DilateMBs int
	// MaxAboveHorizonFrac bounds how far above the horizon (the principal
	// point row) region growing may reach, as a fraction of the half
	// frame height. Objects standing on the ground — cars, pedestrians —
	// project at most a few pixels above the horizon (their tops sit near
	// camera height), while buildings extend far above it; the bound
	// keeps facades out of the foreground.
	MaxAboveHorizonFrac float64
	// Normalize configures the Eq. (8) computation.
	Normalize mvfield.NormalizeOptions
}

// DefaultForegroundConfig returns the operating point used by DiVE.
func DefaultForegroundConfig() ForegroundConfig {
	return ForegroundConfig{
		HistBins:            64,
		ThresholdScale:      1.35,
		MinGroundSamples:    8,
		SimAbs:              2.0,
		SimRel:              0.3,
		MinClusterSize:      2,
		MergeAngle:          30 * math.Pi / 180,
		MergeGapMBs:         2,
		DilateMBs:           1,
		MaxAboveHorizonFrac: 0.3,
		Normalize:           mvfield.DefaultNormalizeOptions(),
	}
}

// ForegroundObject is one extracted foreground region.
type ForegroundObject struct {
	// Members are macroblock indices of the merged cluster.
	Members []int
	// Hull is the convex contour in macroblock-grid coordinates.
	Hull []geom.Vec2
	// BBox is the pixel-space bounding box of the contour.
	BBox imgx.Rect
	// MeanFlow is the cluster's average flow vector.
	MeanFlow geom.Vec2
}

// ForegroundResult is the outcome of foreground extraction on one frame.
type ForegroundResult struct {
	MBW, MBH int
	// GroundMask marks macroblocks classified as ground.
	GroundMask []bool
	// GroundHull is the convex contour of the ground region (MB grid
	// coordinates); nil when ground estimation failed.
	GroundHull []geom.Vec2
	// Threshold is the normalized-magnitude cut that defined the ground.
	Threshold float64
	// Seeds are the macroblock indices region growing started from.
	Seeds []int
	// Objects are the merged foreground clusters.
	Objects []ForegroundObject
	// Mask marks foreground macroblocks (hulls rasterized and dilated).
	Mask []bool
}

// Fraction returns the fraction of macroblocks marked foreground.
func (r *ForegroundResult) Fraction() float64 {
	if len(r.Mask) == 0 {
		return 0
	}
	n := 0
	for _, m := range r.Mask {
		if m {
			n++
		}
	}
	return float64(n) / float64(len(r.Mask))
}

// Empty reports whether no foreground was extracted.
func (r *ForegroundResult) Empty() bool { return r == nil || len(r.Objects) == 0 }

// ExtractForeground runs Section III-C on a rotation-corrected flow field:
// ground estimation from normalized magnitudes, seed selection inside the
// ground convex hull, region-growing clustering, direction-based merging,
// and convex contours. foe is in principal-point-centered coordinates.
// A nil result means no ground could be estimated (the caller should reuse
// the previous foreground, as the paper prescribes for stopped agents).
func ExtractForeground(f *mvfield.Field, foe geom.Vec2, cfg ForegroundConfig) *ForegroundResult {
	norms := mvfield.NormalizedMagnitudes(f, foe, cfg.Normalize)
	var vals []float64
	maxV := 0.0
	for _, n := range norms {
		if n.OK {
			vals = append(vals, n.Value)
			if n.Value > maxV {
				maxV = n.Value
			}
		}
	}
	if len(vals) < cfg.MinGroundSamples || maxV <= 0 {
		return nil
	}

	// Ground = smallest normalized magnitudes, split off with the
	// triangle method (Section III-C1).
	hist := geom.NewHistogram(0, maxV*1.0001, cfg.HistBins)
	for _, v := range vals {
		hist.Add(v)
	}
	threshold := hist.TriangleThreshold() * cfg.ThresholdScale

	res := &ForegroundResult{
		MBW: f.MBW, MBH: f.MBH,
		GroundMask: make([]bool, len(f.Vectors)),
		Threshold:  threshold,
		Mask:       make([]bool, len(f.Vectors)),
	}
	var groundPts []geom.Vec2
	for _, n := range norms {
		if n.OK && n.Value <= threshold {
			res.GroundMask[n.Index] = true
			groundPts = append(groundPts, mbCenter(n.Index, f.MBW))
		}
	}
	if len(groundPts) < 3 {
		return nil
	}
	res.GroundHull = geom.ConvexHull(groundPts)

	// Seeds: non-ground macroblocks with usable vectors inside the ground
	// hull — objects standing on the ground. minY bounds how far above
	// the horizon a standing object can reach.
	minY := -cfg.MaxAboveHorizonFrac * float64(f.MBH*codec.MBSize) / 2
	for i, v := range f.Vectors {
		if res.GroundMask[i] || !v.Valid || v.Zero || v.Pos.Y < minY {
			continue
		}
		if geom.PointInHull(mbCenter(i, f.MBW), res.GroundHull) {
			res.Seeds = append(res.Seeds, i)
		}
	}

	clusters := growClusters(f, res.GroundMask, res.Seeds, minY, cfg)
	clusters = mergeClusters(f, clusters, cfg)

	for _, members := range clusters {
		obj := buildObject(f, members)
		res.Objects = append(res.Objects, obj)
		rasterizeHull(res.Mask, f.MBW, f.MBH, obj.Hull, cfg.DilateMBs)
	}
	return res
}

// mbCenter returns macroblock i's center in grid coordinates.
func mbCenter(i, mbw int) geom.Vec2 {
	return geom.Vec2{X: float64(i % mbw), Y: float64(i / mbw)}
}

// similarFlow implements the region-growing similarity test.
func similarFlow(a, b geom.Vec2, cfg ForegroundConfig) bool {
	d := a.Sub(b).Norm()
	m := math.Max(a.Norm(), b.Norm())
	return d <= cfg.SimAbs+cfg.SimRel*m
}

// growClusters performs the BFS region growing of Section III-C2: from each
// seed, neighbors join when their vector is similar both to the current
// block's vector and to the cluster's running mean (the guard against
// over-growing).
func growClusters(f *mvfield.Field, ground []bool, seeds []int, minY float64, cfg ForegroundConfig) [][]int {
	visited := make([]bool, len(f.Vectors))
	var clusters [][]int
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		cluster := []int{seed}
		mean := f.Vectors[seed].Flow
		queue := []int{seed}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			curFlow := f.Vectors[cur].Flow
			bx, by := cur%f.MBW, cur/f.MBW
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := bx+d[0], by+d[1]
				if nx < 0 || ny < 0 || nx >= f.MBW || ny >= f.MBH {
					continue
				}
				ni := ny*f.MBW + nx
				if visited[ni] || ground[ni] {
					continue
				}
				nv := f.Vectors[ni]
				if !nv.Valid || nv.Zero || nv.Pos.Y < minY {
					continue
				}
				if !similarFlow(nv.Flow, curFlow, cfg) || !similarFlow(nv.Flow, mean, cfg) {
					continue
				}
				visited[ni] = true
				cluster = append(cluster, ni)
				queue = append(queue, ni)
				// Update the running mean.
				n := float64(len(cluster))
				mean = mean.Scale((n - 1) / n).Add(nv.Flow.Scale(1 / n))
			}
		}
		if len(cluster) >= cfg.MinClusterSize {
			clusters = append(clusters, cluster)
		}
	}
	return clusters
}

// mergeClusters iteratively merges clusters whose mean flows point the same
// way and whose footprints are close, filling the holes sparse motion
// vectors leave in objects (Section III-C2).
func mergeClusters(f *mvfield.Field, clusters [][]int, cfg ForegroundConfig) [][]int {
	type info struct {
		members []int
		mean    geom.Vec2
		bbox    imgx.Rect
	}
	items := make([]*info, 0, len(clusters))
	for _, c := range clusters {
		items = append(items, &info{members: c, mean: meanFlow(f, c), bbox: gridBBox(c, f.MBW)})
	}
	merged := true
	for merged {
		merged = false
		for i := 0; i < len(items) && !merged; i++ {
			for j := i + 1; j < len(items); j++ {
				a, b := items[i], items[j]
				if !mergeCompatible(a.mean, b.mean, a.bbox, b.bbox, cfg) {
					continue
				}
				a.members = append(a.members, b.members...)
				a.mean = meanFlow(f, a.members)
				a.bbox = a.bbox.Union(b.bbox)
				items = append(items[:j], items[j+1:]...)
				merged = true
				break
			}
		}
	}
	out := make([][]int, 0, len(items))
	for _, it := range items {
		out = append(out, it.members)
	}
	return out
}

// mergeCompatible tests direction similarity, magnitude compatibility and
// spatial proximity of two clusters.
func mergeCompatible(ma, mb geom.Vec2, ba, bb imgx.Rect, cfg ForegroundConfig) bool {
	na, nb := ma.Norm(), mb.Norm()
	if na < 1e-9 || nb < 1e-9 {
		return false
	}
	cos := ma.Dot(mb) / (na * nb)
	if cos < math.Cos(cfg.MergeAngle) {
		return false
	}
	ratio := na / nb
	if ratio < 0.4 || ratio > 2.5 {
		return false
	}
	return rectGap(ba, bb) <= cfg.MergeGapMBs
}

// rectGap returns the Chebyshev gap between two rectangles (0 if touching
// or overlapping).
func rectGap(a, b imgx.Rect) int {
	dx := 0
	if a.MaxX <= b.MinX {
		dx = b.MinX - a.MaxX
	} else if b.MaxX <= a.MinX {
		dx = a.MinX - b.MaxX
	}
	dy := 0
	if a.MaxY <= b.MinY {
		dy = b.MinY - a.MaxY
	} else if b.MaxY <= a.MinY {
		dy = a.MinY - b.MaxY
	}
	if dx > dy {
		return dx
	}
	return dy
}

func meanFlow(f *mvfield.Field, members []int) geom.Vec2 {
	var s geom.Vec2
	for _, i := range members {
		s = s.Add(f.Vectors[i].Flow)
	}
	return s.Scale(1 / float64(len(members)))
}

// gridBBox returns the bounding rectangle of member MBs in grid units.
func gridBBox(members []int, mbw int) imgx.Rect {
	r := imgx.Rect{MinX: 1 << 30, MinY: 1 << 30, MaxX: -(1 << 30), MaxY: -(1 << 30)}
	for _, i := range members {
		x, y := i%mbw, i/mbw
		if x < r.MinX {
			r.MinX = x
		}
		if y < r.MinY {
			r.MinY = y
		}
		if x+1 > r.MaxX {
			r.MaxX = x + 1
		}
		if y+1 > r.MaxY {
			r.MaxY = y + 1
		}
	}
	return r
}

// buildObject computes the convex contour and pixel bbox of a cluster.
func buildObject(f *mvfield.Field, members []int) ForegroundObject {
	pts := make([]geom.Vec2, 0, len(members))
	for _, i := range members {
		pts = append(pts, mbCenter(i, f.MBW))
	}
	hull := geom.ConvexHull(pts)
	bb := gridBBox(members, f.MBW)
	return ForegroundObject{
		Members: members,
		Hull:    hull,
		BBox: imgx.Rect{
			MinX: bb.MinX * codec.MBSize, MinY: bb.MinY * codec.MBSize,
			MaxX: bb.MaxX * codec.MBSize, MaxY: bb.MaxY * codec.MBSize,
		},
		MeanFlow: meanFlow(f, members),
	}
}

// rasterizeHull marks every macroblock whose center lies in the hull
// (dilated by dilate MBs) in mask.
func rasterizeHull(mask []bool, mbw, mbh int, hull []geom.Vec2, dilate int) {
	if len(hull) == 0 {
		return
	}
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range hull {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	d := float64(dilate)
	x0 := geom.ClampInt(int(minX-d), 0, mbw-1)
	x1 := geom.ClampInt(int(maxX+d+1), 0, mbw-1)
	y0 := geom.ClampInt(int(minY-d), 0, mbh-1)
	y1 := geom.ClampInt(int(maxY+d+1), 0, mbh-1)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			if mask[y*mbw+x] {
				continue
			}
			p := geom.Vec2{X: float64(x), Y: float64(y)}
			if geom.PointInHull(p, hull) || hullDistanceAtMost(p, hull, d) {
				mask[y*mbw+x] = true
			}
		}
	}
}

// hullDistanceAtMost reports whether p is within dist of the hull boundary.
func hullDistanceAtMost(p geom.Vec2, hull []geom.Vec2, dist float64) bool {
	if dist <= 0 {
		return false
	}
	n := len(hull)
	if n == 1 {
		return p.Dist(hull[0]) <= dist
	}
	for i := 0; i < n; i++ {
		a := hull[i]
		b := hull[(i+1)%n]
		if segmentDist(p, a, b) <= dist {
			return true
		}
	}
	return false
}

// segmentDist returns the distance from p to segment ab.
func segmentDist(p, a, b geom.Vec2) float64 {
	ab := b.Sub(a)
	denom := ab.Dot(ab)
	if denom == 0 {
		return p.Dist(a)
	}
	t := geom.Clamp(p.Sub(a).Dot(ab)/denom, 0, 1)
	return p.Dist(a.Add(ab.Scale(t)))
}
