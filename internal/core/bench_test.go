package core

import (
	"testing"

	"dive/internal/detect"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/world"
)

func BenchmarkExtractForeground(b *testing.B) {
	f := drivingSceneField(20, 12, 6, 5, 10, 8)
	cfg := DefaultForegroundConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fg := ExtractForeground(f, geom.Vec2{}, cfg); fg == nil {
			b.Fatal("extraction failed")
		}
	}
}

func BenchmarkTrackDetections(b *testing.B) {
	f := buildField(20, 12, 250, func(bx, by int, pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{X: 3, Y: 1}, true
	})
	dets := randomDetectionsForBench()
	cfg := DefaultTrackConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrackDetections(dets, f, 160, 96, 320, 192, cfg)
	}
}

// randomDetectionsForBench builds a fixed detection set.
func randomDetectionsForBench() []detect.Detection {
	var out []detect.Detection
	for i := 0; i < 6; i++ {
		out = append(out, detect.Detection{
			Class: world.ClassCar,
			Box:   imgx.NewRect(30+i*40, 70+i*5, 40, 28),
			Score: 0.9,
		})
	}
	return out
}
