// Package sim runs end-to-end edge-analytics experiments: a video analytics
// scheme (DiVE or a baseline) processes a rendered clip frame by frame,
// ships bits over a simulated uplink, receives detections from a simulated
// edge server, and reports per-frame detections plus response times — the
// two metrics of the paper's Section IV.
package sim

import (
	"fmt"

	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/world"
)

// Latencies models the fixed processing delays of the pipeline stages in
// seconds. They stand in for the paper's measured hardware times so that
// simulated response times are deterministic.
type Latencies struct {
	// Encode is the agent-side per-frame cost: motion analysis, foreground
	// extraction and entropy coding.
	Encode float64
	// Track is the agent-side cost of local MV tracking for one frame.
	Track float64
	// Decode is the server-side decode cost per frame.
	Decode float64
	// Infer is the DNN inference cost per frame.
	Infer float64
	// Downlink is the result-return latency.
	Downlink float64
}

// DefaultLatencies returns dashcam-class agent and GPU-server numbers.
func DefaultLatencies() Latencies {
	return Latencies{
		Encode:   0.014,
		Track:    0.002,
		Decode:   0.004,
		Infer:    0.022,
		Downlink: 0.006,
	}
}

// Env bundles everything schemes share in one experiment run.
type Env struct {
	Detector *detect.Detector
	Lat      Latencies
	// Seed decorrelates stochastic detector decisions across runs.
	Seed int64
}

// NewEnv builds a default environment.
func NewEnv(seed int64) *Env {
	return &Env{
		Detector: detect.New(detect.DefaultConfig()),
		Lat:      DefaultLatencies(),
		Seed:     seed,
	}
}

// Result is the outcome of one (scheme, clip, link) run.
type Result struct {
	Scheme string
	// Detections[i] is what the agent holds for frame i once its result is
	// final (server response or local tracking).
	Detections [][]detect.Detection
	// ResponseTimes[i] is capture-to-result latency for frame i, seconds.
	ResponseTimes []float64
	// BitsSent[i] is the uplink payload attributable to frame i.
	BitsSent []int
	// Uploaded[i] reports whether frame i reached the server.
	Uploaded []bool
	// Payloads[i] is frame i's encoded bitstream, retained only when the
	// scheme was asked to keep them (determinism checks, replay).
	Payloads [][]byte
}

// TotalBits sums the uplink payload of the run.
func (r *Result) TotalBits() int {
	s := 0
	for _, b := range r.BitsSent {
		s += b
	}
	return s
}

// MeanResponseTime averages the per-frame response times.
func (r *Result) MeanResponseTime() float64 {
	if len(r.ResponseTimes) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.ResponseTimes {
		s += v
	}
	return s / float64(len(r.ResponseTimes))
}

// Scheme is one video-analytics system under test.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Run processes the clip over the link and returns per-frame results.
	// Implementations must not retain the clip or link.
	Run(clip *world.Clip, link *netsim.Link, env *Env) (*Result, error)
}

// OracleDetections runs the simulated DNN on the raw frames — the paper's
// ground truth ("the object detection results of raw frames at the edge
// server").
func OracleDetections(clip *world.Clip, env *Env) [][]detect.Detection {
	out := make([][]detect.Detection, clip.NumFrames())
	for i, frame := range clip.Frames {
		out[i] = env.Detector.Detect(frame, frame, clip.GT[i], env.Seed^int64(i*2654435761))
	}
	return out
}

// ServerInference models the edge server on one delivered frame: decode +
// DNN inference + downlink, returning the detections and the time the
// result reaches the agent. Schemes in other packages share it so every
// system sees the identical server.
func ServerInference(env *Env, decoded *imgx.Plane, pristine *imgx.Plane, gt []world.GTBox, deliveredAt float64, frameSeed int64) ([]detect.Detection, float64) {
	dets := env.Detector.Detect(decoded, pristine, gt, frameSeed)
	return dets, deliveredAt + env.Lat.Decode + env.Lat.Infer + env.Lat.Downlink
}

// validateClip guards schemes against malformed inputs.
func validateClip(clip *world.Clip) error {
	if clip == nil || clip.NumFrames() == 0 {
		return fmt.Errorf("sim: empty clip")
	}
	if clip.FPS <= 0 {
		return fmt.Errorf("sim: clip FPS must be positive")
	}
	return nil
}
