package sim

import (
	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// DiVE runs the full DiVE agent (differential encoding + adaptive bitrate +
// offline tracking) against the simulated edge.
type DiVE struct {
	// ConfigFn customizes the agent configuration after defaults are
	// applied; nil keeps the defaults.
	ConfigFn func(*core.AgentConfig)
	// DisableMOT turns off motion-vector-based offline tracking (the
	// Figure 13 ablation): outage frames then keep the stale cached
	// detections instead of tracking them forward.
	DisableMOT bool
	// PipelineDepth >= 2 runs the agent loop as a bounded frame pipeline
	// (core.Agent.ProcessStream): frame N+1's analysis overlaps frame N's
	// entropy coding and delivery. <= 1 keeps the plain serial loop. The
	// simulated results — bitstreams, detections, response times — are
	// identical at every depth; only wall-clock throughput changes.
	PipelineDepth int
	// KeepPayloads retains every frame's bitstream in Result.Payloads.
	KeepPayloads bool
	// Session names the stream for per-session observability (SLO windows,
	// labeled metrics); empty uses Name(). Only meaningful with telemetry
	// enabled on the agent configuration.
	Session string
	// FrameHook, when set, is called after each frame's delivery completes
	// (in frame order). Live servers use it to pace the simulated run on
	// the wall clock so followers see the journal grow in real time.
	FrameHook func(i int)
}

// Name implements Scheme.
func (d *DiVE) Name() string {
	if d.DisableMOT {
		return "DiVE-noMOT"
	}
	return "DiVE"
}

// Run implements Scheme.
func (d *DiVE) Run(clip *world.Clip, link *netsim.Link, env *Env) (*Result, error) {
	if err := validateClip(clip); err != nil {
		return nil, err
	}
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = env.Seed
	session := d.Session
	if session == "" {
		session = d.Name()
	}
	cfg.Session = session
	if d.ConfigFn != nil {
		d.ConfigFn(&cfg)
	}
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return nil, err
	}
	// rec stitches the simulated-edge side of each frame's trace (send,
	// decode, detect, ack spans on the simulated clock) onto the context the
	// agent minted at capture. Nil keeps everything a no-op.
	rec := cfg.Obs
	dec, err := codec.NewDecoder(cfg.Codec)
	if err != nil {
		return nil, err
	}

	n := clip.NumFrames()
	res := &Result{
		Scheme:        d.Name(),
		Detections:    make([][]detect.Detection, n),
		ResponseTimes: make([]float64, n),
		BitsSent:      make([]int, n),
		Uploaded:      make([]bool, n),
	}
	if d.KeepPayloads {
		res.Payloads = make([][]byte, n)
	}
	if d.PipelineDepth >= 2 {
		if err := d.runPipelined(clip, link, env, agent, dec, rec, res, session); err != nil {
			return nil, err
		}
		return res, nil
	}

	for i, frame := range clip.Frames {
		capture := float64(i) / clip.FPS
		fr, err := agent.ProcessFrame(frame, capture)
		if err != nil {
			return nil, err
		}
		if d.KeepPayloads {
			res.Payloads[i] = fr.Encoded.Data
		}
		// Keep the cached belief current: advance it by this frame's raw
		// flow, so an outage can start tracking from fresh boxes even if
		// the most recent server results flickered empty.
		if !d.DisableMOT {
			agent.TrackLocally(fr.RawField)
		}
		ready := capture + env.Lat.Encode

		// Head-of-queue timer: if the queued traffic will not drain
		// within the timeout, declare an outage and track locally
		// (Section III-E). The dropped frame means the server decoder
		// will be stale, so the next delivered frame must be intra.
		if link.QueueDelay(ready) > agent.OutageTimeout() {
			agent.ForceNextIFrame()
			res.Detections[i] = agent.LastDetections()
			res.ResponseTimes[i] = env.Lat.Encode + env.Lat.Track
			agent.NoteOutage(link.QueueDelay(ready), len(res.Detections[i]))
			rec.ObserveSLO(session, obs.SLOSample{
				LatencySec: res.ResponseTimes[i], FGShare: fgShare(fr), Outage: true,
			})
			if d.FrameHook != nil {
				d.FrameHook(i)
			}
			continue
		}

		encoded := fr.Encoded
		start, serialized, delivered := link.SendTraced(fr.Trace, ready, encoded.NumBits)
		agent.OnTransmitComplete(start, serialized, encoded.NumBits)
		res.BitsSent[i] = encoded.NumBits
		res.Uploaded[i] = true

		decodeSpan := rec.StartStageSpan(fr.Trace, "decode", "edge", obs.StageEdgeDecode)
		decoded, err := dec.Decode(encoded.Data)
		decodeSpan.End()
		if err != nil {
			return nil, err
		}
		detectSpan := rec.StartStageSpan(fr.Trace, "detect", "edge", obs.StageEdgeDetect)
		dets, resultAt := ServerInference(env, decoded.Image, frame, clip.GT[i], delivered, env.Seed^int64(i*7919))
		detectSpan.End()
		// The downlink leg lives on the simulated clock: delivery of the
		// bitstream until the result lands back at the agent.
		rec.RecordSpan(fr.Trace, "ack", "edge", delivered, resultAt-delivered)
		if len(dets) > 0 || d.DisableMOT {
			agent.OnDetections(dets)
		}
		res.Detections[i] = dets
		res.ResponseTimes[i] = resultAt - capture
		rec.ObserveSLO(session, obs.SLOSample{
			LatencySec: res.ResponseTimes[i], FGShare: fgShare(fr),
		})
		if d.FrameHook != nil {
			d.FrameHook(i)
		}
	}
	return res, nil
}

// fgShare is the SLO accuracy proxy for one frame: the foreground fraction
// the encoder protected (0 when no foreground was ever extracted).
func fgShare(fr *core.FrameResult) float64 {
	if fr.Foreground == nil {
		return 0
	}
	return fr.Foreground.Fraction()
}

// runPipelined is the serial Run loop re-sliced onto ProcessStream's three
// stages. Placement preserves the serial data flow exactly:
//
//   - Stage B (analysis order): the outage decision and the uplink send.
//     Both read and advance serially-ordered state — the link queue, the
//     bandwidth estimator, the next-frame ForceNextIFrame flag — that the
//     NEXT frame's analysis or send must observe, so they run before frame
//     N+1's analysis, exactly as in the serial loop.
//   - Stage C (delivery order): local tracking, decode, detection and the
//     detection cache. The lastDets sequence (TrackLocally then
//     OnDetections, per frame) is confined to this single stage, so its
//     interleaving is exactly the serial loop's even though stage B of
//     later frames runs concurrently.
//
// Nothing the encoder consumes depends on stage C, which is why bitstreams
// are byte-identical at every depth; everything the Result records rides
// the simulated clock and serially-ordered state, which is why detections
// and response times are identical too.
func (d *DiVE) runPipelined(clip *world.Clip, link *netsim.Link, env *Env,
	agent *core.Agent, dec *codec.Decoder, rec *obs.Recorder, res *Result, session string) error {
	n := clip.NumFrames()
	type frameState struct {
		outage     bool
		queueDelay float64
		delivered  float64
	}
	states := make([]frameState, n)

	_, err := agent.ProcessStream(n, d.PipelineDepth,
		func(i int) (*imgx.Plane, float64) {
			return clip.Frames[i], float64(i) / clip.FPS
		},
		func(i int, fr *core.FrameResult) error {
			st := &states[i]
			ready := float64(i)/clip.FPS + env.Lat.Encode
			if link.QueueDelay(ready) > agent.OutageTimeout() {
				// Outage: skip the send and force the next frame intra
				// before that frame is analyzed. The tracked-box count is
				// only known at delivery, so the journal's outage fields
				// are amended there — by frame, not "last": later frames
				// have been journaled by then.
				st.outage = true
				st.queueDelay = link.QueueDelay(ready)
				agent.ForceNextIFrame()
				return nil
			}
			start, serialized, delivered := link.SendTraced(fr.Trace, ready, fr.Encoded.NumBits)
			agent.OnTransmitComplete(start, serialized, fr.Encoded.NumBits)
			st.delivered = delivered
			res.BitsSent[i] = fr.Encoded.NumBits
			res.Uploaded[i] = true
			return nil
		},
		func(i int, fr *core.FrameResult) error {
			if d.KeepPayloads {
				res.Payloads[i] = fr.Encoded.Data
			}
			if !d.DisableMOT {
				agent.TrackLocally(fr.RawField)
			}
			st := &states[i]
			capture := float64(i) / clip.FPS
			if st.outage {
				res.Detections[i] = agent.LastDetections()
				res.ResponseTimes[i] = env.Lat.Encode + env.Lat.Track
				boxes := len(res.Detections[i])
				rec.AmendJournalFrame(fr.Encoded.Index, func(j *obs.JournalRecord) {
					j.Outage = true
					j.QueueDelaySec = st.queueDelay
					j.TrackedBoxes = boxes
				})
				rec.ObserveSLO(session, obs.SLOSample{
					LatencySec: res.ResponseTimes[i], FGShare: fgShare(fr), Outage: true,
				})
				if d.FrameHook != nil {
					d.FrameHook(i)
				}
				return nil
			}
			decodeSpan := rec.StartStageSpan(fr.Trace, "decode", "edge", obs.StageEdgeDecode)
			decoded, err := dec.Decode(fr.Encoded.Data)
			decodeSpan.End()
			if err != nil {
				return err
			}
			detectSpan := rec.StartStageSpan(fr.Trace, "detect", "edge", obs.StageEdgeDetect)
			dets, resultAt := ServerInference(env, decoded.Image, clip.Frames[i], clip.GT[i], st.delivered, env.Seed^int64(i*7919))
			detectSpan.End()
			rec.RecordSpan(fr.Trace, "ack", "edge", st.delivered, resultAt-st.delivered)
			if len(dets) > 0 || d.DisableMOT {
				agent.OnDetections(dets)
			}
			res.Detections[i] = dets
			res.ResponseTimes[i] = resultAt - capture
			rec.ObserveSLO(session, obs.SLOSample{
				LatencySec: res.ResponseTimes[i], FGShare: fgShare(fr),
			})
			if d.FrameHook != nil {
				d.FrameHook(i)
			}
			return nil
		})
	return err
}
