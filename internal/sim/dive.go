package sim

import (
	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// DiVE runs the full DiVE agent (differential encoding + adaptive bitrate +
// offline tracking) against the simulated edge.
type DiVE struct {
	// ConfigFn customizes the agent configuration after defaults are
	// applied; nil keeps the defaults.
	ConfigFn func(*core.AgentConfig)
	// DisableMOT turns off motion-vector-based offline tracking (the
	// Figure 13 ablation): outage frames then keep the stale cached
	// detections instead of tracking them forward.
	DisableMOT bool
}

// Name implements Scheme.
func (d *DiVE) Name() string {
	if d.DisableMOT {
		return "DiVE-noMOT"
	}
	return "DiVE"
}

// Run implements Scheme.
func (d *DiVE) Run(clip *world.Clip, link *netsim.Link, env *Env) (*Result, error) {
	if err := validateClip(clip); err != nil {
		return nil, err
	}
	cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
	cfg.Seed = env.Seed
	if d.ConfigFn != nil {
		d.ConfigFn(&cfg)
	}
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return nil, err
	}
	// rec stitches the simulated-edge side of each frame's trace (send,
	// decode, detect, ack spans on the simulated clock) onto the context the
	// agent minted at capture. Nil keeps everything a no-op.
	rec := cfg.Obs
	dec, err := codec.NewDecoder(cfg.Codec)
	if err != nil {
		return nil, err
	}

	n := clip.NumFrames()
	res := &Result{
		Scheme:        d.Name(),
		Detections:    make([][]detect.Detection, n),
		ResponseTimes: make([]float64, n),
		BitsSent:      make([]int, n),
		Uploaded:      make([]bool, n),
	}

	for i, frame := range clip.Frames {
		capture := float64(i) / clip.FPS
		fr, err := agent.ProcessFrame(frame, capture)
		if err != nil {
			return nil, err
		}
		// Keep the cached belief current: advance it by this frame's raw
		// flow, so an outage can start tracking from fresh boxes even if
		// the most recent server results flickered empty.
		if !d.DisableMOT {
			agent.TrackLocally(fr.RawField)
		}
		ready := capture + env.Lat.Encode

		// Head-of-queue timer: if the queued traffic will not drain
		// within the timeout, declare an outage and track locally
		// (Section III-E). The dropped frame means the server decoder
		// will be stale, so the next delivered frame must be intra.
		if link.QueueDelay(ready) > agent.OutageTimeout() {
			agent.ForceNextIFrame()
			res.Detections[i] = agent.LastDetections()
			res.ResponseTimes[i] = env.Lat.Encode + env.Lat.Track
			agent.NoteOutage(link.QueueDelay(ready), len(res.Detections[i]))
			continue
		}

		encoded := fr.Encoded
		start, serialized, delivered := link.SendTraced(fr.Trace, ready, encoded.NumBits)
		agent.OnTransmitComplete(start, serialized, encoded.NumBits)
		res.BitsSent[i] = encoded.NumBits
		res.Uploaded[i] = true

		decodeSpan := rec.StartStageSpan(fr.Trace, "decode", "edge", obs.StageEdgeDecode)
		decoded, err := dec.Decode(encoded.Data)
		decodeSpan.End()
		if err != nil {
			return nil, err
		}
		detectSpan := rec.StartStageSpan(fr.Trace, "detect", "edge", obs.StageEdgeDetect)
		dets, resultAt := ServerInference(env, decoded.Image, frame, clip.GT[i], delivered, env.Seed^int64(i*7919))
		detectSpan.End()
		// The downlink leg lives on the simulated clock: delivery of the
		// bitstream until the result lands back at the agent.
		rec.RecordSpan(fr.Trace, "ack", "edge", delivered, resultAt-delivered)
		if len(dets) > 0 || d.DisableMOT {
			agent.OnDetections(dets)
		}
		res.Detections[i] = dets
		res.ResponseTimes[i] = resultAt - capture
	}
	return res, nil
}
