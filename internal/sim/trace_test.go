package sim

import (
	"testing"

	"dive/internal/core"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// TestEndToEndTraceStitching is the acceptance test for the distributed
// tracing layer: running DiVE over the in-process sim link with telemetry on
// must yield, for each uploaded frame, one trace ID under which the
// agent-side spans (frame, motion, encode, send) and the edge-side spans
// (decode, detect, ack) all appear, with stage spans parented on the frame's
// root span.
func TestEndToEndTraceStitching(t *testing.T) {
	clip := testClip(t, world.NuScenesLike(), 2, 21)
	env := NewEnv(6)
	rec := obs.NewRecorder(clip.NumFrames())
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(3)), 0.012)
	link.Obs = rec
	scheme := &DiVE{ConfigFn: func(cfg *core.AgentConfig) { cfg.Obs = rec }}
	res, err := scheme.Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}

	spans := rec.Spans().Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Group spans by trace ID and index frame→trace.
	byTrace := map[uint64][]obs.SpanRecord{}
	frameTrace := map[int]uint64{}
	for _, s := range spans {
		if s.TraceID == 0 {
			t.Fatalf("span %+v recorded without a trace ID", s)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		if prev, ok := frameTrace[s.Frame]; ok && prev != s.TraceID {
			t.Fatalf("frame %d appears under two trace IDs (%d and %d)", s.Frame, prev, s.TraceID)
		}
		frameTrace[s.Frame] = s.TraceID
	}

	uploaded := 0
	for i, ok := range res.Uploaded {
		if !ok {
			continue
		}
		uploaded++
		tid, found := frameTrace[i]
		if !found {
			t.Fatalf("uploaded frame %d has no trace", i)
		}
		names := map[string]obs.SpanRecord{}
		var root obs.SpanRecord
		for _, s := range byTrace[tid] {
			names[s.Site+"/"+s.Name] = s
			if s.Name == "frame" {
				root = s
			}
		}
		// One end-to-end trace: agent pipeline stages, the uplink
		// serialization, and the simulated edge all under the same ID.
		for _, want := range []string{
			"agent/frame", "agent/motion", "agent/encode", "agent/send",
			"edge/decode", "edge/detect", "edge/ack",
		} {
			if _, ok := names[want]; !ok {
				t.Errorf("frame %d trace %d missing span %s (have %v)", i, tid, want, spanNames(byTrace[tid]))
			}
		}
		// Causality: wall-clock agent stages are children of the root frame
		// span; the root span itself has no parent.
		if root.ParentID != 0 {
			t.Errorf("frame %d root span has parent %d", i, root.ParentID)
		}
		for _, stage := range []string{
			"agent/motion", "agent/encode",
			"agent/send", "edge/decode", "edge/detect", "edge/ack",
		} {
			if s := names[stage]; s.ParentID != root.SpanID {
				t.Errorf("frame %d span %s parent %d, want root %d", i, stage, s.ParentID, root.SpanID)
			}
		}
		// The simulated legs carry simulated-clock durations that are
		// non-negative and ordered: send starts no earlier than capture.
		send := names["agent/send"]
		if send.DurSec < 0 {
			t.Errorf("frame %d send span negative duration %v", i, send.DurSec)
		}
		ack := names["edge/ack"]
		if ack.DurSec <= 0 {
			t.Errorf("frame %d ack span duration %v", i, ack.DurSec)
		}
	}
	if uploaded == 0 {
		t.Fatal("no frames uploaded on a healthy link")
	}

	// Moving frames also run rotation + foreground under the same trace.
	sawRotation := false
	for _, s := range spans {
		if s.Site == "agent" && s.Name == "rotation" {
			sawRotation = true
			if frameTrace[s.Frame] != s.TraceID {
				t.Errorf("rotation span of frame %d off-trace", s.Frame)
			}
		}
	}
	if !sawRotation {
		t.Error("no rotation spans recorded over a moving clip")
	}

	// The journal recorded one entry per frame, each tied to its trace.
	recs := rec.Journal().Snapshot()
	if len(recs) != clip.NumFrames() {
		t.Fatalf("journal has %d records, want %d", len(recs), clip.NumFrames())
	}
	for _, j := range recs {
		if j.TraceID == 0 {
			t.Errorf("journal frame %d has no trace ID", j.Frame)
		}
		if tid, ok := frameTrace[j.Frame]; ok && tid != j.TraceID {
			t.Errorf("journal frame %d trace %d != span trace %d", j.Frame, j.TraceID, tid)
		}
	}
	// Uploaded frames got their ack amendment with a realized bandwidth.
	for i, ok := range res.Uploaded {
		if !ok {
			continue
		}
		j := recs[i]
		if j.AckBits == 0 || j.RealizedBWBps <= 0 {
			t.Errorf("uploaded frame %d journal missing ack feedback: %+v", i, j)
		}
	}
}

func spanNames(spans []obs.SpanRecord) []string {
	out := make([]string, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.Site+"/"+s.Name)
	}
	return out
}
