package sim

import (
	"bytes"
	"fmt"
	"testing"

	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// pipelineLink builds the link used by the pipeline determinism tests: a
// constant-rate uplink with a periodic outage, so the comparison covers the
// outage path (forced I-frames, local tracking) as well as steady state.
func pipelineLink() *netsim.Link {
	return netsim.NewLink(&netsim.OutageTrace{
		Inner: netsim.ConstantTrace(netsim.Mbps(2)),
		Start: 0.6, Interval: 1.6, Duration: 0.5,
	}, 0.012)
}

// TestPipelinedRunMatchesSerial is the output contract of the frame
// pipeline at the system level: for every ME method, dataset profile and
// pipeline depth 1–3, the pipelined DiVE run must reproduce the serial
// run exactly — byte-identical bitstreams and identical detections,
// response times and upload decisions.
func TestPipelinedRunMatchesSerial(t *testing.T) {
	profiles := []world.Profile{world.NuScenesLike(), world.KITTILike()}
	for _, profile := range profiles {
		clip := testClip(t, profile, 1.2, 19)
		for _, method := range codec.AllMEMethods() {
			cfgFn := func(cfg *core.AgentConfig) { cfg.Codec.Method = method }
			run := func(depth int) *Result {
				env := NewEnv(9)
				scheme := &DiVE{ConfigFn: cfgFn, PipelineDepth: depth, KeepPayloads: true}
				res, err := scheme.Run(clip, pipelineLink(), env)
				if err != nil {
					t.Fatalf("%s/%s depth %d: %v", profile.Name, method, depth, err)
				}
				return res
			}
			want := run(0) // serial loop
			for _, depth := range []int{1, 2, 3} {
				got := run(depth)
				for i := 0; i < clip.NumFrames(); i++ {
					tag := fmt.Sprintf("%s/%s depth %d frame %d", profile.Name, method, depth, i)
					if !bytes.Equal(want.Payloads[i], got.Payloads[i]) {
						t.Fatalf("%s: bitstream differs (%d vs %d bytes)",
							tag, len(got.Payloads[i]), len(want.Payloads[i]))
					}
					if want.Uploaded[i] != got.Uploaded[i] || want.BitsSent[i] != got.BitsSent[i] {
						t.Fatalf("%s: upload decision differs (uploaded %v/%v, bits %d/%d)",
							tag, got.Uploaded[i], want.Uploaded[i], got.BitsSent[i], want.BitsSent[i])
					}
					if want.ResponseTimes[i] != got.ResponseTimes[i] {
						t.Fatalf("%s: response time %v != %v", tag, got.ResponseTimes[i], want.ResponseTimes[i])
					}
					if len(want.Detections[i]) != len(got.Detections[i]) {
						t.Fatalf("%s: %d detections, want %d", tag, len(got.Detections[i]), len(want.Detections[i]))
					}
					for k := range want.Detections[i] {
						if want.Detections[i][k] != got.Detections[i][k] {
							t.Fatalf("%s: detection %d differs", tag, k)
						}
					}
				}
			}
		}
	}
}

// TestPipelinedTraceParentage is the pipeline-era tracing contract: with
// depth >= 2, stage B/C spans are recorded on different goroutines than the
// stage-A goroutine that minted the frame's trace, yet every stage span —
// including the deferred "emit" span and the edge-side spans — must still
// parent onto the frame's root span under a single trace ID.
func TestPipelinedTraceParentage(t *testing.T) {
	clip := testClip(t, world.NuScenesLike(), 2, 21)
	env := NewEnv(6)
	rec := obs.NewRecorder(clip.NumFrames())
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(3)), 0.012)
	link.Obs = rec
	scheme := &DiVE{
		ConfigFn:      func(cfg *core.AgentConfig) { cfg.Obs = rec },
		PipelineDepth: 3,
	}
	res, err := scheme.Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}

	byTrace := map[uint64][]obs.SpanRecord{}
	frameTrace := map[int]uint64{}
	for _, s := range rec.Spans().Snapshot() {
		if s.TraceID == 0 {
			t.Fatalf("span %+v recorded without a trace ID", s)
		}
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		if prev, ok := frameTrace[s.Frame]; ok && prev != s.TraceID {
			t.Fatalf("frame %d appears under two trace IDs (%d and %d)", s.Frame, prev, s.TraceID)
		}
		frameTrace[s.Frame] = s.TraceID
	}

	uploaded := 0
	for i, ok := range res.Uploaded {
		if !ok {
			continue
		}
		uploaded++
		tid, found := frameTrace[i]
		if !found {
			t.Fatalf("uploaded frame %d has no trace", i)
		}
		names := map[string]obs.SpanRecord{}
		var root obs.SpanRecord
		for _, s := range byTrace[tid] {
			names[s.Site+"/"+s.Name] = s
			if s.Name == "frame" {
				root = s
			}
		}
		if root.SpanID == 0 {
			t.Fatalf("frame %d has no root frame span", i)
		}
		if root.ParentID != 0 {
			t.Errorf("frame %d root span has parent %d", i, root.ParentID)
		}
		// Stage A mints the trace; stage B records motion/encode/send;
		// stage C records emit/decode/detect/ack — all must stay children
		// of the stage-A root span.
		for _, stage := range []string{
			"agent/motion", "agent/encode", "agent/emit", "agent/send",
			"edge/decode", "edge/detect", "edge/ack",
		} {
			s, ok := names[stage]
			if !ok {
				t.Errorf("frame %d trace %d missing span %s (have %v)", i, tid, stage, spanNames(byTrace[tid]))
				continue
			}
			if s.ParentID != root.SpanID {
				t.Errorf("frame %d span %s parent %d, want root %d", i, stage, s.ParentID, root.SpanID)
			}
		}
	}
	if uploaded == 0 {
		t.Fatal("no frames uploaded on a healthy link")
	}

	// The journal still carries one record per frame, tied to its trace,
	// with ack amendments landing on the right (not merely the latest)
	// frame despite the pipelined recording order.
	recs := rec.Journal().Snapshot()
	if len(recs) != clip.NumFrames() {
		t.Fatalf("journal has %d records, want %d", len(recs), clip.NumFrames())
	}
	for i, ok := range res.Uploaded {
		if !ok {
			continue
		}
		j := recs[i]
		if j.Frame != i {
			t.Fatalf("journal record %d is for frame %d", i, j.Frame)
		}
		if tid := frameTrace[i]; j.TraceID != tid {
			t.Errorf("journal frame %d trace %d != span trace %d", i, j.TraceID, tid)
		}
		if j.AckBits == 0 || j.RealizedBWBps <= 0 {
			t.Errorf("uploaded frame %d journal missing ack feedback: %+v", i, j)
		}
	}
}
