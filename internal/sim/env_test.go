package sim

import (
	"testing"

	"dive/internal/world"
)

func TestOracleDetectionsNearPerfect(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 1
	clip := world.GenerateClip(p, 42)
	env := NewEnv(7)
	oracle := OracleDetections(clip, env)
	if len(oracle) != clip.NumFrames() {
		t.Fatal("length mismatch")
	}
	// The oracle should detect the overwhelming majority of sufficiently
	// large annotated objects — it sees pristine pixels.
	gtCount, detCount := 0, 0
	for i := range oracle {
		for _, gt := range clip.GT[i] {
			if gt.Box.Area() >= env.Detector.Config().MinArea && gt.Visible > 0.6 {
				gtCount++
			}
		}
		detCount += len(oracle[i])
	}
	if gtCount == 0 {
		t.Skip("clip has no large objects")
	}
	if detCount < gtCount*8/10 {
		t.Errorf("oracle detected %d boxes for %d large GT objects", detCount, gtCount)
	}
}

func TestServerInferenceTiming(t *testing.T) {
	p := world.NuScenesLike()
	p.ClipDuration = 0.5
	clip := world.GenerateClip(p, 43)
	env := NewEnv(8)
	_, at := ServerInference(env, clip.Frames[0], clip.Frames[0], clip.GT[0], 1.0, 1)
	want := 1.0 + env.Lat.Decode + env.Lat.Infer + env.Lat.Downlink
	if at != want {
		t.Errorf("result time %v, want %v", at, want)
	}
}

func TestDefaultLatenciesReasonable(t *testing.T) {
	l := DefaultLatencies()
	if l.Encode <= 0 || l.Track <= 0 || l.Decode <= 0 || l.Infer <= 0 || l.Downlink <= 0 {
		t.Error("latencies must be positive")
	}
	if l.Track >= l.Encode {
		t.Error("local tracking should be cheaper than encoding")
	}
	total := l.Encode + l.Decode + l.Infer + l.Downlink
	if total > 0.1 {
		t.Errorf("fixed pipeline latency %v too high", total)
	}
}
