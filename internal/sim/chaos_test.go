package sim

import (
	"testing"

	"dive/internal/chaos"
	"dive/internal/core"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// The chaos scenario suite runs the full DiVE scheme over the scripted
// adverse-link traces from internal/chaos: seeded outage bursts, a hard
// bandwidth cliff, and estimator-poisoning flutter. Each run must be
// deterministic, keep every frame covered by a detection set (MOT carries
// the outage windows), and resume uploads within the scenario's grading
// bound after the last injected fault lifts.

const chaosClipDur = 3.0

func runScenario(t *testing.T, sc chaos.Scenario, rec *obs.Recorder) (*Result, *world.Clip) {
	t.Helper()
	clip := testClip(t, world.NuScenesLike(), chaosClipDur, 17)
	link := netsim.NewLink(sc.Trace, 0.012)
	link.Obs = rec
	scheme := &DiVE{ConfigFn: func(cfg *core.AgentConfig) { cfg.Obs = rec }}
	res, err := scheme.Run(clip, link, NewEnv(7))
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return res, clip
}

func TestChaosScenariosSurviveAndRecover(t *testing.T) {
	for _, sc := range chaos.StandardScenarios(99, chaosClipDur) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rec := obs.NewRecorder(256)
			res, clip := runScenario(t, sc, rec)

			// MOT must cover the outage windows: whenever the server last
			// returned a non-empty detection set, a dropped frame must still
			// carry (locally tracked) boxes. Frames where the scene is
			// genuinely empty may return nil from the detector.
			haveBoxes := false
			for i, d := range res.Detections {
				if res.Uploaded[i] {
					haveBoxes = len(d) > 0
					continue
				}
				if haveBoxes && d == nil {
					t.Errorf("outage frame %d lost its tracked boxes", i)
				}
			}

			// The scripted faults must actually bite — otherwise the
			// recovery assertion below is vacuous. Hard-outage scenarios
			// drop frames; the poison scenario bites by depressing the
			// bandwidth estimate inside its flutter windows instead.
			outages := 0
			for _, ok := range res.Uploaded {
				if !ok {
					outages++
				}
			}
			if outages == 0 {
				preFault, inFault := 0.0, -1.0
				for _, j := range rec.Journal().Snapshot() {
					if j.EstBWBps <= 0 {
						continue
					}
					capture := float64(j.Frame) / clip.FPS
					in := false
					for _, w := range sc.FaultWindows {
						if capture >= w[0] && capture < w[1] {
							in = true
							break
						}
					}
					if in {
						if inFault < 0 || j.EstBWBps < inFault {
							inFault = j.EstBWBps
						}
					} else if capture < sc.FaultWindows[0][0] && j.EstBWBps > preFault {
						preFault = j.EstBWBps
					}
				}
				if inFault < 0 || preFault <= 0 || inFault > preFault*0.7 {
					t.Fatalf("%s: no frame dropped and estimate never depressed (pre %.0f, in-fault min %.0f); scenario too gentle",
						sc.Name, preFault, inFault)
				}
			}

			// Recovery bound: after the last fault window ends, some frame
			// must upload within RecoverWithinSec of simulated time.
			lastEnd := 0.0
			for _, w := range sc.FaultWindows {
				if w[1] > lastEnd {
					lastEnd = w[1]
				}
			}
			if lastEnd >= chaosClipDur {
				t.Fatalf("%s: last fault window %v extends past the clip", sc.Name, lastEnd)
			}
			recovered := false
			for i, ok := range res.Uploaded {
				capture := float64(i) / clip.FPS
				if ok && capture >= lastEnd && capture <= lastEnd+sc.RecoverWithinSec {
					recovered = true
					break
				}
			}
			if !recovered {
				t.Errorf("%s: no upload within %.1fs after the last fault window (ends %.2fs)",
					sc.Name, sc.RecoverWithinSec, lastEnd)
			}

			// Dropped frames must be journaled as outages so divedoctor can
			// grade the run's failure handling.
			if outages > 0 {
				journaled := 0
				for _, j := range rec.Journal().Snapshot() {
					if j.Outage {
						journaled++
					}
				}
				if journaled == 0 {
					t.Errorf("%s: %d dropped frames but none journaled as outages", sc.Name, outages)
				}
			}
		})
	}
}

// TestChaosScenariosDeterministic pins the fault-injection contract: the
// same seed must script the same faults and yield bit-identical runs.
func TestChaosScenariosDeterministic(t *testing.T) {
	for _, sc := range chaos.StandardScenarios(7, chaosClipDur) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			a, _ := runScenario(t, sc, nil)
			b, _ := runScenario(t, sc, nil)
			if len(a.BitsSent) != len(b.BitsSent) {
				t.Fatalf("%s: run lengths differ", sc.Name)
			}
			for i := range a.BitsSent {
				if a.BitsSent[i] != b.BitsSent[i] || a.Uploaded[i] != b.Uploaded[i] {
					t.Fatalf("%s: frame %d diverged between identical runs (bits %d vs %d, uploaded %v vs %v)",
						sc.Name, i, a.BitsSent[i], b.BitsSent[i], a.Uploaded[i], b.Uploaded[i])
				}
				if len(a.Detections[i]) != len(b.Detections[i]) {
					t.Fatalf("%s: frame %d detection counts diverged", sc.Name, i)
				}
			}
		})
	}
}
