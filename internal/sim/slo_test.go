package sim

import (
	"testing"

	"dive/internal/chaos"
	"dive/internal/obs"
)

// TestChaosRunFeedsSLOTracker proves the sim is wired into per-session SLO
// accounting: a chaos outage-burst run must leave a session window whose
// outage objective is burning (the fault windows drop frames onto local
// MOT), and a pipelined run must feed the same window shape.
func TestChaosRunFeedsSLOTracker(t *testing.T) {
	var sc chaos.Scenario
	for _, s := range chaos.StandardScenarios(99, chaosClipDur) {
		if s.Name == "outage-burst" {
			sc = s
		}
	}
	if sc.Name == "" {
		t.Fatal("outage-burst scenario missing from the standard suite")
	}

	rec := obs.NewRecorder(256)
	_, clip := runScenario(t, sc, rec)

	st, ok := rec.SLO().SessionStatus("")
	if !ok {
		t.Fatal("run tracked no SLO session")
	}
	if st.Frames != clip.NumFrames() {
		t.Fatalf("SLO window holds %d samples, want one per frame (%d)", st.Frames, clip.NumFrames())
	}
	if st.OutageFrac == 0 || st.OutageBurn == 0 {
		t.Fatalf("outage-burst run shows no outage burn: %+v", st)
	}
	if st.BurnRate < st.OutageBurn {
		t.Fatalf("burn rate %g below outage burn %g", st.BurnRate, st.OutageBurn)
	}
	if st.FGShareMean <= 0 {
		t.Fatalf("no foreground-share samples fed: %+v", st)
	}
}
