package sim

import (
	"math"
	"testing"

	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/world"
)

// testClip renders a short clip once for all tests in this package.
var testClipCache = map[string]*world.Clip{}

func testClip(t *testing.T, profile world.Profile, dur float64, seed int64) *world.Clip {
	t.Helper()
	key := profile.Name + string(rune(int(dur*10))) + string(rune(seed))
	if c, ok := testClipCache[key]; ok {
		return c
	}
	profile.ClipDuration = dur
	c := world.GenerateClip(profile, seed)
	testClipCache[key] = c
	return c
}

func TestDiVERunBasics(t *testing.T) {
	clip := testClip(t, world.NuScenesLike(), 2, 11)
	env := NewEnv(3)
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
	scheme := &DiVE{}
	res, err := scheme.Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "DiVE" {
		t.Errorf("scheme name %q", res.Scheme)
	}
	if len(res.Detections) != clip.NumFrames() || len(res.ResponseTimes) != clip.NumFrames() {
		t.Fatal("result length mismatch")
	}
	up := 0
	for i, ok := range res.Uploaded {
		if ok {
			up++
			if res.BitsSent[i] == 0 {
				t.Errorf("frame %d uploaded with zero bits", i)
			}
		}
		if res.ResponseTimes[i] <= 0 || math.IsInf(res.ResponseTimes[i], 0) {
			t.Errorf("frame %d response time %v", i, res.ResponseTimes[i])
		}
	}
	if up < clip.NumFrames()*8/10 {
		t.Errorf("only %d/%d frames uploaded on a healthy link", up, clip.NumFrames())
	}
	// Bitrate must track the link: total bits over the clip duration
	// cannot exceed ~1.5x the link rate for long.
	dur := float64(clip.NumFrames()) / clip.FPS
	if rate := float64(res.TotalBits()) / dur; rate > netsim.Mbps(2)*1.5 {
		t.Errorf("sent at %v bps over a 2 Mbps link", rate)
	}
	// Accuracy sanity: mAP against the oracle should be well above zero.
	oracle := OracleDetections(clip, env)
	if m := metrics.MAP(res.Detections, oracle, metrics.DefaultIoU); m < 0.3 {
		t.Errorf("DiVE mAP = %v on an easy link", m)
	}
	if res.MeanResponseTime() > 0.5 {
		t.Errorf("mean response time %v too high", res.MeanResponseTime())
	}
}

func TestDiVEOutageTracking(t *testing.T) {
	clip := testClip(t, world.NuScenesLike(), 3, 12)
	env := NewEnv(4)
	// 1 s outages every 2.5 s.
	mk := func() *netsim.Link {
		return netsim.NewLink(&netsim.OutageTrace{
			Inner: netsim.ConstantTrace(netsim.Mbps(2)),
			Start: 0.8, Interval: 2.5, Duration: 1.0,
		}, 0.012)
	}
	withMOT, err := (&DiVE{}).Run(clip, mk(), env)
	if err != nil {
		t.Fatal(err)
	}
	withoutMOT, err := (&DiVE{DisableMOT: true}).Run(clip, mk(), env)
	if err != nil {
		t.Fatal(err)
	}
	// Outages must actually cause local-only frames.
	local := 0
	for _, ok := range withMOT.Uploaded {
		if !ok {
			local++
		}
	}
	if local == 0 {
		t.Fatal("no frames fell back to local tracking despite outages")
	}
	oracle := OracleDetections(clip, env)
	mWith := metrics.MAP(withMOT.Detections, oracle, metrics.DefaultIoU)
	mWithout := metrics.MAP(withoutMOT.Detections, oracle, metrics.DefaultIoU)
	if mWith < mWithout {
		t.Errorf("MOT should help under outages: %v vs %v", mWith, mWithout)
	}
}

func TestDiVEDeterminism(t *testing.T) {
	clip := testClip(t, world.RobotCarLike(), 1.5, 13)
	env := NewEnv(5)
	run := func() *Result {
		link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(3)), 0.012)
		r, err := (&DiVE{}).Run(clip, link, env)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	for i := range a.ResponseTimes {
		if a.ResponseTimes[i] != b.ResponseTimes[i] || a.BitsSent[i] != b.BitsSent[i] {
			t.Fatalf("nondeterministic at frame %d", i)
		}
		if len(a.Detections[i]) != len(b.Detections[i]) {
			t.Fatalf("nondeterministic detections at frame %d", i)
		}
	}
}

func TestValidateClip(t *testing.T) {
	if err := validateClip(nil); err == nil {
		t.Error("nil clip accepted")
	}
	if err := validateClip(&world.Clip{}); err == nil {
		t.Error("empty clip accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{BitsSent: []int{10, 20}, ResponseTimes: []float64{0.1, 0.3}}
	if r.TotalBits() != 30 {
		t.Error("TotalBits wrong")
	}
	if math.Abs(r.MeanResponseTime()-0.2) > 1e-12 {
		t.Error("MeanResponseTime wrong")
	}
	empty := &Result{}
	if empty.MeanResponseTime() != 0 {
		t.Error("empty mean should be 0")
	}
}
