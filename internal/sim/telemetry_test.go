package sim

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"dive/internal/core"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// TestTelemetryFrameLifecycle runs the full DiVE scheme over a short clip
// with a recorder attached and checks the frame-lifecycle export: one JSONL
// record per frame, monotonically increasing frame numbers, non-negative
// stage durations, and a metrics snapshot consistent with the run.
func TestTelemetryFrameLifecycle(t *testing.T) {
	clip := testClip(t, world.NuScenesLike(), 2, 21)
	n := clip.NumFrames()
	rec := obs.NewRecorder(n)
	scheme := &DiVE{ConfigFn: func(c *core.AgentConfig) { c.Obs = rec }}
	env := NewEnv(7)
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
	if _, err := scheme.Run(clip, link, env); err != nil {
		t.Fatal(err)
	}

	if got := rec.Frames().Total(); got != n {
		t.Fatalf("ring total = %d, want one record per frame (%d)", got, n)
	}
	if got := rec.Counter(obs.MetricFrames).Value(); got != int64(n) {
		t.Errorf("frames counter = %d, want %d", got, n)
	}

	var buf bytes.Buffer
	if err := rec.Frames().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines, prev := 0, -1
	for sc.Scan() {
		var fr obs.FrameRecord
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if fr.Frame <= prev {
			t.Errorf("frame numbers not monotonic: %d after %d", fr.Frame, prev)
		}
		prev = fr.Frame
		for _, d := range []struct {
			name string
			ms   float64
		}{
			{"motion", fr.MotionMs}, {"rotation", fr.RotationMs},
			{"foreground", fr.ForegroundMs}, {"encode", fr.EncodeMs},
			{"total", fr.TotalMs},
		} {
			if d.ms < 0 {
				t.Errorf("frame %d: %s duration %v ms < 0", fr.Frame, d.name, d.ms)
			}
		}
		if fr.TotalMs < fr.EncodeMs {
			t.Errorf("frame %d: total %.3fms < encode %.3fms", fr.Frame, fr.TotalMs, fr.EncodeMs)
		}
		if fr.Type != "I" && fr.Type != "P" {
			t.Errorf("frame %d: type %q", fr.Frame, fr.Type)
		}
		if fr.Bits <= 0 {
			t.Errorf("frame %d: bits = %d", fr.Frame, fr.Bits)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != n {
		t.Errorf("JSONL lines = %d, want %d", lines, n)
	}

	// The first frame must be intra, and the intra counter must agree with
	// the per-frame records.
	snap := rec.Frames().Snapshot()
	if snap[0].Type != "I" {
		t.Errorf("first frame type %q, want I", snap[0].Type)
	}
	intra := 0
	for _, fr := range snap {
		if fr.Type == "I" {
			intra++
		}
	}
	if got := rec.Counter(obs.MetricIFrames).Value(); got != int64(intra) {
		t.Errorf("iframe counter = %d, records show %d", got, intra)
	}

	// The stage histograms populated once per frame must have n samples.
	s := rec.Snapshot()
	for _, name := range []string{obs.StageFrame, obs.StageEncode} {
		hs, ok := s.Histograms[name]
		if !ok {
			t.Errorf("snapshot missing histogram %s", name)
			continue
		}
		if hs.Count != int64(n) {
			t.Errorf("%s count = %d, want %d", name, hs.Count, n)
		}
	}
}

// TestTelemetryDisabledRunsIdentically verifies the no-recorder path still
// produces a working run (no telemetry side effects required anywhere).
func TestTelemetryDisabledRunsIdentically(t *testing.T) {
	clip := testClip(t, world.NuScenesLike(), 2, 21)
	env := NewEnv(7)
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
	res, err := (&DiVE{}).Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBits() <= 0 {
		t.Error("no bits sent")
	}
}
