package baselines

import (
	"testing"

	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

func shortClip(t *testing.T, seed int64) *world.Clip {
	t.Helper()
	p := world.NuScenesLike()
	p.ClipDuration = 2
	return world.GenerateClip(p, seed)
}

func checkResult(t *testing.T, res *sim.Result, n int) {
	t.Helper()
	if len(res.Detections) != n || len(res.ResponseTimes) != n || len(res.BitsSent) != n {
		t.Fatalf("%s: result lengths wrong", res.Scheme)
	}
	for i := 0; i < n; i++ {
		if res.ResponseTimes[i] <= 0 {
			t.Fatalf("%s: frame %d response time %v", res.Scheme, i, res.ResponseTimes[i])
		}
	}
}

func TestO3RunShape(t *testing.T) {
	clip := shortClip(t, 21)
	env := sim.NewEnv(2)
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
	res, err := (&O3{KeyInterval: 5}).Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, clip.NumFrames())
	// Exactly every 5th frame uploads.
	for i, up := range res.Uploaded {
		want := i%5 == 0
		if up != want {
			t.Errorf("frame %d uploaded=%v, want %v", i, up, want)
		}
		// Tracked frames are fast; key frames pay the round trip.
		if !want && res.ResponseTimes[i] > 0.01 {
			t.Errorf("tracked frame %d response %v", i, res.ResponseTimes[i])
		}
		if want && res.ResponseTimes[i] < 0.02 {
			t.Errorf("key frame %d response %v suspiciously low", i, res.ResponseTimes[i])
		}
	}
	oracle := sim.OracleDetections(clip, env)
	if m := metrics.MAP(res.Detections, oracle, metrics.DefaultIoU); m <= 0.05 {
		t.Errorf("O3 mAP = %v, should be non-trivial", m)
	}
}

func TestEAARRunShape(t *testing.T) {
	clip := shortClip(t, 22)
	env := sim.NewEnv(3)
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
	res, err := (&EAAR{}).Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, clip.NumFrames())
	ups := 0
	for _, up := range res.Uploaded {
		if up {
			ups++
		}
	}
	if ups == 0 || ups == clip.NumFrames() {
		t.Errorf("EAAR uploaded %d frames, want key frames only", ups)
	}
	oracle := sim.OracleDetections(clip, env)
	if m := metrics.MAP(res.Detections, oracle, metrics.DefaultIoU); m <= 0.05 {
		t.Errorf("EAAR mAP = %v", m)
	}
}

func TestDDSRunShape(t *testing.T) {
	clip := shortClip(t, 23)
	env := sim.NewEnv(4)
	link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
	res, err := (&DDS{}).Run(clip, link, env)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, clip.NumFrames())
	// Every frame uploads under DDS.
	for i, up := range res.Uploaded {
		if !up {
			t.Errorf("DDS frame %d not uploaded", i)
		}
	}
	oracle := sim.OracleDetections(clip, env)
	if m := metrics.MAP(res.Detections, oracle, metrics.DefaultIoU); m <= 0.1 {
		t.Errorf("DDS mAP = %v", m)
	}
}

func TestDDSSlowerThanDiVE(t *testing.T) {
	// The paper's headline latency comparison: DDS pays two round trips,
	// DiVE one.
	clip := shortClip(t, 24)
	env := sim.NewEnv(5)
	dds, err := (&DDS{}).Run(clip, netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012), env)
	if err != nil {
		t.Fatal(err)
	}
	dive, err := (&sim.DiVE{}).Run(clip, netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012), env)
	if err != nil {
		t.Fatal(err)
	}
	if dds.MeanResponseTime() <= dive.MeanResponseTime() {
		t.Errorf("DDS (%v) should be slower than DiVE (%v)",
			dds.MeanResponseTime(), dive.MeanResponseTime())
	}
}

func TestRoiOffsets(t *testing.T) {
	dets := []detect.Detection{{Class: world.ClassCar, Box: imgx.NewRect(32, 32, 32, 32), Score: 0.9}}
	off := roiOffsets(dets, 10, 6, 0, 10)
	// MBs (2,2)..(3,3) are ROI.
	if off[2*10+2] != 0 || off[3*10+3] != 0 {
		t.Error("ROI MBs not zeroed")
	}
	if off[0] != 10 {
		t.Error("background offset wrong")
	}
	// Dilation expands the ROI.
	off = roiOffsets(dets, 10, 6, 16, 10)
	if off[1*10+1] != 0 {
		t.Error("dilated ROI missing")
	}
	// Out-of-frame boxes are clipped safely.
	dets[0].Box = imgx.NewRect(-100, -100, 50, 50)
	_ = roiOffsets(dets, 10, 6, 16, 10)
}

func TestRegionOffsets(t *testing.T) {
	regions := []imgx.Rect{imgx.NewRect(64, 64, 16, 16)}
	off := regionOffsets(regions, 10, 6, 0)
	if off[4*10+4] != 0 {
		t.Error("region MB not zeroed")
	}
	if off[0] != 51 {
		t.Error("non-region offset wrong")
	}
}

func TestTrackForwardMechanics(t *testing.T) {
	me, err := newOnDeviceME(64, 48, 100)
	if err != nil {
		t.Fatal(err)
	}
	f0 := imgx.NewPlane(64, 48)
	for i := range f0.Pix {
		f0.Pix[i] = uint8(i * 7 % 251)
	}
	field, err := me.step(f0)
	if err != nil {
		t.Fatal(err)
	}
	if field != nil {
		t.Error("first step should yield nil field")
	}
	// Shift content right by 3.
	f1 := imgx.NewPlane(64, 48)
	for y := 0; y < 48; y++ {
		for x := 0; x < 64; x++ {
			f1.Set(x, y, f0.At(x-3, y))
		}
	}
	field, err = me.step(f1)
	if err != nil {
		t.Fatal(err)
	}
	if field == nil {
		t.Fatal("no field on second step")
	}
	dets := []detect.Detection{{Class: world.ClassCar, Box: imgx.NewRect(20, 16, 16, 16), Score: 0.9}}
	out := trackForward(dets, field, 64, 48)
	if len(out) != 1 {
		t.Fatal("detection lost")
	}
	if out[0].Box.MinX < 21 || out[0].Box.MinX > 25 {
		t.Errorf("tracked box = %+v, want shifted right by ≈3", out[0].Box)
	}
	if !out[0].Tracked || out[0].Score >= 0.9 {
		t.Error("tracking metadata wrong")
	}
}

func TestMaxiHelper(t *testing.T) {
	if maxi(3, 5) != 5 || maxi(5, 3) != 5 || maxi(-1, -2) != -1 {
		t.Error("maxi wrong")
	}
}
