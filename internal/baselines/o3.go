package baselines

import (
	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// O3 reproduces the O³ baseline: only key frames are uploaded (as intra
// frames, using the accumulated bandwidth budget of the whole key-frame
// interval), the edge detects on them, and all other frames reuse the cached
// key-frame results corrected by on-device MV tracking.
type O3 struct {
	// KeyInterval is the number of frames between key frames.
	KeyInterval int
}

// Name implements sim.Scheme.
func (o *O3) Name() string { return "O3" }

// Run implements sim.Scheme.
func (o *O3) Run(clip *world.Clip, link *netsim.Link, env *sim.Env) (*sim.Result, error) {
	interval := o.KeyInterval
	if interval <= 0 {
		interval = 5
	}
	cfg := codec.DefaultConfig(clip.W, clip.H)
	cfg.GoPSize = 1 // every uploaded frame is standalone
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := codec.NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	me, err := newOnDeviceME(clip.W, clip.H, clip.Focal)
	if err != nil {
		return nil, err
	}
	estimator := netsim.NewEstimator(0.5, netsim.Mbps(2))

	n := clip.NumFrames()
	res := &sim.Result{
		Scheme:        o.Name(),
		Detections:    make([][]detect.Detection, n),
		ResponseTimes: make([]float64, n),
		BitsSent:      make([]int, n),
		Uploaded:      make([]bool, n),
	}
	var cached []detect.Detection
	arrivals := newResultQueue(clip.W, clip.H)
	for i, frame := range clip.Frames {
		capture := float64(i) / clip.FPS
		field, err := me.step(frame)
		if err != nil {
			return nil, err
		}
		// Server results arrive one round trip after their key frame was
		// captured; correct the tracked cache only then, replaying the
		// intervening motion so the stale boxes catch up.
		if fresh, ok := arrivals.collect(capture, field); ok {
			cached = fresh
		}
		if i%interval != 0 {
			// Tracked frame: correct cached results with local MVs.
			cached = trackForward(cached, field, clip.W, clip.H)
			res.Detections[i] = cached
			res.ResponseTimes[i] = env.Lat.Track
			continue
		}
		// Key frame: spend the whole interval's bit budget on quality.
		bw := estimator.EstimateAt(capture)
		budget := int(bw * 0.9 * float64(interval) / clip.FPS)
		ef, err := enc.Encode(frame, codec.EncodeOptions{TargetBits: budget, ForceIFrame: true})
		if err != nil {
			return nil, err
		}
		ready := capture + env.Lat.Encode
		start, serialized, delivered := link.Send(ready, ef.NumBits)
		estimator.Record(start, serialized, ef.NumBits)
		res.BitsSent[i] = ef.NumBits
		res.Uploaded[i] = true

		decoded, err := dec.Decode(ef.Data)
		if err != nil {
			return nil, err
		}
		dets, resultAt := sim.ServerInference(env, decoded.Image, frame, clip.GT[i], delivered, env.Seed^int64(i*7919))
		arrivals.push(dets, resultAt)
		res.Detections[i] = dets
		res.ResponseTimes[i] = resultAt - capture
	}
	return res, nil
}
