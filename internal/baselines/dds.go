package baselines

import (
	"math/rand"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// DDS reproduces the DDS baseline (server-driven video streaming): each
// frame is first uploaded in low quality; the server detects on it and
// feeds the candidate regions back; the agent then re-uploads those regions
// in high quality and the server re-runs inference on the patched frame.
// Accuracy is good — the regions that matter eventually arrive sharp — but
// every frame pays two uplink trips plus two inferences, so response time
// is the worst of the field, exactly the trade-off the paper reports.
//
// The low-quality passes form a normal P-frame chain; region re-uploads
// are standalone intra patches (like the crop re-uploads of the real
// system), so the two flows are independent and the agent keeps streaming
// phase-1 frames while feedback for earlier frames is in flight.
type DDS struct {
	// Phase1Frac is the share of the per-frame bit budget spent on the
	// low-quality pass.
	Phase1Frac float64
	// FeedbackScore is the phase-1 confidence below which a detection's
	// region is re-requested; confident detections are kept as-is.
	FeedbackScore float64
	// DilatePx grows feedback regions before re-encoding.
	DilatePx int
}

// Name implements sim.Scheme.
func (d *DDS) Name() string { return "DDS" }

func (d *DDS) defaults() (frac, fbScore float64, dilate int) {
	frac, fbScore, dilate = d.Phase1Frac, d.FeedbackScore, d.DilatePx
	if frac <= 0 {
		frac = 0.45
	}
	if fbScore <= 0 {
		fbScore = 0.85
	}
	if dilate <= 0 {
		dilate = 10
	}
	return frac, fbScore, dilate
}

// phase2Job is a pending region re-upload.
type phase2Job struct {
	idx     int
	ready   float64 // when the patch can be enqueued (feedback + encode)
	bits    int
	data    []byte
	regions []imgx.Rect
	lowImg  *imgx.Plane // server-side phase-1 reconstruction
}

// Run implements sim.Scheme.
func (d *DDS) Run(clip *world.Clip, link *netsim.Link, env *sim.Env) (*sim.Result, error) {
	frac, fbScore, dilate := d.defaults()
	cfg := codec.DefaultConfig(clip.W, clip.H)
	cfg.GoPSize = 1 << 30 // phase-1 stream: one I-frame, then P-chain
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := codec.NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	// Patch encoder: every phase-2 payload is a standalone intra frame of
	// the requested regions (background crushed to QP 51 — a few bits per
	// macroblock — mirroring the crop uploads of the real system).
	patchCfg := cfg
	patchCfg.GoPSize = 1
	patchEnc, err := codec.NewEncoder(patchCfg)
	if err != nil {
		return nil, err
	}
	estimator := netsim.NewEstimator(0.5, netsim.Mbps(2))

	n := clip.NumFrames()
	res := &sim.Result{
		Scheme:        d.Name(),
		Detections:    make([][]detect.Detection, n),
		ResponseTimes: make([]float64, n),
		BitsSent:      make([]int, n),
		Uploaded:      make([]bool, n),
	}
	mbw, mbh := enc.MBDims()

	var pending []phase2Job
	// flush transmits and evaluates every pending patch that becomes ready
	// before `until`, so phase-1 and phase-2 traffic interleave on the
	// link in ready order.
	flush := func(until float64) error {
		for len(pending) > 0 && pending[0].ready <= until {
			job := pending[0]
			pending = pending[1:]
			s2, ser2, delivered2 := link.Send(job.ready, job.bits)
			estimator.Record(s2, ser2, job.bits)
			pdec, derr := codec.NewDecoder(patchCfg)
			if derr != nil {
				return derr
			}
			patch, derr := pdec.Decode(job.data)
			if derr != nil {
				return derr
			}
			merged := mergeRegions(job.lowImg, patch.Image, job.regions, dilate)
			dets2, resultAt := sim.ServerInference(env, merged, clip.Frames[job.idx], clip.GT[job.idx], delivered2, env.Seed^int64(job.idx*27644437))
			res.BitsSent[job.idx] += job.bits
			res.Detections[job.idx] = dets2
			res.ResponseTimes[job.idx] = resultAt - float64(job.idx)/clip.FPS
		}
		return nil
	}

	for i, frame := range clip.Frames {
		capture := float64(i) / clip.FPS
		ready1 := capture + env.Lat.Encode
		if err := flush(ready1); err != nil {
			return nil, err
		}
		bw := estimator.EstimateAt(capture)
		budget := int(bw * 0.85 / clip.FPS)

		// Phase 1: whole frame, low quality, part of the P-chain.
		ef1, err := enc.Encode(frame, codec.EncodeOptions{
			TargetBits:        int(float64(budget) * frac),
			IFrameBudgetScale: 3,
		})
		if err != nil {
			return nil, err
		}
		s1, ser1, delivered1 := link.Send(ready1, ef1.NumBits)
		estimator.Record(s1, ser1, ef1.NumBits)
		res.BitsSent[i] = ef1.NumBits
		res.Uploaded[i] = true

		dec1, err := dec.Decode(ef1.Data)
		if err != nil {
			return nil, err
		}
		dets1, feedbackAt := sim.ServerInference(env, dec1.Image, frame, clip.GT[i], delivered1, env.Seed^int64(i*31337))

		// Server feedback: uncertain regions — low-confidence detections
		// plus sub-threshold region proposals.
		var regions []imgx.Rect
		for _, dt := range dets1 {
			if dt.Score < fbScore {
				regions = append(regions, dt.Box)
			}
		}
		for _, pr := range env.Detector.Proposals(dec1.Image, frame, clip.GT[i], env.Seed^int64(i*611953)) {
			regions = append(regions, pr.Box)
		}
		if len(regions) == 0 {
			// A region-proposal network always produces candidates, even
			// on background; model that with deterministic probe regions
			// so DDS pays its second trip on every frame, as the paper
			// describes.
			rng := rand.New(rand.NewSource(env.Seed ^ int64(i*5915587277)))
			for k := 0; k < 2; k++ {
				w := 24 + rng.Intn(32)
				h := 20 + rng.Intn(24)
				x := rng.Intn(maxi(clip.W-w, 1))
				y := rng.Intn(maxi(clip.H-h, 1))
				regions = append(regions, imgx.NewRect(x, y, w, h))
			}
		}

		// Phase 2: standalone intra patch of the regions, spending the
		// rest of the frame budget.
		offsets := regionOffsets(regions, mbw, mbh, dilate)
		phase2Budget := budget - ef1.NumBits
		if phase2Budget < budget/4 {
			phase2Budget = budget / 4
		}
		ef2, err := patchEnc.Encode(frame, codec.EncodeOptions{
			TargetBits: phase2Budget, QPOffsets: offsets, ForceIFrame: true,
		})
		if err != nil {
			return nil, err
		}
		pending = append(pending, phase2Job{
			idx:     i,
			ready:   feedbackAt + env.Lat.Encode,
			bits:    ef2.NumBits,
			data:    ef2.Data,
			regions: regions,
			lowImg:  dec1.Image,
		})
	}
	return res, flush(1e18)
}

// mergeRegions overlays the patched regions (dilated, macroblock-aligned)
// from patch onto a copy of low — the server-side fusion of the two passes.
func mergeRegions(low, patch *imgx.Plane, regions []imgx.Rect, dilatePx int) *imgx.Plane {
	out := low.Clone()
	for _, r := range regions {
		box := imgx.Rect{
			MinX: (r.MinX - dilatePx) / codec.MBSize * codec.MBSize,
			MinY: (r.MinY - dilatePx) / codec.MBSize * codec.MBSize,
			MaxX: (r.MaxX + dilatePx + codec.MBSize - 1) / codec.MBSize * codec.MBSize,
			MaxY: (r.MaxY + dilatePx + codec.MBSize - 1) / codec.MBSize * codec.MBSize,
		}.ClipTo(out.W, out.H)
		for y := box.MinY; y < box.MaxY; y++ {
			copy(out.Row(y)[box.MinX:box.MaxX], patch.Row(y)[box.MinX:box.MaxX])
		}
	}
	return out
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// regionOffsets maps requested pixel regions onto a QP offset map: 0 in the
// dilated regions, +51 elsewhere (the background of a patch is never used).
func regionOffsets(regions []imgx.Rect, mbw, mbh, dilatePx int) []int {
	offsets := make([]int, mbw*mbh)
	for i := range offsets {
		offsets[i] = 51
	}
	for _, r := range regions {
		bx0 := (r.MinX - dilatePx) / codec.MBSize
		by0 := (r.MinY - dilatePx) / codec.MBSize
		bx1 := (r.MaxX + dilatePx + codec.MBSize - 1) / codec.MBSize
		by1 := (r.MaxY + dilatePx + codec.MBSize - 1) / codec.MBSize
		for by := by0; by < by1; by++ {
			if by < 0 || by >= mbh {
				continue
			}
			for bx := bx0; bx < bx1; bx++ {
				if bx < 0 || bx >= mbw {
					continue
				}
				offsets[by*mbw+bx] = 0
			}
		}
	}
	return offsets
}
