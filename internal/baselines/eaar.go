package baselines

import (
	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// EAAR reproduces the EAAR baseline: key frames are streamed with
// ROI-based differential encoding where the ROI comes from the cached
// (tracked) previous detections — QP 30 inside the ROI, QP 40 outside, the
// paper's stated defaults — and inference runs in parallel with streaming.
// Non-key frames are tracked locally. Fixed QPs mean no bitrate adaptation:
// under tight uplinks the transmit queue grows and results arrive stale.
type EAAR struct {
	// KeyInterval is the number of frames between uploaded key frames.
	KeyInterval int
	// HighQP and LowQP are the ROI and background quantizers (30/40 in
	// the paper).
	HighQP, LowQP int
	// DilatePx grows cached boxes into the ROI to tolerate motion.
	DilatePx int
}

// Name implements sim.Scheme.
func (e *EAAR) Name() string { return "EAAR" }

func (e *EAAR) defaults() (interval, high, low, dilate int) {
	interval, high, low, dilate = e.KeyInterval, e.HighQP, e.LowQP, e.DilatePx
	if interval <= 0 {
		interval = 4
	}
	if high <= 0 {
		high = 30
	}
	if low <= 0 {
		low = 40
	}
	if dilate <= 0 {
		dilate = 12
	}
	return interval, high, low, dilate
}

// Run implements sim.Scheme.
func (e *EAAR) Run(clip *world.Clip, link *netsim.Link, env *sim.Env) (*sim.Result, error) {
	interval, high, low, dilate := e.defaults()
	cfg := codec.DefaultConfig(clip.W, clip.H)
	cfg.GoPSize = 1
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := codec.NewDecoder(cfg)
	if err != nil {
		return nil, err
	}
	me, err := newOnDeviceME(clip.W, clip.H, clip.Focal)
	if err != nil {
		return nil, err
	}

	n := clip.NumFrames()
	res := &sim.Result{
		Scheme:        e.Name(),
		Detections:    make([][]detect.Detection, n),
		ResponseTimes: make([]float64, n),
		BitsSent:      make([]int, n),
		Uploaded:      make([]bool, n),
	}
	mbw, mbh := enc.MBDims()
	var cached []detect.Detection
	arrivals := newResultQueue(clip.W, clip.H)
	for i, frame := range clip.Frames {
		capture := float64(i) / clip.FPS
		field, err := me.step(frame)
		if err != nil {
			return nil, err
		}
		// Key-frame results correct the cache only once they arrive (one
		// round trip after capture), replayed through the motion since.
		if fresh, ok := arrivals.collect(capture, field); ok {
			cached = fresh
		}
		cached = trackForward(cached, field, clip.W, clip.H)
		if i%interval != 0 {
			res.Detections[i] = cached
			res.ResponseTimes[i] = env.Lat.Track
			continue
		}
		// ROI map from the cached (tracked) detections. With no cached
		// results yet (cold start, or everything lost) — and periodically
		// as a refresh, so objects the ROI never covered get a chance to
		// bootstrap — stream the whole frame at ROI quality.
		var offsets []int
		refresh := (i/interval)%8 == 7
		if len(cached) > 0 && !refresh {
			offsets = roiOffsets(cached, mbw, mbh, dilate, low-high)
		}
		ef, err := enc.Encode(frame, codec.EncodeOptions{
			BaseQP: high, QPOffsets: offsets, ForceIFrame: true,
		})
		if err != nil {
			return nil, err
		}
		ready := capture + env.Lat.Encode
		_, _, delivered := link.Send(ready, ef.NumBits)
		res.BitsSent[i] = ef.NumBits
		res.Uploaded[i] = true

		decoded, err := dec.Decode(ef.Data)
		if err != nil {
			return nil, err
		}
		dets, resultAt := sim.ServerInference(env, decoded.Image, frame, clip.GT[i], delivered, env.Seed^int64(i*104729))
		arrivals.push(dets, resultAt)
		res.Detections[i] = dets
		res.ResponseTimes[i] = resultAt - capture
	}
	return res, nil
}

// roiOffsets builds a QP offset map that is 0 inside dilated detection
// boxes and delta outside.
func roiOffsets(dets []detect.Detection, mbw, mbh, dilatePx, delta int) []int {
	offsets := make([]int, mbw*mbh)
	for i := range offsets {
		offsets[i] = delta
	}
	for _, d := range dets {
		box := imgx.Rect{
			MinX: d.Box.MinX - dilatePx, MinY: d.Box.MinY - dilatePx,
			MaxX: d.Box.MaxX + dilatePx, MaxY: d.Box.MaxY + dilatePx,
		}
		bx0 := box.MinX / codec.MBSize
		by0 := box.MinY / codec.MBSize
		bx1 := (box.MaxX + codec.MBSize - 1) / codec.MBSize
		by1 := (box.MaxY + codec.MBSize - 1) / codec.MBSize
		for by := by0; by < by1; by++ {
			if by < 0 || by >= mbh {
				continue
			}
			for bx := bx0; bx < bx1; bx++ {
				if bx < 0 || bx >= mbw {
					continue
				}
				offsets[by*mbw+bx] = 0
			}
		}
	}
	return offsets
}
