package baselines

import (
	"dive/internal/detect"
	"dive/internal/mvfield"
	"dive/internal/obs"
)

// resultQueue models the feedback latency of key-frame schemes: detection
// results computed by the server become usable on the device only when they
// arrive, one round trip after capture. While a result is in flight the
// queue accumulates the per-frame motion fields, so on arrival the stale
// boxes can be replayed ("caught up") through the motion that happened in
// the meantime — the correction step O3 and EAAR describe.
type resultQueue struct {
	w, h    int
	pending []pendingResult
	obs     *obs.Recorder
}

type pendingResult struct {
	dets     []detect.Detection
	arriveAt float64
	fields   []*mvfield.Field // motion since the result's capture frame
}

// newResultQueue creates a queue for a w×h stream. The process-wide
// default recorder (obs.SetDefault) is picked up here.
func newResultQueue(w, h int) *resultQueue {
	return &resultQueue{w: w, h: h, obs: obs.Default()}
}

// push registers a server result that will arrive at arriveAt.
func (q *resultQueue) push(dets []detect.Detection, arriveAt float64) {
	q.pending = append(q.pending, pendingResult{dets: dets, arriveAt: arriveAt})
	q.obs.Counter(obs.MetricResults).Inc()
	q.obs.Gauge(obs.GaugeResultQueueDepth).Set(float64(len(q.pending)))
}

// collect must be called once per frame with the frame's capture time and
// flow field. It accumulates the field into every in-flight result and, if
// a result has arrived by now, replays it through its accumulated motion
// and returns the caught-up detections. Empty arrived results are dropped
// (nothing to correct with), matching the keep-last-good policy used
// throughout.
func (q *resultQueue) collect(now float64, field *mvfield.Field) ([]detect.Detection, bool) {
	var out []detect.Detection
	found := false
	rest := q.pending[:0]
	for _, p := range q.pending {
		if p.arriveAt <= now {
			if len(p.dets) > 0 {
				caught := p.dets
				for _, f := range p.fields {
					caught = trackForward(caught, f, q.w, q.h)
				}
				out = caught
				found = true
			} else {
				q.obs.Counter(obs.MetricResultsDropped).Inc()
			}
			continue
		}
		p.fields = append(p.fields, field)
		rest = append(rest, p)
	}
	q.pending = rest
	q.obs.Gauge(obs.GaugeResultQueueDepth).Set(float64(len(q.pending)))
	return out, found
}
