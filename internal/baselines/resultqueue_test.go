package baselines

import (
	"testing"

	"dive/internal/codec"
	"dive/internal/detect"
	"dive/internal/geom"
	"dive/internal/imgx"
	"dive/internal/mvfield"
	"dive/internal/world"
)

// uniformField builds a field with constant flow.
func uniformField(mbw, mbh int, fx, fy float64) *mvfield.Field {
	f := &mvfield.Field{MBW: mbw, MBH: mbh, Focal: 250, Vectors: make([]mvfield.Vector, mbw*mbh)}
	for i := range f.Vectors {
		bx, by := i%mbw, i/mbw
		f.Vectors[i] = mvfield.Vector{
			Pos:   geom.Vec2{X: float64(bx*codec.MBSize) + 8 - float64(mbw*8), Y: float64(by*codec.MBSize) + 8 - float64(mbh*8)},
			Flow:  geom.Vec2{X: fx, Y: fy},
			Valid: true,
		}
	}
	return f
}

func TestResultQueueCatchUp(t *testing.T) {
	q := newResultQueue(320, 192)
	dets := []detect.Detection{{Class: world.ClassCar, Box: imgx.NewRect(100, 80, 40, 30), Score: 0.9}}
	q.push(dets, 0.25) // arrives after ~3 frames at 12 FPS

	field := uniformField(20, 12, 4, 0)
	// Frames at t = 0.083, 0.167: in flight, fields accumulate.
	if _, ok := q.collect(0.083, field); ok {
		t.Fatal("result should still be in flight")
	}
	if _, ok := q.collect(0.167, field); ok {
		t.Fatal("result should still be in flight")
	}
	// t = 0.3: arrived; replayed through the two accumulated fields.
	out, ok := q.collect(0.3, field)
	if !ok {
		t.Fatal("result should have arrived")
	}
	if len(out) != 1 {
		t.Fatalf("boxes = %d", len(out))
	}
	// Two replays of +4 px: box moved right by 8.
	if out[0].Box.MinX != 108 {
		t.Errorf("caught-up MinX = %d, want 108", out[0].Box.MinX)
	}
	if len(q.pending) != 0 {
		t.Error("queue not drained")
	}
}

func TestResultQueueDropsEmptyArrivals(t *testing.T) {
	q := newResultQueue(320, 192)
	q.push(nil, 0.1)
	field := uniformField(20, 12, 0, 0)
	if _, ok := q.collect(0.2, field); ok {
		t.Error("empty result should not replace the cache")
	}
	if len(q.pending) != 0 {
		t.Error("empty arrival not drained")
	}
}
