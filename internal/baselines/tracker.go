// Package baselines implements the three comparison systems of the paper's
// Section IV-A on top of the same codec, link, detector and MV tracker as
// DiVE, mirroring the paper's same-x264 / same-tracking fairness setup:
//
//   - O3: key-frame upload + on-device MV tracking for other frames.
//   - EAAR: key frames with ROI encoding (QP 30 foreground / 40 background)
//     from cached detections, tracking elsewhere.
//   - DDS: per-frame two-pass server-driven streaming — low quality first,
//     feedback regions re-uploaded in high quality.
package baselines

import (
	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/mvfield"
)

// onDeviceME wraps a private encoder used purely to obtain per-frame motion
// vectors for local tracking, the way the baseline systems run block
// matching on the device regardless of what they upload.
type onDeviceME struct {
	enc   *codec.Encoder
	focal float64
	w, h  int
}

func newOnDeviceME(w, h int, focal float64) (*onDeviceME, error) {
	cfg := codec.DefaultConfig(w, h)
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	return &onDeviceME{enc: enc, focal: focal, w: w, h: h}, nil
}

// step consumes the next frame and returns the flow field against the
// previous frame (nil on the first call).
func (m *onDeviceME) step(frame *imgx.Plane) (*mvfield.Field, error) {
	mf := m.enc.AnalyzeMotion(frame)
	// Advance the reference cheaply; QP 18 keeps the reference clean
	// enough for meaningful vectors without pretending to be free.
	if _, err := m.enc.Encode(frame, codec.EncodeOptions{BaseQP: 18}); err != nil {
		return nil, err
	}
	if mf == nil {
		return nil, nil
	}
	return mvfield.FromMotion(mf, m.focal, float64(m.w)/2, float64(m.h)/2, 0), nil
}

// trackForward advances detections by one frame of flow; shared by O3 and
// EAAR. It delegates to DiVE's tracker so the mechanics are identical
// across schemes, mirroring the paper's same-tracking fairness setup.
func trackForward(dets []detect.Detection, field *mvfield.Field, w, h int) []detect.Detection {
	return core.TrackDetections(dets, field, float64(w)/2, float64(h)/2, w, h, core.DefaultTrackConfig())
}
