package experiments

import (
	"reflect"
	"testing"
)

// TestFanOutDeterministicOrdering runs the Figure 16 end-to-end sweep
// sequentially and with an 8-wide harness fan-out: rows must match
// cell-for-cell — same order, same values — because results land in slots
// indexed by (bandwidth, scheme) and every per-cell simulation is seeded
// independently of scheduling.
func TestFanOutDeterministicOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep skipped in -short")
	}
	defer SetWorkers(1)

	SetWorkers(1)
	serial, err := Fig16EndToEndRobotCar(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(8)
	parallel, err := Fig16EndToEndRobotCar(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("row %d differs under fan-out:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}

// TestFanOutRepeatable runs the same sweep twice at width 8: identical seeds
// must produce identical tables run-to-run, not just serial-vs-parallel.
func TestFanOutRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep skipped in -short")
	}
	defer SetWorkers(1)
	SetWorkers(8)
	a, err := Fig16EndToEndRobotCar(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig16EndToEndRobotCar(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two same-seed fan-out runs produced different tables")
	}
}

func TestSetWorkers(t *testing.T) {
	defer SetWorkers(1)
	if Workers() < 1 {
		t.Errorf("default Workers() = %d", Workers())
	}
	SetWorkers(5)
	if Workers() != 5 {
		t.Errorf("Workers() = %d after SetWorkers(5)", Workers())
	}
}
