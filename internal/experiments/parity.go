package experiments

import (
	"fmt"
	"math"

	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/imgx"
	"dive/internal/sim"
	"dive/internal/world"
)

// Transform parity: the gate for the fixed-point kernel switch. The encoder,
// rate-control trials and decoder all moved from the float64 matrix DCT /
// float-division quantizer to int32 fixed-point kernels (DESIGN.md §12) — a
// documented output change, like the PR 2 integerizations before it. This
// experiment runs the full DiVE agent end-to-end twice on identical
// workloads — production fixed-point kernels vs Config.RefTransform float64
// reference — and reports the AP and bitrate deltas. The acceptance bar is
// ±1% relative on both.

// ParityRow is one bandwidth point of the fixed-vs-float comparison.
type ParityRow struct {
	Bandwidth float64 `json:"bandwidth_mbps"`
	FixedMAP  float64 `json:"fixed_map"`
	RefMAP    float64 `json:"ref_map"`
	// MAPDelta is fixed − ref, in absolute AP points.
	MAPDelta    float64 `json:"map_delta"`
	FixedBitate float64 `json:"fixed_bitrate_mbps"`
	RefBitrate  float64 `json:"ref_bitrate_mbps"`
	// BitrateRel is (fixed − ref) / ref.
	BitrateRel float64 `json:"bitrate_rel"`
}

// ParityResult is the sweep plus the worst-case deltas the gate reads.
type ParityResult struct {
	Rows []ParityRow `json:"rows"`
	// MaxAbsMAPDelta / MaxAbsBitrateRel are the largest magnitudes across
	// the sweep.
	MaxAbsMAPDelta   float64 `json:"max_abs_map_delta"`
	MaxAbsBitrateRel float64 `json:"max_abs_bitrate_rel"`
	// FixedPSNR / RefPSNR compare reconstruction fidelity directly, outside
	// the simulated link: one clip rate-controlled encode per path, mean
	// luma PSNR of the decoder output against the source.
	FixedPSNR float64 `json:"fixed_psnr_db"`
	RefPSNR   float64 `json:"ref_psnr_db"`
}

// clipPSNR encodes every frame of the clip with a serial rate-controlled
// encoder and returns the mean PSNR of the decoded reconstructions against
// the source frames.
func clipPSNR(clip *world.Clip, refTransform bool) (float64, error) {
	cfg := codec.DefaultConfig(clip.W, clip.H)
	cfg.Workers = 1
	cfg.RefTransform = refTransform
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return 0, err
	}
	dec, err := codec.NewDecoder(cfg)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, frame := range clip.Frames {
		ef, err := enc.Encode(frame, codec.EncodeOptions{TargetBits: 150_000})
		if err != nil {
			return 0, err
		}
		df, err := dec.Decode(ef.Data)
		if err != nil {
			return 0, err
		}
		sum += imgx.PSNR(imgx.MSE(frame, df.Image))
	}
	return sum / float64(len(clip.Frames)), nil
}

// TransformParity evaluates the fixed-point and float-reference transform
// paths end-to-end on the RobotCar-flavored workload across the bandwidth
// sweep. Both runs share clips, seeds and link traces; only the transform
// kernels differ.
func TransformParity(scale Scale, seed int64) (ParityResult, error) {
	rc, _ := Datasets(scale, seed)
	bws := bandwidthSweep(scale)
	var res ParityResult
	var err error
	if res.FixedPSNR, err = clipPSNR(rc.Clips[0], false); err != nil {
		return res, err
	}
	if res.RefPSNR, err = clipPSNR(rc.Clips[0], true); err != nil {
		return res, err
	}
	for _, bw := range bws {
		fixed, err := runScheme(rc, &sim.DiVE{Session: "parity-fixed"}, constTrace(bw), seed+int64(bw*131))
		if err != nil {
			return res, err
		}
		ref, err := runScheme(rc, &sim.DiVE{
			Session: "parity-ref",
			ConfigFn: func(cfg *core.AgentConfig) {
				cfg.Codec.RefTransform = true
			},
		}, constTrace(bw), seed+int64(bw*131))
		if err != nil {
			return res, err
		}
		row := ParityRow{
			Bandwidth: bw,
			FixedMAP:  fixed.MAP, RefMAP: ref.MAP,
			MAPDelta:    fixed.MAP - ref.MAP,
			FixedBitate: fixed.BitrateMbps, RefBitrate: ref.BitrateMbps,
		}
		if ref.BitrateMbps > 0 {
			row.BitrateRel = (fixed.BitrateMbps - ref.BitrateMbps) / ref.BitrateMbps
		}
		res.Rows = append(res.Rows, row)
		if d := math.Abs(row.MAPDelta); d > res.MaxAbsMAPDelta {
			res.MaxAbsMAPDelta = d
		}
		if d := math.Abs(row.BitrateRel); d > res.MaxAbsBitrateRel {
			res.MaxAbsBitrateRel = d
		}
	}
	return res, nil
}

// RenderParity formats the fixed-vs-float comparison.
func RenderParity(r ParityResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Transform parity: fixed-point kernels vs float64 reference (PSNR %.2f vs %.2f dB)",
			r.FixedPSNR, r.RefPSNR),
		Columns: []string{"bandwidth (Mbps)", "mAP fixed", "mAP ref", "ΔmAP",
			"bitrate fixed", "bitrate ref", "Δbitrate"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", row.Bandwidth),
			f3(row.FixedMAP), f3(row.RefMAP), fmt.Sprintf("%+.4f", row.MAPDelta),
			fmt.Sprintf("%.3f", row.FixedBitate), fmt.Sprintf("%.3f", row.RefBitrate),
			fmt.Sprintf("%+.2f%%", row.BitrateRel*100),
		})
	}
	return t
}
