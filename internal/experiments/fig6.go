package experiments

import (
	"dive/internal/codec"
	"dive/internal/geom"
	"dive/internal/world"
)

// Fig6Result holds the ego-motion judgement study (Figure 6): CDFs of the
// non-zero MV ratio η for stopped vs moving frames, the classification
// accuracy of the paper's η > 0.15 rule, and one clip's η timeline.
type Fig6Result struct {
	StoppedCDF []geom.CDFPoint
	MovingCDF  []geom.CDFPoint
	// Threshold is the decision threshold evaluated (0.15).
	Threshold float64
	// Accuracy is the fraction of frames whose moving/static state the
	// threshold rule classifies correctly.
	Accuracy float64
	// Timeline is η per frame of the first clip; TimelineTruth the
	// matching ground-truth motion flags.
	Timeline      []float64
	TimelineTruth []bool
}

// Fig6EgoMotion measures η on nuScenes-flavored clips (which include stop
// phases) and evaluates the threshold rule. Clips are rendered long enough
// to reach the stop segment whatever the scale.
func Fig6EgoMotion(scale Scale, seed int64) (*Fig6Result, error) {
	n, dur := scale.params()
	if dur < 4.5 {
		dur = 4.5
	}
	np := world.NuScenesLike()
	np.ClipDuration = dur
	ns := Workload{Name: np.Name, Clips: world.GenerateDataset(np, seed+1_000_000, n)}
	res := &Fig6Result{Threshold: 0.15}
	var stopped, moving []float64
	correct, total := 0, 0
	for ci, clip := range ns.Clips {
		enc, err := codec.NewEncoder(codec.DefaultConfig(clip.W, clip.H))
		if err != nil {
			return nil, err
		}
		for i, frame := range clip.Frames {
			mf := enc.AnalyzeMotion(frame)
			if _, err := enc.Encode(frame, codec.EncodeOptions{BaseQP: 18}); err != nil {
				return nil, err
			}
			if mf == nil {
				continue // first frame has no vectors
			}
			eta := mf.NonZeroRatio()
			isMoving := clip.Poses[i].State != world.MotionStatic
			if isMoving {
				moving = append(moving, eta)
			} else {
				stopped = append(stopped, eta)
			}
			if (eta > res.Threshold) == isMoving {
				correct++
			}
			total++
			if ci == 0 {
				res.Timeline = append(res.Timeline, eta)
				res.TimelineTruth = append(res.TimelineTruth, isMoving)
			}
		}
	}
	res.StoppedCDF = geom.EmpiricalCDF(stopped)
	res.MovingCDF = geom.EmpiricalCDF(moving)
	if total > 0 {
		res.Accuracy = float64(correct) / float64(total)
	}
	return res, nil
}

// RenderFig6 summarizes the result as a table of CDF quantiles.
func RenderFig6(r *Fig6Result) *Table {
	t := &Table{
		Title:   "Fig 6: non-zero MV ratio η for ego-motion judgement",
		Columns: []string{"population", "P10", "P50", "P90", "frames"},
	}
	row := func(name string, cdf []geom.CDFPoint) []string {
		var vals []float64
		for _, p := range cdf {
			vals = append(vals, p.Value)
		}
		return []string{
			name,
			f3(geom.Percentile(vals, 10)),
			f3(geom.Percentile(vals, 50)),
			f3(geom.Percentile(vals, 90)),
			f1(float64(len(cdf))),
		}
	}
	t.Rows = append(t.Rows, row("stopped", r.StoppedCDF), row("moving", r.MovingCDF))
	t.Rows = append(t.Rows, []string{"rule η>0.15 accuracy", f3(r.Accuracy), "", "", ""})
	return t
}
