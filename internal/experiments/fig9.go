package experiments

import (
	"time"

	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/sim"
)

// Fig9Row is one (dataset, motion-estimation method) measurement: end-to-end
// mAP at 2 Mbps plus the measured per-frame agent compute time.
type Fig9Row struct {
	Dataset string
	Method  string
	MAP     float64
	// TimeMs is the measured mean wall time the agent spends per frame
	// (motion estimation dominates for the exhaustive searches).
	TimeMs float64
}

// Fig9MotionEstimation sweeps the five x264 search strategies on both
// datasets at 2 Mbps, reproducing Figure 9's accuracy/cost trade-off.
func Fig9MotionEstimation(scale Scale, seed int64) ([]Fig9Row, error) {
	rc, ns := Datasets(scale, seed)
	var rows []Fig9Row
	for _, w := range []Workload{rc, ns} {
		for _, m := range codec.AllMEMethods() {
			method := m
			scheme := &sim.DiVE{ConfigFn: func(c *core.AgentConfig) {
				c.Codec.Method = method
			}}
			t0 := time.Now()
			res, err := runScheme(w, scheme, constTrace(2), seed+int64(m)*37)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(t0)
			rows = append(rows, Fig9Row{
				Dataset: w.Name,
				Method:  m.String(),
				MAP:     res.MAP,
				TimeMs:  elapsed.Seconds() * 1000 / float64(res.Frames),
			})
		}
	}
	return rows, nil
}

// RenderFig9 formats the sweep.
func RenderFig9(rows []Fig9Row) *Table {
	t := &Table{
		Title:   "Fig 9: motion estimation methods (2 Mbps)",
		Columns: []string{"dataset", "method", "mAP", "agent ms/frame"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Dataset, r.Method, f3(r.MAP), f1(r.TimeMs)})
	}
	return t
}
