package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dive/internal/core"
	"dive/internal/imgx"
	"dive/internal/parallel"
	"dive/internal/world"
)

// PipelineResult reports end-to-end agent throughput serial vs pipelined on
// identical input — the frames/sec the frame-level pipeline (capture ∥
// analyze ∥ emit) buys on this machine. Bitstreams are byte-exact between
// the two runs (verified during the measurement), so this is a pure
// wall-clock comparison.
type PipelineResult struct {
	// Depth is the pipelined run's in-flight frame bound.
	Depth   int `json:"depth"`
	Workers int `json:"workers"`
	// SerialMs and PipelinedMs are mean wall-clock milliseconds per frame,
	// capture through emitted bitstream.
	SerialMs    float64 `json:"serial_ms_per_frame"`
	PipelinedMs float64 `json:"pipelined_ms_per_frame"`
	Speedup     float64 `json:"speedup"`
	// MeanInFlight and MaxInFlight report the pipelined run's occupancy:
	// the time-weighted average and peak number of frames simultaneously
	// between capture and delivery (1.0 = no overlap achieved).
	MeanInFlight float64 `json:"mean_in_flight"`
	MaxInFlight  int     `json:"max_in_flight"`
}

// streamClipMs runs the full agent loop — on-demand frame rendering,
// analysis, entropy coding — over one clip at the given pipeline depth and
// returns the mean wall-clock milliseconds per frame, the pipeline stats
// and the total emitted bits (for the byte-exactness cross-check). Depth 1
// takes ProcessStream's inline path: exactly the serial loop.
func streamClipMs(p world.Profile, seed int64, workers, depth int) (float64, parallel.PipelineStats, int64, error) {
	src := world.NewClipSource(p, seed)
	cfg := core.DefaultAgentConfig(p.W, p.H, p.FPS, src.Focal())
	cfg.Codec.Workers = workers
	agent, err := core.NewAgent(cfg)
	if err != nil {
		return 0, parallel.PipelineStats{}, 0, err
	}
	var bits int64
	n := src.NumFrames()
	t0 := time.Now()
	stats, err := agent.ProcessStream(n, depth,
		func(i int) (*imgx.Plane, float64) {
			frame, _, _ := src.Frame(i)
			return frame, float64(i) / p.FPS
		},
		nil,
		func(i int, fr *core.FrameResult) error {
			bits += int64(fr.Encoded.NumBits)
			return nil
		})
	ms := time.Since(t0).Seconds() * 1000 / float64(n)
	return ms, stats, bits, err
}

// PipelineSpeedup renders and encodes one RobotCar-flavored clip twice with
// identical codec settings — once with the stages inline (depth 1), once
// with the frame pipeline at the given depth (0 = 3) — and reports the
// measured per-frame times and pipeline occupancy. divebench embeds the
// result in its -json output next to the intra-frame encode speedup.
func PipelineSpeedup(scale Scale, seed int64, workers, depth int) (PipelineResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 2 {
		depth = 3
	}
	p := world.RobotCarLike()
	_, dur := scale.params()
	p.ClipDuration = dur
	res := PipelineResult{Depth: depth, Workers: workers}

	serialMs, _, serialBits, err := streamClipMs(p, seed, workers, 1)
	if err != nil {
		return res, err
	}
	pipelinedMs, stats, pipelinedBits, err := streamClipMs(p, seed, workers, depth)
	if err != nil {
		return res, err
	}
	if serialBits != pipelinedBits {
		return res, fmt.Errorf("experiments: pipelined run produced %d bits, serial %d — determinism broken",
			pipelinedBits, serialBits)
	}
	res.SerialMs = serialMs
	res.PipelinedMs = pipelinedMs
	res.MeanInFlight = stats.MeanInFlight
	res.MaxInFlight = stats.MaxInFlight
	if pipelinedMs > 0 {
		res.Speedup = serialMs / pipelinedMs
	}
	return res, nil
}
