package experiments

import (
	"math"
	"math/rand"
	"time"

	"dive/internal/codec"
	"dive/internal/geom"
	"dive/internal/mvfield"
	"dive/internal/world"
)

// RotationErrorCDFs holds one estimator configuration's per-frame absolute
// errors of the estimated rotational speeds (rad/s) against the IMU truth.
type RotationErrorCDFs struct {
	Label     string
	OmegaXErr []geom.CDFPoint
	OmegaYErr []geom.CDFPoint
	MeanX     float64
	MeanY     float64
}

// Fig7Result compares R-sampling against random sampling (Figure 7).
type Fig7Result struct {
	Configs []RotationErrorCDFs
}

// rotationErrors runs one estimator over KITTI-flavored clips and collects
// absolute rotational-speed errors. It returns the mean wall time per
// estimate, which Figure 10 reuses.
func rotationErrors(clips []*world.Clip, est *mvfield.RotationEstimator, seed int64) (xErrs, yErrs []float64, meanTime float64, err error) {
	return rotationErrorsCfg(clips, est, seed, nil)
}

// rotationErrorsCfg is rotationErrors with a codec-config hook (used by the
// sub-pel ablation).
func rotationErrorsCfg(clips []*world.Clip, est *mvfield.RotationEstimator, seed int64, cfgFn func(*codec.Config)) (xErrs, yErrs []float64, meanTime float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	var elapsed time.Duration
	count := 0
	for _, clip := range clips {
		ccfg := codec.DefaultConfig(clip.W, clip.H)
		if cfgFn != nil {
			cfgFn(&ccfg)
		}
		enc, cerr := codec.NewEncoder(ccfg)
		if cerr != nil {
			return nil, nil, 0, cerr
		}
		for i, frame := range clip.Frames {
			mf := enc.AnalyzeMotion(frame)
			if _, eerr := enc.Encode(frame, codec.EncodeOptions{BaseQP: 16}); eerr != nil {
				return nil, nil, 0, eerr
			}
			if mf == nil || clip.Poses[i].State == world.MotionStatic {
				continue
			}
			field := mvfield.FromMotion(mf, clip.Focal, float64(clip.W)/2, float64(clip.H)/2, 0)
			t0 := time.Now()
			phiX, phiY, eerr := est.Estimate(field, geom.Vec2{}, rng)
			elapsed += time.Since(t0)
			if eerr != nil {
				continue
			}
			count++
			// Per-frame increments → rates.
			wx := phiX * clip.FPS
			wy := phiY * clip.FPS
			xErrs = append(xErrs, math.Abs(wx-clip.Poses[i].PitchRate))
			yErrs = append(yErrs, math.Abs(wy-clip.Poses[i].YawRate))
		}
	}
	if count > 0 {
		meanTime = elapsed.Seconds() / float64(count)
	}
	return xErrs, yErrs, meanTime, nil
}

// Fig7RSampling reproduces Figure 7: error CDFs of ω_x and ω_y for
// R-sampling with k=30 versus random sampling with k=30 and k=500.
func Fig7RSampling(scale Scale, seed int64) (*Fig7Result, error) {
	clips := KITTIClips(scale, seed)
	configs := []struct {
		label    string
		strategy mvfield.Sampling
		k        int
	}{
		{"R-sampling k=30", mvfield.RSampling, 30},
		{"random k=30", mvfield.RandomSampling, 30},
		{"random k=500", mvfield.RandomSampling, 500},
	}
	res := &Fig7Result{}
	for i, c := range configs {
		est := mvfield.NewRotationEstimator()
		est.K = c.k
		est.Strategy = c.strategy
		xe, ye, _, err := rotationErrors(clips, est, seed+int64(i)*101)
		if err != nil {
			return nil, err
		}
		res.Configs = append(res.Configs, RotationErrorCDFs{
			Label:     c.label,
			OmegaXErr: geom.EmpiricalCDF(xe),
			OmegaYErr: geom.EmpiricalCDF(ye),
			MeanX:     geom.Mean(xe),
			MeanY:     geom.Mean(ye),
		})
	}
	return res, nil
}

// RenderFig7 formats the comparison.
func RenderFig7(r *Fig7Result) *Table {
	t := &Table{
		Title:   "Fig 7: rotational speed estimation error (rad/s)",
		Columns: []string{"sampling", "mean |ωx err|", "P90 |ωx err|", "mean |ωy err|", "P90 |ωy err|"},
	}
	for _, c := range r.Configs {
		t.Rows = append(t.Rows, []string{
			c.Label,
			f3(c.MeanX), f3(cdfP(c.OmegaXErr, 90)),
			f3(c.MeanY), f3(cdfP(c.OmegaYErr, 90)),
		})
	}
	return t
}

// cdfP extracts the p-th percentile value from CDF points.
func cdfP(cdf []geom.CDFPoint, p float64) float64 {
	var vals []float64
	for _, pt := range cdf {
		vals = append(vals, pt.Value)
	}
	return geom.Percentile(vals, p)
}
