package experiments

import (
	"strconv"

	"dive/internal/core"
	"dive/internal/detect"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// Fig12Row is one (dataset, background QP) AP measurement with the
// foreground pinned at QP 0 in CRF mode — the foreground-extraction
// effectiveness study.
type Fig12Row struct {
	Dataset      string
	BackgroundQP int
	CarAP        float64
	PedAP        float64
}

// Fig12Foreground reproduces Figure 12: encode with the extracted
// foreground at QP 0 and sweep the background QP from 4 to 36 in steps of
// 8; AP should fall only slowly because the objects' pixels stay sharp.
func Fig12Foreground(scale Scale, seed int64) ([]Fig12Row, error) {
	rc, ns := Datasets(scale, seed)
	var rows []Fig12Row
	for _, w := range []Workload{rc, ns} {
		for qp := 4; qp <= 36; qp += 8 {
			bg := qp
			scheme := &sim.DiVE{ConfigFn: func(c *core.AgentConfig) {
				c.CRF = true
				c.CRFQP = 0
				c.AVE.Policy = core.DeltaFixed
				c.AVE.FixedDelta = bg
			}}
			var allDets, allGT [][]detect.Detection
			for ci, clip := range w.Clips {
				env := sim.NewEnv(seed + int64(ci+qp*17))
				// A fat pipe: this experiment isolates encoding quality
				// from transport effects.
				link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(200)), 0.012)
				res, err := scheme.Run(clip, link, env)
				if err != nil {
					return nil, err
				}
				allDets = append(allDets, res.Detections...)
				allGT = append(allGT, sim.OracleDetections(clip, env)...)
			}
			rows = append(rows, Fig12Row{
				Dataset:      w.Name,
				BackgroundQP: qp,
				CarAP:        metrics.AP(allDets, allGT, world.ClassCar, metrics.DefaultIoU),
				PedAP:        metrics.AP(allDets, allGT, world.ClassPedestrian, metrics.DefaultIoU),
			})
		}
	}
	return rows, nil
}

// RenderFig12 formats the sweep.
func RenderFig12(rows []Fig12Row) *Table {
	t := &Table{
		Title:   "Fig 12: foreground extraction effectiveness (foreground QP 0)",
		Columns: []string{"dataset", "background QP", "car AP", "ped AP"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Dataset, strconv.Itoa(r.BackgroundQP), f3(r.CarAP), f3(r.PedAP)})
	}
	return t
}
