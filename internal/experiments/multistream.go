package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dive/internal/codec"
	"dive/internal/obs"
	"dive/internal/world"
)

// Multi-stream packing: how many concurrent agent streams one edge-class
// host can encode. Each stream is an independent serial pooled encoder
// (Config.ReuseFrames) on its own goroutine — the fleet deployment shape,
// where a host packs one goroutine per camera rather than one wide pool per
// frame. The ladder N = 1/4/16/64 shows where aggregate frames/sec/core
// stops scaling and what the GC looks like as co-tenant density grows; with
// the steady state at 0 allocs/frame the collector should stay idle at
// every rung.

// StreamRung is one concurrency level of the packing ladder.
type StreamRung struct {
	Streams int `json:"streams"`
	// Frames is the aggregate frame count across all streams in the window.
	Frames int     `json:"frames"`
	Secs   float64 `json:"secs"`
	// FPS is the aggregate encode rate; FPSPerCore divides by GOMAXPROCS
	// (the cross-rung comparable number); FPSPerStream divides by Streams.
	FPS          float64 `json:"fps"`
	FPSPerCore   float64 `json:"fps_per_core"`
	FPSPerStream float64 `json:"fps_per_stream"`
	// AllocsPerFrame / AllocBytesPerFrame are process-wide heap deltas over
	// the window divided by aggregate frames.
	AllocsPerFrame     float64 `json:"allocs_per_frame"`
	AllocBytesPerFrame float64 `json:"alloc_bytes_per_frame"`
	// GCCycles and GCPauseP99Sec are the collector's co-tenancy cost at this
	// density.
	GCCycles      uint32  `json:"gc_cycles"`
	GCPauseP99Sec float64 `json:"gc_pause_p99_sec"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
}

// MultiStreamResult is the full packing ladder.
type MultiStreamResult struct {
	Width, Height int          `json:"-"`
	Rungs         []StreamRung `json:"rungs"`
}

// DefaultStreamLadder is the 1/4/16/64 packing ladder, capped at max
// (0 keeps the whole ladder). A cap between rungs becomes the top rung
// itself, so -streams always measures the exact density asked for.
func DefaultStreamLadder(max int) []int {
	all := []int{1, 4, 16, 64}
	if max <= 0 {
		return all
	}
	var out []int
	for _, n := range all {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 || out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// MultiStreamPacking renders one shared clip and runs the packing ladder:
// for each rung, N pooled serial encoders each stream the clip from a
// staggered offset for secs wall-clock seconds. runtimeLog, when non-nil,
// receives periodic obs.RuntimeStats snapshots as JSONL for the whole run —
// the series divedoctor's gc-pressure detectors consume.
func MultiStreamPacking(scale Scale, seed int64, secs float64, ladder []int, runtimeLog io.Writer) (MultiStreamResult, error) {
	if secs <= 0 {
		secs = 2
	}
	if len(ladder) == 0 {
		ladder = DefaultStreamLadder(0)
	}
	p := world.RobotCarLike()
	_, dur := scale.params()
	p.ClipDuration = dur
	clip := world.GenerateClip(p, seed)
	res := MultiStreamResult{Width: clip.W, Height: clip.H}

	// The sampler feeds divedoctor's gc-pressure detectors, which grade a
	// single steady state: it records only the highest-density rung's timed
	// window. Earlier rungs' smaller fleets would otherwise read as a live
	// heap ramp (each rung deliberately allocates a bigger encoder fleet —
	// sizing, not churn).
	sampler := startRuntimeSampler(runtimeLog)
	defer sampler.stop()
	noSampler := &runtimeSampler{}

	budget := time.Duration(secs * float64(time.Second))
	for i, n := range ladder {
		if i > 0 {
			// The previous rung's encoder fleet is dead but uncollected (the
			// steady state allocates nothing, so the GC never runs); collect
			// it so each rung's heap reflects its own fleet, not the sum.
			runtime.GC()
		}
		s := noSampler
		if i == len(ladder)-1 {
			s = sampler
		}
		rung, err := packStreams(clip, n, budget, s)
		if err != nil {
			return res, err
		}
		res.Rungs = append(res.Rungs, rung)
	}
	return res, nil
}

// runtimeSampler writes runtime snapshots to a JSONL sink every ~150 ms,
// but only while enabled — the packing harness enables it strictly inside
// each rung's timed window, so the series divedoctor grades contains only
// steady-state samples (fleet setup and warm-up allocate by design and
// would otherwise read as heap growth).
type runtimeSampler struct {
	enabled atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// startRuntimeSampler spawns the sampling goroutine. A nil w returns a
// sampler whose methods are all no-ops.
func startRuntimeSampler(w io.Writer) *runtimeSampler {
	s := &runtimeSampler{}
	if w == nil {
		return s
	}
	s.done = make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		enc := json.NewEncoder(w)
		tick := time.NewTicker(150 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if s.enabled.Load() {
					_ = enc.Encode(obs.CollectRuntimeStats())
				}
			case <-s.done:
				return
			}
		}
	}()
	return s
}

func (s *runtimeSampler) enable()  { s.enabled.Store(true) }
func (s *runtimeSampler) disable() { s.enabled.Store(false) }

func (s *runtimeSampler) stop() {
	if s.done == nil {
		return
	}
	close(s.done)
	s.wg.Wait()
}

// packStreams runs one rung: n pooled serial encoders over the shared
// (read-only) clip, with staggered frame offsets so the streams do not march
// in lockstep. Every stream warms up before the clock starts; a barrier
// releases all streams together and an atomic flag stops them after the
// wall-clock budget, always completing whole frames.
func packStreams(clip *world.Clip, n int, budget time.Duration, sampler *runtimeSampler) (StreamRung, error) {
	nframes := len(clip.Frames)
	encs := make([]*codec.Encoder, n)
	for s := range encs {
		cfg := codec.DefaultConfig(clip.W, clip.H)
		cfg.Workers = 1
		cfg.ReuseFrames = true
		enc, err := codec.NewEncoder(cfg)
		if err != nil {
			return StreamRung{}, err
		}
		encs[s] = enc
	}
	opts := codec.EncodeOptions{TargetBits: 150_000}
	warm := nframes
	if warm < 8 {
		warm = 8
	}

	var stopFlag atomic.Bool
	start := make(chan struct{})
	counts := make([]int, n)
	errs := make([]error, n)
	var ready, wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		ready.Add(1)
		go func(s int) {
			defer wg.Done()
			enc := encs[s]
			off := (s * 7) % nframes
			for i := 0; i < warm; i++ {
				if _, err := enc.Encode(clip.Frames[(off+i)%nframes], opts); err != nil {
					errs[s] = err
					ready.Done()
					return
				}
			}
			ready.Done()
			<-start
			for i := warm; !stopFlag.Load(); i++ {
				if _, err := enc.Encode(clip.Frames[(off+i)%nframes], opts); err != nil {
					errs[s] = err
					return
				}
				counts[s]++
			}
		}(s)
	}

	// Wait for every stream to finish its warm-up and park at the barrier,
	// so the timed window and the heap snapshot see only steady state.
	ready.Wait()
	before := obs.CollectRuntimeStats()
	sampler.enable()
	t0 := time.Now()
	close(start)
	time.Sleep(budget)
	stopFlag.Store(true)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	sampler.disable()
	after := obs.CollectRuntimeStats()

	rung := StreamRung{
		Streams:       n,
		Secs:          elapsed,
		GCCycles:      after.NumGC - before.NumGC,
		GCPauseP99Sec: after.GCPauseP99Sec,
		HeapLiveBytes: after.HeapLiveBytes,
	}
	for s, err := range errs {
		if err != nil {
			return rung, fmt.Errorf("stream %d: %w", s, err)
		}
		rung.Frames += counts[s]
	}
	if elapsed > 0 {
		rung.FPS = float64(rung.Frames) / elapsed
		rung.FPSPerCore = rung.FPS / float64(runtime.GOMAXPROCS(0))
		rung.FPSPerStream = rung.FPS / float64(n)
	}
	if rung.Frames > 0 {
		rung.AllocsPerFrame = float64(after.Mallocs-before.Mallocs) / float64(rung.Frames)
		rung.AllocBytesPerFrame = float64(after.TotalAllocBytes-before.TotalAllocBytes) / float64(rung.Frames)
	}
	return rung, nil
}

// RenderMultiStream formats the packing ladder as a table.
func RenderMultiStream(r MultiStreamResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Multi-stream packing, %dx%d", r.Width, r.Height),
		Columns: []string{"streams", "agg fps", "fps/core", "fps/stream",
			"allocs/frame", "GC cycles", "pause p99 (ms)"},
	}
	for _, g := range r.Rungs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", g.Streams),
			f1(g.FPS), f1(g.FPSPerCore), f1(g.FPSPerStream),
			fmt.Sprintf("%.2f", g.AllocsPerFrame),
			fmt.Sprintf("%d", g.GCCycles),
			fmt.Sprintf("%.2f", g.GCPauseP99Sec*1000),
		})
	}
	return t
}
