package experiments

import (
	"sync/atomic"

	"dive/internal/parallel"
)

// fanout is the harness fan-out pool. Experiments fan independent work —
// the clips inside one scheme evaluation, the (scheme, bandwidth) cells of
// a sweep — across it; every result lands in a pre-sized slot indexed by
// job, so tables are identical at any width.
var fanout atomic.Pointer[parallel.Pool]

// SetWorkers bounds the experiment harness fan-out. 0 sizes the pool to
// GOMAXPROCS, 1 forces sequential evaluation. cmd/divebench wires its
// -workers flag here.
func SetWorkers(n int) { fanout.Store(parallel.New(n)) }

// Workers reports the configured fan-out width (1 until SetWorkers is
// called: library callers stay fully sequential unless they opt in).
func Workers() int { return pool().Workers() }

func pool() *parallel.Pool {
	if p := fanout.Load(); p != nil {
		return p
	}
	return parallel.Serial()
}
