package experiments

import (
	"os"
	"testing"
)

func TestAblationRotation(t *testing.T) {
	rows, err := AblationRotation(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	RenderAblation(rows).Fprint(os.Stdout)
	// Recall with rotation elimination should not be worse overall.
	var with, without, nw, nwo float64
	for _, r := range rows {
		if r.Variant == "with rotation elimination" {
			with += r.Recall * float64(r.Frames)
			nw += float64(r.Frames)
		} else {
			without += r.Recall * float64(r.Frames)
			nwo += float64(r.Frames)
		}
	}
	if nw == 0 || nwo == 0 {
		t.Fatal("missing variant")
	}
	if with/nw+0.1 < without/nwo {
		t.Errorf("rotation elimination hurts recall: %v vs %v", with/nw, without/nwo)
	}
}
