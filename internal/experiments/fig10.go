package experiments

import (
	"dive/internal/geom"
	"dive/internal/mvfield"
)

// Fig10Row is one sample of the k sweep (Figure 10): estimation error and
// RANSAC time as functions of the number of R-sampled vectors.
type Fig10Row struct {
	K int
	// MeanErr is the mean absolute rotational-speed error (rad/s),
	// averaged over both axes.
	MeanErr float64
	// TimeMs is the mean wall time of one rotation estimate.
	TimeMs float64
}

// Fig10SampleCount sweeps k from 10 to 100 in steps of 5 (the paper's
// range) with R-sampling on the KITTI-flavored workload.
func Fig10SampleCount(scale Scale, seed int64) ([]Fig10Row, error) {
	clips := KITTIClips(scale, seed)
	step := 5
	if scale == ScaleSmoke {
		step = 30 // keep unit tests fast; the sweep shape is unchanged
	}
	var rows []Fig10Row
	for k := 10; k <= 100; k += step {
		est := mvfield.NewRotationEstimator()
		est.K = k
		est.Strategy = mvfield.RSampling
		xe, ye, meanTime, err := rotationErrors(clips, est, seed+int64(k))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{
			K:       k,
			MeanErr: (geom.Mean(xe) + geom.Mean(ye)) / 2,
			TimeMs:  meanTime * 1000,
		})
	}
	return rows, nil
}

// RenderFig10 formats the sweep.
func RenderFig10(rows []Fig10Row) *Table {
	t := &Table{
		Title:   "Fig 10: effect of the number of sampled points k",
		Columns: []string{"k", "mean |ω err| (rad/s)", "time (ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{f1(float64(r.K)), f3(r.MeanErr), f3(r.TimeMs)})
	}
	return t
}
