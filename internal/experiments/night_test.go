package experiments

import (
	"os"
	"testing"
)

func TestNightStudy(t *testing.T) {
	rows, err := NightStudy(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	RenderNight(rows).Fprint(os.Stdout)
	day, night := rows[0], rows[1]
	// The paper's observation, reproduced directionally: at night the
	// motion-vector signal degrades — foreground extraction fails more
	// often and covers objects less efficiently (recall per unit of mask
	// area). The full "all vectors zero" collapse needs the ISP denoising
	// and motion blur of real night footage, which the synthetic sensor
	// does not model; EXPERIMENTS.md documents the gap.
	dayEff := day.FGRecall / (day.MaskFraction + 1e-9)
	nightEff := night.FGRecall / (night.MaskFraction + 1e-9)
	if nightEff >= dayEff*0.92 {
		t.Errorf("night FG efficiency %v not below day %v", nightEff, dayEff)
	}
	if night.FESuccess >= day.FESuccess {
		t.Errorf("night FE success %v should be below day %v", night.FESuccess, day.FESuccess)
	}
}
