package experiments

import (
	"fmt"

	"dive/internal/baselines"
	"dive/internal/sim"
)

// EndToEndRow is one (scheme, bandwidth) end-to-end measurement.
type EndToEndRow struct {
	Dataset     string  `json:"dataset"`
	Scheme      string  `json:"scheme"`
	Bandwidth   float64 `json:"bandwidth_mbps"` // link capacity, Mbps
	MAP         float64 `json:"map"`
	CarAP       float64 `json:"car_ap"`
	PedAP       float64 `json:"ped_ap"`
	MeanRT      float64 `json:"mean_rt_sec"` // seconds
	P50RT       float64 `json:"p50_rt_sec"`
	P95RT       float64 `json:"p95_rt_sec"`
	BitrateMbps float64 `json:"bitrate_mbps"` // achieved uplink bitrate
	Frames      int     `json:"frames"`
}

// schemes returns the full comparison field of Section IV-G.
func schemes() []sim.Scheme {
	return []sim.Scheme{
		&sim.DiVE{},
		&baselines.O3{},
		&baselines.EAAR{},
		&baselines.DDS{},
	}
}

// endToEnd sweeps all schemes across bandwidths on one workload. The
// (bandwidth, scheme) cells are independent, so they fan across the harness
// pool into a slice pre-sized and indexed by cell — row order is identical
// to the serial double loop at any width. Each cell evaluates a fresh scheme
// instance so no state is shared across concurrent cells.
func endToEnd(w Workload, scale Scale, seed int64) ([]EndToEndRow, error) {
	bws := bandwidthSweep(scale)
	numSchemes := len(schemes())
	rows := make([]EndToEndRow, len(bws)*numSchemes)
	errs := make([]error, len(rows))
	pool().ForEach(len(rows), func(j int) {
		bw := bws[j/numSchemes]
		s := schemes()[j%numSchemes]
		res, err := runScheme(w, s, constTrace(bw), seed+int64(bw*131))
		if err != nil {
			errs[j] = err
			return
		}
		rows[j] = EndToEndRow{
			Dataset: w.Name, Scheme: s.Name(), Bandwidth: bw,
			MAP: res.MAP, CarAP: res.CarAP, PedAP: res.PedAP,
			MeanRT: res.MeanRT, P50RT: res.P50RT, P95RT: res.P95RT,
			BitrateMbps: res.BitrateMbps, Frames: res.Frames,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig16EndToEndRobotCar compares DiVE with O3, EAAR and DDS on the
// RobotCar-flavored workload across 1..5 Mbps (Figure 16).
func Fig16EndToEndRobotCar(scale Scale, seed int64) ([]EndToEndRow, error) {
	rc, _ := Datasets(scale, seed)
	return endToEnd(rc, scale, seed)
}

// Fig17EndToEndNuScenes is the same comparison on the nuScenes-flavored
// workload (Figure 17).
func Fig17EndToEndNuScenes(scale Scale, seed int64) ([]EndToEndRow, error) {
	_, ns := Datasets(scale, seed)
	return endToEnd(ns, scale, seed+500)
}

// RenderEndToEnd formats a comparison table.
func RenderEndToEnd(title string, rows []EndToEndRow) *Table {
	t := &Table{
		Title:   title,
		Columns: []string{"scheme", "bandwidth (Mbps)", "mAP", "car AP", "ped AP", "mean RT (ms)", "P95 RT (ms)"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Scheme, fmt.Sprintf("%.0f", r.Bandwidth),
			f3(r.MAP), f3(r.CarAP), f3(r.PedAP),
			f1(r.MeanRT * 1000), f1(r.P95RT * 1000),
		})
	}
	return t
}
