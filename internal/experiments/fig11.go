package experiments

import (
	"fmt"

	"dive/internal/core"
	"dive/internal/sim"
)

// Fig11Row is one (dataset, δ policy, bandwidth) mAP measurement.
type Fig11Row struct {
	Dataset   string
	Delta     string // "5", "15", "25" or "adaptive"
	Bandwidth float64
	MAP       float64
}

// Fig11QPAssignment sweeps the foreground/background QP delta — fixed 5,
// 15, 25 and the adaptive policy — across 1..5 Mbps on both datasets
// (Figure 11's Optimal QP Assignment study).
func Fig11QPAssignment(scale Scale, seed int64) ([]Fig11Row, error) {
	rc, ns := Datasets(scale, seed)
	policies := []struct {
		label string
		fn    func(*core.AgentConfig)
	}{
		{"5", fixedDelta(5)},
		{"15", fixedDelta(15)},
		{"25", fixedDelta(25)},
		{"adaptive", nil},
	}
	bandwidths := bandwidthSweep(scale)
	var rows []Fig11Row
	for _, w := range []Workload{rc, ns} {
		for _, pol := range policies {
			for _, bw := range bandwidths {
				scheme := &sim.DiVE{ConfigFn: pol.fn}
				res, err := runScheme(w, scheme, constTrace(bw), seed+int64(bw*1000))
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig11Row{
					Dataset: w.Name, Delta: pol.label,
					Bandwidth: bw, MAP: res.MAP,
				})
			}
		}
	}
	return rows, nil
}

// fixedDelta pins the AVE policy to a constant δ.
func fixedDelta(d int) func(*core.AgentConfig) {
	return func(c *core.AgentConfig) {
		c.AVE.Policy = core.DeltaFixed
		c.AVE.FixedDelta = d
	}
}

// bandwidthSweep returns the 1..5 Mbps axis (coarser at smoke scale).
func bandwidthSweep(scale Scale) []float64 {
	if scale == ScaleSmoke {
		return []float64{1, 3}
	}
	return []float64{1, 2, 3, 4, 5}
}

// RenderFig11 formats the sweep.
func RenderFig11(rows []Fig11Row) *Table {
	t := &Table{
		Title:   "Fig 11: optimal QP assignment (mAP by δ and bandwidth)",
		Columns: []string{"dataset", "delta", "bandwidth (Mbps)", "mAP"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Dataset, r.Delta, fmt.Sprintf("%.0f", r.Bandwidth), f3(r.MAP)})
	}
	return t
}
