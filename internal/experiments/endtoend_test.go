package experiments

import (
	"testing"
)

// TestFig9Smoke sweeps the ME methods at smoke scale; it is the slowest
// experiment test (ESA/TESA are exhaustive searches).
func TestFig9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive ME sweep skipped in -short")
	}
	rows, err := Fig9MotionEstimation(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 2 datasets × 5 methods
		t.Fatalf("rows = %d", len(rows))
	}
	byMethod := map[string]Fig9Row{}
	for _, r := range rows {
		if r.Dataset == "nuScenes" {
			byMethod[r.Method] = r
		}
		if r.MAP < 0 || r.MAP > 1 {
			t.Errorf("%+v: mAP out of range", r)
		}
		if r.TimeMs <= 0 {
			t.Errorf("%+v: no time measured", r)
		}
	}
	// Cost ordering: exhaustive searches must be slower than hexagon.
	if byMethod["esa"].TimeMs < byMethod["hex"].TimeMs {
		t.Errorf("esa (%v ms) faster than hex (%v ms)", byMethod["esa"].TimeMs, byMethod["hex"].TimeMs)
	}
	if byMethod["tesa"].TimeMs < byMethod["esa"].TimeMs*0.8 {
		t.Errorf("tesa (%v ms) should not be much faster than esa (%v ms)",
			byMethod["tesa"].TimeMs, byMethod["esa"].TimeMs)
	}
	RenderFig9(rows)
}

func TestFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth sweep skipped in -short")
	}
	rows, err := Fig11QPAssignment(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 { // 2 datasets × 4 policies × 2 bandwidths (smoke)
		t.Fatalf("rows = %d", len(rows))
	}
	// mAP at 3 Mbps should be >= mAP at 1 Mbps for the adaptive policy.
	var lo, hi float64
	for _, r := range rows {
		if r.Dataset == "nuScenes" && r.Delta == "adaptive" {
			if r.Bandwidth == 1 {
				lo = r.MAP
			} else if r.Bandwidth == 3 {
				hi = r.MAP
			}
		}
	}
	if hi+0.05 < lo {
		t.Errorf("adaptive mAP fell with more bandwidth: %v @1Mbps vs %v @3Mbps", lo, hi)
	}
	RenderFig11(rows)
}

func TestFig16Fig17Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison skipped in -short")
	}
	rows16, err := Fig16EndToEndRobotCar(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	rows17, err := Fig17EndToEndNuScenes(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]EndToEndRow{rows16, rows17} {
		if len(rows) != 8 { // 2 bandwidths × 4 schemes at smoke scale
			t.Fatalf("rows = %d", len(rows))
		}
		seen := map[string]bool{}
		for _, r := range rows {
			seen[r.Scheme] = true
			if r.MAP < 0 || r.MAP > 1 || r.MeanRT <= 0 {
				t.Errorf("%+v implausible", r)
			}
		}
		for _, s := range []string{"DiVE", "O3", "EAAR", "DDS"} {
			if !seen[s] {
				t.Errorf("scheme %s missing", s)
			}
		}
		// Directional checks at 3 Mbps (the easier setting): DiVE's mAP
		// should top the field, and DDS should be the slowest.
		byScheme := map[string]EndToEndRow{}
		for _, r := range rows {
			if r.Bandwidth == 3 {
				byScheme[r.Scheme] = r
			}
		}
		dive := byScheme["DiVE"]
		for _, s := range []string{"O3", "EAAR"} {
			if byScheme[s].MAP > dive.MAP+0.02 {
				t.Errorf("%s mAP %v beats DiVE %v at 3 Mbps", s, byScheme[s].MAP, dive.MAP)
			}
		}
		if byScheme["DDS"].MeanRT < dive.MeanRT {
			t.Errorf("DDS RT %v below DiVE %v", byScheme["DDS"].MeanRT, dive.MeanRT)
		}
	}
	RenderEndToEnd("Fig 16", rows16)
	RenderEndToEnd("Fig 17", rows17)
}
