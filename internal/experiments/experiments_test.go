package experiments

import (
	"strings"
	"testing"
)

const testSeed = 424242

func TestTableI(t *testing.T) {
	rows := TableI(ScaleSmoke, testSeed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Frames == 0 || r.Videos == 0 {
			t.Errorf("%s: empty dataset", r.Name)
		}
		if r.Cars == 0 {
			t.Errorf("%s: no car annotations", r.Name)
		}
	}
	// nuScenes at 12 FPS, RobotCar at 16, as in the paper.
	if rows[0].Name != "nuScenes" || rows[0].FPS != 12 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[1].Name != "RobotCar" || rows[1].FPS != 16 {
		t.Errorf("row1 = %+v", rows[1])
	}
	out := &strings.Builder{}
	RenderTableI(rows).Fprint(out)
	if !strings.Contains(out.String(), "nuScenes") {
		t.Error("render missing dataset name")
	}
}

func TestFig6(t *testing.T) {
	r, err := Fig6EgoMotion(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MovingCDF) == 0 {
		t.Fatal("no moving frames measured")
	}
	if len(r.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	// The η rule should classify clearly better than chance.
	if r.Accuracy < 0.8 {
		t.Errorf("η rule accuracy = %v", r.Accuracy)
	}
	// Moving frames should generally have higher η than stopped ones.
	if len(r.StoppedCDF) > 0 {
		medStopped := cdfP(r.StoppedCDF, 50)
		medMoving := cdfP(r.MovingCDF, 50)
		if medMoving <= medStopped {
			t.Errorf("median η moving %v <= stopped %v", medMoving, medStopped)
		}
	}
	out := &strings.Builder{}
	RenderFig6(r).Fprint(out)
	if !strings.Contains(out.String(), "moving") {
		t.Error("render incomplete")
	}
}

func TestFig7(t *testing.T) {
	r, err := Fig7RSampling(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Configs) != 3 {
		t.Fatalf("configs = %d", len(r.Configs))
	}
	for _, c := range r.Configs {
		if len(c.OmegaYErr) == 0 {
			t.Fatalf("%s: no measurements", c.Label)
		}
		if c.MeanY < 0 || c.MeanY > 1 {
			t.Errorf("%s: implausible mean yaw error %v", c.Label, c.MeanY)
		}
	}
	// The paper's claim: R-sampling with 30 points beats random with 30.
	if r.Configs[0].MeanY > r.Configs[1].MeanY {
		t.Errorf("R-sampling k=30 (%v) worse than random k=30 (%v)",
			r.Configs[0].MeanY, r.Configs[1].MeanY)
	}
	out := &strings.Builder{}
	RenderFig7(r).Fprint(out)
	if !strings.Contains(out.String(), "R-sampling") {
		t.Error("render incomplete")
	}
}

func TestFig10(t *testing.T) {
	rows, err := Fig10SampleCount(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeMs < 0 {
			t.Errorf("k=%d: negative time", r.K)
		}
		if r.MeanErr < 0 {
			t.Errorf("k=%d: negative error", r.K)
		}
	}
	// Error at large k should not be dramatically worse than at k=10.
	if rows[len(rows)-1].MeanErr > rows[0].MeanErr*3+0.05 {
		t.Errorf("error grows with k: %v -> %v", rows[0].MeanErr, rows[len(rows)-1].MeanErr)
	}
	RenderFig10(rows)
}

func TestFig12(t *testing.T) {
	rows, err := Fig12Foreground(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 2 datasets × 5 QPs
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.CarAP < 0 || r.CarAP > 1 || r.PedAP < 0 || r.PedAP > 1 {
			t.Errorf("%+v: AP out of range", r)
		}
	}
	// The headline claim: with the foreground protected at QP 0, car AP
	// at background QP 20 stays high.
	for _, r := range rows {
		if r.BackgroundQP == 20 && r.CarAP < 0.5 {
			t.Errorf("%s: car AP %v at bg QP 20, foreground protection failed", r.Dataset, r.CarAP)
		}
	}
	RenderFig12(rows)
}

func TestFig13(t *testing.T) {
	rows, err := Fig13OfflineTracking(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 datasets × 2 intervals at smoke scale
		t.Fatalf("rows = %d", len(rows))
	}
	better := 0
	for _, r := range rows {
		if r.MAPWith >= r.MAPWithout {
			better++
		}
	}
	// MOT should help (or tie) in most settings.
	if better < len(rows)/2 {
		t.Errorf("MOT helped in only %d/%d settings", better, len(rows))
	}
	RenderFig13(rows)
}

func TestFig14(t *testing.T) {
	rows, err := Fig14MotionStates(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.State] = true
		if r.Frames == 0 {
			t.Errorf("%+v: zero frames", r)
		}
	}
	if !seen["straight"] {
		t.Error("no straight-motion frames in a driving workload")
	}
	RenderFig14(rows)
}

func TestScaleString(t *testing.T) {
	if ScaleSmoke.String() != "smoke" || ScaleDefault.String() != "default" ||
		ScaleFull.String() != "full" || Scale(0).String() != "unknown" {
		t.Error("scale names wrong")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
	}
	out := &strings.Builder{}
	tab.Fprint(out)
	s := out.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "long-column") || !strings.Contains(s, "yyyy") {
		t.Errorf("table output:\n%s", s)
	}
}
