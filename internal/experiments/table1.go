package experiments

import (
	"strconv"

	"dive/internal/world"
)

// Table1Row summarizes one dataset (the paper's Table I).
type Table1Row struct {
	Name        string
	FPS         float64
	Videos      int
	Frames      int
	Cars        int
	Pedestrians int
}

// TableI generates both datasets and counts annotated object instances,
// reproducing the dataset-summary table.
func TableI(scale Scale, seed int64) []Table1Row {
	rc, ns := Datasets(scale, seed)
	return []Table1Row{summarize(ns), summarize(rc)}
}

func summarize(w Workload) Table1Row {
	row := Table1Row{Name: w.Name}
	for _, clip := range w.Clips {
		row.Videos++
		row.Frames += clip.NumFrames()
		if clip.FPS > row.FPS {
			row.FPS = clip.FPS
		}
		for _, gts := range clip.GT {
			for _, gt := range gts {
				switch gt.Class {
				case world.ClassCar:
					row.Cars++
				case world.ClassPedestrian:
					row.Pedestrians++
				}
			}
		}
	}
	return row
}

// Render formats the rows as a printable table.
func RenderTableI(rows []Table1Row) *Table {
	t := &Table{
		Title:   "Table I: Summary of datasets",
		Columns: []string{"Name", "FPS", "#videos", "#frames", "#cars", "#peds"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, f1(r.FPS),
			strconv.Itoa(r.Videos), strconv.Itoa(r.Frames),
			strconv.Itoa(r.Cars), strconv.Itoa(r.Pedestrians),
		})
	}
	return t
}
