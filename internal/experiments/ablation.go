package experiments

import (
	"dive/internal/codec"
	"dive/internal/core"
	"dive/internal/geom"
	"dive/internal/mvfield"
	"dive/internal/world"
)

// AblationRow measures foreground-extraction quality for one DiVE variant
// on one ego motion state: how much of the annotated objects the extracted
// foreground covers (recall) at what mask cost (fraction of the frame kept
// at full quality).
type AblationRow struct {
	Variant string
	State   string
	// Recall is the mean fraction of ground-truth box area covered by the
	// foreground mask.
	Recall float64
	// MaskFraction is the mean foreground share of the frame.
	MaskFraction float64
	Frames       int
}

// AblationRotation quantifies the value of rotational-component elimination
// (DESIGN.md §5): foreground recall with and without the preprocessing
// stage, split by motion state. The gap should concentrate in turning
// segments, where raw vectors violate Observation 1.
func AblationRotation(scale Scale, seed int64) ([]AblationRow, error) {
	_, ns := Datasets(scale, seed)
	variants := []struct {
		name    string
		disable bool
	}{
		{"with rotation elimination", false},
		{"without (raw vectors)", true},
	}
	var rows []AblationRow
	for _, v := range variants {
		type acc struct {
			recall, mask float64
			n            int
		}
		byState := map[world.MotionState]*acc{
			world.MotionStatic:   {},
			world.MotionStraight: {},
			world.MotionTurning:  {},
		}
		for _, clip := range ns.Clips {
			cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
			cfg.DisableRotation = v.disable
			cfg.Seed = seed
			agent, err := core.NewAgent(cfg)
			if err != nil {
				return nil, err
			}
			for i, frame := range clip.Frames {
				now := float64(i) / clip.FPS
				fr, err := agent.ProcessFrame(frame, now)
				if err != nil {
					return nil, err
				}
				agent.OnTransmitComplete(now, now+0.02, fr.Encoded.NumBits)
				if fr.Foreground == nil || len(clip.GT[i]) == 0 {
					continue
				}
				a := byState[clip.Poses[i].State]
				a.recall += maskRecall(fr.Foreground, clip.GT[i])
				a.mask += fr.Foreground.Fraction()
				a.n++
			}
		}
		for _, st := range []world.MotionState{world.MotionStatic, world.MotionStraight, world.MotionTurning} {
			a := byState[st]
			if a.n == 0 {
				continue
			}
			rows = append(rows, AblationRow{
				Variant:      v.name,
				State:        st.String(),
				Recall:       a.recall / float64(a.n),
				MaskFraction: a.mask / float64(a.n),
				Frames:       a.n,
			})
		}
	}
	return rows, nil
}

// maskRecall returns the fraction of annotated object area covered by the
// foreground macroblock mask.
func maskRecall(fg *core.ForegroundResult, gts []world.GTBox) float64 {
	const mb = 16
	covered, total := 0, 0
	for _, gt := range gts {
		for y := gt.Box.MinY; y < gt.Box.MaxY; y += 4 {
			for x := gt.Box.MinX; x < gt.Box.MaxX; x += 4 {
				bx, by := x/mb, y/mb
				if bx < 0 || by < 0 || bx >= fg.MBW || by >= fg.MBH {
					continue
				}
				total++
				if fg.Mask[by*fg.MBW+bx] {
					covered++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// RenderAblation formats the rotation ablation.
func RenderAblation(rows []AblationRow) *Table {
	t := &Table{
		Title:   "Ablation: rotational-component elimination (foreground recall by state)",
		Columns: []string{"variant", "state", "FG recall", "mask fraction", "frames"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Variant, r.State, f3(r.Recall), f3(r.MaskFraction), f1(float64(r.Frames)),
		})
	}
	return t
}

// SubPelAblationRow compares rotation-estimation accuracy with half-pel
// versus integer motion vectors (DESIGN.md §5): sub-pel precision roughly
// halves the quantization noise Eq. (7) sees.
type SubPelAblationRow struct {
	Variant string
	// MeanErrX and MeanErrY are mean absolute rotational-speed errors
	// (rad/s) about the pitch and yaw axes.
	MeanErrX, MeanErrY float64
}

// AblationSubPel measures rotation error with the codec's half-pel motion
// vectors enabled and disabled on the KITTI-flavored workload.
func AblationSubPel(scale Scale, seed int64) ([]SubPelAblationRow, error) {
	clips := KITTIClips(scale, seed)
	variants := []struct {
		name   string
		subpel bool
	}{
		{"half-pel MVs", true},
		{"integer MVs", false},
	}
	var rows []SubPelAblationRow
	for _, v := range variants {
		est := mvfield.NewRotationEstimator()
		sp := v.subpel
		xe, ye, _, err := rotationErrorsCfg(clips, est, seed+77, func(c *codec.Config) {
			c.SubPel = sp
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SubPelAblationRow{
			Variant:  v.name,
			MeanErrX: geom.Mean(xe),
			MeanErrY: geom.Mean(ye),
		})
	}
	return rows, nil
}

// RenderSubPelAblation formats the sub-pel ablation.
func RenderSubPelAblation(rows []SubPelAblationRow) *Table {
	t := &Table{
		Title:   "Ablation: half-pel vs integer motion vectors (rotation error, rad/s)",
		Columns: []string{"variant", "mean |ωx err|", "mean |ωy err|"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Variant, f3(r.MeanErrX), f3(r.MeanErrY)})
	}
	return t
}
