package experiments

import (
	"fmt"

	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// Fig13Row is one (dataset, outage interval) mAP pair with and without
// motion-vector-based offline tracking.
type Fig13Row struct {
	Dataset    string
	IntervalS  float64
	MAPWith    float64
	MAPWithout float64
}

// Fig13OfflineTracking reproduces Figure 13: a 2 Mbps link with 1 s
// outages whose interval sweeps 5..20 s; MOT on vs off. Clips are rendered
// long enough to contain several outages.
func Fig13OfflineTracking(scale Scale, seed int64) ([]Fig13Row, error) {
	intervals := []float64{5, 10, 15, 20}
	dur := 22.0
	clipsPer := 1
	switch scale {
	case ScaleSmoke:
		intervals = []float64{2.5, 5}
		dur = 6
	case ScaleFull:
		clipsPer = 2
	}
	rp := world.RobotCarLike()
	rp.ClipDuration = dur
	np := world.NuScenesLike()
	np.ClipDuration = dur
	workloads := []Workload{
		{Name: rp.Name, Clips: world.GenerateDataset(rp, seed+31, clipsPer)},
		{Name: np.Name, Clips: world.GenerateDataset(np, seed+32, clipsPer)},
	}

	var rows []Fig13Row
	for _, w := range workloads {
		for _, interval := range intervals {
			iv := interval
			traceFn := func(int) netsim.Trace {
				return &netsim.OutageTrace{
					Inner:    netsim.ConstantTrace(netsim.Mbps(2)),
					Start:    1.5,
					Interval: iv,
					Duration: 1.0,
				}
			}
			withMOT, err := runScheme(w, &sim.DiVE{}, traceFn, seed+int64(iv*10))
			if err != nil {
				return nil, err
			}
			withoutMOT, err := runScheme(w, &sim.DiVE{DisableMOT: true}, traceFn, seed+int64(iv*10))
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig13Row{
				Dataset:    w.Name,
				IntervalS:  iv,
				MAPWith:    withMOT.MAP,
				MAPWithout: withoutMOT.MAP,
			})
		}
	}
	return rows, nil
}

// RenderFig13 formats the comparison.
func RenderFig13(rows []Fig13Row) *Table {
	t := &Table{
		Title:   "Fig 13: MV-based offline tracking under 1s link outages (2 Mbps)",
		Columns: []string{"dataset", "outage interval (s)", "mAP with MOT", "mAP without"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmt.Sprintf("%.1f", r.IntervalS), f3(r.MAPWith), f3(r.MAPWithout),
		})
	}
	return t
}
