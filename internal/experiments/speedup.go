package experiments

import (
	"runtime"
	"time"

	"dive/internal/codec"
	"dive/internal/world"
)

// SpeedupResult reports encoder throughput serial vs parallel on identical
// input — the speedup the deterministic parallel execution layer delivers on
// this machine. Bitstreams are bit-exact between the two runs, so this is a
// pure wall-clock comparison.
type SpeedupResult struct {
	Workers    int     `json:"workers"`
	SerialMs   float64 `json:"serial_ms_per_frame"`
	ParallelMs float64 `json:"parallel_ms_per_frame"`
	Speedup    float64 `json:"speedup"`
}

// encodeClipMs encodes every frame of the clip with a fixed-width encoder
// pool and returns the mean wall-clock milliseconds per frame.
func encodeClipMs(clip *world.Clip, workers int) (float64, error) {
	cfg := codec.DefaultConfig(clip.W, clip.H)
	cfg.Workers = workers
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	for _, f := range clip.Frames {
		if _, err := enc.Encode(f, codec.EncodeOptions{TargetBits: 150_000}); err != nil {
			return 0, err
		}
	}
	return time.Since(t0).Seconds() * 1000 / float64(len(clip.Frames)), nil
}

// EncodeSpeedup renders one RobotCar-flavored clip and encodes it twice —
// once with a width-1 pool, once with the given width (0 = GOMAXPROCS) —
// and reports the measured per-frame times. divebench embeds the result in
// its -json output.
func EncodeSpeedup(scale Scale, seed int64, workers int) (SpeedupResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := world.RobotCarLike()
	_, dur := scale.params()
	p.ClipDuration = dur
	clip := world.GenerateClip(p, seed)
	res := SpeedupResult{Workers: workers}
	var err error
	if res.SerialMs, err = encodeClipMs(clip, 1); err != nil {
		return res, err
	}
	if res.ParallelMs, err = encodeClipMs(clip, workers); err != nil {
		return res, err
	}
	if res.ParallelMs > 0 {
		res.Speedup = res.SerialMs / res.ParallelMs
	}
	return res, nil
}
