package experiments

import (
	"os"
	"testing"
)

func TestAblationSubPel(t *testing.T) {
	rows, err := AblationSubPel(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	RenderSubPelAblation(rows).Fprint(os.Stdout)
	// Half-pel vectors should not be clearly worse than integer ones.
	if rows[0].MeanErrY > rows[1].MeanErrY*1.5+0.01 {
		t.Errorf("half-pel yaw error %v much worse than integer %v", rows[0].MeanErrY, rows[1].MeanErrY)
	}
}
