package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dive/internal/doctor"
)

func TestDefaultStreamLadder(t *testing.T) {
	cases := []struct {
		max  int
		want []int
	}{
		{0, []int{1, 4, 16, 64}},
		{64, []int{1, 4, 16, 64}},
		{4, []int{1, 4}},
		{5, []int{1, 4, 5}},
		{1, []int{1}},
		{3, []int{1, 3}},
		{2, []int{1, 2}},
	}
	for _, c := range cases {
		got := DefaultStreamLadder(c.max)
		if len(got) != len(c.want) {
			t.Fatalf("ladder(%d) = %v, want %v", c.max, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ladder(%d) = %v, want %v", c.max, got, c.want)
			}
		}
	}
}

func TestMultiStreamPacking(t *testing.T) {
	var log bytes.Buffer
	res, err := MultiStreamPacking(ScaleSmoke, testSeed, 0.3, []int{1, 2}, &log)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rungs) != 2 {
		t.Fatalf("rungs = %d, want 2", len(res.Rungs))
	}
	for _, g := range res.Rungs {
		if g.Frames <= 0 || g.FPS <= 0 || g.FPSPerCore <= 0 {
			t.Errorf("rung %d: empty measurement %+v", g.Streams, g)
		}
		if g.FPSPerStream <= 0 {
			t.Errorf("rung %d: fps/stream = %f", g.Streams, g.FPSPerStream)
		}
	}
	if res.Rungs[0].Streams != 1 || res.Rungs[1].Streams != 2 {
		t.Errorf("rung order: %d, %d", res.Rungs[0].Streams, res.Rungs[1].Streams)
	}
	// The runtime log must parse as the JSONL series divedoctor consumes
	// and cover only the final rung's steady window.
	samples, err := doctor.ReadRuntimeSamples(&log)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("runtime log is empty")
	}
	for i, s := range samples {
		if s.HeapLiveBytes == 0 || s.GOMAXPROCS == 0 {
			t.Errorf("sample %d looks empty: %+v", i, s)
		}
	}

	table := RenderMultiStream(res)
	var sb strings.Builder
	table.Fprint(&sb)
	if !strings.Contains(sb.String(), "Multi-stream packing") {
		t.Error("render missing title")
	}
}

func TestTransformParity(t *testing.T) {
	res, err := TransformParity(ScaleSmoke, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no parity rows")
	}
	// The codec-level fidelity gate: decoded PSNR of the two kernel paths
	// must agree within 0.5 dB, and the rate-controlled bitrate within 2%
	// at every bandwidth (the sim-level mAP is noisy at smoke scale, so it
	// is reported but not gated here).
	if d := res.FixedPSNR - res.RefPSNR; d < -0.5 || d > 0.5 {
		t.Errorf("PSNR gap %.3f dB (fixed %.2f, ref %.2f)", d, res.FixedPSNR, res.RefPSNR)
	}
	if res.FixedPSNR < 30 {
		t.Errorf("fixed PSNR %.2f dB implausibly low", res.FixedPSNR)
	}
	if res.MaxAbsBitrateRel > 0.02 {
		t.Errorf("bitrate diverges %.2f%% from float reference", res.MaxAbsBitrateRel*100)
	}
	for _, row := range res.Rows {
		if row.FixedMAP <= 0 || row.RefMAP <= 0 {
			t.Errorf("bw %.0f: empty AP row %+v", row.Bandwidth, row)
		}
	}
}
