// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV) on the synthetic substrate: one function per
// result, returning typed rows that cmd/divebench prints and bench_test.go
// wraps as benchmarks. All experiments are deterministic in their seeds.
package experiments

import (
	"fmt"
	"io"

	"dive/internal/world"
)

// Scale trades experiment fidelity for runtime.
type Scale int

// Scales.
const (
	// ScaleSmoke is for unit tests: one short clip per dataset.
	ScaleSmoke Scale = iota + 1
	// ScaleDefault balances fidelity and runtime for interactive runs.
	ScaleDefault
	// ScaleFull is the paper-shaped configuration.
	ScaleFull
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmoke:
		return "smoke"
	case ScaleDefault:
		return "default"
	case ScaleFull:
		return "full"
	default:
		return "unknown"
	}
}

// params returns clips-per-dataset and clip duration for a scale.
func (s Scale) params() (clips int, duration float64) {
	switch s {
	case ScaleSmoke:
		return 1, 2.0
	case ScaleFull:
		return 4, 8.0
	default:
		return 2, 4.0
	}
}

// Workload is one dataset's clip collection.
type Workload struct {
	Name  string
	Clips []*world.Clip
}

// BaseSeed is the default experiment seed; every experiment derives its
// sub-seeds from it.
const BaseSeed = 20250706

// Datasets renders the two evaluation workloads (Section IV-A): a
// RobotCar-flavored and a nuScenes-flavored set.
func Datasets(scale Scale, seed int64) (robotcar, nuscenes Workload) {
	n, dur := scale.params()
	rp := world.RobotCarLike()
	rp.ClipDuration = dur
	np := world.NuScenesLike()
	np.ClipDuration = dur
	return Workload{Name: rp.Name, Clips: world.GenerateDataset(rp, seed, n)},
		Workload{Name: np.Name, Clips: world.GenerateDataset(np, seed+1_000_000, n)}
}

// KITTIClips renders the rotation-estimation workload (with IMU truth).
func KITTIClips(scale Scale, seed int64) []*world.Clip {
	n, dur := scale.params()
	kp := world.KITTILike()
	kp.ClipDuration = dur
	return world.GenerateDataset(kp, seed+2_000_000, n)
}

// Table is a generic printable result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Columns)
	for i, wd := range widths {
		for j := 0; j < wd; j++ {
			fmt.Fprint(w, "-")
		}
		if i < len(widths)-1 {
			fmt.Fprint(w, "  ")
		}
	}
	fmt.Fprintln(w)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// f3 formats a float with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats a float with 1 decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
