package experiments

import (
	"runtime"
	"time"

	"dive/internal/codec"
	"dive/internal/obs"
	"dive/internal/world"
)

// ThroughputRun is one timed streaming-encode run: an encoder kept hot for a
// wall-clock budget, fed the clip's frames in a cycle, with the Go heap
// observed through runtime/metrics deltas. AllocsPerFrame is the number the
// allocation-free steady-state work is graded against: the pooled encoder
// should hold it at (or within rounding of) zero.
type ThroughputRun struct {
	Frames     int     `json:"frames"`
	Secs       float64 `json:"secs"`
	FPS        float64 `json:"fps"`
	FPSPerCore float64 `json:"fps_per_core"`
	// AllocsPerFrame / AllocBytesPerFrame are heap allocation deltas over
	// the run divided by frames encoded (cumulative /gc/heap/allocs deltas,
	// so they include everything the loop touched, not just the encoder).
	AllocsPerFrame     float64 `json:"allocs_per_frame"`
	AllocBytesPerFrame float64 `json:"alloc_bytes_per_frame"`
	// GCCycles is how many collections ran during the window.
	GCCycles uint32 `json:"gc_cycles"`
	// Runtime is the runtime snapshot at the end of the run (live heap,
	// GC pause p99, goroutines).
	Runtime obs.RuntimeStats `json:"runtime"`
}

// ThroughputResult compares sustained streaming-encode throughput of the
// default (fresh-allocating) encoder against the pooled steady-state path
// (Config.ReuseFrames), both serial, on identical input. Bitstreams are
// bit-exact between the two modes, so the FPS ratio isolates what buffer
// reuse buys: fewer allocations, less GC co-tenancy, steadier frame times.
type ThroughputResult struct {
	Width, Height int           `json:"-"`
	Fresh         ThroughputRun `json:"fresh"`
	Pooled        ThroughputRun `json:"pooled"`
	// PooledSpeedup is Pooled.FPS / Fresh.FPS.
	PooledSpeedup float64 `json:"pooled_speedup"`
}

// streamEncode runs a streaming encode loop over the clip for at least the
// given wall-clock duration (always completing whole frames) and reports the
// measured run. reuse selects the pooled steady-state path. A handful of
// warm-up frames run before the clock starts so pool fills and one-time
// sizing do not count against the steady state.
func streamEncode(clip *world.Clip, dur time.Duration, reuse bool) (ThroughputRun, error) {
	cfg := codec.DefaultConfig(clip.W, clip.H)
	cfg.Workers = 1
	cfg.ReuseFrames = reuse
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		return ThroughputRun{}, err
	}
	opts := codec.EncodeOptions{TargetBits: 150_000}
	n := len(clip.Frames)
	// Warm-up: one full cycle (at least 8 frames) fills the pools and grows
	// every buffer to its steady-state size.
	warm := n
	if warm < 8 {
		warm = 8
	}
	for i := 0; i < warm; i++ {
		if _, err := enc.Encode(clip.Frames[i%n], opts); err != nil {
			return ThroughputRun{}, err
		}
	}

	before := obs.CollectRuntimeStats()
	t0 := time.Now()
	frames := 0
	for time.Since(t0) < dur {
		if _, err := enc.Encode(clip.Frames[frames%n], opts); err != nil {
			return ThroughputRun{}, err
		}
		frames++
	}
	elapsed := time.Since(t0).Seconds()
	after := obs.CollectRuntimeStats()

	run := ThroughputRun{
		Frames:   frames,
		Secs:     elapsed,
		GCCycles: after.NumGC - before.NumGC,
		Runtime:  after,
	}
	if elapsed > 0 {
		run.FPS = float64(frames) / elapsed
		run.FPSPerCore = run.FPS / float64(runtime.GOMAXPROCS(0))
	}
	if frames > 0 {
		run.AllocsPerFrame = float64(after.Mallocs-before.Mallocs) / float64(frames)
		run.AllocBytesPerFrame = float64(after.TotalAllocBytes-before.TotalAllocBytes) / float64(frames)
	}
	return run, nil
}

// SustainedThroughput renders one RobotCar-flavored clip and streams it
// through a serial encoder for secs wall-clock seconds twice — default
// allocation behavior, then the pooled steady-state path — and reports
// sustained frames/sec/core plus per-frame heap allocation rates for both.
// divebench -throughput embeds the result in its -json output.
func SustainedThroughput(scale Scale, seed int64, secs float64) (ThroughputResult, error) {
	if secs <= 0 {
		secs = 3
	}
	p := world.RobotCarLike()
	_, dur := scale.params()
	p.ClipDuration = dur
	clip := world.GenerateClip(p, seed)
	res := ThroughputResult{Width: clip.W, Height: clip.H}
	budget := time.Duration(secs * float64(time.Second))
	var err error
	if res.Fresh, err = streamEncode(clip, budget, false); err != nil {
		return res, err
	}
	if res.Pooled, err = streamEncode(clip, budget, true); err != nil {
		return res, err
	}
	if res.Fresh.FPS > 0 {
		res.PooledSpeedup = res.Pooled.FPS / res.Fresh.FPS
	}
	return res, nil
}
