package experiments

import (
	"dive/internal/detect"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/sim"
	"dive/internal/world"
)

// EvalResult aggregates one (scheme, workload, network) evaluation.
type EvalResult struct {
	Scheme      string
	Dataset     string
	MAP         float64
	CarAP       float64
	PedAP       float64
	MeanRT      float64 // seconds
	P50RT       float64
	P95RT       float64
	BitsSent    int
	Frames      int
	ClipSeconds float64 // summed clip durations
	BitrateMbps float64 // BitsSent over ClipSeconds
}

// clipOutcome is one clip's evaluation, produced into a pre-sized per-clip
// slot so concurrent evaluation aggregates in the same order as the serial
// loop (float summation order included).
type clipOutcome struct {
	dets, gt [][]detect.Detection
	rts      []float64
	bits     int
	frames   int
	seconds  float64
	err      error
}

// runScheme evaluates a scheme over every clip of a workload; traceFn
// builds the bandwidth trace per clip (fresh link state per clip). Clips are
// independent — every scheme builds its per-run pipeline state inside Run —
// and fan across the harness pool.
func runScheme(w Workload, scheme sim.Scheme, traceFn func(clipIdx int) netsim.Trace, envSeed int64) (EvalResult, error) {
	out := EvalResult{Scheme: scheme.Name(), Dataset: w.Name}
	outs := make([]clipOutcome, len(w.Clips))
	pool().ForEach(len(w.Clips), func(ci int) {
		clip := w.Clips[ci]
		env := sim.NewEnv(envSeed + int64(ci)*131071)
		link := netsim.NewLink(traceFn(ci), 0.012)
		res, err := scheme.Run(clip, link, env)
		if err != nil {
			outs[ci].err = err
			return
		}
		outs[ci] = clipOutcome{
			dets: res.Detections, gt: sim.OracleDetections(clip, env),
			rts: res.ResponseTimes, bits: res.TotalBits(),
			frames:  clip.NumFrames(),
			seconds: float64(clip.NumFrames()) / clip.FPS,
		}
	})
	var allDets, allGT [][]detect.Detection
	var rts []float64
	for _, c := range outs {
		if c.err != nil {
			return out, c.err
		}
		allDets = append(allDets, c.dets...)
		allGT = append(allGT, c.gt...)
		rts = append(rts, c.rts...)
		out.BitsSent += c.bits
		out.Frames += c.frames
		out.ClipSeconds += c.seconds
	}
	out.CarAP = metrics.AP(allDets, allGT, world.ClassCar, metrics.DefaultIoU)
	out.PedAP = metrics.AP(allDets, allGT, world.ClassPedestrian, metrics.DefaultIoU)
	out.MAP = (out.CarAP + out.PedAP) / 2
	lat := metrics.SummarizeLatency(rts)
	out.MeanRT = lat.Mean
	out.P50RT = lat.P50
	out.P95RT = lat.P95
	if out.ClipSeconds > 0 {
		out.BitrateMbps = float64(out.BitsSent) / out.ClipSeconds / 1e6
	}
	// Feed the end-to-end response-time histogram when telemetry is on, so
	// live observers (divebench -telemetry) see the distribution build up.
	if rec := obs.Default(); rec != nil {
		h := rec.Histogram(obs.StageResponse)
		for _, rt := range rts {
			h.Observe(rt)
		}
	}
	return out, nil
}

// constTrace returns a factory for a constant-bandwidth trace.
func constTrace(mbps float64) func(int) netsim.Trace {
	return func(int) netsim.Trace { return netsim.ConstantTrace(netsim.Mbps(mbps)) }
}
