package experiments

import (
	"dive/internal/detect"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/sim"
	"dive/internal/world"
)

// EvalResult aggregates one (scheme, workload, network) evaluation.
type EvalResult struct {
	Scheme      string
	Dataset     string
	MAP         float64
	CarAP       float64
	PedAP       float64
	MeanRT      float64 // seconds
	P50RT       float64
	P95RT       float64
	BitsSent    int
	Frames      int
	ClipSeconds float64 // summed clip durations
	BitrateMbps float64 // BitsSent over ClipSeconds
}

// runScheme evaluates a scheme over every clip of a workload; traceFn
// builds the bandwidth trace per clip (fresh link state per clip).
func runScheme(w Workload, scheme sim.Scheme, traceFn func(clipIdx int) netsim.Trace, envSeed int64) (EvalResult, error) {
	var allDets, allGT [][]detect.Detection
	var rts []float64
	out := EvalResult{Scheme: scheme.Name(), Dataset: w.Name}
	for ci, clip := range w.Clips {
		env := sim.NewEnv(envSeed + int64(ci)*131071)
		link := netsim.NewLink(traceFn(ci), 0.012)
		res, err := scheme.Run(clip, link, env)
		if err != nil {
			return out, err
		}
		oracle := sim.OracleDetections(clip, env)
		allDets = append(allDets, res.Detections...)
		allGT = append(allGT, oracle...)
		rts = append(rts, res.ResponseTimes...)
		out.BitsSent += res.TotalBits()
		out.Frames += clip.NumFrames()
		out.ClipSeconds += float64(clip.NumFrames()) / clip.FPS
	}
	out.CarAP = metrics.AP(allDets, allGT, world.ClassCar, metrics.DefaultIoU)
	out.PedAP = metrics.AP(allDets, allGT, world.ClassPedestrian, metrics.DefaultIoU)
	out.MAP = (out.CarAP + out.PedAP) / 2
	lat := metrics.SummarizeLatency(rts)
	out.MeanRT = lat.Mean
	out.P50RT = lat.P50
	out.P95RT = lat.P95
	if out.ClipSeconds > 0 {
		out.BitrateMbps = float64(out.BitsSent) / out.ClipSeconds / 1e6
	}
	// Feed the end-to-end response-time histogram when telemetry is on, so
	// live observers (divebench -telemetry) see the distribution build up.
	if rec := obs.Default(); rec != nil {
		h := rec.Histogram(obs.StageResponse)
		for _, rt := range rts {
			h.Observe(rt)
		}
	}
	return out, nil
}

// constTrace returns a factory for a constant-bandwidth trace.
func constTrace(mbps float64) func(int) netsim.Trace {
	return func(int) netsim.Trace { return netsim.ConstantTrace(netsim.Mbps(mbps)) }
}
