package experiments

import "testing"

// TestPipelineSpeedupSmoke runs the pipeline throughput harness at smoke
// scale. The byte-exactness cross-check (serial vs pipelined total bits) is
// enforced inside PipelineSpeedup; here we check the measurement shape.
// Speedup > 1 is asserted only by the bench gate, not here — CI machines
// may be serial.
func TestPipelineSpeedupSmoke(t *testing.T) {
	res, err := PipelineSpeedup(ScaleSmoke, 7, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 3 {
		t.Errorf("Depth = %d, want 3", res.Depth)
	}
	if res.SerialMs <= 0 || res.PipelinedMs <= 0 || res.Speedup <= 0 {
		t.Errorf("non-positive timings: %+v", res)
	}
	if res.MaxInFlight < 1 || res.MaxInFlight > res.Depth {
		t.Errorf("MaxInFlight = %d out of [1, %d]", res.MaxInFlight, res.Depth)
	}
	if res.MeanInFlight <= 0 || res.MeanInFlight > float64(res.Depth) {
		t.Errorf("MeanInFlight = %v out of (0, %d]", res.MeanInFlight, res.Depth)
	}
}
