package experiments

import (
	"dive/internal/core"
	"dive/internal/world"
)

// NightRow summarizes DiVE's motion-vector signal quality under one
// lighting condition.
type NightRow struct {
	Condition string
	// MeanEta is the mean non-zero MV ratio over moving frames — near zero
	// at night even though the agent moves.
	MeanEta float64
	// ValidFrac is the mean fraction of macroblocks whose vectors pass the
	// trust filter.
	ValidFrac float64
	// FESuccess is the fraction of moving frames where foreground
	// extraction produced a usable result (rather than falling back to
	// reuse).
	FESuccess float64
	// FGRecall is the mean fraction of annotated object area the
	// extracted foreground covers.
	FGRecall float64
	// MaskFraction is the mean share of the frame marked foreground. At
	// night, noise-grown clusters inflate the mask: coverage only comes
	// from giving up on differential encoding. FGRecall/MaskFraction is
	// the efficiency that collapses.
	MaskFraction float64
	// EgoAccuracy is the accuracy of the η > 0.15 ego-motion rule.
	EgoAccuracy float64
	Frames      int
}

// NightStudy reproduces the observation the paper uses to justify excluding
// nuScenes night clips ("almost all motion vectors are calculated to be
// zero at night"): identical scenes rendered at daylight and at night, with
// the MV-dependent stages evaluated on both.
func NightStudy(scale Scale, seed int64) ([]NightRow, error) {
	n, dur := scale.params()
	profiles := []world.Profile{world.NuScenesLike(), world.NuScenesNightLike()}
	var rows []NightRow
	for _, p := range profiles {
		p.ClipDuration = dur
		row := NightRow{Condition: p.Name}
		etaSum, validSum, recallSum := 0.0, 0.0, 0.0
		feOK, moving, correct, total, recallN := 0, 0, 0, 0, 0
		for c := 0; c < n; c++ {
			clip := world.GenerateClip(p, seed+int64(c)*7919)
			cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
			cfg.Seed = seed
			agent, err := core.NewAgent(cfg)
			if err != nil {
				return nil, err
			}
			for i, frame := range clip.Frames {
				now := float64(i) / clip.FPS
				fr, err := agent.ProcessFrame(frame, now)
				if err != nil {
					return nil, err
				}
				agent.OnTransmitComplete(now, now+0.02, fr.Encoded.NumBits)
				if fr.RawField == nil {
					continue
				}
				isMoving := clip.Poses[i].State != world.MotionStatic
				if (fr.Eta > cfg.EtaThreshold) == isMoving {
					correct++
				}
				total++
				if !isMoving {
					continue
				}
				moving++
				etaSum += fr.Eta
				valid := 0
				for _, v := range fr.RawField.Vectors {
					if v.Valid && !v.Zero {
						valid++
					}
				}
				validSum += float64(valid) / float64(len(fr.RawField.Vectors))
				if !fr.Reused {
					feOK++
				}
				if fr.Foreground != nil && len(clip.GT[i]) > 0 {
					recallSum += maskRecall(fr.Foreground, clip.GT[i])
					row.MaskFraction += fr.Foreground.Fraction()
					recallN++
				}
			}
		}
		if moving > 0 {
			row.MeanEta = etaSum / float64(moving)
			row.ValidFrac = validSum / float64(moving)
			row.FESuccess = float64(feOK) / float64(moving)
		}
		if recallN > 0 {
			row.FGRecall = recallSum / float64(recallN)
			row.MaskFraction /= float64(recallN)
		}
		if total > 0 {
			row.EgoAccuracy = float64(correct) / float64(total)
		}
		row.Frames = total
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderNight formats the lighting study.
func RenderNight(rows []NightRow) *Table {
	t := &Table{
		Title:   "Night study: why the paper excludes night clips",
		Columns: []string{"condition", "mean η (moving)", "usable MV frac", "FE success", "FG recall", "mask frac", "η-rule acc", "frames"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Condition, f3(r.MeanEta), f3(r.ValidFrac), f3(r.FESuccess), f3(r.FGRecall), f3(r.MaskFraction), f3(r.EgoAccuracy), f1(float64(r.Frames)),
		})
	}
	return t
}
