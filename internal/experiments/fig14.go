package experiments

import (
	"dive/internal/detect"
	"dive/internal/metrics"
	"dive/internal/netsim"
	"dive/internal/sim"
	"dive/internal/world"
)

// Fig14Row is AP by ego motion state (Figure 14).
type Fig14Row struct {
	Dataset string
	State   string
	CarAP   float64
	PedAP   float64
	Frames  int
}

// Fig14MotionStates runs DiVE at 2 Mbps and splits the per-frame results by
// the ego vehicle's ground-truth motion state (static / straight /
// turning).
func Fig14MotionStates(scale Scale, seed int64) ([]Fig14Row, error) {
	rc, ns := Datasets(scale, seed)
	var rows []Fig14Row
	for _, w := range []Workload{rc, ns} {
		byState := map[world.MotionState]*struct {
			dets, gts [][]detect.Detection
		}{}
		for _, st := range []world.MotionState{world.MotionStatic, world.MotionStraight, world.MotionTurning} {
			byState[st] = &struct{ dets, gts [][]detect.Detection }{}
		}
		for ci, clip := range w.Clips {
			env := sim.NewEnv(seed + int64(ci)*97)
			link := netsim.NewLink(netsim.ConstantTrace(netsim.Mbps(2)), 0.012)
			res, err := (&sim.DiVE{}).Run(clip, link, env)
			if err != nil {
				return nil, err
			}
			oracle := sim.OracleDetections(clip, env)
			for i := range clip.Frames {
				bucket := byState[clip.Poses[i].State]
				if bucket == nil {
					continue
				}
				bucket.dets = append(bucket.dets, res.Detections[i])
				bucket.gts = append(bucket.gts, oracle[i])
			}
		}
		for _, st := range []world.MotionState{world.MotionStatic, world.MotionStraight, world.MotionTurning} {
			b := byState[st]
			if len(b.dets) == 0 {
				continue
			}
			rows = append(rows, Fig14Row{
				Dataset: w.Name,
				State:   st.String(),
				CarAP:   metrics.AP(b.dets, b.gts, world.ClassCar, metrics.DefaultIoU),
				PedAP:   metrics.AP(b.dets, b.gts, world.ClassPedestrian, metrics.DefaultIoU),
				Frames:  len(b.dets),
			})
		}
	}
	return rows, nil
}

// RenderFig14 formats the breakdown.
func RenderFig14(rows []Fig14Row) *Table {
	t := &Table{
		Title:   "Fig 14: AP by ego motion state (2 Mbps)",
		Columns: []string{"dataset", "state", "car AP", "ped AP", "frames"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Dataset, r.State, f3(r.CarAP), f3(r.PedAP), f1(float64(r.Frames))})
	}
	return t
}
