package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"dive/internal/obs"
)

// PipelineStats reports how much overlap a Pipeline run achieved.
type PipelineStats struct {
	// Items is the number of items submitted.
	Items int `json:"items"`
	// Depth is the effective in-flight bound the run used (1 on the
	// inline path).
	Depth int `json:"depth"`
	// MaxInFlight is the peak number of items concurrently between stage
	// entry and final-stage completion.
	MaxInFlight int `json:"max_in_flight"`
	// MeanInFlight is the time-weighted average of in-flight items over
	// the run — the effective pipeline occupancy (1.0 = no overlap,
	// Depth = perfectly full).
	MeanInFlight float64 `json:"mean_in_flight"`
}

// Pipeline runs items [0, n) through the given stages with bounded-depth
// software pipelining. The execution order contract is exactly the serial
// nested loop's, re-sliced:
//
//   - stage s of item i runs after stage s-1 of item i (per-item order), and
//   - stage s of item i runs after stage s of item i-1 (each stage is one
//     goroutine consuming items in FIFO order), and
//   - item i enters stage 0 only after item i-depth left the last stage
//     (bounded in-flight frames).
//
// Stages therefore need no internal locking for state they own: any state
// read and written only by stage s is confined to one goroutine, and state
// handed from stage s to s+1 is synchronized by the inter-stage channels.
// What runs concurrently is different STAGES of different ITEMS — the
// overlap a frame pipeline wants (render N+1 ∥ encode N ∥ transmit N−1).
//
// A serial pool, depth <= 1 or a single stage runs the plain inline loop:
// byte-for-byte the serial code path, no goroutines.
//
// The first stage error aborts the run: in-flight items stop at stage
// boundaries (later items may have completed earlier stages) and Pipeline
// returns that error. A stage panic is re-raised on the caller after all
// stage goroutines have drained.
func (p *Pool) Pipeline(n, depth int, stages ...func(i int) error) (PipelineStats, error) {
	if n <= 0 || len(stages) == 0 {
		return PipelineStats{Items: n, Depth: 1}, nil
	}
	if depth < 1 {
		depth = 1
	}
	if p.Workers() <= 1 || depth <= 1 || len(stages) <= 1 {
		for i := 0; i < n; i++ {
			for _, stage := range stages {
				if err := stage(i); err != nil {
					return PipelineStats{Items: n, Depth: 1, MaxInFlight: 1, MeanInFlight: 1}, err
				}
			}
		}
		return PipelineStats{Items: n, Depth: 1, MaxInFlight: 1, MeanInFlight: 1}, nil
	}

	regionEnter(len(stages), n)
	defer regionExit()

	var (
		occ       = newOccupancy(depth)
		firstErr  atomic.Pointer[error]
		panicked  atomic.Pointer[panicValue]
		abort     = make(chan struct{})
		abortOnce sync.Once
	)
	fail := func(err error) {
		e := err
		firstErr.CompareAndSwap(nil, &e)
		abortOnce.Do(func() { close(abort) })
	}
	aborted := func() bool {
		select {
		case <-abort:
			return true
		default:
			return false
		}
	}

	// sem bounds the total items in flight; it also caps every inter-stage
	// channel's backlog, so the buffered sends below can never block.
	sem := make(chan struct{}, depth)
	chans := make([]chan int, len(stages)-1)
	for i := range chans {
		chans[i] = make(chan int, depth)
	}

	var wg sync.WaitGroup
	wg.Add(len(stages))
	for s := range stages {
		go func(s int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicValue{r})
					abortOnce.Do(func() { close(abort) })
				}
				if s < len(stages)-1 {
					close(chans[s])
				}
			}()
			if s == 0 {
				for i := 0; i < n; i++ {
					select {
					case sem <- struct{}{}:
					case <-abort:
						return
					}
					occ.change(+1)
					if err := stages[0](i); err != nil {
						fail(err)
						return
					}
					if len(stages) > 1 {
						chans[0] <- i
					}
				}
				return
			}
			for i := range chans[s-1] {
				if aborted() {
					continue // drain without running
				}
				if err := stages[s](i); err != nil {
					fail(err)
					continue
				}
				if s < len(stages)-1 {
					chans[s] <- i
				} else {
					occ.change(-1)
					<-sem
				}
			}
		}(s)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
	stats := occ.finish()
	stats.Items = n
	stats.Depth = depth
	if ep := firstErr.Load(); ep != nil {
		return stats, *ep
	}
	return stats, nil
}

// occupancy accumulates the time-weighted in-flight count of a pipeline run
// and mirrors it to the process-wide recorder's pipeline gauges.
type occupancy struct {
	mu       sync.Mutex
	inflight int
	max      int
	weighted float64 // ∑ inflight · dt, seconds
	last     time.Time
	start    time.Time
}

func newOccupancy(depth int) *occupancy {
	now := time.Now()
	if rec := obs.Default(); rec != nil {
		rec.Gauge(obs.GaugePipelineDepth).Set(float64(depth))
	}
	return &occupancy{last: now, start: now}
}

func (o *occupancy) change(d int) {
	o.mu.Lock()
	now := time.Now()
	o.weighted += float64(o.inflight) * now.Sub(o.last).Seconds()
	o.last = now
	o.inflight += d
	if o.inflight > o.max {
		o.max = o.inflight
	}
	cur := o.inflight
	o.mu.Unlock()
	if rec := obs.Default(); rec != nil {
		rec.Gauge(obs.GaugePipelineInFlight).Set(float64(cur))
	}
}

func (o *occupancy) finish() PipelineStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	now := time.Now()
	o.weighted += float64(o.inflight) * now.Sub(o.last).Seconds()
	o.last = now
	elapsed := now.Sub(o.start).Seconds()
	mean := 1.0
	if elapsed > 0 {
		mean = o.weighted / elapsed
	}
	return PipelineStats{MaxInFlight: o.max, MeanInFlight: mean}
}
