package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"dive/internal/obs"
)

func TestWorkersDefaults(t *testing.T) {
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(-3).Workers() = %d", got)
	}
	if got := New(7).Workers(); got != 7 {
		t.Errorf("New(7).Workers() = %d", got)
	}
	if got := Serial().Workers(); got != 1 {
		t.Errorf("Serial().Workers() = %d", got)
	}
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 1000
		counts := make([]atomic.Int32, n)
		New(workers).ForEach(n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachSmallN(t *testing.T) {
	var ran atomic.Int32
	New(8).ForEach(0, func(i int) { ran.Add(1) })
	New(8).ForEach(1, func(i int) { ran.Add(1) })
	if ran.Load() != 1 {
		t.Errorf("ran = %d, want 1", ran.Load())
	}
	// A nil pool is serial and must still execute everything.
	var p *Pool
	sum := 0
	p.ForEach(5, func(i int) { sum += i })
	if sum != 10 {
		t.Errorf("nil pool sum = %d", sum)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	New(4).ForEach(100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
}

func TestBandsPartitionIsFixed(t *testing.T) {
	const n, band = 100, 16
	for _, workers := range []int{1, 5} {
		covered := make([]atomic.Int32, n)
		var bandsSeen atomic.Int32
		New(workers).Bands(n, band, func(b, lo, hi int) {
			bandsSeen.Add(1)
			if lo != b*band {
				t.Errorf("band %d starts at %d, want %d", b, lo, b*band)
			}
			if hi-lo > band {
				t.Errorf("band %d has height %d > %d", b, hi-lo, band)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		if bandsSeen.Load() != 7 { // ceil(100/16)
			t.Errorf("workers=%d: %d bands, want 7", workers, bandsSeen.Load())
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: row %d covered %d times", workers, i, covered[i].Load())
			}
		}
	}
}

// TestWavefrontDependencies asserts that when fn(x, y) runs, its left, top
// and top-right neighbors have already completed — the exact precondition
// for bit-identical motion-vector prediction.
func TestWavefrontDependencies(t *testing.T) {
	const w, h = 9, 7
	for _, workers := range []int{1, 2, 8} {
		done := make([]atomic.Bool, w*h)
		New(workers).Wavefront(w, h, func(x, y int) {
			check := func(nx, ny int) {
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					return
				}
				if !done[ny*w+nx].Load() {
					t.Errorf("workers=%d: cell (%d,%d) ran before dependency (%d,%d)", workers, x, y, nx, ny)
				}
			}
			check(x-1, y)
			check(x, y-1)
			check(x+1, y-1)
			done[y*w+x].Store(true)
		})
		for i := range done {
			if !done[i].Load() {
				t.Fatalf("workers=%d: cell %d never ran", workers, i)
			}
		}
	}
}

// TestWavefrontBatchDependencies repeats the dependency assertion for every
// batch size the codec might pick: batching must only group cells that are
// already mutually independent, so the precondition holds regardless.
func TestWavefrontBatchDependencies(t *testing.T) {
	const w, h = 11, 6
	for _, batch := range []int{1, 2, 3, 4, 7, 100} {
		for _, workers := range []int{2, 8} {
			done := make([]atomic.Bool, w*h)
			New(workers).WavefrontBatch(w, h, batch, func(x, y int) {
				check := func(nx, ny int) {
					if nx < 0 || ny < 0 || nx >= w || ny >= h {
						return
					}
					if !done[ny*w+nx].Load() {
						t.Errorf("batch=%d workers=%d: cell (%d,%d) ran before dependency (%d,%d)",
							batch, workers, x, y, nx, ny)
					}
				}
				check(x-1, y)
				check(x, y-1)
				check(x+1, y-1)
				done[y*w+x].Store(true)
			})
			for i := range done {
				if !done[i].Load() {
					t.Fatalf("batch=%d workers=%d: cell %d never ran", batch, workers, i)
				}
			}
		}
	}
}

// TestWavefrontBatchBitExact runs a neighbor-dependent computation (each
// cell derives its value from the finalized left/top/top-right values, like
// MV prediction) and asserts the result is identical to the serial raster
// scan at every batch size and worker count.
func TestWavefrontBatchBitExact(t *testing.T) {
	const w, h = 13, 9
	compute := func(out []int64, x, y int) {
		at := func(nx, ny int) int64 {
			if nx < 0 || ny < 0 || nx >= w || ny >= h {
				return -1
			}
			return out[ny*w+nx]
		}
		out[y*w+x] = 3*at(x-1, y) + 5*at(x, y-1) + 7*at(x+1, y-1) + int64(x*31+y)
	}
	want := make([]int64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			compute(want, x, y)
		}
	}
	for _, batch := range []int{0, 1, 2, 3, 4} {
		for _, workers := range []int{2, 8} {
			got := make([]int64, w*h)
			New(workers).WavefrontBatch(w, h, batch, func(x, y int) { compute(got, x, y) })
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("batch=%d workers=%d: cell %d = %d, want %d (serial)",
						batch, workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestWavefrontDegenerateGrids(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {5, 1}, {1, 5}, {2, 3}} {
		w, h := dims[0], dims[1]
		var n atomic.Int32
		New(4).Wavefront(w, h, func(x, y int) { n.Add(1) })
		if int(n.Load()) != w*h {
			t.Errorf("%dx%d grid: ran %d cells", w, h, n.Load())
		}
	}
}

func TestRegionGauges(t *testing.T) {
	rec := obs.NewRecorder(0)
	obs.SetDefault(rec)
	defer obs.SetDefault(nil)
	New(4).ForEach(64, func(i int) {})
	snap := rec.Snapshot()
	if snap.Counters[obs.MetricParallelRegions] < 1 {
		t.Error("no parallel region recorded")
	}
	if snap.Counters[obs.MetricParallelTasks] < 64 {
		t.Errorf("tasks counter = %d", snap.Counters[obs.MetricParallelTasks])
	}
	if snap.Gauges[obs.GaugeParallelWorkers] != 4 {
		t.Errorf("workers gauge = %v", snap.Gauges[obs.GaugeParallelWorkers])
	}
	if snap.Gauges[obs.GaugeParallelActive] != 0 {
		t.Errorf("active gauge = %v after region end", snap.Gauges[obs.GaugeParallelActive])
	}
}
