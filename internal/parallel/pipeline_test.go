package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPipelineOrderContract asserts the three ordering guarantees: per-item
// stage order, per-stage FIFO item order, and the bounded-depth window.
func TestPipelineOrderContract(t *testing.T) {
	const n, depth, nstages = 40, 3, 3
	var mu sync.Mutex
	done := make([][nstages]bool, n) // done[i][s]: stage s of item i finished
	var inflight, maxInflight int32

	stage := func(s int) func(i int) error {
		return func(i int) error {
			if s == 0 {
				cur := atomic.AddInt32(&inflight, 1)
				for {
					old := atomic.LoadInt32(&maxInflight)
					if cur <= old || atomic.CompareAndSwapInt32(&maxInflight, old, cur) {
						break
					}
				}
			}
			mu.Lock()
			if s > 0 && !done[i][s-1] {
				mu.Unlock()
				return fmt.Errorf("item %d stage %d ran before stage %d", i, s, s-1)
			}
			if i > 0 && !done[i-1][s] {
				mu.Unlock()
				return fmt.Errorf("item %d stage %d ran before item %d", i, s, i-1)
			}
			done[i][s] = true
			mu.Unlock()
			if s == nstages-1 {
				atomic.AddInt32(&inflight, -1)
			}
			return nil
		}
	}

	pool := New(4)
	stats, err := pool.Pipeline(n, depth, stage(0), stage(1), stage(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&maxInflight); got > depth {
		t.Errorf("observed %d items in flight, depth bound is %d", got, depth)
	}
	if stats.Items != n || stats.Depth != depth {
		t.Errorf("stats = %+v, want Items=%d Depth=%d", stats, n, depth)
	}
	if stats.MaxInFlight < 1 || stats.MaxInFlight > depth {
		t.Errorf("stats.MaxInFlight = %d, want in [1, %d]", stats.MaxInFlight, depth)
	}
	for i := range done {
		for s := range done[i] {
			if !done[i][s] {
				t.Fatalf("item %d stage %d never ran", i, s)
			}
		}
	}
}

// TestPipelineInlineMatchesSerial checks that the serial-pool and depth-1
// paths are the plain nested loop.
func TestPipelineInlineMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name  string
		pool  *Pool
		depth int
	}{
		{"serial-pool", Serial(), 3},
		{"depth-1", New(4), 1},
		{"nil-pool", nil, 2},
	} {
		var order []string
		s0 := func(i int) error { order = append(order, fmt.Sprintf("a%d", i)); return nil }
		s1 := func(i int) error { order = append(order, fmt.Sprintf("b%d", i)); return nil }
		stats, err := tc.pool.Pipeline(3, tc.depth, s0, s1)
		if err != nil {
			t.Fatal(err)
		}
		want := "a0 b0 a1 b1 a2 b2"
		got := ""
		for i, s := range order {
			if i > 0 {
				got += " "
			}
			got += s
		}
		if got != want {
			t.Errorf("%s: inline order %q, want %q", tc.name, got, want)
		}
		if stats.MaxInFlight != 1 || stats.Depth != 1 {
			t.Errorf("%s: inline stats = %+v", tc.name, stats)
		}
	}
}

// TestPipelineError checks the first stage error aborts the run and is
// returned; items already past the failing stage may finish, later items
// must not start stage 0 indefinitely (the run terminates).
func TestPipelineError(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int32
	pool := New(4)
	_, err := pool.Pipeline(100, 3,
		func(i int) error {
			ran.Add(1)
			if i == 5 {
				return sentinel
			}
			return nil
		},
		func(i int) error { return nil },
	)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if ran.Load() > 10 {
		t.Errorf("stage 0 ran %d times after error at item 5", ran.Load())
	}
}

// TestPipelineLateStageError checks an error in a non-first stage also
// aborts and propagates.
func TestPipelineLateStageError(t *testing.T) {
	sentinel := errors.New("late")
	pool := New(4)
	_, err := pool.Pipeline(50, 2,
		func(i int) error { return nil },
		func(i int) error {
			if i == 3 {
				return sentinel
			}
			return nil
		},
	)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
}

// TestPipelinePanic checks a stage panic is re-raised on the caller.
func TestPipelinePanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "kaboom" {
			t.Fatalf("recovered %v, want kaboom", r)
		}
	}()
	pool := New(4)
	pool.Pipeline(10, 2,
		func(i int) error { return nil },
		func(i int) error {
			if i == 2 {
				panic("kaboom")
			}
			return nil
		},
	)
	t.Fatal("pipeline did not re-raise the stage panic")
}

// TestPipelineZeroItems covers the degenerate shapes.
func TestPipelineZeroItems(t *testing.T) {
	pool := New(4)
	if stats, err := pool.Pipeline(0, 3, func(int) error { return nil }); err != nil || stats.Items != 0 {
		t.Errorf("n=0: stats=%+v err=%v", stats, err)
	}
	if _, err := pool.Pipeline(5, 3); err != nil {
		t.Errorf("no stages: err=%v", err)
	}
}
