// Package parallel is the deterministic parallel execution layer: a
// bounded, GOMAXPROCS-aware worker pool for data-parallel regions (index
// loops, fixed scanline bands, wavefront grids) whose results are — by
// construction — identical to the serial loop for every worker count.
//
// A Pool is a width policy, not a set of resident threads: each parallel
// region spawns at most Workers-1 short-lived goroutines and the calling
// goroutine itself works too, so nested regions (an experiment fan-out that
// reaches a parallel encoder) can never deadlock on pool exhaustion — the
// submitter always makes progress. A nil *Pool and a width-1 pool run every
// region inline, byte-for-byte the serial code path, which is what tests
// and single-core targets use.
//
// Determinism contract: helpers never make the work decomposition depend on
// the worker count. Bands partitions by a caller-fixed band height (so
// per-band RNG streams reproduce), Wavefront orders cells by dependency
// diagonals (so every cell reads exactly the finalized neighbor values the
// raster scan would have produced), and ForEach requires bodies to be
// independent. Regions report pool gauges through the process-wide
// obs.Default recorder when one is installed.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dive/internal/obs"
)

// activeRegions tracks concurrently executing parallel regions for the
// obs gauge (a Gauge is set-only, so the running count lives here).
var activeRegions atomic.Int64

// Pool bounds the parallelism of the regions run through it.
type Pool struct {
	workers int
}

// New creates a pool of the given width; width <= 0 selects
// runtime.GOMAXPROCS(0), so -cpu N benchmark runs and GOMAXPROCS-limited
// deployments size themselves automatically.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Serial returns a width-1 pool: every region runs inline on the caller.
func Serial() *Pool { return &Pool{workers: 1} }

// Workers returns the pool width. A nil pool is serial.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n). Bodies must be independent of
// each other; they run concurrently on up to Workers goroutines (the caller
// included) with chunked work stealing. With a serial pool it is a plain
// loop. A panic in any body is re-raised on the caller after all workers
// have drained.
func (p *Pool) ForEach(n int, fn func(i int)) {
	nw := p.Workers()
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	regionEnter(nw, n)
	defer regionExit()

	chunk := n / (nw * 8)
	if chunk < 1 {
		chunk = 1
	}
	var (
		next     atomic.Int64
		panicked atomic.Pointer[panicValue]
	)
	work := func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{r})
			}
		}()
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				return
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	var wg sync.WaitGroup
	wg.Add(nw - 1)
	for k := 0; k < nw-1; k++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(pv.v)
	}
}

// panicValue boxes a recovered panic for transport across goroutines.
type panicValue struct{ v any }

// Bands splits [0, n) into contiguous bands of the caller-fixed height band
// and runs fn(b, lo, hi) for each band index b. The partitioning depends
// only on band — never on the worker count — so band-seeded RNG streams
// (e.g. per-band sensor noise) produce identical output at any width.
func (p *Pool) Bands(n, band int, fn func(b, lo, hi int)) {
	if band < 1 {
		band = 1
	}
	nb := (n + band - 1) / band
	p.ForEach(nb, func(b int) {
		lo := b * band
		hi := lo + band
		if hi > n {
			hi = n
		}
		fn(b, lo, hi)
	})
}

// defaultWavefrontBatch is the cells-per-task grouping Wavefront uses: one
// macroblock's motion search is a few microseconds, so dispatching each cell
// as its own task makes the per-diagonal barrier overhead visible on small
// frames. Three cells per task amortizes it while still exposing enough
// tasks per diagonal to keep a typical pool busy.
const defaultWavefrontBatch = 3

// Wavefront runs fn over a w×h grid in which cell (x, y) reads results of
// its left (x-1, y), top (x, y-1) and top-right (x+1, y-1) neighbors — the
// motion-vector prediction dependency of H.264-style codecs. Cells are
// scheduled by anti-diagonals d = x + 2y: the three dependencies of a cell
// on diagonal d lie on d-1 and d-2, so all cells of one diagonal run
// concurrently with a barrier between diagonals, and every cell observes
// exactly the finalized neighbor values the serial raster scan produces.
// The barrier (ForEach completion) also establishes the happens-before edge
// that makes neighbor reads race-free. A serial pool runs the plain raster
// scan. Cells are dispatched in small fixed-size batches
// (WavefrontBatch with defaultWavefrontBatch); the grouping never depends
// on the worker count, so output is identical at every width.
func (p *Pool) Wavefront(w, h int, fn func(x, y int)) {
	p.WavefrontBatch(w, h, defaultWavefrontBatch, fn)
}

// WavefrontBatch is Wavefront with an explicit cells-per-task batch size:
// each scheduled task executes up to batch consecutive cells of one
// anti-diagonal. Cells on the same diagonal are mutually independent (their
// dependencies all lie on earlier diagonals), so any within-diagonal
// grouping preserves the dependency order — the output is bit-exact with
// the serial raster scan at every batch size and worker count; batch only
// tunes how much work amortizes each scheduling step. batch < 1 selects 1.
func (p *Pool) WavefrontBatch(w, h, batch int, fn func(x, y int)) {
	if p.Workers() <= 1 || w <= 0 || h <= 0 || w*h == 1 {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				fn(x, y)
			}
		}
		return
	}
	// bsz is a read-only copy: reassigning the captured batch parameter
	// would make the task closure capture it by reference, heap-boxing it at
	// every call — including serial calls that return above.
	bsz := batch
	if bsz < 1 {
		bsz = 1
	}
	maxD := (w - 1) + 2*(h-1)
	for d := 0; d <= maxD; d++ {
		yLo := (d - w + 2) / 2
		if yLo < 0 {
			yLo = 0
		}
		yHi := d / 2
		if yHi > h-1 {
			yHi = h - 1
		}
		if yHi < yLo {
			continue
		}
		cells := yHi - yLo + 1
		tasks := (cells + bsz - 1) / bsz
		p.ForEach(tasks, func(t int) {
			lo := t * bsz
			hi := lo + bsz
			if hi > cells {
				hi = cells
			}
			for k := lo; k < hi; k++ {
				y := yLo + k
				fn(d-2*y, y)
			}
		})
	}
}

// regionEnter records a parallel region start in the default recorder. The
// active count is kept even with no recorder installed, so one can be
// installed mid-run without the gauge going negative.
func regionEnter(workers, tasks int) {
	active := activeRegions.Add(1)
	rec := obs.Default()
	if rec == nil {
		return
	}
	rec.Counter(obs.MetricParallelRegions).Inc()
	rec.Counter(obs.MetricParallelTasks).Add(int64(tasks))
	rec.Gauge(obs.GaugeParallelWorkers).Set(float64(workers))
	rec.Gauge(obs.GaugeParallelActive).Set(float64(active))
}

// regionExit mirrors regionEnter.
func regionExit() {
	n := activeRegions.Add(-1)
	if rec := obs.Default(); rec != nil {
		rec.Gauge(obs.GaugeParallelActive).Set(float64(n))
	}
}
