package metrics

import (
	"math"
	"testing"

	"dive/internal/detect"
	"dive/internal/imgx"
	"dive/internal/world"
)

func det(class world.Class, x, y, w, h int, score float64) detect.Detection {
	return detect.Detection{Class: class, Box: imgx.NewRect(x, y, w, h), Score: score}
}

func TestAPPerfectDetections(t *testing.T) {
	gts := [][]detect.Detection{
		{det(world.ClassCar, 10, 10, 40, 30, 1)},
		{det(world.ClassCar, 50, 10, 40, 30, 1), det(world.ClassCar, 100, 10, 40, 30, 1)},
	}
	if ap := AP(gts, gts, world.ClassCar, DefaultIoU); ap != 1 {
		t.Errorf("perfect AP = %v", ap)
	}
	if m := MAP(gts, gts, DefaultIoU); m != 1 {
		// No pedestrian GT and no pedestrian detections → ped AP 1.
		t.Errorf("perfect mAP = %v", m)
	}
}

func TestAPNoDetections(t *testing.T) {
	gts := [][]detect.Detection{{det(world.ClassCar, 10, 10, 40, 30, 1)}}
	dets := [][]detect.Detection{{}}
	if ap := AP(dets, gts, world.ClassCar, DefaultIoU); ap != 0 {
		t.Errorf("empty AP = %v", ap)
	}
}

func TestAPNoGroundTruth(t *testing.T) {
	empty := [][]detect.Detection{{}}
	if ap := AP(empty, empty, world.ClassCar, DefaultIoU); ap != 1 {
		t.Errorf("no-GT no-det AP = %v, want 1", ap)
	}
	fp := [][]detect.Detection{{det(world.ClassCar, 0, 0, 10, 10, 0.9)}}
	if ap := AP(fp, empty, world.ClassCar, DefaultIoU); ap != 0 {
		t.Errorf("no-GT with FP AP = %v, want 0", ap)
	}
}

func TestAPHalfDetected(t *testing.T) {
	gts := [][]detect.Detection{{
		det(world.ClassCar, 10, 10, 40, 30, 1),
		det(world.ClassCar, 100, 10, 40, 30, 1),
	}}
	dets := [][]detect.Detection{{det(world.ClassCar, 10, 10, 40, 30, 0.9)}}
	ap := AP(dets, gts, world.ClassCar, DefaultIoU)
	if math.Abs(ap-0.5) > 1e-9 {
		t.Errorf("AP = %v, want 0.5", ap)
	}
}

func TestAPFalsePositivesHurt(t *testing.T) {
	gts := [][]detect.Detection{{det(world.ClassCar, 10, 10, 40, 30, 1)}}
	// The false positive scores ABOVE the true positive: precision at the
	// TP is 1/2, so AP = 0.5.
	dets := [][]detect.Detection{{
		det(world.ClassCar, 200, 100, 40, 30, 0.95),
		det(world.ClassCar, 10, 10, 40, 30, 0.9),
	}}
	ap := AP(dets, gts, world.ClassCar, DefaultIoU)
	if math.Abs(ap-0.5) > 1e-9 {
		t.Errorf("AP = %v, want 0.5", ap)
	}
	// A low-scoring FP below the TP does not hurt.
	dets2 := [][]detect.Detection{{
		det(world.ClassCar, 10, 10, 40, 30, 0.9),
		det(world.ClassCar, 200, 100, 40, 30, 0.2),
	}}
	if ap := AP(dets2, gts, world.ClassCar, DefaultIoU); ap != 1 {
		t.Errorf("AP with trailing FP = %v, want 1", ap)
	}
}

func TestAPDuplicateDetectionsPenalized(t *testing.T) {
	gts := [][]detect.Detection{{det(world.ClassCar, 10, 10, 40, 30, 1)}}
	dets := [][]detect.Detection{{
		det(world.ClassCar, 10, 10, 40, 30, 0.9),
		det(world.ClassCar, 11, 11, 40, 30, 0.8), // duplicate
	}}
	ap := AP(dets, gts, world.ClassCar, DefaultIoU)
	if ap != 1 {
		// The duplicate ranks below the only match, so AP stays 1.
		t.Errorf("AP = %v", ap)
	}
	// With two GT objects, a duplicate that outranks the second object's
	// match drags precision down: AP = 0.5·1 + 0.5·(2/3).
	gts2 := [][]detect.Detection{{
		det(world.ClassCar, 10, 10, 40, 30, 1),
		det(world.ClassCar, 150, 10, 40, 30, 1),
	}}
	dets2 := [][]detect.Detection{{
		det(world.ClassCar, 10, 10, 40, 30, 0.9),
		det(world.ClassCar, 11, 11, 40, 30, 0.8), // duplicate of the first
		det(world.ClassCar, 150, 10, 40, 30, 0.7),
	}}
	ap = AP(dets2, gts2, world.ClassCar, DefaultIoU)
	want := 0.5 + 0.5*(2.0/3.0)
	if math.Abs(ap-want) > 1e-9 {
		t.Errorf("duplicate AP = %v, want %v", ap, want)
	}
}

func TestAPLocalizationThreshold(t *testing.T) {
	gts := [][]detect.Detection{{det(world.ClassCar, 0, 0, 40, 40, 1)}}
	// Shifted box with IoU just under 0.5.
	dets := [][]detect.Detection{{det(world.ClassCar, 21, 0, 40, 40, 0.9)}}
	iou := gts[0][0].Box.IoU(dets[0][0].Box)
	if iou >= 0.5 {
		t.Fatalf("test setup wrong: IoU %v", iou)
	}
	if ap := AP(dets, gts, world.ClassCar, DefaultIoU); ap != 0 {
		t.Errorf("misaligned AP = %v, want 0", ap)
	}
	// Looser threshold accepts it.
	if ap := AP(dets, gts, world.ClassCar, 0.3); ap != 1 {
		t.Errorf("AP@0.3 = %v, want 1", ap)
	}
}

func TestAPClassesSeparate(t *testing.T) {
	gts := [][]detect.Detection{{det(world.ClassPedestrian, 10, 10, 20, 40, 1)}}
	dets := [][]detect.Detection{{det(world.ClassCar, 10, 10, 20, 40, 0.9)}}
	if ap := AP(dets, gts, world.ClassPedestrian, DefaultIoU); ap != 0 {
		t.Errorf("cross-class AP = %v, want 0", ap)
	}
}

func TestAPPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AP(make([][]detect.Detection, 1), make([][]detect.Detection, 2), world.ClassCar, 0.5)
}

func TestSummarizeLatency(t *testing.T) {
	s := SummarizeLatency([]float64{0.1, 0.2, 0.3, 0.4})
	if math.Abs(s.Mean-0.25) > 1e-12 || s.N != 4 || s.Max != 0.4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.P50-0.25) > 1e-9 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P95 < 0.38 || s.P95 > 0.4 {
		t.Errorf("P95 = %v", s.P95)
	}
	if z := SummarizeLatency(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestAPRange(t *testing.T) {
	gts := [][]detect.Detection{{det(world.ClassCar, 0, 0, 40, 40, 1)}}
	// Perfect boxes: AP 1 at every threshold.
	if v := APRange(gts, gts, world.ClassCar, 0.5, 0.95, 0.05); v != 1 {
		t.Errorf("perfect APRange = %v", v)
	}
	// A slightly loose box passes 0.5 but fails 0.9: range AP lands
	// strictly between 0 and 1.
	loose := [][]detect.Detection{{det(world.ClassCar, 4, 4, 40, 40, 0.9)}}
	iou := gts[0][0].Box.IoU(loose[0][0].Box)
	if iou < 0.5 || iou > 0.9 {
		t.Fatalf("setup: iou = %v", iou)
	}
	v := APRange(loose, gts, world.ClassCar, 0.5, 0.95, 0.05)
	if v <= 0 || v >= 1 {
		t.Errorf("loose APRange = %v, want in (0,1)", v)
	}
	if m := MAPRange(gts, gts, 0.5, 0.95, 0.05); m != 1 {
		t.Errorf("MAPRange = %v", m)
	}
}

func TestAPRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad range")
		}
	}()
	APRange(nil, nil, world.ClassCar, 0.9, 0.5, 0.05)
}
