package metrics

import (
	"dive/internal/detect"
	"dive/internal/world"
)

// APRange averages class AP over IoU thresholds from lo to hi (inclusive)
// in the given step — mAP@[.5:.95] in COCO's notation when called with
// (0.5, 0.95, 0.05). It rewards tight localization beyond the paper's
// single-threshold AP and is useful when comparing tracking-heavy schemes,
// whose boxes drift even when they still overlap at IoU 0.5.
func APRange(dets, gts [][]detect.Detection, class world.Class, lo, hi, step float64) float64 {
	if step <= 0 || hi < lo {
		panic("metrics: invalid IoU range")
	}
	sum, n := 0.0, 0
	for th := lo; th <= hi+1e-9; th += step {
		sum += AP(dets, gts, class, th)
		n++
	}
	return sum / float64(n)
}

// MAPRange is APRange averaged over the two evaluated classes.
func MAPRange(dets, gts [][]detect.Detection, lo, hi, step float64) float64 {
	car := APRange(dets, gts, world.ClassCar, lo, hi, step)
	ped := APRange(dets, gts, world.ClassPedestrian, lo, hi, step)
	return (car + ped) / 2
}
