// Package metrics implements the evaluation metrics of the paper's Section
// IV-A: IoU-matched Average Precision per class (with the detections on raw
// frames serving as ground truth), mAP, and latency summaries.
package metrics

import (
	"sort"

	"dive/internal/detect"
	"dive/internal/world"
)

// DefaultIoU is the matching threshold used throughout the evaluation.
const DefaultIoU = 0.5

// scoredMatch pairs a detection with its frame for global PR sorting.
type scoredMatch struct {
	frame int
	det   detect.Detection
}

// AP computes class AP over a clip: dets and gts are per-frame detection
// lists (gts are typically the detections on raw frames). Standard
// VOC-style all-point interpolation at the given IoU threshold. It returns
// 1.0 when the class never occurs in the ground truth and no detections
// claim it (nothing to get wrong), and 0 when GT exists but nothing
// matches.
func AP(dets, gts [][]detect.Detection, class world.Class, iouThresh float64) float64 {
	if len(dets) != len(gts) {
		panic("metrics: frame count mismatch")
	}
	var all []scoredMatch
	totalGT := 0
	gtBoxes := make([][]detect.Detection, len(gts))
	for f, frameGT := range gts {
		for _, g := range frameGT {
			if g.Class == class {
				gtBoxes[f] = append(gtBoxes[f], g)
				totalGT++
			}
		}
		for _, d := range dets[f] {
			if d.Class == class {
				all = append(all, scoredMatch{frame: f, det: d})
			}
		}
	}
	if totalGT == 0 {
		if len(all) == 0 {
			return 1
		}
		return 0
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].det.Score > all[j].det.Score })

	used := make([][]bool, len(gts))
	for f := range used {
		used[f] = make([]bool, len(gtBoxes[f]))
	}
	tp := make([]bool, len(all))
	for i, m := range all {
		bestIoU := 0.0
		bestJ := -1
		for j, g := range gtBoxes[m.frame] {
			if used[m.frame][j] {
				continue
			}
			iou := m.det.Box.IoU(g.Box)
			if iou > bestIoU {
				bestIoU = iou
				bestJ = j
			}
		}
		if bestJ >= 0 && bestIoU >= iouThresh {
			used[m.frame][bestJ] = true
			tp[i] = true
		}
	}

	// Precision-recall curve and all-point interpolated area.
	var precisions, recalls []float64
	cumTP, cumFP := 0, 0
	for i := range all {
		if tp[i] {
			cumTP++
		} else {
			cumFP++
		}
		precisions = append(precisions, float64(cumTP)/float64(cumTP+cumFP))
		recalls = append(recalls, float64(cumTP)/float64(totalGT))
	}
	// Monotone envelope.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i] < precisions[i+1] {
			precisions[i] = precisions[i+1]
		}
	}
	ap := 0.0
	prevR := 0.0
	for i := range precisions {
		ap += (recalls[i] - prevR) * precisions[i]
		prevR = recalls[i]
	}
	return ap
}

// MAP averages the AP of cars and pedestrians, the paper's mAP.
func MAP(dets, gts [][]detect.Detection, iouThresh float64) float64 {
	car := AP(dets, gts, world.ClassCar, iouThresh)
	ped := AP(dets, gts, world.ClassPedestrian, iouThresh)
	return (car + ped) / 2
}

// LatencySummary condenses per-frame response times.
type LatencySummary struct {
	Mean, P50, P95, Max float64
	N                   int
}

// SummarizeLatency computes a LatencySummary from seconds-valued samples.
func SummarizeLatency(samples []float64) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return LatencySummary{
		Mean: sum / float64(len(s)),
		P50:  quantile(s, 0.50),
		P95:  quantile(s, 0.95),
		Max:  s[len(s)-1],
		N:    len(s),
	}
}

// quantile reads the q-th quantile from sorted samples.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := q * float64(len(sorted)-1)
	lo := int(idx)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := idx - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
