// Package fleet is the deterministic fleet simulator and its report layer:
// N synthetic agents streaming against M edge servers, every session owning
// its own obs.Recorder and SLO window, folded each virtual second by an
// obs.FleetAggregator into fleet rollups (aggregate throughput, merged
// latency quantiles, per-profile breakdowns, fleet burn, straggler table).
//
// Two execution modes share the Spec and Report types:
//
//   - Run (model.go): the default. Agents advance on a virtual clock with
//     seeded per-frame bit, bandwidth and service-time models and a
//     per-server contention feedback loop. No wall clock, no sockets — the
//     same spec and seed produce a byte-identical report, which is what
//     lets CI diff fleet behaviour run against run.
//   - RunLive (live.go): a small fleet of real edge.Client sessions over
//     loopback TCP against real edge.Server instances, optionally through
//     the chaos proxy. End-to-end fidelity (wire protocol, reconnects,
//     degradation ladder) at the cost of wall-clock time and
//     non-determinism; used to validate that the model's telemetry shape
//     matches the real stack's.
//
// The link model mirrors the chaos scenario suite: each agent gets its own
// seeded variant of the named chaos.StandardScenarios trace, so scripted
// outage windows hit different agents at different times, like a fleet
// spread across cell coverage.
package fleet

import (
	"fmt"
	"math"

	"dive/internal/obs"
)

// Spec configures a fleet run. The zero value is not useful; call
// (Spec).withDefaults via Run, which fills the documented defaults.
type Spec struct {
	// Agents is the fleet size (default 50). Servers is the number of edge
	// instances sessions are assigned to round-robin (default 1).
	Agents  int `json:"agents"`
	Servers int `json:"servers"`
	// Cluster records the cluster size of a live cluster-mode run (0 for
	// model runs and bare-server live runs).
	Cluster int `json:"cluster,omitempty"`
	// Duration is the simulated run length in virtual seconds (default 30).
	Duration float64 `json:"duration_sec"`
	// Seed drives every random stream in the run; identical specs with
	// identical seeds produce identical reports.
	Seed int64 `json:"seed"`
	// Chaos optionally names a chaos.StandardScenarios scenario
	// ("outage-burst", "bandwidth-cliff", "estimator-poison"); each agent
	// runs a per-agent seeded variant of it. Empty runs clean fading links.
	Chaos string `json:"chaos,omitempty"`
	// SlowAgents lists agent indices scripted onto a crippled link (5%
	// bandwidth, +300ms service) — the straggler pathology the rollup table
	// and the straggler-session detector must surface.
	SlowAgents []int `json:"slow_agents,omitempty"`
	// RollupEverySec is the aggregation period in virtual seconds (default
	// 1).
	RollupEverySec float64 `json:"rollup_every_sec"`
	// ServerCores scales each server's service capacity; utilization beyond
	// it inflates next-tick service times (default 8).
	ServerCores float64 `json:"server_cores"`
	// StragglerFactor overrides the aggregator's k (default 3).
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
	// CollectRuntime attaches wall-clock process runtime stats to rollups.
	// Leave off for deterministic reports.
	CollectRuntime bool `json:"collect_runtime,omitempty"`
}

func (s Spec) withDefaults() Spec {
	if s.Agents <= 0 {
		s.Agents = 50
	}
	if s.Servers <= 0 {
		s.Servers = 1
	}
	if s.Duration <= 0 {
		s.Duration = 30
	}
	if s.RollupEverySec <= 0 {
		s.RollupEverySec = 1
	}
	if s.ServerCores <= 0 {
		s.ServerCores = 8
	}
	return s
}

// validate rejects specs the simulator cannot honor.
func (s Spec) validate() error {
	for _, idx := range s.SlowAgents {
		if idx < 0 || idx >= s.Agents {
			return fmt.Errorf("fleet: slow agent index %d outside fleet of %d", idx, s.Agents)
		}
	}
	switch s.Chaos {
	case "", "outage-burst", "bandwidth-cliff", "estimator-poison":
	default:
		return fmt.Errorf("fleet: unknown chaos scenario %q", s.Chaos)
	}
	return nil
}

// Report is the machine-readable outcome of a fleet run: the effective spec,
// every rollup in order, and the final rollup repeated for direct access.
// With Spec.CollectRuntime off the report contains no wall-clock-derived
// fields, so identical specs serialize byte-identically.
type Report struct {
	Spec    Spec              `json:"spec"`
	Rollups []obs.FleetRollup `json:"rollups"`
	Final   obs.FleetRollup   `json:"final"`
	// Live carries live-mode extras (migration accounting); nil on model
	// reports.
	Live *LiveSummary `json:"live,omitempty"`
}

// NewAggregator builds the aggregator Run would use for spec — exposed so
// serve mode can mount its /debug/fleet handler before the run starts.
func NewAggregator(spec Spec) *obs.FleetAggregator {
	spec = spec.withDefaults()
	return obs.NewFleetAggregator(obs.FleetConfig{
		StragglerFactor: spec.StragglerFactor,
		CollectRuntime:  spec.CollectRuntime,
		RollupCap:       rollupCapFor(spec),
	})
}

// Run executes the deterministic virtual-time fleet simulation.
func Run(spec Spec) (*Report, error) {
	return RunStream(spec, nil, nil)
}

// RunStream is Run with the aggregation plane exposed: rollups land in agg
// (nil builds a private one) so its /debug/fleet handler can serve the ring
// while the simulation advances, and hook — when non-nil — is called after
// every rollup, which serve mode uses to pace virtual ticks to wall clock.
func RunStream(spec Spec, agg *obs.FleetAggregator, hook func(obs.FleetRollup)) (*Report, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}

	if agg == nil {
		agg = NewAggregator(spec)
	}
	servers := make([]*modelServer, spec.Servers)
	for i := range servers {
		servers[i] = newModelServer(spec, i)
	}
	slow := make(map[int]bool, len(spec.SlowAgents))
	for _, idx := range spec.SlowAgents {
		slow[idx] = true
	}
	agents := make([]*modelAgent, spec.Agents)
	for i := range agents {
		agents[i] = newModelAgent(spec, i, servers[i%spec.Servers], slow[i])
		agg.Register(agents[i].name, agents[i].profile.Name, agents[i].rec)
	}

	report := &Report{Spec: spec}
	steps := int(math.Ceil(spec.Duration / spec.RollupEverySec))
	for step := 1; step <= steps; step++ {
		tEnd := math.Min(float64(step)*spec.RollupEverySec, spec.Duration)
		for _, srv := range servers {
			srv.beginTick()
		}
		// Agent order is fixed, so per-tick server contention accounting is
		// deterministic.
		for _, ag := range agents {
			ag.advance(tEnd)
		}
		for _, srv := range servers {
			srv.endTick(spec.RollupEverySec)
		}
		ru := agg.Rollup(tEnd)
		report.Rollups = append(report.Rollups, ru)
		if hook != nil {
			hook(ru)
		}
	}
	if n := len(report.Rollups); n > 0 {
		report.Final = report.Rollups[n-1]
	}
	return report, nil
}

// rollupCapFor sizes the aggregator ring to hold every rollup of the run.
func rollupCapFor(spec Spec) int {
	n := int(math.Ceil(spec.Duration/spec.RollupEverySec)) + 1
	if n < 64 {
		n = 64
	}
	return n
}
