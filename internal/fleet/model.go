package fleet

import (
	"fmt"
	"math/rand"

	"dive/internal/chaos"
	"dive/internal/netsim"
	"dive/internal/obs"
	"dive/internal/world"
)

// The virtual-time fleet model. Each model agent captures frames at its
// profile's rate and "uploads" them through a seeded link model:
//
//	latency = propagation + bits/bandwidth(t) + serverService × contention
//
// Bits follow a GoP-shaped per-frame model (periodic intra spikes over a
// noisy P-frame floor), bandwidth comes from the per-agent chaos/fading
// trace, and the server's contention factor is a feedback loop on last
// tick's utilization — pile enough sessions on one server and every
// co-tenant's latency inflates, which is exactly the cross-session signal
// the noisy-neighbor detector needs. Frames inside a scripted outage window
// are covered by local MOT: they observe no latency and mark Outage in the
// SLO window, matching the real client's ack-timeout path.

const (
	// modelPropagationSec is the fixed one-way network delay.
	modelPropagationSec = 0.010
	// modelGoPLength spaces intra frames (3s at 12 fps).
	modelGoPLength = 36
	// modelPBitsPerPixel / modelIBitsPerPixel shape the GoP bit profile,
	// roughly DiVE's differential-encoding rates.
	modelPBitsPerPixel = 0.05
	modelIBitsPerPixel = 0.5
	// modelServiceBaseSec + bits/modelServiceBpsPerCore model uncontended
	// server decode+detect time per frame.
	modelServiceBaseSec    = 0.004
	modelServiceBpsPerCore = 2e8
	// slowBandwidthFactor / slowServiceExtraSec script the straggler
	// pathology: 5% of the link plus a flat 300ms of server-side delay —
	// far over the 250ms SLO target, well under the real client's 1s ack
	// timeout.
	slowBandwidthFactor = 0.05
	slowServiceExtraSec = 0.3
)

// modelProfiles cycles the fleet across the paper's dataset mix.
var modelProfiles = []func() world.Profile{
	world.NuScenesLike,
	world.RobotCarLike,
	world.KITTILike,
}

// modelServer models one edge instance's service capacity. Contention is a
// one-tick feedback loop: utilization accumulated during tick k sets the
// service-time multiplier for tick k+1 (factor = 1/(1-min(util, 0.99)), so
// a saturated server inflates co-tenant service times up to 100×).
type modelServer struct {
	cores  float64
	factor float64 // current tick's service multiplier
	busy   float64 // base service seconds accumulated this tick
}

func newModelServer(spec Spec, idx int) *modelServer {
	return &modelServer{cores: spec.ServerCores, factor: 1}
}

func (s *modelServer) beginTick() { s.busy = 0 }

// endTick folds this tick's utilization into the next tick's factor.
func (s *modelServer) endTick(tickSec float64) {
	util := s.busy / (tickSec * s.cores)
	if util > 0.99 {
		util = 0.99
	}
	s.factor = 1 / (1 - util)
}

// service returns the contended service time for one frame of the given
// size and charges its base cost to this tick's utilization.
func (s *modelServer) service(bits float64, rng *rand.Rand) float64 {
	base := (modelServiceBaseSec + bits/modelServiceBpsPerCore) * (0.9 + 0.2*rng.Float64())
	s.busy += base
	return base * s.factor
}

// modelAgent is one synthetic session: a seeded frame/link model plus a
// real obs.Recorder and SLO window, indistinguishable to the aggregator
// from a live session.
type modelAgent struct {
	name    string
	profile world.Profile
	rec     *obs.Recorder
	rng     *rand.Rand
	trace   netsim.Trace
	outage  *chaos.WindowedOutageTrace // nil when no scripted windows
	srv     *modelServer
	slow    bool

	lat       *obs.Histogram
	nextFrame float64 // virtual capture time of the next frame
	frameIdx  int
}

func newModelAgent(spec Spec, idx int, srv *modelServer, slow bool) *modelAgent {
	profile := modelProfiles[idx%len(modelProfiles)]()
	// Per-agent seed: deterministic in (spec seed, index), decorrelated
	// across agents so chaos windows and bit noise don't synchronize.
	seed := spec.Seed*1_000_003 + int64(idx)*7919
	rec := obs.NewRecorder(64)
	a := &modelAgent{
		name:    fmt.Sprintf("%s-%03d", profile.Name, idx),
		profile: profile,
		rec:     rec,
		rng:     rand.New(rand.NewSource(seed)),
		srv:     srv,
		slow:    slow,
		lat:     rec.Registry().Histogram(obs.StageResponse, obs.DefaultDurationBuckets),
		// Stagger capture phase so the fleet's frames don't arrive in
		// lockstep.
		nextFrame: float64(idx%7) / (7 * profile.FPS),
	}
	a.trace = a.linkTrace(spec, seed)
	if w, ok := a.trace.(*chaos.WindowedOutageTrace); ok {
		a.outage = w
	}
	return a
}

// linkTrace builds the agent's bandwidth trace: the named chaos scenario
// re-seeded per agent, or a clean fading link.
func (a *modelAgent) linkTrace(spec Spec, seed int64) netsim.Trace {
	if spec.Chaos == "" {
		return &netsim.FadingTrace{Base: netsim.Mbps(2), Swing: 0.3, Period: 6, Jitter: 0.15, Seed: seed}
	}
	for _, sc := range chaos.StandardScenarios(seed, spec.Duration) {
		if sc.Name == spec.Chaos {
			return sc.Trace
		}
	}
	// validate() rejected unknown names; unreachable.
	return netsim.ConstantTrace(netsim.Mbps(2))
}

// frameBits draws one frame's encoded size from the GoP model.
func (a *modelAgent) frameBits() float64 {
	pixels := float64(a.profile.W * a.profile.H)
	bpp := modelPBitsPerPixel
	if a.frameIdx%modelGoPLength == 0 {
		bpp = modelIBitsPerPixel
	}
	return pixels * bpp * (0.8 + 0.4*a.rng.Float64())
}

// advance processes every frame captured before tEnd.
func (a *modelAgent) advance(tEnd float64) {
	for a.nextFrame < tEnd {
		t := a.nextFrame
		bits := a.frameBits()
		bw := a.trace.BandwidthAt(t)
		if a.slow {
			bw *= slowBandwidthFactor
		}
		outage := bw <= 0 || (a.outage != nil && a.outage.InOutage(t))

		a.rec.Counter(obs.MetricFrames).Inc()
		// FGShare proxy: stable foreground around 15% with seeded wobble,
		// drawn every frame so healthy and outage frames consume the same
		// random stream.
		fg := 0.15 + 0.05*(a.rng.Float64()-0.5)
		if outage {
			// Local MOT covers the frame: nothing crosses the link, no
			// latency sample, outage marked in the SLO window.
			a.rec.ObserveSLO(a.name, obs.SLOSample{LatencySec: -1, FGShare: fg, Outage: true})
		} else {
			service := a.srv.service(bits, a.rng)
			if a.slow {
				service += slowServiceExtraSec
			}
			latency := modelPropagationSec + bits/bw + service
			a.rec.Counter(obs.MetricBytes).Add(int64(bits / 8))
			a.lat.Observe(latency)
			a.rec.ObserveSLO(a.name, obs.SLOSample{LatencySec: latency, FGShare: fg})
		}
		a.frameIdx++
		a.nextFrame += 1 / a.profile.FPS
	}
}
