package fleet

import (
	"fmt"
	"sync"
	"time"

	"dive/internal/chaos"
	"dive/internal/core"
	"dive/internal/edge"
	"dive/internal/obs"
	"dive/internal/world"
)

// Live mode: a small fleet of real edge.Client sessions over loopback TCP
// against real edge.Server instances — the full wire protocol, reconnect
// machinery and degradation ladder, with the same aggregation plane as the
// model. Wall-clock timing makes this mode non-deterministic; it exists to
// validate end-to-end that the model's telemetry shape (per-session series,
// SLO windows, rollup fields) matches what the real stack emits, and to
// exercise SessionLabelCap folding against real servers. Keep fleets small:
// every session renders its reference clip on both ends.

// LiveSpec configures a live fleet run.
type LiveSpec struct {
	// Agents (default 3) and Servers (default 1); sessions are assigned
	// round-robin.
	Agents  int
	Servers int
	// Duration is the clip length in seconds (default 1).
	Duration float64
	Seed     int64
	// Proxy routes every session through a chaos.Proxy; Cut additionally
	// severs all proxied connections ~a third into the run, forcing the
	// reconnect+resume path fleet-wide.
	Proxy bool
	Cut   bool
	// SessionLabelCap is applied to each server (0 keeps the default).
	SessionLabelCap int
	// RollupEvery is the wall-clock aggregation period (default 500ms).
	RollupEvery time.Duration
	// Logf receives progress lines; nil silences the run.
	Logf func(format string, args ...interface{})
}

// liveProfiles maps the wire profile names the edge handshake accepts to
// their world constructors.
var liveProfiles = []struct {
	name string
	make func() world.Profile
}{
	{"nuScenes", world.NuScenesLike},
	{"RobotCar", world.RobotCarLike},
	{"KITTI", world.KITTILike},
}

// RunLive executes a live fleet run and returns its report plus the
// per-session run errors (nil entries for clean sessions).
func RunLive(spec LiveSpec) (*Report, []error, error) {
	if spec.Agents <= 0 {
		spec.Agents = 3
	}
	if spec.Servers <= 0 {
		spec.Servers = 1
	}
	if spec.Duration <= 0 {
		spec.Duration = 1
	}
	if spec.RollupEvery <= 0 {
		spec.RollupEvery = 500 * time.Millisecond
	}
	logf := spec.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	agg := obs.NewFleetAggregator(obs.FleetConfig{CollectRuntime: true})

	// Servers (and optionally one chaos proxy per server).
	addrs := make([]string, spec.Servers)
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	var proxies []*chaos.Proxy
	for i := 0; i < spec.Servers; i++ {
		srv := edge.NewServer()
		srv.Obs = obs.NewRecorder(256)
		srv.SessionLabelCap = spec.SessionLabelCap
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: server %d listen: %w", i, err)
		}
		go srv.Serve()
		srvRef := srv
		cleanup = append(cleanup, func() { srvRef.Shutdown(2 * time.Second) })
		target := addr.String()
		if spec.Proxy {
			proxy, err := chaos.NewProxy(target, chaos.ProxyConfig{})
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: proxy %d: %w", i, err)
			}
			proxies = append(proxies, proxy)
			proxyRef := proxy
			cleanup = append(cleanup, func() { proxyRef.Close() })
			target = proxy.Addr()
		}
		addrs[i] = target
	}

	// Agents: render clips up front (the slow part), then stream
	// concurrently.
	type session struct {
		name   string
		client *edge.Client
		clip   *world.Clip
	}
	sessions := make([]session, spec.Agents)
	for i := 0; i < spec.Agents; i++ {
		lp := liveProfiles[i%len(liveProfiles)]
		p := lp.make()
		p.ClipDuration = spec.Duration
		seed := spec.Seed + int64(i)
		clip := world.GenerateClip(p, seed)
		rec := obs.NewRecorder(256)
		cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
		cfg.Obs = rec
		cfg.Seed = seed
		cfg.Session = fmt.Sprintf("%s-%d", lp.name, seed)
		agent, err := core.NewAgent(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: agent %d: %w", i, err)
		}
		client := edge.NewClient(edge.ClientConfig{
			Addr: addrs[i%spec.Servers], Profile: lp.name, Seed: seed,
			Duration: spec.Duration, AckTimeout: 2 * time.Second, Obs: rec,
		}, agent)
		sessions[i] = session{name: cfg.Session, client: client, clip: clip}
		agg.Register(cfg.Session, lp.name, rec)
	}

	start := time.Now()
	errs := make([]error, spec.Agents)
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := sessions[i].client.Run(sessions[i].clip)
			errs[i] = err
		}(i)
	}
	if spec.Cut && len(proxies) > 0 {
		// One fleet-wide link cut a beat into the run: every session takes
		// the reconnect+resume path at once.
		time.AfterFunc(300*time.Millisecond, func() {
			logf("fleet: cutting %d proxied links", len(proxies))
			for _, p := range proxies {
				p.CutConnections()
			}
		})
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	report := &Report{Spec: Spec{
		Agents: spec.Agents, Servers: spec.Servers,
		Duration: spec.Duration, Seed: spec.Seed, CollectRuntime: true,
	}}
	ticker := time.NewTicker(spec.RollupEvery)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-done:
			break loop
		case <-ticker.C:
			report.Rollups = append(report.Rollups, agg.Rollup(time.Since(start).Seconds()))
		}
	}
	report.Final = agg.Rollup(time.Since(start).Seconds())
	report.Rollups = append(report.Rollups, report.Final)
	return report, errs, nil
}
