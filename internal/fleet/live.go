package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dive/internal/chaos"
	"dive/internal/cluster"
	"dive/internal/core"
	"dive/internal/edge"
	"dive/internal/obs"
	"dive/internal/world"
)

// Live mode: a small fleet of real edge.Client sessions over loopback TCP
// against real edge.Server instances — the full wire protocol, reconnect
// machinery and degradation ladder, with the same aggregation plane as the
// model. Wall-clock timing makes this mode non-deterministic; it exists to
// validate end-to-end that the model's telemetry shape (per-session series,
// SLO windows, rollup fields) matches what the real stack emits, and to
// exercise SessionLabelCap folding against real servers. Keep fleets small:
// every session renders its reference clip on both ends.

// LiveSpec configures a live fleet run.
type LiveSpec struct {
	// Agents (default 3) and Servers (default 1); sessions are assigned
	// round-robin.
	Agents  int
	Servers int
	// Duration is the clip length in seconds (default 1).
	Duration float64
	Seed     int64
	// Proxy routes every session through a chaos.Proxy; Cut additionally
	// severs all proxied connections ~a third into the run, forcing the
	// reconnect+resume path fleet-wide. Both apply to bare-server mode only.
	Proxy bool
	Cut   bool
	// Cluster, when > 0, replaces the bare servers with an internal/cluster
	// balancer of that many members: sessions get rotated candidate dial
	// lists (round-robin placement with built-in failover), migrations are
	// folded into the aggregator, and every rollup carries per-server rows.
	// Servers and Proxy/Cut are ignored in cluster mode.
	Cluster int
	// KillAfter, with Cluster > 0, kills a seeded member that long into the
	// run (wall clock). KillAtFrac instead kills it once the fleet has
	// streamed that fraction of its total frames — the reliable way to land
	// the kill mid-clip, since unpaced loopback sessions outrun wall time.
	// KillAtFrac wins when both are set.
	KillAfter  time.Duration
	KillAtFrac float64
	// JournalDir, when set, exports each session's decision journal as
	// <dir>/<session>.jsonl after the run, ready for divedoctor grading.
	JournalDir string
	// SessionLabelCap is applied to each server (0 keeps the default).
	SessionLabelCap int
	// RollupEvery is the wall-clock aggregation period (default 500ms).
	RollupEvery time.Duration
	// Logf receives progress lines; nil silences the run.
	Logf func(format string, args ...interface{})
}

// liveProfiles maps the wire profile names the edge handshake accepts to
// their world constructors.
var liveProfiles = []struct {
	name string
	make func() world.Profile
}{
	{"nuScenes", world.NuScenesLike},
	{"RobotCar", world.RobotCarLike},
	{"KITTI", world.KITTILike},
}

// RunLive executes a live fleet run and returns its report plus the
// per-session run errors (nil entries for clean sessions).
func RunLive(spec LiveSpec) (*Report, []error, error) {
	if spec.Agents <= 0 {
		spec.Agents = 3
	}
	if spec.Servers <= 0 {
		spec.Servers = 1
	}
	if spec.Duration <= 0 {
		spec.Duration = 1
	}
	if spec.RollupEvery <= 0 {
		spec.RollupEvery = 500 * time.Millisecond
	}
	logf := spec.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	agg := obs.NewFleetAggregator(obs.FleetConfig{CollectRuntime: true})

	// Servers: either a health-routed cluster or bare servers (with an
	// optional chaos proxy each).
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	var (
		cl         *cluster.Cluster
		addrs      []string
		addrToName map[string]string
		proxies    []*chaos.Proxy
	)
	if spec.Cluster > 0 {
		var err error
		cl, err = cluster.New(cluster.Config{
			Members: spec.Cluster,
			Configure: func(i int, srv *edge.Server) {
				srv.Obs = obs.NewRecorder(256)
				srv.SessionLabelCap = spec.SessionLabelCap
			},
			Logf: logf,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: cluster: %w", err)
		}
		cleanup = append(cleanup, cl.Close)
		addrToName = make(map[string]string, cl.Members())
		for _, st := range cl.Status() {
			addrs = append(addrs, st.Addr)
			addrToName[st.Addr] = st.Name
		}
	} else {
		addrs = make([]string, spec.Servers)
		for i := 0; i < spec.Servers; i++ {
			srv := edge.NewServer()
			srv.Obs = obs.NewRecorder(256)
			srv.SessionLabelCap = spec.SessionLabelCap
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: server %d listen: %w", i, err)
			}
			go srv.Serve()
			srvRef := srv
			cleanup = append(cleanup, func() { srvRef.Shutdown(2 * time.Second) })
			target := addr.String()
			if spec.Proxy {
				proxy, err := chaos.NewProxy(target, chaos.ProxyConfig{})
				if err != nil {
					return nil, nil, fmt.Errorf("fleet: proxy %d: %w", i, err)
				}
				proxies = append(proxies, proxy)
				proxyRef := proxy
				cleanup = append(cleanup, func() { proxyRef.Close() })
				target = proxy.Addr()
			}
			addrs[i] = target
		}
	}

	// Agents: render clips up front (the slow part), then stream
	// concurrently.
	type session struct {
		name   string
		client *edge.Client
		clip   *world.Clip
		rec    *obs.Recorder
		stats  edge.ClientStats
	}
	sessions := make([]session, spec.Agents)
	totalFrames := 0
	for i := 0; i < spec.Agents; i++ {
		lp := liveProfiles[i%len(liveProfiles)]
		p := lp.make()
		p.ClipDuration = spec.Duration
		seed := spec.Seed + int64(i)
		clip := world.GenerateClip(p, seed)
		rec := obs.NewRecorder(256)
		cfg := core.DefaultAgentConfig(clip.W, clip.H, clip.FPS, clip.Focal)
		cfg.Obs = rec
		cfg.Seed = seed
		cfg.Session = fmt.Sprintf("%s-%d", lp.name, seed)
		agent, err := core.NewAgent(cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("fleet: agent %d: %w", i, err)
		}
		ccfg := edge.ClientConfig{
			Profile: lp.name, Seed: seed, Duration: spec.Duration,
			AckTimeout: 2 * time.Second, Obs: rec,
		}
		if cl != nil {
			// Rotated candidate list: round-robin initial placement, with
			// every other member as a failover target behind it.
			rot := make([]string, len(addrs))
			for j := range addrs {
				rot[j] = addrs[(i+j)%len(addrs)]
			}
			ccfg.Addrs = rot
			sess := cfg.Session
			ccfg.OnMigrate = func(from, to string, forced bool) {
				agg.NoteMigration(addrToName[from], addrToName[to])
				agg.SetSessionServer(sess, addrToName[to])
				logf("fleet: session %s migrated %s -> %s (forced=%v)",
					sess, addrToName[from], addrToName[to], forced)
			}
			agg.SetSessionServer(sess, addrToName[rot[0]])
		} else {
			ccfg.Addr = addrs[i%len(addrs)]
		}
		client := edge.NewClient(ccfg, agent)
		sessions[i] = session{name: cfg.Session, client: client, clip: clip, rec: rec}
		totalFrames += clip.NumFrames()
		agg.Register(cfg.Session, lp.name, rec)
	}

	start := time.Now()
	errs := make([]error, spec.Agents)
	var wg sync.WaitGroup
	for i := range sessions {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, stats, err := sessions[i].client.Run(sessions[i].clip)
			sessions[i].stats = stats
			errs[i] = err
		}(i)
	}
	if spec.Cut && len(proxies) > 0 {
		// One fleet-wide link cut a beat into the run: every session takes
		// the reconnect+resume path at once.
		time.AfterFunc(300*time.Millisecond, func() {
			logf("fleet: cutting %d proxied links", len(proxies))
			for _, p := range proxies {
				p.CutConnections()
			}
		})
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// The kill drill: a seeded member dies mid-run. The victim comes from
	// the chaos scenario so the same seed always kills the same member;
	// KillAtFrac triggers on fleet frame progress (unpaced loopback sessions
	// outrun wall time, so a fraction is how "mid-clip" is actually hit).
	if cl != nil && (spec.KillAtFrac > 0 || spec.KillAfter > 0) {
		victim := chaos.KillMember(spec.Seed, spec.Cluster, 1, 1, 0).Faults[0].Member
		go func() {
			if spec.KillAtFrac > 0 {
				target := int(spec.KillAtFrac * float64(totalFrames))
				for {
					select {
					case <-done:
						return
					case <-time.After(5 * time.Millisecond):
					}
					n := 0
					for i := range sessions {
						n += len(sessions[i].rec.Journal().Snapshot())
					}
					if n >= target {
						logf("fleet: killing member %d at %d/%d frames", victim, n, totalFrames)
						cl.Kill(victim)
						return
					}
				}
			}
			select {
			case <-done:
			case <-time.After(spec.KillAfter):
				logf("fleet: killing member %d after %s", victim, spec.KillAfter)
				cl.Kill(victim)
			}
		}()
	}

	report := &Report{Spec: Spec{
		Agents: spec.Agents, Servers: spec.Servers, Cluster: spec.Cluster,
		Duration: spec.Duration, Seed: spec.Seed, CollectRuntime: true,
	}}
	pollServers := func() {
		if cl == nil {
			return
		}
		for _, st := range cl.Status() {
			agg.ObserveServer(st.Name, st.State.String(), st.Sessions, st.LastHeartbeatAgeSec)
		}
	}
	ticker := time.NewTicker(spec.RollupEvery)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-done:
			break loop
		case <-ticker.C:
			pollServers()
			report.Rollups = append(report.Rollups, agg.Rollup(time.Since(start).Seconds()))
		}
	}
	pollServers()
	report.Final = agg.Rollup(time.Since(start).Seconds())
	report.Rollups = append(report.Rollups, report.Final)

	live := &LiveSummary{}
	for i := range sessions {
		st := sessions[i].stats
		live.Migrations += st.Migrations
		live.ForcedMigrations += st.ForcedMigrations
		live.Redirects += st.Redirects
		if st.MaxMigrationGapSec > live.MaxMigrationGapSec {
			live.MaxMigrationGapSec = st.MaxMigrationGapSec
		}
		if errs[i] != nil {
			live.SessionErrors++
		}
	}
	report.Live = live

	if spec.JournalDir != "" {
		if err := os.MkdirAll(spec.JournalDir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("fleet: journal dir: %w", err)
		}
		for i := range sessions {
			path := filepath.Join(spec.JournalDir, sessions[i].name+".jsonl")
			f, err := os.Create(path)
			if err != nil {
				return nil, nil, fmt.Errorf("fleet: journal export: %w", err)
			}
			werr := sessions[i].rec.Journal().WriteJSONL(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return nil, nil, fmt.Errorf("fleet: journal export %s: %w", path, werr)
			}
		}
		logf("fleet: exported %d session journals to %s", len(sessions), spec.JournalDir)
	}
	return report, errs, nil
}

// LiveSummary is the client-side accounting only live mode can produce
// (the model has no real migrations); nil on model reports so they
// serialize unchanged.
type LiveSummary struct {
	// Migrations counts completed session handoffs fleet-wide;
	// ForcedMigrations the subset caused by losing the server (vs a planned
	// Redirect); Redirects the Redirect messages honored.
	Migrations       int `json:"migrations"`
	ForcedMigrations int `json:"forced_migrations"`
	Redirects        int `json:"redirects"`
	// MaxMigrationGapSec is the worst re-detection gap any session paid.
	MaxMigrationGapSec float64 `json:"max_migration_gap_sec"`
	// SessionErrors counts sessions whose run returned an error.
	SessionErrors int `json:"session_errors"`
}
