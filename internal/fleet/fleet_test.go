package fleet

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dive/internal/obs"
)

// TestRunDeterministic runs the same spec twice and requires byte-identical
// report JSON — the property CI leans on to diff fleet behaviour run to run.
func TestRunDeterministic(t *testing.T) {
	spec := Spec{
		Agents: 40, Servers: 2, Duration: 10, Seed: 7,
		Chaos: "outage-burst", SlowAgents: []int{3, 17},
	}
	r1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(r1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("identical specs produced different reports:\n%s\n---\n%s", j1, j2)
	}

	// A different seed must not reproduce the same fleet.
	spec.Seed = 8
	r3, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	j3, _ := json.Marshal(r3)
	if string(j1) == string(j3) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestRunStragglerPathology scripts two slow links into a healthy fleet and
// asserts the final rollup's straggler table names exactly those sessions.
func TestRunStragglerPathology(t *testing.T) {
	report, err := Run(Spec{
		Agents: 30, Servers: 2, Duration: 15, Seed: 11,
		SlowAgents: []int{3, 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := report.Final
	if final.Sessions != 30 {
		t.Fatalf("final rollup sessions = %d, want 30", final.Sessions)
	}
	if final.FramesTotal == 0 || final.FramesPerSec <= 0 {
		t.Fatalf("no throughput in final rollup: %+v", final)
	}
	want := map[string]bool{"nuScenes-003": true, "KITTI-017": true}
	if len(final.Stragglers) != len(want) {
		t.Fatalf("straggler table %+v, want exactly sessions %v", final.Stragglers, want)
	}
	for _, s := range final.Stragglers {
		if !want[s.Session] {
			t.Errorf("unexpected straggler %q (factor %.1f)", s.Session, s.Factor)
		}
		if s.Factor <= 3 {
			t.Errorf("straggler %s factor = %.2f, want > 3", s.Session, s.Factor)
		}
	}
	if final.Unhealthy < 2 {
		t.Errorf("unhealthy sessions = %d, want >= 2 (the scripted stragglers)", final.Unhealthy)
	}
	// The fleet median must reflect the healthy majority, not the stragglers.
	if final.MedianP99Sec >= 0.25 {
		t.Errorf("fleet median p99 = %.3fs, want < 0.25s with 28/30 healthy", final.MedianP99Sec)
	}
}

// TestRunServerContention piles the same fleet onto one server vs. many and
// asserts the single-server run's latency tail is strictly worse — the
// cross-session contention signal the noisy-neighbor detector keys on.
func TestRunServerContention(t *testing.T) {
	packed, err := Run(Spec{Agents: 200, Servers: 1, Duration: 10, Seed: 5, ServerCores: 4})
	if err != nil {
		t.Fatal(err)
	}
	spread, err := Run(Spec{Agents: 200, Servers: 8, Duration: 10, Seed: 5, ServerCores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Final.LatencyP99Sec <= spread.Final.LatencyP99Sec {
		t.Fatalf("packed fleet p99 %.3fs not worse than spread fleet p99 %.3fs",
			packed.Final.LatencyP99Sec, spread.Final.LatencyP99Sec)
	}
}

// TestRunValidation rejects out-of-range slow indices and unknown scenarios.
func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{Agents: 5, SlowAgents: []int{5}}); err == nil {
		t.Error("slow index == fleet size accepted")
	}
	if _, err := Run(Spec{Agents: 5, Chaos: "full-moon"}); err == nil {
		t.Error("unknown chaos scenario accepted")
	}
}

// TestRunLiveSmoke streams a three-session live fleet over loopback and
// checks the aggregation plane sees real telemetry end to end.
func TestRunLiveSmoke(t *testing.T) {
	report, errs, err := RunLive(LiveSpec{Agents: 3, Duration: 1, Seed: 42, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Errorf("session %d: %v", i, e)
		}
	}
	final := report.Final
	if final.Sessions != 3 {
		t.Fatalf("final rollup sessions = %d, want 3", final.Sessions)
	}
	if final.FramesTotal == 0 {
		t.Fatal("live fleet recorded no frames")
	}
	if final.LatencyP99Sec <= 0 {
		t.Fatalf("live fleet p99 = %v, want > 0", final.LatencyP99Sec)
	}
	if len(final.PerProfile) != 3 {
		t.Fatalf("per-profile rollups = %+v, want 3 profiles", final.PerProfile)
	}
	if final.Runtime == nil || final.Runtime.Goroutines == 0 {
		t.Fatalf("runtime rollup missing: %+v", final.Runtime)
	}
}

// TestRunLiveClusterKill runs the kill-a-server drill end to end: three
// sessions spread round-robin over a three-member cluster, the seeded victim
// killed at half the fleet's frames. Its session must fail over (forced
// migration, bounded gap), the per-server rollup rows must carry the
// migration, and the exported journals must let the doctor see it.
func TestRunLiveClusterKill(t *testing.T) {
	dir := t.TempDir()
	report, errs, err := RunLive(LiveSpec{
		Agents: 3, Cluster: 3, Duration: 2, Seed: 42,
		KillAtFrac: 0.5, JournalDir: dir, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Errorf("session %d: %v", i, e)
		}
	}
	if report.Live == nil {
		t.Fatal("live report has no live summary")
	}
	if report.Live.ForcedMigrations < 1 {
		t.Fatalf("kill produced no forced migration: %+v", report.Live)
	}
	if report.Live.MaxMigrationGapSec <= 0 || report.Live.MaxMigrationGapSec > 2.0 {
		t.Errorf("max migration gap %.3fs outside (0, 2.0]", report.Live.MaxMigrationGapSec)
	}

	final := report.Final
	if len(final.PerServer) != 3 {
		t.Fatalf("per-server rollups = %+v, want 3 members", final.PerServer)
	}
	var in, out int64
	down := 0
	for _, sr := range final.PerServer {
		in += sr.MigrationsIn
		out += sr.MigrationsOut
		if sr.State == "down" {
			down++
		}
	}
	if in < 1 || in != out {
		t.Errorf("per-server migration accounting in=%d out=%d, want equal and >= 1", in, out)
	}
	if down != 1 {
		t.Errorf("%d members down in the final rollup, want the 1 killed", down)
	}

	// Exported journals: one per session, and exactly one records the
	// migration.
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil || len(files) != 3 {
		t.Fatalf("journal export produced %d files (%v), want 3", len(files), err)
	}
	migrated := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		js, err := obs.ReadJournal(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		for _, j := range js {
			if j.Migrated {
				migrated++
				if !j.MigrationForced {
					t.Errorf("%s: kill journaled a planned migration: %+v", path, j)
				}
			}
		}
	}
	if migrated != 1 {
		t.Errorf("exported journals record %d migrations for one kill, want 1", migrated)
	}
}
