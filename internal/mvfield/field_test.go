package mvfield

import (
	"math"
	"math/rand"
	"testing"

	"dive/internal/codec"
	"dive/internal/geom"
)

// syntheticField builds a field on a mbw×mbh grid from a flow generator in
// centered coordinates.
func syntheticField(mbw, mbh int, focal float64, gen func(pos geom.Vec2) (geom.Vec2, bool)) *Field {
	f := &Field{MBW: mbw, MBH: mbh, Focal: focal, Vectors: make([]Vector, mbw*mbh)}
	cx := float64(mbw*codec.MBSize) / 2
	cy := float64(mbh*codec.MBSize) / 2
	for by := 0; by < mbh; by++ {
		for bx := 0; bx < mbw; bx++ {
			i := by*mbw + bx
			pos := geom.Vec2{
				X: float64(bx*codec.MBSize) + codec.MBSize/2 - cx,
				Y: float64(by*codec.MBSize) + codec.MBSize/2 - cy,
			}
			flow, valid := gen(pos)
			f.Vectors[i] = Vector{
				Pos: pos, Flow: flow,
				Valid: valid,
				Zero:  flow.IsZero(),
			}
		}
	}
	return f
}

// translationFlow yields the Eq. (3) flow for a forward translation with
// per-position depth supplied by depthAt.
func translationFlow(foe geom.Vec2, dz float64, depthAt func(geom.Vec2) float64) func(geom.Vec2) (geom.Vec2, bool) {
	return func(pos geom.Vec2) (geom.Vec2, bool) {
		z := depthAt(pos)
		if z <= 0 {
			return geom.Vec2{}, false
		}
		return pos.Sub(foe).Scale(dz / z), true
	}
}

func TestFromMotionConversion(t *testing.T) {
	mf := &codec.MotionField{
		MBW: 2, MBH: 1,
		MVs:   []codec.MV{{X: 3, Y: -2}, {X: 0, Y: 0}},
		Modes: []codec.MBMode{codec.ModeInter, codec.ModeSkip},
		SADs:  []int{100, 50},
	}
	f := FromMotion(mf, 250, 16, 8, 0)
	v0 := f.At(0, 0)
	// Flow is the negated MV.
	if v0.Flow != (geom.Vec2{X: -3, Y: 2}) {
		t.Errorf("flow = %v", v0.Flow)
	}
	// MB centers: (8,8) and (24,8) → centered (-8, 0) and (8, 0).
	if v0.Pos != (geom.Vec2{X: -8, Y: 0}) {
		t.Errorf("pos = %v", v0.Pos)
	}
	if !f.At(1, 0).Zero {
		t.Error("zero MV not flagged")
	}
	if eta := f.Eta(); eta != 0.5 {
		t.Errorf("eta = %v", eta)
	}
	// High-SAD vectors are invalid.
	mf.SADs[0] = MaxTrustedSAD + 1
	f = FromMotion(mf, 250, 16, 8, 0)
	if f.At(0, 0).Valid {
		t.Error("high-SAD vector should be invalid")
	}
}

func TestEtaEmptyField(t *testing.T) {
	f := &Field{}
	if f.Eta() != 0 {
		t.Error("empty field eta should be 0")
	}
}

func TestEstimateFOERecoversTruth(t *testing.T) {
	foe := geom.Vec2{X: 12, Y: -6}
	rng := rand.New(rand.NewSource(3))
	f := syntheticField(20, 12, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		z := 10 + rng.Float64()*60
		v := pos.Sub(foe).Scale(1.2 / z * 10)
		// Small measurement noise.
		v.X += rng.NormFloat64() * 0.2
		v.Y += rng.NormFloat64() * 0.2
		return v, true
	})
	got, err := EstimateFOE(f, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(foe) > 4 {
		t.Errorf("FOE = %v, want ≈ %v", got, foe)
	}
}

func TestEstimateFOEWithOutliers(t *testing.T) {
	foe := geom.Vec2{X: 0, Y: 0}
	rng := rand.New(rand.NewSource(5))
	f := syntheticField(20, 12, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		if rng.Float64() < 0.25 {
			// Noise vectors from plain-texture regions: random directions.
			return geom.Vec2{X: rng.Float64()*10 - 5, Y: rng.Float64()*10 - 5}, true
		}
		z := 10 + rng.Float64()*40
		return pos.Sub(foe).Scale(15 / z), true
	})
	got, err := EstimateFOE(f, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dist(foe) > 5 {
		t.Errorf("FOE with outliers = %v, want ≈ origin", got)
	}
}

func TestEstimateFOETooFewVectors(t *testing.T) {
	f := syntheticField(2, 2, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{}, false
	})
	if _, err := EstimateFOE(f, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error with no usable vectors")
	}
}

func TestRemoveRotationInvertsRotationalFlow(t *testing.T) {
	const focal = 250
	phiX, phiY := 0.004, -0.011
	f := syntheticField(20, 12, focal, func(pos geom.Vec2) (geom.Vec2, bool) {
		return RotationalFlow(focal, pos.X, pos.Y, phiX, phiY), true
	})
	g := f.RemoveRotation(phiX, phiY)
	for i, v := range g.Vectors {
		if v.Flow.Norm() > 1e-9 {
			t.Fatalf("vector %d: residual flow %v after rotation removal", i, v.Flow)
		}
	}
}

func TestRotationEstimatorRecoversRotation(t *testing.T) {
	const focal = 250
	truePhiX, truePhiY := 0.003, -0.012
	rng := rand.New(rand.NewSource(7))
	dz := 1.0
	f := syntheticField(20, 12, focal, func(pos geom.Vec2) (geom.Vec2, bool) {
		z := 8 + rng.Float64()*50
		trans := pos.Scale(dz / z) // FOE at origin
		rot := RotationalFlow(focal, pos.X, pos.Y, truePhiX, truePhiY)
		flow := trans.Add(rot)
		flow.X += rng.NormFloat64() * 0.15
		flow.Y += rng.NormFloat64() * 0.15
		return flow, true
	})
	est := NewRotationEstimator()
	phiX, phiY, err := est.Estimate(f, geom.Vec2{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phiX-truePhiX) > 0.0015 || math.Abs(phiY-truePhiY) > 0.0015 {
		t.Errorf("rotation = (%v, %v), want (%v, %v)", phiX, phiY, truePhiX, truePhiY)
	}
}

func TestRSamplingBeatsRandomWithFewSamples(t *testing.T) {
	// The paper's Figure 7: with the same k, sampling near the FOE gives
	// lower error than random sampling because those vectors carry the
	// least translational contamination. Reproduce statistically.
	const focal = 250
	const trials = 30
	truePhiY := 0.010
	var errR, errRand float64
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		f := syntheticField(24, 14, focal, func(pos geom.Vec2) (geom.Vec2, bool) {
			// Depth shrinks away from center (nearby road at the bottom),
			// so peripheral vectors have large translational flow.
			z := 60 / (1 + pos.Norm()/80)
			trans := pos.Scale(1.4 / z)
			rot := RotationalFlow(focal, pos.X, pos.Y, 0, truePhiY)
			flow := trans.Add(rot)
			flow.X += rng.NormFloat64() * 0.3
			flow.Y += rng.NormFloat64() * 0.3
			return flow, true
		})
		er := &RotationEstimator{K: 30, Strategy: RSampling, Iterations: 48, InlierThreshold: 1.0}
		_, phiYr, err := er.Estimate(f, geom.Vec2{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		en := &RotationEstimator{K: 30, Strategy: RandomSampling, Iterations: 48, InlierThreshold: 1.0}
		_, phiYn, err := en.Estimate(f, geom.Vec2{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		errR += math.Abs(phiYr - truePhiY)
		errRand += math.Abs(phiYn - truePhiY)
	}
	if errR >= errRand {
		t.Errorf("R-sampling error %v not better than random %v", errR/trials, errRand/trials)
	}
}

func TestRotationEstimatorTooFewVectors(t *testing.T) {
	f := syntheticField(4, 2, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{}, false
	})
	est := NewRotationEstimator()
	if _, _, err := est.Estimate(f, geom.Vec2{}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected ErrNoRotation")
	}
}

func TestPointsToward(t *testing.T) {
	foe := geom.Vec2{}
	p := geom.Vec2{X: 10, Y: 10}
	if !PointsToward(p, geom.Vec2{X: 1, Y: 1}, foe, 0.95) {
		t.Error("radially-aligned flow rejected")
	}
	if PointsToward(p, geom.Vec2{X: -1, Y: -1}, foe, 0.95) {
		t.Error("anti-radial flow accepted")
	}
	if PointsToward(p, geom.Vec2{X: 1, Y: -1}, foe, 0.95) {
		t.Error("perpendicular flow accepted")
	}
	if PointsToward(foe, geom.Vec2{X: 1, Y: 0}, foe, 0.95) {
		t.Error("degenerate position accepted")
	}
}

func TestNormalizedMagnitudesGroundInvariant(t *testing.T) {
	// Eq. (8): ground macroblocks share a normalized magnitude of
	// ΔZ/(f·h); an object at a different height gets a different value.
	const focal = 250
	const h = 1.4 // camera height
	dz := 0.8
	foe := geom.Vec2{}
	f := syntheticField(20, 12, focal, translationFlow(foe, dz, func(pos geom.Vec2) float64 {
		if pos.Y <= 4 {
			return -1 // above horizon: invalid
		}
		return focal * h / pos.Y // ground depth
	}))
	norms := NormalizedMagnitudes(f, foe, DefaultNormalizeOptions())
	want := dz / (focal * h)
	seen := 0
	for _, n := range norms {
		if !n.OK {
			continue
		}
		seen++
		if math.Abs(n.Value-want)/want > 0.02 {
			t.Fatalf("ground normalized magnitude %v, want %v", n.Value, want)
		}
	}
	if seen < 40 {
		t.Fatalf("only %d valid normalized magnitudes", seen)
	}
}

func TestNormalizedMagnitudesFiltering(t *testing.T) {
	foe := geom.Vec2{}
	f := syntheticField(8, 8, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		if pos.Y <= 4 {
			return geom.Vec2{X: 3, Y: 0}, true // above-horizon junk
		}
		// Perpendicular to radial: should be filtered by the FOE test.
		r := pos.Sub(foe)
		return geom.Vec2{X: -r.Y, Y: r.X}.Scale(0.05), true
	})
	norms := NormalizedMagnitudes(f, foe, DefaultNormalizeOptions())
	for _, n := range norms {
		if n.OK {
			t.Fatalf("vector %d passed filtering but should not", n.Index)
		}
	}
}

func TestFOECalibrator(t *testing.T) {
	c := NewFOECalibrator()
	if c.Calibrated() {
		t.Error("fresh calibrator claims calibration")
	}
	if c.FOE() != (geom.Vec2{}) {
		t.Error("prior should be the principal point")
	}
	c.Update(geom.Vec2{X: 10, Y: 2})
	if !c.Calibrated() || c.FOE() != (geom.Vec2{X: 10, Y: 2}) {
		t.Errorf("first update: %v", c.FOE())
	}
	// Smoothing pulls toward later estimates slowly.
	c.Update(geom.Vec2{X: 0, Y: 0})
	got := c.FOE()
	if got.X != 9 || got.Y != 1.8 {
		t.Errorf("smoothed FOE = %v", got)
	}
	// Far-out estimates are rejected.
	c.Update(geom.Vec2{X: 500, Y: 0})
	if c.FOE() != got {
		t.Error("outlier FOE accepted")
	}
}

func TestSamplingString(t *testing.T) {
	if RSampling.String() != "r-sampling" || RandomSampling.String() != "random" || Sampling(0).String() != "unknown" {
		t.Error("Sampling names wrong")
	}
}

func TestRemoveRotationSkipsUnusableVectors(t *testing.T) {
	f := syntheticField(4, 4, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{}, false // zero AND invalid
	})
	g := f.RemoveRotation(0.01, 0.01)
	for i, v := range g.Vectors {
		if !v.Flow.IsZero() {
			t.Fatalf("vector %d modified despite being unusable", i)
		}
	}
}

func TestFieldCloneIndependence(t *testing.T) {
	f := syntheticField(4, 4, 250, func(pos geom.Vec2) (geom.Vec2, bool) {
		return geom.Vec2{X: 1, Y: 1}, true
	})
	g := f.Clone()
	g.Vectors[0].Flow.X = 99
	if f.Vectors[0].Flow.X == 99 {
		t.Error("Clone shares vector storage")
	}
}

func TestFromMotionScaleConversion(t *testing.T) {
	// Half-pel MVs (Scale 2) must halve the reported flow.
	mf := &codec.MotionField{
		MBW: 1, MBH: 1,
		MVs:   []codec.MV{{X: -6, Y: 4}},
		Modes: []codec.MBMode{codec.ModeInter},
		SADs:  []int{10},
		Scale: 2,
	}
	f := FromMotion(mf, 250, 8, 8, 0)
	if f.Vectors[0].Flow != (geom.Vec2{X: 3, Y: -2}) {
		t.Errorf("flow = %v, want (3,-2)", f.Vectors[0].Flow)
	}
	// Scale 0 (older producers) defaults to 1.
	mf.Scale = 0
	f = FromMotion(mf, 250, 8, 8, 0)
	if f.Vectors[0].Flow != (geom.Vec2{X: 6, Y: -4}) {
		t.Errorf("flow = %v, want (6,-4)", f.Vectors[0].Flow)
	}
}

// testMotionField builds a small codec motion field with varied vectors.
func testMotionField() *codec.MotionField {
	mf := &codec.MotionField{
		MBW: 4, MBH: 3, Scale: 2,
		MVs:  make([]codec.MV, 12),
		SADs: make([]int, 12),
	}
	for i := range mf.MVs {
		mf.MVs[i] = codec.MV{X: int16(i - 5), Y: int16(2*i - 11)}
		mf.SADs[i] = i * 3000
	}
	return mf
}

// TestFromMotionIntoMatchesFromMotion pins the recycled-destination variant
// to the allocating one, and checks the backing array actually reuses.
func TestFromMotionIntoMatchesFromMotion(t *testing.T) {
	mf := testMotionField()
	want := FromMotion(mf, 120, 32, 24, 0)
	dst := &Field{Vectors: make([]Vector, 0, 12)}
	backing := &dst.Vectors[:1][0]
	got := FromMotionInto(dst, mf, 120, 32, 24, 0)
	if got != dst {
		t.Fatal("FromMotionInto must return dst")
	}
	if &got.Vectors[0] != backing {
		t.Error("FromMotionInto reallocated a sufficient backing array")
	}
	if got.MBW != want.MBW || got.MBH != want.MBH || got.Focal != want.Focal {
		t.Fatalf("header differs: %d/%d/%g vs %d/%d/%g", got.MBW, got.MBH, got.Focal, want.MBW, want.MBH, want.Focal)
	}
	for i := range want.Vectors {
		if got.Vectors[i] != want.Vectors[i] {
			t.Fatalf("vector %d differs: %+v vs %+v", i, got.Vectors[i], want.Vectors[i])
		}
	}
	// Steady state: reusing the same destination must not allocate.
	if allocs := testing.AllocsPerRun(20, func() {
		FromMotionInto(dst, mf, 120, 32, 24, 0)
	}); allocs != 0 {
		t.Errorf("FromMotionInto with warm dst: %.1f allocs, want 0", allocs)
	}
}

// TestRemoveRotationIntoMatchesRemoveRotation pins the recycled variant of
// rotation removal to the cloning one.
func TestRemoveRotationIntoMatchesRemoveRotation(t *testing.T) {
	f := FromMotion(testMotionField(), 120, 32, 24, 0)
	want := f.RemoveRotation(0.01, -0.02)
	dst := &Field{}
	got := f.RemoveRotationInto(dst, 0.01, -0.02)
	if got != dst {
		t.Fatal("RemoveRotationInto must return dst")
	}
	for i := range want.Vectors {
		if got.Vectors[i] != want.Vectors[i] {
			t.Fatalf("vector %d differs: %+v vs %+v", i, got.Vectors[i], want.Vectors[i])
		}
	}
	// The source must be untouched (RemoveRotation is a corrected copy).
	orig := FromMotion(testMotionField(), 120, 32, 24, 0)
	for i := range orig.Vectors {
		if f.Vectors[i] != orig.Vectors[i] {
			t.Fatalf("source vector %d mutated by RemoveRotationInto", i)
		}
	}
	if allocs := testing.AllocsPerRun(20, func() {
		f.RemoveRotationInto(dst, 0.01, -0.02)
	}); allocs != 0 {
		t.Errorf("RemoveRotationInto with warm dst: %.1f allocs, want 0", allocs)
	}
}
