package mvfield

import (
	"errors"
	"math/rand"

	"dive/internal/geom"
)

// ErrNoFOE is returned when too few usable vectors exist to locate the FOE.
var ErrNoFOE = errors.New("mvfield: not enough vectors to estimate FOE")

// foeModel fits the focus of expansion: for purely translational flow every
// vector lies on the line through its own position and the FOE, so
// cross(flow, pos − FOE) = 0, which is linear in the FOE coordinates:
//
//	flowY·Fx − flowX·Fy = flowY·px − flowX·py
type foeModel struct {
	vecs []Vector
}

func (m *foeModel) Len() int { return len(m.vecs) }

func (m *foeModel) Fit(idx []int) (interface{}, error) {
	a := make([][2]float64, 0, len(idx))
	b := make([]float64, 0, len(idx))
	for _, i := range idx {
		v := m.vecs[i]
		a = append(a, [2]float64{v.Flow.Y, -v.Flow.X})
		b = append(b, v.Flow.Y*v.Pos.X-v.Flow.X*v.Pos.Y)
	}
	u, err := geom.LeastSquares2(a, b)
	if err != nil {
		return nil, err
	}
	return geom.Vec2{X: u[0], Y: u[1]}, nil
}

func (m *foeModel) Residual(i int, params interface{}) float64 {
	foe := params.(geom.Vec2)
	v := m.vecs[i]
	radial := v.Pos.Sub(foe)
	n := radial.Norm()
	if n < 1e-9 {
		return 0
	}
	// Perpendicular distance of the flow direction from the radial line,
	// scaled back to pixels of flow.
	return absf(v.Flow.Cross(radial)) / n
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// EstimateFOE locates the focus of expansion of a (rotation-free) flow
// field with RANSAC over the radial-alignment constraint. Only valid,
// non-zero vectors participate. The result is in principal-point-centered
// coordinates.
func EstimateFOE(f *Field, rng *rand.Rand) (geom.Vec2, error) {
	m := &foeModel{}
	for _, v := range f.Vectors {
		if v.Valid && !v.Zero && v.Flow.Norm() >= 1 {
			m.vecs = append(m.vecs, v)
		}
	}
	if len(m.vecs) < 8 {
		return geom.Vec2{}, ErrNoFOE
	}
	params, _, err := geom.RANSAC(m, geom.RANSACConfig{
		MinSamples:      2,
		Iterations:      64,
		InlierThreshold: 2.0,
		MinInliers:      len(m.vecs) / 4,
	}, rng)
	if err != nil {
		return geom.Vec2{}, err
	}
	return params.(geom.Vec2), nil
}

// FOECalibrator maintains the long-term "fixed FOE" the paper calibrates
// while the agent drives straight; R-sampling anchors on it.
type FOECalibrator struct {
	foe    geom.Vec2
	weight float64
	// Alpha is the exponential smoothing factor per accepted update.
	Alpha float64
	// MaxRadius rejects estimates farther than this from the principal
	// point (forward FOEs sit near the image center).
	MaxRadius float64
}

// NewFOECalibrator returns a calibrator with the defaults used by DiVE.
func NewFOECalibrator() *FOECalibrator {
	return &FOECalibrator{Alpha: 0.1, MaxRadius: 80}
}

// Update folds in a new per-frame FOE estimate.
func (c *FOECalibrator) Update(foe geom.Vec2) {
	if foe.Norm() > c.MaxRadius {
		return
	}
	if c.weight == 0 {
		c.foe = foe
		c.weight = 1
		return
	}
	c.foe = c.foe.Scale(1 - c.Alpha).Add(foe.Scale(c.Alpha))
}

// FOE returns the calibrated FOE; before any update it is the principal
// point (the natural prior for a forward-facing camera).
func (c *FOECalibrator) FOE() geom.Vec2 { return c.foe }

// Calibrated reports whether at least one update has been accepted.
func (c *FOECalibrator) Calibrated() bool { return c.weight > 0 }
