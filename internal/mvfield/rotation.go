package mvfield

import (
	"errors"
	"math/rand"
	"sort"

	"dive/internal/geom"
)

// Sampling selects how the rotation estimator picks the motion vectors it
// feeds into the over-determined system; Figure 7 compares the two.
type Sampling int

// Sampling strategies.
const (
	// RSampling picks the k vectors closest to the calibrated FOE. Those
	// vectors have the smallest translational components (flow magnitude
	// shrinks toward the FOE) so rotation dominates them — the paper's key
	// trick for accurate estimates from few samples.
	RSampling Sampling = iota + 1
	// RandomSampling picks k vectors uniformly at random, the baseline.
	RandomSampling
)

// String names the strategy.
func (s Sampling) String() string {
	switch s {
	case RSampling:
		return "r-sampling"
	case RandomSampling:
		return "random"
	default:
		return "unknown"
	}
}

// ErrNoRotation is returned when rotation cannot be estimated.
var ErrNoRotation = errors.New("mvfield: not enough vectors to estimate rotation")

// RotationEstimator solves the paper's Eq. (7) for the per-frame pitch and
// yaw increments (Δφx, Δφy) with RANSAC over a selected vector subset.
type RotationEstimator struct {
	// K is the number of sampled vectors (the paper settles on 70).
	K int
	// Strategy selects R-sampling or random sampling.
	Strategy Sampling
	// Iterations is the RANSAC hypothesis count.
	Iterations int
	// InlierThreshold is the residual bound in pixel·focal units scaled
	// back to pixels (see rotModel.Residual).
	InlierThreshold float64
}

// NewRotationEstimator returns the paper's operating point: R-sampling with
// k = 70.
func NewRotationEstimator() *RotationEstimator {
	return &RotationEstimator{
		K:               70,
		Strategy:        RSampling,
		Iterations:      48,
		InlierThreshold: 1.0,
	}
}

// rotModel fits Eq. (7): x·f·Δφx + y·f·Δφy = x·vy − y·vx. The translational
// component cancels from the right-hand side exactly when the agent
// translates only along its z axis.
type rotModel struct {
	vecs  []Vector
	focal float64
}

type rotParams struct{ phiX, phiY float64 }

func (m *rotModel) Len() int { return len(m.vecs) }

func (m *rotModel) Fit(idx []int) (interface{}, error) {
	a := make([][2]float64, 0, len(idx))
	b := make([]float64, 0, len(idx))
	for _, i := range idx {
		v := m.vecs[i]
		a = append(a, [2]float64{v.Pos.X * m.focal, v.Pos.Y * m.focal})
		b = append(b, v.Pos.X*v.Flow.Y-v.Pos.Y*v.Flow.X)
	}
	u, err := geom.LeastSquares2(a, b)
	if err != nil {
		return nil, err
	}
	return rotParams{phiX: u[0], phiY: u[1]}, nil
}

func (m *rotModel) Residual(i int, params interface{}) float64 {
	p := params.(rotParams)
	v := m.vecs[i]
	lhs := v.Pos.X*m.focal*p.phiX + v.Pos.Y*m.focal*p.phiY
	rhs := v.Pos.X*v.Flow.Y - v.Pos.Y*v.Flow.X
	// Normalize by the lever arm so the residual is in flow pixels.
	lever := v.Pos.Norm()
	if lever < 1 {
		lever = 1
	}
	return absf(lhs-rhs) / lever
}

// Estimate returns the per-frame rotation increments (radians). foe is the
// calibrated FOE used by R-sampling; it is ignored under RandomSampling.
func (e *RotationEstimator) Estimate(f *Field, foe geom.Vec2, rng *rand.Rand) (phiX, phiY float64, err error) {
	candidates := make([]Vector, 0, len(f.Vectors))
	for _, v := range f.Vectors {
		if v.Valid && !v.Zero {
			candidates = append(candidates, v)
		}
	}
	if len(candidates) < 4 {
		return 0, 0, ErrNoRotation
	}
	k := e.K
	if k > len(candidates) {
		k = len(candidates)
	}
	var chosen []Vector
	switch e.Strategy {
	case RandomSampling:
		perm := rng.Perm(len(candidates))
		chosen = make([]Vector, 0, k)
		for _, i := range perm[:k] {
			chosen = append(chosen, candidates[i])
		}
	default: // RSampling
		sort.Slice(candidates, func(i, j int) bool {
			return candidates[i].Pos.Dist(foe) < candidates[j].Pos.Dist(foe)
		})
		chosen = candidates[:k]
	}
	m := &rotModel{vecs: chosen, focal: f.Focal}
	params, _, rerr := geom.RANSAC(m, geom.RANSACConfig{
		MinSamples:      2,
		Iterations:      e.Iterations,
		InlierThreshold: e.InlierThreshold,
		MinInliers:      k / 4,
	}, rng)
	if rerr != nil {
		// Fall back to a plain least-squares fit over all chosen vectors;
		// better a rough estimate than none.
		p, ferr := m.Fit(allIndices(len(chosen)))
		if ferr != nil {
			return 0, 0, ErrNoRotation
		}
		rp := p.(rotParams)
		return rp.phiX, rp.phiY, nil
	}
	rp := params.(rotParams)
	return rp.phiX, rp.phiY, nil
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
