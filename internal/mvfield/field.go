// Package mvfield turns the raw per-macroblock motion vectors that the
// codec computes anyway into the geometric quantities DiVE's analytics need:
// the non-zero ratio η for ego-motion judgement, the focus of expansion
// (FOE), rotational-component elimination via R-sampling + RANSAC over the
// paper's Eq. (7), and FOE-normalized magnitudes (Eq. 8) for ground
// estimation.
//
// Sign conventions: the codec's MV points from a macroblock in the current
// frame to its match in the reference (previous) frame; the optical-flow
// vector of the image point is its negation, and that is what Field stores.
// Image coordinates are centered on the principal point with y downward,
// exactly as in the paper's Section II.
package mvfield

import (
	"dive/internal/codec"
	"dive/internal/geom"
)

// Vector is one macroblock's flow sample.
type Vector struct {
	Pos   geom.Vec2 // MB center, principal-point-centered coordinates
	Flow  geom.Vec2 // optical flow in pixels/frame
	Valid bool      // reliable enough for geometric fitting
	Zero  bool      // exactly zero flow
	SAD   int       // matching cost of the underlying MV
}

// Field is the per-frame flow field derived from codec motion vectors.
type Field struct {
	MBW, MBH int
	Focal    float64
	Vectors  []Vector
}

// MaxTrustedSAD is the default matching-cost ceiling above which a motion
// vector is considered unreliable (≈ 24 luma levels per pixel over a 16×16
// block).
const MaxTrustedSAD = 24 * codec.MBSize * codec.MBSize

// FromMotion converts a codec motion field into a flow field. cx, cy locate
// the principal point in pixel coordinates; focal is in pixels. maxSAD <= 0
// selects MaxTrustedSAD.
func FromMotion(mf *codec.MotionField, focal, cx, cy float64, maxSAD int) *Field {
	return FromMotionInto(nil, mf, focal, cx, cy, maxSAD)
}

// FromMotionInto is FromMotion writing into a caller-recycled field: dst's
// Vectors backing array is reused when it is large enough, so a steady-state
// analysis loop that cycles two fields allocates nothing. A nil dst (or one
// with too-small capacity) allocates exactly like FromMotion. Returns dst.
func FromMotionInto(dst *Field, mf *codec.MotionField, focal, cx, cy float64, maxSAD int) *Field {
	if maxSAD <= 0 {
		maxSAD = MaxTrustedSAD
	}
	if dst == nil {
		dst = &Field{}
	}
	if cap(dst.Vectors) < len(mf.MVs) {
		dst.Vectors = make([]Vector, len(mf.MVs))
	}
	dst.MBW, dst.MBH, dst.Focal = mf.MBW, mf.MBH, focal
	dst.Vectors = dst.Vectors[:len(mf.MVs)]
	scale := float64(mf.Scale)
	if scale <= 0 {
		scale = 1
	}
	for i, mv := range mf.MVs {
		bx, by := i%mf.MBW, i/mf.MBW
		px := float64(bx*codec.MBSize) + codec.MBSize/2
		py := float64(by*codec.MBSize) + codec.MBSize/2
		v := Vector{
			Pos:  geom.Vec2{X: px - cx, Y: py - cy},
			Flow: geom.Vec2{X: -float64(mv.X) / scale, Y: -float64(mv.Y) / scale},
			SAD:  mf.SADs[i],
		}
		v.Zero = mv.IsZero()
		v.Valid = mf.SADs[i] <= maxSAD
		dst.Vectors[i] = v
	}
	return dst
}

// At returns the vector of macroblock (bx, by).
func (f *Field) At(bx, by int) Vector { return f.Vectors[by*f.MBW+bx] }

// Eta returns η, the ratio of macroblocks with non-zero motion vectors —
// the paper's ego-motion signal.
func (f *Field) Eta() float64 {
	if len(f.Vectors) == 0 {
		return 0
	}
	n := 0
	for _, v := range f.Vectors {
		if !v.Zero {
			n++
		}
	}
	return float64(n) / float64(len(f.Vectors))
}

// Clone returns a deep copy of the field.
func (f *Field) Clone() *Field {
	g := *f
	g.Vectors = make([]Vector, len(f.Vectors))
	copy(g.Vectors, f.Vectors)
	return &g
}

// RemoveRotation subtracts the rotational flow component predicted by the
// paper's Eq. (5) for the estimated per-frame rotations (radians) and
// returns a corrected copy. phiX is pitch, phiY is yaw.
func (f *Field) RemoveRotation(phiX, phiY float64) *Field {
	return f.RemoveRotationInto(nil, phiX, phiY)
}

// RemoveRotationInto is RemoveRotation writing the corrected copy into a
// caller-recycled destination field (see FromMotionInto). dst must not alias
// f. Returns dst.
func (f *Field) RemoveRotationInto(dst *Field, phiX, phiY float64) *Field {
	g := dst
	if g == nil {
		g = &Field{}
	}
	if cap(g.Vectors) < len(f.Vectors) {
		g.Vectors = make([]Vector, len(f.Vectors))
	}
	g.MBW, g.MBH, g.Focal = f.MBW, f.MBH, f.Focal
	g.Vectors = g.Vectors[:len(f.Vectors)]
	copy(g.Vectors, f.Vectors)
	fl := f.Focal
	for i := range g.Vectors {
		v := &g.Vectors[i]
		if v.Zero && !v.Valid {
			continue
		}
		x, y := v.Pos.X, v.Pos.Y
		rotX := -phiY*fl + phiX*x*y/fl - phiY*x*x/fl
		rotY := phiX*fl - phiY*x*y/fl + phiX*y*y/fl
		v.Flow.X -= rotX
		v.Flow.Y -= rotY
	}
	return g
}

// RotationalFlow returns the flow that a pure rotation (phiX, phiY) induces
// at centered image position (x, y); exposed for tests and tooling.
func RotationalFlow(focal, x, y, phiX, phiY float64) geom.Vec2 {
	return geom.Vec2{
		X: -phiY*focal + phiX*x*y/focal - phiY*x*x/focal,
		Y: phiX*focal - phiY*x*y/focal + phiX*y*y/focal,
	}
}

// PointsToward reports whether flow vector v at position p is aligned with
// the radial direction away from the FOE within cosTol (cosine of the
// maximum angular deviation). Used to discard random vectors from plain
// regions before ground estimation.
func PointsToward(p, flow, foe geom.Vec2, cosTol float64) bool {
	radial := p.Sub(foe)
	rn, fn := radial.Norm(), flow.Norm()
	if rn < 1e-9 || fn < 1e-9 {
		return false
	}
	return radial.Dot(flow)/(rn*fn) >= cosTol
}
