package mvfield

import "dive/internal/geom"

// NormalizedMagnitude is one macroblock's Eq. (8) value: |v| / (R · y),
// which for translational flow equals ΔZ/(f·Y) and therefore depends only
// on the physical height of the surface the macroblock sees. Ground
// macroblocks — the lowest surface — share the smallest value.
type NormalizedMagnitude struct {
	Index int     // macroblock index
	Value float64 // |flow| / (R·y)
	OK    bool    // false when the vector is unusable for Eq. (8)
}

// NormalizeOptions tunes the Eq. (8) computation.
type NormalizeOptions struct {
	// CosTol is the minimum cosine between a flow vector and the radial
	// direction from the FOE for the vector to be kept (the "points to the
	// FOE" filter from Section III-C1).
	CosTol float64
	// MinY is the minimum centered y coordinate; macroblocks above (or at)
	// the horizon cannot belong to the ground.
	MinY float64
	// MinFlow discards vectors shorter than this many pixels.
	MinFlow float64
}

// DefaultNormalizeOptions returns the values used by DiVE.
func DefaultNormalizeOptions() NormalizeOptions {
	return NormalizeOptions{CosTol: 0.9, MinY: 4, MinFlow: 0.5}
}

// NormalizedMagnitudes evaluates Eq. (8) for every macroblock of a
// rotation-corrected field against the given FOE.
func NormalizedMagnitudes(f *Field, foe geom.Vec2, opts NormalizeOptions) []NormalizedMagnitude {
	out := make([]NormalizedMagnitude, len(f.Vectors))
	for i, v := range f.Vectors {
		out[i] = NormalizedMagnitude{Index: i}
		if !v.Valid || v.Zero {
			continue
		}
		flowN := v.Flow.Norm()
		if flowN < opts.MinFlow {
			continue
		}
		if v.Pos.Y < opts.MinY {
			continue
		}
		r := v.Pos.Dist(foe)
		if r < 1e-6 {
			continue
		}
		if !PointsToward(v.Pos, v.Flow, foe, opts.CosTol) {
			continue
		}
		out[i] = NormalizedMagnitude{
			Index: i,
			Value: flowN / (r * v.Pos.Y),
			OK:    true,
		}
	}
	return out
}
