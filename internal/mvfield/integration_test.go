package mvfield

import (
	"math"
	"math/rand"
	"testing"

	"dive/internal/codec"
	"dive/internal/geom"
	"dive/internal/world"
)

// renderPair renders two consecutive frames of a simple scene with the
// given inter-frame ego motion and returns the codec motion field computed
// between them — the full real pipeline the analytics run on.
func renderPair(t *testing.T, dz, dyaw, dpitch float64) (*codec.MotionField, *world.Camera) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	scene := &world.Scene{
		GroundY: world.GroundPlaneY,
		GroundTex: world.RoadTexture{
			Seed: 11, LaneWidth: 3.5, DashLen: 2, DashPeriod: 6, HalfWidth: 7.5,
		},
		Sky: world.SkyTexture{Seed: 12},
	}
	// Plenty of static structure so the MV field is dense.
	for i := 0; i < 14; i++ {
		side := 1.0
		if i%2 == 0 {
			side = -1
		}
		scene.Objects = append(scene.Objects, world.NewStatic(
			i+1, world.ClassStructure,
			geom.Vec3{X: side * (9 + 3*rng.Float64()), Y: world.GroundPlaneY, Z: 8 + float64(i)*7},
			7+rng.Float64()*4, 5+rng.Float64()*4, 6,
			world.StripedTexture{Base: 130, Amplitude: 35, Period: 2.2, Seed: uint64(i) + 31},
		))
	}
	cam := world.NewCamera(260, 320, 192)
	rdr := world.NewRenderer(scene)
	rdr.NoiseStd = 1.0

	cam.SetPose(geom.Vec3{}, 0, 0)
	f0, _ := rdr.Render(cam, 0, 1)
	cam.SetPose(geom.Vec3{Z: dz}, dyaw, dpitch)
	f1, _ := rdr.Render(cam, 0, 2)

	cfg := codec.DefaultConfig(320, 192)
	cfg.Method = codec.MEHex
	enc, err := codec.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Encode(f0, codec.EncodeOptions{BaseQP: 12}); err != nil {
		t.Fatal(err)
	}
	mf := enc.AnalyzeMotion(f1)
	if mf == nil {
		t.Fatal("no motion field")
	}
	return mf, cam
}

func TestRealPipelineFOEUnderPureTranslation(t *testing.T) {
	mf, cam := renderPair(t, 1.2, 0, 0)
	f := FromMotion(mf, cam.F, cam.Cx(), cam.Cy(), 0)
	if eta := f.Eta(); eta < 0.3 {
		t.Fatalf("η = %v while moving, want substantial", eta)
	}
	foe, err := EstimateFOE(f, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Forward motion: FOE at the principal point (centered coords origin).
	if foe.Norm() > 12 {
		t.Errorf("FOE = %v, want near origin", foe)
	}
}

func TestRealPipelineEtaWhenStatic(t *testing.T) {
	mf, cam := renderPair(t, 0, 0, 0)
	f := FromMotion(mf, cam.F, cam.Cx(), cam.Cy(), 0)
	if eta := f.Eta(); eta > 0.15 {
		t.Errorf("η = %v for a static camera, want below the paper's 0.15 threshold", eta)
	}
}

func TestRealPipelineRotationRecovery(t *testing.T) {
	// Yaw while translating: R-sampling + RANSAC over Eq. (7) must recover
	// the rotation from integer codec MVs. This validates every sign
	// convention in the chain (renderer, codec MV, flow negation, Eq. 7).
	const dyaw = 0.015 // rad/frame → ≈ 3.9 px of rotational flow at f=260
	mf, cam := renderPair(t, 1.2, dyaw, 0)
	f := FromMotion(mf, cam.F, cam.Cx(), cam.Cy(), 0)
	est := NewRotationEstimator()
	phiX, phiY, err := est.Estimate(f, geom.Vec2{}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phiY-dyaw) > 0.3*dyaw+0.002 {
		t.Errorf("estimated yaw %v, want ≈ %v", phiY, dyaw)
	}
	if math.Abs(phiX) > 0.006 {
		t.Errorf("estimated pitch %v, want ≈ 0", phiX)
	}
	// After removing the rotation, the FOE of the corrected field is back
	// near the principal point.
	g := f.RemoveRotation(phiX, phiY)
	foe, err := EstimateFOE(g, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if foe.Norm() > 15 {
		t.Errorf("corrected FOE = %v, want near origin", foe)
	}
}

func TestRealPipelinePitchRecovery(t *testing.T) {
	const dpitch = 0.010
	mf, cam := renderPair(t, 1.2, 0, dpitch)
	f := FromMotion(mf, cam.F, cam.Cx(), cam.Cy(), 0)
	est := NewRotationEstimator()
	phiX, _, err := est.Estimate(f, geom.Vec2{}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phiX-dpitch) > 0.3*dpitch+0.002 {
		t.Errorf("estimated pitch %v, want ≈ %v", phiX, dpitch)
	}
}

func TestRealPipelineGroundNormalization(t *testing.T) {
	// On a pure forward translation the road's normalized magnitudes
	// cluster tightly around ΔZ/(f·h).
	dz := 1.2
	mf, cam := renderPair(t, dz, 0, 0)
	f := FromMotion(mf, cam.F, cam.Cx(), cam.Cy(), 0)
	norms := NormalizedMagnitudes(f, geom.Vec2{}, DefaultNormalizeOptions())
	want := dz / (cam.F * world.GroundPlaneY)
	// Collect values of the bottom two MB rows, which can only be road.
	var groundVals []float64
	for _, n := range norms {
		if !n.OK {
			continue
		}
		if n.Index/f.MBW >= f.MBH-2 {
			groundVals = append(groundVals, n.Value)
		}
	}
	if len(groundVals) < 5 {
		t.Fatalf("only %d ground samples", len(groundVals))
	}
	med := geom.Median(groundVals)
	if math.Abs(med-want)/want > 0.35 {
		t.Errorf("ground normalized magnitude %v, want ≈ %v", med, want)
	}
}
